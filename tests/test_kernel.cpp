/**
 * @file
 * Kernel syscall-layer tests: O_DIRECT sync path timing (Table 1),
 * buffered path through the page cache, appends, fsync, per-inode write
 * serialization, libaio and io_uring engines, CPU model.
 */

#include <gtest/gtest.h>

#include "kern/aio.hpp"
#include "kern/io_uring.hpp"
#include "tests/helpers.hpp"

using namespace bpd;
using namespace bpd::test;
using fs::kOpenCreate;
using fs::kOpenDirect;
using fs::kOpenRead;
using fs::kOpenWrite;

namespace {

struct KernFixture : ::testing::Test
{
    sys::System s{smallConfig()};
    kern::Process *p = nullptr;

    void
    SetUp() override
    {
        sim::setVerbose(false);
        p = &s.newProcess();
    }
};

} // namespace

TEST_F(KernFixture, OpenMissingFails)
{
    const int fd = kOpen(s, *p, "/nope", kOpenRead);
    EXPECT_LT(fd, 0);
}

TEST_F(KernFixture, CreateWriteReadBack)
{
    const int fd = kOpen(s, *p, "/f",
                         kOpenRead | kOpenWrite | kOpenCreate
                             | kOpenDirect);
    ASSERT_GE(fd, 0);
    auto data = pattern(8192, 1);
    EXPECT_EQ(kPwrite(s, *p, fd, data, 0).n, 8192);
    std::vector<std::uint8_t> back(8192, 0);
    EXPECT_EQ(kPread(s, *p, fd, back, 0).n, 8192);
    EXPECT_EQ(back, data);
    EXPECT_EQ(kClose(s, *p, fd), 0);
}

TEST_F(KernFixture, SyncReadLatencyMatchesTable1)
{
    const int fd = s.kernel.setupCreateFile(*p, "/f", 1 << 20, 7);
    ASSERT_GE(fd, 0);
    std::vector<std::uint8_t> buf(4096);
    // Warm one read, then measure.
    kPread(s, *p, fd, buf, 0);
    const Time t0 = s.now();
    auto r = kPread(s, *p, fd, buf, 4096);
    const Time lat = s.now() - t0;
    EXPECT_EQ(r.n, 4096);
    // Table 1 total: 7850 ns for a 4 KiB sync read.
    EXPECT_NEAR(static_cast<double>(lat), 7850.0, 500.0);
    // Breakdown: device ~4020, kernel ~3830.
    EXPECT_NEAR(static_cast<double>(r.trace.deviceNs), 4020.0, 300.0);
    EXPECT_NEAR(static_cast<double>(r.trace.kernelNs), 3830.0, 400.0);
}

TEST_F(KernFixture, ReadBeyondEofReturnsZero)
{
    const int fd = s.kernel.setupCreateFile(*p, "/f", 4096, 7);
    std::vector<std::uint8_t> buf(4096);
    EXPECT_EQ(kPread(s, *p, fd, buf, 8192).n, 0);
}

TEST_F(KernFixture, ReadClipsAtEof)
{
    const int fd = s.kernel.setupCreateFile(*p, "/f", 6000, 7);
    std::vector<std::uint8_t> buf(4096);
    EXPECT_EQ(kPread(s, *p, fd, buf, 4096).n, 6000 - 4096);
}

TEST_F(KernFixture, AppendExtendsAndZeroes)
{
    const int fd = kOpen(s, *p, "/f",
                         kOpenRead | kOpenWrite | kOpenCreate
                             | kOpenDirect);
    auto data = pattern(1000, 3);
    // Write at offset 10000 in an empty file: blocks 0..2 allocated, the
    // gap must read back as zeros.
    EXPECT_EQ(kPwrite(s, *p, fd, data, 10000).n, 1000);
    const fs::Inode *ino
        = s.ext4.inode(p->file(fd)->ino);
    EXPECT_EQ(ino->size, 11000u);
    std::vector<std::uint8_t> back(11000);
    EXPECT_EQ(kPread(s, *p, fd, back, 0).n, 11000);
    for (std::size_t i = 0; i < 10000; i++)
        ASSERT_EQ(back[i], 0) << "at " << i;
    EXPECT_TRUE(std::equal(data.begin(), data.end(), back.begin() + 10000));
}

TEST_F(KernFixture, PermissionDeniedOnForeignFile)
{
    const int fd = s.kernel.setupCreateFile(*p, "/secret", 4096, 9);
    ASSERT_GE(fd, 0);
    // Restrict to owner.
    s.ext4.inode(p->file(fd)->ino)->mode = 0600;
    kern::Process &other = s.newProcess(2000, 2000);
    EXPECT_LT(kOpen(s, other, "/secret", kOpenRead), 0);
}

TEST_F(KernFixture, BufferedReadHitsCacheSecondTime)
{
    const int fd0 = s.kernel.setupCreateFile(*p, "/f", 1 << 20, 7);
    (void)fd0;
    const int fd = kOpen(s, *p, "/f", kOpenRead); // buffered
    std::vector<std::uint8_t> buf(4096);
    const Time t0 = s.now();
    kPread(s, *p, fd, buf, 0);
    const Time missLat = s.now() - t0;
    const Time t1 = s.now();
    kPread(s, *p, fd, buf, 0);
    const Time hitLat = s.now() - t1;
    EXPECT_GT(missLat, 4000u);  // device involved
    EXPECT_LT(hitLat, 3000u);   // cache hit: no device
    // Functional equality with the direct path.
    std::vector<std::uint8_t> direct(4096);
    s.kernel.setupRead(*p, fd, direct, 0);
    EXPECT_EQ(buf, direct);
}

TEST_F(KernFixture, BufferedWriteVisibleAfterFsync)
{
    const int fd = kOpen(s, *p, "/f",
                         kOpenRead | kOpenWrite | kOpenCreate);
    auto data = pattern(4096, 11);
    EXPECT_EQ(kPwrite(s, *p, fd, data, 0).n, 4096);
    int rc = -1;
    s.kernel.sysFsync(*p, fd, [&](int r) { rc = r; });
    s.run();
    EXPECT_EQ(rc, 0);
    // Media now holds the data (read through a direct fd).
    kern::Process &p2 = s.newProcess();
    const int dfd = kOpen(s, p2, "/f", kOpenRead | kOpenDirect);
    std::vector<std::uint8_t> back(4096);
    EXPECT_EQ(kPread(s, p2, dfd, back, 0).n, 4096);
    EXPECT_EQ(back, data);
}

TEST_F(KernFixture, ConcurrentWritesToSameInodeSerialize)
{
    const int fd = s.kernel.setupCreateFile(*p, "/f", 1 << 20, 7);
    auto data = pattern(4096, 1);
    // Launch 8 concurrent writes; the per-inode lock serializes the
    // VFS/ext4 section, so total time >> a single write.
    Time lastDone = 0;
    int done = 0;
    for (int i = 0; i < 8; i++) {
        s.kernel.sysPwrite(*p, fd, data,
                           static_cast<std::uint64_t>(i) * 4096,
                           [&](long long n, kern::IoTrace) {
                               EXPECT_EQ(n, 4096);
                               done++;
                               lastDone = s.now();
                           });
    }
    s.run();
    EXPECT_EQ(done, 8);
    // 8 serialized vfs sections of ~2.8 us are a lower bound.
    EXPECT_GT(lastDone, 8 * 2800u);
}

TEST_F(KernFixture, ConcurrentReadsDoNotSerialize)
{
    const int fd = s.kernel.setupCreateFile(*p, "/f", 1 << 20, 7);
    std::vector<std::vector<std::uint8_t>> bufs(
        8, std::vector<std::uint8_t>(4096));
    int done = 0;
    Time lastDone = 0;
    for (int i = 0; i < 8; i++) {
        s.kernel.sysPread(*p, fd, bufs[static_cast<std::size_t>(i)],
                          static_cast<std::uint64_t>(i) * 4096,
                          [&](long long n, kern::IoTrace) {
                              EXPECT_EQ(n, 4096);
                              done++;
                              lastDone = s.now();
                          });
    }
    s.run();
    EXPECT_EQ(done, 8);
    // Reads overlap in the device: far less than 8 serial latencies.
    EXPECT_LT(lastDone, 8 * 7850u);
}

TEST_F(KernFixture, StatReportsSize)
{
    s.kernel.setupCreateFile(*p, "/f", 123456, 7);
    kern::Stat st{};
    int rc = -1;
    s.kernel.sysStat(*p, "/f", &st, [&](int r) { rc = r; });
    s.run();
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(st.size, 123456u);
}

TEST_F(KernFixture, UnlinkRemoves)
{
    const int cfd = s.kernel.setupCreateFile(*p, "/f", 4096, 7);
    kClose(s, *p, cfd);
    int rc = -1;
    s.kernel.sysUnlink(*p, "/f", [&](int r) { rc = r; });
    s.run();
    EXPECT_EQ(rc, 0);
    EXPECT_LT(kOpen(s, *p, "/f", kOpenRead), 0);
}

TEST_F(KernFixture, AioSlowerThanSyncAtQd1)
{
    const int fd = s.kernel.setupCreateFile(*p, "/f", 1 << 20, 7);
    std::vector<std::uint8_t> buf(4096);
    kPread(s, *p, fd, buf, 0); // warm
    Time t0 = s.now();
    kPread(s, *p, fd, buf, 0);
    const Time syncLat = s.now() - t0;
    t0 = s.now();
    IoResult r;
    s.aio.pread(*p, fd, buf, 0, [&](long long n, kern::IoTrace tr) {
        r.n = n;
        r.trace = tr;
    });
    s.run();
    const Time aioLat = s.now() - t0;
    EXPECT_EQ(r.n, 4096);
    EXPECT_GT(aioLat, syncLat);
    EXPECT_LT(aioLat, syncLat + 1500);
}

TEST_F(KernFixture, AioBatchOverlapsDevice)
{
    const int fd = s.kernel.setupCreateFile(*p, "/f", 1 << 20, 7);
    std::vector<std::vector<std::uint8_t>> bufs(
        16, std::vector<std::uint8_t>(4096));
    std::vector<kern::Aio::Op> ops;
    for (int i = 0; i < 16; i++) {
        ops.push_back(kern::Aio::Op{
            fd, false,
            std::span<std::uint8_t>(bufs[static_cast<std::size_t>(i)]),
            static_cast<std::uint64_t>(i) * 4096});
    }
    int done = 0;
    const Time t0 = s.now();
    s.aio.submitBatch(*p, ops, [&](std::size_t, long long n,
                                   kern::IoTrace) {
        EXPECT_EQ(n, 4096);
        done++;
    });
    s.run();
    EXPECT_EQ(done, 16);
    // 16 overlapped reads complete much faster than 16 serial ones.
    EXPECT_LT(s.now() - t0, 16 * 7850u / 2);
}

TEST_F(KernFixture, IoUringFasterThanSyncSlowerThanDevice)
{
    const int fd = s.kernel.setupCreateFile(*p, "/f", 1 << 20, 7);
    kern::IoUring ring(s.kernel, *p);
    std::vector<std::uint8_t> buf(4096);
    IoResult r;
    ring.pread(fd, buf, 0, [&](long long n, kern::IoTrace tr) {
        r.n = n;
        r.trace = tr;
    });
    s.run();
    const Time t0 = s.now();
    ring.pread(fd, buf, 4096, [&](long long n, kern::IoTrace tr) {
        r.n = n;
        r.trace = tr;
    });
    s.run();
    const Time uringLat = s.now() - t0;
    EXPECT_EQ(r.n, 4096);
    EXPECT_LT(uringLat, 7850u);       // better than sync
    EXPECT_GT(uringLat, 4020u + 500); // kernel stack still there
}

TEST_F(KernFixture, IoUringPinsACore)
{
    EXPECT_EQ(s.kernel.cpu().occupants(), 0u);
    {
        kern::IoUring ring(s.kernel, *p);
        EXPECT_EQ(s.kernel.cpu().occupants(), 1u);
    }
    EXPECT_EQ(s.kernel.cpu().occupants(), 0u);
}

TEST(CpuModel, DilationAndPenalty)
{
    kern::CpuModel cpu(24);
    cpu.acquire(24);
    EXPECT_EQ(cpu.dilation(), 1.0);
    EXPECT_EQ(cpu.reschedulePenalty(), 0u);
    cpu.acquire(12);
    EXPECT_NEAR(cpu.dilation(), 1.5, 1e-9);
    EXPECT_EQ(cpu.surplus(), 12u);
    EXPECT_GT(cpu.reschedulePenalty(), 0u);
    EXPECT_EQ(cpu.scaled(1000), 1500u);
    cpu.release(36);
    EXPECT_EQ(cpu.occupants(), 0u);
}
