/**
 * @file
 * On-media crash recovery: mounting from the device bytes alone
 * (superblock + checkpoint image + journal scan), torn-commit
 * detection, journal-overflow auto-checkpointing, and equivalence with
 * the in-memory recovery path.
 */

#include <gtest/gtest.h>

#include "fs/ext4.hpp"
#include "fs/ondisk.hpp"
#include "sim/random.hpp"
#include "tests/helpers.hpp"

using namespace bpd;
using namespace bpd::test;
using namespace bpd::fs;

namespace {

/** Build an FS with a few files and some history; return paths. */
std::vector<std::string>
populate(Ext4Fs &fsys, std::uint64_t seed)
{
    Credentials creds{1000, 1000};
    sim::Rng rng(seed);
    std::vector<std::string> paths;
    fsys.mkdir("/dir", 0777, creds, nullptr);
    for (int i = 0; i < 8; i++) {
        const std::string p = (i % 2 ? "/dir/f" : "/f")
                              + std::to_string(i);
        InodeNum ino;
        EXPECT_EQ(fsys.create(p, 0644, creds, &ino), FsStatus::Ok);
        Inode *node = fsys.inode(ino);
        fsys.extendTo(*node, (1 + rng.nextUint(64)) * kBlockBytes,
                      nullptr);
        if (rng.nextBool(0.4))
            fsys.truncate(*node, node->size / 2);
        if (rng.nextBool(0.5))
            fsys.fsyncMeta(*node);
        paths.push_back(p);
    }
    fsys.rename("/f0", "/renamed", creds);
    paths[0] = "/renamed";
    fsys.unlink("/f2", creds);
    paths.erase(std::find(paths.begin(), paths.end(), "/f2"));
    return paths;
}

void
expectSameNamespace(Ext4Fs &a, Ext4Fs &b,
                    const std::vector<std::string> &paths)
{
    for (const auto &p : paths) {
        InodeNum ia, ib;
        ASSERT_EQ(a.resolve(p, &ia), FsStatus::Ok) << p;
        ASSERT_EQ(b.resolve(p, &ib), FsStatus::Ok) << p;
        EXPECT_EQ(ia, ib) << p;
        EXPECT_EQ(a.inode(ia)->size, b.inode(ib)->size) << p;
        EXPECT_EQ(a.inode(ia)->extents.extents(),
                  b.inode(ib)->extents.extents())
            << p;
    }
}

} // namespace

TEST(OnDiskRecovery, MediaOnlyMountMatchesLiveState)
{
    ssd::BlockStore media(256ull << 20);
    Ext4Fs fsys(media);
    auto paths = populate(fsys, 1);

    // Mount a second instance purely from the device bytes.
    auto mounted = Ext4Fs::recoverFromMedia(media);
    ASSERT_NE(mounted, nullptr);
    std::string why;
    ASSERT_TRUE(mounted->fsck(&why)) << why;
    expectSameNamespace(fsys, *mounted, paths);
    InodeNum gone;
    EXPECT_EQ(mounted->resolve("/f2", &gone), FsStatus::NoEnt);
}

TEST(OnDiskRecovery, MatchesInMemoryRecovery)
{
    ssd::BlockStore media(256ull << 20);
    Ext4Fs fsys(media);
    auto paths = populate(fsys, 2);
    auto mem = Ext4Fs::recover(media, fsys);
    auto disk = Ext4Fs::recoverFromMedia(media);
    ASSERT_NE(disk, nullptr);
    expectSameNamespace(*mem, *disk, paths);
    EXPECT_EQ(mem->allocator().freeBlocks(),
              disk->allocator().freeBlocks());
}

TEST(OnDiskRecovery, DataSurvivesMediaMount)
{
    ssd::BlockStore media(128ull << 20);
    Ext4Fs fsys(media);
    Credentials creds{1000, 1000};
    InodeNum ino;
    ASSERT_EQ(fsys.create("/data", 0644, creds, &ino), FsStatus::Ok);
    Inode *node = fsys.inode(ino);
    ASSERT_EQ(fsys.extendTo(*node, 64 << 10, nullptr), FsStatus::Ok);
    auto data = pattern(64 << 10, 7);
    std::vector<Seg> segs;
    ASSERT_EQ(fsys.mapRange(*node, 0, data.size(), &segs), FsStatus::Ok);
    std::uint64_t off = 0;
    for (const auto &sg : segs) {
        media.write(sg.addr, std::span<const std::uint8_t>(
                                 data.data() + off, sg.len));
        off += sg.len;
    }

    auto mounted = Ext4Fs::recoverFromMedia(media);
    ASSERT_NE(mounted, nullptr);
    InodeNum got;
    ASSERT_EQ(mounted->resolve("/data", &got), FsStatus::Ok);
    std::vector<Seg> segs2;
    ASSERT_EQ(mounted->mapRange(*mounted->inode(got), 0, data.size(),
                                &segs2),
              FsStatus::Ok);
    EXPECT_EQ(segs, segs2); // same physical blocks
    std::vector<std::uint8_t> back(data.size());
    off = 0;
    for (const auto &sg : segs2) {
        media.read(sg.addr,
                   std::span<std::uint8_t>(back.data() + off, sg.len));
        off += sg.len;
    }
    EXPECT_EQ(back, data);
}

TEST(OnDiskRecovery, TornCommitIsIgnored)
{
    ssd::BlockStore media(128ull << 20);
    Ext4Fs fsys(media);
    Credentials creds{1000, 1000};
    InodeNum a;
    ASSERT_EQ(fsys.create("/a", 0644, creds, &a), FsStatus::Ok);
    fsys.checkpoint(); // journal now empty on disk
    InodeNum b;
    ASSERT_EQ(fsys.create("/b", 0644, creds, &b), FsStatus::Ok);
    ASSERT_EQ(fsys.create("/c", 0644, creds, &b), FsStatus::Ok);

    // Tear the LAST committed transaction on the media: flip a byte in
    // its checksum area (simulating a crash mid-commit-write).
    // Find the journal region and corrupt the tail of the written part.
    const DevAddr jbase = fsys.journalStartBlock() * kBlockBytes;
    std::vector<std::uint8_t> region(64 << 10);
    media.read(jbase, region);
    // Scan to the last txn start.
    std::size_t off = 0, lastOff = 0;
    while (true) {
        ByteReader tr(region.data() + off, region.size() - off);
        if (tr.u64() != kTxnMagic)
            break;
        const std::uint32_t count = tr.u32();
        for (std::uint32_t i = 0; i < count && tr.ok(); i++) {
            tr.u8();
            tr.u64();
            tr.u64();
            tr.u64();
            tr.u64();
            tr.str();
        }
        tr.u64(); // checksum
        if (!tr.ok())
            break;
        lastOff = off;
        off += tr.consumed();
    }
    ASSERT_GT(off, 0u);
    // Corrupt one byte inside the last transaction body.
    std::uint8_t evil = region[lastOff + 13] ^ 0xff;
    media.write(jbase + lastOff + 13,
                std::span<const std::uint8_t>(&evil, 1));

    auto mounted = Ext4Fs::recoverFromMedia(media);
    ASSERT_NE(mounted, nullptr);
    std::string why;
    ASSERT_TRUE(mounted->fsck(&why)) << why;
    InodeNum got;
    EXPECT_EQ(mounted->resolve("/a", &got), FsStatus::Ok);
    EXPECT_EQ(mounted->resolve("/b", &got), FsStatus::Ok);
    // The torn (last) transaction — /c — did not survive.
    EXPECT_EQ(mounted->resolve("/c", &got), FsStatus::NoEnt);
}

TEST(OnDiskRecovery, CorruptSuperblockRefusesMount)
{
    ssd::BlockStore media(64ull << 20);
    Ext4Fs fsys(media);
    std::uint8_t evil = 0x5a;
    media.write(3, std::span<const std::uint8_t>(&evil, 1));
    EXPECT_EQ(Ext4Fs::recoverFromMedia(media), nullptr);
}

TEST(OnDiskRecovery, JournalOverflowAutoCheckpoints)
{
    ssd::BlockStore media(256ull << 20);
    Ext4Fs fsys(media);
    Credentials creds{1000, 1000};
    // Thousands of metadata ops: far more journal bytes than the 4 MiB
    // region; the FS must fold into checkpoints and stay mountable.
    for (int i = 0; i < 30000; i++) {
        InodeNum ino;
        const std::string p = "/x" + std::to_string(i % 200);
        if (fsys.create(p, 0644, creds, &ino) == FsStatus::Exists)
            fsys.unlink(p, creds);
    }
    auto mounted = Ext4Fs::recoverFromMedia(media);
    ASSERT_NE(mounted, nullptr);
    std::string why;
    EXPECT_TRUE(mounted->fsck(&why)) << why;
}

TEST(OnDiskRecovery, EndToEndThroughSystem)
{
    // Full-stack: write through BypassD, crash, remount from media,
    // verify bytes.
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &p = s.newProcess();
    const int cfd = s.kernel.setupCreateFile(p, "/e2e", 1 << 20, 0);
    kClose(s, p, cfd);
    bypassd::UserLib &lib = s.userLib(p);
    const int fd = ulOpen(s, lib, "/e2e",
                          fs::kOpenRead | fs::kOpenWrite
                              | fs::kOpenDirect);
    auto data = pattern(8192, 42);
    ASSERT_EQ(ulPwrite(s, lib, 0, fd, data, 16384).n, 8192);
    ASSERT_EQ(ulFsync(s, lib, 0, fd), 0);

    auto mounted = Ext4Fs::recoverFromMedia(s.store);
    ASSERT_NE(mounted, nullptr);
    InodeNum got;
    ASSERT_EQ(mounted->resolve("/e2e", &got), FsStatus::Ok);
    std::vector<Seg> segs;
    ASSERT_EQ(mounted->mapRange(*mounted->inode(got), 16384, 8192, &segs),
              FsStatus::Ok);
    std::vector<std::uint8_t> back(8192);
    std::uint64_t off = 0;
    for (const auto &sg : segs) {
        s.store.read(sg.addr,
                     std::span<std::uint8_t>(back.data() + off, sg.len));
        off += sg.len;
    }
    EXPECT_EQ(back, data);
}
