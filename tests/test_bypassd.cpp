/**
 * @file
 * BypassD core tests: file-table construction and sharing, fmap()
 * eligibility and costs (Table 5 model), UserLib data path (reads,
 * overwrites, appends, partial writes), revocation (Section 3.6), the
 * sharing policy (Section 4.5.2), and the security invariants
 * (Section 5.3).
 */

#include <gtest/gtest.h>

#include "tests/helpers.hpp"

using namespace bpd;
using namespace bpd::test;
using fs::kOpenCreate;
using fs::kOpenDirect;
using fs::kOpenRead;
using fs::kOpenWrite;

namespace {

constexpr std::uint32_t kRw
    = kOpenRead | kOpenWrite | kOpenCreate | kOpenDirect;

struct BypassdFixture : ::testing::Test
{
    sys::System s{smallConfig()};
    kern::Process *p = nullptr;
    bypassd::UserLib *lib = nullptr;

    void
    SetUp() override
    {
        sim::setVerbose(false);
        p = &s.newProcess();
        lib = &s.userLib(*p);
    }

    /** Open with BypassD intent (does not count as a kernel open). */
    int
    openIntent(kern::Process &proc, const std::string &path,
               std::uint32_t flags = kRw)
    {
        return s.kernel.setupOpen(proc, path,
                                  flags | kern::kOpenBypassdIntent);
    }

    int
    mkFile(const std::string &path, std::uint64_t size,
           std::uint64_t seed = 7)
    {
        const int fd = s.kernel.setupCreateFile(*p, path, size, seed);
        EXPECT_GE(fd, 0);
        int rc = -1;
        s.kernel.sysClose(*p, fd, [&](int r) { rc = r; });
        s.run();
        EXPECT_EQ(rc, 0);
        return fd;
    }
};

} // namespace

// --- FileTableCache ---

TEST_F(BypassdFixture, FileTableBuildMatchesExtents)
{
    mkFile("/f", 10 << 20);
    InodeNum ino;
    ASSERT_EQ(s.ext4.resolve("/f", &ino), fs::FsStatus::Ok);
    fs::Inode *node = s.ext4.inode(ino);
    bypassd::FileTableCache cache(s.frames, s.dev.devId());
    auto stats = cache.buildFrom(node->extents);
    EXPECT_EQ(stats.ftesWritten, (10u << 20) / kBlockBytes);
    EXPECT_EQ(cache.mappedBlocks(), (10u << 20) / kBlockBytes);
    EXPECT_EQ(cache.leafFrames().size(), 5u); // 10 MiB / 2 MiB
    // Every FTE maps the same block the extent tree does.
    for (std::uint64_t b = 0; b < cache.mappedBlocks(); b++) {
        auto e = node->extents.lookup(b);
        ASSERT_TRUE(e.has_value());
        const mem::Pte fte
            = s.frames.table(cache.leafFrames()[b / kPte])[b % kPte];
        EXPECT_TRUE(mem::isFte(fte));
        EXPECT_EQ(mem::fteBlock(fte), e->pblk + (b - e->lblk));
        EXPECT_EQ(mem::fteDevId(fte), s.dev.devId());
    }
}

TEST_F(BypassdFixture, FileTableShrink)
{
    mkFile("/f", 10 << 20);
    InodeNum ino;
    s.ext4.resolve("/f", &ino);
    bypassd::FileTableCache cache(s.frames, s.dev.devId());
    cache.buildFrom(s.ext4.inode(ino)->extents);
    cache.shrinkTo(300); // inside the first leaf + frees the rest
    EXPECT_EQ(cache.mappedBlocks(), 300u);
    EXPECT_EQ(cache.leafFrames().size(), 1u);
    EXPECT_EQ(s.frames.table(cache.leafFrames()[0])[299] != 0, true);
    EXPECT_EQ(s.frames.table(cache.leafFrames()[0])[300], 0u);
}

// --- fmap ---

TEST_F(BypassdFixture, ColdThenWarmFmap)
{
    mkFile("/f", 64 << 20);
    InodeNum ino;
    s.ext4.resolve("/f", &ino);
    ASSERT_GE(openIntent(*p, "/f"), 0);

    bypassd::FmapResult cold = s.module.fmap(*p, ino, true);
    EXPECT_NE(cold.vba, 0u);
    EXPECT_TRUE(cold.cold);
    EXPECT_EQ(cold.mappedBytes, 64u << 20);
    EXPECT_EQ(cold.vba % mem::kPmdSpan, 0u);

    kern::Process &p2 = s.newProcess();
    ASSERT_GE(openIntent(p2, "/f"), 0);
    bypassd::FmapResult warm = s.module.fmap(p2, ino, false);
    EXPECT_NE(warm.vba, 0u);
    EXPECT_FALSE(warm.cold);
    // Table 5: warm fmap is much cheaper than cold for a 64 MiB file.
    EXPECT_LT(warm.cost, cold.cost / 5);
    EXPECT_EQ(s.module.coldFmaps(), 1u);
    EXPECT_EQ(s.module.warmFmaps(), 1u);
}

TEST_F(BypassdFixture, FmapCostScalesLikeTable5)
{
    // Cold cost ~ per-FTE; warm cost ~ per-2MiB pointer update.
    mkFile("/small", 1 << 20);
    mkFile("/big", 256 << 20);
    InodeNum si, bi;
    s.ext4.resolve("/small", &si);
    s.ext4.resolve("/big", &bi);
    ASSERT_GE(openIntent(*p, "/small"), 0);
    ASSERT_GE(openIntent(*p, "/big"), 0);
    auto smallCold = s.module.fmap(*p, si, true);
    auto bigCold = s.module.fmap(*p, bi, true);
    // 256x the data => cold cost ratio roughly follows (>= 30x).
    EXPECT_GT(bigCold.cost, smallCold.cost * 30);

    kern::Process &p2 = s.newProcess();
    ASSERT_GE(openIntent(p2, "/big"), 0);
    auto bigWarm = s.module.fmap(p2, bi, true);
    // 256 MiB warm: 128 pointer updates ~= a few us.
    EXPECT_LT(bigWarm.cost, 10 * kUs);
    EXPECT_GT(bigCold.cost, 100 * kUs);
}

TEST_F(BypassdFixture, FmapRejectedWhenKernelOpen)
{
    mkFile("/f", 1 << 20);
    ASSERT_GE(openIntent(*p, "/f"), 0);
    // Another process opens via the kernel interface.
    kern::Process &other = s.newProcess();
    const int kfd = kOpen(s, other, "/f", kOpenRead | kOpenDirect);
    ASSERT_GE(kfd, 0);
    InodeNum ino;
    s.ext4.resolve("/f", &ino);
    bypassd::FmapResult res = s.module.fmap(*p, ino, true);
    EXPECT_EQ(res.vba, 0u); // Section 4.5.2
    EXPECT_EQ(s.module.rejectedFmaps(), 1u);
    // After the kernel user closes, direct access becomes possible.
    kClose(s, other, kfd);
    EXPECT_NE(s.module.fmap(*p, ino, true).vba, 0u);
}

TEST_F(BypassdFixture, FmapOnDirectoryRejected)
{
    s.ext4.mkdir("/d", 0755, p->creds(), nullptr);
    InodeNum ino;
    s.ext4.resolve("/d", &ino);
    EXPECT_EQ(s.module.fmap(*p, ino, false).vba, 0u);
}

TEST_F(BypassdFixture, FmapIdempotentPerProcess)
{
    mkFile("/f", 1 << 20);
    ASSERT_GE(openIntent(*p, "/f"), 0);
    InodeNum ino;
    s.ext4.resolve("/f", &ino);
    auto a = s.module.fmap(*p, ino, true);
    auto b = s.module.fmap(*p, ino, true);
    EXPECT_EQ(a.vba, b.vba);
}

// --- UserLib data path ---

TEST_F(BypassdFixture, DirectReadMatchesData)
{
    mkFile("/f", 1 << 20, 99);
    const int fd = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(lib->isDirect(fd));
    std::vector<std::uint8_t> buf(4096);
    auto r = ulPread(s, *lib, 0, fd, buf, 8192);
    EXPECT_EQ(r.n, 4096);
    std::vector<std::uint8_t> expect(4096);
    s.kernel.setupRead(*p, fd, expect, 8192);
    EXPECT_EQ(buf, expect);
    EXPECT_EQ(lib->directReads(), 1u);
    EXPECT_GT(r.trace.translateNs, 300u);
}

TEST_F(BypassdFixture, DirectReadLatencyBeatsKernel)
{
    mkFile("/f", 1 << 20, 99);
    const int fd = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    lib->prepareThread(0);
    std::vector<std::uint8_t> buf(4096);
    ulPread(s, *lib, 0, fd, buf, 0); // warm caches
    Time t0 = s.now();
    ulPread(s, *lib, 0, fd, buf, 4096);
    const Time direct = s.now() - t0;
    // Paper: ~42% lower than the 7850 ns kernel path; expect ~4.5-5.5us.
    EXPECT_LT(direct, 5800u);
    EXPECT_GT(direct, 4020u);
}

TEST_F(BypassdFixture, DirectOverwriteVisibleEverywhere)
{
    mkFile("/f", 1 << 20, 99);
    const int fd = ulOpen(s, *lib, "/f", kRw);
    auto data = pattern(4096, 1234);
    auto r = ulPwrite(s, *lib, 0, fd, data, 16384);
    EXPECT_EQ(r.n, 4096);
    EXPECT_EQ(lib->directWrites(), 1u);
    // Verify via the raw media (device is the point of coherence).
    std::vector<std::uint8_t> back(4096);
    s.kernel.setupRead(*p, fd, back, 16384);
    EXPECT_EQ(back, data);
}

TEST_F(BypassdFixture, WriteToReadOnlyOpenFails)
{
    mkFile("/f", 1 << 20);
    const int fd = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    auto data = pattern(4096, 1);
    auto r = ulPwrite(s, *lib, 0, fd, data, 0);
    EXPECT_LT(r.n, 0);
}

TEST_F(BypassdFixture, AppendRoutesThroughKernel)
{
    mkFile("/f", 8192);
    const int fd = ulOpen(s, *lib, "/f", kRw);
    auto data = pattern(4096, 5);
    auto r = ulPwrite(s, *lib, 0, fd, data, 8192); // beyond EOF
    EXPECT_EQ(r.n, 4096);
    EXPECT_EQ(lib->appendsRouted(), 1u);
    EXPECT_EQ(lib->fileSize(fd), 12288u);
    // The new block is directly accessible afterwards (FTEs extended).
    std::vector<std::uint8_t> back(4096);
    auto rr = ulPread(s, *lib, 0, fd, back, 8192);
    EXPECT_EQ(rr.n, 4096);
    EXPECT_EQ(back, data);
    EXPECT_TRUE(lib->isDirect(fd));
}

TEST_F(BypassdFixture, OptimizedAppendUsesFallocate)
{
    sys::SystemConfig cfg = smallConfig();
    cfg.userlib.optimizedAppend = true;
    sys::System s2(cfg);
    kern::Process &pp = s2.newProcess();
    bypassd::UserLib &ul = s2.userLib(pp);
    const int cfd = s2.kernel.setupCreateFile(pp, "/f", 4096, 1);
    int rc = -1;
    s2.kernel.sysClose(pp, cfd, [&](int r) { rc = r; });
    s2.run();
    const int fd = ulOpen(s2, ul, "/f", kRw);
    auto data = pattern(4096, 2);
    // First append triggers fallocate, subsequent ones go direct.
    for (int i = 0; i < 8; i++) {
        auto r = ulPwrite(s2, ul, 0, fd,
                          data, 4096 + static_cast<std::uint64_t>(i) * 4096);
        EXPECT_EQ(r.n, 4096);
    }
    EXPECT_GE(ul.directWrites(), 7u);
    std::vector<std::uint8_t> back(4096);
    s2.kernel.setupRead(pp, fd, back, 4096 + 3 * 4096);
    EXPECT_EQ(back, data);
}

TEST_F(BypassdFixture, SubSectorReadWorks)
{
    mkFile("/f", 1 << 20, 42);
    const int fd = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    std::vector<std::uint8_t> buf(100);
    auto r = ulPread(s, *lib, 0, fd, buf, 777);
    EXPECT_EQ(r.n, 100);
    std::vector<std::uint8_t> expect(100);
    s.kernel.setupRead(*p, fd, expect, 777);
    EXPECT_EQ(buf, expect);
}

TEST_F(BypassdFixture, PartialWriteRmw)
{
    mkFile("/f", 8192, 42);
    const int fd = ulOpen(s, *lib, "/f", kRw);
    std::vector<std::uint8_t> before(8192);
    s.kernel.setupRead(*p, fd, before, 0);
    auto data = pattern(100, 9);
    auto r = ulPwrite(s, *lib, 0, fd, data, 700);
    EXPECT_EQ(r.n, 100);
    std::vector<std::uint8_t> after(8192);
    s.kernel.setupRead(*p, fd, after, 0);
    // Only bytes [700, 800) changed.
    for (std::size_t i = 0; i < 8192; i++) {
        if (i >= 700 && i < 800)
            ASSERT_EQ(after[i], data[i - 700]);
        else
            ASSERT_EQ(after[i], before[i]) << i;
    }
}

TEST_F(BypassdFixture, OverlappingPartialWritesSerialize)
{
    mkFile("/f", 4096, 42);
    const int fd = ulOpen(s, *lib, "/f", kRw);
    auto d1 = std::vector<std::uint8_t>(100, 0xaa);
    auto d2 = std::vector<std::uint8_t>(100, 0xbb);
    int done = 0;
    // Same sector: the second must be delayed, not interleaved.
    lib->pwrite(0, fd, d1, 10, [&](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 100);
        done++;
    });
    lib->pwrite(1, fd, d2, 50, [&](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 100);
        done++;
    });
    s.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(lib->partialSerialized(), 1u);
    // Final state equals the serial order d1 then d2.
    std::vector<std::uint8_t> back(150);
    s.kernel.setupRead(*p, fd, back, 0);
    for (std::size_t i = 10; i < 50; i++)
        ASSERT_EQ(back[i], 0xaa);
    for (std::size_t i = 50; i < 150; i++)
        ASSERT_EQ(back[i], 0xbb);
}

TEST_F(BypassdFixture, NonOverlappingPartialWritesDoNotSerialize)
{
    mkFile("/f", 1 << 20, 42);
    const int fd = ulOpen(s, *lib, "/f", kRw);
    auto d = std::vector<std::uint8_t>(100, 0xcc);
    int done = 0;
    lib->pwrite(0, fd, d, 10, [&](long long, kern::IoTrace) { done++; });
    lib->pwrite(1, fd, d, 100000, [&](long long, kern::IoTrace) {
        done++;
    });
    s.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(lib->partialSerialized(), 0u);
}

TEST_F(BypassdFixture, FsyncFlushesAndUpdatesTimestamps)
{
    mkFile("/f", 8192, 42);
    const int fd = ulOpen(s, *lib, "/f", kRw);
    auto data = pattern(4096, 9);
    ulPwrite(s, *lib, 0, fd, data, 0);
    InodeNum ino;
    s.ext4.resolve("/f", &ino);
    const Time mtimeBefore = s.ext4.inode(ino)->mtime;
    EXPECT_EQ(ulFsync(s, *lib, 0, fd), 0);
    EXPECT_GE(s.ext4.inode(ino)->mtime, mtimeBefore);
}

TEST_F(BypassdFixture, TruncateShrinksAndBlocksDirectAccessBeyond)
{
    mkFile("/f", 1 << 20, 42);
    const int fd = ulOpen(s, *lib, "/f", kRw);
    int rc = -1;
    lib->ftruncate(fd, 8192, [&](int r) { rc = r; });
    s.run();
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(lib->fileSize(fd), 8192u);
    std::vector<std::uint8_t> buf(4096);
    auto r = ulPread(s, *lib, 0, fd, buf, 16384);
    EXPECT_EQ(r.n, 0); // beyond new EOF
}

// --- Revocation (Section 3.6) ---

TEST_F(BypassdFixture, KernelOpenRevokesDirectAccess)
{
    mkFile("/f", 1 << 20, 42);
    const int fd = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    ASSERT_TRUE(lib->isDirect(fd));
    std::vector<std::uint8_t> buf(4096);
    EXPECT_EQ(ulPread(s, *lib, 0, fd, buf, 0).n, 4096);

    // Another process opens via the kernel interface -> revoke.
    kern::Process &other = s.newProcess();
    const int kfd = kOpen(s, other, "/f", kOpenRead);
    ASSERT_GE(kfd, 0);
    EXPECT_EQ(s.module.revocations(), 1u);

    // The next direct I/O faults, refmap returns 0, falls back, and the
    // data still arrives correctly via the kernel.
    auto r = ulPread(s, *lib, 0, fd, buf, 4096);
    EXPECT_EQ(r.n, 4096);
    EXPECT_GE(lib->iommuFaults(), 1u);
    EXPECT_FALSE(lib->isDirect(fd));
    std::vector<std::uint8_t> expect(4096);
    s.kernel.setupRead(*p, fd, expect, 4096);
    EXPECT_EQ(buf, expect);

    // Subsequent I/O stays on the kernel path without new faults.
    const std::uint64_t faults = lib->iommuFaults();
    EXPECT_EQ(ulPread(s, *lib, 0, fd, buf, 8192).n, 4096);
    EXPECT_EQ(lib->iommuFaults(), faults);
}

TEST_F(BypassdFixture, MultiProcessMetadataChangeRevokes)
{
    mkFile("/f", 1 << 20, 42);
    const int fdA = ulOpen(s, *lib, "/f", kRw);
    kern::Process &pB = s.newProcess();
    bypassd::UserLib &libB = s.userLib(pB);
    const int fdB = ulOpen(s, libB, "/f", kRw);
    ASSERT_TRUE(lib->isDirect(fdA));
    ASSERT_TRUE(libB.isDirect(fdB));

    // Reads and overwrites from both processes are fine (Section 4.5.2).
    std::vector<std::uint8_t> buf(4096);
    EXPECT_EQ(ulPread(s, *lib, 0, fdA, buf, 0).n, 4096);
    EXPECT_EQ(ulPread(s, libB, 0, fdB, buf, 0).n, 4096);

    // Metadata changes from two different processes -> revoke.
    auto data = pattern(4096, 5);
    std::uint64_t szA = lib->fileSize(fdA);
    EXPECT_EQ(ulPwrite(s, *lib, 0, fdA, data, szA).n, 4096); // append A
    std::uint64_t szB = s.ext4.inode(p->file(fdA)->ino)->size;
    EXPECT_EQ(ulPwrite(s, libB, 0, fdB, data, szB).n, 4096); // append B
    EXPECT_GE(s.module.revocations(), 1u);
}

TEST_F(BypassdFixture, RevokedStateClearsWhenAllClose)
{
    mkFile("/f", 1 << 20, 42);
    const int fd = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    kern::Process &other = s.newProcess();
    const int kfd = kOpen(s, other, "/f", kOpenRead);
    InodeNum ino;
    s.ext4.resolve("/f", &ino);
    EXPECT_TRUE(s.module.isRevoked(ino));
    ulClose(s, *lib, fd);
    kClose(s, other, kfd);
    // A fresh open gets direct access again.
    const int fd2 = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    EXPECT_TRUE(lib->isDirect(fd2));
}

// --- Security (Section 5.3) ---

TEST_F(BypassdFixture, ForgedVbaFaults)
{
    mkFile("/f", 1 << 20, 42);
    mkFile("/victim", 1 << 20, 43);
    const int fd = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    ASSERT_TRUE(lib->isDirect(fd));

    // Forge a raw NVMe command with an unmapped VBA on the process's
    // own queue (malicious UserLib bypassing the library).
    auto uq = s.module.createUserQueues(*p, 32, 1 << 20);
    ASSERT_NE(uq, nullptr);
    ssd::Command cmd;
    cmd.op = ssd::Op::Read;
    cmd.addr = 0x7000000000ull; // never fmap()ed
    cmd.addrIsVba = true;
    cmd.len = 4096;
    cmd.dmaIova = uq->dmaIova;
    cmd.useIova = true;
    ssd::Status st = ssd::Status::Success;
    uq->dispatcher->submit(cmd, [&](const ssd::Completion &c) {
        st = c.status;
    });
    s.run();
    EXPECT_EQ(st, ssd::Status::TranslationFault);

    // Forge an LBA-addressed command: VBA-mode queues reject raw LBAs
    // only via translation, so instead verify a raw (non-VBA) command is
    // refused on a user queue... the device accepts LBA only on
    // kernel/SPDK queues; user queues are created VBA-only.
    ssd::Command lba;
    lba.op = ssd::Op::Read;
    lba.addr = 0;
    lba.addrIsVba = false;
    lba.len = 4096;
    lba.dmaIova = uq->dmaIova;
    lba.useIova = true;
    // Depth-check: VBA-mode queue accepts the command; protection comes
    // from the DMA path? No: raw LBA on a user queue must be rejected.
    st = ssd::Status::Success;
    uq->dispatcher->submit(lba, [&](const ssd::Completion &c) {
        st = c.status;
    });
    s.run();
    EXPECT_EQ(st, ssd::Status::InvalidCommand);
    s.module.destroyUserQueues(*p, *uq);
}

TEST_F(BypassdFixture, CannotReadAnotherUsersFile)
{
    // Alice's secret file.
    mkFile("/secret", 64 << 10, 77);
    InodeNum ino;
    s.ext4.resolve("/secret", &ino);
    s.ext4.inode(ino)->mode = 0600;

    // Bob cannot open it, so he never obtains a VBA for it.
    kern::Process &bob = s.newProcess(2000, 2000);
    bypassd::UserLib &bobLib = s.userLib(bob);
    int fd = -1;
    bobLib.open("/secret", kOpenRead | kOpenDirect, 0, [&](int f) {
        fd = f;
    });
    s.run();
    EXPECT_LT(fd, 0);
    // A forged fmap() syscall without a kernel-approved open descriptor
    // is rejected: no VBA, hence no path to the blocks (Section 5.3).
    bypassd::FmapResult res = s.module.fmap(bob, ino, false);
    EXPECT_EQ(res.vba, 0u);
}

TEST_F(BypassdFixture, ReadOnlyOpenCannotWriteViaForgedCommand)
{
    mkFile("/f", 64 << 10, 7);
    const int fd = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    ASSERT_TRUE(lib->isDirect(fd));
    // Malicious process issues a raw write command to its own mapped VBA
    // that was attached read-only.
    auto uq = s.module.createUserQueues(*p, 32, 1 << 20);
    InodeNum ino;
    s.ext4.resolve("/f", &ino);
    auto *cache = static_cast<bypassd::FileTableCache *>(
        s.ext4.inode(ino)->fileTable.get());
    ASSERT_NE(cache, nullptr);
    const Vaddr vba = cache->attachments.at(p->pid()).vba;
    ssd::Command wr;
    wr.op = ssd::Op::Write;
    wr.addr = vba;
    wr.addrIsVba = true;
    wr.len = 4096;
    wr.dmaIova = uq->dmaIova;
    wr.useIova = true;
    ssd::Status st = ssd::Status::Success;
    uq->dispatcher->submit(wr, [&](const ssd::Completion &c) {
        st = c.status;
    });
    s.run();
    EXPECT_EQ(st, ssd::Status::PermissionFault);
    s.module.destroyUserQueues(*p, *uq);
}

TEST_F(BypassdFixture, ClosedFileVbaNoLongerTranslates)
{
    mkFile("/f", 64 << 10, 7);
    const int fd = ulOpen(s, *lib, "/f", kOpenRead | kOpenDirect);
    InodeNum ino;
    s.ext4.resolve("/f", &ino);
    auto *cache = static_cast<bypassd::FileTableCache *>(
        s.ext4.inode(ino)->fileTable.get());
    const Vaddr vba = cache->attachments.at(p->pid()).vba;
    ulClose(s, *lib, fd);
    // After close the FTEs are detached: translation faults.
    auto tr = s.iommu.translateVbaSync(p->pasid(), vba, 4096, false,
                                       s.dev.devId());
    EXPECT_FALSE(tr.ok);
}

TEST_F(BypassdFixture, ZeroPaddingNotPreviousData)
{
    // Write a file, truncate + sync (blocks freed), create a second file
    // reusing those blocks, and read it directly: must be zeros, never
    // the first file's bytes (Section 5.3 confidentiality).
    mkFile("/a", 1 << 20, 123);
    InodeNum inoA;
    s.ext4.resolve("/a", &inoA);
    fs::Inode *a = s.ext4.inode(inoA);
    ASSERT_EQ(s.ext4.truncate(*a, 0), fs::FsStatus::Ok);
    s.ext4.fsyncMeta(*a);

    const int fd = kOpen(s, *p, "/b",
                         kOpenRead | kOpenWrite | kOpenCreate
                             | kOpenDirect);
    int rc = -1;
    s.kernel.sysFallocate(*p, fd, 0, 1 << 20, [&](int r) { rc = r; });
    s.run();
    ASSERT_EQ(rc, 0);
    kClose(s, *p, fd);

    bypassd::UserLib &ul = s.userLib(*p);
    const int dfd = ulOpen(s, ul, "/b", kOpenRead | kOpenDirect);
    std::vector<std::uint8_t> buf(4096, 0xff);
    auto r = ulPread(s, ul, 0, dfd, buf, 0);
    EXPECT_EQ(r.n, 4096);
    for (auto b : buf)
        ASSERT_EQ(b, 0);
}

// --- Multi-process sharing (Fig. 10 semantics) ---

TEST_F(BypassdFixture, TwoProcessesShareDeviceDirectly)
{
    mkFile("/f1", 1 << 20, 1);
    mkFile("/f2", 1 << 20, 2);
    kern::Process &p2 = s.newProcess();
    bypassd::UserLib &lib2 = s.userLib(p2);
    const int fd1 = ulOpen(s, *lib, "/f1", kRw);
    const int fd2 = ulOpen(s, lib2, "/f2", kRw);
    ASSERT_TRUE(lib->isDirect(fd1));
    ASSERT_TRUE(lib2.isDirect(fd2));
    int done = 0;
    std::vector<std::uint8_t> b1(4096), b2(4096);
    lib->pread(0, fd1, b1, 0, [&](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 4096);
        done++;
    });
    lib2.pread(0, fd2, b2, 0, [&](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 4096);
        done++;
    });
    s.run();
    EXPECT_EQ(done, 2);
    std::vector<std::uint8_t> e1(4096), e2(4096);
    s.kernel.setupRead(*p, fd1, e1, 0);
    s.kernel.setupRead(p2, fd2, e2, 0);
    EXPECT_EQ(b1, e1);
    EXPECT_EQ(b2, e2);
}

TEST_F(BypassdFixture, SharedFileReadBySecondProcessSeesWrites)
{
    mkFile("/shared", 1 << 20, 1);
    kern::Process &p2 = s.newProcess();
    bypassd::UserLib &lib2 = s.userLib(p2);
    const int fdA = ulOpen(s, *lib, "/shared", kRw);
    const int fdB = ulOpen(s, lib2, "/shared", kOpenRead | kOpenDirect);
    ASSERT_TRUE(lib->isDirect(fdA));
    ASSERT_TRUE(lib2.isDirect(fdB));
    auto data = pattern(4096, 55);
    ulPwrite(s, *lib, 0, fdA, data, 32768);
    std::vector<std::uint8_t> back(4096);
    auto r = ulPread(s, lib2, 0, fdB, back, 32768);
    EXPECT_EQ(r.n, 4096);
    EXPECT_EQ(back, data); // device is the point of coherence
}
