/**
 * @file
 * Evaluation-application tests: WiredTiger model (geometry, engine
 * ordering, cache sensitivity), BPF-KV (tree depth, 7-I/O lookups,
 * materialized layout, engine ordering), KVell (QD trade-off, same-file
 * write bottleneck avoidance).
 */

#include <gtest/gtest.h>

#include "apps/bpfkv.hpp"
#include "apps/kvell.hpp"
#include "apps/wiredtiger.hpp"
#include "tests/helpers.hpp"

using namespace bpd;
using namespace bpd::test;
using namespace bpd::apps;

namespace {

sys::SystemConfig
appConfig()
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 16ull << 30;
    return cfg;
}

} // namespace

// --- WiredTiger ---

TEST(WiredTiger, GeometryCoversRecords)
{
    sys::System s(appConfig());
    WiredTigerConfig cfg;
    cfg.records = 1'000'000;
    WiredTigerModel wt(s, cfg);
    wt.setup();
    ASSERT_GE(wt.depth(), 3u);
    EXPECT_EQ(wt.pagesAtLevel(0), 1u); // root
    // Leaves cover all records.
    EXPECT_GE(wt.pagesAtLevel(wt.depth() - 1) * wt.recordsPerLeaf(),
              cfg.records);
    // Page offsets are disjoint per level and inside the file.
    EXPECT_LT(wt.pageOffset(wt.depth() - 1,
                            wt.pagesAtLevel(wt.depth() - 1) - 1),
              wt.fileBytes());
    // Path indices are monotone with key.
    EXPECT_LE(wt.pageIndexFor(0, wt.depth() - 1),
              wt.pageIndexFor(cfg.records - 1, wt.depth() - 1));
}

TEST(WiredTiger, BypassdBeatsSyncAndXrp)
{
    auto runOne = [](WtEngine e) {
        sys::System s(appConfig());
        WiredTigerConfig cfg;
        cfg.records = 1'000'000;
        cfg.cacheBytes = 8ull << 20; // small cache: I/O-bound
        cfg.engine = e;
        WiredTigerModel wt(s, cfg);
        wt.setup();
        return wt.run(wl::Ycsb::C, 2, 1500);
    };
    const double syncK = runOne(WtEngine::Sync).kops;
    const double xrpK = runOne(WtEngine::Xrp).kops;
    const double bpdK = runOne(WtEngine::Bypassd).kops;
    // Fig. 13 ordering: bypassd > xrp > sync for read-heavy YCSB.
    EXPECT_GT(bpdK, xrpK);
    EXPECT_GT(xrpK, syncK);
    // Paper: ~18% over baseline on average; allow a broad band.
    EXPECT_GT(bpdK, 1.05 * syncK);
    EXPECT_LT(bpdK, 2.0 * syncK);
}

TEST(WiredTiger, LargerCacheReducesDeviceIos)
{
    auto iosWith = [](std::uint64_t cacheBytes) {
        sys::System s(appConfig());
        WiredTigerConfig cfg;
        cfg.records = 1'000'000;
        cfg.cacheBytes = cacheBytes;
        WiredTigerModel wt(s, cfg);
        wt.setup();
        return wt.run(wl::Ycsb::C, 1, 6000).deviceIos;
    };
    // 1 MiB cache (256 pages) thrashes; 64 MiB holds the whole tree.
    const std::uint64_t small = iosWith(1ull << 20);
    const std::uint64_t large = iosWith(64ull << 20);
    EXPECT_LT(large, small);
}

TEST(WiredTiger, ScanIssuesSingleLargeRead)
{
    sys::System s(appConfig());
    WiredTigerConfig cfg;
    cfg.records = 1'000'000;
    cfg.engine = WtEngine::Sync;
    WiredTigerModel wt(s, cfg);
    wt.setup();
    auto res = wt.run(wl::Ycsb::E, 1, 300);
    EXPECT_GT(res.ops, 0u);
    // Scans dominate (95%); each costs ~1 device I/O after warm cache,
    // far fewer than depth-many per op.
    EXPECT_LT(static_cast<double>(res.deviceIos),
              static_cast<double>(res.ops) * wt.depth());
}

// --- BPF-KV ---

TEST(BpfKv, PaperScaleDepthIsSix)
{
    sys::SystemConfig cfg = appConfig();
    cfg.deviceBytes = 128ull << 30;
    sys::System s(cfg);
    BpfKvConfig kc;
    kc.records = 920'000'000;
    kc.engine = KvEngine::Sync;
    BpfKv kv(s, kc);
    kv.setup();
    EXPECT_EQ(kv.depth(), 6u);        // "a 6-level index"
    EXPECT_EQ(kv.iosPerLookup(), 7u); // "each lookup requires 7 I/Os"
}

TEST(BpfKv, MaterializedLayoutIsConsistent)
{
    sys::System s(appConfig());
    BpfKvConfig kc;
    kc.records = 40000;
    kc.engine = KvEngine::Sync;
    kc.materialize = true;
    BpfKv kv(s, kc);
    kv.setup();
    // Read a node through the raw media and check its stamp.
    kern::Process &p = s.newProcess();
    const int fd = s.kernel.setupOpen(p, "/bpfkv.db",
                                      fs::kOpenRead | fs::kOpenDirect);
    ASSERT_GE(fd, 0);
    for (unsigned l = 0; l < kv.depth(); l++) {
        const std::uint64_t idx = kv.nodeIndexFor(12345, l);
        std::vector<std::uint8_t> node(512);
        ASSERT_EQ(s.kernel.setupRead(p, fd, node, kv.nodeOffset(l, idx)),
                  512);
        std::uint64_t hdr[3];
        std::memcpy(hdr, node.data(), sizeof(hdr));
        EXPECT_EQ(hdr[0], 0xB9F0CAFEull);
        EXPECT_EQ(hdr[1], l);
        EXPECT_EQ(hdr[2], idx);
    }
    // Value readback.
    std::vector<std::uint8_t> val(16);
    ASSERT_EQ(s.kernel.setupRead(p, fd, val, kv.valueOffset(12345)), 16);
    std::uint64_t kv2[2];
    std::memcpy(kv2, val.data(), sizeof(kv2));
    EXPECT_EQ(kv2[0], 12345u);
    EXPECT_EQ(kv2[1], ~12345ull);
}

TEST(BpfKv, EngineLatencyOrdering)
{
    auto lat = [](KvEngine e) {
        sys::System s(appConfig());
        BpfKvConfig kc;
        kc.records = 10'000'000;
        kc.engine = e;
        BpfKv kv(s, kc);
        kv.setup();
        return kv.run(1, 400).latency.mean();
    };
    const double syncL = lat(KvEngine::Sync);
    const double xrpL = lat(KvEngine::Xrp);
    const double bpdL = lat(KvEngine::Bypassd);
    const double spdkL = lat(KvEngine::Spdk);
    // Fig. 15: sync > xrp > bypassd > spdk.
    EXPECT_GT(syncL, xrpL);
    EXPECT_GT(xrpL, bpdL);
    EXPECT_GT(bpdL, spdkL);
    // Paper: bypassd is ~a few us above SPDK (translation per hop).
    EXPECT_LT(bpdL - spdkL, 8000.0);
    // Paper: BypassD improves throughput over sync by ~72% => latency
    // ratio ~1.7.
    EXPECT_GT(syncL / bpdL, 1.3);
}

TEST(BpfKv, TailAboveMean)
{
    sys::System s(appConfig());
    BpfKvConfig kc;
    kc.records = 10'000'000;
    kc.engine = KvEngine::Bypassd;
    BpfKv kv(s, kc);
    kv.setup();
    auto r = kv.run(4, 400);
    EXPECT_GT(static_cast<double>(r.latency.p999()),
              r.latency.mean());
}

// --- KVell ---

TEST(Kvell, Qd64TradesLatencyForThroughput)
{
    auto runOne = [](std::uint32_t qd) {
        sys::System s(appConfig());
        KvellConfig kc;
        kc.records = 500'000;
        kc.queueDepth = qd;
        kc.engine = KvellEngine::Libaio;
        KvellModel kv(s, kc);
        kv.setup();
        return kv.run(wl::Ycsb::B, 2, 2000);
    };
    auto r1 = runOne(1);
    auto r64 = runOne(64);
    EXPECT_GT(r64.kops(), 2.0 * r1.kops());
    EXPECT_GT(r64.latency.mean(), 5.0 * r1.latency.mean());
}

TEST(Kvell, BypassdCutsLatencyVsQd64)
{
    auto runOne = [](KvellEngine e, std::uint32_t qd) {
        sys::System s(appConfig());
        KvellConfig kc;
        kc.records = 500'000;
        kc.queueDepth = qd;
        kc.engine = e;
        KvellModel kv(s, kc);
        kv.setup();
        return kv.run(wl::Ycsb::C, 4, 1500);
    };
    auto aio64 = runOne(KvellEngine::Libaio, 64);
    auto bpd = runOne(KvellEngine::Bypassd, 1);
    // Fig. 16: KVell_64 keeps higher throughput, BypassD cuts latency by
    // orders of magnitude.
    EXPECT_GT(aio64.kops(), bpd.kops());
    EXPECT_LT(bpd.latency.mean() * 20.0, aio64.latency.mean());
}

TEST(Kvell, WriteHeavyFavoursBypassd)
{
    auto runOne = [](KvellEngine e, std::uint32_t qd) {
        sys::System s(appConfig());
        KvellConfig kc;
        kc.records = 500'000;
        kc.queueDepth = qd;
        kc.engine = e;
        KvellModel kv(s, kc);
        kv.setup();
        return kv.run(wl::Ycsb::A, 8, 1200);
    };
    auto aio64 = runOne(KvellEngine::Libaio, 64);
    auto bpd = runOne(KvellEngine::Bypassd, 1);
    // YCSB A: ext4 same-inode write serialization throttles the kernel
    // path; BypassD approaches its throughput at far lower latency
    // (Section 6.5).
    EXPECT_GT(bpd.kops(), 0.5 * aio64.kops());
    EXPECT_LT(bpd.latency.mean(), aio64.latency.mean());
}
