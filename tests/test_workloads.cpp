/**
 * @file
 * Workload-engine tests: the fio runner produces the paper's latency
 * ordering (spdk < bypassd < io_uring < sync <= libaio) and sane
 * bandwidth; YCSB generators produce the right op mixes.
 */

#include <gtest/gtest.h>

#include "tests/helpers.hpp"
#include "workloads/fio.hpp"
#include "workloads/ycsb.hpp"

using namespace bpd;
using namespace bpd::test;
using namespace bpd::wl;

namespace {

FioResult
quickFio(Engine e, RwMode rw, std::uint32_t bs, unsigned jobs = 1,
         bool perProcess = false)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 16ull << 30;
    sys::System s(cfg);
    FioRunner runner(s);
    FioJob job;
    job.engine = e;
    job.rw = rw;
    job.bs = bs;
    job.numJobs = jobs;
    job.fileBytes = 256ull << 20;
    job.runtime = 10 * kMs;
    job.warmup = 1 * kMs;
    job.perProcess = perProcess;
    return runner.run(job);
}

} // namespace

TEST(Fio, SyncMatchesTable1)
{
    FioResult r = quickFio(Engine::Sync, RwMode::RandRead, 4096);
    EXPECT_GT(r.ops, 500u);
    EXPECT_NEAR(r.latency.mean(), 7850.0, 600.0);
}

TEST(Fio, EngineLatencyOrdering)
{
    const double sync
        = quickFio(Engine::Sync, RwMode::RandRead, 4096).latency.mean();
    const double aio
        = quickFio(Engine::Libaio, RwMode::RandRead, 4096).latency.mean();
    const double uring
        = quickFio(Engine::IoUring, RwMode::RandRead, 4096)
              .latency.mean();
    const double spdk
        = quickFio(Engine::Spdk, RwMode::RandRead, 4096).latency.mean();
    const double bypassd
        = quickFio(Engine::Bypassd, RwMode::RandRead, 4096)
              .latency.mean();

    // Fig. 6 ordering.
    EXPECT_LT(spdk, bypassd);
    EXPECT_LT(bypassd, uring);
    EXPECT_LT(uring, sync);
    EXPECT_LE(sync, aio);
    // Paper: BypassD ~42% lower latency than sync at 4 KiB...
    EXPECT_LT(bypassd, 0.70 * sync);
    // ...and close to SPDK (translation overhead only).
    EXPECT_LT(bypassd - spdk, 1200.0);
}

TEST(Fio, WriteLatencyBypassdHidesTranslation)
{
    FioResult rd = quickFio(Engine::Bypassd, RwMode::RandRead, 4096);
    FioResult wr = quickFio(Engine::Bypassd, RwMode::RandWrite, 4096);
    EXPECT_GT(rd.avgTranslateNs, 300.0);
    EXPECT_LT(wr.avgTranslateNs, 50.0); // hidden behind data-in DMA
}

TEST(Fio, LargeBlockApproachesDeviceBandwidth)
{
    FioResult r = quickFio(Engine::Bypassd, RwMode::RandRead, 128 << 10);
    // Fig. 6: QD1 128 KiB reads reach ~3.5-4 GB/s (latency-bound).
    EXPECT_GT(r.bwBytesPerSec(), 3.0e9);
    EXPECT_LT(r.bwBytesPerSec(), 7.2e9);
}

TEST(Fio, SeqReadWorks)
{
    FioResult r = quickFio(Engine::Sync, RwMode::SeqRead, 4096);
    EXPECT_GT(r.ops, 500u);
}

TEST(Fio, MultiProcessSharingOnlyBypassd)
{
    // 4 writer processes share the device directly (Fig. 10).
    FioResult r = quickFio(Engine::Bypassd, RwMode::RandWrite, 4096,
                           4, /*perProcess=*/true);
    EXPECT_GT(r.ops, 1000u);
    // Far from device saturation, aggregate bandwidth scales.
    FioResult r1 = quickFio(Engine::Bypassd, RwMode::RandWrite, 4096,
                            1, true);
    EXPECT_GT(r.bwBytesPerSec(), 2.5 * r1.bwBytesPerSec());
}

TEST(Fio, ThreadScalingIncreasesIops)
{
    const double one
        = quickFio(Engine::Bypassd, RwMode::RandRead, 4096, 1).iops();
    const double four
        = quickFio(Engine::Bypassd, RwMode::RandRead, 4096, 4).iops();
    EXPECT_GT(four, 3.0 * one);
}

TEST(Ycsb, MixRatios)
{
    YcsbGenerator a(Ycsb::A, 100000, 1);
    int reads = 0, updates = 0;
    for (int i = 0; i < 20000; i++) {
        YcsbOp op = a.next();
        if (op.kind == YcsbOp::Kind::Read)
            reads++;
        else if (op.kind == YcsbOp::Kind::Update)
            updates++;
    }
    EXPECT_NEAR(reads, 10000, 400);
    EXPECT_NEAR(updates, 10000, 400);

    YcsbGenerator c(Ycsb::C, 100000, 2);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(c.next().kind, YcsbOp::Kind::Read);
}

TEST(Ycsb, InsertsGrowKeyspace)
{
    YcsbGenerator d(Ycsb::D, 1000, 3);
    const std::uint64_t before = d.records();
    int inserts = 0;
    for (int i = 0; i < 10000; i++) {
        YcsbOp op = d.next();
        if (op.kind == YcsbOp::Kind::Insert) {
            EXPECT_GE(op.key, before);
            inserts++;
        } else {
            EXPECT_LT(op.key, d.records());
        }
    }
    EXPECT_NEAR(inserts, 500, 120);
    EXPECT_EQ(d.records(), before + static_cast<std::uint64_t>(inserts));
}

TEST(Ycsb, ScansHaveLengths)
{
    YcsbGenerator e(Ycsb::E, 100000, 4);
    int scans = 0;
    for (int i = 0; i < 1000; i++) {
        YcsbOp op = e.next();
        if (op.kind == YcsbOp::Kind::Scan) {
            scans++;
            EXPECT_GE(op.scanLen, 1u);
            EXPECT_LE(op.scanLen, YcsbGenerator::kMaxScanLen);
        }
    }
    EXPECT_GT(scans, 900);
}
