/**
 * @file
 * Determinism regression tests (invariant 9: same seed => identical
 * virtual-time outputs) guarding the event-queue/block-store hot-path
 * internals:
 *
 *  - a mixed kernel/BypassD fio workload run twice with the same seed
 *    must produce bit-identical stats digests;
 *  - the event queue's ordering contract (time order, FIFO among
 *    same-time events, cancelled events never run) checked against a
 *    reference model under randomized schedule/cancel sequences.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/sim_executor.hpp"
#include "system/fleet.hpp"
#include "system/system.hpp"
#include "workloads/fio.hpp"

using namespace bpd;
using namespace bpd::sim;

namespace {

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; i++) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
digestFio(std::uint64_t h, const wl::FioResult &r)
{
    h = fnv(h, r.ops);
    h = fnv(h, r.bytes);
    h = fnv(h, r.elapsed);
    h = fnv(h, r.latency.count());
    h = fnv(h, r.latency.min());
    h = fnv(h, r.latency.max());
    h = fnv(h, r.latency.p50());
    h = fnv(h, r.latency.p99());
    return h;
}

/**
 * One kernel-interface job and one BypassD job on a single system.
 * traceLevel 0 runs untraced; 1..3 enable the obs tracer at that
 * verbosity — the digest must not depend on it (tracing transparency).
 * shards > 1 binds the system to a sharded executor as its only
 * domain — the digest must not depend on that either.
 */
std::uint64_t
runMixedWorkload(std::uint64_t seed, int traceLevel = 0,
                 unsigned shards = 1)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 2ull << 30;
    cfg.seed = seed;
    sys::System s(cfg);
    if (traceLevel > 0)
        s.enableTracing(static_cast<obs::Level>(traceLevel));
    std::optional<sim::SimExecutor> ex;
    if (shards > 1) {
        ex.emplace(shards);
        s.bindExecutor(&*ex, ex->addDomain(s.eq, 0, "sys"));
    }
    wl::FioRunner runner(s);

    std::uint64_t h = 0xcbf29ce484222325ull;
    const wl::Engine engines[] = {wl::Engine::Sync, wl::Engine::Bypassd};
    const wl::RwMode modes[] = {wl::RwMode::RandWrite, wl::RwMode::RandRead};
    int jobNum = 0;
    for (wl::Engine e : engines) {
        for (wl::RwMode rw : modes) {
            wl::FioJob job;
            job.engine = e;
            job.rw = rw;
            job.bs = 4096;
            job.numJobs = 2;
            job.runtime = 2 * kMs;
            job.warmup = 200 * kUs;
            job.fileBytes = 8ull << 20;
            job.seed = seed + jobNum;
            job.filePrefix = sim::strf("/mix%d", jobNum);
            jobNum++;
            h = digestFio(h, runner.run(job));
        }
    }
    h = fnv(h, s.now());
    h = fnv(h, s.eq.executed());
    h = fnv(h, s.store.residentBytes());
    return h;
}

/**
 * Scaled-down fleet_fio scenario: three machines, two BypassD jobs
 * each, beacon-coupled to the controller. Digest folds every
 * machine's fio stats plus the controller's delivery-order hash, so
 * any cross-shard reordering — not just dropped work — flips it.
 */
std::uint64_t
runMiniFleet(unsigned shards)
{
    sim::setVerbose(false);
    sys::FleetConfig fc;
    fc.systems = 3;
    fc.shards = shards;
    fc.deviceBytes = 1ull << 30;
    fc.seed = 11;
    fc.fabricLatencyNs = 10 * kUs;
    fc.beaconPeriodNs = 50 * kUs;
    sys::Fleet fleet(fc);

    wl::FioJob job;
    job.engine = wl::Engine::Bypassd;
    job.rw = wl::RwMode::RandRead;
    job.bs = 4096;
    job.numJobs = 2;
    job.runtime = 3 * kMs;
    job.warmup = 300 * kUs;
    job.fileBytes = 8ull << 20;

    std::vector<std::unique_ptr<wl::FioRunner>> runners;
    std::vector<wl::FioPending> pending;
    Time horizon = 0;
    for (unsigned i = 0; i < fleet.size(); i++) {
        wl::FioJob j = job;
        j.seed = 1 + i;
        j.filePrefix = sim::strf("/mini%u_f", i);
        runners.push_back(
            std::make_unique<wl::FioRunner>(fleet.system(i)));
        pending.push_back(runners.back()->arm(j));
        horizon = std::max(horizon,
                           fleet.system(i).now() + j.warmup + j.runtime);
    }
    fleet.start(horizon);
    fleet.run();

    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned i = 0; i < fleet.size(); i++) {
        h = digestFio(h, runners[i]->collect(std::move(pending[i])));
        h = fnv(h, fleet.system(i).now());
        h = fnv(h, fleet.system(i).eq.executed());
    }
    h = fnv(h, fleet.controllerDigest());
    h = fnv(h, fleet.beacons());
    EXPECT_GT(fleet.beacons(), 0u);
    return h;
}

} // namespace

TEST(Determinism, SameSeedSameDigest)
{
    const std::uint64_t a = runMixedWorkload(7);
    const std::uint64_t b = runMixedWorkload(7);
    EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiffer)
{
    EXPECT_NE(runMixedWorkload(7), runMixedWorkload(8));
}

/**
 * Tracing transparency: enabling the obs tracer — at any verbosity —
 * must not perturb the simulation. Instrumentation only reads state;
 * it never schedules events or draws RNG, so the same-seed digest is
 * bit-identical whether tracing is off, requests-only, or full-device
 * detail.
 */
TEST(Determinism, TracingDoesNotPerturbDigest)
{
    const std::uint64_t off = runMixedWorkload(7);
    EXPECT_EQ(off, runMixedWorkload(7, 1)); // Level::Requests
    EXPECT_EQ(off, runMixedWorkload(7, 3)); // Level::Device
}

/**
 * Reference-model check of the execution order contract under random
 * schedule/cancel sequences: events run in (time, schedule order), and
 * cancelled events never run. A stable sort by time of the schedule
 * sequence is the specification.
 */
TEST(Determinism, RandomizedScheduleCancelMatchesReferenceModel)
{
    Rng rng(1234);
    for (int round = 0; round < 50; round++) {
        EventQueue eq;
        struct Ref
        {
            Time when;
            int tag;
            bool cancelled = false;
        };
        std::vector<Ref> refs;
        std::vector<EventId> ids;
        std::vector<int> got;

        const int k = 1 + static_cast<int>(rng.nextUint(200));
        for (int i = 0; i < k; i++) {
            const Time t = rng.nextUint(40);
            ids.push_back(eq.schedule(
                t, [&got, i]() { got.push_back(i); }));
            refs.push_back(Ref{t, i});
        }

        std::size_t live = refs.size();
        for (int i = 0; i < k; i++) {
            if (rng.nextUint(3) == 0) {
                EXPECT_TRUE(eq.cancel(ids[i]));
                EXPECT_FALSE(eq.cancel(ids[i])); // double cancel fails
                refs[i].cancelled = true;
                live--;
            }
        }
        EXPECT_EQ(eq.pending(), live);

        eq.run();

        std::stable_sort(refs.begin(), refs.end(),
                         [](const Ref &a, const Ref &b) {
                             return a.when < b.when;
                         });
        std::vector<int> expected;
        for (const Ref &r : refs) {
            if (!r.cancelled)
                expected.push_back(r.tag);
        }
        EXPECT_EQ(got, expected) << "round " << round;
        EXPECT_EQ(eq.pending(), 0u);
        EXPECT_TRUE(eq.empty());
    }
}

/** Cancellation from inside a running callback, including same-time. */
TEST(Determinism, CancelFromCallbackPreventsSameTimeEvent)
{
    EventQueue eq;
    bool bRan = false;
    EventId b = 0;
    eq.schedule(10, [&]() { EXPECT_TRUE(eq.cancel(b)); });
    b = eq.schedule(10, [&]() { bRan = true; });
    eq.run();
    EXPECT_FALSE(bRan);
    EXPECT_EQ(eq.pending(), 0u);
}

/**
 * Binding a system to a sharded executor as its only domain must be
 * byte-for-byte invisible: same windows of execution, same digest.
 */
TEST(ShardDeterminism, BoundSingleSystemMatchesPlainDigest)
{
    const std::uint64_t plain = runMixedWorkload(7);
    EXPECT_EQ(plain, runMixedWorkload(7, 0, 2));
    EXPECT_EQ(plain, runMixedWorkload(7, 0, 4));
}

/**
 * The beacon-coupled mini fleet exchanges real cross-domain messages;
 * its digest (fio stats + controller delivery-order hash) must be
 * identical at 1, 2, and 4 shards (4 clamps to the 3 machines).
 */
TEST(ShardDeterminism, FleetDigestInvariantAcrossShardCounts)
{
    const std::uint64_t one = runMiniFleet(1);
    EXPECT_EQ(one, runMiniFleet(2));
    EXPECT_EQ(one, runMiniFleet(4));
}
