/**
 * @file
 * Tests for statistics (histogram percentiles, time series) and RNG /
 * workload distributions (determinism, uniformity, zipfian skew).
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "sim/stats.hpp"

using namespace bpd;
using namespace bpd::sim;

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue)
{
    Histogram h;
    h.record(5000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 5000u);
    EXPECT_EQ(h.max(), 5000u);
    // Bucketed value within ~2% relative resolution.
    EXPECT_NEAR(static_cast<double>(h.p50()), 5000.0, 5000 * 0.02);
}

TEST(Histogram, PercentileOrdering)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 10000; v++)
        h.record(v);
    EXPECT_LE(h.percentile(10), h.percentile(50));
    EXPECT_LE(h.percentile(50), h.percentile(90));
    EXPECT_LE(h.percentile(90), h.percentile(99));
    EXPECT_NEAR(static_cast<double>(h.p50()), 5000.0, 5000 * 0.05);
    EXPECT_NEAR(static_cast<double>(h.percentile(99)), 9900.0,
                9900 * 0.05);
}

TEST(Histogram, MeanExact)
{
    Histogram h;
    h.record(100);
    h.record(300);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Histogram, MergeCombines)
{
    Histogram a, b;
    for (int i = 0; i < 100; i++)
        a.record(1000);
    for (int i = 0; i < 100; i++)
        b.record(9000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_NEAR(a.mean(), 5000.0, 200.0);
    EXPECT_GT(a.percentile(99), 8000u);
    EXPECT_LT(a.percentile(10), 1100u);
}

TEST(Histogram, LargeValues)
{
    Histogram h;
    h.record(1ull << 35);
    EXPECT_NEAR(static_cast<double>(h.max()),
                static_cast<double>(1ull << 35), 1.0);
    EXPECT_GT(h.p50(), (1ull << 35) * 97 / 100);
}

TEST(TimeSeries, BucketsAccumulate)
{
    TimeSeries ts(1000);
    ts.record(100, 1.0);
    ts.record(900, 2.0);
    ts.record(1500, 5.0);
    EXPECT_DOUBLE_EQ(ts.bucketSum(0), 3.0);
    EXPECT_DOUBLE_EQ(ts.bucketSum(1), 5.0);
    EXPECT_DOUBLE_EQ(ts.bucketSum(2), 0.0);
}

TEST(TimeSeries, RateScalesToSeconds)
{
    TimeSeries ts(kMs); // 1 ms buckets
    ts.record(0, 10.0);
    EXPECT_DOUBLE_EQ(ts.bucketRate(0), 10.0 * 1000.0);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (a.next() == b.next())
            same++;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++) {
        const std::uint64_t v = rng.nextUint(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(7);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 100000; i++)
        hits[rng.nextUint(10)]++;
    for (int h : hits)
        EXPECT_NEAR(h, 10000, 600);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; i++) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, LognormalJitterMedianNearOne)
{
    Rng rng(11);
    std::vector<double> vals;
    for (int i = 0; i < 10001; i++)
        vals.push_back(rng.lognormalJitter(0.1));
    std::sort(vals.begin(), vals.end());
    EXPECT_NEAR(vals[vals.size() / 2], 1.0, 0.02);
    EXPECT_EQ(rng.lognormalJitter(0.0), 1.0);
}

TEST(Zipfian, SkewTowardsHead)
{
    Rng rng(13);
    ZipfianGenerator zipf(1000);
    std::uint64_t head = 0, total = 100000;
    for (std::uint64_t i = 0; i < total; i++) {
        if (zipf.next(rng) < 10)
            head++;
    }
    // With theta=0.99, the top-1% of keys draw a large share (>30%).
    EXPECT_GT(head, total * 30 / 100);
}

TEST(Zipfian, InBounds)
{
    Rng rng(17);
    ZipfianGenerator zipf(100);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(zipf.next(rng), 100u);
}

TEST(Zipfian, GrowKeepsBounds)
{
    Rng rng(19);
    ZipfianGenerator zipf(100);
    zipf.grow(200);
    EXPECT_EQ(zipf.items(), 200u);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(zipf.next(rng), 200u);
}

TEST(ScrambledZipfian, SpreadsHotKeys)
{
    Rng rng(23);
    ScrambledZipfianGenerator gen(1000);
    // The most popular scrambled keys should not be clustered at 0.
    std::vector<std::uint64_t> counts(1000, 0);
    for (int i = 0; i < 100000; i++)
        counts[gen.next(rng)]++;
    const auto hottest = static_cast<std::uint64_t>(
        std::max_element(counts.begin(), counts.end())
        - counts.begin());
    // Deterministic given the hash, but extremely unlikely to be < 10
    // for a scrambled distribution.
    EXPECT_GT(hottest, 10u);
}

TEST(Latest, FavoursNewestKeys)
{
    Rng rng(29);
    LatestGenerator gen(1000);
    std::uint64_t newest = 0;
    for (int i = 0; i < 10000; i++) {
        if (gen.next(rng) >= 990)
            newest++;
    }
    EXPECT_GT(newest, 3000u);
    gen.insert();
    EXPECT_EQ(gen.items(), 1001u);
}

TEST(Format, HumanReadable)
{
    EXPECT_EQ(fmtNs(500), "500ns");
    EXPECT_EQ(fmtNs(1500), "1.50us");
    EXPECT_EQ(fmtNs(2.5e6), "2.50ms");
    EXPECT_EQ(fmtBw(3.5e9), "3.50GB/s");
}
