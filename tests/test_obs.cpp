/**
 * @file
 * Tests of the observability subsystem (src/obs/): metrics registry
 * snapshot/merge/JSON, tracer recording semantics, span invariants on a
 * real traced BypassD run, and Chrome trace-event export round-trip
 * through the bundled JSON parser.
 */

#include <algorithm>
#include <cstdio>
#include <initializer_list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "system/system.hpp"
#include "workloads/fio.hpp"

using namespace bpd;

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(Metrics, FindOrCreateReturnsStableHandles)
{
    obs::MetricsRegistry reg;
    obs::Counter &c1 = reg.counter("ssd", "ops");
    c1.add(3);
    obs::Counter &c2 = reg.counter("ssd", "ops");
    EXPECT_EQ(&c1, &c2);
    EXPECT_EQ(c2.value(), 3u);

    obs::Gauge &g = reg.gauge("sim", "now_ns");
    g.set(42.5);
    EXPECT_DOUBLE_EQ(reg.gauge("sim", "now_ns").value(), 42.5);

    sim::Histogram &h = reg.histogram("obs", "req_total_ns");
    h.record(1000);
    EXPECT_EQ(reg.histogram("obs", "req_total_ns").count(), 1u);
}

TEST(Metrics, SnapshotCapturesAllKinds)
{
    obs::MetricsRegistry reg;
    reg.counter("a", "c").add(7);
    reg.gauge("a", "g").set(1.25);
    reg.histogram("a", "h").record(512);

    const obs::MetricsSnapshot s = reg.snapshot();
    ASSERT_EQ(s.counters.count("a.c"), 1u);
    EXPECT_EQ(s.counters.at("a.c"), 7u);
    ASSERT_EQ(s.gauges.count("a.g"), 1u);
    EXPECT_DOUBLE_EQ(s.gauges.at("a.g"), 1.25);
    ASSERT_EQ(s.histograms.count("a.h"), 1u);
    EXPECT_EQ(s.histograms.at("a.h").count(), 1u);
}

TEST(Metrics, MergeSumsCountersAndMergesHistogramsExactly)
{
    obs::MetricsRegistry a, b;
    a.counter("m", "c").add(10);
    b.counter("m", "c").add(5);
    b.counter("m", "only_b").add(2);
    a.gauge("m", "g").set(1.0);
    b.gauge("m", "g").set(2.0);
    for (int i = 0; i < 100; i++)
        a.histogram("m", "h").record(100);
    for (int i = 0; i < 100; i++)
        b.histogram("m", "h").record(10000);

    obs::MetricsSnapshot s = a.snapshot();
    s.merge(b.snapshot());

    EXPECT_EQ(s.counters.at("m.c"), 15u);
    EXPECT_EQ(s.counters.at("m.only_b"), 2u);
    EXPECT_DOUBLE_EQ(s.gauges.at("m.g"), 2.0); // overwrite semantics
    // Histograms are carried whole, so the merged percentile is exact:
    // 200 samples, half at 100 and half at 10000.
    const sim::Histogram &h = s.histograms.at("m.h");
    EXPECT_EQ(h.count(), 200u);
    EXPECT_LE(h.percentile(25), 150.0);
    EXPECT_GE(h.percentile(75), 5000.0);
}

TEST(Metrics, ToJsonRoundTripsThroughParser)
{
    obs::MetricsRegistry reg;
    reg.counter("ssd", "ops").add(123);
    reg.gauge("sim", "now_ns").set(5e9);
    sim::Histogram &h = reg.histogram("obs", "req_total_ns");
    for (int i = 1; i <= 1000; i++)
        h.record(static_cast<std::uint64_t>(i));

    const std::string text = reg.snapshot().toJson();
    obs::json::Value root;
    std::string err;
    ASSERT_TRUE(obs::json::parse(text, root, err)) << err;
    ASSERT_TRUE(root.isObject());

    const obs::json::Value *counters = root.find("counters");
    ASSERT_TRUE(counters && counters->isObject());
    const obs::json::Value *ops = counters->find("ssd.ops");
    ASSERT_TRUE(ops && ops->isNumber());
    EXPECT_EQ(static_cast<std::uint64_t>(ops->number), 123u);

    const obs::json::Value *gauges = root.find("gauges");
    ASSERT_TRUE(gauges && gauges->isObject());
    const obs::json::Value *now = gauges->find("sim.now_ns");
    ASSERT_TRUE(now && now->isNumber());
    EXPECT_DOUBLE_EQ(now->number, 5e9);

    const obs::json::Value *hists = root.find("histograms");
    ASSERT_TRUE(hists && hists->isObject());
    const obs::json::Value *ht = hists->find("obs.req_total_ns");
    ASSERT_TRUE(ht && ht->isObject());
    const obs::json::Value *count = ht->find("count");
    ASSERT_TRUE(count && count->isNumber());
    EXPECT_EQ(static_cast<std::uint64_t>(count->number), 1000u);
}

// ---------------------------------------------------------------------
// Tracer recording semantics
// ---------------------------------------------------------------------

TEST(Tracer, RecordsSpansInstantsAndRequests)
{
    sim::EventQueue eq;
    obs::MetricsRegistry reg;
    obs::Tracer t(eq, obs::Level::Device, &reg);

    EXPECT_TRUE(t.wants(obs::Level::Requests));
    EXPECT_TRUE(t.wants(obs::Level::Device));

    const std::uint16_t track = t.track("test");
    EXPECT_EQ(t.track("test"), track); // interned, not duplicated

    const obs::TraceId id1 = t.newTrace();
    const obs::TraceId id2 = t.newTrace();
    EXPECT_NE(id1, 0u);
    EXPECT_GT(id2, id1);

    t.span(track, "layer.op", id1, 100, 250, {{"bytes", 4096}});
    t.instant(track, "layer.event", id1);
    obs::RequestBreakdown b;
    b.userNs = 10;
    b.kernelNs = 20;
    b.translateNs = 30;
    b.deviceNs = 40;
    b.bytes = 4096;
    t.request(track, "engine.pread", id1, 100, 300, b);

    ASSERT_EQ(t.spanCount(), 3u);
    const obs::SpanRec &span = t.data().spans[0];
    EXPECT_STREQ(span.name, "layer.op");
    EXPECT_EQ(span.phase, 'X');
    EXPECT_EQ(span.start, 100u);
    EXPECT_EQ(span.end, 250u);
    ASSERT_EQ(span.nargs, 1u);
    EXPECT_STREQ(span.args[0].key, "bytes");
    EXPECT_EQ(span.args[0].value, 4096);

    EXPECT_EQ(t.data().spans[1].phase, 'i');
    EXPECT_EQ(t.data().spans[1].start, t.data().spans[1].end);

    // The request envelope carries the Table-1 axes as args and feeds
    // the obs.req_*_ns histograms.
    const obs::SpanRec &env = t.data().spans[2];
    std::map<std::string, std::int64_t> args;
    for (unsigned i = 0; i < env.nargs; i++)
        args[env.args[i].key] = env.args[i].value;
    EXPECT_EQ(args.at("user_ns"), 10);
    EXPECT_EQ(args.at("kernel_ns"), 20);
    EXPECT_EQ(args.at("xlate_ns"), 30);
    EXPECT_EQ(args.at("device_ns"), 40);
    EXPECT_EQ(args.at("bytes"), 4096);
    EXPECT_EQ(reg.snapshot().histograms.at("obs.req_total_ns").count(),
              1u);
}

TEST(Tracer, LevelGatesVerbosity)
{
    sim::EventQueue eq;
    obs::Tracer t(eq, obs::Level::Requests);
    EXPECT_TRUE(t.wants(obs::Level::Requests));
    EXPECT_FALSE(t.wants(obs::Level::Layers));
    EXPECT_FALSE(t.wants(obs::Level::Device));
}

// ---------------------------------------------------------------------
// Span invariants on a real traced run
// ---------------------------------------------------------------------

namespace {

/** Small traced run over @p engines (sync + BypassD by default). */
sys::System *
tracedRun(obs::Level level,
          std::initializer_list<wl::Engine> engines
          = {wl::Engine::Sync, wl::Engine::Bypassd},
          wl::RwMode rw = wl::RwMode::RandRead)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 1ull << 30;
    cfg.seed = 99;
    auto *s = new sys::System(cfg);
    s->enableTracing(level);
    wl::FioRunner runner(*s);
    int jobNum = 0;
    for (wl::Engine e : engines) {
        wl::FioJob job;
        job.engine = e;
        job.rw = rw;
        job.bs = 4096;
        job.numJobs = 2;
        job.runtime = 1 * kMs;
        job.warmup = 100 * kUs;
        job.fileBytes = 4ull << 20;
        job.seed = 99 + jobNum;
        job.filePrefix = sim::strf("/obs%d", jobNum);
        jobNum++;
        runner.run(job);
    }
    return s;
}

bool
isEnvelope(const obs::SpanRec &rec)
{
    for (unsigned i = 0; i < rec.nargs; i++) {
        if (std::string(rec.args[i].key) == "user_ns")
            return true;
    }
    return false;
}

/** Map of request-id -> envelope, asserting the own-envelope rule. */
std::map<obs::TraceId, const obs::SpanRec *>
collectEnvelopes(const obs::TraceData &d)
{
    std::map<obs::TraceId, const obs::SpanRec *> envelopes;
    for (const obs::SpanRec &rec : d.spans) {
        if (!isEnvelope(rec))
            continue;
        EXPECT_NE(rec.trace, 0u);
        EXPECT_EQ(envelopes.count(rec.trace), 0u);
        envelopes[rec.trace] = &rec;
    }
    return envelopes;
}

/** Count device spans named @p name nesting inside their envelope. */
std::size_t
countNested(const obs::TraceData &d,
            const std::map<obs::TraceId, const obs::SpanRec *> &envelopes,
            const char *name)
{
    std::size_t nested = 0;
    for (const obs::SpanRec &rec : d.spans) {
        if (std::string(rec.name) != name || rec.trace == 0)
            continue;
        auto it = envelopes.find(rec.trace);
        if (it == envelopes.end())
            continue;
        EXPECT_GE(rec.start, it->second->start);
        EXPECT_LE(rec.end, it->second->end);
        nested++;
    }
    return nested;
}

} // namespace

TEST(TracedRun, SpanInvariantsHold)
{
    std::unique_ptr<sys::System> s(tracedRun(obs::Level::Device));
    const obs::Tracer *t = s->tracer();
    ASSERT_NE(t, nullptr);
    const obs::TraceData &d = t->data();
    ASSERT_GT(d.spans.size(), 100u);
    ASSERT_GE(d.tracks.size(), 1u);

    std::map<obs::TraceId, const obs::SpanRec *> envelopes;
    for (const obs::SpanRec &rec : d.spans) {
        ASSERT_NE(rec.name, nullptr);
        EXPECT_LE(rec.start, rec.end);
        EXPECT_LE(rec.end, s->now());
        EXPECT_LT(rec.track, d.tracks.size());
        EXPECT_LE(rec.nargs, obs::SpanRec::kMaxArgs);
        if (rec.phase == 'i')
            EXPECT_EQ(rec.start, rec.end);
        else
            EXPECT_EQ(rec.phase, 'X');
        if (isEnvelope(rec)) {
            EXPECT_NE(rec.trace, 0u);
            // Exactly one envelope per request id (own-envelope rule).
            EXPECT_EQ(envelopes.count(rec.trace), 0u);
            envelopes[rec.trace] = &rec;
        }
    }
    ASSERT_GT(envelopes.size(), 50u);

    // Both engines produced envelopes.
    std::set<std::string> envNames;
    for (const auto &[id, rec] : envelopes)
        envNames.insert(rec->name);
    EXPECT_EQ(envNames.count("sync.pread"), 1u);
    EXPECT_EQ(envNames.count("bypassd.pread"), 1u);

    // Device-level nvme.cmd spans nest inside their request envelope.
    std::size_t nested = 0;
    for (const obs::SpanRec &rec : d.spans) {
        if (std::string(rec.name) != "nvme.cmd" || rec.trace == 0)
            continue;
        auto it = envelopes.find(rec.trace);
        if (it == envelopes.end())
            continue;
        EXPECT_GE(rec.start, it->second->start);
        EXPECT_LE(rec.end, it->second->end);
        nested++;
    }
    EXPECT_GT(nested, 50u);
}

TEST(TracedRun, RequestsLevelOmitsDeviceDetail)
{
    std::unique_ptr<sys::System> s(tracedRun(obs::Level::Requests));
    const obs::TraceData &d = s->tracer()->data();
    std::size_t envelopes = 0;
    for (const obs::SpanRec &rec : d.spans) {
        EXPECT_TRUE(std::string(rec.name) != "nvme.cmd"
                    && std::string(rec.name) != "nvme.media"
                    && std::string(rec.name) != "iommu.ats_translate")
            << rec.name;
        if (isEnvelope(rec))
            envelopes++;
    }
    EXPECT_GT(envelopes, 50u);
}

TEST(TracedRun, AsyncEngineEnvelopesNestDeviceSpans)
{
    std::unique_ptr<sys::System> s(tracedRun(
        obs::Level::Device,
        {wl::Engine::Libaio, wl::Engine::IoUring, wl::Engine::Spdk}));
    const obs::TraceData &d = s->tracer()->data();
    const auto envelopes = collectEnvelopes(d);
    ASSERT_GT(envelopes.size(), 50u);

    // All three async engines produced their own envelope type.
    std::set<std::string> envNames;
    for (const auto &[id, rec] : envelopes)
        envNames.insert(rec->name);
    EXPECT_EQ(envNames.count("libaio.pread"), 1u);
    EXPECT_EQ(envNames.count("uring.pread"), 1u);
    EXPECT_EQ(envNames.count("spdk.read"), 1u);

    // Device-level nvme.cmd spans nest inside the envelopes of the
    // kernel engines and of SPDK's raw path alike.
    EXPECT_GT(countNested(d, envelopes, "nvme.cmd"), 50u);
}

TEST(TracedRun, FmapSpansPrecedeBypassdRequests)
{
    std::unique_ptr<sys::System> s(
        tracedRun(obs::Level::Device, {wl::Engine::Bypassd}));
    const obs::TraceData &d = s->tracer()->data();

    // Earliest BypassD request envelope: fmap happens at open time,
    // strictly before the I/O loop starts issuing.
    Time firstReq = s->now();
    for (const obs::SpanRec &rec : d.spans) {
        if (isEnvelope(rec) && std::string(rec.name) == "bypassd.pread")
            firstReq = std::min(firstReq, rec.start);
    }

    std::size_t cold = 0, warm = 0;
    for (const obs::SpanRec &rec : d.spans) {
        const std::string name = rec.name;
        if (name != "bypassd.fmap_cold" && name != "bypassd.fmap_warm")
            continue;
        (name == "bypassd.fmap_cold" ? cold : warm)++;
        EXPECT_EQ(rec.phase, 'X');
        EXPECT_LT(rec.start, rec.end); // fmap cost modelled as duration
        EXPECT_LE(rec.end, firstReq);
        bool hasBytes = false;
        for (unsigned i = 0; i < rec.nargs; i++) {
            if (std::string(rec.args[i].key) == "bytes") {
                hasBytes = true;
                EXPECT_GT(rec.args[i].value, 0);
            }
        }
        EXPECT_TRUE(hasBytes);
    }
    // One cold fmap per job file; counts agree with the module.
    EXPECT_EQ(cold, s->module.coldFmaps());
    EXPECT_EQ(warm, s->module.warmFmaps());
    EXPECT_GT(cold + warm, 0u);
}

TEST(TracedRun, JournalCommitInstantsMatchJournalAtLayersLevel)
{
    std::unique_ptr<sys::System> s(
        tracedRun(obs::Level::Layers,
                  {wl::Engine::Sync, wl::Engine::Bypassd},
                  wl::RwMode::RandWrite));
    const obs::TraceData &d = s->tracer()->data();
    std::size_t commits = 0;
    for (const obs::SpanRec &rec : d.spans) {
        if (std::string(rec.name) != "journal.commit")
            continue;
        EXPECT_EQ(rec.phase, 'i');
        ASSERT_EQ(rec.nargs, 1u);
        EXPECT_STREQ(rec.args[0].key, "records");
        EXPECT_GE(rec.args[0].value, 1);
        commits++;
    }
    EXPECT_GT(commits, 0u);
    EXPECT_EQ(commits, s->ext4.journal().committedTxns());

    // At Requests level the journal instants (and fmap spans) are
    // suppressed along with the rest of the layer detail.
    std::unique_ptr<sys::System> r(
        tracedRun(obs::Level::Requests,
                  {wl::Engine::Sync, wl::Engine::Bypassd},
                  wl::RwMode::RandWrite));
    for (const obs::SpanRec &rec : r->tracer()->data().spans) {
        const std::string name = rec.name;
        EXPECT_TRUE(name != "journal.commit"
                    && name != "bypassd.fmap_cold"
                    && name != "bypassd.fmap_warm")
            << name;
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event export round-trip
// ---------------------------------------------------------------------

TEST(Export, ChromeTraceRoundTripsThroughParser)
{
    std::unique_ptr<sys::System> s(tracedRun(obs::Level::Device));
    s->collectMetrics();
    const obs::TraceData data = s->tracer()->data();
    const obs::MetricsSnapshot snap = s->metrics.snapshot();
    s.reset();  // records must outlive the emitting System

    const std::string path = ::testing::TempDir() + "bpd_obs_trace.json";
    ASSERT_TRUE(obs::writeChromeTraceFile(path, {{"testrun", &data}}));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    obs::json::Value root;
    std::string err;
    ASSERT_TRUE(obs::json::parse(text, root, err)) << err;
    ASSERT_TRUE(root.isObject());
    const obs::json::Value *events = root.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());

    std::size_t complete = 0, instant = 0, meta = 0;
    for (const obs::json::Value &ev : events->arr) {
        ASSERT_TRUE(ev.isObject());
        const obs::json::Value *ph = ev.find("ph");
        ASSERT_TRUE(ph && ph->isString());
        if (ph->str == "X") {
            complete++;
            const obs::json::Value *dur = ev.find("dur");
            ASSERT_TRUE(dur && dur->isNumber());
            EXPECT_GE(dur->number, 0.0);
        } else if (ph->str == "i") {
            instant++;
        } else {
            EXPECT_EQ(ph->str, "M");
            meta++;
        }
    }
    // Every recorded span/instant appears exactly once; metadata names
    // the process and each track-thread.
    std::size_t wantComplete = 0, wantInstant = 0;
    for (const obs::SpanRec &rec : data.spans)
        (rec.phase == 'X' ? wantComplete : wantInstant)++;
    EXPECT_EQ(complete, wantComplete);
    EXPECT_EQ(instant, wantInstant);
    EXPECT_EQ(meta, 1 + data.tracks.size());

    // Metrics dump round-trips too.
    const std::string mpath
        = ::testing::TempDir() + "bpd_obs_metrics.json";
    ASSERT_TRUE(obs::writeMetricsFile(mpath, {{"testrun", snap}}));
    std::FILE *mf = std::fopen(mpath.c_str(), "rb");
    ASSERT_NE(mf, nullptr);
    std::string mtext;
    while ((n = std::fread(buf, 1, sizeof(buf), mf)) > 0)
        mtext.append(buf, n);
    std::fclose(mf);
    std::remove(mpath.c_str());

    obs::json::Value mroot;
    ASSERT_TRUE(obs::json::parse(mtext, mroot, err)) << err;
    const obs::json::Value *runs = mroot.find("runs");
    ASSERT_TRUE(runs && runs->isObject());
    const obs::json::Value *run = runs->find("testrun");
    ASSERT_TRUE(run && run->isObject());
    const obs::json::Value *counters = run->find("counters");
    ASSERT_TRUE(counters && counters->isObject());
    const obs::json::Value *ops = counters->find("ssd.ops");
    ASSERT_TRUE(ops && ops->isNumber());
    EXPECT_GT(ops->number, 0.0);
}

// ---------------------------------------------------------------------
// Bundled JSON parser corner cases
// ---------------------------------------------------------------------

TEST(Json, ParsesScalarsEscapesAndNesting)
{
    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(
        R"({"a": [1, -2.5, 3e2], "s": "x\n\"y\"", "t": true,)"
        R"( "nil": null, "o": {"k": 7}})",
        v, err))
        << err;
    const obs::json::Value *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->arr.size(), 3u);
    EXPECT_DOUBLE_EQ(a->arr[0].number, 1.0);
    EXPECT_DOUBLE_EQ(a->arr[1].number, -2.5);
    EXPECT_DOUBLE_EQ(a->arr[2].number, 300.0);
    const obs::json::Value *str = v.find("s");
    ASSERT_TRUE(str && str->isString());
    EXPECT_EQ(str->str, "x\n\"y\"");
    const obs::json::Value *o = v.find("o");
    ASSERT_TRUE(o && o->isObject());
    const obs::json::Value *k = o->find("k");
    ASSERT_TRUE(k && k->isNumber());
    EXPECT_DOUBLE_EQ(k->number, 7.0);
}

TEST(Json, RejectsMalformedInput)
{
    obs::json::Value v;
    std::string err;
    EXPECT_FALSE(obs::json::parse("{", v, err));
    EXPECT_FALSE(obs::json::parse("[1,]", v, err));
    EXPECT_FALSE(obs::json::parse("{\"a\": }", v, err));
    EXPECT_FALSE(obs::json::parse("tru", v, err));
    EXPECT_FALSE(obs::json::parse("{} trailing", v, err));
}
