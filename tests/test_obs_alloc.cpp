/**
 * @file
 * Zero-cost-when-disabled enforcement, as a test rather than a bench:
 * this binary replaces global operator new/delete with counting
 * versions and asserts that the null-tracer instrumentation guard adds
 * ZERO heap allocations to the event-queue schedule/run path. Kept as
 * its own executable (bpd_obs_alloc_tests) so the counting allocator
 * cannot interfere with the main test suite.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/tenant.hpp"
#include "obs/trace.hpp"
#include "qos/qos.hpp"
#include "sim/event_queue.hpp"

static std::atomic<std::uint64_t> g_allocCount{0};

void *
operator new(std::size_t n)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace bpd;

TEST(ObsAlloc, DisabledTracerAddsZeroAllocationsToScheduleRunPath)
{
    sim::EventQueue eq;
    // volatile so the compiler cannot prove the slot stays null and
    // fold the guard away — the branch must really execute.
    obs::Tracer *volatile tracerSlot = nullptr;
    std::uint64_t sink = 0;

    // Warm the event queue's slab/heap storage to steady state.
    for (int i = 0; i < 64; i++)
        eq.after(1, [&sink]() { sink++; });
    eq.run();

    const std::uint64_t before = g_allocCount.load();
    for (int i = 0; i < 100000; i++) {
        eq.after(10, [&sink, &tracerSlot]() {
            if (obs::Tracer *t = tracerSlot) {
                t->instant(0, "noop", 0);
                t->span(0, "noop.span", 0, 0, 1, {{"bytes", 0}});
            }
            sink++;
        });
        eq.runOne();
    }
    const std::uint64_t after = g_allocCount.load();

    EXPECT_EQ(after - before, 0u)
        << "disabled-tracer guard allocated on the hot path";
    EXPECT_EQ(sink, 100064u);
}

TEST(ObsAlloc, EnabledTracerOnlyAllocatesForSpanStorage)
{
    // Sanity check of the counting allocator itself plus the enabled
    // path: recording spans must allocate only amortized vector growth,
    // i.e. far fewer than one allocation per span.
    sim::EventQueue eq;
    obs::Tracer tracer(eq, obs::Level::Device);
    const std::uint16_t track = tracer.track("alloc-test");

    tracer.span(track, "warm", 0, 0, 1); // first growth
    const std::uint64_t before = g_allocCount.load();
    for (int i = 0; i < 100000; i++)
        tracer.span(track, "nvme.cmd", tracer.newTrace(), 0, 100,
                    {{"bytes", 4096}});
    const std::uint64_t after = g_allocCount.load();

    EXPECT_GT(tracer.spanCount(), 100000u);
    EXPECT_LT(after - before, 100u)
        << "span recording should amortize to ~0 allocations/span";
}

TEST(ObsAlloc, DisabledTenantAccountingAddsZeroAllocations)
{
    // The attribution sites guard on a raw TenantAccounting pointer the
    // same way tracer sites guard on the Tracer pointer; disabled
    // accounting must be one branch, no allocations.
    obs::TenantAccounting *volatile acctSlot = nullptr;
    std::uint64_t sink = 0;

    const std::uint64_t before = g_allocCount.load();
    for (int i = 0; i < 100000; i++) {
        if (obs::TenantAccounting *a = acctSlot) {
            a->of(101).ssdOps++;
            a->of(101).ssdReadBytes += 4096;
        }
        sink++;
    }
    const std::uint64_t after = g_allocCount.load();

    EXPECT_EQ(after - before, 0u)
        << "disabled-accounting guard allocated on the hot path";
    EXPECT_EQ(sink, 100000u);
}

TEST(ObsAlloc, TenantScopedCounterHandlesDoNotAllocateOnIncrement)
{
    // Registration (tenant() + counter()) is cold-path and may
    // allocate; incrementing a cached handle must not, and re-looking
    // up an existing tenant scope must not either.
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.tenant(7).counter("ssd", "ops");
    c.add(); // touch once so any lazy storage is settled

    const std::uint64_t before = g_allocCount.load();
    for (int i = 0; i < 100000; i++) {
        reg.tenant(7);
        c.add(4096);
    }
    const std::uint64_t after = g_allocCount.load();

    EXPECT_EQ(after - before, 0u)
        << "tenant-scoped counter increments allocated";
    EXPECT_EQ(c.value(), 1u + 100000u * 4096u);
}

TEST(ObsAlloc, QosAdmitPathAddsZeroAllocations)
{
    // The QoS gates follow the same null-pointer discipline: a null
    // registry is one branch, and an enabled registry must admit
    // unlimited tenants — absent, or present weight-only — without
    // allocating. Only park() (the throttled slow path) may allocate.
    sim::EventQueue eq;
    qos::Registry reg(eq);
    qos::TenantLimit lim;
    lim.weight = 4; // weight-only: shapes dispatch, never rate-limits
    reg.setLimit(7, lim);
    qos::Registry *volatile qosSlot = &reg;
    std::uint64_t admitted = 0;
    std::uint32_t weightSum = 0;

    reg.tryAcquire(7, 1, 4096); // settle any lazy storage

    const std::uint64_t before = g_allocCount.load();
    for (int i = 0; i < 100000; i++) {
        if (qos::Registry *q = qosSlot) {
            if (q->tryAcquire(7, 1, 4096))
                admitted++;
            if (q->tryAcquire(9, 1, 4096)) // unregistered tenant
                admitted++;
            weightSum += q->weightOf(7);
        }
    }
    const std::uint64_t after = g_allocCount.load();

    EXPECT_EQ(after - before, 0u)
        << "QoS admit path allocated on the hot path";
    EXPECT_EQ(admitted, 200000u);
    EXPECT_EQ(weightSum, 400000u);
}
