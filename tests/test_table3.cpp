/**
 * @file
 * Table 3 compliance: for each common file operation, assert that
 * UserLib and the kernel FS each perform exactly the actions the paper's
 * Table 3 assigns to them (direct vs forwarded, FTE attach/detach,
 * allocation, flush ordering, timestamp deferral).
 */

#include <gtest/gtest.h>

#include "tests/helpers.hpp"

using namespace bpd;
using namespace bpd::test;
using fs::kOpenCreate;
using fs::kOpenDirect;
using fs::kOpenRead;
using fs::kOpenWrite;

namespace {

constexpr std::uint32_t kRw
    = kOpenRead | kOpenWrite | kOpenCreate | kOpenDirect;

struct Table3 : ::testing::Test
{
    sys::System s{smallConfig()};
    kern::Process *p = nullptr;
    bypassd::UserLib *lib = nullptr;
    int fd = -1;
    InodeNum ino = 0;

    void
    SetUp() override
    {
        sim::setVerbose(false);
        p = &s.newProcess();
        lib = &s.userLib(*p);
        const int cfd = s.kernel.setupCreateFile(*p, "/t3", 64 << 10, 7);
        ino = p->file(cfd)->ino;
        kClose(s, *p, cfd);
        fd = ulOpen(s, *lib, "/t3", kRw);
        ASSERT_TRUE(lib->isDirect(fd));
    }

    bypassd::FileTableCache *
    cache()
    {
        return static_cast<bypassd::FileTableCache *>(
            s.ext4.inode(ino)->fileTable.get());
    }
};

} // namespace

TEST_F(Table3, OpenForwardsToKernelAndAttachesFileTables)
{
    // SetUp already opened: the kernel saw the open()...
    EXPECT_GT(s.kernel.syscallCount(), 0u);
    // ...and attached file table entries to the process page table.
    ASSERT_NE(cache(), nullptr);
    ASSERT_TRUE(cache()->attachments.count(p->pid()));
    const Vaddr vba = cache()->attachments.at(p->pid()).vba;
    // The attached FTEs translate through this process' PASID.
    auto tr = s.iommu.translateVbaSync(p->pasid(), vba, 4096, false,
                                       s.dev.devId());
    EXPECT_TRUE(tr.ok);
}

TEST_F(Table3, ReadIsDirectNoSyscall)
{
    const std::uint64_t sys0 = s.kernel.syscallCount();
    std::vector<std::uint8_t> buf(4096);
    EXPECT_EQ(ulPread(s, *lib, 0, fd, buf, 0).n, 4096);
    EXPECT_EQ(s.kernel.syscallCount(), sys0); // no kernel involvement
    EXPECT_EQ(lib->directReads(), 1u);
}

TEST_F(Table3, OverwriteIsDirectNoSyscall)
{
    const std::uint64_t sys0 = s.kernel.syscallCount();
    auto data = pattern(4096, 2);
    EXPECT_EQ(ulPwrite(s, *lib, 0, fd, data, 4096).n, 4096);
    EXPECT_EQ(s.kernel.syscallCount(), sys0);
    EXPECT_EQ(lib->directWrites(), 1u);
}

TEST_F(Table3, AppendForwardsAllocatesAndAttachesNewFtes)
{
    const std::uint64_t sys0 = s.kernel.syscallCount();
    const std::uint64_t blocksBefore = cache()->mappedBlocks();
    const std::uint64_t sizeBefore = s.ext4.inode(ino)->size;

    auto data = pattern(8192, 3);
    EXPECT_EQ(ulPwrite(s, *lib, 0, fd, data, sizeBefore).n, 8192);
    // Kernel handled it (allocate blocks, update metadata)...
    EXPECT_GT(s.kernel.syscallCount(), sys0);
    EXPECT_EQ(lib->appendsRouted(), 1u);
    EXPECT_EQ(s.ext4.inode(ino)->size, sizeBefore + 8192);
    // ...and created + attached new FTEs so the new blocks are directly
    // accessible (unbuffered write, then direct read-back).
    EXPECT_GT(cache()->mappedBlocks(), blocksBefore);
    const std::uint64_t sys1 = s.kernel.syscallCount();
    std::vector<std::uint8_t> back(8192);
    EXPECT_EQ(ulPread(s, *lib, 0, fd, back, sizeBefore).n, 8192);
    EXPECT_EQ(s.kernel.syscallCount(), sys1); // the read went direct
    EXPECT_EQ(back, data);
    // Unbuffered: nothing parked in the page cache for this inode.
    EXPECT_TRUE(s.kernel.pageCache().collectDirty(ino).empty());
}

TEST_F(Table3, FallocateForwardsZeroesAndAttaches)
{
    const std::uint64_t blocksBefore = cache()->mappedBlocks();
    int rc = -1;
    lib->fallocate(fd, 0, 256 << 10, [&](int r) { rc = r; });
    s.run();
    ASSERT_EQ(rc, 0);
    EXPECT_GT(cache()->mappedBlocks(), blocksBefore);
    // Newly allocated blocks read back zero through the direct path
    // (security: Section 4.1).
    std::vector<std::uint8_t> buf(4096, 0xff);
    EXPECT_EQ(ulPread(s, *lib, 0, fd, buf, 128 << 10).n, 4096);
    for (auto b : buf)
        ASSERT_EQ(b, 0);
}

TEST_F(Table3, FtruncateDetachesFtes)
{
    const std::uint64_t blocksBefore = cache()->mappedBlocks();
    ASSERT_GT(blocksBefore, 1u);
    int rc = -1;
    lib->ftruncate(fd, 4096, [&](int r) { rc = r; });
    s.run();
    ASSERT_EQ(rc, 0);
    EXPECT_LT(cache()->mappedBlocks(), blocksBefore);
    // Direct access beyond the truncation point is denied by the IOMMU.
    const Vaddr vba = cache()->attachments.at(p->pid()).vba;
    auto tr = s.iommu.translateVbaSync(p->pasid(), vba + 8192, 4096,
                                       false, s.dev.devId());
    EXPECT_FALSE(tr.ok);
}

TEST_F(Table3, FsyncFlushesQueuesThenMetadata)
{
    // Timestamps are deferred (Section 4.4): a write does not update the
    // journaled mtime until fsync/close.
    auto data = pattern(4096, 4);
    ASSERT_EQ(ulPwrite(s, *lib, 0, fd, data, 0).n, 4096);
    const std::uint64_t txnsBefore = s.ext4.journal().committedTxns();
    EXPECT_EQ(ulFsync(s, *lib, 0, fd), 0);
    // fsync committed a metadata transaction (timestamps).
    EXPECT_GT(s.ext4.journal().committedTxns(), txnsBefore);
}

TEST_F(Table3, CloseForwardsAndDetaches)
{
    ASSERT_TRUE(cache()->attachments.count(p->pid()));
    const Vaddr vba = cache()->attachments.at(p->pid()).vba;
    EXPECT_EQ(ulClose(s, *lib, fd), 0);
    EXPECT_FALSE(cache()->attachments.count(p->pid()));
    // The VBA no longer translates.
    auto tr = s.iommu.translateVbaSync(p->pasid(), vba, 4096, false,
                                       s.dev.devId());
    EXPECT_FALSE(tr.ok);
}
