/**
 * @file
 * Fabric target/initiator tests: queue-pair connection state machine
 * (connect/disconnect/reset mid-I/O), in-capsule vs RDMA-read path
 * behavior on the payload boundary, remote-tenant attribution folding
 * bit-exactly into the target's tenant sums, shard-count digest
 * invariance of a fabric fleet, and trace digest neutrality.
 *
 * No death tests here on purpose: this suite runs under TSan in CI,
 * and death tests fork.
 */

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fabric/initiator.hpp"
#include "fabric/target.hpp"
#include "helpers.hpp"
#include "qos/qos.hpp"
#include "sim/logging.hpp"
#include "system/fleet.hpp"
#include "system/placement.hpp"
#include "workloads/fio.hpp"

namespace bpd {
namespace {

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; i++) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

sys::SystemConfig
smallSystem(std::uint64_t seed)
{
    sys::SystemConfig sc;
    sc.deviceBytes = 1ull << 30;
    sc.seed = seed;
    return sc;
}

/**
 * One target machine and N client machines on a sharded executor,
 * with I/O-plane channels at the profile's one-way latency and one
 * initiator per client. The shape every test below starts from.
 */
struct Net
{
    fab::FabricProfile prof;
    sys::System target;
    std::vector<std::unique_ptr<sys::System>> clients;
    sim::SimExecutor exec;
    std::uint32_t tDom = 0;
    std::vector<std::uint32_t> cDoms;
    fab::FabricTarget tgt;
    std::vector<std::unique_ptr<fab::FabricInitiator>> inis;

    explicit Net(unsigned nClients = 1, fab::FabricProfile p = {},
                 unsigned shards = 2, std::uint64_t seed = 42)
        : prof(p), target(smallSystem(seed)),
          exec(std::min(shards, nClients + 1)), tgt(target, prof)
    {
        sim::setVerbose(false);
        tDom = exec.addDomain(target.eq, 0, "target");
        for (unsigned i = 0; i < nClients; i++) {
            clients.push_back(
                std::make_unique<sys::System>(smallSystem(seed + 1 + i)));
            const unsigned shard
                = exec.shardCount() > 1
                      ? 1 + i % (exec.shardCount() - 1)
                      : 0;
            cDoms.push_back(exec.addDomain(clients[i]->eq, shard,
                                           sim::strf("client%u", i)));
        }
        for (unsigned i = 0; i < nClients; i++) {
            exec.connect(cDoms[i], tDom, prof.oneWayNs);
            exec.connect(tDom, cDoms[i], prof.oneWayNs);
        }
        tgt.bind(exec, tDom);
        EXPECT_TRUE(tgt.serve());
        for (unsigned i = 0; i < nClients; i++) {
            inis.push_back(std::make_unique<fab::FabricInitiator>(
                *clients[i], tgt));
            inis[i]->bind(exec, cDoms[i]);
        }
    }

    sys::System &client(unsigned i = 0) { return *clients.at(i); }
    fab::FabricInitiator &ini(unsigned i = 0) { return *inis.at(i); }

    /**
     * Align every machine's clock to the fleet-wide max. Domains are
     * only causally coupled inside a run; after one, a machine that
     * kept polling (e.g. target teardown) sits ahead of an idle peer,
     * and new work posted from lagging setup code would arrive in its
     * past. Tests that issue a second batch from setup call this first.
     */
    void
    settle()
    {
        Time t = target.now();
        for (auto &c : clients)
            t = std::max(t, c->now());
        target.eq.schedule(t, [] {});
        for (auto &c : clients)
            c->eq.schedule(t, [] {});
        exec.run();
    }

    bool
    connectAll()
    {
        unsigned acked = 0;
        bool allOk = true;
        for (unsigned i = 0; i < inis.size(); i++)
            inis[i]->connect(static_cast<Pasid>(100 + i),
                             [&](fab::ConnectStatus st) {
                                 acked++;
                                 allOk = allOk
                                         && st == fab::ConnectStatus::Ok;
                             });
        exec.run();
        return acked == inis.size() && allOk;
    }
};

} // namespace

TEST(Fabric, ConnectReadWriteRoundTrip)
{
    Net net;
    ASSERT_TRUE(net.connectAll());
    EXPECT_TRUE(net.ini().connected());
    EXPECT_EQ(net.ini().remoteTenant(), fab::kConnTenantBase + 1);
    EXPECT_GT(net.ini().stats().connectLatencyNs, 2 * net.prof.oneWayNs);

    const auto data = test::pattern(4096, 5);
    std::vector<std::uint8_t> wbuf = data;
    long long wn = -1;
    net.ini().write(0, 0, wbuf,
                    [&](long long n, kern::IoTrace) { wn = n; });
    net.exec.run();
    EXPECT_EQ(wn, 4096);

    std::vector<std::uint8_t> rbuf(4096, 0);
    long long rn = -1;
    kern::IoTrace rtr;
    net.ini().read(0, 0, rbuf, [&](long long n, kern::IoTrace tr) {
        rn = n;
        rtr = tr;
    });
    net.exec.run();
    EXPECT_EQ(rn, 4096);
    EXPECT_EQ(rbuf, data);

    // A remote I/O pays at least two fabric traversals on top of the
    // device; its total is user+device, with the wire time in userNs.
    EXPECT_GT(net.ini().stats().latency.min(), 2 * net.prof.oneWayNs);
    EXPECT_GT(rtr.deviceNs, 0u);
    EXPECT_GT(rtr.userNs, 2 * net.prof.oneWayNs);

    EXPECT_EQ(net.ini().stats().reads, 1u);
    EXPECT_EQ(net.ini().stats().writes, 1u);
    EXPECT_EQ(net.ini().stats().inCapsuleWrites, 1u);
    EXPECT_EQ(net.tgt.capsules(), 2u);
    const auto &conns = net.tgt.connections();
    ASSERT_EQ(conns.size(), 1u);
    EXPECT_EQ(conns.at(1).ops, 2u);
    EXPECT_EQ(conns.at(1).remotePasid, 100u);
    EXPECT_EQ(net.target.dev.totalOps(), 2u);
}

TEST(Fabric, IoQueuedWhileConnectingFlushesOnAck)
{
    Net net;
    std::vector<std::uint8_t> buf(4096);
    unsigned done = 0;
    net.ini().connect(7);
    // Issued while the connect capsule is still crossing the wire.
    for (int i = 0; i < 3; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&](long long n, kern::IoTrace) {
                           EXPECT_EQ(n, 4096);
                           done++;
                       });
    EXPECT_EQ(net.ini().state(), fab::ConnState::Connecting);
    net.exec.run();
    EXPECT_EQ(done, 3u);
    EXPECT_EQ(net.ini().stats().queuedBeforeConnect, 3u);
    EXPECT_EQ(net.ini().stats().reads, 3u);
}

TEST(Fabric, IoWhileIdleFails)
{
    Net net;
    std::vector<std::uint8_t> buf(4096);
    long long rn = 0;
    net.ini().read(0, 0, buf,
                   [&](long long n, kern::IoTrace) { rn = n; });
    net.exec.run();
    EXPECT_LT(rn, 0);
    EXPECT_EQ(net.ini().stats().rejected, 1u);
    EXPECT_EQ(net.tgt.capsules(), 0u);
}

TEST(Fabric, DisconnectDrainsInFlightThenReconnects)
{
    Net net;
    ASSERT_TRUE(net.connectAll());
    std::vector<std::uint8_t> buf(4096);
    unsigned done = 0;
    for (int i = 0; i < 4; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&](long long n, kern::IoTrace) {
                           EXPECT_EQ(n, 4096);
                           done++;
                       });
    bool disconnected = false;
    net.ini().disconnect([&] { disconnected = true; });
    EXPECT_EQ(net.ini().state(), fab::ConnState::Draining);
    // New I/O is refused while draining.
    long long rejected = 0;
    net.ini().read(0, 0, buf,
                   [&](long long n, kern::IoTrace) { rejected = n; });
    net.exec.run();
    EXPECT_EQ(done, 4u);
    EXPECT_LT(rejected, 0);
    EXPECT_TRUE(disconnected);
    EXPECT_EQ(net.ini().state(), fab::ConnState::Idle);
    EXPECT_EQ(net.tgt.disconnects(), 1u);
    EXPECT_FALSE(net.tgt.connections().at(1).open);

    // The state machine permits a fresh connect after teardown.
    net.settle();
    bool ok = false;
    net.ini().connect(7, [&](fab::ConnectStatus st) {
        ok = st == fab::ConnectStatus::Ok;
    });
    net.exec.run();
    EXPECT_TRUE(ok);
    long long rn = -1;
    net.ini().read(0, 0, buf,
                   [&](long long n, kern::IoTrace) { rn = n; });
    net.exec.run();
    EXPECT_EQ(rn, 4096);
    EXPECT_EQ(net.tgt.accepts(), 2u);
    EXPECT_TRUE(net.tgt.connections().at(2).open);
}

TEST(Fabric, ResetMidIoFailsFastAndFencesStaleResponses)
{
    Net net;
    ASSERT_TRUE(net.connectAll());
    std::vector<std::uint8_t> buf(4096);
    unsigned failed = 0;
    for (int i = 0; i < 3; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&](long long n, kern::IoTrace) {
                           EXPECT_LT(n, 0);
                           failed++;
                       });
    // Fire the reset while the capsules are at the target but before
    // any response can have crossed back (responses need two one-way
    // hops plus device time; 12 us is inside that window).
    net.client().eq.schedule(net.client().now() + 12 * kUs,
                             [&] { net.ini().reset(); });
    net.exec.run();
    EXPECT_EQ(failed, 3u);
    EXPECT_EQ(net.ini().state(), fab::ConnState::Idle);
    EXPECT_EQ(net.ini().stats().resets, 1u);
    // The device still executed the I/Os; their responses arrived with
    // a stale generation and were dropped, and the abort tore the
    // connection down at the target.
    EXPECT_EQ(net.ini().stats().staleDrops, 3u);
    EXPECT_EQ(net.target.dev.totalOps(), 3u);
    EXPECT_EQ(net.tgt.aborts(), 1u);
    EXPECT_FALSE(net.tgt.connections().at(1).open);
    EXPECT_EQ(net.tgt.pendingIos(), 0u);

    // Reconnect over the same initiator works (new generation).
    net.settle();
    bool ok = false;
    net.ini().connect(7, [&](fab::ConnectStatus st) {
        ok = st == fab::ConnectStatus::Ok;
    });
    net.exec.run();
    EXPECT_TRUE(ok);
    long long rn = -1;
    net.ini().read(0, 0, buf,
                   [&](long long n, kern::IoTrace) { rn = n; });
    net.exec.run();
    EXPECT_EQ(rn, 4096);
    EXPECT_EQ(net.ini().stats().staleDrops, 3u);
}

TEST(Fabric, InCapsuleVsRdmaReadOnPayloadBoundary)
{
    // Default profile: 8 KiB rides in the capsule, 8.5 KiB goes
    // two-phase. Data must round-trip identically on both paths.
    Net net;
    ASSERT_TRUE(net.connectAll());
    const auto small = test::pattern(8192, 21);
    const auto big = test::pattern(8704, 22);
    std::vector<std::uint8_t> wbuf = small;
    long long n1 = -1, n2 = -1;
    net.ini().write(0, 0, wbuf, [&](long long n, kern::IoTrace) {
        n1 = n;
    });
    net.exec.run();
    std::vector<std::uint8_t> wbuf2 = big;
    net.ini().write(0, 65536, wbuf2, [&](long long n, kern::IoTrace) {
        n2 = n;
    });
    net.exec.run();
    EXPECT_EQ(n1, 8192);
    EXPECT_EQ(n2, 8704);
    EXPECT_EQ(net.ini().stats().inCapsuleWrites, 1u);
    EXPECT_EQ(net.ini().stats().rdmaWrites, 1u);
    EXPECT_EQ(net.tgt.rdmaTransfers(), 1u);
    ASSERT_EQ(net.tgt.connections().size(), 1u);
    EXPECT_EQ(net.tgt.connections().at(1).inCapsuleWrites, 1u);
    EXPECT_EQ(net.tgt.connections().at(1).rdmaWrites, 1u);

    std::vector<std::uint8_t> r1(8192), r2(8704);
    net.ini().read(0, 0, r1, [](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 8192);
    });
    net.exec.run();
    net.ini().read(0, 65536, r2, [](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 8704);
    });
    net.exec.run();
    EXPECT_EQ(r1, small);
    EXPECT_EQ(r2, big);
}

TEST(Fabric, RdmaPathIsStrictlySlowerThanInCapsule)
{
    // The same 8 KiB write under a 4 KiB in-capsule threshold takes
    // the two-phase path: one extra round trip plus WR setup. Same
    // seeds on both nets → identical media jitter draws, so the gap is
    // purely the modeled transport difference.
    auto timedWrite = [](Net &net) {
        EXPECT_TRUE(net.connectAll());
        std::vector<std::uint8_t> buf(8192, 0xab);
        const Time start = net.client().now();
        Time done = 0;
        net.ini().write(0, 0, buf, [&](long long n, kern::IoTrace) {
            EXPECT_EQ(n, 8192);
            done = net.client().now();
        });
        net.exec.run();
        return done - start;
    };
    Net inCap;
    fab::FabricProfile lowThresh;
    lowThresh.inCapsuleBytes = 4096;
    Net rdma(1, lowThresh);
    const Time tIn = timedWrite(inCap);
    const Time tRdma = timedWrite(rdma);
    EXPECT_EQ(inCap.ini().stats().inCapsuleWrites, 1u);
    EXPECT_EQ(rdma.ini().stats().rdmaWrites, 1u);
    EXPECT_GT(tRdma, tIn);
    // The extra cost is at least the added round trip + WR setup.
    EXPECT_GE(tRdma - tIn, 2 * lowThresh.oneWayNs);
}

TEST(Fabric, RemoteTenantSumsFoldBitExactly)
{
    Net net(2);
    net.target.enableTenantAccounting();
    ASSERT_TRUE(net.connectAll());
    std::vector<std::uint8_t> buf(4096);
    unsigned done = 0;
    for (int i = 0; i < 5; i++)
        net.ini(0).read(0, static_cast<DevAddr>(i) * 4096, buf,
                        [&](long long, kern::IoTrace) { done++; });
    for (int i = 0; i < 3; i++)
        net.ini(1).write(0, 65536 + static_cast<DevAddr>(i) * 4096, buf,
                         [&](long long, kern::IoTrace) { done++; });
    net.exec.run();
    EXPECT_EQ(done, 8u);

    // The attribution invariant holds on the target with remote-only
    // traffic: per-tenant sums equal system totals bit-exactly.
    EXPECT_EQ(net.target.verifyTenantSums(), "");
    const auto &acct = net.target.tenantAccounting();
    const obs::TenantCounters *t1 = acct.find(fab::kConnTenantBase + 1);
    const obs::TenantCounters *t2 = acct.find(fab::kConnTenantBase + 2);
    ASSERT_NE(t1, nullptr);
    ASSERT_NE(t2, nullptr);
    EXPECT_EQ(t1->ssdOps, 5u);
    EXPECT_EQ(t2->ssdOps, 3u);
    EXPECT_EQ(t1->ssdReadBytes, 5u * 4096);
    EXPECT_EQ(t2->ssdWriteBytes, 3u * 4096);
    EXPECT_EQ(t1->ssdOps + t2->ssdOps, net.target.dev.totalOps());
    // Nothing was attributed to the fabric owner PASID: the queue-pair
    // owner is bookkeeping, the connection tenant is identity.
    EXPECT_EQ(acct.find(fab::kFabricOwnerPasid), nullptr);
}

TEST(Fabric, ConnectionStormSerializesOnAdminQueue)
{
    Net net(4);
    std::vector<Time> ackAt;
    for (unsigned i = 0; i < 4; i++)
        net.ini(i).connect(static_cast<Pasid>(10 + i),
                           [&net, i, &ackAt](fab::ConnectStatus st) {
                               EXPECT_EQ(st, fab::ConnectStatus::Ok);
                               ackAt.push_back(net.client(i).now());
                           });
    net.exec.run();
    ASSERT_EQ(ackAt.size(), 4u);
    std::sort(ackAt.begin(), ackAt.end());
    // Simultaneous connects queue behind one admin queue: grant times
    // are spaced by at least the admin processing cost.
    for (std::size_t i = 1; i < ackAt.size(); i++)
        EXPECT_GE(ackAt[i] - ackAt[i - 1], net.prof.adminProcessNs);
    EXPECT_EQ(net.tgt.accepts(), 4u);
}

namespace {

/** Small all-paths workload over one Net; digest of what happened. */
std::uint64_t
runTracedOrNot(bool traced, std::vector<std::string> *spanNames)
{
    Net net;
    if (traced) {
        net.target.enableTracing(obs::Level::Device);
        net.client().enableTracing(obs::Level::Device);
        net.target.enableTenantAccounting();
    }
    EXPECT_TRUE(net.connectAll());
    std::vector<std::uint8_t> buf(4096);
    std::vector<std::uint8_t> bigBuf(16384);
    std::function<void(int)> kick = [&](int remaining) {
        if (remaining == 0)
            return;
        auto next = [&kick, remaining](long long n, kern::IoTrace) {
            EXPECT_GT(n, 0);
            kick(remaining - 1);
        };
        const DevAddr addr
            = static_cast<DevAddr>(remaining % 8) * 16384;
        if (remaining % 3 == 0)
            net.ini().write(0, addr, bigBuf, next); // RDMA path
        else if (remaining % 3 == 1)
            net.ini().write(0, addr, buf, next); // in-capsule path
        else
            net.ini().read(0, addr, buf, next);
    };
    kick(24);
    net.exec.run();

    const auto &st = net.ini().stats();
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv(h, st.reads);
    h = fnv(h, st.writes);
    h = fnv(h, st.inCapsuleWrites);
    h = fnv(h, st.rdmaWrites);
    h = fnv(h, st.readBytes);
    h = fnv(h, st.writeBytes);
    h = fnv(h, st.latency.count());
    h = fnv(h, st.latency.min());
    h = fnv(h, st.latency.max());
    h = fnv(h, st.latency.p50());
    h = fnv(h, net.target.dev.totalOps());
    h = fnv(h, net.target.eq.executed());
    h = fnv(h, net.client().eq.executed());
    h = fnv(h, net.target.now());
    h = fnv(h, net.client().now());
    if (traced && spanNames) {
        for (const auto &rec : net.target.tracer()->data().spans)
            spanNames->push_back(rec.name);
        for (const auto &rec : net.client().tracer()->data().spans)
            spanNames->push_back(rec.name);
    }
    return h;
}

} // namespace

TEST(Fabric, TracingAndAccountingAreDigestNeutral)
{
    std::vector<std::string> names;
    const std::uint64_t plain = runTracedOrNot(false, nullptr);
    const std::uint64_t traced = runTracedOrNot(true, &names);
    EXPECT_EQ(plain, traced);
    auto has = [&](const char *n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("fabric.connect"));
    EXPECT_TRUE(has("fabric.sq"));
    EXPECT_TRUE(has("fabric.rdma"));
    EXPECT_TRUE(has("fabric.capsule"));
    EXPECT_TRUE(has("fabric.read"));
    EXPECT_TRUE(has("fabric.write"));
}

namespace {

std::uint64_t
digestFio(std::uint64_t h, const wl::FioResult &r)
{
    h = fnv(h, r.ops);
    h = fnv(h, r.bytes);
    h = fnv(h, r.latency.count());
    h = fnv(h, r.latency.min());
    h = fnv(h, r.latency.max());
    h = fnv(h, r.latency.p50());
    h = fnv(h, r.latency.p99());
    return h;
}

/** A 3-client fabric fleet driving FioRunner over initiators. */
std::uint64_t
runMiniFabricFleet(unsigned shards)
{
    sim::setVerbose(false);
    sys::FleetConfig fc;
    fc.systems = 4; // target + 3 clients
    fc.shards = shards;
    fc.topology = sys::FleetTopology::FabricClientsTarget;
    fc.deviceBytes = 1ull << 30;
    fc.seed = 17;
    fc.fabricLatencyNs = 25 * kUs;
    fc.beaconPeriodNs = 100 * kUs;
    sys::Fleet fleet(fc);

    fab::FabricProfile prof;
    fab::FabricTarget tgt(fleet.target(), prof);
    tgt.bind(fleet.executor(), fleet.domainOf(0));
    EXPECT_TRUE(tgt.serve());

    std::vector<std::unique_ptr<fab::FabricInitiator>> inis;
    std::vector<std::unique_ptr<wl::FioRunner>> runners;
    std::vector<wl::FioPending> pending;
    Time horizon = 0;
    for (unsigned c = 1; c < fleet.size(); c++) {
        inis.push_back(std::make_unique<fab::FabricInitiator>(
            fleet.system(c), tgt));
        inis.back()->bind(fleet.executor(), fleet.domainOf(c));

        wl::FioJob j;
        j.engine = wl::Engine::Fabric;
        j.fabric = inis.back().get();
        j.numJobs = 2;
        j.fileBytes = 8ull << 20;
        j.bs = c == 3 ? 16384 : 4096; // client 3 exercises RDMA writes
        j.rw = c == 1 ? wl::RwMode::RandRead : wl::RwMode::RandWrite;
        j.runtime = 2 * kMs;
        j.warmup = 200 * kUs;
        j.seed = 3 + c;
        j.fabricBase = fc.deviceBytes / 2
                       + static_cast<DevAddr>(c - 1) * j.numJobs
                             * j.fileBytes;
        runners.push_back(
            std::make_unique<wl::FioRunner>(fleet.system(c)));
        pending.push_back(runners.back()->arm(j));
        horizon = std::max(horizon, fleet.system(c).now() + j.warmup
                                        + j.runtime);
    }
    fleet.start(horizon);
    fleet.run();

    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < runners.size(); i++) {
        h = digestFio(h, runners[i]->collect(std::move(pending[i])));
        h = fnv(h, inis[i]->stats().reads);
        h = fnv(h, inis[i]->stats().writes);
        h = fnv(h, inis[i]->stats().rdmaWrites);
    }
    for (const auto &[id, info] : tgt.connections()) {
        h = fnv(h, id);
        h = fnv(h, info.tenant);
        h = fnv(h, info.ops);
        h = fnv(h, info.readBytes);
        h = fnv(h, info.writeBytes);
    }
    h = fnv(h, fleet.target().dev.totalOps());
    h = fnv(h, fleet.controllerDigest());
    h = fnv(h, fleet.beacons());
    for (unsigned i = 0; i < fleet.size(); i++) {
        h = fnv(h, fleet.system(i).now());
        h = fnv(h, fleet.system(i).eq.executed());
    }
    EXPECT_GT(fleet.beacons(), 0u);
    EXPECT_GT(fleet.target().dev.totalOps(), 0u);
    return h;
}

} // namespace

/**
 * The fabric fleet's digest — fio stats, per-connection target stats,
 * controller beacon fold — must be bit-identical at 1, 2, and 4
 * shards: remote capsules ride the same deterministic mailbox merge as
 * every other cross-domain message.
 */
TEST(Fabric, FleetDigestInvariantAcrossShardCounts)
{
    const std::uint64_t one = runMiniFabricFleet(1);
    EXPECT_EQ(one, runMiniFabricFleet(2));
    EXPECT_EQ(one, runMiniFabricFleet(4));
}

namespace {

fab::FabricProfile
depthProfile(std::uint32_t depth, bool enforce = true,
             std::uint32_t reactors = 1)
{
    fab::FabricProfile p;
    p.queueDepth = depth;
    p.enforceDepth = enforce;
    p.reactors = reactors;
    return p;
}

} // namespace

TEST(FabricAdmission, DepthOneCompletesInSubmissionOrder)
{
    Net net(1, depthProfile(1));
    ASSERT_TRUE(net.connectAll());
    std::vector<std::uint8_t> buf(4096);
    std::vector<unsigned> order;
    for (unsigned i = 0; i < 6; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&order, i](long long n, kern::IoTrace) {
                           EXPECT_EQ(n, 4096);
                           order.push_back(i);
                       });
    // Five of the six are held back by admission, not rejected.
    EXPECT_EQ(net.ini().depthQueued(), 5u);
    net.exec.run();
    ASSERT_EQ(order.size(), 6u);
    for (unsigned i = 0; i < 6; i++)
        EXPECT_EQ(order[i], i);
    EXPECT_EQ(net.ini().stats().queuedOnDepth, 5u);
    EXPECT_EQ(net.ini().stats().maxInflight, 1u);
    EXPECT_EQ(net.ini().depthQueued(), 0u);
    EXPECT_EQ(net.tgt.overflowParks(), 0u);
}

TEST(FabricAdmission, DepthKWithExcessCompletesAllWithinDepth)
{
    constexpr std::uint32_t k = 4;
    constexpr unsigned m = 6;
    Net net(1, depthProfile(k));
    ASSERT_TRUE(net.connectAll());
    std::vector<std::uint8_t> buf(4096);
    unsigned done = 0;
    for (unsigned i = 0; i < k + m; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&done](long long n, kern::IoTrace) {
                           EXPECT_EQ(n, 4096);
                           done++;
                       });
    EXPECT_EQ(net.ini().depthQueued(), m);
    net.exec.run();
    EXPECT_EQ(done, k + m);
    EXPECT_EQ(net.ini().stats().queuedOnDepth, m);
    // Admission capped the connection at its depth end to end; the
    // target saw the same ceiling on its queue pair.
    EXPECT_EQ(net.ini().stats().maxInflight, k);
    EXPECT_EQ(net.tgt.connections().at(1).peakInflight, k);
    EXPECT_EQ(net.tgt.overflowParks(), 0u);
}

TEST(FabricAdmission, VictimStaysOrderedAndBoundedUnderAggressor)
{
    constexpr std::uint32_t k = 4;
    Net net(2, depthProfile(k));
    ASSERT_TRUE(net.connectAll());
    std::vector<std::uint8_t> abuf(4096);
    std::vector<std::uint8_t> vbuf(4096);
    unsigned aggDone = 0;
    Time aggLastAt = 0;
    for (unsigned i = 0; i < 40; i++)
        net.ini(0).read(0, static_cast<DevAddr>(i) * 4096, abuf,
                        [&](long long n, kern::IoTrace) {
                            EXPECT_EQ(n, 4096);
                            aggDone++;
                            aggLastAt = net.client(0).now();
                        });
    std::vector<unsigned> victimOrder;
    Time victimLastAt = 0;
    for (unsigned i = 0; i < 5; i++)
        net.ini(1).read(0, (64 + static_cast<DevAddr>(i)) * 4096, vbuf,
                        [&, i](long long n, kern::IoTrace) {
                            EXPECT_EQ(n, 4096);
                            victimOrder.push_back(i);
                            victimLastAt = net.client(1).now();
                        });
    net.exec.run();
    EXPECT_EQ(aggDone, 40u);
    ASSERT_EQ(victimOrder.size(), 5u);
    // The aggressor's backlog cannot reorder the victim's stream: the
    // victim's own queue pair preserves admission order.
    for (unsigned i = 0; i < 5; i++)
        EXPECT_EQ(victimOrder[i], i);
    // Per-connection depth caps the aggressor's in-flight share, so
    // the victim's short stream finishes well before the flood does.
    EXPECT_LT(victimLastAt, aggLastAt);
    EXPECT_LE(net.ini(0).stats().maxInflight, k);
    EXPECT_LE(net.ini(1).stats().maxInflight, k);
}

TEST(FabricAdmission, ResetWithQueuedOverDepthDrainsDeterministically)
{
    Net net(1, depthProfile(2));
    ASSERT_TRUE(net.connectAll());
    std::vector<std::uint8_t> buf(4096);
    unsigned failed = 0;
    for (unsigned i = 0; i < 8; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&failed](long long n, kern::IoTrace) {
                           EXPECT_LT(n, 0);
                           failed++;
                       });
    EXPECT_EQ(net.ini().depthQueued(), 6u);
    // Reset while two are on the wire and six wait in the admission
    // queue: every callback must fail fast, and nothing may leak.
    net.client().eq.schedule(net.client().now() + 12 * kUs,
                             [&] { net.ini().reset(); });
    net.exec.run();
    EXPECT_EQ(failed, 8u);
    EXPECT_EQ(net.ini().depthQueued(), 0u);
    EXPECT_EQ(net.ini().inflight(), 0u);
    EXPECT_EQ(net.ini().state(), fab::ConnState::Idle);
    EXPECT_EQ(net.tgt.pendingIos(), 0u);

    // The connection is reusable and admission still enforces.
    net.settle();
    ASSERT_TRUE(net.connectAll());
    unsigned done = 0;
    for (unsigned i = 0; i < 4; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&done](long long n, kern::IoTrace) {
                           EXPECT_EQ(n, 4096);
                           done++;
                       });
    net.exec.run();
    EXPECT_EQ(done, 4u);
    EXPECT_EQ(net.ini().stats().maxInflight, 2u);
}

TEST(FabricAdmission, DisabledEnforcementParksOverflowAtTarget)
{
    Net net(1, depthProfile(2, /*enforce=*/false));
    ASSERT_TRUE(net.connectAll());
    std::vector<std::uint8_t> buf(4096);
    unsigned done = 0;
    for (unsigned i = 0; i < 10; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&done](long long n, kern::IoTrace) {
                           EXPECT_EQ(n, 4096);
                           done++;
                       });
    // Nothing queues at the initiator with enforcement off...
    EXPECT_EQ(net.ini().depthQueued(), 0u);
    net.exec.run();
    EXPECT_EQ(done, 10u);
    EXPECT_EQ(net.ini().stats().queuedOnDepth, 0u);
    // ...so the overflow lands in the target's per-connection park
    // queue instead, and the device still never sees more than depth.
    EXPECT_GT(net.tgt.overflowParks(), 0u);
    EXPECT_EQ(net.tgt.connections().at(1).peakInflight, 2u);
}

TEST(FabricIncast, ConnReactorMappingIsDeterministic)
{
    // The admin queue is reactor 0 territory and connId 0 is invalid;
    // data connections stripe round-robin from reactor 0.
    EXPECT_EQ(sys::connReactor(1, 1), 0u);
    EXPECT_EQ(sys::connReactor(1, 4), 0u);
    EXPECT_EQ(sys::connReactor(2, 4), 1u);
    EXPECT_EQ(sys::connReactor(5, 4), 0u);
    EXPECT_EQ(sys::connReactor(6, 4), 1u);

    Net net(4, depthProfile(8, true, /*reactors=*/2));
    ASSERT_TRUE(net.connectAll());
    for (const auto &[id, info] : net.tgt.connections())
        EXPECT_EQ(info.reactor, sys::connReactor(id, 2));
}

TEST(FabricIncast, AdminStaysSerialWithManyReactors)
{
    Net net(4, depthProfile(8, true, /*reactors=*/4));
    std::vector<Time> ackAt;
    for (unsigned i = 0; i < 4; i++)
        net.ini(i).connect(static_cast<Pasid>(20 + i),
                           [&net, i, &ackAt](fab::ConnectStatus st) {
                               EXPECT_EQ(st, fab::ConnectStatus::Ok);
                               ackAt.push_back(net.client(i).now());
                           });
    net.exec.run();
    ASSERT_EQ(ackAt.size(), 4u);
    std::sort(ackAt.begin(), ackAt.end());
    // Reactor count must not parallelize the admin queue: grants stay
    // spaced by the admin cost so connection ids (and with them tenant
    // ids and reactor placement) are handed out in one serial order.
    for (std::size_t i = 1; i < ackAt.size(); i++)
        EXPECT_GE(ackAt[i] - ackAt[i - 1], net.prof.adminProcessNs);
    EXPECT_EQ(net.tgt.accepts(), 4u);
}

namespace {

/** Incast burst over a Net; returns (digest, max latency). */
std::pair<std::uint64_t, Time>
runIncastBurst(unsigned shards, std::uint32_t reactors)
{
    Net net(4, depthProfile(8, true, reactors), shards);
    EXPECT_TRUE(net.connectAll());
    std::vector<std::vector<std::uint8_t>> bufs(
        4, std::vector<std::uint8_t>(4096));
    unsigned done = 0;
    for (unsigned c = 0; c < 4; c++)
        for (unsigned i = 0; i < 32; i++)
            net.ini(c).read(0,
                            (static_cast<DevAddr>(c) * 64 + i) * 4096,
                            bufs[c],
                            [&done](long long n, kern::IoTrace) {
                                EXPECT_EQ(n, 4096);
                                done++;
                            });
    net.exec.run();
    EXPECT_EQ(done, 4u * 32u);

    std::uint64_t h = 0xcbf29ce484222325ull;
    Time maxLat = 0;
    for (unsigned c = 0; c < 4; c++) {
        const auto &st = net.ini(c).stats();
        h = fnv(h, st.reads);
        h = fnv(h, st.queuedOnDepth);
        h = fnv(h, st.maxInflight);
        h = fnv(h, st.latency.p50());
        h = fnv(h, st.latency.max());
        maxLat = std::max(maxLat, st.latency.max());
    }
    for (const auto &rs : net.tgt.reactorStats()) {
        h = fnv(h, rs.capsules);
        h = fnv(h, rs.busyNs);
    }
    h = fnv(h, net.target.now());
    h = fnv(h, net.target.eq.executed());
    return {h, maxLat};
}

} // namespace

TEST(FabricIncast, BurstDigestInvariantAcrossShardCounts)
{
    for (std::uint32_t r : {1u, 2u, 4u}) {
        const auto one = runIncastBurst(1, r);
        EXPECT_EQ(one.first, runIncastBurst(2, r).first);
        EXPECT_EQ(one.first, runIncastBurst(4, r).first);
    }
}

TEST(FabricIncast, MoreReactorsNeverSlower)
{
    // Same burst, more lanes: the capsule serialization point thins
    // out, so the worst command can only get faster (or stay equal).
    const Time one = runIncastBurst(2, 1).second;
    const Time two = runIncastBurst(2, 2).second;
    const Time four = runIncastBurst(2, 4).second;
    EXPECT_LE(two, one);
    EXPECT_LE(four, two);
}

TEST(FabricIncast, ResetRacesRdmaPullOnAnotherReactor)
{
    Net net(2, depthProfile(8, true, /*reactors=*/2));
    ASSERT_TRUE(net.connectAll());
    // conn 1 → reactor 0, conn 2 → reactor 1.
    ASSERT_EQ(net.tgt.connections().at(2).reactor, 1u);

    // A 16 KiB write from conn 2 takes the two-phase path: the target
    // posts an RDMA read and waits for the payload.
    std::vector<std::uint8_t> big = test::pattern(16384, 9);
    long long wn = 0;
    net.ini(1).write(0, 0, big,
                     [&wn](long long n, kern::IoTrace) { wn = n; });
    // Reset conn 2 while its payload pull is in flight (the pull
    // request needs a round trip; 12 us is inside it). The generation
    // fence must discard the stale pull on the target and the stale
    // data on the wire without touching conn 1's reactor.
    net.client(1).eq.schedule(net.client(1).now() + 12 * kUs,
                              [&] { net.ini(1).reset(); });
    std::vector<std::uint8_t> buf(4096);
    long long rn = -1;
    net.ini(0).read(0, 4096, buf,
                    [&rn](long long n, kern::IoTrace) { rn = n; });
    net.exec.run();
    EXPECT_LT(wn, 0);
    EXPECT_EQ(rn, 4096);
    EXPECT_EQ(net.ini(1).state(), fab::ConnState::Idle);
    EXPECT_EQ(net.tgt.aborts(), 1u);
    EXPECT_EQ(net.tgt.pendingIos(), 0u);
    EXPECT_FALSE(net.tgt.connections().at(2).open);
    EXPECT_TRUE(net.tgt.connections().at(1).open);

    // The fenced connection reconnects cleanly onto its reactor.
    net.settle();
    bool ok = false;
    net.ini(1).connect(9, [&ok](fab::ConnectStatus st) {
        ok = st == fab::ConnectStatus::Ok;
    });
    net.exec.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(net.tgt.connections().at(3).reactor,
              sys::connReactor(3, 2));
}

TEST(FabricQos, ResetUnderQosBacklogFailsParkedIosWithoutLoss)
{
    // A tight IOPS cap parks most of a burst in the client host's QoS
    // registry, still ahead of depth admission. A reset mid-backlog
    // must present the SAME error surface as for in-flight I/O: every
    // callback fails (none dropped), no depth slot leaks, and the QoS
    // drain events that fire later for the torn-down generation are
    // no-ops. The connection must then be reusable.
    Net net(1, depthProfile(4));
    ASSERT_TRUE(net.connectAll());
    qos::Registry &reg = net.client().enableQos();
    qos::TenantLimit lim;
    lim.iopsLimit = 1000; // 1 op/ms
    lim.burstOps = 1;
    reg.setLimit(net.ini().remoteTenant(), lim);

    std::vector<std::uint8_t> buf(4096);
    unsigned failed = 0;
    long long firstErr = 0;
    for (unsigned i = 0; i < 6; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&](long long n, kern::IoTrace) {
                           EXPECT_LT(n, 0);
                           if (firstErr == 0)
                               firstErr = n;
                           EXPECT_EQ(n, firstErr)
                               << "parked I/O failed differently";
                           failed++;
                       });
    // One admitted by the full bucket, five parked in the registry.
    EXPECT_EQ(reg.parkedOf(net.ini().remoteTenant()), 5u);
    // Reset inside the response window of the first I/O and before the
    // first QoS drain (1 ms out) can admit a second one.
    net.client().eq.schedule(net.client().now() + 12 * kUs,
                             [&] { net.ini().reset(); });
    net.exec.run();

    EXPECT_EQ(failed, 6u);
    EXPECT_EQ(net.ini().pendingIos(), 0u);
    EXPECT_EQ(net.ini().inflight(), 0u);
    EXPECT_EQ(net.ini().depthQueued(), 0u);
    EXPECT_EQ(net.ini().state(), fab::ConnState::Idle);
    EXPECT_EQ(net.tgt.pendingIos(), 0u);
    // The drain events ran after the reset and found nothing to admit:
    // the backlog died with the generation, not silently later.
    EXPECT_EQ(reg.parkedOf(net.ini().remoteTenant()), 0u);

    // Reconnect mints a new connection tenant, unthrottled; the data
    // path must be fully functional again.
    net.settle();
    ASSERT_TRUE(net.connectAll());
    unsigned done = 0;
    for (unsigned i = 0; i < 4; i++)
        net.ini().read(0, static_cast<DevAddr>(i) * 4096, buf,
                       [&done](long long n, kern::IoTrace) {
                           EXPECT_EQ(n, 4096);
                           done++;
                       });
    net.exec.run();
    EXPECT_EQ(done, 4u);
}

TEST(FabricQos, ReconnectFromResetFailureCallbackSticks)
{
    // Regression: reset() used to fail pending I/O before detaching
    // the connect callback, so an I/O failure callback that immediately
    // reconnects had its fresh connect state stomped by the tail of the
    // same reset. Failure callbacks are now deferred past the teardown
    // and the old callback is captured first, so a reconnect issued
    // from inside one must win.
    Net net;
    ASSERT_TRUE(net.connectAll());
    std::vector<std::uint8_t> buf(4096);
    bool reconnected = false;
    long long rn = -1;
    net.ini().read(0, 0, buf, [&](long long n, kern::IoTrace) {
        EXPECT_LT(n, 0);
        // The initiator must already be fully torn down here.
        EXPECT_EQ(net.ini().state(), fab::ConnState::Idle);
        EXPECT_EQ(net.ini().inflight(), 0u);
        net.ini().connect(8, [&](fab::ConnectStatus st) {
            reconnected = st == fab::ConnectStatus::Ok;
        });
    });
    net.client().eq.schedule(net.client().now() + 12 * kUs,
                             [&] { net.ini().reset(); });
    net.exec.run();
    ASSERT_TRUE(reconnected);
    EXPECT_TRUE(net.ini().connected());

    // And the revived connection moves data.
    net.ini().read(0, 0, buf,
                   [&rn](long long n, kern::IoTrace) { rn = n; });
    net.exec.run();
    EXPECT_EQ(rn, 4096);
}

} // namespace bpd
