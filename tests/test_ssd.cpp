/**
 * @file
 * SSD model tests: block store semantics, NVMe queue pairs, latency
 * model calibration (Table 1 device time), VBA commands through the
 * IOMMU, write-translation overlap, arbitration fairness, flush ordering,
 * exclusive claim.
 */

#include <gtest/gtest.h>

#include "iommu/iommu.hpp"
#include "mem/page_table.hpp"
#include "sim/event_queue.hpp"
#include "ssd/block_store.hpp"
#include "ssd/dispatcher.hpp"
#include "ssd/nvme.hpp"

using namespace bpd;
using namespace bpd::ssd;

TEST(BlockStore, UnwrittenReadsZero)
{
    BlockStore bs(1 << 20);
    std::vector<std::uint8_t> buf(4096, 0xff);
    bs.read(0, buf);
    for (auto b : buf)
        EXPECT_EQ(b, 0);
}

TEST(BlockStore, WriteReadRoundTrip)
{
    BlockStore bs(1 << 20);
    std::vector<std::uint8_t> w(1000);
    for (std::size_t i = 0; i < w.size(); i++)
        w[i] = static_cast<std::uint8_t>(i);
    bs.write(12345, w);
    std::vector<std::uint8_t> r(1000);
    bs.read(12345, r);
    EXPECT_EQ(w, r);
}

TEST(BlockStore, CrossChunkWrite)
{
    BlockStore bs(1 << 20);
    std::vector<std::uint8_t> w(3 * 4096, 0x5a);
    bs.write(4096 - 100, w);
    std::vector<std::uint8_t> r(3 * 4096);
    bs.read(4096 - 100, r);
    EXPECT_EQ(w, r);
}

TEST(BlockStore, ZeroBlocksErases)
{
    BlockStore bs(1 << 20);
    std::vector<std::uint8_t> w(4096, 0xaa);
    bs.write(8192, w);
    EXPECT_FALSE(bs.isZero(8192, 4096));
    bs.zeroBlocks(2, 1);
    EXPECT_TRUE(bs.isZero(8192, 4096));
    EXPECT_EQ(bs.residentBytes(), 0u);
}

TEST(BlockStore, OutOfRangePanics)
{
    BlockStore bs(1 << 20);
    std::vector<std::uint8_t> buf(4096);
    EXPECT_DEATH(bs.read((1 << 20) - 100, buf), "out of range");
}

namespace {

struct DevFixture : ::testing::Test
{
    sim::EventQueue eq;
    mem::FrameAllocator fa;
    iommu::Iommu iommu{eq};
    BlockStore store{1ull << 30};
    SsdProfile prof = SsdProfile::optaneP5800X();
    std::unique_ptr<NvmeDevice> dev;

    void
    SetUp() override
    {
        prof.jitterSigma = 0.0; // deterministic latency for assertions
        dev = std::make_unique<NvmeDevice>(eq, store, iommu, 1, prof);
    }

    Completion
    runOne(QueuePair *qp, const Command &cmd)
    {
        Completion out;
        bool done = false;
        CommandDispatcher disp(*qp);
        disp.submit(cmd, [&](const Completion &c) {
            out = c;
            done = true;
        });
        eq.run();
        EXPECT_TRUE(done);
        qp->setCompletionHook(nullptr);
        return out;
    }
};

} // namespace

TEST_F(DevFixture, LbaReadLatencyNear4020)
{
    QueuePair *qp = dev->createQueuePair(kNoPasid, 32, false);
    std::vector<std::uint8_t> buf(4096);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = 0;
    cmd.len = 4096;
    cmd.hostBuf = buf;
    const Completion c = runOne(qp, cmd);
    EXPECT_EQ(c.status, Status::Success);
    const Time dev4k = c.completeTime - c.submitTime;
    // Table 1: device time for a 4 KiB read ~= 4020 ns.
    EXPECT_NEAR(static_cast<double>(dev4k), 4020.0, 150.0);
}

TEST_F(DevFixture, ReadDataMoves)
{
    std::vector<std::uint8_t> seed(4096);
    for (std::size_t i = 0; i < seed.size(); i++)
        seed[i] = static_cast<std::uint8_t>(i * 7);
    store.write(64 * 4096, seed);

    QueuePair *qp = dev->createQueuePair(kNoPasid, 32, false);
    std::vector<std::uint8_t> buf(4096, 0);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = 64 * 4096;
    cmd.len = 4096;
    cmd.hostBuf = buf;
    runOne(qp, cmd);
    EXPECT_EQ(buf, seed);
}

TEST_F(DevFixture, WriteDataMoves)
{
    QueuePair *qp = dev->createQueuePair(kNoPasid, 32, false);
    std::vector<std::uint8_t> buf(4096, 0x3c);
    Command cmd;
    cmd.op = Op::Write;
    cmd.addr = 128 * 4096;
    cmd.len = 4096;
    cmd.hostBuf = buf;
    const Completion c = runOne(qp, cmd);
    EXPECT_EQ(c.status, Status::Success);
    std::vector<std::uint8_t> check(4096);
    store.read(128 * 4096, check);
    EXPECT_EQ(check, buf);
}

TEST_F(DevFixture, InvalidLengthRejected)
{
    QueuePair *qp = dev->createQueuePair(kNoPasid, 32, false);
    std::vector<std::uint8_t> buf(4096);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = 0;
    cmd.len = 100; // not sector aligned
    cmd.hostBuf = buf;
    EXPECT_EQ(runOne(qp, cmd).status, Status::InvalidCommand);
}

TEST_F(DevFixture, OutOfRangeRejected)
{
    QueuePair *qp = dev->createQueuePair(kNoPasid, 32, false);
    std::vector<std::uint8_t> buf(4096);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = store.capacity();
    cmd.len = 4096;
    cmd.hostBuf = buf;
    EXPECT_EQ(runOne(qp, cmd).status, Status::OutOfRange);
}

TEST_F(DevFixture, VbaOnNonVbaQueueRejected)
{
    QueuePair *qp = dev->createQueuePair(kNoPasid, 32, false);
    std::vector<std::uint8_t> buf(4096);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = 0x40000000;
    cmd.addrIsVba = true;
    cmd.len = 4096;
    cmd.hostBuf = buf;
    EXPECT_EQ(runOne(qp, cmd).status, Status::InvalidCommand);
}

TEST_F(DevFixture, VbaReadTranslatesAndChecks)
{
    // Build a process page table with FTEs and a DMA buffer.
    mem::PageTable pt(fa);
    const Pasid pasid = 9;
    iommu.bindPasid(pasid, &pt);
    std::vector<std::uint8_t> seed(4096, 0x77);
    store.write(500 * 4096, seed);
    pt.set(0x40000000, mem::makeFte(500, 1, true));

    std::vector<std::uint8_t> dma(4096, 0);
    iommu.mapDma(pasid, 0x9000000, std::span(dma), true);

    QueuePair *qp = dev->createQueuePair(pasid, 32, true);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = 0x40000000;
    cmd.addrIsVba = true;
    cmd.len = 4096;
    cmd.dmaIova = 0x9000000;
    cmd.useIova = true;
    const Completion c = runOne(qp, cmd);
    EXPECT_EQ(c.status, Status::Success);
    EXPECT_EQ(dma, seed);
    EXPECT_GT(c.translateNs, 0u);

    // Reads serialize translation before media: total >= 4020 + ~550.
    const Time total = c.completeTime - c.submitTime;
    EXPECT_GT(total, 4400u);
}

TEST_F(DevFixture, VbaWriteHidesTranslation)
{
    mem::PageTable pt(fa);
    const Pasid pasid = 9;
    iommu.bindPasid(pasid, &pt);
    pt.set(0x40000000, mem::makeFte(500, 1, true));
    std::vector<std::uint8_t> dma(4096, 0x11);
    iommu.mapDma(pasid, 0x9000000, std::span(dma), true);

    QueuePair *qp = dev->createQueuePair(pasid, 32, true);
    Command wr;
    wr.op = Op::Write;
    wr.addr = 0x40000000;
    wr.addrIsVba = true;
    wr.len = 4096;
    wr.dmaIova = 0x9000000;
    wr.useIova = true;
    const Completion c = runOne(qp, wr);
    EXPECT_EQ(c.status, Status::Success);
    // Write: translation overlapped with data-in DMA (Section 4.3); the
    // device time shows no translation serialization.
    const Time total = c.completeTime - c.submitTime;
    EXPECT_LT(total, 4600u);
    std::vector<std::uint8_t> check(4096);
    store.read(500 * 4096, check);
    EXPECT_EQ(check, dma);
}

TEST_F(DevFixture, VbaFaultCompletesWithErrorAndNoData)
{
    mem::PageTable pt(fa);
    const Pasid pasid = 9;
    iommu.bindPasid(pasid, &pt);
    pt.set(0x40000000, mem::makeFte(500, 1, /*writable=*/false));
    std::vector<std::uint8_t> dma(4096, 0x42);
    iommu.mapDma(pasid, 0x9000000, std::span(dma), true);

    QueuePair *qp = dev->createQueuePair(pasid, 32, true);
    Command wr;
    wr.op = Op::Write;
    wr.addr = 0x40000000;
    wr.addrIsVba = true;
    wr.len = 4096;
    wr.dmaIova = 0x9000000;
    wr.useIova = true;
    const Completion c = runOne(qp, wr);
    EXPECT_EQ(c.status, Status::PermissionFault);
    // No bytes reached the media.
    EXPECT_TRUE(store.isZero(500 * 4096, 4096));
    EXPECT_EQ(dev->translationFaults(), 1u);
}

TEST_F(DevFixture, DmaFaultOnUnmappedIova)
{
    mem::PageTable pt(fa);
    const Pasid pasid = 9;
    iommu.bindPasid(pasid, &pt);
    pt.set(0x40000000, mem::makeFte(500, 1, true));
    QueuePair *qp = dev->createQueuePair(pasid, 32, true);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = 0x40000000;
    cmd.addrIsVba = true;
    cmd.len = 4096;
    cmd.dmaIova = 0xdead0000;
    cmd.useIova = true;
    EXPECT_EQ(runOne(qp, cmd).status, Status::DmaFault);
}

TEST_F(DevFixture, RoundRobinFairness)
{
    // Two queues, heavily loaded: served ops should split evenly.
    QueuePair *q1 = dev->createQueuePair(kNoPasid, 256, false);
    QueuePair *q2 = dev->createQueuePair(kNoPasid, 256, false);
    std::vector<std::uint8_t> buf(4096);
    int done1 = 0, done2 = 0;
    q1->setCompletionHook([&](const Completion &) { done1++; });
    q2->setCompletionHook([&](const Completion &) { done2++; });
    for (int i = 0; i < 200; i++) {
        Command cmd;
        cmd.op = Op::Read;
        cmd.addr = static_cast<DevAddr>(i) * 4096;
        cmd.len = 4096;
        cmd.hostBuf = buf;
        ASSERT_TRUE(q1->submit(cmd));
        ASSERT_TRUE(q2->submit(cmd));
    }
    eq.run();
    EXPECT_EQ(done1, 200);
    EXPECT_EQ(done2, 200);
    EXPECT_EQ(q1->completedOps(), q2->completedOps());
}

TEST_F(DevFixture, ThroughputSaturatesNearProfile)
{
    // Keep 64 requests outstanding for a while; measure IOPS.
    QueuePair *qp = dev->createQueuePair(kNoPasid, 4096, false);
    std::vector<std::uint8_t> buf(4096);
    std::uint64_t completed = 0;
    std::function<void()> refill;
    CommandDispatcher disp(*qp);
    auto submitOne = [&]() {
        Command cmd;
        cmd.op = Op::Read;
        cmd.addr = (completed % 1024) * 4096;
        cmd.len = 4096;
        cmd.hostBuf = buf;
        disp.submit(cmd, [&](const Completion &) {
            completed++;
            if (eq.now() < 10 * kMs)
                refill();
        });
    };
    refill = submitOne;
    for (int i = 0; i < 64; i++)
        submitOne();
    eq.run();
    const double secs = static_cast<double>(eq.now()) / 1e9;
    const double iops = static_cast<double>(completed) / secs;
    // units(6) / 4.02us ~= 1.49M IOPS; allow generous tolerance.
    EXPECT_GT(iops, 1.2e6);
    EXPECT_LT(iops, 1.8e6);
}

TEST_F(DevFixture, FlushWaitsForPriorWrites)
{
    QueuePair *qp = dev->createQueuePair(kNoPasid, 32, false);
    CommandDispatcher disp(*qp);
    std::vector<std::uint8_t> buf(4096, 1);
    Time writeDone = 0, flushDone = 0;
    Command wr;
    wr.op = Op::Write;
    wr.addr = 0;
    wr.len = 4096;
    wr.hostBuf = buf;
    disp.submit(wr, [&](const Completion &c) {
        writeDone = c.completeTime;
    });
    Command fl;
    fl.op = Op::Flush;
    disp.submit(fl, [&](const Completion &c) {
        flushDone = c.completeTime;
    });
    eq.run();
    EXPECT_GT(flushDone, writeDone);
}

TEST_F(DevFixture, ExclusiveClaimDisablesOthers)
{
    QueuePair *kernelQ = dev->createQueuePair(kNoPasid, 32, false);
    ASSERT_TRUE(dev->claimExclusive(77));
    EXPECT_FALSE(dev->claimExclusive(88));
    // Kernel queue is disabled while claimed.
    std::vector<std::uint8_t> buf(4096);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = 0;
    cmd.len = 4096;
    cmd.hostBuf = buf;
    EXPECT_EQ(runOne(kernelQ, cmd).status, Status::InvalidCommand);
    // Other processes cannot create queues.
    EXPECT_EQ(dev->createQueuePair(55, 32, true), nullptr);
    // Owner can.
    EXPECT_NE(dev->createQueuePair(77, 32, false), nullptr);
    dev->releaseExclusive(77);
    EXPECT_EQ(runOne(kernelQ, cmd).status, Status::Success);
}

TEST_F(DevFixture, QueueDepthBackpressure)
{
    QueuePair *qp = dev->createQueuePair(kNoPasid, 4, false);
    std::vector<std::uint8_t> buf(4096);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = 0;
    cmd.len = 4096;
    cmd.hostBuf = buf;
    int ok = 0;
    for (int i = 0; i < 10; i++) {
        if (qp->submit(cmd))
            ok++;
    }
    EXPECT_EQ(ok, 4);
    eq.run();
    while (qp->pollCq())
        ;
    EXPECT_TRUE(qp->submit(cmd));
    eq.run();
}

TEST_F(DevFixture, LargeReadBandwidthBound)
{
    QueuePair *qp = dev->createQueuePair(kNoPasid, 32, false);
    std::vector<std::uint8_t> buf(128 << 10);
    Command cmd;
    cmd.op = Op::Read;
    cmd.addr = 0;
    cmd.len = 128 << 10;
    cmd.hostBuf = buf;
    const Completion c = runOne(qp, cmd);
    const Time total = c.completeTime - c.submitTime;
    // 128 KiB at ~7 GB/s = ~18.7 us transfer + ~3.4 us base.
    EXPECT_NEAR(static_cast<double>(total), 22100.0, 2000.0);
}
