/**
 * @file
 * Baseline engines (SPDK exclusivity, XRP chained lookups), simulation
 * determinism, and full end-to-end integration scenarios combining
 * multiple processes, engines, revocation and crash recovery.
 */

#include <gtest/gtest.h>

#include "tests/helpers.hpp"
#include "workloads/fio.hpp"
#include "xrp/xrp.hpp"

using namespace bpd;
using namespace bpd::test;
using fs::kOpenCreate;
using fs::kOpenDirect;
using fs::kOpenRead;
using fs::kOpenWrite;

// --- SPDK ---

TEST(Spdk, ExclusiveClaimBlocksKernelAndOthers)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &p = s.newProcess();
    const int fd = s.kernel.setupCreateFile(p, "/f", 1 << 20, 7);

    spdk::SpdkDriver drv(s.eq, s.dev, s.kernel.cpu(), p.pasid());
    ASSERT_TRUE(drv.init());

    // Kernel I/O fails while SPDK owns the device.
    std::vector<std::uint8_t> tmp(4096);
    auto r = kPread(s, p, fd, tmp, 0);
    EXPECT_LT(r.n, 0);

    // A second claimant fails.
    kern::Process &p2 = s.newProcess();
    spdk::SpdkDriver drv2(s.eq, s.dev, s.kernel.cpu(), p2.pasid());
    EXPECT_FALSE(drv2.init());

    // SPDK itself reads fine, raw.
    IoResult rr;
    std::vector<std::uint8_t> buf(4096);
    drv.read(0, 512ull << 20, buf, [&](long long n, kern::IoTrace tr) {
        rr.n = n;
        rr.trace = tr;
    });
    s.run();
    EXPECT_EQ(rr.n, 4096);
    // SPDK latency ~ device + small user overhead, no translation.
    EXPECT_LT(rr.trace.total(), 4600u);

    drv.shutdown();
    // Kernel works again.
    std::vector<std::uint8_t> buf2(4096);
    EXPECT_EQ(kPread(s, p, fd, buf2, 0).n, 4096);
}

TEST(Spdk, ShutdownWithQueuedIoDrainsFirst)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &p = s.newProcess();

    spdk::SpdkDriver drv(s.eq, s.dev, s.kernel.cpu(), p.pasid());
    ASSERT_TRUE(drv.init());

    // Queue I/O and call shutdown() before any of it completes.
    // Queue pairs and dispatchers must survive until the completions
    // reap, and the exclusive claim must hold while DMA is in flight.
    constexpr int kIos = 8;
    int completions = 0;
    std::vector<std::uint8_t> buf(4096);
    for (int i = 0; i < kIos; i++)
        drv.read(0, (256ull + i) << 20, buf,
                 [&](long long n, kern::IoTrace) {
                     EXPECT_EQ(n, 4096);
                     completions++;
                 });
    EXPECT_EQ(drv.pendingIos(), (std::uint64_t)kIos);

    drv.shutdown();
    // Deferred: the claim is still ours until the queue drains.
    EXPECT_TRUE(drv.initialized());
    EXPECT_EQ(completions, 0);

    s.run();
    // Every callback fired exactly once, then the release happened.
    EXPECT_EQ(completions, kIos);
    EXPECT_EQ(drv.pendingIos(), 0u);
    EXPECT_FALSE(drv.initialized());

    // The device is free again for another claimant.
    kern::Process &p2 = s.newProcess();
    spdk::SpdkDriver drv2(s.eq, s.dev, s.kernel.cpu(), p2.pasid());
    EXPECT_TRUE(drv2.init());
    drv2.shutdown();
}

// --- XRP ---

TEST(Xrp, ChainedLookupCheaperThanSyncChain)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &p = s.newProcess();
    const int fd = s.kernel.setupCreateFile(p, "/idx", 8 << 20, 7);

    // 6-hop chain via XRP.
    xrp::XrpEngine engine(s.kernel);
    Time t0 = s.now();
    long long hops = -1;
    engine.lookup(p, fd, xrp::Hop{0, 512},
                  [](std::span<const std::uint8_t>, unsigned i)
                      -> std::optional<xrp::Hop> {
                      if (i >= 5)
                          return std::nullopt;
                      return xrp::Hop{(i + 1) * 4096ull, 512};
                  },
                  [&](long long n, kern::IoTrace) { hops = n; });
    s.run();
    const Time xrpLat = s.now() - t0;
    EXPECT_EQ(hops, 6);

    // Same 6 reads as dependent sync syscalls.
    t0 = s.now();
    std::vector<std::uint8_t> buf(512);
    std::function<void(unsigned)> chain = [&](unsigned i) {
        if (i >= 6)
            return;
        s.kernel.sysPread(p, fd, buf, i * 4096ull,
                          [&chain, i](long long n, kern::IoTrace) {
                              ASSERT_GT(n, 0);
                              chain(i + 1);
                          });
    };
    chain(0);
    s.run();
    const Time syncLat = s.now() - t0;

    EXPECT_LT(xrpLat, syncLat);
    // XRP saves ~ (5 kernel traversals); each ~3.5 us.
    EXPECT_GT(syncLat - xrpLat, 5 * 2500u);
}

TEST(Xrp, RequiresODirect)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &p = s.newProcess();
    s.kernel.setupCreateFile(p, "/idx", 1 << 20, 7);
    const int bfd = s.kernel.setupOpen(p, "/idx", kOpenRead); // buffered
    xrp::XrpEngine engine(s.kernel);
    long long res = 0;
    engine.lookup(p, bfd, xrp::Hop{0, 512},
                  [](std::span<const std::uint8_t>, unsigned)
                      -> std::optional<xrp::Hop> { return std::nullopt; },
                  [&](long long n, kern::IoTrace) { res = n; });
    s.run();
    EXPECT_LT(res, 0);
}

// --- Determinism ---

TEST(Determinism, SameSeedSameResult)
{
    auto runOnce = []() {
        sim::setVerbose(false);
        sys::SystemConfig cfg;
        cfg.deviceBytes = 8ull << 30;
        cfg.seed = 1234;
        sys::System s(cfg);
        wl::FioRunner runner(s);
        wl::FioJob job;
        job.engine = wl::Engine::Bypassd;
        job.rw = wl::RwMode::RandRead;
        job.numJobs = 3;
        job.fileBytes = 64ull << 20;
        job.runtime = 5 * kMs;
        job.warmup = 500 * kUs;
        job.seed = 99;
        return runner.run(job);
    };
    wl::FioResult a = runOnce();
    wl::FioResult b = runOnce();
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.latency.p50(), b.latency.p50());
    EXPECT_EQ(a.latency.p999(), b.latency.p999());
    EXPECT_DOUBLE_EQ(a.avgDeviceNs, b.avgDeviceNs);
}

// --- Integration ---

TEST(Integration, MixedTenantsEndToEnd)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 4ull << 30;
    sys::System s(cfg);

    // Tenant A uses BypassD, tenant B uses the kernel, concurrently, on
    // private files; a third file is shared read-only.
    kern::Process &pa = s.newProcess(1000, 1000);
    kern::Process &pb = s.newProcess(2000, 2000);
    bypassd::UserLib &la = s.userLib(pa);

    const int setupA = s.kernel.setupCreateFile(pa, "/a.dat", 8 << 20, 1);
    kClose(s, pa, setupA);
    const int setupB = s.kernel.setupCreateFile(pb, "/b.dat", 8 << 20, 2);
    const int setupS
        = s.kernel.setupCreateFile(pa, "/shared.dat", 8 << 20, 3);
    kClose(s, pa, setupS);

    const int fa = ulOpen(s, la, "/a.dat",
                          kOpenRead | kOpenWrite | kOpenDirect);
    ASSERT_TRUE(la.isDirect(fa));
    const int fshared
        = ulOpen(s, la, "/shared.dat", kOpenRead | kOpenDirect);
    ASSERT_TRUE(la.isDirect(fshared));

    // Interleave 200 ops from both tenants.
    int doneA = 0, doneB = 0;
    std::vector<std::uint8_t> bufA(4096), bufB(4096);
    auto dataA = pattern(4096, 77);
    std::function<void(int)> loopA = [&](int i) {
        if (i >= 100) {
            doneA = i;
            return;
        }
        const std::uint64_t off
            = static_cast<std::uint64_t>(i % 100) * 4096;
        if (i % 3 == 0) {
            la.pwrite(0, fa, dataA, off,
                      [&loopA, i](long long n, kern::IoTrace) {
                          ASSERT_EQ(n, 4096);
                          loopA(i + 1);
                      });
        } else {
            la.pread(0, fshared, bufA, off,
                     [&loopA, i](long long n, kern::IoTrace) {
                         ASSERT_EQ(n, 4096);
                         loopA(i + 1);
                     });
        }
    };
    std::function<void(int)> loopB = [&](int i) {
        if (i >= 100) {
            doneB = i;
            return;
        }
        s.kernel.sysPread(pb, setupB, bufB,
                          static_cast<std::uint64_t>(i % 100) * 4096,
                          [&loopB, i](long long n, kern::IoTrace) {
                              ASSERT_EQ(n, 4096);
                              loopB(i + 1);
                          });
    };
    loopA(0);
    loopB(0);
    s.run();
    EXPECT_EQ(doneA, 100);
    EXPECT_EQ(doneB, 100);

    // A's writes are durable and visible through the kernel.
    std::vector<std::uint8_t> check(4096);
    s.kernel.setupRead(pa, fa, check, 0);
    EXPECT_EQ(check, dataA);

    // File system is consistent and recoverable.
    std::string why;
    EXPECT_TRUE(s.ext4.fsck(&why)) << why;
    auto recovered = fs::Ext4Fs::recover(s.store, s.ext4);
    EXPECT_TRUE(recovered->fsck(&why)) << why;

    // The recovered FS maps /a.dat to the same blocks: content intact.
    InodeNum ino;
    ASSERT_EQ(recovered->resolve("/a.dat", &ino), fs::FsStatus::Ok);
    std::vector<fs::Seg> segs;
    ASSERT_EQ(recovered->mapRange(*recovered->inode(ino), 0, 4096, &segs),
              fs::FsStatus::Ok);
    std::vector<std::uint8_t> raw(4096);
    s.store.read(segs[0].addr, raw);
    EXPECT_EQ(raw, dataA);
}

TEST(Integration, FrameAccountingBalanced)
{
    // Page-table frames must balance across the full lifecycle: fmap
    // (shared file tables + private paths), close (detach), unlink
    // (inode + cached file table destroyed), process teardown.
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 2ull << 30;
    sys::System s(cfg);
    const std::size_t base = s.frames.live();

    kern::Process &p = s.newProcess();
    const std::size_t withProc = s.frames.live(); // + page-table root
    EXPECT_GT(withProc, base);

    bypassd::UserLib &lib = s.userLib(p);
    const int cfd = s.kernel.setupCreateFile(p, "/tmpf", 16 << 20, 1);
    kClose(s, p, cfd);
    const int fd = ulOpen(s, lib, "/tmpf",
                          kOpenRead | kOpenWrite | kOpenDirect);
    ASSERT_TRUE(lib.isDirect(fd));
    EXPECT_GT(s.frames.live(), withProc); // file tables + private path

    ulClose(s, lib, fd);
    int rc = -1;
    s.kernel.sysUnlink(p, "/tmpf", [&](int r) { rc = r; });
    s.run();
    ASSERT_EQ(rc, 0);

    const Pid pid = p.pid();
    s.kernel.destroyProcess(pid);
    EXPECT_EQ(s.frames.live(), base);
}
