/**
 * @file
 * Ext4Fs tests: namespace, permissions, allocation + zero-on-alloc,
 * mapping, truncation with deferred frees, journaling crash recovery,
 * fsck invariants.
 */

#include <gtest/gtest.h>

#include "fs/ext4.hpp"
#include "sim/random.hpp"
#include "ssd/block_store.hpp"

using namespace bpd;
using namespace bpd::fs;

namespace {

struct FsFixture : ::testing::Test
{
    ssd::BlockStore media{256ull << 20}; // 256 MiB
    Ext4Fs fs{media};
    Credentials alice{1000, 1000};
    Credentials bob{2000, 2000};

    Inode *
    mk(const std::string &path, std::uint16_t mode = 0644,
       Credentials who = {1000, 1000})
    {
        InodeNum ino;
        EXPECT_EQ(fs.create(path, mode, who, &ino), FsStatus::Ok);
        return fs.inode(ino);
    }
};

} // namespace

TEST_F(FsFixture, CreateResolve)
{
    Inode *f = mk("/a.txt");
    InodeNum ino;
    ASSERT_EQ(fs.resolve("/a.txt", &ino), FsStatus::Ok);
    EXPECT_EQ(ino, f->ino);
    EXPECT_EQ(fs.resolve("/missing", &ino), FsStatus::NoEnt);
}

TEST_F(FsFixture, CreateDuplicateFails)
{
    mk("/a.txt");
    InodeNum ino;
    EXPECT_EQ(fs.create("/a.txt", 0644, alice, &ino), FsStatus::Exists);
}

TEST_F(FsFixture, NestedDirectories)
{
    InodeNum d;
    ASSERT_EQ(fs.mkdir("/dir", 0755, alice, &d), FsStatus::Ok);
    ASSERT_EQ(fs.mkdir("/dir/sub", 0755, alice, &d), FsStatus::Ok);
    Inode *f = mk("/dir/sub/file");
    InodeNum ino;
    ASSERT_EQ(fs.resolve("/dir/sub/file", &ino), FsStatus::Ok);
    EXPECT_EQ(ino, f->ino);
    EXPECT_EQ(fs.resolve("/dir/file", &ino), FsStatus::NoEnt);
}

TEST_F(FsFixture, PathThroughFileIsNotDir)
{
    mk("/a.txt");
    InodeNum ino;
    EXPECT_EQ(fs.resolve("/a.txt/x", &ino), FsStatus::NotDir);
}

TEST_F(FsFixture, UnlinkFreesBlocks)
{
    Inode *f = mk("/a.txt");
    ASSERT_EQ(fs.extendTo(*f, 1 << 20, nullptr), FsStatus::Ok);
    const std::uint64_t freeBefore = fs.allocator().freeBlocks();
    ASSERT_EQ(fs.unlink("/a.txt", alice), FsStatus::Ok);
    EXPECT_EQ(fs.allocator().freeBlocks(), freeBefore + 256);
    InodeNum ino;
    EXPECT_EQ(fs.resolve("/a.txt", &ino), FsStatus::NoEnt);
}

TEST_F(FsFixture, UnlinkOpenFileBusy)
{
    Inode *f = mk("/a.txt");
    f->kernelOpens = 1;
    EXPECT_EQ(fs.unlink("/a.txt", alice), FsStatus::Busy);
}

TEST_F(FsFixture, PermissionMatrix)
{
    Inode *f = mk("/a.txt", 0640, alice);
    // Owner: read+write.
    EXPECT_TRUE(Ext4Fs::mayAccess(*f, alice, true, true));
    // Same group, different uid: read only.
    Credentials groupmate{1001, 1000};
    EXPECT_TRUE(Ext4Fs::mayAccess(*f, groupmate, true, false));
    EXPECT_FALSE(Ext4Fs::mayAccess(*f, groupmate, false, true));
    // Other: nothing.
    EXPECT_FALSE(Ext4Fs::mayAccess(*f, bob, true, false));
    // Root: everything.
    EXPECT_TRUE(Ext4Fs::mayAccess(*f, Credentials{0, 0}, true, true));
}

TEST_F(FsFixture, ExtendAllocatesContiguously)
{
    Inode *f = mk("/a.txt");
    std::vector<Extent> added;
    ASSERT_EQ(fs.extendTo(*f, 10 * kBlockBytes, &added), FsStatus::Ok);
    EXPECT_EQ(f->size, 10 * kBlockBytes);
    EXPECT_EQ(f->extents.mappedBlocks(), 10u);
    // Fresh FS: single contiguous run expected.
    EXPECT_EQ(f->extents.extentCount(), 1u);
}

TEST_F(FsFixture, NewBlocksAreZeroed)
{
    // Dirty the media first, then allocate over it.
    Inode *f = mk("/a.txt");
    ASSERT_EQ(fs.extendTo(*f, 8 * kBlockBytes, nullptr), FsStatus::Ok);
    std::vector<Seg> segs;
    ASSERT_EQ(fs.mapRange(*f, 0, 8 * kBlockBytes, &segs), FsStatus::Ok);
    auto junk = std::vector<std::uint8_t>(8 * kBlockBytes, 0xee);
    media.write(segs[0].addr, junk);
    // Free (via truncate+fsync) and reallocate to another file.
    ASSERT_EQ(fs.truncate(*f, 0), FsStatus::Ok);
    fs.fsyncMeta(*f);
    Inode *g = mk("/b.txt");
    ASSERT_EQ(fs.extendTo(*g, 8 * kBlockBytes, nullptr), FsStatus::Ok);
    std::vector<Seg> segs2;
    ASSERT_EQ(fs.mapRange(*g, 0, 8 * kBlockBytes, &segs2), FsStatus::Ok);
    // Confidentiality: the new owner must read zeros (Section 5.3).
    EXPECT_TRUE(media.isZero(segs2[0].addr, 8 * kBlockBytes));
}

TEST_F(FsFixture, TruncateDefersFreesUntilSync)
{
    Inode *f = mk("/a.txt");
    ASSERT_EQ(fs.extendTo(*f, 16 * kBlockBytes, nullptr), FsStatus::Ok);
    const std::uint64_t freeBefore = fs.allocator().freeBlocks();
    ASSERT_EQ(fs.truncate(*f, 4 * kBlockBytes), FsStatus::Ok);
    // Blocks not yet reusable (Section 3.6 race mitigation)...
    EXPECT_EQ(fs.allocator().freeBlocks(), freeBefore);
    EXPECT_FALSE(f->deferredFrees.empty());
    // ...until the sync point.
    fs.fsyncMeta(*f);
    EXPECT_EQ(fs.allocator().freeBlocks(), freeBefore + 12);
    EXPECT_TRUE(f->deferredFrees.empty());
}

TEST_F(FsFixture, MapRangeOffsets)
{
    Inode *f = mk("/a.txt");
    ASSERT_EQ(fs.extendTo(*f, 4 * kBlockBytes, nullptr), FsStatus::Ok);
    std::vector<Seg> segs;
    ASSERT_EQ(fs.mapRange(*f, 512, 1024, &segs), FsStatus::Ok);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].len, 1024u);
    EXPECT_EQ(segs[0].addr % kBlockBytes, 512u);
    // Beyond mapping fails.
    EXPECT_EQ(fs.mapRange(*f, 4 * kBlockBytes, 1, &segs),
              FsStatus::Inval);
}

TEST_F(FsFixture, FsckCleanAfterOps)
{
    Inode *f = mk("/a.txt");
    fs.extendTo(*f, 1 << 20, nullptr);
    fs.truncate(*f, 100 << 10);
    fs.fsyncMeta(*f);
    mk("/b.txt");
    fs.mkdir("/d", 0755, alice, nullptr);
    std::string why;
    EXPECT_TRUE(fs.fsck(&why)) << why;
}

TEST_F(FsFixture, RecoveryReplaysCommitted)
{
    Inode *f = mk("/a.txt");
    ASSERT_EQ(fs.extendTo(*f, 64 * kBlockBytes, nullptr), FsStatus::Ok);
    mk("/b.txt");
    fs.unlink("/b.txt", alice);
    ASSERT_EQ(fs.truncate(*f, 16 * kBlockBytes), FsStatus::Ok);

    auto recovered = Ext4Fs::recover(media, fs);
    std::string why;
    ASSERT_TRUE(recovered->fsck(&why)) << why;

    InodeNum ino;
    ASSERT_EQ(recovered->resolve("/a.txt", &ino), FsStatus::Ok);
    const Inode *rf = recovered->inode(ino);
    EXPECT_EQ(rf->size, 16 * kBlockBytes);
    EXPECT_EQ(rf->extents.mappedBlocks(), 16u);
    EXPECT_EQ(recovered->resolve("/b.txt", &ino), FsStatus::NoEnt);
    // Allocator agreement: same free count as the live FS after its own
    // sync point releases deferred frees.
    fs.fsyncMeta(*f);
    EXPECT_EQ(recovered->allocator().freeBlocks(),
              fs.allocator().freeBlocks());
}

TEST_F(FsFixture, RecoveryDropsUncommitted)
{
    mk("/a.txt");
    fs.checkpoint();
    // Open a transaction that never commits, then crash.
    fs.journal().begin();
    fs.journal().log(JRecord{JOp::AddDirent, Ext4Fs::kRootIno, 999, 0, 0,
                             "ghost"});
    fs.journal().crash();
    auto recovered = Ext4Fs::recover(media, fs);
    InodeNum ino;
    EXPECT_EQ(recovered->resolve("/a.txt", &ino), FsStatus::Ok);
    EXPECT_EQ(recovered->resolve("/ghost", &ino), FsStatus::NoEnt);
    std::string why;
    EXPECT_TRUE(recovered->fsck(&why)) << why;
}

TEST_F(FsFixture, CheckpointShrinksReplayWork)
{
    Inode *f = mk("/a.txt");
    fs.extendTo(*f, 1 << 20, nullptr);
    fs.checkpoint();
    EXPECT_TRUE(fs.journal().committed().empty());
    // Recovery straight from checkpoint.
    auto recovered = Ext4Fs::recover(media, fs);
    InodeNum ino;
    ASSERT_EQ(recovered->resolve("/a.txt", &ino), FsStatus::Ok);
    EXPECT_EQ(recovered->inode(ino)->size, 1u << 20);
}

/** Property: random op sequences stay fsck-clean and recoverable. */
class Ext4Property : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Ext4Property, RandomOpsFsckCleanAndRecoverable)
{
    ssd::BlockStore media(128ull << 20);
    Ext4Fs fs(media);
    Credentials creds{1000, 1000};
    sim::Rng rng(GetParam());
    std::vector<std::string> paths;
    for (int i = 0; i < 120; i++) {
        const int op = static_cast<int>(rng.nextUint(5));
        if (op == 0 || paths.empty()) {
            std::string p = "/f" + std::to_string(i);
            InodeNum ino;
            if (fs.create(p, 0644, creds, &ino) == FsStatus::Ok)
                paths.push_back(p);
        } else {
            const std::string &p
                = paths[rng.nextUint(paths.size())];
            InodeNum ino;
            if (fs.resolve(p, &ino) != FsStatus::Ok)
                continue;
            Inode *f = fs.inode(ino);
            switch (op) {
              case 1:
                fs.extendTo(*f,
                            f->size + (1 + rng.nextUint(64)) * kBlockBytes,
                            nullptr);
                break;
              case 2:
                fs.truncate(*f, f->size / 2);
                break;
              case 3:
                fs.fsyncMeta(*f);
                break;
              case 4:
                if (fs.unlink(p, creds) == FsStatus::Ok) {
                    paths.erase(std::find(paths.begin(), paths.end(), p));
                }
                break;
            }
        }
    }
    std::string why;
    ASSERT_TRUE(fs.fsck(&why)) << why;
    auto recovered = Ext4Fs::recover(media, fs);
    ASSERT_TRUE(recovered->fsck(&why)) << "recovered: " << why;
    // Same namespace.
    for (const auto &p : paths) {
        InodeNum a, b;
        ASSERT_EQ(fs.resolve(p, &a), FsStatus::Ok);
        ASSERT_EQ(recovered->resolve(p, &b), FsStatus::Ok);
        EXPECT_EQ(fs.inode(a)->size, recovered->inode(b)->size);
        EXPECT_EQ(fs.inode(a)->extents.extents(),
                  recovered->inode(b)->extents.extents());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ext4Property,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));
