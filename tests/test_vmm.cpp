/**
 * @file
 * VM support tests (Section 5.2): nested translation through guest page
 * tables + VF partition windows, and block-level isolation between VMs
 * even against fully malicious guests forging raw commands.
 */

#include <gtest/gtest.h>

#include "tests/helpers.hpp"
#include "vmm/vmm.hpp"

using namespace bpd;
using namespace bpd::test;

namespace {

struct VmmFixture : ::testing::Test
{
    sys::System s{smallConfig()};
    vmm::VmmManager vmm{s};
    vmm::VmGuest *vm1 = nullptr;
    vmm::VmGuest *vm2 = nullptr;

    void
    SetUp() override
    {
        sim::setVerbose(false);
        vm1 = vmm.createVm(64 << 20);
        vm2 = vmm.createVm(64 << 20);
        ASSERT_NE(vm1, nullptr);
        ASSERT_NE(vm2, nullptr);
    }

    IoResult
    vmWrite(vmm::VmGuest *vm, Vaddr vba,
            std::span<const std::uint8_t> data, std::uint64_t off)
    {
        IoResult r;
        vm->write(vba, data, off, [&](long long n, kern::IoTrace tr) {
            r.n = n;
            r.trace = tr;
        });
        s.run();
        return r;
    }

    IoResult
    vmRead(vmm::VmGuest *vm, Vaddr vba, std::span<std::uint8_t> buf,
           std::uint64_t off)
    {
        IoResult r;
        vm->read(vba, buf, off, [&](long long n, kern::IoTrace tr) {
            r.n = n;
            r.trace = tr;
        });
        s.run();
        return r;
    }
};

} // namespace

TEST_F(VmmFixture, PartitionsAreDisjoint)
{
    EXPECT_EQ(vm1->partitionBase() + vm1->partitionBytes(),
              vm2->partitionBase());
    EXPECT_EQ(vmm.vmCount(), 2u);
}

TEST_F(VmmFixture, NestedTranslationRoundTrip)
{
    const Vaddr vba = vm1->fmapGuestBlocks(10, 8, true);
    auto data = pattern(4096, 7);
    EXPECT_EQ(vmWrite(vm1, vba, data, 4096).n, 4096);
    std::vector<std::uint8_t> back(4096);
    EXPECT_EQ(vmRead(vm1, vba, back, 4096).n, 4096);
    EXPECT_EQ(back, data);
    // The bytes physically live inside VM1's partition: guest block 11
    // maps to host (partitionBase + 11*4K).
    std::vector<std::uint8_t> raw(4096);
    s.store.read(vm1->partitionBase() + 11 * kBlockBytes, raw);
    EXPECT_EQ(raw, data);
    // Translation happened (IOMMU walked the guest table).
    EXPECT_GT(vmRead(vm1, vba, back, 4096).trace.translateNs, 300u);
}

TEST_F(VmmFixture, GuestCannotMapBeyondPartition)
{
    // A guest FTE pointing past its partition: translation succeeds in
    // the guest table but the device's VF window rejects it.
    const Vaddr vba = vm1->fmapGuestBlocks(
        (64 << 20) / kBlockBytes - 1, 1, true);
    // Hand-poke a further FTE past the end via the same helper being
    // refused:
    EXPECT_DEATH(vm1->fmapGuestBlocks((64 << 20) / kBlockBytes, 1, true),
                 "exceeds partition");
    // The last in-range block still works.
    auto data = pattern(4096, 9);
    EXPECT_EQ(vmWrite(vm1, vba, data, 0).n, 4096);
}

TEST_F(VmmFixture, ForgedGuestFteCannotEscapePartition)
{
    // Malicious guest kernel: FTEs with huge guest block numbers that
    // would land in VM2's partition after windowing. The device's
    // bounds check (seg.addr+len <= partitionBytes) rejects them.
    auto secret = pattern(4096, 111);
    const Vaddr v2 = vm2->fmapGuestBlocks(0, 4, true);
    ASSERT_EQ(vmWrite(vm2, v2, secret, 0).n, 4096);

    const BlockNo evilBlock
        = (vm1->partitionBytes() / kBlockBytes) + 0; // first VM2 block
    // Bypass the helper's own check by poking the guest table directly
    // through a raw command with a VBA we map out-of-range... the
    // helper refuses, so forge the command with a raw (non-VBA) LBA:
    ssd::Command raw;
    raw.op = ssd::Op::Read;
    raw.addr = vm1->partitionBytes(); // = VM2's first byte after window
    raw.addrIsVba = false;
    raw.len = 4096;
    raw.hostBuf = std::span<std::uint8_t>();
    ssd::Status st = ssd::Status::Success;
    vm1->submitRaw(raw, [&](const ssd::Completion &c) { st = c.status; });
    s.run();
    // Raw LBAs on VBA-mode queues are rejected outright.
    EXPECT_EQ(st, ssd::Status::InvalidCommand);
    (void)evilBlock;
}

TEST_F(VmmFixture, OverhangingVbaRangeRejected)
{
    // Map the last block of the partition and issue an I/O that would
    // run past the window.
    const std::uint64_t blocks = vm1->partitionBytes() / kBlockBytes;
    const Vaddr vba = vm1->fmapGuestBlocks(blocks - 1, 1, true);
    std::vector<std::uint8_t> buf(8192); // 2 blocks: second escapes
    IoResult r;
    // Guest maliciously extends its own table past the helper:
    // translation will fault (not present) for the second page, so this
    // checks the fault path; the window check covers translated escapes.
    vm1->read(vba, buf, 0, [&](long long n, kern::IoTrace tr) {
        r.n = n;
        r.trace = tr;
    });
    s.run();
    EXPECT_LT(r.n, 0);
}

TEST_F(VmmFixture, VmsCannotReadEachOther)
{
    auto secret = pattern(4096, 42);
    const Vaddr v2 = vm2->fmapGuestBlocks(5, 1, true);
    ASSERT_EQ(vmWrite(vm2, v2, secret, 0).n, 4096);

    // VM1 maps the SAME guest block number (5) — nested translation
    // lands it in VM1's own partition, not VM2's.
    const Vaddr v1 = vm1->fmapGuestBlocks(5, 1, true);
    std::vector<std::uint8_t> back(4096, 0xff);
    ASSERT_EQ(vmRead(vm1, v1, back, 0).n, 4096);
    EXPECT_NE(back, secret); // reads its own (zeroed) partition block
    for (auto b : back)
        EXPECT_EQ(b, 0);
}

TEST_F(VmmFixture, HostTenantsUnaffectedByVmTraffic)
{
    // Host BypassD tenant and a VM run concurrently; data stays correct
    // on both sides.
    kern::Process &p = s.newProcess();
    const int cfd = s.kernel.setupCreateFile(p, "/host.dat", 1 << 20, 3);
    kClose(s, p, cfd);
    bypassd::UserLib &lib = s.userLib(p);
    const int fd = ulOpen(s, lib, "/host.dat",
                          fs::kOpenRead | fs::kOpenWrite
                              | fs::kOpenDirect);
    ASSERT_TRUE(lib.isDirect(fd));

    const Vaddr vba = vm1->fmapGuestBlocks(0, 16, true);
    auto hostData = pattern(4096, 1);
    auto vmData = pattern(4096, 2);
    int done = 0;
    lib.pwrite(0, fd, hostData, 0, [&](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 4096);
        done++;
    });
    vm1->write(vba, vmData, 0, [&](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 4096);
        done++;
    });
    s.run();
    EXPECT_EQ(done, 2);

    std::vector<std::uint8_t> back(4096);
    s.kernel.setupRead(p, fd, back, 0);
    EXPECT_EQ(back, hostData);
    std::vector<std::uint8_t> vback(4096);
    ASSERT_EQ(vmRead(vm1, vba, vback, 0).n, 4096);
    EXPECT_EQ(vback, vmData);
}
