/**
 * @file
 * Randomized multi-tenant stress with a shadow model: several processes
 * drive random reads/writes/appends/truncates/fsyncs/reopens (plus
 * kernel-interface opens that trigger revocations) against files whose
 * expected contents are tracked byte-for-byte in memory. Afterwards the
 * file system must pass fsck, survive crash recovery, and every file
 * must read back exactly as the shadow predicts — regardless of which
 * interface (BypassD or kernel) served each op.
 */

#include <functional>
#include <map>

#include <gtest/gtest.h>

#include "tests/helpers.hpp"

using namespace bpd;
using namespace bpd::test;
using fs::kOpenCreate;
using fs::kOpenDirect;
using fs::kOpenRead;
using fs::kOpenWrite;

namespace {

constexpr std::uint32_t kRw
    = kOpenRead | kOpenWrite | kOpenCreate | kOpenDirect;

struct FileActor
{
    std::string path;
    kern::Process *proc = nullptr;
    bypassd::UserLib *lib = nullptr;
    Tid tid = 0; //!< each actor is its own thread (own queue/DMA buffer)
    int fd = -1;
    std::vector<std::uint8_t> shadow;
    sim::Rng rng{0};
    int opsLeft = 0;
    bool busy = false;
};

class StressTest : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(StressTest, ShadowModelIntegrity)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 2ull << 30;
    sys::System s(cfg);
    sim::Rng seedRng(GetParam());

    // Three tenants, six files, two per tenant plus one shared pair.
    std::vector<kern::Process *> procs;
    for (int i = 0; i < 3; i++)
        procs.push_back(&s.newProcess(1000 + i, 1000));

    std::vector<std::unique_ptr<FileActor>> actors;
    for (int f = 0; f < 6; f++) {
        auto a = std::make_unique<FileActor>();
        a->path = "/stress" + std::to_string(f);
        a->tid = static_cast<Tid>(f);
        a->proc = procs[static_cast<std::size_t>(f % 3)];
        a->lib = &s.userLib(*a->proc);
        a->rng = sim::Rng(GetParam() * 977 + f);
        a->opsLeft = 50;
        const std::uint64_t initial
            = (1 + a->rng.nextUint(16)) * kBlockBytes;
        const int cfd = s.kernel.setupCreateFile(*a->proc, a->path,
                                                 initial, 0);
        ASSERT_GE(cfd, 0);
        kClose(s, *a->proc, cfd);
        a->shadow.assign(initial, 0);
        a->fd = ulOpen(s, *a->lib, a->path, kRw);
        ASSERT_GE(a->fd, 0);
        actors.push_back(std::move(a));
    }

    // Per-file serialized op streams, interleaved across files.
    std::function<void(FileActor &)> step = [&](FileActor &a) {
        if (a.opsLeft-- <= 0)
            return;
        const int op = static_cast<int>(a.rng.nextUint(100));
        if (op < 40) {
            // Random write inside the file (any alignment).
            if (a.shadow.empty()) {
                step(a);
                return;
            }
            const std::uint64_t off = a.rng.nextUint(a.shadow.size());
            const std::uint64_t len = std::min<std::uint64_t>(
                1 + a.rng.nextUint(12000), a.shadow.size() - off);
            if (len == 0) {
                step(a);
                return;
            }
            auto data = std::make_shared<std::vector<std::uint8_t>>(
                pattern(len, a.rng.next()));
            std::copy(data->begin(), data->end(),
                      a.shadow.begin() + static_cast<long>(off));
            a.lib->pwrite(a.tid, a.fd,
                          std::span<const std::uint8_t>(data->data(),
                                                        data->size()),
                          off,
                          [&, data](long long n, kern::IoTrace) {
                              ASSERT_EQ(n, (long long)data->size());
                              step(a);
                          });
        } else if (op < 70) {
            // Random read, verified against the shadow.
            if (a.shadow.empty()) {
                step(a);
                return;
            }
            const std::uint64_t off = a.rng.nextUint(a.shadow.size());
            const std::uint64_t len = std::min<std::uint64_t>(
                1 + a.rng.nextUint(12000), a.shadow.size() - off);
            auto buf = std::make_shared<std::vector<std::uint8_t>>(len);
            a.lib->pread(a.tid, a.fd, std::span<std::uint8_t>(*buf), off,
                         [&, buf, off, len](long long n, kern::IoTrace) {
                             ASSERT_EQ(n, (long long)len);
                             for (std::uint64_t i = 0; i < len; i++) {
                                 ASSERT_EQ((*buf)[i], a.shadow[off + i])
                                     << a.path << " off "
                                     << (off + i);
                             }
                             step(a);
                         });
        } else if (op < 80) {
            // Append beyond EOF (kernel path, FTE extension).
            const std::uint64_t len = 1 + a.rng.nextUint(8000);
            auto data = std::make_shared<std::vector<std::uint8_t>>(
                pattern(len, a.rng.next()));
            const std::uint64_t off = a.shadow.size();
            a.shadow.insert(a.shadow.end(), data->begin(), data->end());
            a.lib->pwrite(a.tid, a.fd,
                          std::span<const std::uint8_t>(data->data(),
                                                        data->size()),
                          off,
                          [&, data](long long n, kern::IoTrace) {
                              ASSERT_EQ(n, (long long)data->size());
                              step(a);
                          });
        } else if (op < 86) {
            // Truncate (shrink).
            const std::uint64_t newSize
                = a.rng.nextUint(a.shadow.size() + 1);
            a.shadow.resize(newSize);
            a.lib->ftruncate(a.fd, newSize, [&](int rc) {
                ASSERT_EQ(rc, 0);
                step(a);
            });
        } else if (op < 92) {
            a.lib->fsync(a.tid, a.fd, [&](int rc) {
                ASSERT_EQ(rc, 0);
                step(a);
            });
        } else if (op < 96) {
            // Close + reopen (exercises funmap / warm fmap).
            a.lib->close(a.fd, [&](int rc) {
                ASSERT_EQ(rc, 0);
                a.lib->open(a.path, kOpenRead | kOpenWrite | kOpenDirect,
                            0644, [&](int fd) {
                                ASSERT_GE(fd, 0);
                                a.fd = fd;
                                step(a);
                            });
            });
        } else {
            // Revocation pressure: another process opens via the kernel
            // interface briefly; our next ops transparently fall back,
            // and a later reopen may regain direct access.
            kern::Process *other
                = procs[(a.rng.nextUint(2) + 1) % procs.size()];
            s.kernel.sysOpen(*other, a.path, kOpenRead, 0644,
                             [&, other](int kfd) {
                                 if (kfd < 0) {
                                     step(a);
                                     return;
                                 }
                                 s.kernel.sysClose(*other, kfd,
                                                   [&](int) {
                                                       step(a);
                                                   });
                             });
        }
    };

    for (auto &a : actors)
        step(*a);
    s.run();

    // Every op stream finished.
    for (auto &a : actors)
        EXPECT_LE(a->opsLeft, 0) << a->path;

    // Final content check through the raw kernel helpers.
    for (auto &a : actors) {
        std::vector<std::uint8_t> back(a->shadow.size());
        if (!back.empty()) {
            ASSERT_EQ(s.kernel.setupRead(*a->proc, a->fd, back, 0),
                      (long long)back.size());
            EXPECT_EQ(back, a->shadow) << a->path;
        }
        const fs::Inode *node
            = s.ext4.inode(a->proc->file(a->fd)->ino);
        ASSERT_NE(node, nullptr);
        EXPECT_EQ(node->size, a->shadow.size()) << a->path;
    }

    // File-system invariants + crash recovery.
    std::string why;
    ASSERT_TRUE(s.ext4.fsck(&why)) << why;
    auto recovered = fs::Ext4Fs::recover(s.store, s.ext4);
    ASSERT_TRUE(recovered->fsck(&why)) << "recovered: " << why;
    for (auto &a : actors) {
        InodeNum ino;
        ASSERT_EQ(recovered->resolve(a->path, &ino), fs::FsStatus::Ok);
        EXPECT_EQ(recovered->inode(ino)->size, a->shadow.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10));
