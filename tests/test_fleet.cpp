/**
 * @file
 * Multi-device fleet tests: the DeviceMap placement layer (per-inode
 * home devices, round-robin spread, determinism across same-seed
 * systems), the health monitor's eviction-by-revocation (kernel and
 * BypassD direct paths fail over with ENODEV, never hang), hot-plug
 * extending placement, the per-device x per-tenant accounting fold,
 * and the fabric connect-capsule device selector — including eviction
 * racing an in-flight RDMA-read pull and a queued-over-depth backlog,
 * digest-identical at 1 and 4 shards.
 *
 * No death tests here on purpose: this suite runs under TSan in CI,
 * and death tests fork.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fabric/initiator.hpp"
#include "fabric/target.hpp"
#include "helpers.hpp"
#include "sim/logging.hpp"
#include "system/system.hpp"
#include "workloads/fio.hpp"

using namespace bpd;

namespace {

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; i++) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

sys::SystemConfig
fleetConfig(std::size_t maxDevices, std::uint64_t seed = 7)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 1ull << 30; // per slot
    cfg.seed = seed;
    cfg.maxDevices = maxDevices;
    return cfg;
}

/**
 * Create @p path and materialize one block so placement pins a home.
 * The fd is closed again: a live kernel-interface open would make the
 * sharing policy refuse later fmap()s of the same file.
 */
void
makeFile(sys::System &s, kern::Process &p, const std::string &path)
{
    const int fd = test::kOpen(s, p, path,
                               fs::kOpenRead | fs::kOpenWrite
                                   | fs::kOpenCreate | fs::kOpenDirect);
    ASSERT_GE(fd, 0) << path;
    const auto data = test::pattern(4096, 3);
    EXPECT_EQ(test::kPwrite(s, p, fd, data, 0).n, 4096) << path;
    EXPECT_EQ(test::kClose(s, p, fd), 0) << path;
}

/**
 * Create files until one is homed on the device with @p devId;
 * returns its path (empty when the bounded scan fails).
 */
std::string
fileOnDevice(sys::System &s, kern::Process &p, DevId devId,
             const std::string &prefix)
{
    for (int i = 0; i < 16; i++) {
        const std::string path = prefix + std::to_string(i);
        makeFile(s, p, path);
        if (s.deviceOfFile(path) == devId)
            return path;
    }
    return "";
}

} // namespace

TEST(FleetDeviceMap, PlacementSpreadsAndIsDeterministic)
{
    auto homesOf = [](std::vector<DevId> *out) {
        sys::System s(fleetConfig(4));
        kern::Process &p = s.newProcess();
        for (int i = 0; i < 8; i++) {
            const std::string path = "/spread" + std::to_string(i);
            makeFile(s, p, path);
            const DevId d = s.deviceOfFile(path);
            EXPECT_GE(d, s.cfg.devId);
            EXPECT_LT(d, s.cfg.devId + 4);
            out->push_back(d);
        }
    };
    std::vector<DevId> a, b;
    homesOf(&a);
    homesOf(&b);
    // Same seed, same creation order: bit-identical placement.
    EXPECT_EQ(a, b);
    // Round-robin over 4 slots covers every device within 8 files.
    std::vector<DevId> seen = a;
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    EXPECT_EQ(seen.size(), 4u);
}

TEST(FleetDeviceMap, SingleDeviceSystemNeverPinsHomes)
{
    sys::System s(fleetConfig(1));
    kern::Process &p = s.newProcess();
    makeFile(s, p, "/classic");
    // The classic machine keeps the legacy allocator: no placement map,
    // deviceOfFile reports "no pinned home".
    EXPECT_EQ(s.deviceOfFile("/classic"), 0u);
    EXPECT_EQ(s.devices.homes().size(), 0u);
}

TEST(FleetDeviceMap, PerDeviceTenantSumsFoldThreeDirections)
{
    sys::System s(fleetConfig(4));
    s.enableTenantAccounting();
    wl::FioRunner runner(s);
    wl::FioJob job;
    job.engine = wl::Engine::Sync;
    job.rw = wl::RwMode::RandWrite;
    job.bs = 4096;
    job.numJobs = 4;
    job.perProcess = true;
    job.runtime = 400 * kUs;
    job.warmup = 40 * kUs;
    job.fileBytes = 2ull << 20;
    job.seed = 11;
    job.filePrefix = "/fleet";
    runner.run(job);

    // The invariant checks all three directions internally: tenant sums
    // vs system totals, device x tenant folded over devices vs tenant
    // rows, and folded over tenants vs each device's own counters.
    EXPECT_EQ(s.verifyTenantSums(), "");

    // The traffic really was multi-device, and the per-device rows fold
    // back to each slot's hardware op counter bit-exactly.
    std::map<DevId, std::uint64_t> perDev;
    s.tenantAccounting().forEachDevice(
        [&](DevId d, TenantId, const obs::DeviceTenantCounters &c) {
            perDev[d] += c.ssdOps;
        });
    EXPECT_GE(perDev.size(), 2u);
    for (std::size_t i = 0; i < s.devices.size(); i++) {
        const ssd::NvmeDevice &dev = s.devices.slot(i).dev;
        EXPECT_EQ(perDev[dev.devId()], dev.totalOps())
            << "slot " << i;
    }
}

TEST(FleetHealth, MonitorEvictsFaultyDeviceAndKernelIoFailsOver)
{
    sys::SystemConfig cfg = fleetConfig(2);
    cfg.healthMonitor = true;
    cfg.evictAfterMediaErrors = 2;
    cfg.slotSsd[1] = cfg.ssd;
    cfg.slotSsd[1].mediaErrorEvery = 3; // every 3rd media op fails
    sys::System s(cfg);
    kern::Process &p = s.newProcess();

    const std::string victim
        = fileOnDevice(s, p, s.cfg.devId + 1, "/sick");
    ASSERT_NE(victim, "");
    const std::string healthy = fileOnDevice(s, p, s.cfg.devId, "/ok");
    ASSERT_NE(healthy, "");
    const int vfd = test::kOpen(s, p, victim,
                                fs::kOpenWrite | fs::kOpenDirect);
    const int hfd = test::kOpen(s, p, healthy,
                                fs::kOpenWrite | fs::kOpenDirect);
    ASSERT_GE(vfd, 0);
    ASSERT_GE(hfd, 0);

    // Hammer the sick device until its injected media errors cross the
    // monitor's threshold. Individual failures surface as EINVAL;
    // none may hang (kPwrite runs the queue to quiescence).
    const auto data = test::pattern(4096, 9);
    bool evicted = false;
    for (int i = 0; i < 24 && !evicted; i++) {
        test::kPwrite(s, p, vfd, data, 0);
        evicted = s.deviceEvicted(1);
    }
    ASSERT_TRUE(evicted);
    EXPECT_FALSE(s.deviceEvicted(0)); // slot 0 is never monitored

    // Post-eviction the dead device answers ENODEV distinctly...
    EXPECT_EQ(test::kPwrite(s, p, vfd, data, 0).n,
              kern::errOf(fs::FsStatus::NoDev));
    // ...the healthy device is untouched...
    EXPECT_EQ(test::kPwrite(s, p, hfd, data, 0).n, 4096);
    // ...and placement stops handing out the evicted slot.
    for (int i = 0; i < 6; i++) {
        const std::string path = "/after" + std::to_string(i);
        makeFile(s, p, path);
        EXPECT_NE(s.deviceOfFile(path), s.cfg.devId + 1) << path;
    }
}

TEST(FleetHotPlug, PlugExtendsPlacementDeterministically)
{
    auto run = [](std::vector<DevId> *out) {
        sys::SystemConfig cfg = fleetConfig(4);
        cfg.onlineDevices = 2;
        sys::System s(cfg);
        kern::Process &p = s.newProcess();
        // Boot-online slots only: nothing lands past slot 1.
        for (int i = 0; i < 4; i++) {
            const std::string path = "/boot" + std::to_string(i);
            makeFile(s, p, path);
            EXPECT_LT(s.deviceOfFile(path), s.cfg.devId + 2);
        }
        EXPECT_EQ(s.kernel.slotCount(), 2u);
        EXPECT_EQ(s.plugDevice(), 2u);
        EXPECT_EQ(s.kernel.slotCount(), 3u);
        // The plugged slot joins the round-robin; a handful of new
        // files reaches it, and its I/O path works end to end.
        bool reached = false;
        for (int i = 0; i < 6; i++) {
            const std::string path = "/plug" + std::to_string(i);
            makeFile(s, p, path);
            const DevId d = s.deviceOfFile(path);
            EXPECT_LT(d, s.cfg.devId + 3);
            reached = reached || d == s.cfg.devId + 2;
            out->push_back(d);
        }
        EXPECT_TRUE(reached);
        EXPECT_GT(s.devices.slot(2).dev.totalOps(), 0u);
    };
    std::vector<DevId> a, b;
    run(&a);
    run(&b);
    EXPECT_EQ(a, b); // hot-plug rebuilds mappings deterministically
}

TEST(FleetEviction, DirectPathFteRevocationFallsBackWithEnodev)
{
    sys::System s(fleetConfig(2));
    kern::Process &p = s.newProcess();
    const std::string victim
        = fileOnDevice(s, p, s.cfg.devId + 1, "/direct");
    ASSERT_NE(victim, "");

    bypassd::UserLib &ul = s.userLib(p);
    const int fd = test::ulOpen(s, ul, victim,
                                fs::kOpenRead | fs::kOpenWrite
                                    | fs::kOpenDirect);
    ASSERT_GE(fd, 0);
    const auto data = test::pattern(4096, 5);
    // The first write may fall back while the shim fmaps; the stream
    // then settles onto the direct path.
    for (int i = 0; i < 4; i++)
        ASSERT_EQ(test::ulPwrite(s, ul, 0, fd, data, 0).n, 4096);
    EXPECT_GE(ul.directWrites(), 1u); // the fast path was really taken

    s.evictDevice(1);
    // The revocation faults the FTE; re-fmap is refused for the dead
    // device, the shim falls back to the kernel, and the kernel's I/O
    // answers ENODEV. The callback fires — nothing hangs.
    EXPECT_EQ(test::ulPwrite(s, ul, 0, fd, data, 0).n,
              kern::errOf(fs::FsStatus::NoDev));
    std::vector<std::uint8_t> rbuf(4096);
    EXPECT_EQ(test::ulPread(s, ul, 0, fd, rbuf, 0).n,
              kern::errOf(fs::FsStatus::NoDev));
    EXPECT_TRUE(s.deviceEvicted(1));
}

// ---------------------------------------------------------------------
// Fabric device selector + eviction races.
// ---------------------------------------------------------------------

namespace {

/**
 * One multi-device target machine and N single-device clients on a
 * sharded executor — the test_fabric Net shape with a device-map
 * target.
 */
struct FleetNet
{
    fab::FabricProfile prof;
    sys::System target;
    std::vector<std::unique_ptr<sys::System>> clients;
    sim::SimExecutor exec;
    std::uint32_t tDom = 0;
    std::vector<std::uint32_t> cDoms;
    fab::FabricTarget tgt;
    std::vector<std::unique_ptr<fab::FabricInitiator>> inis;

    explicit FleetNet(std::size_t targetDevices, unsigned nClients = 1,
                      fab::FabricProfile p = {}, unsigned shards = 2,
                      std::uint64_t seed = 42)
        : prof(p), target(fleetConfig(targetDevices, seed)),
          exec(std::min(shards, nClients + 1)), tgt(target, prof)
    {
        tDom = exec.addDomain(target.eq, 0, "target");
        for (unsigned i = 0; i < nClients; i++) {
            clients.push_back(std::make_unique<sys::System>(
                fleetConfig(1, seed + 1 + i)));
            const unsigned shard
                = exec.shardCount() > 1 ? 1 + i % (exec.shardCount() - 1)
                                        : 0;
            cDoms.push_back(exec.addDomain(clients[i]->eq, shard,
                                           sim::strf("client%u", i)));
        }
        for (unsigned i = 0; i < nClients; i++) {
            exec.connect(cDoms[i], tDom, prof.oneWayNs);
            exec.connect(tDom, cDoms[i], prof.oneWayNs);
        }
        tgt.bind(exec, tDom);
        EXPECT_TRUE(tgt.serve());
        for (unsigned i = 0; i < nClients; i++) {
            inis.push_back(std::make_unique<fab::FabricInitiator>(
                *clients[i], tgt));
            inis[i]->bind(exec, cDoms[i]);
        }
    }

    sys::System &client(unsigned i = 0) { return *clients.at(i); }
    fab::FabricInitiator &ini(unsigned i = 0) { return *inis.at(i); }

    /** Align every machine's clock to the net-wide max (see the
     *  test_fabric Net::settle rationale). */
    void
    settle()
    {
        Time t = target.now();
        for (auto &c : clients)
            t = std::max(t, c->now());
        target.eq.schedule(t, [] {});
        for (auto &c : clients)
            c->eq.schedule(t, [] {});
        exec.run();
    }

    fab::ConnectStatus
    connectTo(unsigned i, std::size_t slot)
    {
        settle();
        fab::ConnectStatus got = fab::ConnectStatus::Refused;
        ini(i).connect(static_cast<Pasid>(100 + i),
                       [&got](fab::ConnectStatus st) { got = st; }, slot);
        exec.run();
        return got;
    }
};

} // namespace

TEST(FabricSelector, ConnectRejectsAbsentAndEvictedSlots)
{
    FleetNet net(/*targetDevices=*/2, /*nClients=*/1);
    // A selector naming a slot the kernel never attached is a clean
    // protocol error, not a refusal or a crash.
    EXPECT_EQ(net.connectTo(0, 7), fab::ConnectStatus::NoDevice);
    EXPECT_EQ(net.ini().state(), fab::ConnState::Idle);

    net.target.evictDevice(1);
    EXPECT_EQ(net.connectTo(0, 1), fab::ConnectStatus::DeviceEvicted);
    EXPECT_EQ(net.ini().state(), fab::ConnState::Idle);

    // The same initiator connects fine to a healthy slot afterwards.
    EXPECT_EQ(net.connectTo(0, 0), fab::ConnectStatus::Ok);
    EXPECT_TRUE(net.ini().connected());
    EXPECT_EQ(net.ini().deviceSlot(), 0u);
}

TEST(FabricSelector, SecondSlotIoLandsOnItsDevice)
{
    FleetNet net(2, 2);
    ASSERT_EQ(net.connectTo(0, 0), fab::ConnectStatus::Ok);
    ASSERT_EQ(net.connectTo(1, 1), fab::ConnectStatus::Ok);
    EXPECT_EQ(net.ini(1).deviceSlot(), 1u);

    const auto data = test::pattern(4096, 13);
    std::vector<std::uint8_t> wbuf = data;
    long long wn = -1;
    net.ini(1).write(0, 0, wbuf,
                     [&wn](long long n, kern::IoTrace) { wn = n; });
    net.exec.run();
    EXPECT_EQ(wn, 4096);
    std::vector<std::uint8_t> rbuf(4096, 0);
    long long rn = -1;
    net.ini(1).read(0, 0, rbuf,
                    [&rn](long long n, kern::IoTrace) { rn = n; });
    net.exec.run();
    EXPECT_EQ(rn, 4096);
    EXPECT_EQ(rbuf, data);

    // Connection 2's queue pair lives on slot 1's device: its I/O is
    // invisible to slot 0's op counter and vice versa.
    EXPECT_EQ(net.target.devices.slot(1).dev.totalOps(), 2u);
    EXPECT_EQ(net.target.devices.slot(0).dev.totalOps(), 0u);
    EXPECT_EQ(net.tgt.connections().at(2).slot, 1u);
    EXPECT_EQ(net.tgt.connections().at(2).dev,
              net.target.devices.slot(1).dev.devId());
}

namespace {

/**
 * Evict slot 1 while a 16 KiB write's RDMA-read pull is still in
 * flight on its connection. The pulled payload must submit into the
 * evicted device, fail distinctly with ENODEV at the client, and leave
 * the target with no pending I/O — while a second connection on slot 0
 * is untouched. Returns a digest of everything observable.
 */
std::uint64_t
runRdmaPullEvictionRace(unsigned shards)
{
    FleetNet net(2, 2, fab::FabricProfile{}, shards);
    EXPECT_EQ(net.connectTo(0, 0), fab::ConnectStatus::Ok);
    EXPECT_EQ(net.connectTo(1, 1), fab::ConnectStatus::Ok);
    net.settle();

    std::vector<std::uint8_t> big = test::pattern(16384, 9);
    long long wn = 0;
    net.ini(1).write(0, 0, big,
                     [&wn](long long n, kern::IoTrace) { wn = n; });
    std::vector<std::uint8_t> buf(4096);
    long long rn = -1;
    net.ini(0).read(0, 4096, buf,
                    [&rn](long long n, kern::IoTrace) { rn = n; });
    // The pull needs a full round trip (capsule in ~5 us, pull request
    // back ~10 us, payload lands ~16 us): 12 us is inside the window,
    // so the device is dead by the time the payload submits.
    net.target.eq.schedule(net.target.now() + 12 * kUs,
                           [&net] { net.target.evictDevice(1); });
    net.exec.run();

    EXPECT_EQ(wn, kern::errOf(fs::FsStatus::NoDev));
    EXPECT_EQ(rn, 4096);
    EXPECT_EQ(net.tgt.pendingIos(), 0u);
    EXPECT_TRUE(net.ini(1).connected()); // error response, not abort
    // The rejected command is still fetched (and counted) before the
    // device answers DeviceEvicted; no data moved.
    EXPECT_EQ(net.target.devices.slot(1).dev.totalOps(), 1u);

    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv(h, static_cast<std::uint64_t>(wn));
    h = fnv(h, static_cast<std::uint64_t>(rn));
    h = fnv(h, net.tgt.rdmaTransfers());
    h = fnv(h, net.target.dev.totalOps());
    h = fnv(h, net.target.now());
    h = fnv(h, net.target.eq.executed());
    for (unsigned i = 0; i < 2; i++) {
        h = fnv(h, net.client(i).now());
        h = fnv(h, net.client(i).eq.executed());
    }
    return h;
}

/**
 * Evict slot 1 under a queued-over-depth backlog: depth 2 with eight
 * writes queued means most of the stream is still in the admission
 * queue when the device dies. Every callback must fire — drained
 * successes first, then distinct ENODEV failures — and nothing may
 * leak at either end. Returns a digest of the outcome sequence.
 */
std::uint64_t
runBacklogEvictionRace(unsigned shards)
{
    fab::FabricProfile prof;
    prof.queueDepth = 2;
    prof.enforceDepth = true;
    FleetNet net(2, 1, prof, shards);
    EXPECT_EQ(net.connectTo(0, 1), fab::ConnectStatus::Ok);
    net.settle();

    std::vector<std::uint8_t> buf(4096, 0x5a);
    std::vector<long long> results;
    for (unsigned i = 0; i < 8; i++)
        net.ini().write(0, static_cast<DevAddr>(i) * 4096, buf,
                        [&results](long long n, kern::IoTrace) {
                            results.push_back(n);
                        });
    EXPECT_EQ(net.ini().depthQueued(), 6u);
    net.target.eq.schedule(net.target.now() + 12 * kUs,
                           [&net] { net.target.evictDevice(1); });
    net.exec.run();

    EXPECT_EQ(results.size(), 8u); // nothing hangs
    unsigned okCount = 0, enodev = 0;
    for (long long n : results) {
        if (n == 4096)
            okCount++;
        else if (n == kern::errOf(fs::FsStatus::NoDev))
            enodev++;
    }
    EXPECT_EQ(okCount + enodev, 8u); // every failure is distinct ENODEV
    EXPECT_GT(enodev, 0u);
    EXPECT_EQ(net.ini().depthQueued(), 0u);
    EXPECT_EQ(net.ini().inflight(), 0u);
    EXPECT_EQ(net.tgt.pendingIos(), 0u);

    std::uint64_t h = 0xcbf29ce484222325ull;
    for (long long n : results)
        h = fnv(h, static_cast<std::uint64_t>(n));
    h = fnv(h, net.target.devices.slot(1).dev.totalOps());
    h = fnv(h, net.target.now());
    h = fnv(h, net.target.eq.executed());
    h = fnv(h, net.client().now());
    h = fnv(h, net.client().eq.executed());
    return h;
}

} // namespace

TEST(FabricEviction, RdmaPullRaceDigestInvariantAcrossShards)
{
    EXPECT_EQ(runRdmaPullEvictionRace(1), runRdmaPullEvictionRace(4));
}

TEST(FabricEviction, BacklogRaceDigestInvariantAcrossShards)
{
    EXPECT_EQ(runBacklogEvictionRace(1), runBacklogEvictionRace(4));
}
