/**
 * @file
 * Unit tests for the discrete-event engine: ordering, cancellation,
 * time monotonicity, runUntil semantics, FIFO among equal timestamps.
 */

#include <gtest/gtest.h>

#include "sim/coro.hpp"
#include "sim/event_queue.hpp"

using namespace bpd;
using namespace bpd::sim;

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, FifoAmongEqualTimes)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; i++)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, AfterIsRelative)
{
    EventQueue eq;
    Time seen = 0;
    eq.schedule(100, [&]() {
        eq.after(50, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&]() { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownIdFails)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(kNoEvent));
    EXPECT_FALSE(eq.cancel(9999));
}

TEST(EventQueue, DoubleCancelFails)
{
    EventQueue eq;
    EventId id = eq.schedule(10, []() {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
    eq.run();
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int count = 0;
    for (Time t = 10; t <= 100; t += 10)
        eq.schedule(t, [&]() { count++; });
    const std::size_t ran = eq.runUntil(50);
    EXPECT_EQ(ran, 5u);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(1234);
    EXPECT_EQ(eq.now(), 1234u);
}

TEST(EventQueue, EventsCanScheduleAtSameTime)
{
    EventQueue eq;
    int hits = 0;
    eq.schedule(10, [&]() {
        eq.schedule(10, [&]() { hits++; });
    });
    eq.run();
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 7; i++)
        eq.after(static_cast<Time>(i), []() {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, PendingExcludesCancelled)
{
    EventQueue eq;
    EventId a = eq.schedule(5, []() {});
    eq.schedule(6, []() {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
}

TEST(EventQueue, CancelHeadTwiceThenDrain)
{
    // Regression: double-cancelling the head and draining must never
    // underflow the pending() count.
    EventQueue eq;
    EventId a = eq.schedule(10, []() {});
    int ran = 0;
    eq.schedule(10, [&ran]() { ran++; });
    EXPECT_TRUE(eq.cancel(a));
    EXPECT_FALSE(eq.cancel(a));
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.runOne()); // skips the cancelled head, runs the other
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, CancelExecutedIdFails)
{
    // Regression: cancelling an id that already ran must fail and must
    // not corrupt the pending() count (the old tombstone-set accounting
    // underflowed here).
    EventQueue eq;
    EventId a = eq.schedule(5, []() {});
    eq.run();
    EXPECT_FALSE(eq.cancel(a));
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RecycledSlotDoesNotAliasStaleId)
{
    EventQueue eq;
    EventId a = eq.schedule(5, []() {});
    EXPECT_TRUE(eq.cancel(a));
    eq.runUntil(5); // reclaims the cancelled slot
    bool ran = false;
    EventId b = eq.schedule(6, [&ran]() { ran = true; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(eq.cancel(a)); // stale id must not hit the new event
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, OversizedCallbackFallsBackToHeap)
{
    EventQueue eq;
    struct Big
    {
        char payload[200] = {};
    } big;
    big.payload[0] = 42;
    char seen = 0;
    eq.schedule(1, [big, &seen]() { seen = big.payload[0]; });
    eq.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, ManyCancelledZombiesDrainCleanly)
{
    EventQueue eq;
    int ran = 0;
    std::vector<EventId> ids;
    for (int i = 0; i < 1000; i++)
        ids.push_back(eq.schedule(10, [&ran]() { ran++; }));
    for (int i = 0; i < 1000; i += 2)
        EXPECT_TRUE(eq.cancel(ids[i]));
    EXPECT_EQ(eq.pending(), 500u);
    eq.run();
    EXPECT_EQ(ran, 500);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 500u);
}

// --- Coroutine layer ---
//
// NOTE: coroutine bodies are free functions taking parameters (copied
// into the frame), never capturing lambdas — a capturing lambda's
// captures die with the lambda object while the frame lives on.

namespace {

Task
delayTask(EventQueue &eq, Time *done)
{
    co_await delay(eq, 100);
    co_await delay(eq, 50);
    *done = eq.now();
}

Task
awaitIntFuture(Future<int> fut, int *got)
{
    *got = co_await fut;
}

Task
awaitLongFuture(Future<long long> fut, long long *got)
{
    *got = co_await fut;
}

Co<int>
doubleAfterDelay(EventQueue &eq, int x)
{
    co_await delay(eq, 10);
    co_return x * 2;
}

Task
nestedTask(EventQueue &eq, int *got)
{
    *got = co_await doubleAfterDelay(eq, 21);
}

} // namespace

TEST(Coro, DelayAdvancesTime)
{
    EventQueue eq;
    Time done = 0;
    delayTask(eq, &done);
    eq.run();
    EXPECT_EQ(done, 150u);
}

TEST(Coro, FutureBridgesCallbacks)
{
    EventQueue eq;
    Future<int> fut;
    int got = 0;
    awaitIntFuture(fut, &got);
    eq.schedule(10, [fut]() { fut.resolve(42); });
    eq.run();
    EXPECT_EQ(got, 42);
}

TEST(Coro, FutureResolvedBeforeAwait)
{
    EventQueue eq;
    Future<int> fut;
    fut.resolve(7);
    int got = 0;
    awaitIntFuture(fut, &got);
    eq.run();
    EXPECT_EQ(got, 7);
}

TEST(Coro, NestedCoReturnsValue)
{
    EventQueue eq;
    int got = 0;
    nestedTask(eq, &got);
    eq.run();
    EXPECT_EQ(got, 42);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(Coro, ResolverAdapter)
{
    EventQueue eq;
    Future<long long> fut;
    auto cb = fut.resolver();
    long long got = 0;
    awaitLongFuture(fut, &got);
    eq.schedule(5, [cb]() { cb(99); });
    eq.run();
    EXPECT_EQ(got, 99);
}

/**
 * Window execution, the building block of the sharded executor: run
 * strictly below a bound, leave the rest pending, and do not advance
 * the clock past the last executed event (the next window, or a
 * cross-shard delivery, decides what time it is).
 */
TEST(EventQueue, RunWindowStopsBelowBound)
{
    EventQueue eq;
    std::vector<int> got;
    for (int i : {10, 20, 30})
        eq.schedule(i, [&got, i]() { got.push_back(i); });

    EXPECT_EQ(eq.runWindow(20), 1u); // 20 itself is excluded
    EXPECT_EQ(got, (std::vector<int>{10}));
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.pending(), 2u);

    EXPECT_EQ(eq.runWindow(31), 2u);
    EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.runWindow(kNever), 0u); // idle drain is a no-op
}

TEST(EventQueue, NextEventTimeSkipsCancelledHead)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTime(), kNever);
    const EventId a = eq.schedule(5, []() {});
    eq.schedule(9, []() {});
    EXPECT_EQ(eq.nextEventTime(), 5u);
    EXPECT_TRUE(eq.cancel(a));
    EXPECT_EQ(eq.nextEventTime(), 9u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueueDeath, ScheduleIntoPastPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_DEATH(eq.schedule(5, []() {}), "scheduling into the past");
}
