/**
 * @file
 * IOMMU tests: VBA translation through real page-table walks, FTE
 * interpretation, permission and DevID enforcement, coalescing, the
 * Fig. 5 latency model, translation caches, and DMA mappings.
 */

#include <gtest/gtest.h>

#include "iommu/iommu.hpp"
#include "mem/address_space.hpp"
#include "sim/event_queue.hpp"

using namespace bpd;
using namespace bpd::iommu;

namespace {

struct IommuFixture : ::testing::Test
{
    sim::EventQueue eq;
    mem::FrameAllocator fa;
    Iommu iommu{eq};
    mem::PageTable pt{fa};
    static constexpr Pasid kP = 7;
    static constexpr DevId kDev = 1;

    void
    SetUp() override
    {
        iommu.bindPasid(kP, &pt);
    }

    /** Map n contiguous file blocks at va, to device blocks base.. */
    void
    mapBlocks(Vaddr va, BlockNo base, unsigned n, bool writable = true)
    {
        for (unsigned i = 0; i < n; i++) {
            pt.set(va + i * kBlockBytes,
                   mem::makeFte(base + i, kDev, writable));
        }
    }
};

} // namespace

TEST_F(IommuFixture, TranslateSingleBlock)
{
    mapBlocks(0x40000000, 500, 1);
    TransResult r = iommu.translateVbaSync(kP, 0x40000000, 4096, false,
                                           kDev);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.segs.size(), 1u);
    EXPECT_EQ(r.segs[0].addr, 500u * kBlockBytes);
    EXPECT_EQ(r.segs[0].len, 4096u);
}

TEST_F(IommuFixture, SubBlockOffset)
{
    mapBlocks(0x40000000, 500, 1);
    TransResult r = iommu.translateVbaSync(kP, 0x40000000 + 512, 1024,
                                           false, kDev);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.segs.size(), 1u);
    EXPECT_EQ(r.segs[0].addr, 500u * kBlockBytes + 512);
    EXPECT_EQ(r.segs[0].len, 1024u);
}

TEST_F(IommuFixture, CoalescesContiguousBlocks)
{
    mapBlocks(0x40000000, 500, 8);
    TransResult r = iommu.translateVbaSync(kP, 0x40000000, 8 * 4096,
                                           false, kDev);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.segs.size(), 1u);
    EXPECT_EQ(r.segs[0].len, 8u * 4096);
    EXPECT_EQ(r.pages, 8u);
}

TEST_F(IommuFixture, SplitsDiscontiguousBlocks)
{
    pt.set(0x40000000, mem::makeFte(500, kDev, true));
    pt.set(0x40001000, mem::makeFte(900, kDev, true)); // not adjacent
    TransResult r = iommu.translateVbaSync(kP, 0x40000000, 2 * 4096,
                                           false, kDev);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.segs.size(), 2u);
    EXPECT_EQ(r.segs[0].addr, 500u * kBlockBytes);
    EXPECT_EQ(r.segs[1].addr, 900u * kBlockBytes);
}

TEST_F(IommuFixture, FaultsOnUnmapped)
{
    TransResult r = iommu.translateVbaSync(kP, 0x50000000, 4096, false,
                                           kDev);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, Fault::NotPresent);
    EXPECT_TRUE(r.segs.empty());
}

TEST_F(IommuFixture, FaultsOnUnboundPasid)
{
    TransResult r = iommu.translateVbaSync(99, 0x40000000, 4096, false,
                                           kDev);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, Fault::NoPasid);
}

TEST_F(IommuFixture, EnforcesWritePermission)
{
    mapBlocks(0x40000000, 500, 1, /*writable=*/false);
    TransResult rd = iommu.translateVbaSync(kP, 0x40000000, 4096, false,
                                            kDev);
    EXPECT_TRUE(rd.ok);
    TransResult wr = iommu.translateVbaSync(kP, 0x40000000, 4096, true,
                                            kDev);
    EXPECT_FALSE(wr.ok);
    EXPECT_EQ(wr.fault, Fault::Permission);
}

TEST_F(IommuFixture, EnforcesDevId)
{
    mapBlocks(0x40000000, 500, 1);
    TransResult r = iommu.translateVbaSync(kP, 0x40000000, 4096, false,
                                           /*requester=*/2);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, Fault::DevIdMismatch);
}

TEST_F(IommuFixture, RejectsRegularPteAsVba)
{
    // A regular memory PTE (no FT bit) must not translate as a block
    // address — that would let a process address the device by PFN.
    pt.set(0x40000000, mem::makeLeafEntry(1234, true));
    TransResult r = iommu.translateVbaSync(kP, 0x40000000, 4096, false,
                                           kDev);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, Fault::NotFte);
}

TEST_F(IommuFixture, PartialRangeFaultReturnsNoSegs)
{
    mapBlocks(0x40000000, 500, 2);
    // Third block unmapped: whole request must fault with no data.
    TransResult r = iommu.translateVbaSync(kP, 0x40000000, 3 * 4096,
                                           false, kDev);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.segs.empty());
}

TEST_F(IommuFixture, DefaultLatencyNear550)
{
    mapBlocks(0x40000000, 500, 64);
    // Warm the walk cache first (the paper's 550 ns assumes cached upper
    // levels; FTE leaves are never cached).
    iommu.translateVbaSync(kP, 0x40000000, 4096, false, kDev);
    TransResult r = iommu.translateVbaSync(kP, 0x40000000, 4096, false,
                                           kDev);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(static_cast<double>(r.latency), 550.0, 60.0);
}

TEST_F(IommuFixture, LatencyGrowsSlowlyWithTranslations)
{
    // Fig. 5: overhead roughly flat with #translations per request —
    // one cacheline holds 8 FTEs.
    mapBlocks(0x40000000, 500, 64);
    iommu.translateVbaSync(kP, 0x40000000, 4096, false, kDev); // warm
    const Time lat1
        = iommu.translateVbaSync(kP, 0x40000000, 4096, false, kDev)
              .latency;
    const Time lat8
        = iommu.translateVbaSync(kP, 0x40000000, 8 * 4096, false, kDev)
              .latency;
    const Time lat12
        = iommu.translateVbaSync(kP, 0x40000000, 12 * 4096, false, kDev)
              .latency;
    EXPECT_EQ(lat1, lat8); // same cacheline
    EXPECT_GT(lat12, lat8);
    EXPECT_LT(lat12 - lat8, 50u); // slight increase only
}

TEST_F(IommuFixture, FixedLatencyOverride)
{
    mapBlocks(0x40000000, 500, 1);
    iommu.profile().fixedVbaLatencyNs = 1350;
    TransResult r = iommu.translateVbaSync(kP, 0x40000000, 4096, false,
                                           kDev);
    EXPECT_EQ(r.latency, 1350u);
}

TEST_F(IommuFixture, AsyncTranslationTakesLatency)
{
    mapBlocks(0x40000000, 500, 1);
    bool done = false;
    Time doneAt = 0;
    iommu.translateVba(kP, 0x40000000, 4096, false, kDev,
                       [&](TransResult r) {
                           done = r.ok;
                           doneAt = eq.now();
                       });
    EXPECT_FALSE(done);
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_GT(doneAt, 0u);
}

TEST_F(IommuFixture, InvalidationForcesWalkCacheMiss)
{
    mapBlocks(0x40000000, 500, 1);
    iommu.translateVbaSync(kP, 0x40000000, 4096, false, kDev);
    const Time warm
        = iommu.translateVbaSync(kP, 0x40000000, 4096, false, kDev)
              .latency;
    iommu.invalidateRange(kP, 0x40000000, 4096);
    const Time cold
        = iommu.translateVbaSync(kP, 0x40000000, 4096, false, kDev)
              .latency;
    EXPECT_GT(cold, warm);
}

TEST_F(IommuFixture, DetachedFteFaultsAfterInvalidation)
{
    mapBlocks(0x40000000, 500, 1);
    ASSERT_TRUE(iommu.translateVbaSync(kP, 0x40000000, 4096, false, kDev)
                    .ok);
    pt.clear(0x40000000);
    iommu.invalidateRange(kP, 0x40000000, 4096);
    TransResult r = iommu.translateVbaSync(kP, 0x40000000, 4096, false,
                                           kDev);
    EXPECT_FALSE(r.ok);
}

TEST_F(IommuFixture, DmaResolveInsideRegistration)
{
    std::vector<std::uint8_t> buf(8192, 0xab);
    iommu.mapDma(kP, 0x9000000, std::span(buf), true);
    auto s = iommu.resolveDma(kP, 0x9000000 + 100, 500, true);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->size(), 500u);
    EXPECT_EQ(s->data(), buf.data() + 100);
}

TEST_F(IommuFixture, DmaRejectsOutOfBounds)
{
    std::vector<std::uint8_t> buf(4096);
    iommu.mapDma(kP, 0x9000000, std::span(buf), true);
    EXPECT_FALSE(iommu.resolveDma(kP, 0x9000000 + 4000, 200, true)
                     .has_value());
    EXPECT_FALSE(iommu.resolveDma(kP, 0x8000000, 10, true).has_value());
}

TEST_F(IommuFixture, DmaRejectsWriteToReadOnly)
{
    std::vector<std::uint8_t> buf(4096);
    iommu.mapDma(kP, 0x9000000, std::span(buf), /*writable=*/false);
    EXPECT_TRUE(iommu.resolveDma(kP, 0x9000000, 100, false).has_value());
    EXPECT_FALSE(iommu.resolveDma(kP, 0x9000000, 100, true).has_value());
}

TEST_F(IommuFixture, DmaIsolatedByPasid)
{
    std::vector<std::uint8_t> buf(4096);
    iommu.mapDma(kP, 0x9000000, std::span(buf), true);
    EXPECT_FALSE(iommu.resolveDma(kP + 1, 0x9000000, 100, true)
                     .has_value());
}

TEST_F(IommuFixture, DmaUnmapRevokes)
{
    std::vector<std::uint8_t> buf(4096);
    iommu.mapDma(kP, 0x9000000, std::span(buf), true);
    iommu.unmapDma(kP, 0x9000000);
    EXPECT_FALSE(iommu.resolveDma(kP, 0x9000000, 100, true).has_value());
}

TEST_F(IommuFixture, DmaTranslateLatencyHitVsMiss)
{
    std::vector<std::uint8_t> buf(4096);
    iommu.mapDma(kP, 0x9000000, std::span(buf), true);
    const Time miss = iommu.dmaTranslateLatency(kP, 0x9000000);
    const Time hit = iommu.dmaTranslateLatency(kP, 0x9000000);
    EXPECT_GT(miss, hit); // IOTLB hit is cheaper (Table 4)
}

TEST(TranslationCache, LruEviction)
{
    TranslationCache tc(4, 4); // one set, 4 ways
    std::uint64_t v;
    for (std::uint64_t k = 0; k < 4; k++)
        tc.insert(k, k * 10);
    EXPECT_TRUE(tc.lookup(0, v)); // refresh key 0
    tc.insert(99, 990);           // evicts LRU (key 1)
    EXPECT_TRUE(tc.lookup(0, v));
    EXPECT_TRUE(tc.lookup(99, v));
    EXPECT_EQ(v, 990u);
}

TEST(TranslationCache, HitMissCounters)
{
    TranslationCache tc(16, 4);
    std::uint64_t v;
    EXPECT_FALSE(tc.lookup(5, v));
    tc.insert(5, 50);
    EXPECT_TRUE(tc.lookup(5, v));
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(tc.misses(), 1u);
}

TEST(TranslationCache, InvalidateIf)
{
    TranslationCache tc(16, 4);
    for (std::uint64_t k = 0; k < 8; k++)
        tc.insert(k, k);
    tc.invalidateIf([](std::uint64_t k) { return k % 2 == 0; });
    std::uint64_t v;
    EXPECT_FALSE(tc.lookup(0, v));
    EXPECT_TRUE(tc.lookup(1, v));
}
