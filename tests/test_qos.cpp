/**
 * @file
 * Per-tenant QoS tests: exact virtual-time token-bucket refill
 * (inspection-frequency invariance, burst clamp with remainder spill,
 * oversize borrow), park/drain FIFO order and pacing, weighted-fair SQ
 * arbitration under backlog, digest neutrality of an enabled-but-empty
 * registry, and the dispatcher cid regression (a refused submit must
 * not burn a command id).
 */

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "iommu/iommu.hpp"
#include "obs/replay.hpp"
#include "qos/qos.hpp"
#include "sim/event_queue.hpp"
#include "ssd/block_store.hpp"
#include "ssd/dispatcher.hpp"
#include "ssd/nvme.hpp"
#include "system/system.hpp"
#include "workloads/fio.hpp"

using namespace bpd;

TEST(QosBucket, RefillIsExactAndInspectionInvariant)
{
    // 7 ops/s with a 5-deep bucket: after draining the bucket at t=0,
    // the next token lands at exactly ceil(1e9 / 7) = 142857143 ns.
    // One registry is probed at many irregular intermediate times, the
    // other only at the boundary — the fractional-remainder carry must
    // make both admit at the same instant (refill is a function of
    // elapsed virtual time, not of how often the bucket is inspected).
    sim::EventQueue eq;
    qos::Registry often(eq);
    qos::Registry once(eq);
    qos::TenantLimit lim;
    lim.iopsLimit = 7;
    lim.burstOps = 5;
    often.setLimit(1, lim);
    once.setLimit(1, lim);
    for (int i = 0; i < 5; i++) {
        EXPECT_TRUE(often.tryAcquire(1, 1, 0));
        EXPECT_TRUE(once.tryAcquire(1, 1, 0));
    }
    EXPECT_FALSE(often.tryAcquire(1, 1, 0));

    constexpr Time kReady = 142857143; // ceil(1e9 / 7)
    for (Time t : {Time{1}, Time{999}, Time{123456}, Time{99999999},
                   kReady - 1})
        eq.schedule(t, [&, t] {
            EXPECT_FALSE(often.tryAcquire(1, 1, 0)) << "at " << t;
        });
    eq.schedule(kReady - 1, [&] {
        EXPECT_FALSE(once.tryAcquire(1, 1, 0));
    });
    eq.schedule(kReady, [&] {
        EXPECT_TRUE(often.tryAcquire(1, 1, 0));
        EXPECT_TRUE(once.tryAcquire(1, 1, 0));
        // Exactly one token accrued; a second acquire must wait.
        EXPECT_FALSE(often.tryAcquire(1, 1, 0));
        EXPECT_FALSE(once.tryAcquire(1, 1, 0));
    });
    eq.run();
}

TEST(QosBucket, IdleBucketClampsFullAndSpillsRemainder)
{
    // 1000 ops/s, burst 4. A second of idling may bank exactly the
    // burst — not the 1000 tokens of raw credit, and not a fractional
    // head start either: the remainder is spilled when the bucket
    // clamps full, so the next token after draining one is a full
    // 1 ms out.
    sim::EventQueue eq;
    qos::Registry reg(eq);
    qos::TenantLimit lim;
    lim.iopsLimit = 1000;
    lim.burstOps = 4;
    reg.setLimit(1, lim);

    constexpr Time kSec = 1'000'000'000;
    eq.schedule(kSec, [&] {
        for (int i = 0; i < 4; i++)
            EXPECT_TRUE(reg.tryAcquire(1, 1, 0));
        EXPECT_FALSE(reg.tryAcquire(1, 1, 0)); // burst, not rate * dt
    });
    eq.schedule(kSec + 999'999, [&] {
        EXPECT_FALSE(reg.tryAcquire(1, 1, 0)); // no phantom remainder
    });
    eq.schedule(kSec + 1'000'000, [&] {
        EXPECT_TRUE(reg.tryAcquire(1, 1, 0));
    });
    eq.run();
}

TEST(QosBucket, OversizeRequestBorrowsInsteadOfStalling)
{
    // A request larger than the bucket depth is admitted once the
    // bucket is full and borrows (tokens go negative) — it throttles
    // the tenant afterwards instead of deadlocking forever.
    sim::EventQueue eq;
    qos::Registry reg(eq);
    qos::TenantLimit lim;
    lim.bytesPerSec = 4'096'000; // 4096 bytes per ms
    lim.burstBytes = 4096;
    reg.setLimit(1, lim);

    EXPECT_TRUE(reg.tryAcquire(1, 1, 16384)); // 4x the bucket: borrow
    // The debt is 16384 - 4096 = 12288 borrowed + 4096 for the next
    // op: ready in exactly 4 ms.
    eq.schedule(3'999'999, [&] { EXPECT_FALSE(reg.tryAcquire(1, 1, 4096)); });
    eq.schedule(4'000'000, [&] { EXPECT_TRUE(reg.tryAcquire(1, 1, 4096)); });
    eq.run();
}

TEST(QosPark, DrainPreservesFifoOrderAndPaces)
{
    // 1000 ops/s, burst 1: one op per ms. Three parked submissions
    // must resume in order at exactly 1, 2, 3 ms; a fourth submitted
    // mid-backlog must queue behind them (tryAcquire refuses while a
    // backlog exists, even if a token is momentarily available) and
    // drain at 4 ms.
    sim::EventQueue eq;
    qos::Registry reg(eq);
    qos::TenantLimit lim;
    lim.iopsLimit = 1000;
    lim.burstOps = 1;
    reg.setLimit(1, lim);

    std::vector<std::pair<int, Time>> order;
    EXPECT_TRUE(reg.tryAcquire(1, 1, 0)); // drains the full bucket
    for (int i = 0; i < 3; i++) {
        EXPECT_FALSE(reg.tryAcquire(1, 1, 0));
        reg.park(1, 1, 0, [&, i] { order.push_back({i, eq.now()}); });
    }
    eq.schedule(2'500'000, [&] {
        EXPECT_FALSE(reg.tryAcquire(1, 1, 0)) << "overtook the backlog";
        reg.park(1, 1, 0, [&] { order.push_back({3, eq.now()}); });
    });
    eq.run();

    ASSERT_EQ(order.size(), 4u);
    for (int i = 0; i < 4; i++) {
        EXPECT_EQ(order[i].first, i);
        EXPECT_EQ(order[i].second, static_cast<Time>((i + 1) * 1'000'000));
    }
    EXPECT_EQ(reg.throttles(), 4u);
    EXPECT_EQ(reg.parkedOf(1), 0u);
    EXPECT_EQ(reg.admits(), 5u); // 1 direct + 4 drained
}

TEST(QosWeights, DefaultsAndClamps)
{
    sim::EventQueue eq;
    qos::Registry reg(eq);
    EXPECT_EQ(reg.weightOf(42), 1u); // unregistered
    qos::TenantLimit lim;
    lim.weight = 0;
    reg.setLimit(1, lim);
    EXPECT_EQ(reg.weightOf(1), 1u); // weight 0 clamps to 1
    lim.weight = 4;
    reg.setLimit(2, lim);
    EXPECT_EQ(reg.weightOf(2), 4u);
    // A weight-only entry never rate-limits.
    for (int i = 0; i < 1000; i++)
        EXPECT_TRUE(reg.tryAcquire(2, 1, 4096));
    EXPECT_EQ(reg.throttles(), 0u);
}

namespace {

struct QosDevFixture : ::testing::Test
{
    sim::EventQueue eq;
    iommu::Iommu iommu{eq};
    ssd::BlockStore store{1ull << 30};
    ssd::SsdProfile prof = ssd::SsdProfile::optaneP5800X();
    std::unique_ptr<ssd::NvmeDevice> dev;

    void
    SetUp() override
    {
        prof.jitterSigma = 0.0;
        dev = std::make_unique<ssd::NvmeDevice>(eq, store, iommu, 1,
                                                prof);
    }
};

} // namespace

TEST_F(QosDevFixture, WeightedArbitrationSkewsServiceUnderBacklog)
{
    // Two equally loaded queues, weight 4 vs 1: while both stay
    // backlogged the heavy queue must complete ~4x the ops of the
    // light one, and the backlog must still drain completely for both
    // (weighted-fair is work-conserving, never starving).
    qos::Registry reg(eq);
    qos::TenantLimit lim;
    lim.weight = 4;
    reg.setLimit(7, lim);
    dev->setQos(&reg);

    ssd::QueuePair *heavy = dev->createQueuePair(7, 256, false);
    ssd::QueuePair *light = dev->createQueuePair(8, 256, false);
    ASSERT_NE(heavy, nullptr);
    ASSERT_NE(light, nullptr);
    std::vector<std::uint8_t> buf(4096);
    int doneHeavy = 0, doneLight = 0;
    int midLight = -1; // light's progress at heavy's 100th completion
    heavy->setCompletionHook([&](const ssd::Completion &) {
        doneHeavy++;
        if (doneHeavy == 100)
            midLight = doneLight;
    });
    light->setCompletionHook([&](const ssd::Completion &) { doneLight++; });
    for (int i = 0; i < 200; i++) {
        ssd::Command cmd;
        cmd.op = ssd::Op::Read;
        cmd.addr = static_cast<DevAddr>(i) * 4096;
        cmd.len = 4096;
        cmd.hostBuf = buf;
        ASSERT_TRUE(heavy->submit(cmd));
        ASSERT_TRUE(light->submit(cmd));
    }
    eq.run();

    // At heavy's 100th completion both queues were still backlogged
    // (heavy had 100 left), so service so far should split ~4:1.
    ASSERT_GT(midLight, 0);
    const double ratio = 100.0 / static_cast<double>(midLight);
    EXPECT_GE(ratio, 3.0) << "light had " << midLight;
    EXPECT_LE(ratio, 5.0) << "light had " << midLight;
    EXPECT_EQ(doneHeavy, 200);
    EXPECT_EQ(doneLight, 200);
}

TEST_F(QosDevFixture, RefusedSubmitDoesNotBurnCid)
{
    // SQ of depth 4: the fifth submit is refused. The refusal must not
    // consume a command id — when the queue drains and the submit is
    // retried, it completes with the next dense cid, keeping the cid
    // stream identical to a run that never hit SQ-full.
    ssd::QueuePair *qp = dev->createQueuePair(kNoPasid, 4, false);
    ASSERT_NE(qp, nullptr);
    ssd::CommandDispatcher disp(*qp);
    std::vector<std::uint8_t> buf(4096);
    ssd::Command cmd;
    cmd.op = ssd::Op::Read;
    cmd.addr = 0;
    cmd.len = 4096;
    cmd.hostBuf = buf;

    std::vector<std::uint64_t> cids;
    auto record = [&](const ssd::Completion &c) { cids.push_back(c.cid); };
    for (int i = 0; i < 4; i++)
        ASSERT_TRUE(disp.submit(cmd, record));
    EXPECT_FALSE(disp.submit(cmd, record));
    EXPECT_FALSE(disp.submit(cmd, record));
    EXPECT_EQ(disp.outstanding(), 4u); // refused callbacks not retained
    eq.run();
    ASSERT_TRUE(disp.submit(cmd, record));
    eq.run();

    ASSERT_EQ(cids.size(), 5u);
    for (std::uint64_t i = 0; i < 5; i++)
        EXPECT_EQ(cids[i], i + 1) << "refused submit burned a cid";
}

TEST(QosNeutrality, EnabledEmptyRegistryKeepsDigests)
{
    // Enabling QoS without limits must not change the replay stream or
    // the executed-event count of any engine: every gate is one branch
    // on an admit-everything registry. Bypassd covers the UserLib +
    // kernel gates, Spdk the baseline driver gate.
    for (wl::Engine e : {wl::Engine::Bypassd, wl::Engine::Spdk}) {
        auto run = [&](bool qos) {
            sim::setVerbose(false);
            sys::SystemConfig cfg;
            cfg.deviceBytes = 1ull << 30;
            cfg.seed = 23;
            auto s = std::make_unique<sys::System>(cfg);
            s->enableTracing(obs::Level::Requests);
            if (qos)
                s->enableQos();
            wl::FioJob job;
            job.engine = e;
            job.rw = wl::RwMode::RandRead;
            job.bs = 4096;
            job.numJobs = 2;
            job.perProcess = true;
            job.runtime = 500 * kUs;
            job.warmup = 50 * kUs;
            job.fileBytes = 2ull << 20;
            job.seed = 11;
            job.filePrefix = "/qos";
            wl::FioRunner runner(*s);
            runner.run(job);
            return std::pair<std::uint64_t, std::uint64_t>{
                obs::replayDigest(s->tracer()->data().replay),
                s->eq.executed()};
        };
        const auto off = run(false);
        const auto on = run(true);
        EXPECT_EQ(off.first, on.first)
            << wl::toString(e) << ": empty registry changed the stream";
        EXPECT_EQ(off.second, on.second)
            << wl::toString(e) << ": empty registry scheduled events";
    }
}

TEST(QosThrottle, KernelPathThrottlesAndDrainsWithoutLoss)
{
    // A tightly capped tenant on the kernel syscall path: every read
    // still completes (throttled I/O is delayed, never dropped), the
    // throttle counters advance, and the per-tenant accounting rows
    // sum to the registry totals (verifyTenantSums covers the qos
    // rows).
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 1ull << 30;
    cfg.seed = 9;
    sys::System s(cfg);
    s.enableTenantAccounting();
    qos::Registry &reg = s.enableQos();

    kern::Process &p = s.newProcess(6000, 6000);
    int fd = -1;
    s.kernel.sysOpen(p, "/capped.dat",
                     fs::kOpenCreate | fs::kOpenRead | fs::kOpenWrite
                         | fs::kOpenDirect,
                     0644, [&](int f) { fd = f; });
    s.run();
    ASSERT_GE(fd, 0);
    std::vector<std::uint8_t> buf(4096);
    long long wrote = -1;
    s.kernel.sysPwrite(p, fd, buf, 0,
                       [&](long long n, kern::IoTrace) { wrote = n; });
    s.run();
    ASSERT_EQ(wrote, 4096);

    // Cap AFTER the setup I/O: 1000 IOPS, burst 1 — back-to-back reads
    // must park.
    qos::TenantLimit lim;
    lim.iopsLimit = 1000;
    lim.burstOps = 1;
    reg.setLimit(p.pasid(), lim);

    int done = 0;
    const Time start = s.now();
    for (int i = 0; i < 5; i++)
        s.kernel.sysPread(p, fd, buf, 0, [&](long long n, kern::IoTrace) {
            EXPECT_EQ(n, 4096);
            done++;
        });
    s.run();

    EXPECT_EQ(done, 5);
    EXPECT_GT(reg.throttlesOf(p.pasid()), 0u);
    EXPECT_EQ(reg.parkedOf(p.pasid()), 0u);
    // Pacing: 5 reads at 1 per ms need at least 4 ms of virtual time.
    EXPECT_GE(s.now() - start, 4 * kMs);
    EXPECT_EQ(s.verifyTenantSums(), "");
    const obs::TenantCounters *row = s.tenantAccounting().find(p.pasid());
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->qosThrottles, reg.throttles());
    EXPECT_EQ(row->qosThrottledBytes, reg.throttledBytes());
}
