/**
 * @file
 * Per-tenant attribution (obs/tenant.hpp + the attribution sites in
 * kern/ssd/iommu/fs/bypassd): the sum invariant — for every exported
 * counter, sum over tenants == system total, bit-exactly — on all five
 * engines; survival of the revocation fallback (work keeps landing on
 * the same tenant after the reader is pushed to the kernel path);
 * digest neutrality of enabling accounting; and tenant round-tripping
 * through the metrics snapshot and the replay stream.
 */

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/replay.hpp"
#include "sim/logging.hpp"
#include "system/system.hpp"
#include "workloads/fio.hpp"

using namespace bpd;

namespace {

wl::FioJob
smallJob(wl::Engine e, wl::RwMode rw)
{
    wl::FioJob job;
    job.engine = e;
    job.rw = rw;
    job.bs = 4096;
    job.numJobs = 2;
    job.perProcess = true;
    job.runtime = 500 * kUs;
    job.warmup = 50 * kUs;
    job.fileBytes = 2ull << 20;
    job.seed = 11;
    job.filePrefix = "/tenant";
    return job;
}

std::unique_ptr<sys::System>
freshSystem(std::uint64_t seed = 7)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 1ull << 30;
    cfg.seed = seed;
    return std::make_unique<sys::System>(cfg);
}

} // namespace

TEST(TenantSums, AllEnginesSumToSystemTotals)
{
    const wl::Engine engines[] = {wl::Engine::Sync, wl::Engine::Libaio,
                                  wl::Engine::IoUring, wl::Engine::Spdk,
                                  wl::Engine::Bypassd};
    for (wl::Engine e : engines) {
        auto s = freshSystem();
        s->enableTenantAccounting();
        wl::FioRunner runner(*s);
        runner.run(smallJob(e, wl::RwMode::RandRead));

        EXPECT_EQ(s->verifyTenantSums(), "") << wl::toString(e);
        EXPECT_FALSE(s->tenantAccounting().empty()) << wl::toString(e);

        std::uint64_t ssdOps = 0;
        s->tenantAccounting().forEach(
            [&](TenantId, const obs::TenantCounters &tc) {
                ssdOps += tc.ssdOps;
            });
        EXPECT_EQ(ssdOps, s->dev.totalOps()) << wl::toString(e);
    }
}

TEST(TenantSums, WritePathJournalAndCacheAttributed)
{
    auto s = freshSystem();
    s->enableTenantAccounting();
    wl::FioRunner runner(*s);
    runner.run(smallJob(wl::Engine::Sync, wl::RwMode::RandWrite));

    // The job runs O_DIRECT; drive the page cache with a buffered
    // reader of the file the first fio process wrote.
    kern::Process &p = s->newProcess(4000, 4000);
    int fd = -1;
    s->kernel.sysOpen(p, "/tenant0.dat", fs::kOpenRead, 0644,
                      [&](int f) { fd = f; });
    s->run();
    ASSERT_GE(fd, 0);
    std::vector<std::uint8_t> buf(4096);
    for (int i = 0; i < 4; i++) {
        long long got = -1;
        s->kernel.sysPread(p, fd, buf, (i % 2) * 4096,
                           [&](long long n, kern::IoTrace) { got = n; });
        s->run();
        ASSERT_GT(got, 0);
    }

    EXPECT_EQ(s->verifyTenantSums(), "");
    std::uint64_t journal = 0;
    s->tenantAccounting().forEach(
        [&](TenantId, const obs::TenantCounters &tc) {
            journal += tc.fsJournalRecords;
        });
    EXPECT_GT(journal, 0u);

    // The buffered reader's hits and misses land on its own row.
    const obs::TenantCounters *row
        = s->tenantAccounting().find(p.pasid());
    ASSERT_NE(row, nullptr);
    EXPECT_GT(row->fsPageCacheMisses, 0u);
    EXPECT_GT(row->fsPageCacheHits, 0u);
}

TEST(TenantSums, SurvivesRevocationFallback)
{
    auto s = freshSystem();
    s->enableTenantAccounting();

    kern::Process &reader = s->newProcess(1000, 1000);
    const int cfd
        = s->kernel.setupCreateFile(reader, "/rv.dat", 8ull << 20, 3);
    ASSERT_GE(cfd, 0);
    int rc = -1;
    s->kernel.sysClose(reader, cfd, [&](int r) { rc = r; });
    s->run();

    bypassd::UserLib &lib = s->userLib(reader);
    int fd = -1;
    lib.open("/rv.dat", fs::kOpenRead | fs::kOpenDirect, 0644,
             [&](int f) { fd = f; });
    s->run();
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(lib.isDirect(fd));
    lib.prepareThread(0);

    const Time tEnd = s->now() + 20 * kMs;
    std::vector<std::uint8_t> buf(4096);
    sim::Rng rng(5);
    std::uint64_t opsAfterRevoke = 0;
    Time revokeAt = 0;

    std::function<void()> loop = [&]() {
        if (s->now() >= tEnd)
            return;
        const std::uint64_t off
            = rng.nextUint((8ull << 20) / 4096) * 4096;
        lib.pread(0, fd, buf, off, [&](long long n, kern::IoTrace) {
            ASSERT_GT(n, 0);
            if (revokeAt != 0)
                opsAfterRevoke++;
            loop();
        });
    };
    loop();

    kern::Process &intruder = s->newProcess(1001, 1001);
    s->eq.schedule(10 * kMs, [&]() {
        s->kernel.sysOpen(intruder, "/rv.dat", fs::kOpenRead, 0644,
                          [&](int f) {
                              ASSERT_GE(f, 0);
                              revokeAt = s->now();
                          });
    });
    s->run();

    ASSERT_NE(revokeAt, 0u);
    EXPECT_GT(opsAfterRevoke, 0u) << "no reads on the fallback path";
    EXPECT_EQ(s->verifyTenantSums(), "");

    // Revocation is booked to the revoked tenant, and its ops keep
    // accruing on the same row after the fallback to the kernel path.
    const obs::TenantCounters *row
        = s->tenantAccounting().find(reader.pasid());
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->bypassdRevokedVictims, 1u);
    EXPECT_GE(row->ssdOps, opsAfterRevoke);
    EXPECT_GT(row->kernSyscalls, 0u) << "fallback reads are syscalls";
}

TEST(TenantSums, DisabledAccountingReportsNothing)
{
    auto s = freshSystem();
    wl::FioRunner runner(*s);
    runner.run(smallJob(wl::Engine::Sync, wl::RwMode::RandRead));
    EXPECT_EQ(s->verifyTenantSums(), "");
    EXPECT_TRUE(s->tenantAccounting().empty());
}

TEST(TenantNeutrality, AccountingDoesNotChangeDigests)
{
    auto run = [&](bool accounting) {
        auto s = freshSystem(21);
        s->enableTracing(obs::Level::Requests);
        if (accounting)
            s->enableTenantAccounting();
        wl::FioRunner runner(*s);
        runner.run(smallJob(wl::Engine::Bypassd, wl::RwMode::RandRead));
        return std::pair<std::uint64_t, std::uint64_t>{
            obs::replayDigest(s->tracer()->data().replay),
            s->eq.executed()};
    };
    const auto off = run(false);
    const auto on = run(true);
    EXPECT_EQ(off.first, on.first) << "accounting changed the stream";
    EXPECT_EQ(off.second, on.second) << "accounting scheduled events";
}

TEST(TenantMetrics, ScopedSnapshotsSumToTotals)
{
    auto s = freshSystem();
    s->enableTenantAccounting();
    wl::FioRunner runner(*s);
    runner.run(smallJob(wl::Engine::Bypassd, wl::RwMode::RandRead));
    s->collectMetrics();

    const obs::MetricsSnapshot snap = s->metrics.snapshot();
    ASSERT_FALSE(snap.tenants.empty());
    for (const auto &[key, tenantSum] : [&] {
             std::map<std::string, std::uint64_t> sums;
             for (const auto &[id, sub] : snap.tenants)
                 for (const auto &[k, v] : sub.counters)
                     sums[k] += v;
             return sums;
         }()) {
        const auto it = snap.counters.find(key);
        ASSERT_NE(it, snap.counters.end()) << key;
        EXPECT_EQ(tenantSum, it->second) << key;
    }
}

TEST(TenantReplay, StreamCarriesTenantAndRoundTrips)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 1ull << 30;
    cfg.seed = 7;
    sys::System s(cfg);
    s.enableTracing(obs::Level::Requests);
    s.enableTenantAccounting();
    wl::FioRunner runner(s);
    runner.run(smallJob(wl::Engine::IoUring, wl::RwMode::RandRead));

    obs::TraceData data = s.tracer()->data();
    obs::ReplayMeta meta;
    meta.config = obs::configToMap(s.cfg);
    meta.counters = obs::curatedCounters(s);
    meta.digest = obs::replayDigest(data.replay);
    meta.events = s.eq.executed();
    meta.simNs = s.now();

    ASSERT_FALSE(data.replay.empty());
    for (const obs::ReplayRec &r : data.replay)
        EXPECT_EQ(r.tenant, r.proc)
            << "runner ops attribute to the issuing process";

    const std::string path
        = ::testing::TempDir() + "bpd_tenant_replay.json";
    ASSERT_TRUE(obs::writeChromeTraceFile(
        path, {obs::TraceProcess{"tenant", &data, &meta}}));
    obs::RecordedTrace trace;
    std::string err;
    ASSERT_TRUE(obs::loadRecordedTrace(path, trace, err)) << err;
    std::remove(path.c_str());
    ASSERT_EQ(trace.processes.size(), 1u);

    const obs::RecordedProcess &rec = trace.processes[0];
    ASSERT_EQ(rec.ops.size(), data.replay.size());
    for (std::size_t i = 0; i < rec.ops.size(); i++)
        EXPECT_EQ(rec.ops[i].tenant, data.replay[i].tenant);

    obs::ReplayResult res;
    ASSERT_TRUE(obs::replayRun(rec, {}, res, err)) << err;
    EXPECT_EQ(res.digest, rec.digest);
}
