/**
 * @file
 * Shared test utilities: synchronous wrappers that drive the DES to
 * quiescence around callback-style operations, and data helpers.
 */

#ifndef BPD_TESTS_HELPERS_HPP
#define BPD_TESTS_HELPERS_HPP

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "system/system.hpp"

namespace bpd::test {

struct IoResult
{
    long long n = -1;
    kern::IoTrace trace;
};

/** Deterministic pattern buffer. */
inline std::vector<std::uint8_t>
pattern(std::size_t len, std::uint64_t seed)
{
    std::vector<std::uint8_t> buf(len);
    sim::Rng rng(seed);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    return buf;
}

/** UserLib open, driven to completion. */
inline int
ulOpen(sys::System &s, bypassd::UserLib &lib, const std::string &path,
       std::uint32_t flags, std::uint16_t mode = 0644)
{
    int fd = -12345;
    lib.open(path, flags, mode, [&](int f) { fd = f; });
    s.run();
    return fd;
}

inline IoResult
ulPread(sys::System &s, bypassd::UserLib &lib, Tid tid, int fd,
        std::span<std::uint8_t> buf, std::uint64_t off)
{
    IoResult r;
    lib.pread(tid, fd, buf, off, [&](long long n, kern::IoTrace tr) {
        r.n = n;
        r.trace = tr;
    });
    s.run();
    return r;
}

inline IoResult
ulPwrite(sys::System &s, bypassd::UserLib &lib, Tid tid, int fd,
         std::span<const std::uint8_t> buf, std::uint64_t off)
{
    IoResult r;
    lib.pwrite(tid, fd, buf, off, [&](long long n, kern::IoTrace tr) {
        r.n = n;
        r.trace = tr;
    });
    s.run();
    return r;
}

inline int
ulClose(sys::System &s, bypassd::UserLib &lib, int fd)
{
    int rc = -12345;
    lib.close(fd, [&](int r) { rc = r; });
    s.run();
    return rc;
}

inline int
ulFsync(sys::System &s, bypassd::UserLib &lib, Tid tid, int fd)
{
    int rc = -12345;
    lib.fsync(tid, fd, [&](int r) { rc = r; });
    s.run();
    return rc;
}

/** Kernel-interface open, driven to completion. */
inline int
kOpen(sys::System &s, kern::Process &p, const std::string &path,
      std::uint32_t flags, std::uint16_t mode = 0644)
{
    int fd = -12345;
    s.kernel.sysOpen(p, path, flags, mode, [&](int f) { fd = f; });
    s.run();
    return fd;
}

inline IoResult
kPread(sys::System &s, kern::Process &p, int fd,
       std::span<std::uint8_t> buf, std::uint64_t off)
{
    IoResult r;
    s.kernel.sysPread(p, fd, buf, off, [&](long long n, kern::IoTrace tr) {
        r.n = n;
        r.trace = tr;
    });
    s.run();
    return r;
}

inline IoResult
kPwrite(sys::System &s, kern::Process &p, int fd,
        std::span<const std::uint8_t> buf, std::uint64_t off)
{
    IoResult r;
    s.kernel.sysPwrite(p, fd, buf, off,
                       [&](long long n, kern::IoTrace tr) {
                           r.n = n;
                           r.trace = tr;
                       });
    s.run();
    return r;
}

inline int
kClose(sys::System &s, kern::Process &p, int fd)
{
    int rc = -12345;
    s.kernel.sysClose(p, fd, [&](int r) { rc = r; });
    s.run();
    return rc;
}

/** A small default system for unit tests (1 GiB device). */
inline sys::SystemConfig
smallConfig()
{
    sys::SystemConfig cfg;
    cfg.deviceBytes = 1ull << 30;
    return cfg;
}

} // namespace bpd::test

#endif // BPD_TESTS_HELPERS_HPP
