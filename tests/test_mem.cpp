/**
 * @file
 * Tests for the memory substrate: frame allocator, PTE/FTE encodings,
 * 4-level page tables (including PMD-level shared subtree attachment and
 * per-open permission semantics), VA allocator.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/frame_allocator.hpp"
#include "mem/page_table.hpp"
#include "mem/pte.hpp"

using namespace bpd;
using namespace bpd::mem;

TEST(FrameAllocator, AllocZeroed)
{
    FrameAllocator fa;
    Frame f = fa.alloc();
    ASSERT_NE(f, kNullFrame);
    const std::uint64_t *tbl = fa.table(f);
    for (std::size_t i = 0; i < kPte; i++)
        EXPECT_EQ(tbl[i], 0u);
}

TEST(FrameAllocator, ReuseAfterFree)
{
    FrameAllocator fa;
    Frame f1 = fa.alloc();
    fa.free(f1);
    Frame f2 = fa.alloc();
    EXPECT_EQ(f1, f2); // LIFO free list
    EXPECT_EQ(fa.live(), 1u);
}

TEST(FrameAllocator, LiveCount)
{
    FrameAllocator fa;
    std::vector<Frame> frames;
    for (int i = 0; i < 10; i++)
        frames.push_back(fa.alloc());
    EXPECT_EQ(fa.live(), 10u);
    for (Frame f : frames)
        fa.free(f);
    EXPECT_EQ(fa.live(), 0u);
}

TEST(FrameAllocator, DoubleFreePanics)
{
    FrameAllocator fa;
    Frame f = fa.alloc();
    fa.free(f);
    EXPECT_DEATH(fa.free(f), "dead frame");
}

TEST(Pte, FteRoundTrip)
{
    const BlockNo block = 0x123456789ull;
    const DevId dev = 0x2a5;
    const Pte e = makeFte(block, dev, true);
    EXPECT_TRUE(isPresent(e));
    EXPECT_TRUE(isFte(e));
    EXPECT_TRUE(isWritable(e));
    EXPECT_EQ(fteBlock(e), block);
    EXPECT_EQ(fteDevId(e), dev);
}

TEST(Pte, RegularLeafIsNotFte)
{
    const Pte e = makeLeafEntry(0x1000, false);
    EXPECT_TRUE(isPresent(e));
    EXPECT_FALSE(isFte(e));
    EXPECT_FALSE(isWritable(e));
    EXPECT_EQ(pfnOf(e), 0x1000u);
}

TEST(Pte, ReadOnlyFte)
{
    const Pte e = makeFte(7, 1, false);
    EXPECT_FALSE(isWritable(e));
    EXPECT_EQ(fteBlock(e), 7u);
}

TEST(PageTable, SetGetClear)
{
    FrameAllocator fa;
    PageTable pt(fa);
    const Vaddr va = 0x7f12'3456'7000ull;
    pt.set(va, makeFte(42, 1, true));
    const Pte e = pt.get(va);
    EXPECT_TRUE(isFte(e));
    EXPECT_EQ(fteBlock(e), 42u);
    pt.clear(va);
    EXPECT_EQ(pt.get(va), 0u);
}

TEST(PageTable, DistinctPagesIndependent)
{
    FrameAllocator fa;
    PageTable pt(fa);
    for (std::uint64_t i = 0; i < 600; i++)
        pt.set(0x100000000ull + i * kBlockBytes, makeFte(i, 1, true));
    for (std::uint64_t i = 0; i < 600; i++) {
        EXPECT_EQ(fteBlock(pt.get(0x100000000ull + i * kBlockBytes)), i);
    }
}

TEST(PageTable, WalkNotPresent)
{
    FrameAllocator fa;
    PageTable pt(fa);
    const PageTable::Walk w = pt.walk(0xdeadbeef000ull);
    EXPECT_FALSE(w.present);
    EXPECT_FALSE(w.writable);
}

TEST(PageTable, WalkCountsFrames)
{
    FrameAllocator fa;
    PageTable pt(fa);
    pt.set(0x200000000ull, makeFte(1, 1, true));
    const PageTable::Walk w = pt.walk(0x200000000ull);
    EXPECT_TRUE(w.present);
    EXPECT_EQ(w.framesRead, 4u); // 4-level walk
}

TEST(PageTable, AttachSharedSubtree)
{
    FrameAllocator fa;
    PageTable ptA(fa);
    PageTable ptB(fa);

    // A shared leaf table with FTEs, as a FileTableCache would build.
    Frame shared = fa.alloc();
    for (std::uint64_t i = 0; i < kPte; i++)
        fa.table(shared)[i] = makeFte(1000 + i, 1, true);

    const Vaddr vaA = 0x40000000ull;  // 2 MiB aligned
    const Vaddr vaB = 0x80000000ull;
    ptA.attachTable(vaA, 1, shared, true);
    ptB.attachTable(vaB, 1, shared, false);

    // Same FTEs visible through both address spaces.
    const PageTable::Walk wa = ptA.walk(vaA + 5 * kBlockBytes);
    const PageTable::Walk wb = ptB.walk(vaB + 5 * kBlockBytes);
    ASSERT_TRUE(wa.present);
    ASSERT_TRUE(wb.present);
    EXPECT_EQ(fteBlock(wa.leaf), 1005u);
    EXPECT_EQ(fteBlock(wb.leaf), 1005u);

    // Per-open permission: A writable, B read-only (Fig. 4).
    EXPECT_TRUE(wa.writable);
    EXPECT_FALSE(wb.writable);

    // Updating the shared frame is visible to both instantly.
    fa.table(shared)[5] = makeFte(777, 1, true);
    EXPECT_EQ(fteBlock(ptA.walk(vaA + 5 * kBlockBytes).leaf), 777u);
    EXPECT_EQ(fteBlock(ptB.walk(vaB + 5 * kBlockBytes).leaf), 777u);

    // Detach from A; B is untouched.
    EXPECT_TRUE(ptA.detachTable(vaA, 1));
    EXPECT_FALSE(ptA.walk(vaA + 5 * kBlockBytes).present);
    EXPECT_TRUE(ptB.walk(vaB + 5 * kBlockBytes).present);

    fa.free(shared);
}

TEST(PageTable, DetachAbsentReturnsFalse)
{
    FrameAllocator fa;
    PageTable pt(fa);
    EXPECT_FALSE(pt.detachTable(0x40000000ull, 1));
}

TEST(PageTable, AttachCountsWrites)
{
    FrameAllocator fa;
    PageTable pt(fa);
    Frame shared = fa.alloc();
    // First attach builds PGD->PUD->PMD path: 3 entries written.
    const unsigned w1 = pt.attachTable(0x40000000ull, 1, shared, true);
    EXPECT_EQ(w1, 3u);
    Frame shared2 = fa.alloc();
    // Adjacent attach reuses the path: 1 pointer update.
    const unsigned w2
        = pt.attachTable(0x40000000ull + kPmdSpan, 1, shared2, true);
    EXPECT_EQ(w2, 1u);
    pt.detachTable(0x40000000ull, 1);
    pt.detachTable(0x40000000ull + kPmdSpan, 1);
    fa.free(shared);
    fa.free(shared2);
}

TEST(PageTable, SharedFramesNotFreedWithTable)
{
    FrameAllocator fa;
    Frame shared = fa.alloc();
    {
        PageTable pt(fa);
        pt.attachTable(0x40000000ull, 1, shared, true);
        // pt destroyed here; must not free the shared frame.
    }
    // Accessing the shared frame still works (would panic if freed).
    fa.table(shared)[0] = 1;
    fa.free(shared);
    EXPECT_EQ(fa.live(), 0u);
}

TEST(PageTable, MalformedDeepFteFaults)
{
    FrameAllocator fa;
    PageTable pt(fa);
    // Attach at PUD level (2) a table whose entries are FTEs. The walk
    // then meets an FT-marked entry at level 1 — a malformed tree the
    // hardware walker must treat as a fault, not interpret.
    Frame poisoned = fa.alloc();
    for (std::size_t i = 0; i < kPte; i++)
        fa.table(poisoned)[i] = makeFte(100 + i, 1, true);
    pt.attachTable(0x40000000ull, 2, poisoned, true);
    const PageTable::Walk w = pt.walk(0x40000000ull);
    EXPECT_FALSE(w.present);
    pt.detachTable(0x40000000ull, 2);
    fa.free(poisoned);
}

TEST(VaAllocator, ReserveAligned)
{
    VaAllocator va(0x1000, 1ull << 30);
    const Vaddr a = va.reserve(4096, 2ull << 20);
    EXPECT_EQ(a % (2ull << 20), 0u);
    const Vaddr b = va.reserve(4096, 4096);
    EXPECT_NE(a, b);
}

TEST(VaAllocator, ReleaseCoalesces)
{
    VaAllocator va(0x10000, 1ull << 20);
    const Vaddr a = va.reserve(4096, 4096);
    const Vaddr b = va.reserve(4096, 4096);
    const Vaddr c = va.reserve(4096, 4096);
    va.release(a, 4096);
    va.release(c, 4096);
    va.release(b, 4096);
    EXPECT_EQ(va.fragments(), 1u);
    EXPECT_EQ(va.freeBytes(), 1ull << 20);
}

TEST(VaAllocator, Exhaustion)
{
    VaAllocator va(0x10000, 8192);
    EXPECT_NE(va.reserve(8192, 4096), 0u);
    EXPECT_EQ(va.reserve(1, 1), 0u);
}

TEST(AddressSpace, PmdAlignedRegions)
{
    FrameAllocator fa;
    AddressSpace as(fa, 101);
    EXPECT_EQ(as.pasid(), 101u);
    const Vaddr v = as.reserve(10 << 20, kPmdSpan);
    EXPECT_NE(v, 0u);
    EXPECT_EQ(v % kPmdSpan, 0u);
    as.release(v, 10 << 20);
}
