/**
 * @file
 * Second-round coverage: fragmented files end-to-end (multi-segment VBA
 * translation), in-place file growth across shared-leaf boundaries and
 * beyond the VA headroom, file-offset tracking, trace accounting, and
 * property sweeps (translation equivalence, histogram percentiles).
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "sim/stats.hpp"
#include "tests/helpers.hpp"

using namespace bpd;
using namespace bpd::test;
using fs::kOpenCreate;
using fs::kOpenDirect;
using fs::kOpenRead;
using fs::kOpenWrite;

namespace {
constexpr std::uint32_t kRw
    = kOpenRead | kOpenWrite | kOpenCreate | kOpenDirect;
} // namespace

TEST(Fragmentation, MultiExtentReadThroughBypassd)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &p = s.newProcess();

    // Interleave allocations of two files so /frag ends up with many
    // discontiguous extents.
    const int fa = s.kernel.setupOpen(p, "/frag", kRw);
    const int fb = s.kernel.setupOpen(p, "/filler", kRw);
    fs::Inode *ia = s.ext4.inode(p.file(fa)->ino);
    fs::Inode *ib = s.ext4.inode(p.file(fb)->ino);
    for (int i = 0; i < 16; i++) {
        ASSERT_EQ(s.ext4.extendTo(*ia, (i + 1) * 2 * kBlockBytes,
                                  nullptr),
                  fs::FsStatus::Ok);
        ASSERT_EQ(s.ext4.extendTo(*ib, (i + 1) * 3 * kBlockBytes,
                                  nullptr),
                  fs::FsStatus::Ok);
    }
    EXPECT_GT(ia->extents.extentCount(), 8u); // genuinely fragmented
    // Fill with a pattern through the functional path.
    auto data = pattern(32 * kBlockBytes, 99);
    ASSERT_EQ(s.kernel.setupWrite(p, fa, data, 0),
              (long long)data.size());
    kClose(s, p, fa);
    kClose(s, p, fb);

    // A single large BypassD read spanning many extents.
    bypassd::UserLib &lib = s.userLib(p);
    const int fd = ulOpen(s, lib, "/frag", kOpenRead | kOpenDirect);
    ASSERT_TRUE(lib.isDirect(fd));
    std::vector<std::uint8_t> back(24 * kBlockBytes);
    auto r = ulPread(s, lib, 0, fd, back, 3 * kBlockBytes);
    ASSERT_EQ(r.n, (long long)back.size());
    EXPECT_TRUE(std::equal(back.begin(), back.end(),
                           data.begin() + 3 * kBlockBytes));
}

TEST(Growth, AppendAcrossLeafBoundaryVisibleToAllOpeners)
{
    // A shared-leaf boundary is 2 MiB: growing past it forces a new
    // shared leaf frame that must be linked into every attached process.
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &pa = s.newProcess();
    kern::Process &pb = s.newProcess();
    const std::uint64_t start = 2 * (1 << 20) - 4096; // 4 KiB below 2 MiB
    const int cfd = s.kernel.setupCreateFile(pa, "/grow", start, 3);
    kClose(s, pa, cfd);

    bypassd::UserLib &la = s.userLib(pa);
    bypassd::UserLib &lb = s.userLib(pb);
    const int fda = ulOpen(s, la, "/grow", kRw);
    const int fdb = ulOpen(s, lb, "/grow", kOpenRead | kOpenDirect);
    ASSERT_TRUE(la.isDirect(fda));
    ASSERT_TRUE(lb.isDirect(fdb));

    // Writer appends 64 KiB, crossing the leaf boundary.
    auto data = pattern(64 << 10, 7);
    auto r = ulPwrite(s, la, 0, fda, data, start);
    ASSERT_EQ(r.n, (long long)data.size());
    EXPECT_TRUE(la.isDirect(fda)); // still direct after growth

    // Reader sees the new data directly (no reopen, warm FTE extension).
    std::vector<std::uint8_t> back(64 << 10);
    auto rr = ulPread(s, lb, 0, fdb, back, start);
    ASSERT_EQ(rr.n, (long long)back.size());
    EXPECT_EQ(back, data);
    EXPECT_TRUE(lb.isDirect(fdb));
}

TEST(Growth, BeyondHeadroomFallsBackGracefully)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 2ull << 30;
    sys::System s(cfg);
    kern::Process &p = s.newProcess();
    const int cfd = s.kernel.setupCreateFile(p, "/huge", 4096, 1);
    kClose(s, p, cfd);
    bypassd::UserLib &lib = s.userLib(p);
    const int fd = ulOpen(s, lib, "/huge", kRw);
    ASSERT_TRUE(lib.isDirect(fd));

    // Grow far beyond the reserved region (headroom is 32 MiB).
    int rc = -1;
    lib.fallocate(fd, 0, 64ull << 20, [&](int r) { rc = r; });
    s.run();
    ASSERT_EQ(rc, 0);
    EXPECT_GE(s.module.revocations(), 1u); // region exhausted => revoke

    // I/O still works via the fallback path, data correct.
    auto data = pattern(4096, 5);
    EXPECT_EQ(ulPwrite(s, lib, 0, fd, data, 48ull << 20).n, 4096);
    std::vector<std::uint8_t> back(4096);
    EXPECT_EQ(ulPread(s, lib, 0, fd, back, 48ull << 20).n, 4096);
    EXPECT_EQ(back, data);
}

TEST(UserLib, SequentialReadWriteTracksOffset)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &p = s.newProcess();
    const int cfd = s.kernel.setupCreateFile(p, "/seq", 64 << 10, 3);
    kClose(s, p, cfd);
    bypassd::UserLib &lib = s.userLib(p);
    const int fd = ulOpen(s, lib, "/seq", kRw);

    // Three sequential writes then three sequential reads from offset 0
    // of a second fd.
    auto d1 = pattern(4096, 1), d2 = pattern(4096, 2), d3 = pattern(4096, 3);
    int done = 0;
    lib.write(0, fd, d1, [&](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 4096);
        done++;
        lib.write(0, fd, d2, [&](long long n2, kern::IoTrace) {
            EXPECT_EQ(n2, 4096);
            done++;
            lib.write(0, fd, d3, [&](long long n3, kern::IoTrace) {
                EXPECT_EQ(n3, 4096);
                done++;
            });
        });
    });
    s.run();
    EXPECT_EQ(done, 3);
    std::vector<std::uint8_t> back(4096);
    s.kernel.setupRead(p, fd, back, 0);
    EXPECT_EQ(back, d1);
    s.kernel.setupRead(p, fd, back, 4096);
    EXPECT_EQ(back, d2);
    s.kernel.setupRead(p, fd, back, 8192);
    EXPECT_EQ(back, d3);
}

TEST(Tracing, ComponentsSumToMeasuredLatency)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &p = s.newProcess();
    const int cfd = s.kernel.setupCreateFile(p, "/tr", 1 << 20, 3);
    kClose(s, p, cfd);
    bypassd::UserLib &lib = s.userLib(p);
    const int fd = ulOpen(s, lib, "/tr", kOpenRead | kOpenDirect);
    lib.prepareThread(0);
    std::vector<std::uint8_t> buf(4096);
    ulPread(s, lib, 0, fd, buf, 0); // warm
    const Time t0 = s.now();
    auto r = ulPread(s, lib, 0, fd, buf, 4096);
    const Time wall = s.now() - t0;
    // user + translate + device must equal the wall-clock latency.
    EXPECT_EQ(r.trace.userNs + r.trace.translateNs + r.trace.deviceNs,
              wall);
}

// --- Property: IOMMU translation equals extent arithmetic ---

class TranslationEquivalence
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TranslationEquivalence, RandomRangesMatchExtents)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &p = s.newProcess();
    sim::Rng rng(GetParam());

    // Fragmented file again, via interleaved allocation.
    const int fa = s.kernel.setupOpen(p, "/t", kRw);
    const int fb = s.kernel.setupOpen(p, "/u", kRw);
    fs::Inode *ia = s.ext4.inode(p.file(fa)->ino);
    fs::Inode *ib = s.ext4.inode(p.file(fb)->ino);
    for (int i = 0; i < 12; i++) {
        s.ext4.extendTo(*ia,
                        ia->size + (1 + rng.nextUint(4)) * kBlockBytes,
                        nullptr);
        s.ext4.extendTo(*ib,
                        ib->size + (1 + rng.nextUint(4)) * kBlockBytes,
                        nullptr);
    }
    InodeNum ino = ia->ino;
    kClose(s, p, fa); // kernel-interface opens would block fmap
    kClose(s, p, fb);
    const int ofd = s.kernel.setupOpen(
        p, "/t", kRw | kern::kOpenBypassdIntent);
    ASSERT_GE(ofd, 0);
    bypassd::FmapResult res = s.module.fmap(p, ino, true);
    ASSERT_NE(res.vba, 0u);

    for (int trial = 0; trial < 50; trial++) {
        const std::uint64_t off
            = rng.nextUint(ia->size - kSectorBytes)
              & ~(kSectorBytes - 1);
        const std::uint32_t len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>((1 + rng.nextUint(16)) * kSectorBytes,
                                    ia->size - off));
        iommu::TransResult tr = s.iommu.translateVbaSync(
            p.pasid(), res.vba + off, len, false, s.dev.devId());
        ASSERT_TRUE(tr.ok);
        // The IOMMU result must byte-for-byte match the extent tree.
        std::vector<fs::Seg> segs;
        ASSERT_EQ(s.ext4.mapRange(*ia, off, len, &segs), fs::FsStatus::Ok);
        ASSERT_EQ(tr.segs.size(), segs.size());
        for (std::size_t i = 0; i < segs.size(); i++) {
            EXPECT_EQ(tr.segs[i].addr, segs[i].addr);
            EXPECT_EQ(tr.segs[i].len, segs[i].len);
        }
        const std::uint64_t total = std::accumulate(
            tr.segs.begin(), tr.segs.end(), std::uint64_t{0},
            [](std::uint64_t acc, const iommu::TransSeg &sg) {
                return acc + sg.len;
            });
        EXPECT_EQ(total, len);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationEquivalence,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

// --- Property: histogram percentiles track exact order statistics ---

class HistogramAccuracy : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistogramAccuracy, PercentilesWithinBucketResolution)
{
    sim::Rng rng(GetParam());
    sim::Histogram h;
    std::vector<std::uint64_t> vals;
    for (int i = 0; i < 20000; i++) {
        // Mixture: mostly ~5us with a heavy tail.
        std::uint64_t v = 4000 + rng.nextUint(2000);
        if (rng.nextBool(0.01))
            v = 50000 + rng.nextUint(400000);
        vals.push_back(v);
        h.record(v);
    }
    std::sort(vals.begin(), vals.end());
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        const std::size_t idx = std::min(
            vals.size() - 1,
            static_cast<std::size_t>(p / 100.0
                                     * static_cast<double>(vals.size())));
        const double exact = static_cast<double>(vals[idx]);
        const double approx = static_cast<double>(h.percentile(p));
        EXPECT_NEAR(approx, exact, exact * 0.04)
            << "p" << p; // ~1.5% bucket resolution + interpolation
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracy,
                         ::testing::Values(31, 32, 33, 34));

// --- rename (atomic, journaled namespace update) ---

TEST(Rename, BasicAndCrashRecovery)
{
    sim::setVerbose(false);
    ssd::BlockStore media(128ull << 20);
    fs::Ext4Fs fsys(media);
    fs::Credentials creds{1000, 1000};
    InodeNum ino;
    ASSERT_EQ(fsys.create("/a", 0644, creds, &ino), fs::FsStatus::Ok);
    fs::Inode *node = fsys.inode(ino);
    ASSERT_EQ(fsys.extendTo(*node, 8192, nullptr), fs::FsStatus::Ok);

    ASSERT_EQ(fsys.rename("/a", "/b", creds), fs::FsStatus::Ok);
    InodeNum got;
    EXPECT_EQ(fsys.resolve("/a", &got), fs::FsStatus::NoEnt);
    ASSERT_EQ(fsys.resolve("/b", &got), fs::FsStatus::Ok);
    EXPECT_EQ(got, ino); // same inode, same blocks

    // Crash recovery preserves the rename atomically.
    auto rec = fs::Ext4Fs::recover(media, fsys);
    std::string why;
    ASSERT_TRUE(rec->fsck(&why)) << why;
    EXPECT_EQ(rec->resolve("/a", &got), fs::FsStatus::NoEnt);
    ASSERT_EQ(rec->resolve("/b", &got), fs::FsStatus::Ok);
    EXPECT_EQ(got, ino);
}

TEST(Rename, ReplacesTargetAndFreesItsBlocks)
{
    sim::setVerbose(false);
    ssd::BlockStore media(128ull << 20);
    fs::Ext4Fs fsys(media);
    fs::Credentials creds{1000, 1000};
    InodeNum a, b;
    ASSERT_EQ(fsys.create("/a", 0644, creds, &a), fs::FsStatus::Ok);
    ASSERT_EQ(fsys.create("/b", 0644, creds, &b), fs::FsStatus::Ok);
    fsys.extendTo(*fsys.inode(b), 1 << 20, nullptr);
    const std::uint64_t freeBefore = fsys.allocator().freeBlocks();

    ASSERT_EQ(fsys.rename("/a", "/b", creds), fs::FsStatus::Ok);
    EXPECT_EQ(fsys.inode(b), nullptr); // victim gone
    EXPECT_EQ(fsys.allocator().freeBlocks(), freeBefore + 256);
    InodeNum got;
    ASSERT_EQ(fsys.resolve("/b", &got), fs::FsStatus::Ok);
    EXPECT_EQ(got, a);
    std::string why;
    EXPECT_TRUE(fsys.fsck(&why)) << why;
}

TEST(Rename, BusyTargetRefused)
{
    sim::setVerbose(false);
    ssd::BlockStore media(64ull << 20);
    fs::Ext4Fs fsys(media);
    fs::Credentials creds{1000, 1000};
    InodeNum a, b;
    fsys.create("/a", 0644, creds, &a);
    fsys.create("/b", 0644, creds, &b);
    fsys.inode(b)->kernelOpens = 1; // open elsewhere
    EXPECT_EQ(fsys.rename("/a", "/b", creds), fs::FsStatus::Busy);
    EXPECT_EQ(fsys.rename("/a", "/a", creds), fs::FsStatus::Ok);
    EXPECT_EQ(fsys.rename("/missing", "/c", creds), fs::FsStatus::NoEnt);
}

TEST(Rename, ThroughKernelSyscallWithNamespaces)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &c1 = s.newProcess(1000);
    s.ext4.mkdir("/containers", 0777, fs::Credentials{0, 0}, nullptr);
    ASSERT_EQ(s.kernel.setNamespaceRoot(c1, "/containers/c1"),
              fs::FsStatus::Ok);
    const int fd = s.kernel.setupCreateFile(c1, "/old", 4096, 5);
    kClose(s, c1, fd);
    int rc = -1;
    s.kernel.sysRename(c1, "/old", "/new", [&](int r) { rc = r; });
    s.run();
    EXPECT_EQ(rc, 0);
    InodeNum got;
    // The rename happened inside the container's namespace.
    EXPECT_EQ(s.ext4.resolve("/containers/c1/new", &got),
              fs::FsStatus::Ok);
    EXPECT_EQ(s.ext4.resolve("/containers/c1/old", &got),
              fs::FsStatus::NoEnt);
}
