/**
 * @file
 * Sharded executor tests: mailbox delivery order (the determinism
 * linchpin), conservative-window safety panics, torn-barrier delivery
 * of in-flight messages, and bit-identical execution across shard
 * counts under a randomized message storm.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "sim/sim_executor.hpp"

using namespace bpd;
using namespace bpd::sim;

namespace {

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; i++) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

TEST(SimExecutor, SingleDomainMatchesPlainRun)
{
    // Same event set through a plain run and through a 3-shard
    // executor with one domain: identical order, identical clock.
    auto record = [](EventQueue &eq, std::vector<int> &order) {
        for (int i = 0; i < 8; i++)
            eq.schedule(10 * (i % 3), [&order, i]() {
                order.push_back(i);
            });
    };
    EventQueue plain;
    std::vector<int> plainOrder;
    record(plain, plainOrder);
    plain.run();

    EventQueue sharded;
    std::vector<int> shardedOrder;
    record(sharded, shardedOrder);
    SimExecutor ex(3);
    ex.addDomain(sharded, 0, "only");
    ex.run();

    EXPECT_EQ(shardedOrder, plainOrder);
    EXPECT_EQ(sharded.now(), plain.now());
    EXPECT_EQ(sharded.executed(), plain.executed());
}

TEST(SimExecutor, RepeatedRunsReachQuiescenceEachTime)
{
    EventQueue eq;
    SimExecutor ex(2);
    const std::uint32_t d = ex.addDomain(eq, 0);
    (void)d;
    int runs = 0;
    eq.schedule(5, [&runs]() { runs++; });
    ex.run();
    EXPECT_EQ(runs, 1);
    eq.schedule(9, [&runs]() { runs++; });
    ex.run();
    EXPECT_EQ(runs, 2);
    ex.run(); // idle run terminates immediately
    EXPECT_EQ(runs, 2);
}

TEST(SimExecutor, MailboxDeliveryOrderIsWhenSourceSeq)
{
    // Three domains on one shard so the test itself is single-
    // threaded. Domain B posts *first* in wall-clock order, but at the
    // same virtual time the lower source id (A) must deliver first,
    // and two posts from one source must stay FIFO.
    EventQueue a, b, c;
    SimExecutor ex(1);
    const std::uint32_t da = ex.addDomain(a, 0, "a");
    const std::uint32_t db = ex.addDomain(b, 0, "b");
    const std::uint32_t dc = ex.addDomain(c, 0, "c");
    ex.connect(da, dc, 10);
    ex.connect(db, dc, 10);
    EXPECT_EQ(ex.lookahead(), 10u);

    std::vector<std::string> arrivals;
    auto recv = [&arrivals](const char *tag) {
        return [&arrivals, tag]() { arrivals.push_back(tag); };
    };
    b.schedule(3, [&]() { ex.post(db, dc, 20, recv("b1")); });
    a.schedule(5, [&]() {
        ex.post(da, dc, 20, recv("a1"));
        ex.post(da, dc, 20, recv("a2"));
        ex.post(da, dc, 15, recv("a0"));
    });
    ex.run();

    EXPECT_EQ(arrivals,
              (std::vector<std::string>{"a0", "a1", "a2", "b1"}));
    EXPECT_EQ(c.now(), 20u);
    EXPECT_EQ(ex.delivered(), 4u);
}

TEST(SimExecutor, TornBarrierDeliversInFlightMessages)
{
    // Shard 0's domain drains completely in its first window while a
    // burst of messages to shard 1 is still staged in the mailbox: the
    // executor must keep running rounds until the mail is processed,
    // not declare quiescence from empty queues alone. The ack chain
    // then bounces the tail message back and forth to stress repeated
    // idle/busy transitions.
    EventQueue a, b;
    SimExecutor ex(2);
    const std::uint32_t da = ex.addDomain(a, 0, "a");
    const std::uint32_t db = ex.addDomain(b, 1, "b");
    ex.connect(da, db, 7);
    ex.connect(db, da, 7);

    int received = 0;
    int bounces = 0;
    // One self-contained hop function per direction, rebuilt at each
    // hop (captures stay tiny).
    struct Bounce
    {
        SimExecutor &ex;
        std::uint32_t da, db;
        EventQueue &a, &b;
        int &bounces;

        void
        hop(bool toB, int left)
        {
            if (left == 0)
                return;
            const std::uint32_t src = toB ? da : db;
            const std::uint32_t dst = toB ? db : da;
            EventQueue &seq = toB ? a : b;
            ex.post(src, dst, seq.now() + 7,
                    [this, toB, left]() {
                        bounces++;
                        hop(!toB, left - 1);
                    });
        }
    };
    auto bounce = std::make_unique<Bounce>(
        Bounce{ex, da, db, a, b, bounces});

    a.schedule(0, [&]() {
        for (int i = 0; i < 100; i++)
            ex.post(da, db, a.now() + 7 + i,
                    [&received]() { received++; });
        bounce->hop(true, 31);
    });
    ex.run();

    EXPECT_EQ(received, 100);
    EXPECT_EQ(bounces, 31);
    EXPECT_TRUE(a.empty());
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(ex.delivered(), 131u);
}

namespace {

/**
 * Randomized message storm over K actor domains: every actor runs a
 * deterministic local schedule, posts to pseudo-random peers at
 * pseudo-random (latency-respecting) times, and folds everything it
 * observes — local ticks and arrivals, with their virtual times —
 * into a per-actor hash. The hashes must be independent of the shard
 * count.
 */
std::vector<std::uint64_t>
runStorm(unsigned shards)
{
    constexpr unsigned kActors = 5;
    constexpr Time kLat = 11;

    struct Actor
    {
        EventQueue eq;
        Rng rng{0};
        std::uint64_t hash = 0xcbf29ce484222325ull;
        int ticksLeft = 120;
    };

    std::vector<std::unique_ptr<Actor>> actors;
    SimExecutor ex(shards);
    std::vector<std::uint32_t> dom;
    for (unsigned i = 0; i < kActors; i++) {
        actors.push_back(std::make_unique<Actor>());
        actors.back()->rng = Rng(1000 + i);
        dom.push_back(
            ex.addDomain(actors.back()->eq, i % shards));
    }
    for (unsigned i = 0; i < kActors; i++)
        for (unsigned j = 0; j < kActors; j++)
            if (i != j)
                ex.connect(dom[i], dom[j], kLat);

    struct Driver
    {
        std::vector<std::unique_ptr<Actor>> &actors;
        SimExecutor &ex;
        std::vector<std::uint32_t> &dom;

        void
        tick(unsigned i)
        {
            Actor &a = *actors[i];
            if (a.ticksLeft-- <= 0)
                return;
            a.hash = fnv(a.hash, a.eq.now());
            // Post to a pseudo-random peer with a pseudo-random
            // payload and slack.
            const unsigned peer
                = (i + 1 + a.rng.nextUint(4)) % 5;
            const std::uint64_t payload = a.rng.next();
            const Time when = a.eq.now() + kLat + a.rng.nextUint(40);
            ex.post(dom[i], dom[peer], when,
                    [this, i, peer, payload]() {
                        Actor &p = *actors[peer];
                        p.hash = fnv(p.hash, i);
                        p.hash = fnv(p.hash, p.eq.now());
                        p.hash = fnv(p.hash, payload);
                    });
            a.eq.schedule(a.eq.now() + 1 + a.rng.nextUint(15),
                          [this, i]() { tick(i); });
        }
    };
    auto drv = std::make_unique<Driver>(Driver{actors, ex, dom});
    for (unsigned i = 0; i < kActors; i++)
        actors[i]->eq.schedule(3 * i, [&drv, i]() { drv->tick(i); });

    ex.run();

    std::vector<std::uint64_t> hashes;
    for (auto &a : actors) {
        EXPECT_TRUE(a->eq.empty());
        hashes.push_back(a->hash);
    }
    return hashes;
}

} // namespace

TEST(SimExecutor, ShardCountInvarianceUnderMessageStorm)
{
    const auto h1 = runStorm(1);
    const auto h2 = runStorm(2);
    const auto h4 = runStorm(4);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(h1, h4);
    // The storm actually communicated: hashes differ across actors.
    EXPECT_NE(h1[0], h1[1]);
}

TEST(SimExecutorDeath, PostBelowLatencyFloorPanics)
{
    EventQueue a, b;
    SimExecutor ex(1);
    const std::uint32_t da = ex.addDomain(a, 0);
    const std::uint32_t db = ex.addDomain(b, 0);
    ex.connect(da, db, 100);
    EXPECT_DEATH(ex.post(da, db, 50, []() {}),
                 "below channel latency floor");
}

TEST(SimExecutorDeath, PostOnUnconnectedChannelPanics)
{
    EventQueue a, b;
    SimExecutor ex(1);
    const std::uint32_t da = ex.addDomain(a, 0);
    const std::uint32_t db = ex.addDomain(b, 0);
    ex.connect(da, db, 100);
    EXPECT_DEATH(ex.post(db, da, 1000, []() {}),
                 "unconnected channel");
}

TEST(SimExecutorDeath, ZeroLatencyChannelPanics)
{
    EventQueue a, b;
    SimExecutor ex(1);
    const std::uint32_t da = ex.addDomain(a, 0);
    const std::uint32_t db = ex.addDomain(b, 0);
    EXPECT_DEATH(ex.connect(da, db, 0), "zero-latency");
}
