/**
 * @file
 * Trace-driven replay (src/obs/replay.*): the round-trip contract —
 * capture a traced run, export it, parse it back, re-drive it through a
 * fresh System, and require bit-identical stream digests and curated
 * counters — plus cross-configuration replay (engine override, IOTLB
 * sizing, lane capping), SPDK-target raw-region mapping, and the
 * refusal paths.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/replay.hpp"
#include "sim/logging.hpp"
#include "ssd/block_store.hpp"
#include "system/system.hpp"
#include "workloads/fio.hpp"

using namespace bpd;

namespace {

struct CapturedRun
{
    obs::TraceData data;
    obs::ReplayMeta meta;
};

/** Run @p job traced, snapshot trace + replay metadata like the bench
 *  binaries' ObsCapture does. */
CapturedRun
captureFio(const wl::FioJob &job, std::uint64_t seed = 7)
{
    sim::setVerbose(false);
    sys::SystemConfig cfg;
    cfg.deviceBytes = 1ull << 30;
    cfg.seed = seed;
    sys::System s(cfg);
    s.enableTracing(obs::Level::Requests);
    wl::FioRunner runner(s);
    runner.run(job);

    CapturedRun cap;
    cap.data = s.tracer()->data();
    cap.meta.config = obs::configToMap(s.cfg);
    cap.meta.counters = obs::curatedCounters(s);
    cap.meta.digest = obs::replayDigest(cap.data.replay);
    cap.meta.events = s.eq.executed();
    cap.meta.simNs = s.now();
    return cap;
}

/** Export to a temp file and parse back; expects one replay stream. */
obs::RecordedProcess
roundTripLoad(const CapturedRun &cap, const std::string &tag)
{
    const std::string path
        = ::testing::TempDir() + "bpd_replay_" + tag + ".json";
    EXPECT_TRUE(obs::writeChromeTraceFile(
        path, {obs::TraceProcess{tag, &cap.data, &cap.meta}}));

    obs::RecordedTrace trace;
    std::string err;
    EXPECT_TRUE(obs::loadRecordedTrace(path, trace, err)) << err;
    std::remove(path.c_str());
    EXPECT_EQ(trace.processes.size(), 1u);
    return trace.processes.empty() ? obs::RecordedProcess{}
                                   : trace.processes[0];
}

wl::FioJob
smallJob(wl::Engine e, wl::RwMode rw)
{
    wl::FioJob job;
    job.engine = e;
    job.rw = rw;
    job.bs = 4096;
    job.numJobs = 2;
    job.runtime = 500 * kUs;
    job.warmup = 50 * kUs;
    job.fileBytes = 2ull << 20;
    job.seed = 11;
    job.filePrefix = "/replay";
    return job;
}

void
expectRoundTrip(const obs::RecordedProcess &rec)
{
    ASSERT_TRUE(rec.hasMeta);
    ASSERT_FALSE(rec.partial);
    obs::ReplayResult res;
    std::string err;
    ASSERT_TRUE(obs::replayRun(rec, {}, res, err)) << err;
    EXPECT_EQ(res.digest, rec.digest)
        << "replayed stream diverged from capture";
    for (const auto &[k, v] : res.counters) {
        for (const auto &[rk, rv] : rec.counters)
            if (rk == k)
                EXPECT_EQ(v, rv) << "counter " << k;
    }
}

} // namespace

// ---------------------------------------------------------------------
// Round trip: identical config => bit-identical digests and counters
// ---------------------------------------------------------------------

TEST(ReplayRoundTrip, SyncRandRead)
{
    const CapturedRun cap
        = captureFio(smallJob(wl::Engine::Sync, wl::RwMode::RandRead));
    expectRoundTrip(roundTripLoad(cap, "sync_rr"));
}

TEST(ReplayRoundTrip, BypassdRandRead)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Bypassd, wl::RwMode::RandRead));
    expectRoundTrip(roundTripLoad(cap, "bpd_rr"));
}

TEST(ReplayRoundTrip, BypassdRandWriteExercisesJournal)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Bypassd, wl::RwMode::RandWrite));
    const obs::RecordedProcess rec = roundTripLoad(cap, "bpd_rw");
    bool journaled = false;
    for (const auto &[k, v] : rec.counters)
        if (k == "journal_commits" && v > 0)
            journaled = true;
    EXPECT_TRUE(journaled);
    expectRoundTrip(rec);
}

TEST(ReplayRoundTrip, IoUringRandRead)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::IoUring, wl::RwMode::RandRead));
    expectRoundTrip(roundTripLoad(cap, "uring_rr"));
}

TEST(ReplayRoundTrip, LibaioRandRead)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Libaio, wl::RwMode::RandRead));
    expectRoundTrip(roundTripLoad(cap, "aio_rr"));
}

// ---------------------------------------------------------------------
// Cross-configuration replay
// ---------------------------------------------------------------------

TEST(ReplayCrossConfig, BypassdStreamUnderIoUring)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Bypassd, wl::RwMode::RandRead));
    const obs::RecordedProcess rec = roundTripLoad(cap, "xcfg");

    std::uint64_t dataOps = 0;
    for (const auto &r : rec.ops)
        if (r.op == obs::ReplayRec::Read
            || r.op == obs::ReplayRec::Write
            || r.op == obs::ReplayRec::Fsync)
            dataOps++;

    obs::ReplayOptions opt;
    opt.engine = static_cast<int>(wl::Engine::IoUring);
    opt.iotlbEntries = 64;
    obs::ReplayResult res;
    std::string err;
    ASSERT_TRUE(obs::replayRun(rec, opt, res, err)) << err;
    // Same request stream, different data path: every data op is
    // re-driven, but timing (and hence the digest) diverges.
    EXPECT_EQ(res.ops, dataOps);
    EXPECT_NE(res.digest, rec.digest);
    // The kernel path does not touch the IOMMU's VBA machinery.
    for (const auto &[k, v] : res.counters)
        if (k == "vba_translations")
            EXPECT_EQ(v, 0u);
}

TEST(ReplayCrossConfig, IotlbSizingChangesTimingOnly)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Bypassd, wl::RwMode::RandRead));
    const obs::RecordedProcess rec = roundTripLoad(cap, "iotlb");

    obs::ReplayOptions opt;
    opt.iotlbEntries = 4;
    opt.iotlbWays = 2;
    obs::ReplayResult res;
    std::string err;
    ASSERT_TRUE(obs::replayRun(rec, opt, res, err)) << err;
    obs::ReplayResult base;
    ASSERT_TRUE(obs::replayRun(rec, {}, base, err)) << err;
    EXPECT_EQ(res.ops, base.ops);
    EXPECT_GE(res.simNs, base.simNs); // a tiny IOTLB cannot be faster
}

TEST(ReplayCrossConfig, LaneCapReplaysSubset)
{
    wl::FioJob job = smallJob(wl::Engine::Sync, wl::RwMode::RandRead);
    job.numJobs = 4;
    const CapturedRun cap = captureFio(job);
    const obs::RecordedProcess rec = roundTripLoad(cap, "lanes");

    obs::ReplayOptions opt;
    opt.lanes = 1;
    obs::ReplayResult capped, full;
    std::string err;
    ASSERT_TRUE(obs::replayRun(rec, opt, capped, err)) << err;
    ASSERT_TRUE(obs::replayRun(rec, {}, full, err)) << err;
    EXPECT_GT(capped.ops, 0u);
    EXPECT_LT(capped.ops, full.ops);
}

// ---------------------------------------------------------------------
// SPDK as a replay target: file captures map onto raw device regions
// ---------------------------------------------------------------------

namespace {

std::uint64_t
countDataOps(const obs::RecordedProcess &rec)
{
    std::uint64_t n = 0;
    for (const auto &r : rec.ops)
        if (r.op == obs::ReplayRec::Read || r.op == obs::ReplayRec::Write
            || r.op == obs::ReplayRec::Fsync)
            n++;
    return n;
}

void
expectSpdkMappedReplay(const obs::RecordedProcess &rec)
{
    obs::ReplayOptions opt;
    opt.engine = static_cast<int>(wl::Engine::Spdk);
    obs::ReplayResult res;
    std::string err;
    ASSERT_TRUE(obs::replayRun(rec, opt, res, err)) << err;

    // Every recorded data op re-drives on the raw path (replayRun
    // fails on any stalled record, so equality means 100% completed).
    EXPECT_GT(res.ops, 0u);
    EXPECT_EQ(res.ops, countDataOps(rec));

    // Raw path: no fs, no VBA machinery.
    for (const auto &[k, v] : res.counters) {
        if (k == "vba_translations")
            EXPECT_EQ(v, 0u);
        if (k == "device_ops")
            EXPECT_GT(v, 0u);
    }

    // One region per recorded file, extent-aligned and disjoint.
    ASSERT_EQ(res.regionMap.size(), rec.files.size());
    std::uint64_t prevEnd = 0;
    for (const auto &e : res.regionMap) {
        EXPECT_EQ(e.base % ssd::BlockStore::kExtentBytes, 0u);
        EXPECT_EQ(e.bytes % ssd::BlockStore::kExtentBytes, 0u);
        EXPECT_GE(e.base, prevEnd);
        EXPECT_GT(e.ops, 0u);
        prevEnd = e.base + e.bytes;
    }
}

} // namespace

TEST(ReplaySpdkTarget, BypassdCaptureMapsOntoSpdk)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Bypassd, wl::RwMode::RandRead));
    expectSpdkMappedReplay(roundTripLoad(cap, "spdk_bpd"));
}

TEST(ReplaySpdkTarget, SyncCaptureMapsOntoSpdk)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Sync, wl::RwMode::RandWrite));
    expectSpdkMappedReplay(roundTripLoad(cap, "spdk_sync"));
}

TEST(ReplaySpdkTarget, FsyncIsBarrierUnlessStrict)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Sync, wl::RwMode::RandWrite));
    obs::RecordedProcess rec = roundTripLoad(cap, "spdk_fsync");

    // No recording site emits fsync records today; append one to the
    // stream, modeled on the last recorded data op.
    obs::ReplayRec fsrec;
    for (const auto &r : rec.ops)
        if (r.op == obs::ReplayRec::Write)
            fsrec = r;
    ASSERT_EQ(fsrec.op, obs::ReplayRec::Write);
    fsrec.op = obs::ReplayRec::Fsync;
    fsrec.offset = 0;
    fsrec.len = 0;
    fsrec.issue = rec.ops.back().complete + kUs;
    fsrec.complete = fsrec.issue + kUs;
    fsrec.result = 0;
    rec.ops.push_back(fsrec);

    obs::ReplayOptions opt;
    opt.engine = static_cast<int>(wl::Engine::Spdk);
    obs::ReplayResult res;
    std::string err;
    ASSERT_TRUE(obs::replayRun(rec, opt, res, err)) << err;
    EXPECT_EQ(res.ops, countDataOps(rec)); // fsync barrier completed

    opt.strict = true;
    obs::ReplayResult strictRes;
    EXPECT_FALSE(obs::replayRun(rec, opt, strictRes, err));
    EXPECT_NE(err.find("fsync"), std::string::npos) << err;
}

TEST(ReplaySpdkTarget, AppendGrowthRefused)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Sync, wl::RwMode::RandWrite));
    obs::RecordedProcess rec = roundTripLoad(cap, "spdk_growth");

    // A write reaching past the recorded create size needs EOF-growth
    // semantics the raw path cannot provide.
    obs::ReplayRec grow;
    for (const auto &r : rec.ops)
        if (r.op == obs::ReplayRec::Write)
            grow = r;
    ASSERT_EQ(grow.op, obs::ReplayRec::Write);
    grow.offset = 2ull << 20; // == smallJob fileBytes, so past EOF
    grow.issue = rec.ops.back().complete + kUs;
    grow.complete = grow.issue + kUs;
    rec.ops.push_back(grow);

    obs::ReplayOptions opt;
    opt.engine = static_cast<int>(wl::Engine::Spdk);
    obs::ReplayResult res;
    std::string err;
    EXPECT_FALSE(obs::replayRun(rec, opt, res, err));
    EXPECT_NE(err.find("create size"), std::string::npos) << err;
}

TEST(ReplaySpdkTarget, MappingDeterministicAcrossLoads)
{
    const CapturedRun cap = captureFio(
        smallJob(wl::Engine::Bypassd, wl::RwMode::RandRead));
    const obs::RecordedProcess a = roundTripLoad(cap, "spdk_det_a");
    const obs::RecordedProcess b = roundTripLoad(cap, "spdk_det_b");

    obs::ReplayOptions opt;
    opt.engine = static_cast<int>(wl::Engine::Spdk);
    obs::ReplayResult ra, rb;
    std::string err;
    ASSERT_TRUE(obs::replayRun(a, opt, ra, err)) << err;
    ASSERT_TRUE(obs::replayRun(b, opt, rb, err)) << err;

    EXPECT_EQ(ra.digest, rb.digest);
    ASSERT_EQ(ra.regionMap.size(), rb.regionMap.size());
    for (std::size_t i = 0; i < ra.regionMap.size(); i++) {
        EXPECT_EQ(ra.regionMap[i].file, rb.regionMap[i].file);
        EXPECT_EQ(ra.regionMap[i].path, rb.regionMap[i].path);
        EXPECT_EQ(ra.regionMap[i].base, rb.regionMap[i].base);
        EXPECT_EQ(ra.regionMap[i].bytes, rb.regionMap[i].bytes);
        EXPECT_EQ(ra.regionMap[i].ops, rb.regionMap[i].ops);
    }
}

// ---------------------------------------------------------------------
// Refusal paths
// ---------------------------------------------------------------------

TEST(ReplayRefusal, PartialStream)
{
    const CapturedRun cap
        = captureFio(smallJob(wl::Engine::Sync, wl::RwMode::RandRead));
    obs::RecordedProcess rec = roundTripLoad(cap, "partial");
    rec.partial = true;
    rec.missing.push_back("xrp.chain");
    obs::ReplayResult res;
    std::string err;
    EXPECT_FALSE(obs::replayRun(rec, {}, res, err));
    EXPECT_NE(err.find("xrp.chain"), std::string::npos);
}

TEST(ReplayRefusal, EmptyStream)
{
    obs::RecordedProcess rec;
    rec.name = "empty";
    obs::ReplayResult res;
    std::string err;
    EXPECT_FALSE(obs::replayRun(rec, {}, res, err));
}

// ---------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------

TEST(ReplayLoad, TraceWithoutReplaySectionYieldsNoProcesses)
{
    const std::string path
        = ::testing::TempDir() + "bpd_replay_nosec.json";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}", f);
    std::fclose(f);

    obs::RecordedTrace trace;
    std::string err;
    ASSERT_TRUE(obs::loadRecordedTrace(path, trace, err)) << err;
    EXPECT_TRUE(trace.processes.empty());
    std::remove(path.c_str());
}

TEST(ReplayLoad, MalformedOpsRowRejected)
{
    const std::string path
        = ::testing::TempDir() + "bpd_replay_badrow.json";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"traceEvents\":[],\"displayTimeUnit\":\"ns\","
               "\"replay\":[{\"process\":\"x\",\"pid\":1,"
               "\"files\":[],\"ops\":[[1,2,3]]}]}",
               f);
    std::fclose(f);

    obs::RecordedTrace trace;
    std::string err;
    EXPECT_FALSE(obs::loadRecordedTrace(path, trace, err));
    std::remove(path.c_str());
}

TEST(ReplayLoad, U64FieldsRoundTripExactly)
{
    // offset and aux exceed a double's 53-bit mantissa: a strtod-only
    // parse would round them and corrupt the stream digest.
    obs::TraceData data;
    data.files.push_back("/big");
    obs::ReplayRec r;
    r.op = obs::ReplayRec::Read;
    r.engine = static_cast<std::uint8_t>(wl::Engine::Sync);
    r.lane = 0;
    r.proc = 1;
    r.tenant = 1;
    r.tid = 3;
    r.file = 0;
    r.offset = (1ull << 53) + 1;
    r.len = 4096;
    r.aux = 0xFFFFFFFFFFFFFFFFull;
    r.issue = (1ull << 61) + 7;
    r.complete = (1ull << 61) + 9;
    r.result = -((std::int64_t{1} << 53) + 1);
    data.replay.push_back(r);

    obs::ReplayMeta meta;
    meta.digest = obs::replayDigest(data.replay);

    const std::string path
        = ::testing::TempDir() + "bpd_replay_u64.json";
    ASSERT_TRUE(obs::writeChromeTraceFile(
        path, {obs::TraceProcess{"u64", &data, &meta}}));
    obs::RecordedTrace trace;
    std::string err;
    ASSERT_TRUE(obs::loadRecordedTrace(path, trace, err)) << err;
    std::remove(path.c_str());

    ASSERT_EQ(trace.processes.size(), 1u);
    const obs::RecordedProcess &p = trace.processes[0];
    ASSERT_EQ(p.ops.size(), 1u);
    EXPECT_EQ(p.ops[0].offset, (1ull << 53) + 1);
    EXPECT_EQ(p.ops[0].aux, 0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ(p.ops[0].issue, (1ull << 61) + 7);
    EXPECT_EQ(p.ops[0].complete, (1ull << 61) + 9);
    EXPECT_EQ(p.ops[0].result, r.result);
    EXPECT_EQ(obs::replayDigest(p.ops), p.digest)
        << "loaded stream no longer matches the recorded digest";
}

TEST(ReplayLoad, UnicodeEscapedPathsDecodeToUtf8)
{
    const std::string path
        = ::testing::TempDir() + "bpd_replay_uni.json";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    // BMP escapes plus an emoji surrogate pair in the file name.
    std::fputs(
        "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\","
        "\"replay\":[{\"process\":\"x\",\"pid\":1,"
        "\"files\":[\"/d\\u00e9j\\u00e0/\\uD83D\\uDE00.dat\"],"
        "\"ops\":[[1,0,0,1,1,0,0,4096,4096,0,10,20,4096]]}]}",
        f);
    std::fclose(f);

    obs::RecordedTrace trace;
    std::string err;
    ASSERT_TRUE(obs::loadRecordedTrace(path, trace, err)) << err;
    std::remove(path.c_str());
    ASSERT_EQ(trace.processes.size(), 1u);
    ASSERT_EQ(trace.processes[0].files.size(), 1u);
    EXPECT_EQ(trace.processes[0].files[0],
              "/d\xC3\xA9j\xC3\xA0/\xF0\x9F\x98\x80.dat");
}

TEST(ReplayLoad, ConfigRoundTripsThroughMap)
{
    sys::SystemConfig cfg;
    cfg.seed = 1234;
    cfg.iommu.iotlbEntries = 96;
    cfg.ssd.readBaseNs = 7777;
    const sys::SystemConfig back
        = obs::configFromMap(obs::configToMap(cfg));
    EXPECT_EQ(back.seed, 1234u);
    EXPECT_EQ(back.iommu.iotlbEntries, 96u);
    EXPECT_EQ(back.ssd.readBaseNs, 7777u);
}
