/**
 * @file
 * Tests for file-system building blocks: extent tree, block allocator,
 * journal, page cache — including property-style parameterized sweeps.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "fs/block_allocator.hpp"
#include "fs/extent_tree.hpp"
#include "fs/journal.hpp"
#include "fs/page_cache.hpp"
#include "sim/random.hpp"

using namespace bpd;
using namespace bpd::fs;

// --- ExtentTree ---

TEST(ExtentTree, InsertLookup)
{
    ExtentTree t;
    t.insert(0, 100, 10);
    auto e = t.lookup(5);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->pblk, 100u);
    EXPECT_EQ(e->count, 10u);
    EXPECT_FALSE(t.lookup(10).has_value());
}

TEST(ExtentTree, MergesAdjacent)
{
    ExtentTree t;
    t.insert(0, 100, 4);
    t.insert(4, 104, 4); // logically and physically adjacent
    EXPECT_EQ(t.extentCount(), 1u);
    EXPECT_EQ(t.lookup(7)->count, 8u);
}

TEST(ExtentTree, NoMergeWhenPhysicallyApart)
{
    ExtentTree t;
    t.insert(0, 100, 4);
    t.insert(4, 300, 4);
    EXPECT_EQ(t.extentCount(), 2u);
}

TEST(ExtentTree, MergeBothSides)
{
    ExtentTree t;
    t.insert(0, 100, 2);
    t.insert(4, 104, 2);
    t.insert(2, 102, 2); // fills the gap
    EXPECT_EQ(t.extentCount(), 1u);
    EXPECT_EQ(t.mappedBlocks(), 6u);
}

TEST(ExtentTree, OverlapPanics)
{
    ExtentTree t;
    t.insert(0, 100, 4);
    EXPECT_DEATH(t.insert(2, 500, 2), "overlap");
}

TEST(ExtentTree, TruncateSplitsStraddler)
{
    ExtentTree t;
    t.insert(0, 100, 10);
    std::vector<std::pair<BlockNo, std::uint64_t>> freed;
    t.truncateFrom(4, [&](BlockNo b, std::uint64_t n) {
        freed.emplace_back(b, n);
    });
    ASSERT_EQ(freed.size(), 1u);
    EXPECT_EQ(freed[0], (std::pair<BlockNo, std::uint64_t>{104, 6}));
    EXPECT_EQ(t.mappedBlocks(), 4u);
    EXPECT_TRUE(t.checkInvariants());
}

TEST(ExtentTree, TruncateAll)
{
    ExtentTree t;
    t.insert(0, 100, 4);
    t.insert(8, 300, 4);
    std::uint64_t freed = 0;
    t.truncateFrom(0, [&](BlockNo, std::uint64_t n) { freed += n; });
    EXPECT_EQ(freed, 8u);
    EXPECT_EQ(t.mappedBlocks(), 0u);
}

TEST(ExtentTree, LogicalEnd)
{
    ExtentTree t;
    EXPECT_EQ(t.logicalEnd(), 0u);
    t.insert(10, 100, 5);
    EXPECT_EQ(t.logicalEnd(), 15u);
}

/** Property: random insert sequences keep invariants and are readable. */
class ExtentTreeProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ExtentTreeProperty, RandomNonOverlappingInserts)
{
    sim::Rng rng(GetParam());
    ExtentTree t;
    std::map<std::uint64_t, BlockNo> expect; // lblk -> pblk
    // Insert random non-overlapping runs.
    for (int i = 0; i < 200; i++) {
        const std::uint64_t lblk = rng.nextUint(10000);
        const std::uint64_t count = 1 + rng.nextUint(16);
        bool overlaps = false;
        for (std::uint64_t b = lblk; b < lblk + count; b++) {
            if (expect.count(b)) {
                overlaps = true;
                break;
            }
        }
        if (overlaps)
            continue;
        const BlockNo pblk = 100000 + lblk * 32; // unique, gapped
        t.insert(lblk, pblk, count);
        for (std::uint64_t b = 0; b < count; b++)
            expect[lblk + b] = pblk + b;
    }
    ASSERT_TRUE(t.checkInvariants());
    for (const auto &[lblk, pblk] : expect) {
        auto e = t.lookup(lblk);
        ASSERT_TRUE(e.has_value());
        EXPECT_EQ(e->pblk + (lblk - e->lblk), pblk);
    }
    EXPECT_EQ(t.mappedBlocks(), expect.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentTreeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- BlockAllocator ---

TEST(BlockAllocator, AllocRespectsMetadataRegion)
{
    BlockAllocator a(1000, 64);
    auto r = a.alloc(10, 0);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(r->first, 64u);
    EXPECT_EQ(r->second, 10u);
}

TEST(BlockAllocator, GoalDirected)
{
    BlockAllocator a(1000, 64);
    auto r = a.alloc(10, 500);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->first, 500u);
}

TEST(BlockAllocator, WrapsWhenGoalAreaFull)
{
    BlockAllocator a(128, 64);
    auto r1 = a.alloc(64, 64); // fill everything
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->second, 64u);
    EXPECT_FALSE(a.alloc(1, 64).has_value());
    a.free(70, 4);
    auto r2 = a.alloc(4, 120);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->first, 70u); // found by wrap-around
}

TEST(BlockAllocator, ShortRunAccepted)
{
    BlockAllocator a(1000, 64);
    a.alloc(936, 64); // everything
    a.free(100, 3);
    auto r = a.alloc(10, 64);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->second, 3u); // shorter run returned
}

TEST(BlockAllocator, FreeCountTracks)
{
    BlockAllocator a(1000, 64);
    EXPECT_EQ(a.freeBlocks(), 936u);
    auto r = a.alloc(100, 64);
    EXPECT_EQ(a.freeBlocks(), 936u - r->second);
    a.free(r->first, r->second);
    EXPECT_EQ(a.freeBlocks(), 936u);
}

TEST(BlockAllocator, DoubleFreePanics)
{
    BlockAllocator a(1000, 64);
    auto r = a.alloc(4, 64);
    a.free(r->first, r->second);
    EXPECT_DEATH(a.free(r->first, r->second), "double free");
}

TEST(BlockAllocator, ReserveForReplay)
{
    BlockAllocator a(1000, 64);
    a.reserve(100, 8);
    EXPECT_TRUE(a.isAllocated(100));
    EXPECT_TRUE(a.isAllocated(107));
    EXPECT_DEATH(a.reserve(100, 1), "reserve of allocated");
}

class BlockAllocatorProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BlockAllocatorProperty, RandomAllocFreeNeverDoubleAllocates)
{
    sim::Rng rng(GetParam());
    BlockAllocator a(4096, 64);
    std::vector<std::pair<BlockNo, std::uint64_t>> held;
    std::set<BlockNo> owned;
    for (int i = 0; i < 500; i++) {
        if (held.empty() || rng.nextBool(0.6)) {
            auto r = a.alloc(1 + rng.nextUint(32), rng.nextUint(4096));
            if (!r)
                continue;
            for (std::uint64_t b = 0; b < r->second; b++) {
                // Never hand out a block twice.
                ASSERT_TRUE(owned.insert(r->first + b).second);
            }
            held.push_back(*r);
        } else {
            const std::size_t idx = rng.nextUint(held.size());
            auto [start, count] = held[idx];
            a.free(start, count);
            for (std::uint64_t b = 0; b < count; b++)
                owned.erase(start + b);
            held.erase(held.begin() + static_cast<long>(idx));
        }
    }
    std::uint64_t heldBlocks = 0;
    for (auto &[s, c] : held)
        heldBlocks += c;
    EXPECT_EQ(a.freeBlocks(), 4096 - 64 - heldBlocks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockAllocatorProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- Journal ---

TEST(Journal, CommitMakesDurable)
{
    Journal j;
    j.begin();
    j.log(JRecord{JOp::SetSize, 1, 100, 0, 0, {}});
    j.commit();
    ASSERT_EQ(j.committed().size(), 1u);
    EXPECT_EQ(j.committed()[0][0].b, 100u);
}

TEST(Journal, CrashDropsUncommitted)
{
    Journal j;
    j.begin();
    j.log(JRecord{JOp::SetSize, 1, 100, 0, 0, {}});
    j.crash();
    EXPECT_TRUE(j.committed().empty());
    EXPECT_FALSE(j.inTransaction());
}

TEST(Journal, NestedTransactionsCommitOnce)
{
    Journal j;
    j.begin();
    j.log(JRecord{JOp::SetSize, 1, 1, 0, 0, {}});
    j.begin();
    j.log(JRecord{JOp::SetSize, 1, 2, 0, 0, {}});
    j.commit();
    EXPECT_TRUE(j.committed().empty()); // inner commit defers
    j.commit();
    ASSERT_EQ(j.committed().size(), 1u);
    EXPECT_EQ(j.committed()[0].size(), 2u);
}

TEST(Journal, AbortDiscards)
{
    Journal j;
    j.begin();
    j.log(JRecord{JOp::SetSize, 1, 1, 0, 0, {}});
    j.abort();
    j.begin();
    j.commit();
    EXPECT_TRUE(j.committed().empty());
}

TEST(Journal, CheckpointTruncates)
{
    Journal j;
    j.begin();
    j.log(JRecord{JOp::SetSize, 1, 1, 0, 0, {}});
    j.commit();
    j.truncateAtCheckpoint();
    EXPECT_TRUE(j.committed().empty());
    EXPECT_EQ(j.committedTxns(), 1u);
}

// --- PageCache ---

TEST(PageCache, InsertFind)
{
    PageCache pc(64 * kBlockBytes);
    EXPECT_EQ(pc.find(1, 0), nullptr);
    PageCache::Page *p = pc.insert(1, 0, nullptr);
    p->data[0] = 42;
    PageCache::Page *q = pc.find(1, 0);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->data[0], 42);
}

TEST(PageCache, EvictsLruAndReturnsDirtyVictim)
{
    PageCache pc(2 * kBlockBytes); // two pages
    pc.insert(1, 0, nullptr)->dirty = true;
    pc.insert(1, 1, nullptr);
    pc.find(1, 1); // make page 0 the LRU
    std::unique_ptr<PageCache::Page> evicted;
    pc.insert(1, 2, &evicted);
    ASSERT_TRUE(evicted != nullptr);
    EXPECT_EQ(evicted->index, 0u);
    EXPECT_EQ(pc.residentPages(), 2u);
}

TEST(PageCache, CleanVictimNotReturned)
{
    PageCache pc(1 * kBlockBytes);
    pc.insert(1, 0, nullptr); // clean
    std::unique_ptr<PageCache::Page> evicted;
    pc.insert(1, 1, &evicted);
    EXPECT_EQ(evicted, nullptr);
}

TEST(PageCache, CollectDirtyCleansFlags)
{
    PageCache pc(64 * kBlockBytes);
    pc.insert(1, 0, nullptr)->dirty = true;
    pc.insert(1, 1, nullptr)->dirty = true;
    pc.insert(2, 0, nullptr)->dirty = true;
    auto dirty = pc.collectDirty(1);
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_TRUE(pc.collectDirty(1).empty());
    EXPECT_EQ(pc.collectDirty(2).size(), 1u);
}

TEST(PageCache, InvalidateDropsInode)
{
    PageCache pc(64 * kBlockBytes);
    pc.insert(1, 0, nullptr);
    pc.insert(2, 0, nullptr);
    pc.invalidate(1);
    EXPECT_EQ(pc.find(1, 0), nullptr);
    EXPECT_NE(pc.find(2, 0), nullptr);
}

TEST(PageCache, HitMissCounters)
{
    PageCache pc(64 * kBlockBytes);
    pc.find(1, 0);
    pc.insert(1, 0, nullptr);
    pc.find(1, 0);
    EXPECT_EQ(pc.hits(), 1u);
    EXPECT_EQ(pc.misses(), 1u);
}
