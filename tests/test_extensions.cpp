/**
 * @file
 * Tests for the paper's Section 5 extensions and the Moneta-D baseline:
 *  - non-blocking writes (ack-after-copy, read-your-writes, fsync drain);
 *  - container mount namespaces (isolation + direct access inside);
 *  - Moneta-D device-side protection drawbacks (miss penalty, update
 *    stalls, table thrash) versus BypassD's stable latency.
 */

#include <gtest/gtest.h>

#include "monetad/monetad.hpp"
#include "sim/stats.hpp"
#include "tests/helpers.hpp"

using namespace bpd;
using namespace bpd::test;
using fs::kOpenCreate;
using fs::kOpenDirect;
using fs::kOpenRead;
using fs::kOpenWrite;

namespace {
constexpr std::uint32_t kRw
    = kOpenRead | kOpenWrite | kOpenCreate | kOpenDirect;
} // namespace

// --- Non-blocking writes (Section 5.1) ---

namespace {

struct NbFixture : ::testing::Test
{
    std::unique_ptr<sys::System> s;
    kern::Process *p = nullptr;
    bypassd::UserLib *lib = nullptr;
    int fd = -1;

    void
    SetUp() override
    {
        sim::setVerbose(false);
        sys::SystemConfig cfg = smallConfig();
        cfg.userlib.nonBlockingWrites = true;
        s = std::make_unique<sys::System>(cfg);
        p = &s->newProcess();
        lib = &s->userLib(*p);
        const int cfd = s->kernel.setupCreateFile(*p, "/nb", 1 << 20, 7);
        kClose(*s, *p, cfd);
        fd = ulOpen(*s, *lib, "/nb", kRw);
        ASSERT_TRUE(lib->isDirect(fd));
    }
};

} // namespace

TEST_F(NbFixture, AckLatencyFarBelowDevice)
{
    auto data = pattern(4096, 1);
    const Time t0 = s->now();
    Time ackAt = 0;
    lib->pwrite(0, fd, data, 0, [&](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 4096);
        ackAt = s->now();
    });
    s->run();
    // Caller resumed after the copy (~hundreds of ns), long before the
    // ~4us device write completed.
    EXPECT_LT(ackAt - t0, 1500u);
    EXPECT_EQ(lib->nonBlockingWrites(), 1u);
    // Data is on media after the drain.
    std::vector<std::uint8_t> back(4096);
    s->kernel.setupRead(*p, fd, back, 0);
    EXPECT_EQ(back, data);
}

TEST_F(NbFixture, ReadYourWriteFromBuffer)
{
    auto data = pattern(4096, 2);
    std::vector<std::uint8_t> back(4096, 0);
    int phase = 0;
    lib->pwrite(0, fd, data, 8192, [&](long long, kern::IoTrace) {
        phase = 1;
        // Immediately read it back: must be served from the pending
        // buffer, observing the new data even though the device write
        // has not landed yet.
        lib->pread(0, fd, back, 8192, [&](long long n, kern::IoTrace) {
            EXPECT_EQ(n, 4096);
            phase = 2;
        });
    });
    s->run();
    EXPECT_EQ(phase, 2);
    EXPECT_EQ(back, data);
    EXPECT_GE(lib->pendingReadHits(), 1u);
}

TEST_F(NbFixture, PartialOverlapReadWaitsForDevice)
{
    auto data = pattern(4096, 3);
    std::vector<std::uint8_t> wide(8192, 0);
    int done = 0;
    lib->pwrite(0, fd, data, 4096, [&](long long, kern::IoTrace) {
        done++;
    });
    // Read covering [0, 8192): overlaps the pending write partially.
    lib->pread(1, fd, wide, 0, [&](long long n, kern::IoTrace) {
        EXPECT_EQ(n, 8192);
        done++;
    });
    s->run();
    EXPECT_EQ(done, 2);
    // The second half must be the written data.
    EXPECT_TRUE(std::equal(data.begin(), data.end(), wide.begin() + 4096));
}

TEST_F(NbFixture, OverlappingWritesSerializeLastWins)
{
    auto d1 = std::vector<std::uint8_t>(4096, 0x11);
    auto d2 = std::vector<std::uint8_t>(4096, 0x22);
    int done = 0;
    lib->pwrite(0, fd, d1, 0, [&](long long, kern::IoTrace) { done++; });
    lib->pwrite(0, fd, d2, 0, [&](long long, kern::IoTrace) { done++; });
    s->run();
    EXPECT_EQ(done, 2);
    std::vector<std::uint8_t> back(4096);
    s->kernel.setupRead(*p, fd, back, 0);
    EXPECT_EQ(back, d2);
}

TEST_F(NbFixture, FsyncDrainsPendingWrites)
{
    auto data = pattern(4096, 4);
    bool wrote = false, synced = false;
    lib->pwrite(0, fd, data, 0, [&](long long, kern::IoTrace) {
        wrote = true;
    });
    lib->fsync(0, fd, [&](int rc) {
        EXPECT_EQ(rc, 0);
        synced = true;
        // By fsync completion the data must be durable on media.
        std::vector<std::uint8_t> back(4096);
        s->kernel.setupRead(*p, fd, back, 0);
        EXPECT_TRUE(std::equal(back.begin(), back.end(), data.begin()));
    });
    s->run();
    EXPECT_TRUE(wrote);
    EXPECT_TRUE(synced);
}

TEST_F(NbFixture, ThroughputExceedsBlockingWrites)
{
    // 64 back-to-back 4 KiB writes to distinct offsets.
    auto data = pattern(4096, 5);
    const Time t0 = s->now();
    int done = 0;
    std::function<void(int)> loop = [&](int i) {
        if (i >= 64) {
            done = i;
            return;
        }
        lib->pwrite(0, fd, data, static_cast<std::uint64_t>(i) * 4096,
                    [&loop, i](long long, kern::IoTrace) {
                        loop(i + 1);
                    });
    };
    loop(0);
    s->run();
    EXPECT_EQ(done, 64);
    const Time nbElapsed = s->now() - t0;
    // Blocking writes would take >= 64 * ~4.3us; non-blocking callers
    // only serialize on the copy, and the device absorbs them in
    // parallel across its units.
    EXPECT_LT(nbElapsed, 64 * 4300ull);
}

// --- Containers (Section 5.2) ---

TEST(Containers, NamespaceIsolation)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &host = s.newProcess(1000);
    kern::Process &c1 = s.newProcess(1000);
    kern::Process &c2 = s.newProcess(1000);
    ASSERT_EQ(s.kernel.setNamespaceRoot(c1, "/containers/c1"),
              fs::FsStatus::NoEnt); // parent missing
    s.ext4.mkdir("/containers", 0777, fs::Credentials{0, 0}, nullptr);
    ASSERT_EQ(s.kernel.setNamespaceRoot(c1, "/containers/c1"),
              fs::FsStatus::Ok);
    ASSERT_EQ(s.kernel.setNamespaceRoot(c2, "/containers/c2"),
              fs::FsStatus::Ok);

    // Same app-visible path, different files.
    const int f1 = s.kernel.setupCreateFile(c1, "/data.db", 1 << 20, 1);
    const int f2 = s.kernel.setupCreateFile(c2, "/data.db", 1 << 20, 2);
    ASSERT_GE(f1, 0);
    ASSERT_GE(f2, 0);
    InodeNum i1, i2;
    ASSERT_EQ(s.ext4.resolve("/containers/c1/data.db", &i1),
              fs::FsStatus::Ok);
    ASSERT_EQ(s.ext4.resolve("/containers/c2/data.db", &i2),
              fs::FsStatus::Ok);
    EXPECT_NE(i1, i2);

    // A container cannot reach host files by host path.
    s.kernel.setupCreateFile(host, "/host-secret", 4096, 3);
    EXPECT_LT(s.kernel.setupOpen(c1, "/host-secret", kOpenRead), 0);

    // Distinct contents round-trip independently.
    std::vector<std::uint8_t> b1(64), b2(64);
    s.kernel.setupRead(c1, f1, b1, 0);
    s.kernel.setupRead(c2, f2, b2, 0);
    EXPECT_NE(b1, b2);
}

TEST(Containers, BypassdWorksInsideContainer)
{
    sim::setVerbose(false);
    sys::System s(smallConfig());
    kern::Process &c1 = s.newProcess(1000);
    s.ext4.mkdir("/containers", 0777, fs::Credentials{0, 0}, nullptr);
    ASSERT_EQ(s.kernel.setNamespaceRoot(c1, "/containers/c1"),
              fs::FsStatus::Ok);
    const int cfd = s.kernel.setupCreateFile(c1, "/db", 4 << 20, 7);
    kClose(s, c1, cfd);

    bypassd::UserLib &lib = s.userLib(c1);
    const int fd = ulOpen(s, lib, "/db", kOpenRead | kOpenDirect);
    ASSERT_GE(fd, 0);
    // BypassD works readily with containers (Section 5.2): the kernel
    // resolved the namespaced path and installed FTEs as usual.
    EXPECT_TRUE(lib.isDirect(fd));
    std::vector<std::uint8_t> buf(4096);
    EXPECT_EQ(ulPread(s, lib, 0, fd, buf, 0).n, 4096);
    std::vector<std::uint8_t> expect(4096);
    s.kernel.setupRead(c1, fd, expect, 0);
    EXPECT_EQ(buf, expect);
}

// --- Moneta-D baseline ---

namespace {

struct MonetadFixture : ::testing::Test
{
    sys::System s{smallConfig()};
    kern::Process *p = nullptr;
    std::unique_ptr<monetad::MonetadEngine> md;
    int fd = -1;
    fs::Inode *ino = nullptr;

    void
    SetUp() override
    {
        sim::setVerbose(false);
        p = &s.newProcess();
        md = std::make_unique<monetad::MonetadEngine>(s.kernel);
        fd = s.kernel.setupCreateFile(*p, "/md", 8 << 20, 7);
        ino = s.ext4.inode(p->file(fd)->ino);
        md->installPermissions(*p, *ino, true);
        s.run();
    }

    Time
    readOnce(std::uint64_t off)
    {
        const Time t0 = s.now();
        std::vector<std::uint8_t> buf(4096);
        long long got = -1;
        md->read(0, *p, *ino, buf, off,
                 [&](long long n, kern::IoTrace) { got = n; });
        s.run();
        EXPECT_EQ(got, 4096);
        return s.now() - t0;
    }
};

} // namespace

TEST_F(MonetadFixture, HitLatencyNearSpdk)
{
    s.eq.runUntil(s.now() + 1 * kMs); // let the install stall pass
    const Time lat = readOnce(0);
    // Hit path: userspace + device-table check + media: ~4.5us.
    EXPECT_LT(lat, 5200u);
    EXPECT_GE(md->tableHits(), 1u);
}

TEST_F(MonetadFixture, MissPaysRecoveryPenalty)
{
    s.eq.runUntil(s.now() + 1 * kMs);
    // Evict this file's extent record by flooding the bounded device
    // table with records for many other files (Section 2 drawback 2).
    kern::Process &other = s.newProcess();
    for (unsigned i = 0; i < 1100; i++) {
        const int f = s.kernel.setupCreateFile(
            other, "/f" + std::to_string(i), 4096, 0);
        md->installPermissions(other, *s.ext4.inode(other.file(f)->ino),
                               false);
    }
    s.eq.runUntil(s.now() + 100 * kMs); // drain install stalls

    const Time lat = readOnce(0);
    // Miss: ~30us recovery penalty dominates (Section 2: "can increase
    // the I/O latency by 8x").
    EXPECT_GT(lat, 30 * kUs);
    EXPECT_GE(md->tableMisses(), 1u);
    // And the record is re-installed: next access is fast again.
    const Time lat2 = readOnce(0);
    EXPECT_LT(lat2, 5200u);
}

TEST_F(MonetadFixture, PermissionUpdateStallsIo)
{
    s.eq.runUntil(s.now() + 1 * kMs);
    const Time fast = readOnce(0);
    // Another process opens a file -> permission install stalls service.
    kern::Process &other = s.newProcess();
    const int ofd = s.kernel.setupCreateFile(other, "/o", 1 << 20, 1);
    md->installPermissions(other, *s.ext4.inode(other.file(ofd)->ino),
                           true);
    const Time stalled = readOnce(4096);
    EXPECT_GT(stalled, fast + 30 * kUs);
    EXPECT_GE(md->updateStalls(), 2u);
}

TEST_F(MonetadFixture, DeniedWithoutPermission)
{
    s.eq.runUntil(s.now() + 1 * kMs);
    // A foreign process without file permission: the miss-recovery path
    // consults the kernel, which refuses.
    kern::Process &evil = s.newProcess(9999, 9999);
    ino->mode = 0600;
    std::vector<std::uint8_t> buf(4096);
    long long got = 0;
    md->read(1, evil, *ino, buf, 0,
             [&](long long n, kern::IoTrace) { got = n; });
    s.run();
    EXPECT_LT(got, 0);
}

TEST_F(MonetadFixture, BypassdTailStableUnderChurnMonetadNot)
{
    s.eq.runUntil(s.now() + 1 * kMs);
    // BypassD equivalent setup on the same system.
    kern::Process &bp = s.newProcess();
    const int cfd = s.kernel.setupCreateFile(bp, "/bp", 8 << 20, 7);
    kClose(s, bp, cfd);
    bypassd::UserLib &lib = s.userLib(bp);
    const int bfd = ulOpen(s, lib, "/bp", kOpenRead | kOpenDirect);
    ASSERT_TRUE(lib.isDirect(bfd));

    sim::Histogram mdLat, bpLat;
    sim::Rng rng(3);
    kern::Process &churner = s.newProcess();
    for (int i = 0; i < 120; i++) {
        // Permission churn: a third process keeps opening fresh files.
        if (i % 3 == 0) {
            const int f = s.kernel.setupCreateFile(
                churner, "/churn" + std::to_string(i), 4096, 0);
            md->installPermissions(
                churner, *s.ext4.inode(churner.file(f)->ino), false);
        }
        const std::uint64_t off = rng.nextUint((8 << 20) / 4096) * 4096;
        mdLat.record(readOnce(off));
        const Time t0 = s.now();
        std::vector<std::uint8_t> buf(4096);
        lib.pread(0, bfd, buf, off, [](long long, kern::IoTrace) {});
        s.run();
        bpLat.record(s.now() - t0);
    }
    // BypassD: tight distribution. Moneta-D: update stalls poison the
    // tail (Section 2: "unpredictable performance ... high tail
    // latencies").
    EXPECT_LT(bpLat.p999(), 8 * kUs);
    EXPECT_GT(mdLat.p999(), 20 * kUs);
    EXPECT_LT(bpLat.mean() * 1.5, mdLat.mean());
}
