/**
 * @file
 * trace_replay: re-drive the replay streams embedded in a trace file
 * produced by the bench binaries' --trace flag (obs::writeChromeTrace).
 *
 *   trace_replay TRACE.json [options]
 *
 *   --list                  show replay streams and exit
 *   --label NAME            replay only the stream named NAME
 *   --drift                 per-lane issue-time drift report
 *                           (recorded vs replayed)
 *   --verify                require bit-identical digests/counters vs
 *                           the capture metadata (no overrides allowed)
 *   --out FILE              write replay results as bypassd-bench-v1
 *                           JSON (perf_report-diffable)
 *   --emit-capture FILE     write the *recorded* metadata in the same
 *                           schema, for diffing capture vs replay
 *   --engine E              re-drive under engine E (sync, libaio,
 *                           io_uring, spdk, bypassd); spdk lays the
 *                           recorded files out as raw device regions
 *                           (DESIGN.md §10, "Raw-region mapping")
 *   --strict                with --engine spdk, refuse fsync records
 *                           instead of replaying them as no-op
 *                           barriers
 *   --lanes N               replay only the first N lanes
 *   --iotlb-entries N       IOTLB capacity override
 *   --iotlb-ways N          IOTLB associativity override
 *   --walk-cache-entries N  walk-cache capacity override
 *   --ssd-read-ns N         SSD read base latency override
 *   --ssd-write-ns N        SSD write base latency override
 *
 * Exit status: 0 success; 1 verify mismatch or unreplayable trace
 * (partial stream, no replay section, bad override target); 2 usage,
 * I/O, or parse errors. Without --label, partial streams are skipped
 * with a notice instead of failing the file (multi-stream traces can
 * mix replayable single-machine runs with replay-unsupported fleet
 * captures); exit 1 only when nothing was replayable. An explicit
 * --label naming a partial stream still errors.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/replay.hpp"

using namespace bpd;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s TRACE.json [--list] [--label NAME] "
                 "[--verify] [--drift]\n"
                 "          [--out FILE] [--emit-capture FILE]\n"
                 "          [--engine sync|libaio|io_uring|spdk|bypassd]"
                 " [--strict]\n"
                 "          [--lanes N]\n"
                 "          [--iotlb-entries N] [--iotlb-ways N] "
                 "[--walk-cache-entries N]\n"
                 "          [--ssd-read-ns N] [--ssd-write-ns N]\n",
                 argv0);
    return 2;
}

bool
parseEngine(const std::string &name, int &out)
{
    static const std::pair<const char *, wl::Engine> names[] = {
        {"sync", wl::Engine::Sync},       {"libaio", wl::Engine::Libaio},
        {"io_uring", wl::Engine::IoUring}, {"uring", wl::Engine::IoUring},
        {"spdk", wl::Engine::Spdk},       {"bypassd", wl::Engine::Bypassd},
    };
    for (const auto &[n, e] : names) {
        if (name == n) {
            out = static_cast<int>(e);
            return true;
        }
    }
    return false;
}

/** One output row: either recorded metadata or a replay result. */
struct Row
{
    std::string name;
    std::uint64_t events = 0;
    Time simNs = 0;
    double wallSec = 0;
    double metric = 0; //!< replayed data ops
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::uint64_t digest = 0;
};

bool
writeBenchJson(const std::string &path, const std::string &label,
               const std::vector<Row> &rows)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "trace_replay: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  \"schema\": \"bypassd-bench-v1\",\n");
    std::fprintf(f, "  \"label\": \"%s\",\n", label.c_str());
    std::fprintf(f, "  \"quick\": true,\n");
    std::fprintf(f, "  \"peak_rss_bytes\": 0,\n");
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        const double wall = r.wallSec > 0 ? r.wallSec : 1e-9;
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
        std::fprintf(f, "      \"events\": %" PRIu64 ",\n", r.events);
        std::fprintf(f, "      \"sim_ns\": %" PRIu64 ",\n",
                     (std::uint64_t)r.simNs);
        std::fprintf(f, "      \"wall_sec\": %.6f,\n", r.wallSec);
        std::fprintf(f, "      \"events_per_sec\": %.1f,\n",
                     (double)r.events / wall);
        std::fprintf(f, "      \"replay_ops\": %.3f,\n", r.metric);
        for (const auto &[k, v] : r.counters)
            std::fprintf(f, "      \"%s\": %" PRIu64 ",\n", k.c_str(),
                         v);
        std::fprintf(f, "      \"digest\": \"%016" PRIx64 "\"\n",
                     r.digest);
        std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

void
listProcesses(const obs::RecordedTrace &trace)
{
    for (const auto &p : trace.processes) {
        std::uint64_t data = 0;
        for (const auto &r : p.ops)
            if (r.op == obs::ReplayRec::Read
                || r.op == obs::ReplayRec::Write
                || r.op == obs::ReplayRec::Fsync)
                data++;
        std::printf("%-28s pid=%-4u records=%-7zu data_ops=%-7" PRIu64
                    " files=%zu%s%s\n",
                    p.name.c_str(), p.pid, p.ops.size(), data,
                    p.files.size(), p.hasMeta ? " meta" : "",
                    p.partial ? " PARTIAL" : "");
        if (p.partial)
            for (const auto &m : p.missing)
                std::printf("    unreplayable: %s\n", m.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string tracePath, outPath, capturePath, label;
    bool list = false, verify = false, drift = false;
    obs::ReplayOptions opt;

    for (int i = 1; i < argc; i++) {
        const std::string a = argv[i];
        auto val = [&](std::int64_t &dst) {
            if (i + 1 >= argc)
                return false;
            dst = std::atoll(argv[++i]);
            return true;
        };
        if (a == "--list") {
            list = true;
        } else if (a == "--verify") {
            verify = true;
        } else if (a == "--drift") {
            drift = true;
        } else if (a == "--strict") {
            opt.strict = true;
        } else if (a == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (a == "--emit-capture" && i + 1 < argc) {
            capturePath = argv[++i];
        } else if (a == "--label" && i + 1 < argc) {
            label = argv[++i];
        } else if (a == "--engine" && i + 1 < argc) {
            if (!parseEngine(argv[++i], opt.engine)) {
                std::fprintf(stderr,
                             "trace_replay: unknown engine \"%s\"\n",
                             argv[i]);
                return 2;
            }
        } else if (a == "--lanes" && i + 1 < argc) {
            opt.lanes = static_cast<std::uint32_t>(
                std::atoll(argv[++i]));
        } else if (a == "--iotlb-entries") {
            if (!val(opt.iotlbEntries))
                return usage(argv[0]);
        } else if (a == "--iotlb-ways") {
            if (!val(opt.iotlbWays))
                return usage(argv[0]);
        } else if (a == "--walk-cache-entries") {
            if (!val(opt.walkCacheEntries))
                return usage(argv[0]);
        } else if (a == "--ssd-read-ns") {
            if (!val(opt.ssdReadNs))
                return usage(argv[0]);
        } else if (a == "--ssd-write-ns") {
            if (!val(opt.ssdWriteNs))
                return usage(argv[0]);
        } else if (!a.empty() && a[0] == '-') {
            return usage(argv[0]);
        } else if (tracePath.empty()) {
            tracePath = a;
        } else {
            return usage(argv[0]);
        }
    }
    if (tracePath.empty())
        return usage(argv[0]);
    if (verify && opt.overridesConfig()) {
        std::fprintf(stderr,
                     "trace_replay: --verify checks the round-trip "
                     "contract and cannot be combined with overrides\n");
        return 2;
    }

    obs::RecordedTrace trace;
    std::string err;
    if (!obs::loadRecordedTrace(tracePath, trace, err)) {
        std::fprintf(stderr, "trace_replay: %s\n", err.c_str());
        return 2;
    }
    if (trace.processes.empty()) {
        std::fprintf(stderr,
                     "trace_replay: %s has no replay streams — "
                     "re-capture with a bench binary's --trace flag\n",
                     tracePath.c_str());
        return 1;
    }
    if (list) {
        listProcesses(trace);
        return 0;
    }

    std::vector<Row> captureRows, replayRows;
    bool anyRun = false, mismatch = false;
    unsigned skippedPartial = 0;
    for (const auto &p : trace.processes) {
        if (!label.empty() && p.name != label)
            continue;
        // Without an explicit --label, a partial stream (e.g. a fleet
        // capture marked replay-unsupported) is skipped rather than
        // failing the whole file; naming it with --label still errors,
        // because then the user asked for exactly that stream.
        if (p.partial && label.empty()) {
            std::string why;
            for (const auto &m : p.missing)
                why += (why.empty() ? "" : ", ") + m;
            std::fprintf(stderr,
                         "trace_replay: skipping \"%s\": partial "
                         "stream (unreplayable ops: %s)\n",
                         p.name.c_str(), why.c_str());
            skippedPartial++;
            continue;
        }
        anyRun = true;

        if (p.hasMeta) {
            Row cr;
            cr.name = p.name;
            cr.events = p.events;
            cr.simNs = p.simNs;
            // No wall time is recorded at capture; use simulated
            // seconds so events_per_sec stays a sane magnitude.
            cr.wallSec = static_cast<double>(p.simNs) * 1e-9;
            cr.counters = p.counters;
            cr.digest = p.digest;
            for (const auto &r : p.ops)
                if (r.op == obs::ReplayRec::Read
                    || r.op == obs::ReplayRec::Write
                    || r.op == obs::ReplayRec::Fsync)
                    cr.metric++;
            captureRows.push_back(std::move(cr));
        }
        if (verify && !p.hasMeta) {
            std::fprintf(stderr,
                         "trace_replay: \"%s\" carries no capture "
                         "metadata; --verify needs a trace written by "
                         "this tree's bench binaries\n",
                         p.name.c_str());
            return 1;
        }

        const auto t0 = std::chrono::steady_clock::now();
        obs::ReplayResult res;
        if (!obs::replayRun(p, opt, res, err)) {
            std::fprintf(stderr, "trace_replay: \"%s\": %s\n",
                         p.name.c_str(), err.c_str());
            return 1;
        }
        const double wall
            = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();

        Row rr;
        rr.name = p.name;
        rr.events = res.events;
        rr.simNs = res.simNs;
        rr.wallSec = wall;
        rr.metric = static_cast<double>(res.ops);
        rr.counters = res.counters;
        rr.digest = res.digest;

        // Mapping table and per-lane drift ride along as flat counter
        // keys: perf_report's union-of-keys diff annotates them as
        // (added) against the capture without failing, so a BypassD
        // capture diffs directly against its SPDK lower-bound replay.
        if (!res.regionMap.empty()) {
            std::uint64_t totalBytes = 0;
            for (const auto &e : res.regionMap)
                totalBytes += e.bytes;
            rr.counters.emplace_back("map.regions",
                                     res.regionMap.size());
            rr.counters.emplace_back("map.bytes", totalBytes);
            for (std::size_t j = 0; j < res.regionMap.size(); j++) {
                const auto &e = res.regionMap[j];
                const std::string pre
                    = "map.r" + std::to_string(j) + ".";
                rr.counters.emplace_back(pre + "base", e.base);
                rr.counters.emplace_back(pre + "bytes", e.bytes);
                rr.counters.emplace_back(pre + "ops", e.ops);
            }
        }
        for (const auto &d : res.laneDrift) {
            const std::string lane
                = d.lane == obs::ReplayRec::kMainLane
                      ? std::string("main")
                      : "l" + std::to_string(d.lane);
            const std::string pre = "drift.p" + std::to_string(d.proc)
                                    + "." + lane + ".";
            rr.counters.emplace_back(
                pre + "mean_ns",
                static_cast<std::uint64_t>(d.meanAbsNs + 0.5));
            rr.counters.emplace_back(pre + "max_ns",
                                     (std::uint64_t)d.maxAbsNs);
        }
        replayRows.push_back(std::move(rr));

        std::printf("%-28s ops=%-8" PRIu64 " sim_ns=%-12" PRIu64
                    " events=%-9" PRIu64 " digest=%016" PRIx64 "\n",
                    p.name.c_str(), res.ops, (std::uint64_t)res.simNs,
                    res.events, res.digest);

        if (!res.regionMap.empty()) {
            std::printf("  raw-region map (file -> device bytes):\n");
            std::printf("    %-12s %-12s %-8s %s\n", "base", "bytes",
                        "ops", "path");
            for (const auto &e : res.regionMap)
                std::printf("    %-12" PRIu64 " %-12" PRIu64 " %-8"
                            PRIu64 " %s\n",
                            (std::uint64_t)e.base, e.bytes, e.ops,
                            e.path.c_str());
        }

        if (drift) {
            std::printf("  issue-time drift vs capture:\n");
            std::printf("    %-6s %-6s %-8s %-14s %-14s\n", "proc",
                        "lane", "ops", "mean_abs_ns", "max_abs_ns");
            for (const auto &d : res.laneDrift) {
                char lane[16];
                if (d.lane == obs::ReplayRec::kMainLane)
                    std::snprintf(lane, sizeof lane, "main");
                else
                    std::snprintf(lane, sizeof lane, "%u", d.lane);
                std::printf("    %-6u %-6s %-8" PRIu64 " %-14.1f %-14"
                            PRIu64 "\n",
                            d.proc, lane, d.ops, d.meanAbsNs,
                            (std::uint64_t)d.maxAbsNs);
            }
            if (res.laneDrift.empty())
                std::printf("    (no comparable records)\n");
        }

        if (verify) {
            bool ok = res.digest == p.digest;
            if (!ok)
                std::printf("  FAIL digest: recorded %016" PRIx64
                            " replayed %016" PRIx64 "\n",
                            p.digest, res.digest);
            for (const auto &[k, v] : res.counters) {
                for (const auto &[rk, rv] : p.counters) {
                    if (rk == k && rv != v) {
                        std::printf("  FAIL counter %s: recorded %" PRIu64
                                    " replayed %" PRIu64 "\n",
                                    k.c_str(), rv, v);
                        ok = false;
                    }
                }
            }
            if (ok)
                std::printf("  round-trip OK\n");
            else
                mismatch = true;
        }
    }

    if (!anyRun) {
        if (label.empty())
            std::fprintf(stderr,
                         "trace_replay: all %u stream%s in %s are "
                         "partial — nothing replayable\n",
                         skippedPartial, skippedPartial == 1 ? "" : "s",
                         tracePath.c_str());
        else
            std::fprintf(stderr,
                         "trace_replay: no replay stream named \"%s\"\n",
                         label.c_str());
        return 1;
    }
    if (!capturePath.empty()) {
        if (captureRows.empty()) {
            std::fprintf(stderr,
                         "trace_replay: --emit-capture needs capture "
                         "metadata in the trace\n");
            return 1;
        }
        if (!writeBenchJson(capturePath, "capture", captureRows))
            return 2;
    }
    if (!outPath.empty()
        && !writeBenchJson(outPath, "replay", replayRows))
        return 2;
    return mismatch ? 1 : 0;
}
