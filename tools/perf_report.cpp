/**
 * @file
 * perf_report: compares two perf_harness JSON outputs (baseline vs
 * current), prints a speedup table, checks that per-scenario digests
 * match (bit-identical simulated results), and writes a merged
 * BENCH_PR.json suitable for attaching to a PR.
 *
 * Usage:
 *   perf_report <baseline.json> <current.json> [--out BENCH_PR.json]
 *               [--max-rss-growth PCT]
 *
 * --max-rss-growth makes peak-RSS regressions gating: the report exits
 * non-zero when the current run's peak RSS exceeds the baseline's by
 * more than PCT percent (skipped when either side lacks RSS data).
 *
 * When both sides carry shard data ("shards" in a scenario object) a
 * shard-scaling table is printed: events/sec at each shard count and
 * the parallel efficiency of the current run relative to the baseline.
 *
 * Also diffs the per-scenario simulated metric counters (events
 * executed, IOTLB hit rate, page walks, journal commits, ...) that
 * newer harness outputs embed in each scenario object; scenarios or
 * baselines without them show "-".
 *
 * Exit status is non-zero if any scenario present in both files has a
 * digest mismatch, so CI can gate on simulation-result identity.
 *
 * The parser below handles exactly the "bypassd-bench-v1" schema that
 * perf_harness emits (flat objects, string/number/bool scalars, one
 * "scenarios" array of flat objects) — it is not a general JSON parser.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Scenario
{
    std::string name;
    std::map<std::string, std::string> fields; // raw scalar tokens
};

struct BenchFile
{
    std::map<std::string, std::string> fields; // top-level scalars
    std::vector<Scenario> scenarios;
};

/** Tokenizing cursor over the JSON text. */
struct Cursor
{
    const std::string &s;
    std::size_t i = 0;

    void
    skipWs()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\n'
                                || s[i] == '\t' || s[i] == '\r'))
            i++;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (i < s.size() && s[i] == c) {
            i++;
            return true;
        }
        return false;
    }

    [[noreturn]] void
    fail(const char *what) const
    {
        std::fprintf(stderr, "perf_report: parse error near byte %zu: %s\n",
                     i, what);
        std::exit(2);
    }

    std::string
    parseString()
    {
        skipWs();
        if (i >= s.size() || s[i] != '"')
            fail("expected string");
        i++;
        std::string out;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size())
                i++;
            out += s[i++];
        }
        if (i >= s.size())
            fail("unterminated string");
        i++;
        return out;
    }

    /** A number / true / false / null, returned as its raw token. */
    std::string
    parseScalarToken()
    {
        skipWs();
        std::size_t start = i;
        while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']'
               && s[i] != '\n')
            i++;
        std::string t = s.substr(start, i - start);
        while (!t.empty() && (t.back() == ' ' || t.back() == '\r'))
            t.pop_back();
        if (t.empty())
            fail("expected scalar value");
        return t;
    }

    /** Flat object: string keys mapping to scalars only. */
    std::map<std::string, std::string>
    parseFlatObject()
    {
        std::map<std::string, std::string> out;
        if (!eat('{'))
            fail("expected '{'");
        skipWs();
        if (eat('}'))
            return out;
        for (;;) {
            const std::string key = parseString();
            if (!eat(':'))
                fail("expected ':'");
            skipWs();
            if (i < s.size() && s[i] == '"')
                out[key] = parseString();
            else
                out[key] = parseScalarToken();
            if (eat(','))
                continue;
            if (eat('}'))
                return out;
            fail("expected ',' or '}'");
        }
    }
};

BenchFile
parseBenchFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "perf_report: cannot open %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    BenchFile bf;
    Cursor c{text};
    if (!c.eat('{'))
        c.fail("expected top-level '{'");
    for (;;) {
        const std::string key = c.parseString();
        if (!c.eat(':'))
            c.fail("expected ':'");
        if (key == "scenarios") {
            if (!c.eat('['))
                c.fail("expected '['");
            c.skipWs();
            if (!c.eat(']')) {
                for (;;) {
                    Scenario sc;
                    sc.fields = c.parseFlatObject();
                    sc.name = sc.fields.count("name")
                                  ? sc.fields["name"]
                                  : "?";
                    bf.scenarios.push_back(std::move(sc));
                    if (c.eat(','))
                        continue;
                    if (c.eat(']'))
                        break;
                    c.fail("expected ',' or ']'");
                }
            }
        } else {
            c.skipWs();
            if (c.i < text.size() && text[c.i] == '"')
                bf.fields[key] = c.parseString();
            else
                bf.fields[key] = c.parseScalarToken();
        }
        if (c.eat(','))
            continue;
        if (c.eat('}'))
            break;
        c.fail("expected ',' or '}'");
    }
    const auto it = bf.fields.find("schema");
    if (it == bf.fields.end() || it->second != "bypassd-bench-v1") {
        std::fprintf(stderr,
                     "perf_report: %s: unsupported schema (want "
                     "bypassd-bench-v1)\n",
                     path.c_str());
        std::exit(2);
    }
    return bf;
}

double
numField(const Scenario &s, const char *key)
{
    const auto it = s.fields.find(key);
    return it == s.fields.end() ? 0.0 : std::atof(it->second.c_str());
}

std::string
strField(const Scenario &s, const char *key)
{
    const auto it = s.fields.find(key);
    return it == s.fields.end() ? std::string() : it->second;
}

const Scenario *
findScenario(const BenchFile &bf, const std::string &name)
{
    for (const Scenario &s : bf.scenarios)
        if (s.name == name)
            return &s;
    return nullptr;
}

bool
hasField(const Scenario &s, const char *key)
{
    return s.fields.count(key) != 0;
}

/** One "base -> cur" cell of the counter diff table ("-" if absent). */
std::string
counterCell(const Scenario *s, const char *key)
{
    if (!s || !hasField(*s, key))
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", numField(*s, key));
    return buf;
}

/**
 * Non-counter scenario fields: identity, host-side timing, and derived
 * throughput metrics. Everything else in a scenario object is a
 * simulated counter and belongs in the diff table.
 */
bool
isCounterKey(const std::string &k)
{
    static const char *const kSkip[] = {
        "name", "digest", "wall_sec", "events_per_sec",
        "iops", "kops",   "mb_per_s",
        // Sharding config and host-side scheduling artifacts. Note that
        // "windows" and "messages" are NOT skipped: the round count and
        // cross-domain traffic are virtual-time quantities, identical
        // for every shard count, so they belong in the semantic diff.
        "shards", "domains", "lookahead_ns", "barrier_stall_sec",
    };
    for (const char *s : kSkip)
        if (k == s)
            return false;
    // Per-shard event counts depend on placement, not simulation.
    if (k.rfind("shard_", 0) == 0)
        return false;
    return true;
}

/**
 * Shard-scaling table: for every scenario carrying shard data on both
 * sides, relate events/sec to shard count. Parallel efficiency is the
 * speedup divided by the shard-count ratio — 100% means the extra
 * shards were fully converted into throughput.
 */
void
printShardScaling(const BenchFile &base, const BenchFile &cur)
{
    // Efficiency is only meaningful when the host can actually run the
    // shards in parallel: with more shards than cores the threads
    // time-slice one another and eff% measures the scheduler, not the
    // executor. Flag those rows instead of printing a misleading number.
    double cpus = 0;
    if (cur.fields.count("host_cpus"))
        cpus = std::atof(cur.fields.at("host_cpus").c_str());
    bool any = false;
    bool anyCoreLimited = false;
    for (const Scenario &c : cur.scenarios) {
        const Scenario *b = findScenario(base, c.name);
        if (!b || !hasField(*b, "shards") || !hasField(c, "shards"))
            continue;
        const double bs = numField(*b, "shards");
        const double cs = numField(c, "shards");
        const double be = numField(*b, "events_per_sec");
        const double ce = numField(c, "events_per_sec");
        if (bs <= 0 || cs <= 0 || be <= 0)
            continue;
        if (!any) {
            std::printf("\nshard scaling (events/sec vs shards):\n");
            std::printf("  %-26s %6s %6s %12s %12s %8s %8s\n",
                        "scenario", "shards", "shards", "base ev/s",
                        "cur ev/s", "speedup", "eff%");
        }
        any = true;
        const double speedup = ce / be;
        const bool coreLimited = cpus > 0 && cs > cpus;
        anyCoreLimited |= coreLimited;
        if (coreLimited) {
            std::printf("  %-26s %6.0f %6.0f %12.0f %12.0f %7.2fx %8s\n",
                        c.name.c_str(), bs, cs, be, ce, speedup,
                        "core-ltd");
        } else {
            const double eff = 100.0 * speedup / (cs / bs);
            std::printf("  %-26s %6.0f %6.0f %12.0f %12.0f %7.2fx %7.1f%%\n",
                        c.name.c_str(), bs, cs, be, ce, speedup, eff);
        }
    }
    if (any && cpus > 0) {
        std::printf("  (current host has %.0f cpu%s — speedup is "
                    "bounded by physical cores)\n",
                    cpus, cpus == 1 ? "" : "s");
        if (anyCoreLimited)
            std::printf("  (core-ltd: more shards than host cpus; "
                        "threads time-slice, so parallel efficiency "
                        "is not measurable)\n");
    }
}

/**
 * Per-reactor breakdown: scenarios that carry the fabric target's lane
 * accounting ("reactors" + "reactor.N.*") get a per-lane table with a
 * busy-imbalance summary. The conn→reactor striping is deterministic,
 * so a skewed lane here means the connection population is skewed —
 * not that the run raced.
 */
void
printReactorBreakdown(const BenchFile &cur)
{
    bool any = false;
    for (const Scenario &c : cur.scenarios) {
        if (!hasField(c, "reactors"))
            continue;
        const unsigned n = static_cast<unsigned>(numField(c, "reactors"));
        if (n == 0 || !hasField(c, "reactor.0.capsules"))
            continue;
        if (!any)
            std::printf("\nper-reactor breakdown (current):\n");
        any = true;
        std::printf("  %s\n", c.name.c_str());
        std::printf("    %7s %10s %12s %14s\n", "reactor", "capsules",
                    "rdma_setups", "busy_ns");
        double busyMin = 0, busyMax = 0;
        for (unsigned r = 0; r < n; r++) {
            char key[48];
            std::snprintf(key, sizeof(key), "reactor.%u.capsules", r);
            const double caps = numField(c, key);
            std::snprintf(key, sizeof(key), "reactor.%u.rdma_setups", r);
            const double rdma = numField(c, key);
            std::snprintf(key, sizeof(key), "reactor.%u.busy_ns", r);
            const double busy = numField(c, key);
            std::printf("    %7u %10.0f %12.0f %14.0f\n", r, caps, rdma,
                        busy);
            busyMin = r == 0 ? busy : std::min(busyMin, busy);
            busyMax = std::max(busyMax, busy);
        }
        if (n > 1 && busyMin > 0)
            std::printf("    busy imbalance (max/min): %.2fx\n",
                        busyMax / busyMin);
    }
}

/**
 * Per-device breakdown: scenarios that carry device-map accounting
 * ("devices" + "dev.N.*", emitted by fleet benches) get a per-slot
 * table. The two ops columns come from independent ledgers — the
 * device's own hardware counter and the per-(device, tenant)
 * accounting rows folded over tenants — so a row where they disagree
 * means the tenant attribution leaked, not that the run raced.
 */
void
printDeviceBreakdown(const BenchFile &cur)
{
    bool any = false;
    for (const Scenario &c : cur.scenarios) {
        if (!hasField(c, "devices"))
            continue;
        const unsigned n = static_cast<unsigned>(numField(c, "devices"));
        if (n == 0 || !hasField(c, "dev.0.device_ops"))
            continue;
        if (!any)
            std::printf("\nper-device breakdown (current):\n");
        any = true;
        std::printf("  %s\n", c.name.c_str());
        std::printf("    %4s %6s %10s %8s %10s %10s %10s %12s %9s\n",
                    "slot", "dev_id", "dev_ops", "writes", "p50_ns",
                    "p99_ns", "acct_ops", "acct_bytes", "bytes/op");
        double opsMin = 0, opsMax = 0;
        bool acctMismatch = false;
        bool zeroOpSlot = false;
        for (unsigned d = 0; d < n; d++) {
            char key[48];
            auto devNum = [&](const char *f) {
                std::snprintf(key, sizeof(key), "dev.%u.%s", d, f);
                return numField(c, key);
            };
            const double ops = devNum("device_ops");
            const double acctOps = devNum("acct_ssd_ops");
            acctMismatch |= ops != acctOps;
            std::printf("    %4u %6.0f %10.0f %8.0f ", d,
                        devNum("dev_id"), ops, devNum("writes"));
            // A slot that served no ops (e.g. evicted before its first
            // dispatch) has no latency distribution and no meaningful
            // per-op average: print "—" rather than 0s / nan / inf.
            if (ops > 0) {
                std::printf("%10.0f %10.0f ", devNum("p50_ns"),
                            devNum("p99_ns"));
            } else {
                zeroOpSlot = true;
                std::printf("%10s %10s ", "—", "—");
            }
            std::printf("%10.0f %12.0f ", acctOps, devNum("acct_bytes"));
            if (acctOps > 0)
                std::printf("%9.0f\n", devNum("acct_bytes") / acctOps);
            else
                std::printf("%9s\n", "—");
            opsMin = d == 0 ? ops : std::min(opsMin, ops);
            opsMax = std::max(opsMax, ops);
        }
        // The honest imbalance: a slot that served nothing is the most
        // extreme imbalance there is, not a reason to stay silent.
        if (n > 1 && opsMin > 0)
            std::printf("    ops imbalance (max/min): %.2fx\n",
                        opsMax / opsMin);
        else if (n > 1 && zeroOpSlot && opsMax > 0)
            std::printf("    ops imbalance (max/min): unbounded "
                        "(a slot served 0 ops)\n");
        if (acctMismatch)
            std::printf("    WARNING: tenant accounting disagrees with "
                        "device hardware counters\n");
    }
}

/**
 * Diff the simulated metric counters embedded in the scenario objects.
 * These are outputs of the simulation (not host-side timing), so any
 * base/cur difference on an unchanged workload is a semantic change —
 * the digest gate catches it, this table says *where*. Keys present on
 * only one side are real signal too (a counter appearing or vanishing
 * is a behavior change), so the table walks the union of both key sets
 * and annotates one-sided rows as added/removed.
 */
void
printCounterDiff(const BenchFile &base, const BenchFile &cur)
{
    bool any = false;
    for (const Scenario &c : cur.scenarios) {
        const Scenario *b = findScenario(base, c.name);
        std::map<std::string, int> keys; // 1 = base, 2 = cur, 3 = both
        if (b)
            for (const auto &[k, v] : b->fields)
                if (isCounterKey(k))
                    keys[k] |= 1;
        for (const auto &[k, v] : c.fields)
            if (isCounterKey(k))
                keys[k] |= 2;
        if (keys.empty())
            continue;
        if (!any)
            std::printf("\nsimulated counters (base -> cur):\n");
        any = true;

        std::printf("  %s\n", c.name.c_str());
        for (const auto &[k, side] : keys) {
            const std::string bs = counterCell(b, k.c_str());
            const std::string cs = counterCell(&c, k.c_str());
            const char *note = "";
            if (side == 2)
                note = "  (added)";
            else if (side == 1)
                note = "  (removed)";
            else if (bs != cs)
                note = "  *";
            std::printf("    %-20s %14s -> %-14s%s\n", k.c_str(),
                        bs.c_str(), cs.c_str(), note);
        }
        if (hasField(c, "iotlb_hits") && hasField(c, "iotlb_misses")) {
            const double h = numField(c, "iotlb_hits");
            const double m = numField(c, "iotlb_misses");
            if (h + m > 0)
                std::printf("    %-20s %14s    %.2f%%\n",
                            "iotlb_hit_rate", "", 100.0 * h / (h + m));
        }
    }
}

/** Re-emit a flat scalar map as a JSON object body at an indent. */
void
emitObject(std::FILE *f, const std::map<std::string, std::string> &m,
           const char *indent)
{
    bool first = true;
    for (const auto &[k, v] : m) {
        std::fprintf(f, "%s%s\"%s\": ", first ? "" : ",\n", indent,
                     k.c_str());
        // Strings were unquoted during parsing; numbers/bools kept raw.
        const bool isRaw
            = !v.empty()
              && (v == "true" || v == "false" || v == "null"
                  || v.find_first_not_of("-+.0123456789eE")
                         == std::string::npos);
        if (isRaw)
            std::fprintf(f, "%s", v.c_str());
        else
            std::fprintf(f, "\"%s\"", v.c_str());
        first = false;
    }
    std::fprintf(f, "\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::optional<double> maxRssGrowthPct;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; i++) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc)
            outPath = argv[++i];
        else if (a == "--max-rss-growth" && i + 1 < argc)
            maxRssGrowthPct = std::atof(argv[++i]);
        else if (a == "--help" || a == "-h") {
            std::printf("usage: perf_report <baseline.json> "
                        "<current.json> [--out BENCH_PR.json] "
                        "[--max-rss-growth PCT]\n");
            return 0;
        } else
            inputs.push_back(a);
    }
    if (inputs.size() != 2) {
        std::fprintf(stderr, "usage: perf_report <baseline.json> "
                             "<current.json> [--out BENCH_PR.json] "
                             "[--max-rss-growth PCT]\n");
        return 2;
    }

    const BenchFile base = parseBenchFile(inputs[0]);
    const BenchFile cur = parseBenchFile(inputs[1]);

    std::printf("%-26s %14s %14s %8s  %s\n", "scenario",
                "base ev/s", "cur ev/s", "speedup", "digest");
    bool digestMismatch = false;
    struct Row
    {
        std::string name;
        double speedup;
        bool match;
    };
    std::vector<Row> rows;
    for (const Scenario &c : cur.scenarios) {
        const Scenario *b = findScenario(base, c.name);
        if (!b) {
            std::printf("%-26s %14s %14.1f %8s  (new)\n",
                        c.name.c_str(), "-",
                        numField(c, "events_per_sec"), "-");
            continue;
        }
        const double be = numField(*b, "events_per_sec");
        const double ce = numField(c, "events_per_sec");
        const double speedup = be > 0 ? ce / be : 0.0;
        const bool match = strField(*b, "digest") == strField(c, "digest");
        digestMismatch |= !match;
        rows.push_back(Row{c.name, speedup, match});
        std::printf("%-26s %14.1f %14.1f %7.2fx  %s\n", c.name.c_str(),
                    be, ce, speedup, match ? "match" : "MISMATCH");
    }
    const double baseRss = std::atof(
        base.fields.count("peak_rss_bytes")
            ? base.fields.at("peak_rss_bytes").c_str()
            : "0");
    const double curRss = std::atof(
        cur.fields.count("peak_rss_bytes")
            ? cur.fields.at("peak_rss_bytes").c_str()
            : "0");
    std::printf("peak RSS: %.1f MiB -> %.1f MiB\n",
                baseRss / (1 << 20), curRss / (1 << 20));
    bool rssViolation = false;
    if (maxRssGrowthPct && baseRss > 0 && curRss > 0) {
        const double growth = 100.0 * (curRss - baseRss) / baseRss;
        rssViolation = growth > *maxRssGrowthPct;
        std::printf("peak RSS growth: %+.1f%% (budget %.1f%%) %s\n",
                    growth, *maxRssGrowthPct,
                    rssViolation ? "EXCEEDED" : "ok");
    }
    printShardScaling(base, cur);
    printReactorBreakdown(cur);
    printDeviceBreakdown(cur);
    printCounterDiff(base, cur);
    if (digestMismatch)
        std::fprintf(stderr, "perf_report: DIGEST MISMATCH — simulated "
                             "results differ from baseline\n");
    if (rssViolation)
        std::fprintf(stderr, "perf_report: RSS BUDGET EXCEEDED — peak "
                             "RSS grew past --max-rss-growth\n");

    if (!outPath.empty()) {
        std::FILE *f = std::fopen(outPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "perf_report: cannot write %s\n",
                         outPath.c_str());
            return 2;
        }
        std::fprintf(f, "{\n  \"schema\": \"bypassd-bench-report-v1\",\n");
        std::fprintf(f, "  \"digest_match\": %s,\n",
                     digestMismatch ? "false" : "true");
        std::fprintf(f, "  \"comparison\": [\n");
        for (std::size_t i = 0; i < rows.size(); i++)
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"speedup\": %.3f, "
                         "\"digest_match\": %s}%s\n",
                         rows[i].name.c_str(), rows[i].speedup,
                         rows[i].match ? "true" : "false",
                         i + 1 < rows.size() ? "," : "");
        std::fprintf(f, "  ],\n");

        auto emitRun = [&](const char *key, const BenchFile &bf) {
            std::fprintf(f, "  \"%s\": {\n", key);
            emitObject(f, bf.fields, "    ");
            std::fprintf(f, "    ,\"scenarios\": [\n");
            for (std::size_t i = 0; i < bf.scenarios.size(); i++) {
                std::fprintf(f, "      {\n");
                emitObject(f, bf.scenarios[i].fields, "        ");
                std::fprintf(f, "      }%s\n",
                             i + 1 < bf.scenarios.size() ? "," : "");
            }
            std::fprintf(f, "    ]\n  }");
        };
        emitRun("baseline", base);
        std::fprintf(f, ",\n");
        emitRun("current", cur);
        std::fprintf(f, "\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", outPath.c_str());
    }
    return (digestMismatch || rssViolation) ? 1 : 0;
}
