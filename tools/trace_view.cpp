/**
 * @file
 * trace_view: analyze a Chrome trace-event JSON produced by the obs
 * exporter (bench --trace) and print per-layer latency breakdowns.
 *
 * Request envelopes — the "X" events carrying user_ns/kernel_ns/
 * xlate_ns/device_ns args emitted by obs::Tracer::request() — are
 * grouped by (process, request name) and averaged, regenerating the
 * Table 1 / Fig. 7 per-layer split straight from a trace. When the
 * envelopes carry a "tenant" arg (traces captured with per-tenant
 * accounting on), the same split is additionally printed per tenant,
 * so one multi-tenant run yields a Table-1 row per tenant. "X" events
 * carrying a "conn" arg (src/fabric spans) are additionally grouped by
 * (process, connection, span name), breaking a fabric run down per
 * remote connection; "reactor" and "slot" args get the same treatment,
 * splitting the target-side work per polling lane and per device-map
 * slot respectively. A second section counts every span/instant name
 * per process so the span taxonomy of a run is visible at a glance.
 *
 * Also serves as the CI validator for exporter output: it re-parses
 * the full JSON and checks the trace-event invariants (exit 2 on JSON
 * parse errors, exit 1 on structural violations or an empty trace).
 *
 * Usage: trace_view TRACE.json [--from-us X] [--to-us Y] [--no-spans]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/json.hpp"

namespace {

/** Sentinel "connection" for conn-less fabric admin-queue spans. */
constexpr std::uint64_t kAdminConn
    = std::numeric_limits<std::uint64_t>::max();

struct LayerAgg
{
    std::uint64_t count = 0;
    double userNs = 0;
    double kernelNs = 0;
    double xlateNs = 0;
    double deviceNs = 0;
    double totalNs = 0;
    double bytes = 0;
};

double
numArg(const bpd::obs::json::Value &args, const char *key, double dflt)
{
    const bpd::obs::json::Value *v = args.find(key);
    return v && v->isNumber() ? v->number : dflt;
}

std::string
readFile(const char *path, bool *ok)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f) {
        *ok = false;
        return {};
    }
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    *ok = true;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    double fromUs = -1, toUs = -1;
    bool showSpans = true;
    for (int i = 1; i < argc; i++) {
        const std::string a = argv[i];
        if (a == "--from-us" && i + 1 < argc)
            fromUs = std::atof(argv[++i]);
        else if (a == "--to-us" && i + 1 < argc)
            toUs = std::atof(argv[++i]);
        else if (a == "--no-spans")
            showSpans = false;
        else if (!path && a[0] != '-')
            path = argv[i];
        else {
            std::fprintf(stderr,
                         "usage: trace_view TRACE.json [--from-us X] "
                         "[--to-us Y] [--no-spans]\n");
            return 2;
        }
    }
    if (!path) {
        std::fprintf(stderr, "trace_view: no trace file given\n");
        return 2;
    }

    bool ok = false;
    const std::string text = readFile(path, &ok);
    if (!ok) {
        std::fprintf(stderr, "trace_view: cannot read %s\n", path);
        return 2;
    }

    bpd::obs::json::Value root;
    std::string err;
    if (!bpd::obs::json::parse(text, root, err)) {
        std::fprintf(stderr, "trace_view: JSON parse error in %s: %s\n",
                     path, err.c_str());
        return 2;
    }

    // ---- structural validation (the CI gate) ------------------------
    if (!root.isObject()) {
        std::fprintf(stderr, "trace_view: top level is not an object\n");
        return 1;
    }
    const bpd::obs::json::Value *events = root.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr, "trace_view: missing traceEvents array\n");
        return 1;
    }

    std::map<std::uint64_t, std::string> procNames;
    std::map<std::pair<std::uint64_t, std::string>, LayerAgg> layers;
    // (pid, tenant, request name) → aggregate; only populated when
    // envelopes carry a "tenant" arg.
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::string>,
             LayerAgg>
        tenantLayers;
    bool sawTenant = false;
    std::map<std::pair<std::uint64_t, std::string>, std::uint64_t> spans;
    // (pid, connection id, span name) → aggregate for fabric spans —
    // the "X" events carrying a "conn" arg (src/fabric tracing).
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::string>,
             LayerAgg>
        fabricConns;
    // (pid, reactor lane, span name) → aggregate for spans carrying a
    // "reactor" arg (fabric.sq): the target-side view of how the
    // sharded data path spread its work.
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::string>,
             LayerAgg>
        reactorLanes;
    // (pid, device slot, span name) → aggregate for spans carrying a
    // "slot" arg (fabric.sq, fabric.connect): the device-map view of
    // how a multi-device run spread its work over the fleet's slots.
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::string>,
             LayerAgg>
        deviceSlots;
    std::uint64_t nComplete = 0, nInstant = 0, nMeta = 0;

    for (const auto &ev : events->arr) {
        if (!ev.isObject()) {
            std::fprintf(stderr,
                         "trace_view: non-object trace event\n");
            return 1;
        }
        const bpd::obs::json::Value *ph = ev.find("ph");
        const bpd::obs::json::Value *name = ev.find("name");
        const bpd::obs::json::Value *pid = ev.find("pid");
        if (!ph || !ph->isString() || !name || !name->isString()
            || !pid || !pid->isNumber()) {
            std::fprintf(stderr,
                         "trace_view: event missing ph/name/pid\n");
            return 1;
        }
        const std::uint64_t p = static_cast<std::uint64_t>(pid->number);
        if (ph->str == "M") {
            nMeta++;
            if (name->str == "process_name") {
                const bpd::obs::json::Value *args = ev.find("args");
                const bpd::obs::json::Value *pn
                    = args ? args->find("name") : nullptr;
                if (pn && pn->isString())
                    procNames[p] = pn->str;
            }
            continue;
        }
        const bpd::obs::json::Value *ts = ev.find("ts");
        if (!ts || !ts->isNumber()) {
            std::fprintf(stderr, "trace_view: %s event missing ts\n",
                         ph->str.c_str());
            return 1;
        }
        if (fromUs >= 0 && ts->number < fromUs)
            continue;
        if (toUs >= 0 && ts->number > toUs)
            continue;
        if (ph->str == "i") {
            nInstant++;
            spans[{p, name->str}]++;
            continue;
        }
        if (ph->str != "X") {
            std::fprintf(stderr, "trace_view: unexpected phase '%s'\n",
                         ph->str.c_str());
            return 1;
        }
        const bpd::obs::json::Value *dur = ev.find("dur");
        if (!dur || !dur->isNumber() || dur->number < 0) {
            std::fprintf(stderr, "trace_view: X event without dur\n");
            return 1;
        }
        nComplete++;
        spans[{p, name->str}]++;

        const bpd::obs::json::Value *args = ev.find("args");
        if (args && args->isObject() && args->find("conn")) {
            LayerAgg &agg = fabricConns[{
                p, static_cast<std::uint64_t>(numArg(*args, "conn", 0)),
                name->str}];
            agg.count++;
            agg.totalNs += dur->number * 1000.0; // us -> ns
            agg.bytes += numArg(*args, "bytes", 0);
        } else if (args && args->isObject() && !args->find("user_ns")
                   && name->str.rfind("fabric.", 0) == 0) {
            // Fabric layer spans without a "conn" arg are admin-queue
            // work (disconnect/abort processing) that belongs to no
            // single connection. Fold them into an explicit "admin"
            // row so the per-connection table reconciles with the
            // system totals instead of silently dropping spans.
            // (Request envelopes — "user_ns" present — stay in the
            // per-layer tables above.)
            LayerAgg &agg = fabricConns[{p, kAdminConn, name->str}];
            agg.count++;
            agg.totalNs += dur->number * 1000.0; // us -> ns
            agg.bytes += numArg(*args, "bytes", 0);
        }
        if (args && args->isObject() && args->find("reactor")) {
            LayerAgg &agg = reactorLanes[{
                p,
                static_cast<std::uint64_t>(numArg(*args, "reactor", 0)),
                name->str}];
            agg.count++;
            agg.totalNs += dur->number * 1000.0; // us -> ns
            agg.deviceNs += numArg(*args, "device_ns", 0);
            agg.bytes += numArg(*args, "bytes", 0);
        }
        if (args && args->isObject() && args->find("slot")) {
            LayerAgg &agg = deviceSlots[{
                p, static_cast<std::uint64_t>(numArg(*args, "slot", 0)),
                name->str}];
            agg.count++;
            agg.totalNs += dur->number * 1000.0; // us -> ns
            agg.deviceNs += numArg(*args, "device_ns", 0);
            agg.bytes += numArg(*args, "bytes", 0);
        }
        if (!args || !args->isObject() || !args->find("user_ns"))
            continue; // a layer span, not a request envelope
        const double tenant = numArg(*args, "tenant", 0);
        sawTenant |= args->find("tenant") != nullptr;
        for (LayerAgg *agg :
             {&layers[{p, name->str}],
              &tenantLayers[{p, static_cast<std::uint64_t>(tenant),
                             name->str}]}) {
            agg->count++;
            agg->userNs += numArg(*args, "user_ns", 0);
            agg->kernelNs += numArg(*args, "kernel_ns", 0);
            agg->xlateNs += numArg(*args, "xlate_ns", 0);
            agg->deviceNs += numArg(*args, "device_ns", 0);
            agg->totalNs += dur->number * 1000.0; // us -> ns
            agg->bytes += numArg(*args, "bytes", 0);
        }
    }

    if (nComplete + nInstant == 0) {
        std::fprintf(stderr, "trace_view: trace has no events\n");
        return 1;
    }

    std::printf("%s: %llu complete spans, %llu instants, %llu metadata "
                "records, %zu processes\n",
                path, (unsigned long long)nComplete,
                (unsigned long long)nInstant, (unsigned long long)nMeta,
                procNames.size());

    if (!layers.empty()) {
        std::printf("\nPer-layer request latency breakdown "
                    "(mean ns/op, Table 1 axes):\n");
        std::printf("%-24s %-16s %9s %9s %9s %9s %9s %9s %9s\n",
                    "process", "request", "count", "user", "kernel",
                    "xlate", "device", "total", "bytes");
        for (const auto &[key, a] : layers) {
            const auto &[p, name] = key;
            const auto it = procNames.find(p);
            const std::string proc
                = it != procNames.end()
                      ? it->second
                      : "pid" + std::to_string(p);
            const double c = static_cast<double>(a.count);
            std::printf(
                "%-24s %-16s %9llu %9.0f %9.0f %9.0f %9.0f %9.0f %9.0f\n",
                proc.c_str(), name.c_str(), (unsigned long long)a.count,
                a.userNs / c, a.kernelNs / c, a.xlateNs / c,
                a.deviceNs / c, a.totalNs / c, a.bytes / c);
        }
    } else if (fabricConns.empty() && reactorLanes.empty()) {
        // Fabric target-side traces legitimately carry only layer
        // spans (the request envelopes live at the initiators); only a
        // trace with neither is too coarse to say anything about.
        std::fprintf(stderr,
                     "%s: no request envelopes in this trace — it is "
                     "too coarse for the latency breakdown (and for "
                     "trace_replay). Re-capture with --trace-level 1 "
                     "or higher on a traced bench run.\n",
                     path);
        return 1;
    }

    if (sawTenant) {
        std::printf("\nPer-tenant request latency breakdown "
                    "(mean ns/op; tenant 0 = system):\n");
        std::printf("%-24s %6s %-16s %9s %9s %9s %9s %9s %9s %9s\n",
                    "process", "tenant", "request", "count", "user",
                    "kernel", "xlate", "device", "total", "bytes");
        for (const auto &[key, a] : tenantLayers) {
            const auto &[p, tenant, name] = key;
            const auto it = procNames.find(p);
            const std::string proc
                = it != procNames.end()
                      ? it->second
                      : "pid" + std::to_string(p);
            const double c = static_cast<double>(a.count);
            std::printf("%-24s %6llu %-16s %9llu %9.0f %9.0f %9.0f "
                        "%9.0f %9.0f %9.0f\n",
                        proc.c_str(), (unsigned long long)tenant,
                        name.c_str(), (unsigned long long)a.count,
                        a.userNs / c, a.kernelNs / c, a.xlateNs / c,
                        a.deviceNs / c, a.totalNs / c, a.bytes / c);
        }
    }

    if (!fabricConns.empty()) {
        std::printf("\nPer-connection fabric breakdown "
                    "(mean ns/span):\n");
        std::printf("%-24s %6s %-16s %9s %9s %11s\n", "process", "conn",
                    "span", "count", "mean ns", "bytes");
        for (const auto &[key, a] : fabricConns) {
            const auto &[p, conn, name] = key;
            const auto it = procNames.find(p);
            const std::string proc
                = it != procNames.end()
                      ? it->second
                      : "pid" + std::to_string(p);
            const double c = static_cast<double>(a.count);
            const std::string connLabel
                = conn == kAdminConn ? "admin" : std::to_string(conn);
            std::printf("%-24s %6s %-16s %9llu %9.0f %11.0f\n",
                        proc.c_str(), connLabel.c_str(), name.c_str(),
                        (unsigned long long)a.count, a.totalNs / c,
                        a.bytes);
        }
    }

    if (!reactorLanes.empty()) {
        std::printf("\nPer-reactor fabric breakdown "
                    "(mean ns/span):\n");
        std::printf("%-24s %7s %-16s %9s %9s %9s %11s\n", "process",
                    "reactor", "span", "count", "mean ns", "device",
                    "bytes");
        for (const auto &[key, a] : reactorLanes) {
            const auto &[p, lane, name] = key;
            const auto it = procNames.find(p);
            const std::string proc
                = it != procNames.end()
                      ? it->second
                      : "pid" + std::to_string(p);
            const double c = static_cast<double>(a.count);
            std::printf("%-24s %7llu %-16s %9llu %9.0f %9.0f %11.0f\n",
                        proc.c_str(), (unsigned long long)lane,
                        name.c_str(), (unsigned long long)a.count,
                        a.totalNs / c, a.deviceNs / c, a.bytes);
        }
    }

    if (!deviceSlots.empty()) {
        std::printf("\nPer-device fabric breakdown "
                    "(mean ns/span):\n");
        std::printf("%-24s %5s %-16s %9s %9s %9s %11s\n", "process",
                    "slot", "span", "count", "mean ns", "device",
                    "bytes");
        for (const auto &[key, a] : deviceSlots) {
            const auto &[p, slot, name] = key;
            const auto it = procNames.find(p);
            const std::string proc
                = it != procNames.end()
                      ? it->second
                      : "pid" + std::to_string(p);
            const double c = static_cast<double>(a.count);
            std::printf("%-24s %5llu %-16s %9llu %9.0f %9.0f %11.0f\n",
                        proc.c_str(), (unsigned long long)slot,
                        name.c_str(), (unsigned long long)a.count,
                        a.totalNs / c, a.deviceNs / c, a.bytes);
        }
    }

    if (showSpans) {
        std::printf("\nSpan counts by process:\n");
        for (const auto &[key, count] : spans) {
            const auto &[p, name] = key;
            const auto it = procNames.find(p);
            const std::string proc
                = it != procNames.end()
                      ? it->second
                      : "pid" + std::to_string(p);
            std::printf("  %-24s %-24s %10llu\n", proc.c_str(),
                        name.c_str(), (unsigned long long)count);
        }
    }
    return 0;
}
