/**
 * @file
 * A tiny fio-like CLI over the simulator: pick an engine, block size,
 * thread count and read/write mix from the command line and get
 * latency/throughput, like the paper's microbenchmarks.
 *
 *   build/examples/fio_cli [engine] [bs] [threads] [rw]
 *     engine:  sync | libaio | io_uring | spdk | bypassd   (default sync)
 *     bs:      bytes, 512-aligned                          (default 4096)
 *     threads: 1..24                                       (default 1)
 *     rw:      randread | randwrite | seqread | seqwrite   (default randread)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workloads/fio.hpp"

using namespace bpd;
using namespace bpd::wl;

int
main(int argc, char **argv)
{
    sim::setVerbose(false);

    Engine engine = Engine::Sync;
    std::uint32_t bs = 4096;
    unsigned threads = 1;
    RwMode rw = RwMode::RandRead;

    if (argc > 1) {
        const std::string e = argv[1];
        if (e == "sync")
            engine = Engine::Sync;
        else if (e == "libaio")
            engine = Engine::Libaio;
        else if (e == "io_uring")
            engine = Engine::IoUring;
        else if (e == "spdk")
            engine = Engine::Spdk;
        else if (e == "bypassd")
            engine = Engine::Bypassd;
        else {
            std::fprintf(stderr, "unknown engine '%s'\n", e.c_str());
            return 1;
        }
    }
    if (argc > 2)
        bs = static_cast<std::uint32_t>(std::atoi(argv[2]));
    if (argc > 3)
        threads = static_cast<unsigned>(std::atoi(argv[3]));
    if (argc > 4) {
        const std::string m = argv[4];
        if (m == "randread")
            rw = RwMode::RandRead;
        else if (m == "randwrite")
            rw = RwMode::RandWrite;
        else if (m == "seqread")
            rw = RwMode::SeqRead;
        else if (m == "seqwrite")
            rw = RwMode::SeqWrite;
        else {
            std::fprintf(stderr, "unknown rw mode '%s'\n", m.c_str());
            return 1;
        }
    }
    if (bs == 0 || bs % 512 != 0 || threads == 0 || threads > 24) {
        std::fprintf(stderr, "bad bs/threads\n");
        return 1;
    }

    sys::SystemConfig cfg;
    cfg.deviceBytes = 64ull << 30;
    sys::System s(cfg);
    FioRunner runner(s);
    FioJob job;
    job.engine = engine;
    job.rw = rw;
    job.bs = bs;
    job.numJobs = threads;
    job.runtime = 20 * kMs;
    job.warmup = 2 * kMs;
    job.fileBytes = 1ull << 30;
    FioResult r = runner.run(job);

    std::printf("engine=%s bs=%u threads=%u %s\n", toString(engine), bs,
                threads,
                rw == RwMode::RandRead    ? "randread"
                : rw == RwMode::RandWrite ? "randwrite"
                : rw == RwMode::SeqRead   ? "seqread"
                                          : "seqwrite");
    std::printf("  ops     : %llu in %.0fms (simulated)\n",
                (unsigned long long)r.ops,
                static_cast<double>(r.elapsed) / 1e6);
    std::printf("  IOPS    : %.0f\n", r.iops());
    std::printf("  BW      : %s\n",
                sim::fmtBw(r.bwBytesPerSec()).c_str());
    std::printf("  latency : %s\n", r.latency.summary().c_str());
    std::printf("  split   : user=%.0fns kernel=%.0fns xlate=%.0fns "
                "device=%.0fns\n",
                r.avgUserNs, r.avgKernelNs, r.avgTranslateNs,
                r.avgDeviceNs);
    return 0;
}
