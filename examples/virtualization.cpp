/**
 * @file
 * Virtualized sharing (Section 5.2): two containers and a VM share one
 * SSD. Containers get namespace isolation from the kernel and use the
 * BypassD interface unchanged; the VM gets an SR-IOV-style block
 * partition and nested translation through its own guest page table.
 *
 *   build/examples/virtualization
 */

#include <cstdio>

#include "system/system.hpp"
#include "vmm/vmm.hpp"

using namespace bpd;

int
main()
{
    sim::setVerbose(false);
    sys::System s;

    // --- two containers, same app-visible path, isolated files ---
    s.ext4.mkdir("/containers", 0777, fs::Credentials{0, 0}, nullptr);
    kern::Process &c1 = s.newProcess(1000);
    kern::Process &c2 = s.newProcess(2000);
    s.kernel.setNamespaceRoot(c1, "/containers/web");
    s.kernel.setNamespaceRoot(c2, "/containers/db");

    for (kern::Process *c : {&c1, &c2}) {
        const int cfd
            = s.kernel.setupCreateFile(*c, "/data.db", 8 << 20, c->pid());
        int rc = -1;
        s.kernel.sysClose(*c, cfd, [&](int r) { rc = r; });
        s.run();
    }
    bypassd::UserLib &l1 = s.userLib(c1);
    bypassd::UserLib &l2 = s.userLib(c2);
    int f1 = -1, f2 = -1;
    l1.open("/data.db", fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect,
            0644, [&](int f) { f1 = f; });
    l2.open("/data.db", fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect,
            0644, [&](int f) { f2 = f; });
    s.run();
    std::printf("container 'web': /data.db -> fd=%d direct=%s\n", f1,
                l1.isDirect(f1) ? "yes" : "no");
    std::printf("container 'db' : /data.db -> fd=%d direct=%s "
                "(different file, same path)\n",
                f2, l2.isDirect(f2) ? "yes" : "no");

    // Distinct writes prove the files are distinct.
    std::vector<std::uint8_t> a(4096, 0xAA), b(4096, 0xBB), back(4096);
    l1.pwrite(0, f1, a, 0, [](long long, kern::IoTrace) {});
    l2.pwrite(0, f2, b, 0, [](long long, kern::IoTrace) {});
    s.run();
    s.kernel.setupRead(c1, f1, back, 0);
    std::printf("web's bytes:  0x%02x..  db's bytes: ", back[0]);
    s.kernel.setupRead(c2, f2, back, 0);
    std::printf("0x%02x..\n", back[0]);

    // A container cannot escape its namespace.
    int esc = -1;
    l1.open("/containers/db/data.db", fs::kOpenRead, 0,
            [&](int f) { esc = f; });
    s.run();
    std::printf("web tries db's file by host path -> %s\n\n",
                esc < 0 ? "ENOENT (namespace confined)" : "?!");

    // --- a VM with an SR-IOV block partition ---
    vmm::VmmManager vmm(s);
    vmm::VmGuest *vm = vmm.createVm(256 << 20);
    std::printf("VM booted: VF partition [%llu MiB, %llu MiB) of the "
                "shared SSD\n",
                (unsigned long long)(vm->partitionBase() >> 20),
                (unsigned long long)((vm->partitionBase()
                                      + vm->partitionBytes())
                                     >> 20));

    // The guest maps its blocks and does direct I/O: the IOMMU walks the
    // GUEST page table, the device's VF window relocates the result.
    const Vaddr gvba = vm->fmapGuestBlocks(0, 1024, true);
    std::vector<std::uint8_t> vmData(4096, 0xCC);
    Time lat = 0;
    vm->write(gvba, vmData, 0, [](long long, kern::IoTrace) {});
    s.run();
    const Time t0 = s.now();
    vm->read(gvba, back, 0, [&](long long, kern::IoTrace) {
        lat = s.now() - t0;
    });
    s.run();
    std::printf("guest direct read: 0x%02x.. in %.2fus "
                "(nested translation, host-process speed)\n",
                back[0], static_cast<double>(lat) / 1e3);

    // Malicious guest: raw LBA command aimed past its window.
    ssd::Command evil;
    evil.op = ssd::Op::Read;
    evil.addr = 0; // host block 0 = the file system superblock!
    evil.addrIsVba = false;
    evil.len = 4096;
    ssd::Status st = ssd::Status::Success;
    vm->submitRaw(evil, [&](const ssd::Completion &c) { st = c.status; });
    s.run();
    std::printf("guest raw-LBA attack on host superblock -> %s\n",
                st == ssd::Status::InvalidCommand
                    ? "rejected (VF queues are VBA-only)"
                    : "?!");
    return 0;
}
