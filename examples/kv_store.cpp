/**
 * @file
 * A small persistent hash-table KV store built on the BypassD public
 * API, demonstrating coroutine-style straight-line I/O code over the
 * simulator (sim::Task / sim::Future) and the engine-speedup a real
 * application sees.
 *
 * Layout: one file; bucket b lives at byte b * 512; each 512 B bucket
 * holds up to 7 (key, value) pairs of 32+32 bytes plus a header.
 *
 *   build/examples/kv_store
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/coro.hpp"
#include "system/system.hpp"

using namespace bpd;

namespace {

constexpr std::uint64_t kBuckets = 65536;
constexpr std::uint32_t kSlotBytes = 64;
constexpr std::uint32_t kSlots = 7;

struct Bucket
{
    std::uint32_t count;
    std::uint32_t pad;
    struct Slot
    {
        char key[32];
        char value[32];
    } slots[kSlots];
};
static_assert(sizeof(Bucket) <= 512);

/** The store: synchronous-looking API over the async UserLib. */
class TinyKv
{
  public:
    TinyKv(sys::System &s, bypassd::UserLib &lib, int fd)
        : s_(s), lib_(lib), fd_(fd)
    {
    }

    sim::Co<bool>
    put(std::string key, std::string value)
    {
        Bucket b = co_await load(key);
        // Update in place if present.
        for (std::uint32_t i = 0; i < b.count; i++) {
            if (key == b.slots[i].key) {
                setSlot(b.slots[i], key, value);
                co_await store(key, b);
                co_return true;
            }
        }
        if (b.count >= kSlots)
            co_return false; // bucket full (no chaining in the demo)
        setSlot(b.slots[b.count], key, value);
        b.count++;
        co_await store(key, b);
        co_return true;
    }

    sim::Co<std::string>
    get(std::string key)
    {
        Bucket b = co_await load(key);
        for (std::uint32_t i = 0; i < b.count; i++) {
            if (key == b.slots[i].key)
                co_return std::string(b.slots[i].value);
        }
        co_return std::string();
    }

  private:
    static void
    setSlot(Bucket::Slot &slot, const std::string &k,
            const std::string &v)
    {
        std::memset(&slot, 0, sizeof(slot));
        std::strncpy(slot.key, k.c_str(), sizeof(slot.key) - 1);
        std::strncpy(slot.value, v.c_str(), sizeof(slot.value) - 1);
    }

    std::uint64_t
    offsetOf(const std::string &key) const
    {
        std::uint64_t h = 1469598103934665603ull;
        for (char c : key)
            h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ull;
        return (h % kBuckets) * 512;
    }

    sim::Co<Bucket>
    load(const std::string &key)
    {
        std::vector<std::uint8_t> raw(512);
        sim::Future<long long> done;
        lib_.pread(0, fd_, raw, offsetOf(key), [done](long long n,
                                                      kern::IoTrace) {
            done.resolve(n);
        });
        const long long n = co_await done;
        sim::panicIf(n < 0, "kv: read failed");
        Bucket b;
        std::memcpy(&b, raw.data(), sizeof(b));
        co_return b;
    }

    sim::Co<bool>
    store(const std::string &key, const Bucket &b)
    {
        std::vector<std::uint8_t> raw(512, 0);
        std::memcpy(raw.data(), &b, sizeof(b));
        sim::Future<long long> done;
        lib_.pwrite(0, fd_, raw, offsetOf(key), [done](long long n,
                                                       kern::IoTrace) {
            done.resolve(n);
        });
        co_return co_await done >= 0;
    }

    sys::System &s_;
    bypassd::UserLib &lib_;
    int fd_;
};

sim::Task
demo(sys::System &s, TinyKv &kv, Time *elapsed, std::uint64_t *ops)
{
    const Time start = s.now();
    std::uint64_t count = 0;

    // Populate.
    for (int i = 0; i < 200; i++) {
        const bool ok = co_await kv.put("user:" + std::to_string(i),
                                        "value-" + std::to_string(i * 7));
        sim::panicIf(!ok, "put failed");
        count++;
    }
    // Read back and verify a sample.
    for (int i = 0; i < 200; i += 20) {
        const std::string v
            = co_await kv.get("user:" + std::to_string(i));
        sim::panicIf(v != "value-" + std::to_string(i * 7),
                     "wrong value!");
        count++;
    }
    // Overwrite + re-read.
    co_await kv.put("user:42", "rewritten");
    const std::string v = co_await kv.get("user:42");
    sim::panicIf(v != "rewritten", "overwrite lost");
    count += 2;

    *elapsed = s.now() - start;
    *ops = count;
}

} // namespace

int
main()
{
    sim::setVerbose(false);
    sys::System s;
    kern::Process &proc = s.newProcess(1000);
    bypassd::UserLib &lib = s.userLib(proc);

    const int cfd = s.kernel.setupCreateFile(proc, "/tiny.kv",
                                             kBuckets * 512, 0);
    s.kernel.sysClose(proc, cfd, [](int) {});
    s.run();
    int fd = -1;
    lib.open("/tiny.kv", fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect,
             0644, [&](int f) { fd = f; });
    s.run();
    sim::panicIf(fd < 0, "open failed");
    std::printf("tiny.kv opened, direct=%s\n",
                lib.isDirect(fd) ? "yes" : "no");

    TinyKv kv(s, lib, fd);
    Time elapsed = 0;
    std::uint64_t ops = 0;
    demo(s, kv, &elapsed, &ops);
    s.run();

    std::printf("ran %llu KV ops in %.2fms simulated "
                "(avg %.2fus/op; puts are read-modify-write)\n",
                (unsigned long long)ops,
                static_cast<double>(elapsed) / 1e6,
                static_cast<double>(elapsed)
                    / static_cast<double>(ops) / 1e3);
    std::printf("partial-write serializations: %llu, direct ops: %llu "
                "reads + %llu writes\n",
                (unsigned long long)lib.partialSerialized(),
                (unsigned long long)lib.directReads(),
                (unsigned long long)lib.directWrites());
    return 0;
}
