/**
 * @file
 * Multi-tenant SSD sharing: the scenario SPDK cannot serve. Three
 * tenants with different credentials share one NVMe device through the
 * BypassD interface; permissions are enforced by the IOMMU, a malicious
 * tenant's forged commands fault, and a kernel-interface open revokes
 * direct access cleanly.
 *
 *   build/examples/multi_tenant
 */

#include <cstdio>
#include <functional>

#include "system/system.hpp"

using namespace bpd;

namespace {

struct Tenant
{
    const char *name;
    kern::Process *proc;
    bypassd::UserLib *lib;
    int fd = -1;
    std::uint64_t ops = 0;
    Time totalLat = 0;
};

} // namespace

int
main()
{
    sim::setVerbose(false);
    sys::System s;

    // --- three tenants, each with its own uid and private file ---
    Tenant tenants[3] = {{"alice", nullptr, nullptr, -1, 0, 0},
                         {"bob", nullptr, nullptr, -1, 0, 0},
                         {"carol", nullptr, nullptr, -1, 0, 0}};
    for (unsigned i = 0; i < 3; i++) {
        Tenant &t = tenants[i];
        t.proc = &s.newProcess(1000 + i * 1000);
        t.lib = &s.userLib(*t.proc);
        const std::string path = std::string("/") + t.name + ".db";
        const int cfd
            = s.kernel.setupCreateFile(*t.proc, path, 32 << 20, i + 1);
        // Private file: 0600.
        s.ext4.inode(t.proc->file(cfd)->ino)->mode = 0600;
        s.kernel.sysClose(*t.proc, cfd, [](int) {});
        s.run();
        t.lib->open(path,
                    fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect,
                    0600, [&t](int f) { t.fd = f; });
        s.run();
        std::printf("%-6s opened %-10s direct=%s\n", t.name,
                    path.c_str(), t.lib->isDirect(t.fd) ? "yes" : "no");
    }

    // --- all three hammer the device concurrently ---
    const Time tEnd = s.now() + 20 * kMs;
    for (Tenant &t : tenants) {
        auto buf = std::make_shared<std::vector<std::uint8_t>>(4096);
        auto rng = std::make_shared<sim::Rng>(
            reinterpret_cast<std::uintptr_t>(&t));
        auto loop = std::make_shared<std::function<void()>>();
        *loop = [&, buf, rng, loop]() {
            if (s.now() >= tEnd)
                return;
            const Time t0 = s.now();
            const std::uint64_t off
                = rng->nextUint((32 << 20) / 4096) * 4096;
            t.lib->pread(0, t.fd, *buf, off,
                         [&, loop, t0](long long n, kern::IoTrace) {
                             if (n > 0) {
                                 t.ops++;
                                 t.totalLat += s.now() - t0;
                             }
                             (*loop)();
                         });
        };
        (*loop)();
    }
    s.run();
    std::printf("\n20ms of concurrent 4KB reads, one queue pair each:\n");
    for (const Tenant &t : tenants) {
        std::printf("  %-6s %6llu ops, avg %5.2fus "
                    "(device arbitration keeps it fair)\n",
                    t.name, (unsigned long long)t.ops,
                    static_cast<double>(t.totalLat)
                        / static_cast<double>(t.ops) / 1e3);
    }

    // --- bob tries to read alice's file ---
    std::printf("\nbob attacks:\n");
    int stolen = -1;
    tenants[1].lib->open("/alice.db", fs::kOpenRead | fs::kOpenDirect,
                         0600, [&](int f) { stolen = f; });
    s.run();
    std::printf("  open(/alice.db) as bob -> %s\n",
                stolen < 0 ? "EACCES (kernel refuses)" : "?!");

    // --- bob forges a raw NVMe command with a made-up VBA ---
    auto uq = s.module.createUserQueues(*tenants[1].proc, 32, 1 << 20);
    ssd::Command cmd;
    cmd.op = ssd::Op::Read;
    cmd.addr = 0x600000000ull; // guess
    cmd.addrIsVba = true;
    cmd.len = 4096;
    cmd.dmaIova = uq->dmaIova;
    cmd.useIova = true;
    ssd::Status st = ssd::Status::Success;
    uq->dispatcher->submit(cmd, [&](const ssd::Completion &c) {
        st = c.status;
    });
    s.run();
    std::printf("  forged VBA command -> %s\n",
                st == ssd::Status::TranslationFault
                    ? "IOMMU translation fault (no data moved)"
                    : "?!");
    s.module.destroyUserQueues(*tenants[1].proc, *uq);

    // --- a legacy process opens carol's file via the kernel ---
    std::printf("\nlegacy process opens /carol.db through the kernel:\n");
    kern::Process &legacy = s.newProcess(3000);
    int lfd = -1;
    s.kernel.sysOpen(legacy, "/carol.db", fs::kOpenRead, 0,
                     [&](int f) { lfd = f; });
    s.run();
    std::printf("  kernel open -> fd=%d; FTEs detached "
                "(revocations=%llu); carol learns on her next I/O:\n",
                lfd, (unsigned long long)s.module.revocations());

    // Carol keeps working, through the kernel now.
    std::vector<std::uint8_t> buf(4096);
    long long n = -1;
    tenants[2].lib->pread(0, tenants[2].fd, buf, 0,
                          [&](long long r, kern::IoTrace) { n = r; });
    s.run();
    std::printf("  carol's next read: %lld bytes via %s\n", n,
                tenants[2].lib->isDirect(tenants[2].fd) ? "bypassd"
                                                        : "kernel");
    return 0;
}
