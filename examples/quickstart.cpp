/**
 * @file
 * Quickstart: boot a simulated machine, create a file, access it
 * through the BypassD interface, and watch where the time goes.
 *
 *   build/examples/quickstart
 */

#include <cstdio>

#include "system/system.hpp"

using namespace bpd;

int
main()
{
    sim::setVerbose(false);

    // 1. A full simulated machine: Optane-class SSD, IOMMU, ext4,
    //    kernel, BypassD module.
    sys::System s;

    // 2. A process with the UserLib shim loaded (LD_PRELOAD stand-in).
    kern::Process &proc = s.newProcess(/*uid=*/1000);
    bypassd::UserLib &lib = s.userLib(proc);

    // 3. Create a 64 MiB file through the kernel, then open it through
    //    UserLib: open() is forwarded to the kernel and fmap() installs
    //    File Table Entries mapping the file into the address space.
    const int setupFd
        = s.kernel.setupCreateFile(proc, "/hello.dat", 64 << 20, 1);
    s.kernel.sysClose(proc, setupFd, [](int) {});
    s.run();

    int fd = -1;
    lib.open("/hello.dat", fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect,
             0644, [&](int f) { fd = f; });
    s.run();
    std::printf("opened /hello.dat: fd=%d direct=%s\n", fd,
                lib.isDirect(fd) ? "yes (BypassD interface)" : "no");

    // 4. Write then read 4 KiB directly from "userspace": the NVMe
    //    command carries a Virtual Block Address; the device asks the
    //    IOMMU to translate and permission-check it.
    std::vector<std::uint8_t> out(4096, 0x42), in(4096, 0);
    lib.pwrite(0, fd, out, 8192, [&](long long n, kern::IoTrace tr) {
        std::printf("pwrite: %lld bytes, total=%lluns "
                    "(device=%lluns, translation hidden by DMA)\n",
                    n, (unsigned long long)tr.total(),
                    (unsigned long long)tr.deviceNs);
    });
    s.run();
    lib.pread(0, fd, in, 8192, [&](long long n, kern::IoTrace tr) {
        std::printf("pread:  %lld bytes, total=%lluns "
                    "(user=%llu translate=%llu device=%llu)\n",
                    n, (unsigned long long)tr.total(),
                    (unsigned long long)tr.userNs,
                    (unsigned long long)tr.translateNs,
                    (unsigned long long)tr.deviceNs);
    });
    s.run();
    std::printf("data intact: %s\n", in == out ? "yes" : "NO!");

    // 5. Compare with the same read through the kernel path.
    kern::Process &other = s.newProcess(1000);
    int kfd = -1;
    s.kernel.sysOpen(other, "/hello.dat", fs::kOpenRead | fs::kOpenDirect,
                     0644, [&](int f) { kfd = f; });
    s.run();
    s.kernel.sysPread(other, kfd, in, 8192,
                      [&](long long n, kern::IoTrace tr) {
                          std::printf("kernel pread: %lld bytes, "
                                      "total=%lluns (kernel=%lluns)\n",
                                      n,
                                      (unsigned long long)tr.total(),
                                      (unsigned long long)tr.kernelNs);
                      });
    s.run();

    // Note: that kernel open triggered revocation of the direct access
    // (concurrent kernel+BypassD access is not supported, Section 4.5.2).
    // UserLib only learns about it on its next I/O: the command faults
    // in the IOMMU, re-fmap() returns VBA 0, and it falls back.
    std::printf("kernel open elsewhere revoked direct access "
                "(revocations=%llu)\n",
                (unsigned long long)s.module.revocations());
    lib.pread(0, fd, in, 0, [](long long, kern::IoTrace) {});
    s.run();
    std::printf("after the next read faulted+refmapped: direct=%s\n",
                lib.isDirect(fd) ? "yes?!" : "no — kernel interface now");
    return 0;
}
