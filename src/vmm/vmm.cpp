#include "vmm/vmm.hpp"

#include <cstring>

#include "sim/logging.hpp"

namespace bpd::vmm {

VmGuest::VmGuest(sys::System &host, DevAddr base, std::uint64_t bytes,
                 Pasid pasid)
    : host_(host), base_(base), bytes_(bytes), pasid_(pasid)
{
    guestPt_ = std::make_unique<mem::PageTable>(host_.frames);
    host_.iommu.bindPasid(pasid_, guestPt_.get());
    qp_ = host_.dev.createVfQueuePair(pasid_, 256, /*vbaMode=*/true,
                                      base_, bytes_);
    sim::panicIf(qp_ == nullptr, "VF queue creation failed");
    disp_ = std::make_unique<ssd::CommandDispatcher>(*qp_);
    dmaBuf_.assign(1 << 20, 0);
    host_.iommu.mapDma(pasid_, 0x9000000,
                       std::span<std::uint8_t>(dmaBuf_), true);
}

Vaddr
VmGuest::fmapGuestBlocks(BlockNo guestStart, std::uint64_t blocks,
                         bool writable)
{
    sim::panicIf((guestStart + blocks) * kBlockBytes > bytes_,
                 "guest mapping exceeds partition");
    const Vaddr vba = nextVba_;
    nextVba_ += ((blocks * kBlockBytes + mem::kPmdSpan - 1)
                 & ~(mem::kPmdSpan - 1))
                + mem::kPmdSpan;
    for (std::uint64_t i = 0; i < blocks; i++) {
        // Guest FTEs hold GUEST block numbers; the VF window supplies
        // the second (nested) translation step.
        guestPt_->set(vba + i * kBlockBytes,
                      mem::makeFte(guestStart + i, host_.dev.devId(),
                                   writable));
    }
    return vba;
}

void
VmGuest::funmapGuest(Vaddr vba, std::uint64_t blocks)
{
    for (std::uint64_t i = 0; i < blocks; i++)
        guestPt_->clear(vba + i * kBlockBytes);
    host_.iommu.invalidateRange(pasid_, vba, blocks * kBlockBytes);
}

void
VmGuest::read(Vaddr vba, std::span<std::uint8_t> buf, std::uint64_t off,
              kern::IoCb cb)
{
    ssd::Command cmd;
    cmd.op = ssd::Op::Read;
    cmd.addr = vba + off;
    cmd.addrIsVba = true;
    cmd.len = static_cast<std::uint32_t>(buf.size());
    cmd.dmaIova = 0x9000000;
    cmd.useIova = true;
    const Time start = host_.eq.now();
    const bool ok = disp_->submit(
        cmd, [this, buf, start, cb = std::move(cb)](
                 const ssd::Completion &comp) {
            kern::IoTrace tr;
            tr.deviceNs = comp.completeTime - start;
            tr.translateNs = comp.translateNs;
            if (comp.status != ssd::Status::Success) {
                cb(kern::errOf(fs::FsStatus::Access), tr);
                return;
            }
            std::memcpy(buf.data(), dmaBuf_.data(), buf.size());
            cb(static_cast<long long>(buf.size()), tr);
        });
    sim::panicIf(!ok, "VF queue overflow");
}

void
VmGuest::write(Vaddr vba, std::span<const std::uint8_t> buf,
               std::uint64_t off, kern::IoCb cb)
{
    std::memcpy(dmaBuf_.data(), buf.data(), buf.size());
    ssd::Command cmd;
    cmd.op = ssd::Op::Write;
    cmd.addr = vba + off;
    cmd.addrIsVba = true;
    cmd.len = static_cast<std::uint32_t>(buf.size());
    cmd.dmaIova = 0x9000000;
    cmd.useIova = true;
    const Time start = host_.eq.now();
    const bool ok = disp_->submit(
        cmd, [start, n = buf.size(), cb = std::move(cb)](
                 const ssd::Completion &comp) {
            kern::IoTrace tr;
            tr.deviceNs = comp.completeTime - start;
            if (comp.status != ssd::Status::Success) {
                cb(kern::errOf(fs::FsStatus::Access), tr);
                return;
            }
            cb(static_cast<long long>(n), tr);
        });
    sim::panicIf(!ok, "VF queue overflow");
}

void
VmGuest::submitRaw(const ssd::Command &cmd,
                   ssd::CommandDispatcher::CompletionFn fn)
{
    sim::panicIf(!disp_->submit(cmd, std::move(fn)),
                 "VF queue overflow");
}

VmmManager::VmmManager(sys::System &host)
    : host_(host)
{
    // Partitions start in the upper half of the device, away from the
    // host file system's allocations.
    nextBase_ = host_.cfg.deviceBytes / 2;
}

VmmManager::~VmmManager()
{
    for (auto &vm : vms_) {
        host_.dev.destroyQueuePair(vm->qp_->qid());
        host_.iommu.unmapDma(vm->guestPasid(), 0x9000000);
        host_.iommu.unbindPasid(vm->guestPasid());
    }
}

VmGuest *
VmmManager::createVm(std::uint64_t bytes)
{
    bytes = (bytes + kBlockBytes - 1) & ~(kBlockBytes - 1);
    if (nextBase_ + bytes > host_.cfg.deviceBytes)
        return nullptr;
    auto vm = std::unique_ptr<VmGuest>(
        new VmGuest(host_, nextBase_, bytes, nextGuestPasid_++));
    nextBase_ += bytes;
    VmGuest *raw = vm.get();
    vms_.push_back(std::move(vm));
    return raw;
}

} // namespace bpd::vmm
