/**
 * @file
 * BypassD in virtual machines (Section 5.2).
 *
 * A VM gets an SR-IOV/Scalable-IOV virtual function: a block-level
 * partition of the SSD. The guest OS builds File Table Entries with
 * *guest* block numbers; guest processes submit VBA commands on VF
 * queues. Translation is then nested: the IOMMU walks the guest page
 * table (VBA -> guest LBA) and the device's VF window relocates and
 * bounds-checks the result (guest LBA -> host LBA). Isolation between
 * VMs is at block level — no file sharing across VMs, exactly as the
 * paper states.
 *
 * The guest kernel is not re-instantiated in full: VmmManager plays the
 * part of the guest's BypassD module (building guest FTEs and queues),
 * which is the piece nested translation actually exercises.
 */

#ifndef BPD_VMM_VMM_HPP
#define BPD_VMM_VMM_HPP

#include <memory>
#include <vector>

#include "kern/kernel.hpp"
#include "mem/page_table.hpp"
#include "ssd/dispatcher.hpp"
#include "system/system.hpp"

namespace bpd::vmm {

/** A guest VM with its own VF partition and guest page table. */
class VmGuest
{
  public:
    DevAddr partitionBase() const { return base_; }
    std::uint64_t partitionBytes() const { return bytes_; }
    Pasid guestPasid() const { return pasid_; }

    /**
     * Guest-side fmap(): install FTEs mapping @p blocks guest blocks
     * starting at @p guestStart (partition-relative) at a fresh VBA.
     */
    Vaddr fmapGuestBlocks(BlockNo guestStart, std::uint64_t blocks,
                          bool writable);

    /** Remove a guest mapping. */
    void funmapGuest(Vaddr vba, std::uint64_t blocks);

    /** Direct read at a guest VBA. */
    void read(Vaddr vba, std::span<std::uint8_t> buf, std::uint64_t off,
              kern::IoCb cb);

    /** Direct write at a guest VBA. */
    void write(Vaddr vba, std::span<const std::uint8_t> buf,
               std::uint64_t off, kern::IoCb cb);

    /**
     * Escape hatch for attack tests: submit a raw command on the VF
     * queue (a malicious guest owns its queues).
     */
    void submitRaw(const ssd::Command &cmd,
                   ssd::CommandDispatcher::CompletionFn fn);

  private:
    friend class VmmManager;

    VmGuest(sys::System &host, DevAddr base, std::uint64_t bytes,
            Pasid pasid);

    sys::System &host_;
    DevAddr base_;
    std::uint64_t bytes_;
    Pasid pasid_;

    std::unique_ptr<mem::PageTable> guestPt_;
    Vaddr nextVba_ = 0x40000000;

    ssd::QueuePair *qp_ = nullptr;
    std::unique_ptr<ssd::CommandDispatcher> disp_;
    std::vector<std::uint8_t> dmaBuf_;
};

/**
 * The host-side VMM: carves VF partitions and boots guests.
 */
class VmmManager
{
  public:
    explicit VmmManager(sys::System &host);
    ~VmmManager();

    /**
     * Create a VM with a @p bytes block partition.
     * @return nullptr when the device has no room left.
     */
    VmGuest *createVm(std::uint64_t bytes);

    std::size_t vmCount() const { return vms_.size(); }

  private:
    sys::System &host_;
    DevAddr nextBase_;
    Pasid nextGuestPasid_ = 0x8000;
    std::vector<std::unique_ptr<VmGuest>> vms_;
};

} // namespace bpd::vmm

#endif // BPD_VMM_VMM_HPP
