/**
 * @file
 * One device of a multi-device fleet.
 *
 * A DeviceSlot bundles everything a single SSD brings to the machine:
 * the NVMe device model (queues + dispatcher timing), its extent-backed
 * block store, and a per-device IOMMU context. Queue PASID bindings, DMA
 * registrations, and VBA translations are per-device state on real
 * hardware, so each slot gets its own Iommu instance; the kernel binds a
 * process' PASID into every slot's context so FTE translations work on
 * whichever device a file is homed.
 */

#ifndef BPD_SSD_DEVICE_SLOT_HPP
#define BPD_SSD_DEVICE_SLOT_HPP

#include <cstdint>

#include "iommu/iommu.hpp"
#include "sim/event_queue.hpp"
#include "ssd/block_store.hpp"
#include "ssd/nvme.hpp"

namespace bpd::ssd {

class DeviceSlot
{
  public:
    /**
     * @param bytes Capacity of this slot (uniform across a fleet).
     * @param devId This device's DevID, stamped into FTEs and verified
     *     by the IOMMU on every VBA translation.
     * @param seed Service-time jitter seed (distinct per slot so the
     *     fleet doesn't move in lockstep).
     */
    DeviceSlot(sim::EventQueue &eq, std::uint64_t bytes,
               const iommu::IommuProfile &iommuProfile,
               const SsdProfile &ssdProfile, DevId devId,
               std::uint64_t seed)
        : iommu(eq, iommuProfile),
          store(bytes),
          dev(eq, store, iommu, devId, ssdProfile, seed)
    {
    }
    DeviceSlot(const DeviceSlot &) = delete;
    DeviceSlot &operator=(const DeviceSlot &) = delete;

    iommu::Iommu iommu; //!< per-device IOMMU context
    BlockStore store;   //!< this device's extent block store
    NvmeDevice dev;     //!< the NVMe device model
};

} // namespace bpd::ssd

#endif // BPD_SSD_DEVICE_SLOT_HPP
