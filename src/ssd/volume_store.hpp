/**
 * @file
 * Flat volume address space over N uniform device slots. The filesystem
 * sees one BlockStore spanning `slots * slotBytes`; reads/writes route to
 * the slot-local store that actually backs the address, so the NVMe model
 * for each slot and the filesystem agree on the bytes without any copy.
 *
 * Slots are uniform by construction (panic otherwise), so routing is a
 * divide; an I/O is never allowed to straddle a slot boundary — the
 * per-inode placement hook (fs::Ext4Fs::setPlacement) keeps every extent
 * inside one slot's range, and checkSpan() enforces it.
 */

#ifndef BPD_SSD_VOLUME_STORE_HPP
#define BPD_SSD_VOLUME_STORE_HPP

#include <vector>

#include "sim/logging.hpp"
#include "ssd/block_store.hpp"

namespace bpd::ssd {

/** Concatenation of uniform slot-local stores into one address space. */
class VolumeStore : public BlockStore
{
  public:
    VolumeStore(std::vector<BlockStore *> slots, std::uint64_t slotBytes)
        : BlockStore(slotBytes * slots.size()),
          slots_(std::move(slots)),
          slotBytes_(slotBytes)
    {
        sim::panicIf(slots_.empty(), "VolumeStore: no slots");
        for (const BlockStore *s : slots_)
            sim::panicIf(s->capacity() != slotBytes_,
                         "VolumeStore: non-uniform slot");
    }

    std::uint32_t slotOf(DevAddr addr) const
    {
        return static_cast<std::uint32_t>(addr / slotBytes_);
    }

    std::uint64_t slotBase(std::uint32_t slot) const
    {
        return slot * slotBytes_;
    }

    std::uint64_t slotBytes() const { return slotBytes_; }

    void
    read(DevAddr addr, std::span<std::uint8_t> out) const override
    {
        checkSpan(addr, out.size());
        slots_[slotOf(addr)]->read(addr % slotBytes_, out);
    }

    void
    write(DevAddr addr, std::span<const std::uint8_t> in) override
    {
        checkSpan(addr, in.size());
        slots_[slotOf(addr)]->write(addr % slotBytes_, in);
    }

    void
    zeroBlocks(BlockNo start, std::uint64_t count) override
    {
        const DevAddr addr = start * kBlockBytes;
        checkSpan(addr, count * kBlockBytes);
        slots_[slotOf(addr)]->zeroBlocks(
            (addr % slotBytes_) / kBlockBytes, count);
    }

    bool
    isZero(DevAddr addr, std::uint64_t len) const override
    {
        checkSpan(addr, len);
        return slots_[slotOf(addr)]->isZero(addr % slotBytes_, len);
    }

    std::uint64_t
    residentBytes() const override
    {
        std::uint64_t sum = 0;
        for (const BlockStore *s : slots_)
            sum += s->residentBytes();
        return sum;
    }

  private:
    void
    checkSpan(DevAddr addr, std::uint64_t len) const
    {
        sim::panicIf(addr + len > capacity(),
                     "VolumeStore: out of range");
        sim::panicIf(len != 0
                         && slotOf(addr) != slotOf(addr + len - 1),
                     "VolumeStore: I/O straddles a device slot");
    }

    std::vector<BlockStore *> slots_;
    std::uint64_t slotBytes_;
};

} // namespace bpd::ssd

#endif // BPD_SSD_VOLUME_STORE_HPP
