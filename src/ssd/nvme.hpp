/**
 * @file
 * NVMe SSD model with BypassD device extensions (Section 4.3).
 *
 * The device exposes queue pairs (SQ/CQ). Each queue is linked to the
 * PASID of the process that owns it; commands on a VBA-mode queue carry
 * Virtual Block Addresses which the device translates through the IOMMU
 * over PCIe ATS before touching media. Reads serialize translation before
 * media access; writes overlap translation with the data-in transfer and
 * therefore observe no translation latency (Section 4.3).
 *
 * Timing model (calibrated to Intel Optane P5800X, Table 1 / Fig. 6):
 *  - media access: base latency + size / bandwidth, lognormal jitter;
 *  - a bounded number of internal units limits concurrency (~1.5 M IOPS);
 *  - a shared transfer link serializes data movement (caps GB/s);
 *  - round-robin arbitration across submission queues (Fig. 11).
 */

#ifndef BPD_SSD_NVME_HPP
#define BPD_SSD_NVME_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "iommu/iommu.hpp"
#include "obs/tenant.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "ssd/block_store.hpp"

namespace bpd::obs {
class Tracer;
}

namespace bpd::qos {
class Registry;
}

namespace bpd::ssd {

/** Device timing/geometry profile. */
struct SsdProfile
{
    Time readBaseNs = 3355;      //!< fetch+base+xfer(4KiB) = 4020 ns
    Time writeBaseNs = 3470;
    double readBwBytesPerNs = 7.0;  //!< ~7 GB/s
    double writeBwBytesPerNs = 6.2; //!< ~6.2 GB/s
    unsigned units = 6;          //!< internal parallelism (~1.5 M IOPS)
    Time cmdFetchNs = 80;        //!< doorbell-to-command-fetch cost
    Time flushNs = 6000;
    double jitterSigma = 0.03;   //!< lognormal sigma on media latency
    std::uint32_t maxQueueDepth = 1024;

    /** @name Injected health models (0 = healthy, the default)
     * Deterministic fault models for the device-map health machinery:
     * every Nth media op fails with Status::MediaError (no RNG draw is
     * added or removed, so healthy-device digests are unaffected), and
     * past degradeAfterOps every media op pays degradeLatencyNs extra —
     * the "slowly dying device" a health monitor is meant to catch.
     */
    ///@{
    std::uint64_t mediaErrorEvery = 0;
    std::uint64_t degradeAfterOps = 0;
    Time degradeLatencyNs = 0;
    ///@}

    /** The evaluation device. */
    static SsdProfile optaneP5800X() { return SsdProfile{}; }
};

/** NVMe command opcode subset. */
enum class Op : std::uint8_t { Read, Write, Flush };

/** Completion status. */
enum class Status : std::uint8_t
{
    Success,
    TranslationFault, //!< IOMMU could not translate the VBA
    PermissionFault,  //!< R/W check failed in the IOMMU
    DevIdFault,       //!< FTE names another device
    InvalidCommand,   //!< malformed / queue not VBA-capable / disabled
    OutOfRange,       //!< LBA beyond capacity
    DmaFault,         //!< host buffer not mapped for DMA
    MediaError,       //!< injected media failure (health model)
    DeviceEvicted     //!< device evicted from the map; command refused
};

/** Convert an IOMMU fault to a completion status. */
Status statusFromFault(iommu::Fault f);

/** An NVMe submission-queue entry. */
struct Command
{
    Op op = Op::Read;
    std::uint64_t cid = 0;    //!< caller-chosen command id
    std::uint64_t addr = 0;   //!< device byte address (LBA*512) or VBA
    bool addrIsVba = false;   //!< interpret addr as a VBA (BypassD)
    std::uint32_t len = 0;    //!< bytes; sector (512 B) granularity

    /** Host buffer: either an IOVA resolved through the IOMMU... */
    std::uint64_t dmaIova = 0;
    bool useIova = false;
    /** ...or a direct host span (kernel/driver-owned buffers). */
    std::span<std::uint8_t> hostBuf;

    /** @name Observability (no effect on simulated behavior)
     * Request trace id carried across layers, the SQ enqueue time
     * stamped by submit() when device tracing is enabled (for the
     * sq_wait arbitration span), and the tenant the command is
     * attributed to. Tenant 0 means "owner of the submitting queue"
     * (qp.pasid()), so user queues need not set it; the kernel sets it
     * on shared-queue commands it issues on a process's behalf.
     */
    ///@{
    std::uint64_t trace = 0;
    Time enq = 0;
    TenantId tenant = kSystemTenant;
    ///@}
};

/** A completion-queue entry. */
struct Completion
{
    std::uint64_t cid = 0;
    std::uint16_t qid = 0;
    Status status = Status::Success;
    Time submitTime = 0;
    Time completeTime = 0;
    Time translateNs = 0; //!< modeled VBA translation latency component
    std::uint64_t trace = 0; //!< request trace id (observability only)
};

class NvmeDevice;

/**
 * One SQ/CQ pair. Created by NvmeDevice; owned by it; referenced by users.
 */
class QueuePair
{
  public:
    std::uint16_t qid() const { return qid_; }
    Pasid pasid() const { return pasid_; }
    bool vbaMode() const { return vbaMode_; }
    bool disabled() const { return disabled_; }

    /**
     * Enqueue a command and ring the doorbell.
     * @retval false when the SQ is full (caller must retry later).
     */
    bool submit(const Command &cmd);

    /** Pop one completion if available (pull-style polling). */
    std::optional<Completion> pollCq();

    /**
     * Push-style completion delivery: invoked at completion time, which
     * models a poller noticing the CQ doorbell with zero extra delay. When
     * set, completions are not queued in the CQ.
     */
    void setCompletionHook(std::function<void(const Completion &)> hook);

    std::uint32_t inflight() const { return inflight_; }

    /** @name SR-IOV partition window (Section 5.2)
     * When a queue belongs to a virtual function, every device address
     * (raw LBA or IOMMU-translated) is offset into — and bounds-checked
     * against — the VF's block partition, giving VMs block-level
     * isolation in hardware.
     */
    ///@{
    DevAddr partitionBase() const { return partBase_; }
    /** Partition size in bytes; 0 = unrestricted (physical function). */
    std::uint64_t partitionBytes() const { return partBytes_; }
    ///@}

    /** @name Per-queue statistics (fairness experiments) */
    ///@{
    std::uint64_t completedOps() const { return completedOps_; }
    std::uint64_t completedBytes() const { return completedBytes_; }
    std::uint64_t faults() const { return faults_; }
    ///@}

    /** @name Weighted-fair arbitration identity
     * The tenant whose QoS weight governs this queue's share of the RR
     * scan. Defaults to the owning PASID; the fabric target points it
     * at the connection tenant (kConnTenantBase + id) so remote lanes
     * can be weighted individually even though every connection queue
     * is owned by the same kFabricOwnerPasid.
     */
    ///@{
    TenantId qosTenant() const { return qosTenant_; }
    void setQosTenant(TenantId t) { qosTenant_ = t; }
    ///@}

  private:
    friend class NvmeDevice;

    QueuePair(NvmeDevice &dev, std::uint16_t qid, Pasid pasid,
              std::uint32_t depth, bool vbaMode);

    NvmeDevice &dev_;
    std::uint16_t qid_;
    Pasid pasid_;
    std::uint32_t depth_;
    bool vbaMode_;
    bool disabled_ = false;

    std::deque<Command> sq_;
    std::deque<Completion> cq_;
    std::function<void(const Completion &)> hook_;
    std::uint32_t inflight_ = 0; //!< dispatched, not yet completed

    Time lastWriteDone_ = 0; //!< for flush ordering

    DevAddr partBase_ = 0;
    std::uint64_t partBytes_ = 0; //!< 0 = whole device

    TenantId qosTenant_ = kSystemTenant; //!< weight lookup key

    std::uint64_t completedOps_ = 0;
    std::uint64_t completedBytes_ = 0;
    std::uint64_t faults_ = 0;

    std::uint16_t obsTrack_ = 0; //!< interned "nvme.q<qid>" track
};

/**
 * The SSD. One instance per simulated device.
 */
class NvmeDevice
{
  public:
    NvmeDevice(sim::EventQueue &eq, BlockStore &store, iommu::Iommu &iommu,
               DevId devId, SsdProfile profile = SsdProfile::optaneP5800X(),
               std::uint64_t seed = 1);

    DevId devId() const { return devId_; }
    const SsdProfile &profile() const { return profile_; }
    SsdProfile &profileMut() { return profile_; }
    BlockStore &store() { return store_; }

    /**
     * Create a queue pair.
     * @param pasid Owning process address-space id (0 = kernel).
     * @param depth SQ depth.
     * @param vbaMode Whether commands may carry VBAs.
     * @return Queue, or nullptr when the device is claimed by another
     *         owner or queue limit reached.
     */
    QueuePair *createQueuePair(Pasid pasid, std::uint32_t depth,
                               bool vbaMode);

    /**
     * Create a queue confined to a VF partition [base, base+bytes)
     * (Section 5.2: SR-IOV / Scalable-IOV block-level isolation).
     */
    QueuePair *createVfQueuePair(Pasid pasid, std::uint32_t depth,
                                 bool vbaMode, DevAddr base,
                                 std::uint64_t bytes);

    /** Destroy a queue pair (outstanding commands complete first). */
    void destroyQueuePair(std::uint16_t qid);

    /**
     * Claim the device exclusively (SPDK-style: unbinds everyone else).
     * All other queues are disabled; their future submissions fail.
     * @retval false when already claimed by a different owner.
     */
    bool claimExclusive(Pasid owner);

    /** Release an exclusive claim and re-enable other queues. */
    void releaseExclusive(Pasid owner);

    bool claimed() const { return claimOwner_ != kNoPasid; }

    /**
     * Attach a span tracer (null = disabled, the default). All device
     * instrumentation is guarded by one branch on this pointer and only
     * reads simulator state, so enabling it cannot change timing.
     */
    void setTracer(obs::Tracer *t) { trace_ = t; }
    obs::Tracer *tracer() const { return trace_; }

    /**
     * Attach the per-tenant counter table (null = disabled, the
     * default). Attribution only increments counters at the same
     * program points as the aggregate stats, so enabling it cannot
     * change timing and the per-tenant sums equal the totals exactly.
     */
    void setTenantAccounting(obs::TenantAccounting *a) { acct_ = a; }

    /**
     * Attach the QoS registry (null = disabled, the default). The
     * device only reads per-tenant weights from it: SQ arbitration
     * becomes weighted round-robin, a queue draining up to
     * weight(qosTenant) commands per scan turn. With no registry — or
     * with every weight at 1 — the scan is the plain round-robin the
     * paper describes, bit-identically.
     */
    void setQos(qos::Registry *q) { qos_ = q; }

    /** @name Aggregate statistics */
    ///@{
    std::uint64_t totalOps() const { return totalOps_; }
    std::uint64_t readBytes() const { return readBytes_; }
    std::uint64_t writeBytes() const { return writeBytes_; }
    std::uint64_t translationFaults() const { return translationFaults_; }
    unsigned busyUnits() const { return busyUnits_; }
    ///@}

    /** @name Health and eviction
     * An evicted device refuses every new command with
     * Status::DeviceEvicted after the command-fetch cost; commands
     * already past fetch drain normally, so eviction never hangs
     * in-flight I/O. mediaOps/mediaErrors feed the health monitor; the
     * health hook fires (same event, after the failing completion is
     * queued) each time an injected media error lands.
     */
    ///@{
    void setEvicted(bool on) { evicted_ = on; }
    bool evicted() const { return evicted_; }
    std::uint64_t mediaOps() const { return mediaOps_; }
    std::uint64_t mediaErrors() const { return mediaErrors_; }
    void setHealthHook(std::function<void(std::uint64_t)> hook)
    {
        healthHook_ = std::move(hook);
    }
    ///@}

  private:
    friend class QueuePair;

    /** A command that finished translation and awaits a media unit. */
    struct MediaJob
    {
        QueuePair *qp;
        Op op;
        std::uint32_t len;
        std::vector<iommu::TransSeg> segs;
        std::span<std::uint8_t> host;
        std::shared_ptr<std::vector<std::uint8_t>> staged;
        Completion comp;
        Time minDone; //!< completion cannot precede this (write ATS)
        Time mediaStart = 0; //!< service start (observability only)
        bool mediaError = false; //!< injected failure (health model)
    };

    void ring(std::uint16_t qid);
    std::uint16_t qtrack(QueuePair &qp);
    void tryDispatch();
    void process(QueuePair &qp, Command cmd);
    void finish(QueuePair &qp, Completion comp);
    void startMedia();
    Time mediaTime(Op op, std::uint32_t len);
    std::optional<std::span<std::uint8_t>>
    hostSpan(QueuePair &qp, const Command &cmd, bool deviceWrites);

    sim::EventQueue &eq_;
    BlockStore &store_;
    iommu::Iommu &iommu_;
    DevId devId_;
    SsdProfile profile_;
    sim::Rng rng_;

    std::unordered_map<std::uint16_t, std::unique_ptr<QueuePair>> queues_;
    /** Round-robin arbitration order; owning entries live in queues_. */
    std::vector<QueuePair *> rrOrder_;
    std::size_t rrNext_ = 0;
    std::uint16_t nextQid_ = 1;

    unsigned busyUnits_ = 0;    //!< units doing media work
    unsigned translating_ = 0;  //!< commands in the ATS phase
    std::deque<MediaJob> mediaQueue_;
    Time linkFreeAt_ = 0;
    bool dispatchScheduled_ = false;

    Pasid claimOwner_ = kNoPasid;

    obs::Tracer *trace_ = nullptr;
    obs::TenantAccounting *acct_ = nullptr;
    qos::Registry *qos_ = nullptr;

    std::uint64_t totalOps_ = 0;
    std::uint64_t readBytes_ = 0;
    std::uint64_t writeBytes_ = 0;
    std::uint64_t translationFaults_ = 0;

    bool evicted_ = false;
    std::uint64_t mediaOps_ = 0;
    std::uint64_t mediaErrors_ = 0;
    std::function<void(std::uint64_t)> healthHook_;
};

} // namespace bpd::ssd

#endif // BPD_SSD_NVME_HPP
