#include "ssd/nvme.hpp"

#include <algorithm>
#include <string>

#include "obs/trace.hpp"
#include "qos/qos.hpp"
#include "sim/logging.hpp"

namespace bpd::ssd {

Status
statusFromFault(iommu::Fault f)
{
    switch (f) {
      case iommu::Fault::None:
        return Status::Success;
      case iommu::Fault::Permission:
        return Status::PermissionFault;
      case iommu::Fault::DevIdMismatch:
        return Status::DevIdFault;
      case iommu::Fault::NoPasid:
      case iommu::Fault::NotPresent:
      case iommu::Fault::NotFte:
        return Status::TranslationFault;
    }
    return Status::TranslationFault;
}

QueuePair::QueuePair(NvmeDevice &dev, std::uint16_t qid, Pasid pasid,
                     std::uint32_t depth, bool vbaMode)
    : dev_(dev), qid_(qid), pasid_(pasid), depth_(depth), vbaMode_(vbaMode)
{
    qosTenant_ = pasid;
}

bool
QueuePair::submit(const Command &cmd)
{
    if (sq_.size() + inflight_ >= depth_)
        return false;
    Command c = cmd;
    if (dev_.trace_)
        c.enq = dev_.eq_.now();
    sq_.push_back(c);
    dev_.ring(qid_);
    return true;
}

std::optional<Completion>
QueuePair::pollCq()
{
    if (cq_.empty())
        return std::nullopt;
    Completion c = cq_.front();
    cq_.pop_front();
    return c;
}

void
QueuePair::setCompletionHook(std::function<void(const Completion &)> hook)
{
    hook_ = std::move(hook);
}

NvmeDevice::NvmeDevice(sim::EventQueue &eq, BlockStore &store,
                       iommu::Iommu &iommu, DevId devId, SsdProfile profile,
                       std::uint64_t seed)
    : eq_(eq), store_(store), iommu_(iommu), devId_(devId),
      profile_(profile), rng_(seed)
{
}

QueuePair *
NvmeDevice::createQueuePair(Pasid pasid, std::uint32_t depth, bool vbaMode)
{
    if (claimOwner_ != kNoPasid && pasid != claimOwner_)
        return nullptr;
    depth = std::min(depth, profile_.maxQueueDepth);
    const std::uint16_t qid = nextQid_++;
    auto qp = std::unique_ptr<QueuePair>(
        new QueuePair(*this, qid, pasid, depth, vbaMode));
    QueuePair *raw = qp.get();
    queues_[qid] = std::move(qp);
    rrOrder_.push_back(raw);
    return raw;
}

QueuePair *
NvmeDevice::createVfQueuePair(Pasid pasid, std::uint32_t depth,
                              bool vbaMode, DevAddr base,
                              std::uint64_t bytes)
{
    sim::panicIf(base % kBlockBytes != 0 || bytes % kBlockBytes != 0,
                 "VF partition must be block aligned");
    sim::panicIf(base + bytes > store_.capacity(),
                 "VF partition exceeds device");
    QueuePair *qp = createQueuePair(pasid, depth, vbaMode);
    if (qp) {
        qp->partBase_ = base;
        qp->partBytes_ = bytes;
    }
    return qp;
}

void
NvmeDevice::destroyQueuePair(std::uint16_t qid)
{
    auto it = queues_.find(qid);
    if (it == queues_.end())
        return;
    // Outstanding completions reference the QueuePair; defer the erase
    // until it drains.
    QueuePair *qp = it->second.get();
    if (qp->inflight_ > 0 || !qp->sq_.empty()) {
        qp->disabled_ = true;
        eq_.after(10 * kUs, [this, qid]() { destroyQueuePair(qid); });
        return;
    }
    rrOrder_.erase(std::remove(rrOrder_.begin(), rrOrder_.end(), qp),
                   rrOrder_.end());
    if (rrNext_ >= rrOrder_.size())
        rrNext_ = 0;
    queues_.erase(it);
}

bool
NvmeDevice::claimExclusive(Pasid owner)
{
    if (claimOwner_ != kNoPasid && claimOwner_ != owner)
        return false;
    claimOwner_ = owner;
    for (auto &[qid, qp] : queues_) {
        if (qp->pasid() != owner)
            qp->disabled_ = true;
    }
    return true;
}

void
NvmeDevice::releaseExclusive(Pasid owner)
{
    if (claimOwner_ != owner)
        return;
    claimOwner_ = kNoPasid;
    for (auto &[qid, qp] : queues_)
        qp->disabled_ = false;
}

std::uint16_t
NvmeDevice::qtrack(QueuePair &qp)
{
    if (qp.obsTrack_ == 0)
        qp.obsTrack_
            = trace_->track("nvme.q" + std::to_string(qp.qid_));
    return qp.obsTrack_;
}

void
NvmeDevice::ring(std::uint16_t qid)
{
    (void)qid;
    if (!dispatchScheduled_) {
        dispatchScheduled_ = true;
        eq_.after(0, [this]() {
            dispatchScheduled_ = false;
            tryDispatch();
        });
    }
}

void
NvmeDevice::tryDispatch()
{
    // Weighted round-robin arbitration: each queue's turn drains up to
    // weight(qosTenant) commands per scan (one without a QoS registry —
    // the paper's plain round-robin, bit-identically). Admission is
    // bounded by total device occupancy (media units busy + commands
    // translating + media backlog) so arbitration stays fair under
    // load, while ATS translations overlap media work.
    auto admitting = [this]() {
        return busyUnits_ + translating_ + mediaQueue_.size()
               < 2 * profile_.units;
    };
    while (admitting()) {
        bool any = false;
        for (std::size_t scanned = 0;
             scanned < rrOrder_.size() && admitting(); scanned++) {
            if (rrOrder_.empty())
                break;
            rrNext_ = rrNext_ % rrOrder_.size();
            QueuePair &qp = *rrOrder_[rrNext_];
            rrNext_ = (rrNext_ + 1) % rrOrder_.size();
            const std::uint32_t weight
                = qos_ ? qos_->weightOf(qp.qosTenant()) : 1;
            for (std::uint32_t took = 0;
                 took < weight && !qp.sq_.empty() && admitting();
                 took++) {
                Command cmd = qp.sq_.front();
                qp.sq_.pop_front();
                qp.inflight_++;
                any = true;
                process(qp, std::move(cmd));
            }
        }
        if (!any)
            break;
    }
}

Time
NvmeDevice::mediaTime(Op op, std::uint32_t len)
{
    // Media latency is size-independent (the transfer term handles size).
    (void)len;
    const Time base = (op == Op::Read) ? profile_.readBaseNs
                                       : profile_.writeBaseNs;
    const double jitter = rng_.lognormalJitter(profile_.jitterSigma);
    return static_cast<Time>(static_cast<double>(base) * jitter);
}

std::optional<std::span<std::uint8_t>>
NvmeDevice::hostSpan(QueuePair &qp, const Command &cmd, bool deviceWrites)
{
    if (cmd.useIova)
        return iommu_.resolveDma(qp.pasid(), cmd.dmaIova, cmd.len,
                                 deviceWrites);
    if (cmd.hostBuf.size() >= cmd.len)
        return cmd.hostBuf.subspan(0, cmd.len);
    return std::nullopt;
}

void
NvmeDevice::finish(QueuePair &qp, Completion comp)
{
    comp.qid = qp.qid();
    if (trace_ && trace_->wants(obs::Level::Layers)) {
        // Full device-side command lifetime: SQ fetch through CQ post.
        trace_->span(
            qtrack(qp), "nvme.cmd", comp.trace, comp.submitTime,
            comp.completeTime,
            {{"xlate_ns", static_cast<std::int64_t>(comp.translateNs)},
             {"status", static_cast<std::int64_t>(comp.status)}});
    }
    qp.inflight_--;
    qp.completedOps_++;
    if (comp.status != Status::Success)
        qp.faults_++;
    if (qp.hook_)
        qp.hook_(comp);
    else
        qp.cq_.push_back(comp);
    // Occupancy changed; more SQ entries may now be admissible.
    tryDispatch();
}

void
NvmeDevice::startMedia()
{
    while (busyUnits_ < profile_.units && !mediaQueue_.empty()) {
        MediaJob job = std::move(mediaQueue_.front());
        mediaQueue_.pop_front();
        busyUnits_++;
        mediaOps_++;

        // Health models: a deterministic every-Nth media failure and a
        // constant latency penalty once the device has worn past its
        // threshold. Disabled (the default) both are exact no-ops.
        if (profile_.mediaErrorEvery != 0
            && mediaOps_ % profile_.mediaErrorEvery == 0) {
            job.mediaError = true;
            job.comp.status = Status::MediaError;
        }

        const double bw = (job.op == Op::Read)
                              ? profile_.readBwBytesPerNs
                              : profile_.writeBwBytesPerNs;
        const Time xfer
            = static_cast<Time>(static_cast<double>(job.len) / bw);
        const Time serviceStart = std::max(eq_.now(), linkFreeAt_);
        linkFreeAt_ = serviceStart + xfer;
        Time done = serviceStart + mediaTime(job.op, job.len) + xfer;
        if (profile_.degradeAfterOps != 0
            && mediaOps_ > profile_.degradeAfterOps)
            done += profile_.degradeLatencyNs;
        done = std::max(done, job.minDone);
        job.mediaStart = serviceStart;
        if (job.op == Op::Write) {
            job.qp->lastWriteDone_
                = std::max(job.qp->lastWriteDone_, done);
        }

        eq_.schedule(done, [this, job = std::move(job)]() mutable {
            // Functional data movement at completion time. A media
            // error means the bytes never made it to/from the media.
            std::size_t off = 0;
            for (const auto &seg : job.segs) {
                if (job.mediaError)
                    break;
                if (job.op == Op::Read) {
                    store_.read(seg.addr, job.host.subspan(off, seg.len));
                } else {
                    store_.write(seg.addr,
                                 std::span<const std::uint8_t>(
                                     job.staged->data() + off, seg.len));
                }
                off += seg.len;
            }
            job.comp.completeTime = eq_.now();
            if (trace_ && trace_->wants(obs::Level::Device)) {
                trace_->span(
                    qtrack(*job.qp), "nvme.media", job.comp.trace,
                    job.mediaStart, eq_.now(),
                    {{"bytes", static_cast<std::int64_t>(job.len)},
                     {"write",
                      static_cast<std::int64_t>(job.op == Op::Write)}});
            }
            busyUnits_--;
            startMedia();
            if (job.mediaError) {
                mediaErrors_++;
                if (healthHook_)
                    healthHook_(mediaErrors_);
            }
            finish(*job.qp, job.comp);
        });
    }
}

void
NvmeDevice::process(QueuePair &qp, Command cmd)
{
    const Time submitTime = eq_.now();
    // Effective tenant: explicit command tag (kernel shared-queue
    // traffic issued on a process's behalf) or the queue owner (user
    // queues, whose PASID is the tenant by construction).
    const TenantId tenant
        = cmd.tenant != kSystemTenant ? cmd.tenant : qp.pasid();
    totalOps_++;
    if (acct_) {
        acct_->of(tenant).ssdOps++;
        acct_->dev(devId_, tenant).ssdOps++;
    }

    if (trace_ && trace_->wants(obs::Level::Device) && cmd.enq != 0
        && submitTime > cmd.enq) {
        // Time spent queued in the SQ before round-robin arbitration
        // fetched the command.
        trace_->span(qtrack(qp), "nvme.sq_wait", cmd.trace, cmd.enq,
                     submitTime);
    }

    auto fail = [&](Status st, Time extraDelay) {
        if (st == Status::TranslationFault || st == Status::PermissionFault
            || st == Status::DevIdFault) {
            translationFaults_++;
            if (acct_) {
                acct_->of(tenant).ssdTranslationFaults++;
                acct_->dev(devId_, tenant).ssdTranslationFaults++;
            }
        }
        Completion comp;
        comp.cid = cmd.cid;
        comp.status = st;
        comp.submitTime = submitTime;
        comp.trace = cmd.trace;
        eq_.after(profile_.cmdFetchNs + extraDelay,
                  [this, &qp, comp]() mutable {
                      comp.completeTime = eq_.now();
                      finish(qp, comp);
                  });
    };

    if (qp.disabled_) {
        fail(Status::InvalidCommand, 0);
        return;
    }
    if (evicted_) {
        fail(Status::DeviceEvicted, 0);
        return;
    }
    if (cmd.addrIsVba && !qp.vbaMode_) {
        fail(Status::InvalidCommand, 0);
        return;
    }
    // User (VBA-mode) queues accept only VBA-addressed data commands: a
    // raw LBA from userspace would bypass the IOMMU protection entirely.
    if (!cmd.addrIsVba && qp.vbaMode_ && cmd.op != Op::Flush) {
        fail(Status::InvalidCommand, 0);
        return;
    }

    if (cmd.op == Op::Flush) {
        // Flush completes after prior writes on this queue have drained.
        const Time base = eq_.now() + profile_.cmdFetchNs;
        const Time done
            = std::max(base, qp.lastWriteDone_) + profile_.flushNs;
        Completion comp;
        comp.cid = cmd.cid;
        comp.status = Status::Success;
        comp.submitTime = submitTime;
        comp.trace = cmd.trace;
        eq_.schedule(done, [this, &qp, comp]() mutable {
            comp.completeTime = eq_.now();
            finish(qp, comp);
        });
        return;
    }

    if (cmd.len == 0 || cmd.len % kSectorBytes != 0) {
        fail(Status::InvalidCommand, 0);
        return;
    }

    // Resolve the device-side extents (functionally now; the latency is
    // charged on the command's own timeline below).
    std::vector<iommu::TransSeg> segs;
    Time translateNs = 0;
    if (cmd.addrIsVba) {
        const bool devTrace = trace_ && trace_->wants(obs::Level::Device);
        std::uint64_t wcMiss0 = 0, tlbMiss0 = 0, tlbHit0 = 0;
        if (devTrace) {
            wcMiss0 = iommu_.walkCache().misses();
            tlbMiss0 = iommu_.iotlb().misses();
            tlbHit0 = iommu_.iotlb().hits();
        }
        iommu::TransResult tr = iommu_.translateVbaSync(
            qp.pasid(), cmd.addr, cmd.len, cmd.op == Op::Write, devId_);
        translateNs = tr.latency;
        if (devTrace) {
            // ATS request goes out once the command is fetched; for
            // writes it overlaps the data-in transfer (Section 4.3).
            const Time ats = submitTime + profile_.cmdFetchNs;
            trace_->span(
                qtrack(qp), "iommu.ats_translate", cmd.trace, ats,
                ats + tr.latency,
                {{"pages", static_cast<std::int64_t>(tr.pages)},
                 {"frames_read",
                  static_cast<std::int64_t>(tr.framesRead)},
                 {"wc_miss", static_cast<std::int64_t>(
                                 iommu_.walkCache().misses() - wcMiss0)},
                 {"iotlb_miss", static_cast<std::int64_t>(
                                    iommu_.iotlb().misses() - tlbMiss0)},
                 {"iotlb_hit", static_cast<std::int64_t>(
                                   iommu_.iotlb().hits() - tlbHit0)},
                 {"fault", static_cast<std::int64_t>(!tr.ok)}});
        }
        if (!tr.ok) {
            fail(statusFromFault(tr.fault), tr.latency);
            return;
        }
        segs = std::move(tr.segs);
    } else {
        if (cmd.addr + cmd.len > store_.capacity()) {
            fail(Status::OutOfRange, 0);
            return;
        }
        segs.push_back(iommu::TransSeg{cmd.addr, cmd.len});
    }

    // VF partition window (Section 5.2): offset every address into the
    // partition and reject anything escaping it — block-level isolation
    // between VMs enforced by the device, independent of page tables.
    if (qp.partitionBytes() != 0) {
        for (auto &seg : segs) {
            const DevAddr translated = seg.addr + qp.partitionBase();
            if (seg.addr + seg.len > qp.partitionBytes()
                || translated + seg.len
                       > qp.partitionBase() + qp.partitionBytes()) {
                fail(Status::OutOfRange, translateNs);
                return;
            }
            seg.addr = translated;
        }
    }

    // Resolve the host DMA target.
    const bool deviceWrites = (cmd.op == Op::Read);
    auto span = hostSpan(qp, cmd, deviceWrites);
    if (!span) {
        fail(Status::DmaFault, translateNs);
        return;
    }

    // Writes: data-in DMA overlaps translation (no VBA penalty); snapshot
    // the host buffer now ("copied into device memory first").
    std::shared_ptr<std::vector<std::uint8_t>> staged;
    if (cmd.op == Op::Write) {
        staged = std::make_shared<std::vector<std::uint8_t>>(
            span->begin(), span->end());
    }

    if (cmd.op == Op::Read)
        readBytes_ += cmd.len;
    else
        writeBytes_ += cmd.len;
    if (acct_) {
        obs::TenantCounters &tc = acct_->of(tenant);
        obs::DeviceTenantCounters &dc = acct_->dev(devId_, tenant);
        if (cmd.op == Op::Read) {
            tc.ssdReadBytes += cmd.len;
            dc.ssdReadBytes += cmd.len;
        } else {
            tc.ssdWriteBytes += cmd.len;
            dc.ssdWriteBytes += cmd.len;
        }
    }
    qp.completedBytes_ += cmd.len;

    MediaJob job;
    job.qp = &qp;
    job.op = cmd.op;
    job.len = cmd.len;
    job.segs = std::move(segs);
    job.host = *span;
    job.staged = std::move(staged);
    job.comp.cid = cmd.cid;
    job.comp.status = Status::Success;
    job.comp.submitTime = submitTime;
    job.comp.translateNs = translateNs;
    job.comp.trace = cmd.trace;
    job.minDone = 0;

    // Reads serialize the ATS translation before media access (and do
    // not occupy a media unit meanwhile); writes start media immediately
    // but cannot complete before the ATS response arrives (Section 4.3).
    if (cmd.op == Op::Read && translateNs > 0) {
        translating_++;
        eq_.after(profile_.cmdFetchNs + translateNs,
                  [this, job = std::move(job)]() mutable {
                      translating_--;
                      mediaQueue_.push_back(std::move(job));
                      startMedia();
                      tryDispatch();
                  });
    } else {
        job.minDone = submitTime + profile_.cmdFetchNs + translateNs;
        eq_.after(profile_.cmdFetchNs,
                  [this, job = std::move(job)]() mutable {
                      mediaQueue_.push_back(std::move(job));
                      startMedia();
                  });
    }
}

} // namespace bpd::ssd
