/**
 * @file
 * Per-queue command dispatcher: assigns command ids and routes push-style
 * completions back to per-command callbacks. Shared by the kernel driver,
 * UserLib and the SPDK baseline.
 */

#ifndef BPD_SSD_DISPATCHER_HPP
#define BPD_SSD_DISPATCHER_HPP

#include <functional>
#include <unordered_map>

#include "sim/logging.hpp"
#include "ssd/nvme.hpp"

namespace bpd::ssd {

class CommandDispatcher
{
  public:
    using CompletionFn = std::function<void(const Completion &)>;

    explicit CommandDispatcher(QueuePair &qp) : qp_(qp)
    {
        qp_.setCompletionHook([this](const Completion &c) {
            auto it = pending_.find(c.cid);
            sim::panicIf(it == pending_.end(),
                         "completion for unknown command id");
            CompletionFn fn = std::move(it->second);
            pending_.erase(it);
            fn(c);
        });
    }

    QueuePair &queue() { return qp_; }

    /**
     * Submit with a per-command completion callback.
     * @retval false when the SQ is full (callback not retained).
     *
     * The cid is consumed only once the queue accepts the command: a
     * refused submit must not burn an id, or the cid stream of a config
     * that hits SQ-full drifts from one that does not, poisoning
     * replay/digest comparisons between them.
     */
    bool
    submit(Command cmd, CompletionFn fn)
    {
        cmd.cid = nextCid_;
        if (!qp_.submit(cmd))
            return false;
        nextCid_++;
        pending_[cmd.cid] = std::move(fn);
        return true;
    }

    std::size_t outstanding() const { return pending_.size(); }

  private:
    QueuePair &qp_;
    std::uint64_t nextCid_ = 1;
    std::unordered_map<std::uint64_t, CompletionFn> pending_;
};

} // namespace bpd::ssd

#endif // BPD_SSD_DISPATCHER_HPP
