/**
 * @file
 * Sparse byte-addressable backing store for a simulated SSD. Bytes really
 * move: reads return what was written (or zeros for never-written space),
 * which lets integration tests check end-to-end data integrity across the
 * kernel, SPDK and BypassD paths.
 *
 * Storage is organized as 2 MiB extents materialized on first write, so a
 * large sequential I/O is one map lookup and one memcpy instead of one
 * hash probe per 4 KiB. Each extent keeps per-block resident/nonzero
 * bitmaps, letting isZero()/zeroBlocks() run off metadata instead of byte
 * scans for the common (never-written or trimmed) case. A one-entry
 * last-extent cache short-circuits the map probe entirely for the
 * sequential and zipfian access patterns the paper sweeps generate.
 */

#ifndef BPD_SSD_BLOCK_STORE_HPP
#define BPD_SSD_BLOCK_STORE_HPP

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/types.hpp"

namespace bpd::ssd {

/**
 * Sparse in-memory device media. Extents materialize on first write.
 */
class BlockStore
{
  public:
    /** Extent granularity: 512 blocks of 4 KiB. */
    static constexpr std::uint64_t kExtentBytes = 2ull << 20;
    static constexpr std::uint64_t kExtentBlocks
        = kExtentBytes / kBlockBytes;

    explicit BlockStore(std::uint64_t capacityBytes);
    virtual ~BlockStore() = default;

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t capacityBlocks() const { return capacity_ / kBlockBytes; }

    /** Read @p out.size() bytes at @p addr. Unwritten space reads zero. */
    virtual void read(DevAddr addr, std::span<std::uint8_t> out) const;

    /** Write @p in at @p addr. */
    virtual void write(DevAddr addr, std::span<const std::uint8_t> in);

    /** Zero (deallocate) whole blocks; used for trim/zero-on-alloc. */
    virtual void zeroBlocks(BlockNo start, std::uint64_t count);

    /** True when the whole range reads as zero. */
    virtual bool isZero(DevAddr addr, std::uint64_t len) const;

    /** Bytes of written (resident) blocks. */
    virtual std::uint64_t residentBytes() const;

  private:
    struct FreeDeleter
    {
        void operator()(std::uint8_t *p) const { std::free(p); }
    };

    struct Extent
    {
        /**
         * kExtentBytes of zeroed media, calloc-allocated so untouched
         * pages stay copy-on-write zero pages: a sparse write
         * materializes only the host pages it dirties, not 2 MiB.
         */
        std::unique_ptr<std::uint8_t[], FreeDeleter> data;
        /** Blocks ever written (residency accounting). */
        std::uint64_t written[kExtentBlocks / 64] = {};
        /** Blocks that may hold nonzero bytes (isZero fast path). */
        std::uint64_t nonzero[kExtentBlocks / 64] = {};
        std::uint32_t writtenCount = 0;
    };

    void checkRange(DevAddr addr, std::uint64_t len) const;
    const Extent *findExtent(std::uint64_t idx) const;
    Extent &ensureExtent(std::uint64_t idx);
    void dropExtent(std::uint64_t idx);

    static bool
    testBit(const std::uint64_t *bits, std::uint64_t i)
    {
        return (bits[i / 64] >> (i % 64)) & 1;
    }

    static void
    setBit(std::uint64_t *bits, std::uint64_t i)
    {
        bits[i / 64] |= 1ull << (i % 64);
    }

    static void
    clearBit(std::uint64_t *bits, std::uint64_t i)
    {
        bits[i / 64] &= ~(1ull << (i % 64));
    }

    std::uint64_t capacity_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Extent>> extents_;
    std::uint64_t residentBlocks_ = 0;

    // One-entry last-extent cache (pointers into extents_ are stable).
    mutable std::uint64_t lastIdx_ = ~0ull;
    mutable Extent *lastExt_ = nullptr;
};

} // namespace bpd::ssd

#endif // BPD_SSD_BLOCK_STORE_HPP
