/**
 * @file
 * Sparse byte-addressable backing store for a simulated SSD. Bytes really
 * move: reads return what was written (or zeros for never-written space),
 * which lets integration tests check end-to-end data integrity across the
 * kernel, SPDK and BypassD paths.
 */

#ifndef BPD_SSD_BLOCK_STORE_HPP
#define BPD_SSD_BLOCK_STORE_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/types.hpp"

namespace bpd::ssd {

/**
 * Sparse in-memory device media. Chunks materialize on first write.
 */
class BlockStore
{
  public:
    explicit BlockStore(std::uint64_t capacityBytes);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t capacityBlocks() const { return capacity_ / kBlockBytes; }

    /** Read @p out.size() bytes at @p addr. Unwritten space reads zero. */
    void read(DevAddr addr, std::span<std::uint8_t> out) const;

    /** Write @p in at @p addr. */
    void write(DevAddr addr, std::span<const std::uint8_t> in);

    /** Zero (deallocate) whole blocks; used for trim/zero-on-alloc. */
    void zeroBlocks(BlockNo start, std::uint64_t count);

    /** True when the whole range reads as zero. */
    bool isZero(DevAddr addr, std::uint64_t len) const;

    /** Bytes of materialized (resident) media. */
    std::uint64_t residentBytes() const;

  private:
    using Chunk = std::array<std::uint8_t, kBlockBytes>;

    void checkRange(DevAddr addr, std::uint64_t len) const;

    std::uint64_t capacity_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Chunk>> chunks_;
};

} // namespace bpd::ssd

#endif // BPD_SSD_BLOCK_STORE_HPP
