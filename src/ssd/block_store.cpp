#include "ssd/block_store.hpp"

#include <algorithm>
#include <cstring>

#include "sim/logging.hpp"

namespace bpd::ssd {

BlockStore::BlockStore(std::uint64_t capacityBytes)
    : capacity_(capacityBytes)
{
    sim::panicIf(capacityBytes % kBlockBytes != 0,
                 "capacity must be block aligned");
}

void
BlockStore::checkRange(DevAddr addr, std::uint64_t len) const
{
    if (addr + len > capacity_ || addr + len < addr) [[unlikely]]
        sim::panic(
            sim::strf("device access out of range: %llu+%llu > %llu",
                      (unsigned long long)addr,
                      (unsigned long long)len,
                      (unsigned long long)capacity_));
}

const BlockStore::Extent *
BlockStore::findExtent(std::uint64_t idx) const
{
    if (idx == lastIdx_)
        return lastExt_;
    auto it = extents_.find(idx);
    if (it == extents_.end())
        return nullptr;
    lastIdx_ = idx;
    lastExt_ = it->second.get();
    return lastExt_;
}

BlockStore::Extent &
BlockStore::ensureExtent(std::uint64_t idx)
{
    if (idx == lastIdx_ && lastExt_)
        return *lastExt_;
    auto &slot = extents_[idx];
    if (!slot) {
        slot = std::make_unique<Extent>();
        slot->data.reset(static_cast<std::uint8_t *>(
            std::calloc(kExtentBytes, 1)));
        sim::panicIf(!slot->data, "out of memory materializing extent");
    }
    lastIdx_ = idx;
    lastExt_ = slot.get();
    return *slot;
}

void
BlockStore::dropExtent(std::uint64_t idx)
{
    extents_.erase(idx);
    if (idx == lastIdx_) {
        lastIdx_ = ~0ull;
        lastExt_ = nullptr;
    }
}

void
BlockStore::read(DevAddr addr, std::span<std::uint8_t> out) const
{
    checkRange(addr, out.size());
    std::size_t done = 0;
    while (done < out.size()) {
        const DevAddr cur = addr + done;
        const std::uint64_t idx = cur / kExtentBytes;
        const std::size_t off = cur % kExtentBytes;
        const std::size_t n
            = std::min<std::uint64_t>(out.size() - done,
                                      kExtentBytes - off);
        const Extent *e = findExtent(idx);
        if (e == nullptr)
            std::memset(out.data() + done, 0, n);
        else
            std::memcpy(out.data() + done, e->data.get() + off, n);
        done += n;
    }
}

void
BlockStore::write(DevAddr addr, std::span<const std::uint8_t> in)
{
    checkRange(addr, in.size());
    std::size_t done = 0;
    while (done < in.size()) {
        const DevAddr cur = addr + done;
        const std::uint64_t idx = cur / kExtentBytes;
        const std::size_t off = cur % kExtentBytes;
        const std::size_t n
            = std::min<std::uint64_t>(in.size() - done,
                                      kExtentBytes - off);
        Extent &e = ensureExtent(idx);
        std::memcpy(e.data.get() + off, in.data() + done, n);
        const std::uint64_t firstBlk = off / kBlockBytes;
        const std::uint64_t lastBlk = (off + n - 1) / kBlockBytes;
        for (std::uint64_t b = firstBlk; b <= lastBlk; b++) {
            if (!testBit(e.written, b)) {
                setBit(e.written, b);
                e.writtenCount++;
                residentBlocks_++;
            }
            // Conservative: the block may now hold nonzero bytes;
            // isZero() falls back to an exact scan for flagged blocks.
            setBit(e.nonzero, b);
        }
        done += n;
    }
}

void
BlockStore::zeroBlocks(BlockNo start, std::uint64_t count)
{
    checkRange(start * kBlockBytes, count * kBlockBytes);
    for (std::uint64_t b = start; b < start + count;) {
        const std::uint64_t idx = b * kBlockBytes / kExtentBytes;
        const std::uint64_t firstInExt = b % kExtentBlocks;
        const std::uint64_t spanInExt = std::min(
            start + count - b, kExtentBlocks - firstInExt);
        auto it = extents_.find(idx);
        if (it != extents_.end()) {
            Extent &e = *it->second;
            for (std::uint64_t i = firstInExt;
                 i < firstInExt + spanInExt; i++) {
                if (testBit(e.nonzero, i)) {
                    std::memset(e.data.get() + i * kBlockBytes, 0,
                                kBlockBytes);
                    clearBit(e.nonzero, i);
                }
                if (testBit(e.written, i)) {
                    clearBit(e.written, i);
                    e.writtenCount--;
                    residentBlocks_--;
                }
            }
            if (e.writtenCount == 0)
                dropExtent(idx);
        }
        b += spanInExt;
    }
}

bool
BlockStore::isZero(DevAddr addr, std::uint64_t len) const
{
    checkRange(addr, len);
    std::uint64_t done = 0;
    while (done < len) {
        const DevAddr cur = addr + done;
        const std::uint64_t idx = cur / kExtentBytes;
        const std::size_t off = cur % kExtentBytes;
        const std::size_t n = std::min<std::uint64_t>(
            len - done, kExtentBytes - off);
        const Extent *e = findExtent(idx);
        if (e != nullptr) {
            const std::uint64_t firstBlk = off / kBlockBytes;
            const std::uint64_t lastBlk = (off + n - 1) / kBlockBytes;
            for (std::uint64_t b = firstBlk; b <= lastBlk; b++) {
                if (!testBit(e->nonzero, b))
                    continue; // metadata proves the block is zero
                const std::size_t lo = std::max<std::size_t>(
                    off, b * kBlockBytes);
                const std::size_t hi = std::min<std::size_t>(
                    off + n, (b + 1) * kBlockBytes);
                const std::uint8_t *p = e->data.get() + lo;
                for (std::size_t i = 0; i < hi - lo; i++) {
                    if (p[i] != 0)
                        return false;
                }
            }
        }
        done += n;
    }
    return true;
}

std::uint64_t
BlockStore::residentBytes() const
{
    return residentBlocks_ * kBlockBytes;
}

} // namespace bpd::ssd
