#include "ssd/block_store.hpp"

#include <algorithm>
#include <cstring>

#include "sim/logging.hpp"

namespace bpd::ssd {

BlockStore::BlockStore(std::uint64_t capacityBytes)
    : capacity_(capacityBytes)
{
    sim::panicIf(capacityBytes % kBlockBytes != 0,
                 "capacity must be block aligned");
}

void
BlockStore::checkRange(DevAddr addr, std::uint64_t len) const
{
    sim::panicIf(addr + len > capacity_ || addr + len < addr,
                 sim::strf("device access out of range: %llu+%llu > %llu",
                           (unsigned long long)addr,
                           (unsigned long long)len,
                           (unsigned long long)capacity_));
}

void
BlockStore::read(DevAddr addr, std::span<std::uint8_t> out) const
{
    checkRange(addr, out.size());
    std::size_t done = 0;
    while (done < out.size()) {
        const DevAddr cur = addr + done;
        const std::uint64_t chunkIdx = cur / kBlockBytes;
        const std::size_t off = cur % kBlockBytes;
        const std::size_t n
            = std::min(out.size() - done, kBlockBytes - off);
        auto it = chunks_.find(chunkIdx);
        if (it == chunks_.end())
            std::memset(out.data() + done, 0, n);
        else
            std::memcpy(out.data() + done, it->second->data() + off, n);
        done += n;
    }
}

void
BlockStore::write(DevAddr addr, std::span<const std::uint8_t> in)
{
    checkRange(addr, in.size());
    std::size_t done = 0;
    while (done < in.size()) {
        const DevAddr cur = addr + done;
        const std::uint64_t chunkIdx = cur / kBlockBytes;
        const std::size_t off = cur % kBlockBytes;
        const std::size_t n = std::min(in.size() - done, kBlockBytes - off);
        auto &chunk = chunks_[chunkIdx];
        if (!chunk) {
            chunk = std::make_unique<Chunk>();
            chunk->fill(0);
        }
        std::memcpy(chunk->data() + off, in.data() + done, n);
        done += n;
    }
}

void
BlockStore::zeroBlocks(BlockNo start, std::uint64_t count)
{
    checkRange(start * kBlockBytes, count * kBlockBytes);
    for (std::uint64_t b = start; b < start + count; b++)
        chunks_.erase(b);
}

bool
BlockStore::isZero(DevAddr addr, std::uint64_t len) const
{
    checkRange(addr, len);
    std::uint64_t done = 0;
    while (done < len) {
        const DevAddr cur = addr + done;
        const std::uint64_t chunkIdx = cur / kBlockBytes;
        const std::size_t off = cur % kBlockBytes;
        const std::size_t n
            = std::min<std::uint64_t>(len - done, kBlockBytes - off);
        auto it = chunks_.find(chunkIdx);
        if (it != chunks_.end()) {
            const std::uint8_t *p = it->second->data() + off;
            for (std::size_t i = 0; i < n; i++) {
                if (p[i] != 0)
                    return false;
            }
        }
        done += n;
    }
    return true;
}

std::uint64_t
BlockStore::residentBytes() const
{
    return chunks_.size() * kBlockBytes;
}

} // namespace bpd::ssd
