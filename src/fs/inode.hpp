/**
 * @file
 * In-memory inode. BypassD keeps file-table state hanging off the cached
 * VFS inode (Section 4.1): the shared FTE frames live as long as the inode
 * stays cached, and the inode tracks which processes hold the file open
 * through which interface so the kernel can apply the sharing policy of
 * Section 4.5.2.
 */

#ifndef BPD_FS_INODE_HPP
#define BPD_FS_INODE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/types.hpp"
#include "fs/extent_tree.hpp"
#include "fs/types.hpp"

namespace bpd::fs {

class Inode
{
  public:
    Inode(InodeNum ino, FileType type, std::uint16_t mode,
          std::uint32_t uid, std::uint32_t gid)
        : ino(ino), type(type), mode(mode), uid(uid), gid(gid)
    {
    }

    InodeNum ino;
    FileType type;
    std::uint16_t mode;
    std::uint32_t uid;
    std::uint32_t gid;
    std::uint32_t nlink = 1;

    std::uint64_t size = 0; //!< bytes

    Time atime = 0;
    Time mtime = 0;
    Time ctime = 0;

    /** Logical-to-physical block mappings. */
    ExtentTree extents;

    /** Directory entries (valid when type == Directory). */
    std::map<std::string, InodeNum> dirents;

    /**
     * Cached pre-populated file table (bypassd::FileTableCache). Opaque
     * here to keep the fs layer independent of the bypassd module; its
     * lifetime equals the inode's cache residency (Section 4.1).
     */
    std::shared_ptr<void> fileTable;

    /** @name Open-state tracking for the sharing policy (Section 4.5.2) */
    ///@{
    int kernelOpens = 0;               //!< opens via the kernel interface
    std::set<Pid> bypassdOpeners;      //!< processes with direct access
    Pid lastMetadataWriter = 0;        //!< for multi-writer detection
    bool metadataMultiWriter = false;  //!< two+ processes changed metadata
    ///@}

    /**
     * ext4 exclusive inode write lock model: kernel-interface writes to
     * one file serialize on this (the bottleneck BypassD sidesteps for
     * KVell YCSB A, Section 6.5).
     */
    Time writeLockFreeAt = 0;

    /**
     * Blocks freed from this file may not be reused before the next sync
     * point (Section 3.6 race mitigation). The FS queues them here and
     * releases them to the allocator on fsync.
     */
    std::vector<std::pair<BlockNo, std::uint64_t>> deferredFrees;

    bool isDir() const { return type == FileType::Directory; }

    /** Size in 4 KiB blocks, rounded up. */
    std::uint64_t
    sizeBlocks() const
    {
        return (size + kBlockBytes - 1) / kBlockBytes;
    }
};

} // namespace bpd::fs

#endif // BPD_FS_INODE_HPP
