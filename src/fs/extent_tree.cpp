#include "fs/extent_tree.hpp"

#include "sim/logging.hpp"

namespace bpd::fs {

void
ExtentTree::insert(std::uint64_t lblk, BlockNo pblk, std::uint64_t count)
{
    sim::panicIf(count == 0, "empty extent insert");

    // Overlap checks against neighbours.
    auto next = map_.lower_bound(lblk);
    if (next != map_.end()) {
        sim::panicIf(lblk + count > next->second.lblk,
                     "extent overlaps successor");
    }
    if (next != map_.begin()) {
        auto prev = std::prev(next);
        sim::panicIf(prev->second.lblk + prev->second.count > lblk,
                     "extent overlaps predecessor");
    }

    Extent e{lblk, pblk, count};

    // Merge with predecessor when logically and physically adjacent.
    if (next != map_.begin()) {
        auto prev = std::prev(next);
        if (prev->second.lblk + prev->second.count == lblk
            && prev->second.pblk + prev->second.count == pblk) {
            e.lblk = prev->second.lblk;
            e.pblk = prev->second.pblk;
            e.count += prev->second.count;
            map_.erase(prev);
        }
    }
    // Merge with successor.
    if (next != map_.end() && e.lblk + e.count == next->second.lblk
        && e.pblk + e.count == next->second.pblk) {
        e.count += next->second.count;
        map_.erase(next);
    }
    map_[e.lblk] = e;
}

std::optional<Extent>
ExtentTree::lookup(std::uint64_t lblk) const
{
    auto it = map_.upper_bound(lblk);
    if (it == map_.begin())
        return std::nullopt;
    --it;
    const Extent &e = it->second;
    if (lblk < e.lblk + e.count)
        return e;
    return std::nullopt;
}

void
ExtentTree::truncateFrom(std::uint64_t fromLblk,
                         const std::function<void(BlockNo, std::uint64_t)>
                             &freeFn)
{
    // Split an extent straddling the boundary.
    auto it = map_.upper_bound(fromLblk);
    if (it != map_.begin()) {
        auto prev = std::prev(it);
        Extent &e = prev->second;
        if (fromLblk < e.lblk + e.count && fromLblk > e.lblk) {
            const std::uint64_t keep = fromLblk - e.lblk;
            freeFn(e.pblk + keep, e.count - keep);
            e.count = keep;
        }
    }
    // Drop everything at or above the boundary.
    it = map_.lower_bound(fromLblk);
    while (it != map_.end()) {
        freeFn(it->second.pblk, it->second.count);
        it = map_.erase(it);
    }
}

void
ExtentTree::clear(const std::function<void(BlockNo, std::uint64_t)> &freeFn)
{
    truncateFrom(0, freeFn);
}

std::uint64_t
ExtentTree::mappedBlocks() const
{
    std::uint64_t total = 0;
    for (const auto &[l, e] : map_)
        total += e.count;
    return total;
}

std::vector<Extent>
ExtentTree::extents() const
{
    std::vector<Extent> out;
    out.reserve(map_.size());
    for (const auto &[l, e] : map_)
        out.push_back(e);
    return out;
}

std::uint64_t
ExtentTree::logicalEnd() const
{
    if (map_.empty())
        return 0;
    const Extent &last = map_.rbegin()->second;
    return last.lblk + last.count;
}

bool
ExtentTree::checkInvariants() const
{
    std::uint64_t prevEnd = 0;
    BlockNo prevPend = 0;
    bool first = true;
    for (const auto &[l, e] : map_) {
        if (l != e.lblk || e.count == 0)
            return false;
        if (!first) {
            if (e.lblk < prevEnd)
                return false; // overlap
            // Maximality: adjacent logical+physical runs must be merged.
            if (e.lblk == prevEnd && e.pblk == prevPend)
                return false;
        }
        prevEnd = e.lblk + e.count;
        prevPend = e.pblk + e.count;
        first = false;
    }
    return true;
}

} // namespace bpd::fs
