/**
 * @file
 * ext4-style extent tree: maps a file's logical 4 KiB blocks to contiguous
 * runs of device blocks. Insertions merge with adjacent extents; lookups
 * are O(log n). This is the structure a cold fmap() reads to build File
 * Table Entries (Section 4.1).
 */

#ifndef BPD_FS_EXTENT_TREE_HPP
#define BPD_FS_EXTENT_TREE_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace bpd::fs {

/** A contiguous logical-to-physical mapping. */
struct Extent
{
    std::uint64_t lblk; //!< first logical block
    BlockNo pblk;       //!< first device block
    std::uint64_t count;

    bool operator==(const Extent &) const = default;
};

class ExtentTree
{
  public:
    /**
     * Insert a mapping; merges with physically-adjacent neighbours.
     * Overlapping an existing mapping panics (FS invariant violation).
     */
    void insert(std::uint64_t lblk, BlockNo pblk, std::uint64_t count);

    /** Extent containing logical block @p lblk, if mapped. */
    std::optional<Extent> lookup(std::uint64_t lblk) const;

    /**
     * Remove all mappings at or above @p fromLblk.
     * @param freeFn Called once per removed physical run.
     */
    void truncateFrom(std::uint64_t fromLblk,
                      const std::function<void(BlockNo, std::uint64_t)>
                          &freeFn);

    /** Remove everything. */
    void clear(const std::function<void(BlockNo, std::uint64_t)> &freeFn);

    /** Total mapped logical blocks. */
    std::uint64_t mappedBlocks() const;

    /** Number of extents (fragmentation measure). */
    std::size_t extentCount() const { return map_.size(); }

    /** All extents in logical order. */
    std::vector<Extent> extents() const;

    /** Highest mapped logical block + 1 (0 when empty). */
    std::uint64_t logicalEnd() const;

    /** Internal consistency check: sorted, non-overlapping, maximal. */
    bool checkInvariants() const;

  private:
    std::map<std::uint64_t, Extent> map_; // keyed by lblk
};

} // namespace bpd::fs

#endif // BPD_FS_EXTENT_TREE_HPP
