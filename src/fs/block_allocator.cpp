#include "fs/block_allocator.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace bpd::fs {

BlockAllocator::BlockAllocator(std::uint64_t totalBlocks,
                               BlockNo firstDataBlock)
    : total_(totalBlocks), firstData_(firstDataBlock),
      freeCount_(totalBlocks - firstDataBlock),
      bits_((totalBlocks + 63) / 64, 0)
{
    sim::panicIf(firstDataBlock >= totalBlocks,
                 "metadata region exceeds device");
    // Reserve the metadata region.
    for (BlockNo b = 0; b < firstDataBlock; b++)
        setBit(b);
}

bool
BlockAllocator::testBit(std::uint64_t b) const
{
    return (bits_[b / 64] >> (b % 64)) & 1;
}

void
BlockAllocator::setBit(std::uint64_t b)
{
    bits_[b / 64] |= (1ull << (b % 64));
}

void
BlockAllocator::clearBit(std::uint64_t b)
{
    bits_[b / 64] &= ~(1ull << (b % 64));
}

bool
BlockAllocator::isAllocated(BlockNo b) const
{
    sim::panicIf(b >= total_, "isAllocated out of range");
    return testBit(b);
}

std::uint64_t
BlockAllocator::freeRunAt(BlockNo b, std::uint64_t cap) const
{
    std::uint64_t n = 0;
    while (b + n < total_ && n < cap && !testBit(b + n))
        n++;
    return n;
}

std::optional<std::pair<BlockNo, std::uint64_t>>
BlockAllocator::alloc(std::uint64_t want, BlockNo goal)
{
    return allocIn(want, goal, firstData_, total_);
}

std::optional<std::pair<BlockNo, std::uint64_t>>
BlockAllocator::allocIn(std::uint64_t want, BlockNo goal, BlockNo lo,
                        BlockNo hi)
{
    sim::panicIf(want == 0, "alloc of zero blocks");
    sim::panicIf(lo >= hi || hi > total_, "allocIn bad range");
    if (lo < firstData_)
        lo = firstData_;
    if (freeCount_ == 0 || lo >= hi)
        return std::nullopt;
    if (goal < lo || goal >= hi)
        goal = lo;

    // Pass 1: scan from the goal forward; pass 2: wrap from the start.
    // Accept the first free run found (even if shorter than want).
    for (int pass = 0; pass < 2; pass++) {
        const BlockNo begin = (pass == 0) ? goal : lo;
        const BlockNo end = (pass == 0) ? hi : goal;
        BlockNo b = begin;
        while (b < end) {
            // Skip whole allocated words quickly.
            if (b % 64 == 0 && bits_[b / 64] == ~0ull) {
                b += 64;
                continue;
            }
            if (testBit(b)) {
                b++;
                continue;
            }
            const std::uint64_t run
                = freeRunAt(b, std::min<std::uint64_t>(want, hi - b));
            for (std::uint64_t i = 0; i < run; i++)
                setBit(b + i);
            freeCount_ -= run;
            return std::make_pair(b, run);
        }
    }
    return std::nullopt;
}

void
BlockAllocator::free(BlockNo start, std::uint64_t count)
{
    sim::panicIf(start + count > total_, "free out of range");
    sim::panicIf(start < firstData_, "freeing metadata blocks");
    for (std::uint64_t i = 0; i < count; i++) {
        sim::panicIf(!testBit(start + i),
                     sim::strf("double free of block %llu",
                               (unsigned long long)(start + i)));
        clearBit(start + i);
    }
    freeCount_ += count;
}

void
BlockAllocator::reserve(BlockNo start, std::uint64_t count)
{
    sim::panicIf(start + count > total_, "reserve out of range");
    for (std::uint64_t i = 0; i < count; i++) {
        sim::panicIf(testBit(start + i),
                     sim::strf("reserve of allocated block %llu",
                               (unsigned long long)(start + i)));
        setBit(start + i);
    }
    freeCount_ -= count;
}

void
BlockAllocator::restoreWords(std::vector<std::uint64_t> words,
                             std::uint64_t freeCount)
{
    sim::panicIf(words.size() != bits_.size(),
                 "bitmap snapshot geometry mismatch");
    bits_ = std::move(words);
    freeCount_ = freeCount;
}

} // namespace bpd::fs
