#include "fs/ext4.hpp"

#include "fs/ondisk.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hpp"

namespace bpd::fs {

const char *
toString(FsStatus st)
{
    switch (st) {
      case FsStatus::Ok: return "Ok";
      case FsStatus::NoEnt: return "NoEnt";
      case FsStatus::Exists: return "Exists";
      case FsStatus::Access: return "Access";
      case FsStatus::NotDir: return "NotDir";
      case FsStatus::IsDir: return "IsDir";
      case FsStatus::NoSpace: return "NoSpace";
      case FsStatus::Inval: return "Inval";
      case FsStatus::Busy: return "Busy";
      case FsStatus::NotEmpty: return "NotEmpty";
      case FsStatus::NoDev: return "NoDev";
    }
    return "?";
}

/** Deep metadata snapshot taken at checkpoint time. */
struct Ext4Fs::Checkpoint
{
    struct InodeImage
    {
        InodeNum ino;
        FileType type;
        std::uint16_t mode;
        std::uint32_t uid, gid;
        std::uint64_t size;
        Time atime, mtime, ctime;
        std::vector<Extent> extents;
        std::map<std::string, InodeNum> dirents;
    };

    std::vector<InodeImage> inodes;
    std::vector<std::uint64_t> bitmapWords;
    std::uint64_t freeBlocks;
    InodeNum nextIno;
};

namespace {

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty()) {
                parts.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

} // namespace

BlockNo
Ext4Fs::computeFirstData(const ssd::BlockStore &media, const FsConfig &cfg)
{
    // Superblock + journal region + checkpoint region, sized so that a
    // full metadata image (dominated by the block bitmap) always fits.
    const std::uint64_t journalBlocks = 1024; // 4 MiB of journal
    const std::uint64_t bitmapBytes = media.capacityBlocks() / 8 + 64;
    const std::uint64_t cpBytes = 2 * bitmapBytes + (4ull << 20);
    const std::uint64_t cpBlocks
        = (cpBytes + kBlockBytes - 1) / kBlockBytes;
    const BlockNo meta = 1 + journalBlocks + cpBlocks;
    return std::max<BlockNo>(cfg.firstDataBlock, meta);
}

Ext4Fs::Ext4Fs(ssd::BlockStore &media, FsConfig cfg, sim::EventQueue *eq)
    : media_(media), cfg_(cfg), eq_(eq),
      alloc_(media.capacityBlocks(), computeFirstData(media, cfg))
{
    journalBlocks_ = 1024;
    cpStart_ = journalStart_ + journalBlocks_;
    cpBlocks_ = alloc_.firstDataBlock() - cpStart_;
    journal_.setCommitHook(
        [this](const std::vector<JRecord> &txn) { persistTxn(txn); });

    // World-writable root (like a freshly formatted scratch mount) so
    // unprivileged tenants can create their files.
    auto root = std::make_unique<Inode>(kRootIno, FileType::Directory,
                                        0777, 0, 0);
    inodes_[kRootIno] = std::move(root);
    takeCheckpoint();
}

Ext4Fs::Ext4Fs(ssd::BlockStore &media, FsConfig cfg, sim::EventQueue *eq,
               RawMountTag)
    : media_(media), cfg_(cfg), eq_(eq),
      alloc_(media.capacityBlocks(), computeFirstData(media, cfg))
{
    journalBlocks_ = 1024;
    cpStart_ = journalStart_ + journalBlocks_;
    cpBlocks_ = alloc_.firstDataBlock() - cpStart_;
    journal_.setCommitHook(
        [this](const std::vector<JRecord> &txn) { persistTxn(txn); });
}

Ext4Fs::~Ext4Fs() = default;

Time
Ext4Fs::now() const
{
    return eq_ ? eq_->now() : 0;
}

Inode *
Ext4Fs::inode(InodeNum ino)
{
    auto it = inodes_.find(ino);
    return it == inodes_.end() ? nullptr : it->second.get();
}

const Inode *
Ext4Fs::inode(InodeNum ino) const
{
    auto it = inodes_.find(ino);
    return it == inodes_.end() ? nullptr : it->second.get();
}

bool
Ext4Fs::mayAccess(const Inode &ino, const Credentials &creds, bool wantRead,
                  bool wantWrite)
{
    if (creds.isRoot())
        return true;
    std::uint16_t r, w;
    if (creds.uid == ino.uid) {
        r = kModeUserR;
        w = kModeUserW;
    } else if (creds.gid == ino.gid) {
        r = kModeGroupR;
        w = kModeGroupW;
    } else {
        r = kModeOtherR;
        w = kModeOtherW;
    }
    if (wantRead && !(ino.mode & r))
        return false;
    if (wantWrite && !(ino.mode & w))
        return false;
    return true;
}

FsStatus
Ext4Fs::resolve(const std::string &path, InodeNum *out) const
{
    if (path.empty() || path[0] != '/')
        return FsStatus::Inval;
    const Inode *cur = inode(kRootIno);
    for (const auto &part : splitPath(path)) {
        if (!cur->isDir())
            return FsStatus::NotDir;
        auto it = cur->dirents.find(part);
        if (it == cur->dirents.end())
            return FsStatus::NoEnt;
        cur = inode(it->second);
        sim::panicIf(cur == nullptr, "dirent references dead inode");
    }
    *out = cur->ino;
    return FsStatus::Ok;
}

FsStatus
Ext4Fs::resolveParent(const std::string &path, InodeNum *parent,
                      std::string *leaf) const
{
    if (path.empty() || path[0] != '/')
        return FsStatus::Inval;
    auto parts = splitPath(path);
    if (parts.empty())
        return FsStatus::Inval;
    *leaf = parts.back();
    parts.pop_back();
    const Inode *cur = inode(kRootIno);
    for (const auto &part : parts) {
        if (!cur->isDir())
            return FsStatus::NotDir;
        auto it = cur->dirents.find(part);
        if (it == cur->dirents.end())
            return FsStatus::NoEnt;
        cur = inode(it->second);
    }
    if (!cur->isDir())
        return FsStatus::NotDir;
    *parent = cur->ino;
    return FsStatus::Ok;
}

void
Ext4Fs::logAndApply(JRecord rec)
{
    journal_.log(rec);
    apply(rec, true);
}

void
Ext4Fs::apply(const JRecord &rec, bool live)
{
    switch (rec.op) {
      case JOp::CreateInode: {
        auto ino = std::make_unique<Inode>(
            rec.a, static_cast<FileType>(rec.b),
            static_cast<std::uint16_t>(rec.c),
            static_cast<std::uint32_t>(rec.d >> 32),
            static_cast<std::uint32_t>(rec.d & 0xffffffff));
        ino->atime = ino->mtime = ino->ctime = now();
        inodes_[rec.a] = std::move(ino);
        nextIno_ = std::max(nextIno_, rec.a + 1);
        break;
      }
      case JOp::FreeInode: {
        Inode *ino = inode(rec.a);
        sim::panicIf(ino == nullptr, "FreeInode of missing inode");
        ino->extents.clear([this](BlockNo b, std::uint64_t n) {
            alloc_.free(b, n);
        });
        for (auto &[b, n] : ino->deferredFrees)
            alloc_.free(b, n);
        inodes_.erase(rec.a);
        break;
      }
      case JOp::SetSize: {
        Inode *ino = inode(rec.a);
        sim::panicIf(ino == nullptr, "SetSize of missing inode");
        ino->size = rec.b;
        break;
      }
      case JOp::AddExtent: {
        Inode *ino = inode(rec.a);
        sim::panicIf(ino == nullptr, "AddExtent of missing inode");
        if (!live) {
            // Replay restores the allocation only; the blocks were
            // zeroed before the transaction committed, and any data
            // written after commit must survive recovery.
            alloc_.reserve(rec.c, rec.d);
        }
        ino->extents.insert(rec.b, rec.c, rec.d);
        break;
      }
      case JOp::TruncExtents: {
        Inode *ino = inode(rec.a);
        sim::panicIf(ino == nullptr, "TruncExtents of missing inode");
        ino->extents.truncateFrom(
            rec.b, [this, ino, live](BlockNo b, std::uint64_t n) {
                if (live) {
                    // Defer reuse until the next sync point (Sec. 3.6).
                    ino->deferredFrees.emplace_back(b, n);
                } else {
                    alloc_.free(b, n);
                }
            });
        break;
      }
      case JOp::AddDirent: {
        Inode *dir = inode(rec.a);
        sim::panicIf(dir == nullptr || !dir->isDir(),
                     "AddDirent target not a directory");
        dir->dirents[rec.s] = rec.b;
        break;
      }
      case JOp::RmDirent: {
        Inode *dir = inode(rec.a);
        sim::panicIf(dir == nullptr || !dir->isDir(),
                     "RmDirent target not a directory");
        dir->dirents.erase(rec.s);
        break;
      }
      case JOp::SetTimes: {
        Inode *ino = inode(rec.a);
        sim::panicIf(ino == nullptr, "SetTimes of missing inode");
        ino->mtime = rec.b;
        ino->atime = rec.c;
        break;
      }
    }
}

FsStatus
Ext4Fs::makeNode(const std::string &path, FileType type,
                 std::uint16_t mode, const Credentials &creds,
                 InodeNum *out)
{
    InodeNum parentIno;
    std::string leaf;
    FsStatus st = resolveParent(path, &parentIno, &leaf);
    if (st != FsStatus::Ok)
        return st;
    Inode *parent = inode(parentIno);
    if (parent->dirents.count(leaf))
        return FsStatus::Exists;
    if (!mayAccess(*parent, creds, false, true))
        return FsStatus::Access;

    noteMetadataOp();
    const InodeNum ino = nextIno_++;
    journal_.begin();
    logAndApply(JRecord{JOp::CreateInode, ino,
                        static_cast<std::uint64_t>(type), mode,
                        (static_cast<std::uint64_t>(creds.uid) << 32)
                            | creds.gid,
                        {}});
    logAndApply(JRecord{JOp::AddDirent, parentIno, ino, 0, 0, leaf});
    journal_.commit();
    if (out)
        *out = ino;
    return FsStatus::Ok;
}

FsStatus
Ext4Fs::create(const std::string &path, std::uint16_t mode,
               const Credentials &creds, InodeNum *out)
{
    return makeNode(path, FileType::Regular, mode, creds, out);
}

FsStatus
Ext4Fs::mkdir(const std::string &path, std::uint16_t mode,
              const Credentials &creds, InodeNum *out)
{
    return makeNode(path, FileType::Directory, mode, creds, out);
}

FsStatus
Ext4Fs::unlink(const std::string &path, const Credentials &creds)
{
    InodeNum parentIno;
    std::string leaf;
    FsStatus st = resolveParent(path, &parentIno, &leaf);
    if (st != FsStatus::Ok)
        return st;
    Inode *parent = inode(parentIno);
    auto it = parent->dirents.find(leaf);
    if (it == parent->dirents.end())
        return FsStatus::NoEnt;
    Inode *victim = inode(it->second);
    if (victim->isDir() && !victim->dirents.empty())
        return FsStatus::NotEmpty;
    if (!mayAccess(*parent, creds, false, true))
        return FsStatus::Access;
    if (victim->kernelOpens > 0 || !victim->bypassdOpeners.empty())
        return FsStatus::Busy;

    noteMetadataOp();
    journal_.begin();
    logAndApply(JRecord{JOp::RmDirent, parentIno, 0, 0, 0, leaf});
    logAndApply(JRecord{JOp::FreeInode, victim->ino, 0, 0, 0, {}});
    journal_.commit();
    return FsStatus::Ok;
}

FsStatus
Ext4Fs::rename(const std::string &from, const std::string &to,
               const Credentials &creds)
{
    InodeNum fromParent, toParent;
    std::string fromLeaf, toLeaf;
    FsStatus st = resolveParent(from, &fromParent, &fromLeaf);
    if (st != FsStatus::Ok)
        return st;
    st = resolveParent(to, &toParent, &toLeaf);
    if (st != FsStatus::Ok)
        return st;
    Inode *fp = inode(fromParent);
    Inode *tp = inode(toParent);
    auto it = fp->dirents.find(fromLeaf);
    if (it == fp->dirents.end())
        return FsStatus::NoEnt;
    if (!mayAccess(*fp, creds, false, true)
        || !mayAccess(*tp, creds, false, true))
        return FsStatus::Access;
    const InodeNum ino = it->second;

    Inode *victim = nullptr;
    auto vit = tp->dirents.find(toLeaf);
    if (vit != tp->dirents.end()) {
        if (vit->second == ino)
            return FsStatus::Ok; // rename onto itself
        victim = inode(vit->second);
        if (victim->isDir())
            return FsStatus::IsDir;
        if (victim->kernelOpens > 0 || !victim->bypassdOpeners.empty())
            return FsStatus::Busy;
    }

    noteMetadataOp();
    journal_.begin();
    if (victim) {
        logAndApply(JRecord{JOp::RmDirent, toParent, 0, 0, 0, toLeaf});
        logAndApply(JRecord{JOp::FreeInode, victim->ino, 0, 0, 0, {}});
    }
    logAndApply(JRecord{JOp::RmDirent, fromParent, 0, 0, 0, fromLeaf});
    logAndApply(JRecord{JOp::AddDirent, toParent, ino, 0, 0, toLeaf});
    journal_.commit();
    return FsStatus::Ok;
}

void
Ext4Fs::zeroRun(BlockNo start, std::uint64_t count)
{
    if (!cfg_.zeroNewBlocks)
        return;
    media_.zeroBlocks(start, count);
    blocksZeroed_ += count;
}

FsStatus
Ext4Fs::allocateRun(const Inode &ino, std::uint64_t want, BlockNo goal,
                    BlockNo *start, std::uint64_t *got)
{
    auto res = placement_
                   ? [&] {
                         const auto [lo, hi] = placement_(ino);
                         return alloc_.allocIn(want, goal, lo, hi);
                     }()
                   : alloc_.alloc(want, goal);
    if (!res)
        return FsStatus::NoSpace;
    *start = res->first;
    *got = res->second;
    return FsStatus::Ok;
}

FsStatus
Ext4Fs::mapRange(const Inode &ino, std::uint64_t off, std::uint64_t len,
                 std::vector<Seg> *out) const
{
    out->clear();
    if (len == 0)
        return FsStatus::Ok;
    std::uint64_t cur = off;
    const std::uint64_t end = off + len;
    while (cur < end) {
        const std::uint64_t lblk = cur / kBlockBytes;
        extentLookups_++;
        auto ext = ino.extents.lookup(lblk);
        if (!ext)
            return FsStatus::Inval;
        // Bytes this extent can serve starting at cur.
        const std::uint64_t extEndByte
            = (ext->lblk + ext->count) * kBlockBytes;
        const std::uint64_t n = std::min(end, extEndByte) - cur;
        const DevAddr addr
            = (ext->pblk + (lblk - ext->lblk)) * kBlockBytes
              + (cur % kBlockBytes);
        if (!out->empty() && out->back().addr + out->back().len == addr)
            out->back().len += n;
        else
            out->push_back(Seg{addr, n});
        cur += n;
    }
    return FsStatus::Ok;
}

FsStatus
Ext4Fs::extendTo(Inode &ino, std::uint64_t newSize,
                 std::vector<Extent> *newExtents)
{
    if (newExtents)
        newExtents->clear();
    if (ino.isDir())
        return FsStatus::IsDir;
    const std::uint64_t needBlocks
        = (newSize + kBlockBytes - 1) / kBlockBytes;

    noteMetadataOp();
    journal_.begin();
    std::uint64_t mapped = ino.extents.logicalEnd();
    while (mapped < needBlocks) {
        // Goal: right after the file's current last physical block.
        BlockNo goal = alloc_.firstDataBlock();
        auto last = ino.extents.lookup(mapped ? mapped - 1 : 0);
        if (last)
            goal = last->pblk + last->count;
        BlockNo start;
        std::uint64_t got;
        FsStatus st
            = allocateRun(ino, needBlocks - mapped, goal, &start, &got);
        if (st != FsStatus::Ok) {
            journal_.commit(); // keep what we already allocated
            return st;
        }
        zeroRun(start, got);
        logAndApply(JRecord{JOp::AddExtent, ino.ino, mapped, start, got,
                            {}});
        if (newExtents)
            newExtents->push_back(Extent{mapped, start, got});
        mapped += got;
    }
    if (newSize > ino.size)
        logAndApply(JRecord{JOp::SetSize, ino.ino, newSize, 0, 0, {}});
    journal_.commit();
    return FsStatus::Ok;
}

FsStatus
Ext4Fs::fallocate(Inode &ino, std::uint64_t off, std::uint64_t len)
{
    return extendTo(ino, std::max(ino.size, off + len), nullptr);
}

FsStatus
Ext4Fs::truncate(Inode &ino, std::uint64_t newSize)
{
    if (ino.isDir())
        return FsStatus::IsDir;
    if (newSize >= ino.size)
        return extendTo(ino, newSize, nullptr);

    noteMetadataOp();
    const std::uint64_t keepBlocks
        = (newSize + kBlockBytes - 1) / kBlockBytes;
    journal_.begin();
    logAndApply(JRecord{JOp::TruncExtents, ino.ino, keepBlocks, 0, 0, {}});
    logAndApply(JRecord{JOp::SetSize, ino.ino, newSize, 0, 0, {}});
    journal_.commit();

    // Zero the tail of the straddling block: bytes past the new EOF
    // must read as zeros if the file is later re-extended (POSIX), and
    // must not leak previous contents through direct access.
    const std::uint64_t tail = newSize % kBlockBytes;
    if (tail != 0) {
        auto ext = ino.extents.lookup(newSize / kBlockBytes);
        if (ext) {
            const DevAddr addr
                = (ext->pblk + (newSize / kBlockBytes - ext->lblk))
                      * kBlockBytes
                  + tail;
            const std::vector<std::uint8_t> zeros(kBlockBytes - tail, 0);
            media_.write(addr, zeros);
        }
    }
    return FsStatus::Ok;
}

void
Ext4Fs::touch(Inode &ino, bool modified)
{
    // Deferred timestamp semantics (Section 4.4): update the in-memory
    // inode now; the journal record is written at the next sync point.
    ino.atime = now();
    if (modified)
        ino.mtime = now();
}

void
Ext4Fs::fsyncMeta(Inode &ino)
{
    noteMetadataOp();
    journal_.begin();
    journal_.log(JRecord{JOp::SetTimes, ino.ino, ino.mtime, ino.atime, 0,
                         {}});
    journal_.commit();
    // Sync point: deferred block frees become reusable (Section 3.6).
    for (auto &[b, n] : ino.deferredFrees)
        alloc_.free(b, n);
    ino.deferredFrees.clear();
}

void
Ext4Fs::persistTxn(const std::vector<JRecord> &txn)
{
    ByteWriter w;
    w.u64(kTxnMagic);
    w.u32(static_cast<std::uint32_t>(txn.size()));
    for (const JRecord &r : txn) {
        w.u8(static_cast<std::uint8_t>(r.op));
        w.u64(r.a);
        w.u64(r.b);
        w.u64(r.c);
        w.u64(r.d);
        w.str(r.s);
    }
    w.u64(fnv1a(w.bytes().data(), w.size()));

    const std::uint64_t regionBytes = journalBlocks_ * kBlockBytes;
    if (journalOff_ + w.size() + 8 > regionBytes) {
        // Journal full: fold everything into the checkpoint instead.
        checkpoint();
        return;
    }
    media_.write(journalStart_ * kBlockBytes + journalOff_,
                 std::span<const std::uint8_t>(w.bytes().data(),
                                               w.size()));
    journalOff_ += w.size();
    // Terminator so a scan stops at the first unwritten slot.
    const std::uint64_t zero = 0;
    media_.write(journalStart_ * kBlockBytes + journalOff_,
                 std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t *>(&zero), 8));
}

void
Ext4Fs::writeSuperblock(std::uint64_t imageBytes)
{
    ByteWriter w;
    w.u64(kSuperMagic);
    w.u64(1); // version
    w.u64(journalStart_);
    w.u64(journalBlocks_);
    w.u64(cpStart_);
    w.u64(cpBlocks_);
    w.u64(alloc_.firstDataBlock());
    w.u64(imageBytes);
    w.u64(fnv1a(w.bytes().data(), w.size()));
    media_.write(0, std::span<const std::uint8_t>(w.bytes().data(),
                                                  w.size()));
}

void
Ext4Fs::persistCheckpointImage()
{
    ByteWriter w;
    w.u64(kCheckpointMagic);
    w.u64(nextIno_);
    w.u64(inodes_.size());
    for (const auto &[num, ino] : inodes_) {
        w.u64(ino->ino);
        w.u8(static_cast<std::uint8_t>(ino->type));
        w.u16(ino->mode);
        w.u32(ino->uid);
        w.u32(ino->gid);
        w.u64(ino->size);
        w.u64(ino->atime);
        w.u64(ino->mtime);
        w.u64(ino->ctime);
        const auto exts = ino->extents.extents();
        w.u32(static_cast<std::uint32_t>(exts.size()));
        for (const Extent &e : exts) {
            w.u64(e.lblk);
            w.u64(e.pblk);
            w.u64(e.count);
        }
        w.u32(static_cast<std::uint32_t>(ino->dirents.size()));
        for (const auto &[name, child] : ino->dirents) {
            w.str(name);
            w.u64(child);
        }
    }
    const auto words = alloc_.snapshotWords();
    w.u64(alloc_.freeBlocks());
    w.u64(words.size());
    // Bitmap words, raw.
    for (std::uint64_t word : words)
        w.u64(word);
    w.u64(fnv1a(w.bytes().data(), w.size()));

    sim::panicIf(w.size() > cpBlocks_ * kBlockBytes,
                 "checkpoint image exceeds its region");
    media_.write(cpStart_ * kBlockBytes,
                 std::span<const std::uint8_t>(w.bytes().data(),
                                               w.size()));
    writeSuperblock(w.size());
    // Reset the on-disk journal: the image covers everything so far.
    journalOff_ = 0;
    const std::uint64_t zero = 0;
    media_.write(journalStart_ * kBlockBytes,
                 std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t *>(&zero), 8));
}

std::unique_ptr<Ext4Fs>
Ext4Fs::recoverFromMedia(ssd::BlockStore &media, sim::EventQueue *eq)
{
    // Superblock.
    std::vector<std::uint8_t> sb(9 * 8);
    media.read(0, sb);
    ByteReader sr(sb.data(), sb.size());
    const std::uint64_t magic = sr.u64();
    if (magic != kSuperMagic)
        return nullptr;
    sr.u64(); // version
    const std::uint64_t jStart = sr.u64();
    const std::uint64_t jBlocks = sr.u64();
    const std::uint64_t cStart = sr.u64();
    const std::uint64_t cBlocks = sr.u64();
    sr.u64(); // firstData (recomputed)
    const std::uint64_t imageBytes = sr.u64();
    const std::uint64_t sum = sr.u64();
    if (!sr.ok() || sum != fnv1a(sb.data(), 8 * 8))
        return nullptr;

    auto fs = std::unique_ptr<Ext4Fs>(
        new Ext4Fs(media, FsConfig{}, eq, RawMountTag{}));
    sim::panicIf(fs->journalStart_ != jStart
                     || fs->journalBlocks_ != jBlocks
                     || fs->cpStart_ != cStart || fs->cpBlocks_ != cBlocks,
                 "superblock layout mismatch");

    // Checkpoint image.
    std::vector<std::uint8_t> img(imageBytes);
    media.read(cStart * kBlockBytes, img);
    std::uint64_t imgSum = 0;
    if (imageBytes >= 16)
        std::memcpy(&imgSum, img.data() + imageBytes - 8, 8);
    if (imageBytes < 16 || fnv1a(img.data(), imageBytes - 8) != imgSum)
        return nullptr;
    ByteReader ir(img.data(), img.size());
    if (ir.u64() != kCheckpointMagic)
        return nullptr;
    fs->nextIno_ = ir.u64();
    const std::uint64_t inodeCount = ir.u64();
    std::uint64_t freeCount = 0;
    for (std::uint64_t i = 0; i < inodeCount && ir.ok(); i++) {
        const InodeNum num = ir.u64();
        const auto type = static_cast<FileType>(ir.u8());
        const std::uint16_t mode = ir.u16();
        const std::uint32_t uid = ir.u32();
        const std::uint32_t gid = ir.u32();
        auto node = std::make_unique<Inode>(num, type, mode, uid, gid);
        node->size = ir.u64();
        node->atime = ir.u64();
        node->mtime = ir.u64();
        node->ctime = ir.u64();
        const std::uint32_t extCount = ir.u32();
        for (std::uint32_t e = 0; e < extCount && ir.ok(); e++) {
            const std::uint64_t lblk = ir.u64();
            const BlockNo pblk = ir.u64();
            const std::uint64_t count = ir.u64();
            node->extents.insert(lblk, pblk, count);
        }
        const std::uint32_t deCount = ir.u32();
        for (std::uint32_t d = 0; d < deCount && ir.ok(); d++) {
            const std::string name = ir.str();
            node->dirents[name] = ir.u64();
        }
        fs->inodes_[num] = std::move(node);
    }
    freeCount = ir.u64();
    const std::uint64_t wordCount = ir.u64();
    std::vector<std::uint64_t> words(wordCount);
    for (std::uint64_t i = 0; i < wordCount && ir.ok(); i++)
        words[i] = ir.u64();
    if (!ir.ok())
        return nullptr;
    fs->alloc_.restoreWords(std::move(words), freeCount);

    // Journal scan + replay: apply intact transactions, stop at the
    // first torn or absent record.
    std::vector<std::uint8_t> jr(jBlocks * kBlockBytes);
    media.read(jStart * kBlockBytes, jr);
    std::size_t off = 0;
    while (off + 12 <= jr.size()) {
        ByteReader tr(jr.data() + off, jr.size() - off);
        if (tr.u64() != kTxnMagic)
            break;
        const std::uint32_t count = tr.u32();
        std::vector<JRecord> txn;
        for (std::uint32_t i = 0; i < count && tr.ok(); i++) {
            JRecord rec;
            rec.op = static_cast<JOp>(tr.u8());
            rec.a = tr.u64();
            rec.b = tr.u64();
            rec.c = tr.u64();
            rec.d = tr.u64();
            rec.s = tr.str();
            txn.push_back(std::move(rec));
        }
        const std::size_t bodyLen = tr.consumed();
        const std::uint64_t sum2 = tr.u64();
        if (!tr.ok()
            || sum2 != fnv1a(jr.data() + off, bodyLen)) {
            break; // torn commit: ignore it and everything after
        }
        for (const JRecord &rec : txn)
            fs->apply(rec, false);
        off += tr.consumed();
    }

    fs->takeCheckpoint();
    return fs;
}

void
Ext4Fs::takeCheckpoint()
{
    auto cp = std::make_unique<Checkpoint>();
    for (const auto &[num, ino] : inodes_) {
        Checkpoint::InodeImage img;
        img.ino = ino->ino;
        img.type = ino->type;
        img.mode = ino->mode;
        img.uid = ino->uid;
        img.gid = ino->gid;
        img.size = ino->size;
        img.atime = ino->atime;
        img.mtime = ino->mtime;
        img.ctime = ino->ctime;
        img.extents = ino->extents.extents();
        img.dirents = ino->dirents;
        cp->inodes.push_back(std::move(img));
    }
    cp->bitmapWords = alloc_.snapshotWords();
    cp->freeBlocks = alloc_.freeBlocks();
    cp->nextIno = nextIno_;
    checkpoint_ = std::move(cp);
    persistCheckpointImage();
}

void
Ext4Fs::checkpoint()
{
    sim::panicIf(journal_.inTransaction(),
                 "checkpoint inside a transaction");
    takeCheckpoint();
    journal_.truncateAtCheckpoint();
}

std::unique_ptr<Ext4Fs>
Ext4Fs::recover(ssd::BlockStore &media, const Ext4Fs &crashed)
{
    auto fs = std::make_unique<Ext4Fs>(media, crashed.cfg_, crashed.eq_);
    // Restore the checkpoint image.
    const Checkpoint &cp = *crashed.checkpoint_;
    fs->inodes_.clear();
    for (const auto &img : cp.inodes) {
        auto ino = std::make_unique<Inode>(img.ino, img.type, img.mode,
                                           img.uid, img.gid);
        ino->size = img.size;
        ino->atime = img.atime;
        ino->mtime = img.mtime;
        ino->ctime = img.ctime;
        for (const auto &e : img.extents)
            ino->extents.insert(e.lblk, e.pblk, e.count);
        ino->dirents = img.dirents;
        fs->inodes_[img.ino] = std::move(ino);
    }
    fs->alloc_.restoreWords(cp.bitmapWords, cp.freeBlocks);
    fs->nextIno_ = cp.nextIno;
    // Replay committed transactions.
    for (const auto &txn : crashed.journal_.committed()) {
        for (const auto &rec : txn)
            fs->apply(rec, false);
    }
    fs->takeCheckpoint();
    return fs;
}

bool
Ext4Fs::fsck(std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // 1. Block accounting: every extent block allocated exactly once.
    std::unordered_map<BlockNo, InodeNum> owner;
    for (const auto &[num, ino] : inodes_) {
        if (!ino->extents.checkInvariants())
            return fail(sim::strf("inode %llu: bad extent tree",
                                  (unsigned long long)num));
        for (const auto &e : ino->extents.extents()) {
            for (std::uint64_t i = 0; i < e.count; i++) {
                const BlockNo b = e.pblk + i;
                if (owner.count(b))
                    return fail(sim::strf("block %llu double-referenced",
                                          (unsigned long long)b));
                owner[b] = num;
                if (!alloc_.isAllocated(b))
                    return fail(sim::strf(
                        "block %llu referenced but free",
                        (unsigned long long)b));
            }
        }
        for (const auto &[b, n] : ino->deferredFrees) {
            for (std::uint64_t i = 0; i < n; i++) {
                if (!alloc_.isAllocated(b + i))
                    return fail("deferred-free block already free");
                if (owner.count(b + i))
                    return fail("deferred-free block still referenced");
            }
        }
        // 2. Full-mapping invariant: no holes, size covered.
        if (!ino->isDir()) {
            if (ino->extents.mappedBlocks()
                != ino->extents.logicalEnd())
                return fail(sim::strf("inode %llu: hole in mapping",
                                      (unsigned long long)num));
            if (ino->sizeBlocks() > ino->extents.logicalEnd())
                return fail(sim::strf("inode %llu: size beyond mapping",
                                      (unsigned long long)num));
        }
    }

    // 3. Namespace: dirents reference live inodes; all inodes reachable.
    std::unordered_set<InodeNum> reachable{kRootIno};
    std::vector<InodeNum> stack{kRootIno};
    while (!stack.empty()) {
        const InodeNum cur = stack.back();
        stack.pop_back();
        const Inode *dir = inode(cur);
        if (!dir)
            return fail("dirent references dead inode");
        for (const auto &[name, child] : dir->dirents) {
            if (!inode(child))
                return fail(sim::strf("dirent '%s' dangling",
                                      name.c_str()));
            if (!reachable.insert(child).second)
                return fail("inode reachable twice (cycle/hardlink)");
            if (inode(child)->isDir())
                stack.push_back(child);
        }
    }
    for (const auto &[num, ino] : inodes_) {
        if (!reachable.count(num))
            return fail(sim::strf("inode %llu orphaned",
                                  (unsigned long long)num));
    }
    return true;
}

} // namespace bpd::fs
