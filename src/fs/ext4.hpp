/**
 * @file
 * ext4-like file system (no data journaling), the kernel FS that BypassD
 * builds on (Section 4). Responsibilities:
 *
 *  - namespace: directories, create/unlink/resolve;
 *  - block management: goal-directed extent allocation, zero-on-allocate
 *    (security requirement, Section 4.1/5.3), truncation with block reuse
 *    deferred to the next sync point (Section 3.6 race mitigation);
 *  - metadata journaling with crash recovery;
 *  - mapping file ranges to device extents for the data path.
 *
 * Every metadata mutation is expressed as a journal record and funnelled
 * through apply(), so crash recovery (checkpoint + committed-record
 * replay) is replay-equivalent to live execution by construction.
 */

#ifndef BPD_FS_EXT4_HPP
#define BPD_FS_EXT4_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "fs/block_allocator.hpp"
#include "fs/inode.hpp"
#include "fs/journal.hpp"
#include "fs/types.hpp"
#include "obs/tenant.hpp"
#include "sim/event_queue.hpp"
#include "ssd/block_store.hpp"

namespace bpd::fs {

/** A device extent for I/O, produced by mapRange(). */
struct Seg
{
    DevAddr addr;
    std::uint64_t len;

    bool operator==(const Seg &) const = default;
};

struct FsConfig
{
    /** Blocks reserved at the front of the device for metadata. */
    BlockNo firstDataBlock = 64;
    /** Zero newly allocated blocks (must stay on; tested invariant). */
    bool zeroNewBlocks = true;
};

class Ext4Fs
{
  public:
    static constexpr InodeNum kRootIno = 1;

    /**
     * Format and mount a file system over @p media.
     * @param eq Optional clock for timestamps.
     */
    Ext4Fs(ssd::BlockStore &media, FsConfig cfg = {},
           sim::EventQueue *eq = nullptr);
    ~Ext4Fs(); // out of line: Checkpoint is incomplete here

    /** @name Namespace operations */
    ///@{
    FsStatus create(const std::string &path, std::uint16_t mode,
                    const Credentials &creds, InodeNum *out);
    FsStatus mkdir(const std::string &path, std::uint16_t mode,
                   const Credentials &creds, InodeNum *out);
    FsStatus resolve(const std::string &path, InodeNum *out) const;
    FsStatus unlink(const std::string &path, const Credentials &creds);

    /**
     * Atomically rename @p from to @p to (replacing an existing target
     * file if not open). One journal transaction: either both dirent
     * updates survive a crash or neither does.
     */
    FsStatus rename(const std::string &from, const std::string &to,
                    const Credentials &creds);
    ///@}

    /** Inode by number (nullptr when absent). */
    Inode *inode(InodeNum ino);
    const Inode *inode(InodeNum ino) const;

    /** Classic owner/group/other permission check. */
    static bool mayAccess(const Inode &ino, const Credentials &creds,
                          bool wantRead, bool wantWrite);

    /** @name Data-path support */
    ///@{
    /**
     * Map a byte range onto device extents.
     * @return Inval when the range exceeds the mapped file.
     */
    FsStatus mapRange(const Inode &ino, std::uint64_t off,
                      std::uint64_t len, std::vector<Seg> *out) const;

    /**
     * Extend the file to @p newSize, allocating and zeroing new blocks.
     * @param[out] newExtents The mappings added (for FTE extension).
     */
    FsStatus extendTo(Inode &ino, std::uint64_t newSize,
                      std::vector<Extent> *newExtents);

    /** fallocate: ensure blocks exist for [off, off+len); extends size. */
    FsStatus fallocate(Inode &ino, std::uint64_t off, std::uint64_t len);

    /** Shrink (or grow) to @p newSize; freed blocks defer to sync. */
    FsStatus truncate(Inode &ino, std::uint64_t newSize);

    /** Update timestamps (deferred-update semantics, Section 4.4). */
    void touch(Inode &ino, bool modified);

    /**
     * Metadata sync point: journals timestamps, releases deferred block
     * frees for reuse (Section 3.6), commits the journal.
     */
    void fsyncMeta(Inode &ino);
    ///@}

    /** @name Journal and recovery */
    ///@{
    Journal &journal() { return journal_; }

    /** Fold committed state into the checkpoint and truncate the log. */
    void checkpoint();

    /**
     * Simulated crash + remount: rebuild from the last checkpoint plus
     * committed journal records of @p crashed (in-memory fast path).
     */
    static std::unique_ptr<Ext4Fs> recover(ssd::BlockStore &media,
                                           const Ext4Fs &crashed);

    /**
     * Mount from the device bytes alone: read the superblock, load the
     * checkpoint image, and replay every intact journal transaction
     * (torn commits are detected by checksum and ignored). This is the
     * real crash-recovery path — it uses no state from the crashed
     * instance.
     */
    static std::unique_ptr<Ext4Fs>
    recoverFromMedia(ssd::BlockStore &media,
                     sim::EventQueue *eq = nullptr);
    ///@}

    /** @name On-disk metadata layout (for tests) */
    ///@{
    BlockNo journalStartBlock() const { return journalStart_; }
    std::uint64_t journalRegionBlocks() const { return journalBlocks_; }
    BlockNo checkpointStartBlock() const { return cpStart_; }
    std::uint64_t checkpointRegionBlocks() const { return cpBlocks_; }
    ///@}

    /**
     * Consistency check: bitmap/extent agreement, no double-referenced
     * blocks, dirent validity, full-mapping invariant.
     * @param why Filled with the first violation found.
     */
    bool fsck(std::string *why = nullptr) const;

    BlockAllocator &allocator() { return alloc_; }
    ssd::BlockStore &media() { return media_; }

    /**
     * Per-inode placement for multi-device volumes: the hook returns
     * the [lo, hi) block range an inode's data may occupy, and every
     * allocation for that inode stays inside it (so a file never
     * straddles a device slot). Null (the default) keeps the classic
     * whole-device goal-directed allocator — single-device behavior
     * is bit-identical. Journal replay reserves recorded runs
     * directly, so recovery is placement-agnostic.
     */
    using PlacementFn
        = std::function<std::pair<BlockNo, BlockNo>(const Inode &)>;
    void setPlacement(PlacementFn fn) { placement_ = std::move(fn); }

    /** @name Statistics */
    ///@{
    std::uint64_t metadataOps() const { return metadataOps_; }
    std::uint64_t extentLookups() const { return extentLookups_; }
    std::uint64_t blocksZeroed() const { return blocksZeroed_; }
    ///@}

    /**
     * Attach the per-tenant counter table and the kernel's active-
     * tenant slot (both null = disabled). Wires the journal too, so
     * records and metadata ops are attributed at the same program
     * points as the aggregate stats.
     */
    void setTenantAccounting(obs::TenantAccounting *a,
                             const TenantId *activeTenant)
    {
        acct_ = a;
        activeTenant_ = activeTenant;
        journal_.setTenantAccounting(a, activeTenant);
    }

  private:
    struct Checkpoint;
    struct RawMountTag
    {
    };

    /** Non-formatting constructor used by recoverFromMedia(). */
    Ext4Fs(ssd::BlockStore &media, FsConfig cfg, sim::EventQueue *eq,
           RawMountTag);

    static BlockNo computeFirstData(const ssd::BlockStore &media,
                                    const FsConfig &cfg);

    Time now() const;
    FsStatus resolveParent(const std::string &path, InodeNum *parent,
                           std::string *leaf) const;
    FsStatus makeNode(const std::string &path, FileType type,
                      std::uint16_t mode, const Credentials &creds,
                      InodeNum *out);
    void apply(const JRecord &rec, bool live);
    void logAndApply(JRecord rec);
    void persistTxn(const std::vector<JRecord> &txn);
    void persistCheckpointImage();
    void writeSuperblock(std::uint64_t imageBytes);
    void zeroRun(BlockNo start, std::uint64_t count);
    FsStatus allocateRun(const Inode &ino, std::uint64_t want,
                         BlockNo goal, BlockNo *start,
                         std::uint64_t *got);
    void takeCheckpoint();

    /** metadataOps_++ plus per-tenant attribution (same site). */
    void noteMetadataOp()
    {
        metadataOps_++;
        if (acct_)
            acct_->of(activeTenant_ ? *activeTenant_ : kSystemTenant)
                .fsMetadataOps++;
    }

    ssd::BlockStore &media_;
    FsConfig cfg_;
    sim::EventQueue *eq_;
    BlockAllocator alloc_;
    Journal journal_;

    std::map<InodeNum, std::unique_ptr<Inode>> inodes_;
    InodeNum nextIno_ = kRootIno + 1;

    std::unique_ptr<Checkpoint> checkpoint_;

    /** On-disk metadata layout. */
    BlockNo journalStart_ = 1;
    std::uint64_t journalBlocks_ = 0;
    BlockNo cpStart_ = 0;
    std::uint64_t cpBlocks_ = 0;
    std::uint64_t journalOff_ = 0; //!< append offset within the region

    std::uint64_t metadataOps_ = 0;
    mutable std::uint64_t extentLookups_ = 0;
    std::uint64_t blocksZeroed_ = 0;

    obs::TenantAccounting *acct_ = nullptr;
    const TenantId *activeTenant_ = nullptr;

    PlacementFn placement_;
};

} // namespace bpd::fs

#endif // BPD_FS_EXT4_HPP
