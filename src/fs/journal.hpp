/**
 * @file
 * Metadata journal (ordered-mode ext4 analogue: metadata-only journaling,
 * matching the paper's "ext4 without data journaling" setup, Section 4).
 *
 * Each metadata-mutating operation runs inside a transaction; records of
 * committed transactions survive a simulated crash, uncommitted ones do
 * not. Ext4Fs::recover() replays the committed log over the last
 * checkpoint to reconstruct a consistent file system.
 */

#ifndef BPD_FS_JOURNAL_HPP
#define BPD_FS_JOURNAL_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/tenant.hpp"

namespace bpd::fs {

/** Journal record opcodes. */
enum class JOp : std::uint8_t
{
    CreateInode,  //!< a=ino, b=type, c=mode, d=uid<<32|gid
    FreeInode,    //!< a=ino
    SetSize,      //!< a=ino, b=size
    AddExtent,    //!< a=ino, b=lblk, c=pblk, d=count
    TruncExtents, //!< a=ino, b=fromLblk
    AddDirent,    //!< a=dirIno, b=childIno, s=name
    RmDirent,     //!< a=dirIno, s=name
    SetTimes,     //!< a=ino, b=mtime, c=atime
};

struct JRecord
{
    JOp op;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint64_t d = 0;
    std::string s;
};

class Journal
{
  public:
    /** Open a transaction. Nested begins stack (inner commits defer). */
    void begin();

    /** Append a record to the open transaction. */
    void log(JRecord rec);

    /** Commit the outermost transaction, making its records durable. */
    void commit();

    /**
     * Install a hook invoked with each durably committed transaction
     * (the FS uses it to persist the records to the on-disk journal).
     */
    void
    setCommitHook(std::function<void(const std::vector<JRecord> &)> hook)
    {
        commitHook_ = std::move(hook);
    }

    /**
     * Install an additional observer called with the record count of
     * each committed transaction. Unlike the commit hook (which the FS
     * owns for durability), this slot is reserved for observability and
     * must not mutate filesystem state.
     */
    void setCommitObserver(std::function<void(std::size_t)> obs)
    {
        commitObs_ = std::move(obs);
    }

    /** Abort: discard the open transaction. */
    void abort();

    /** Simulated crash: drop any uncommitted transaction. */
    void crash();

    /** Committed transactions since the last checkpoint. */
    const std::vector<std::vector<JRecord>> &committed() const
    {
        return committed_;
    }

    /** Checkpoint barrier: committed records are folded and dropped. */
    void truncateAtCheckpoint();

    bool inTransaction() const { return depth_ > 0; }
    std::uint64_t committedTxns() const { return committedTxns_; }
    std::uint64_t records() const { return records_; }

    /**
     * Attach the per-tenant counter table and the kernel's active-
     * tenant slot (both null = disabled): log() attributes each record
     * to *activeTenant at the same point it increments records().
     */
    void setTenantAccounting(obs::TenantAccounting *a,
                             const TenantId *activeTenant)
    {
        acct_ = a;
        activeTenant_ = activeTenant;
    }

  private:
    int depth_ = 0;
    std::vector<JRecord> open_;
    std::vector<std::vector<JRecord>> committed_;
    std::uint64_t committedTxns_ = 0;
    std::uint64_t records_ = 0;
    std::function<void(const std::vector<JRecord> &)> commitHook_;
    std::function<void(std::size_t)> commitObs_;
    obs::TenantAccounting *acct_ = nullptr;
    const TenantId *activeTenant_ = nullptr;
};

} // namespace bpd::fs

#endif // BPD_FS_JOURNAL_HPP
