#include "fs/journal.hpp"

#include "sim/logging.hpp"

namespace bpd::fs {

void
Journal::begin()
{
    depth_++;
}

void
Journal::log(JRecord rec)
{
    sim::panicIf(depth_ == 0, "journal record outside a transaction");
    open_.push_back(std::move(rec));
    records_++;
    if (acct_)
        acct_->of(activeTenant_ ? *activeTenant_ : kSystemTenant)
            .fsJournalRecords++;
}

void
Journal::commit()
{
    sim::panicIf(depth_ == 0, "commit without begin");
    if (--depth_ > 0)
        return;
    if (!open_.empty()) {
        committed_.push_back(std::move(open_));
        open_.clear();
        committedTxns_++;
        if (commitHook_)
            commitHook_(committed_.back());
        if (commitObs_)
            commitObs_(committed_.back().size());
    }
}

void
Journal::abort()
{
    sim::panicIf(depth_ == 0, "abort without begin");
    if (--depth_ == 0)
        open_.clear();
}

void
Journal::crash()
{
    depth_ = 0;
    open_.clear();
}

void
Journal::truncateAtCheckpoint()
{
    sim::panicIf(depth_ != 0, "checkpoint inside a transaction");
    committed_.clear();
}

} // namespace bpd::fs
