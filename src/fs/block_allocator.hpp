/**
 * @file
 * Bitmap block allocator, ext4-style: goal-directed first fit returning
 * contiguous runs so files stay mostly extent-contiguous.
 */

#ifndef BPD_FS_BLOCK_ALLOCATOR_HPP
#define BPD_FS_BLOCK_ALLOCATOR_HPP

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace bpd::fs {

class BlockAllocator
{
  public:
    /**
     * @param totalBlocks Device size in 4 KiB blocks.
     * @param firstDataBlock Blocks below this are reserved for metadata.
     */
    BlockAllocator(std::uint64_t totalBlocks, BlockNo firstDataBlock);

    /**
     * Allocate up to @p want contiguous blocks, preferring @p goal.
     * @return (start, got) with 1 <= got <= want, or nullopt when full.
     */
    std::optional<std::pair<BlockNo, std::uint64_t>>
    alloc(std::uint64_t want, BlockNo goal);

    /**
     * Range-constrained alloc: like alloc(), but only blocks in
     * [lo, hi) are candidates (the run never crosses @p hi). This is
     * the placement primitive for the multi-device volume: each
     * inode's extents stay inside its home device's slot range.
     */
    std::optional<std::pair<BlockNo, std::uint64_t>>
    allocIn(std::uint64_t want, BlockNo goal, BlockNo lo, BlockNo hi);

    /** Free a run. Double frees panic. */
    void free(BlockNo start, std::uint64_t count);

    /**
     * Mark a specific run allocated (journal replay path). Panics when
     * any block is already allocated.
     */
    void reserve(BlockNo start, std::uint64_t count);

    bool isAllocated(BlockNo b) const;
    std::uint64_t freeBlocks() const { return freeCount_; }
    std::uint64_t totalBlocks() const { return total_; }
    BlockNo firstDataBlock() const { return firstData_; }

    /** Serialize for checkpointing. */
    std::vector<std::uint64_t> snapshotWords() const { return bits_; }
    void restoreWords(std::vector<std::uint64_t> words,
                      std::uint64_t freeCount);

  private:
    bool testBit(std::uint64_t b) const;
    void setBit(std::uint64_t b);
    void clearBit(std::uint64_t b);
    /** Length of the free run starting at @p b, capped at @p cap. */
    std::uint64_t freeRunAt(BlockNo b, std::uint64_t cap) const;

    std::uint64_t total_;
    BlockNo firstData_;
    std::uint64_t freeCount_;
    std::vector<std::uint64_t> bits_;
};

} // namespace bpd::fs

#endif // BPD_FS_BLOCK_ALLOCATOR_HPP
