/**
 * @file
 * Kernel page cache for buffered (non-O_DIRECT) file I/O. LRU with
 * write-back: dirty pages are flushed on fsync or eviction.
 */

#ifndef BPD_FS_PAGE_CACHE_HPP
#define BPD_FS_PAGE_CACHE_HPP

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "obs/tenant.hpp"

namespace bpd::fs {

class PageCache
{
  public:
    struct Page
    {
        InodeNum ino;
        std::uint64_t index; //!< file page index
        std::array<std::uint8_t, kBlockBytes> data;
        bool dirty = false;
        /** Tenant that last dirtied/touched the page; dirty-victim
         * writeback I/O is attributed to it. */
        TenantId tenant = kSystemTenant;
    };

    explicit PageCache(std::uint64_t capacityBytes);

    /** Look up a cached page; refreshes LRU position. */
    Page *find(InodeNum ino, std::uint64_t index);

    /**
     * Insert a page (takes LRU victim if at capacity).
     * @param[out] evicted Filled with the victim when it was dirty.
     * @return The new resident page.
     */
    Page *insert(InodeNum ino, std::uint64_t index,
                 std::unique_ptr<Page> *evicted);

    /** Collect (and clean) all dirty pages of @p ino, for writeback. */
    std::vector<Page *> collectDirty(InodeNum ino);

    /** Drop all pages of @p ino (losing dirty data; caller flushes). */
    void invalidate(InodeNum ino);

    std::size_t residentPages() const { return pages_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /**
     * Attach the per-tenant counter table and the kernel's active-
     * tenant slot (both null = disabled). Hits/misses are attributed
     * to *activeTenant at the same program points as hits_/misses_.
     */
    void setTenantAccounting(obs::TenantAccounting *a,
                             const TenantId *activeTenant)
    {
        acct_ = a;
        activeTenant_ = activeTenant;
    }

  private:
    TenantId curTenant() const
    {
        return activeTenant_ ? *activeTenant_ : kSystemTenant;
    }

    using Key = std::uint64_t;

    static Key
    key(InodeNum ino, std::uint64_t index)
    {
        return (ino << 40) ^ index;
    }

    std::uint64_t capacityPages_;
    // LRU list front = most recent.
    std::list<std::unique_ptr<Page>> lru_;
    std::unordered_map<Key, std::list<std::unique_ptr<Page>>::iterator>
        pages_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    obs::TenantAccounting *acct_ = nullptr;
    const TenantId *activeTenant_ = nullptr;
};

} // namespace bpd::fs

#endif // BPD_FS_PAGE_CACHE_HPP
