/**
 * @file
 * Thin VFS layer: open() semantics (create/truncate flags, permission
 * checks) over Ext4Fs, plus the open-state bookkeeping the BypassD sharing
 * policy reads (Section 4.5.2).
 */

#ifndef BPD_FS_VFS_HPP
#define BPD_FS_VFS_HPP

#include <string>

#include "fs/ext4.hpp"

namespace bpd::fs {

class Vfs
{
  public:
    explicit Vfs(Ext4Fs &fs) : fs_(fs) {}

    /**
     * Resolve-or-create per @p flags with permission checks.
     * @param[out] out Inode number on success.
     */
    FsStatus
    open(const std::string &path, std::uint32_t flags, std::uint16_t mode,
         const Credentials &creds, InodeNum *out)
    {
        InodeNum ino;
        FsStatus st = fs_.resolve(path, &ino);
        if (st == FsStatus::NoEnt && (flags & kOpenCreate)) {
            st = fs_.create(path, mode, creds, &ino);
            if (st != FsStatus::Ok)
                return st;
        } else if (st != FsStatus::Ok) {
            return st;
        }
        Inode *node = fs_.inode(ino);
        if (node->isDir() && (flags & kOpenWrite))
            return FsStatus::IsDir;
        if (!Ext4Fs::mayAccess(*node, creds, (flags & kOpenRead) != 0,
                               (flags & kOpenWrite) != 0))
            return FsStatus::Access;
        if ((flags & kOpenTrunc) && (flags & kOpenWrite)
            && !node->isDir()) {
            st = fs_.truncate(*node, 0);
            if (st != FsStatus::Ok)
                return st;
        }
        *out = ino;
        return FsStatus::Ok;
    }

    Ext4Fs &fs() { return fs_; }

  private:
    Ext4Fs &fs_;
};

} // namespace bpd::fs

#endif // BPD_FS_VFS_HPP
