#include "fs/page_cache.hpp"

#include "sim/logging.hpp"

namespace bpd::fs {

PageCache::PageCache(std::uint64_t capacityBytes)
    : capacityPages_(capacityBytes / kBlockBytes)
{
    sim::panicIf(capacityPages_ == 0, "page cache smaller than one page");
}

PageCache::Page *
PageCache::find(InodeNum ino, std::uint64_t index)
{
    auto it = pages_.find(key(ino, index));
    if (it == pages_.end()) {
        misses_++;
        if (acct_)
            acct_->of(curTenant()).fsPageCacheMisses++;
        return nullptr;
    }
    hits_++;
    if (acct_)
        acct_->of(curTenant()).fsPageCacheHits++;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (activeTenant_)
        it->second->get()->tenant = curTenant();
    return it->second->get();
}

PageCache::Page *
PageCache::insert(InodeNum ino, std::uint64_t index,
                  std::unique_ptr<Page> *evicted)
{
    auto it = pages_.find(key(ino, index));
    if (it != pages_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->get();
    }
    if (pages_.size() >= capacityPages_) {
        // Evict the LRU tail.
        auto victimIt = std::prev(lru_.end());
        Page *victim = victimIt->get();
        pages_.erase(key(victim->ino, victim->index));
        if (victim->dirty && evicted)
            *evicted = std::move(*victimIt);
        lru_.erase(victimIt);
    }
    auto page = std::make_unique<Page>();
    page->ino = ino;
    page->index = index;
    page->tenant = curTenant();
    page->data.fill(0);
    lru_.push_front(std::move(page));
    pages_[key(ino, index)] = lru_.begin();
    return lru_.begin()->get();
}

std::vector<PageCache::Page *>
PageCache::collectDirty(InodeNum ino)
{
    std::vector<Page *> out;
    for (auto &p : lru_) {
        if (p->ino == ino && p->dirty) {
            p->dirty = false;
            out.push_back(p.get());
        }
    }
    return out;
}

void
PageCache::invalidate(InodeNum ino)
{
    for (auto it = lru_.begin(); it != lru_.end();) {
        if ((*it)->ino == ino) {
            pages_.erase(key((*it)->ino, (*it)->index));
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace bpd::fs
