/**
 * @file
 * Common file-system types: status codes, credentials, file modes.
 */

#ifndef BPD_FS_TYPES_HPP
#define BPD_FS_TYPES_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace bpd::fs {

/** POSIX-flavoured status codes. */
enum class FsStatus : std::uint8_t
{
    Ok,
    NoEnt,   //!< path component missing
    Exists,  //!< create of an existing name
    Access,  //!< permission denied
    NotDir,  //!< path component is not a directory
    IsDir,   //!< data op on a directory
    NoSpace, //!< device full
    Inval,   //!< invalid argument
    Busy,    //!< conflicting open state
    NotEmpty, //!< directory not empty
    NoDev    //!< backing device evicted / gone (ENODEV)
};

const char *toString(FsStatus st);

/** Process credentials used for permission checks. */
struct Credentials
{
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;

    bool isRoot() const { return uid == 0; }
    bool operator==(const Credentials &) const = default;
};

/** File type. */
enum class FileType : std::uint8_t { Regular, Directory };

/** Mode permission bits (lower 9 bits of st_mode). */
constexpr std::uint16_t kModeUserR = 0400;
constexpr std::uint16_t kModeUserW = 0200;
constexpr std::uint16_t kModeGroupR = 0040;
constexpr std::uint16_t kModeGroupW = 0020;
constexpr std::uint16_t kModeOtherR = 0004;
constexpr std::uint16_t kModeOtherW = 0002;

/** Open flags (subset). */
enum OpenFlags : std::uint32_t
{
    kOpenRead = 1u << 0,
    kOpenWrite = 1u << 1,
    kOpenCreate = 1u << 2,
    kOpenTrunc = 1u << 3,
    kOpenDirect = 1u << 4,  //!< O_DIRECT: bypass the page cache
    kOpenAppend = 1u << 5,
    /**
     * Caller intends kernel-interface (buffered or direct) access only;
     * used by the sharing policy of Section 4.5.2.
     */
    kOpenKernelOnly = 1u << 6,
};

} // namespace bpd::fs

#endif // BPD_FS_TYPES_HPP
