/**
 * @file
 * On-disk serialization helpers for the file system's metadata region:
 * bounds-checked little-endian byte streams and a FNV-1a checksum used
 * to detect torn journal commits.
 *
 * Metadata layout on the device:
 *   block 0                      superblock
 *   blocks [1, 1+J)              journal region (appended transactions)
 *   blocks [1+J, 1+J+C)          checkpoint image
 *   blocks [firstDataBlock, ...) file data
 */

#ifndef BPD_FS_ONDISK_HPP
#define BPD_FS_ONDISK_HPP

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hpp"

namespace bpd::fs {

constexpr std::uint64_t kSuperMagic = 0xB09A55D0F5ull;
constexpr std::uint64_t kCheckpointMagic = 0xC4EC9017ull;
constexpr std::uint64_t kTxnMagic = 0x10094A1ull;

/** FNV-1a 64-bit checksum. */
inline std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < len; i++)
        h = (h ^ data[i]) * 1099511628211ull;
    return h;
}

/** Growable little-endian byte stream writer. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    u32(std::uint32_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    u64(std::uint64_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    void
    raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked reader over a byte buffer. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {
    }

    bool ok() const { return ok_; }
    std::size_t consumed() const { return pos_; }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    std::uint16_t
    u16()
    {
        std::uint16_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!ok_ || pos_ + n > len_) {
            ok_ = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

  private:
    void
    raw(void *out, std::size_t n)
    {
        if (!ok_ || pos_ + n > len_) {
            ok_ = false;
            return;
        }
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    const std::uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace bpd::fs

#endif // BPD_FS_ONDISK_HPP
