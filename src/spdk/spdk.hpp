/**
 * @file
 * SPDK-like baseline: a userspace NVMe driver with exclusive device
 * ownership. No file system, no kernel in the data path, raw LBA
 * addressing, zero-copy into caller buffers — the paper's lower bound on
 * latency (Section 6.3). Claiming the device disables every other queue
 * (the kernel driver is unbound), which is precisely why SPDK cannot
 * share the device (Fig. 10 has no SPDK bars).
 */

#ifndef BPD_SPDK_SPDK_HPP
#define BPD_SPDK_SPDK_HPP

#include <functional>
#include <map>
#include <memory>
#include <span>

#include "common/types.hpp"
#include "kern/cost_model.hpp"
#include "kern/cpu_model.hpp"
#include "kern/kernel.hpp"
#include "sim/event_queue.hpp"
#include "ssd/dispatcher.hpp"
#include "ssd/nvme.hpp"

namespace bpd::spdk {

struct SpdkCosts
{
    Time submitNs = 100; //!< build command + doorbell
    Time reapNs = 80;    //!< poll CQ + complete
};

class SpdkDriver
{
  public:
    SpdkDriver(sim::EventQueue &eq, ssd::NvmeDevice &dev,
               kern::CpuModel &cpu, Pasid owner, SpdkCosts costs = {});
    ~SpdkDriver();
    SpdkDriver(const SpdkDriver &) = delete;
    SpdkDriver &operator=(const SpdkDriver &) = delete;

    /**
     * Claim the device (unbind everyone else).
     * @retval false when another owner already claimed it.
     */
    bool init();

    /**
     * Release the claim and re-enable other users. With I/O still in
     * flight the release is deferred: queue pairs and dispatchers
     * must outlive their completions, and the exclusive claim must
     * hold while DMA is outstanding, so teardown polls until the last
     * completion reaps and only then destroys queues and releases the
     * device. initialized() stays true until that happens.
     */
    void shutdown();

    bool initialized() const { return initialized_; }

    /** I/Os submitted but not yet reaped. */
    std::uint64_t pendingIos() const { return pendingIos_; }

    /** Raw read of @p buf.size() bytes at device byte address @p addr. */
    void read(Tid tid, DevAddr addr, std::span<std::uint8_t> buf,
              kern::IoCb cb);

    /** Raw write. */
    void write(Tid tid, DevAddr addr, std::span<const std::uint8_t> buf,
               kern::IoCb cb);

    /**
     * Attach the QoS registry (null = disabled, the default). The
     * baseline then charges the owner tenant's token buckets per I/O;
     * over-limit submissions park and issue in order on refill, so
     * even the kernel-bypass lower bound honors tenant caps.
     */
    void setQos(qos::Registry *q) { qos_ = q; }

  private:
    struct ThreadCtx
    {
        ssd::QueuePair *qp = nullptr;
        std::unique_ptr<ssd::CommandDispatcher> disp;
    };

    ThreadCtx &ctx(Tid tid);
    void doIo(Tid tid, ssd::Op op, DevAddr addr,
              std::span<std::uint8_t> buf, kern::IoCb cb);
    void doIoNow(Tid tid, ssd::Op op, DevAddr addr,
                 std::span<std::uint8_t> buf, kern::IoCb cb);
    void scheduleDrainPoll();
    void teardown();

    sim::EventQueue &eq_;
    ssd::NvmeDevice &dev_;
    kern::CpuModel &cpu_;
    Pasid owner_;
    SpdkCosts costs_;
    bool initialized_ = false;
    bool draining_ = false;        //!< shutdown requested, I/O pending
    std::uint64_t pendingIos_ = 0; //!< submitted, not yet reaped
    /** Cancels queued drain polls if the driver is destroyed first. */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    std::map<Tid, ThreadCtx> threads_;
    qos::Registry *qos_ = nullptr;
};

} // namespace bpd::spdk

#endif // BPD_SPDK_SPDK_HPP
