#include "spdk/spdk.hpp"

#include "qos/qos.hpp"
#include "sim/logging.hpp"

namespace bpd::spdk {

SpdkDriver::SpdkDriver(sim::EventQueue &eq, ssd::NvmeDevice &dev,
                       kern::CpuModel &cpu, Pasid owner, SpdkCosts costs)
    : eq_(eq), dev_(dev), cpu_(cpu), owner_(owner), costs_(costs)
{
}

SpdkDriver::~SpdkDriver()
{
    *alive_ = false; // queued drain polls must not touch freed state
    teardown();
}

bool
SpdkDriver::init()
{
    if (initialized_)
        return true;
    if (!dev_.claimExclusive(owner_))
        return false;
    initialized_ = true;
    return true;
}

void
SpdkDriver::shutdown()
{
    if (!initialized_)
        return;
    if (pendingIos_ > 0) {
        // Completions are still in flight. Destroying queue pairs and
        // dispatchers now would let device callbacks fire into freed
        // state, and releasing the claim would re-enable other users
        // while our DMA is outstanding. Drain first.
        if (!draining_) {
            draining_ = true;
            scheduleDrainPoll();
        }
        return;
    }
    teardown();
}

void
SpdkDriver::scheduleDrainPoll()
{
    eq_.after(kUs, [this, alive = alive_] {
        if (!*alive)
            return;
        if (pendingIos_ > 0) {
            scheduleDrainPoll();
            return;
        }
        teardown();
    });
}

void
SpdkDriver::teardown()
{
    if (!initialized_)
        return;
    sim::panicIf(pendingIos_ > 0, "SPDK teardown with I/O in flight");
    for (auto &[tid, tc] : threads_) {
        if (tc.qp)
            dev_.destroyQueuePair(tc.qp->qid());
    }
    threads_.clear();
    dev_.releaseExclusive(owner_);
    draining_ = false;
    initialized_ = false;
}

SpdkDriver::ThreadCtx &
SpdkDriver::ctx(Tid tid)
{
    ThreadCtx &tc = threads_[tid];
    if (!tc.qp) {
        tc.qp = dev_.createQueuePair(owner_, 1024, /*vbaMode=*/false);
        sim::panicIf(tc.qp == nullptr, "SPDK queue creation failed");
        tc.disp = std::make_unique<ssd::CommandDispatcher>(*tc.qp);
    }
    return tc;
}

void
SpdkDriver::read(Tid tid, DevAddr addr, std::span<std::uint8_t> buf,
                 kern::IoCb cb)
{
    doIo(tid, ssd::Op::Read, addr, buf, std::move(cb));
}

void
SpdkDriver::write(Tid tid, DevAddr addr,
                  std::span<const std::uint8_t> buf, kern::IoCb cb)
{
    doIo(tid, ssd::Op::Write, addr,
         std::span<std::uint8_t>(const_cast<std::uint8_t *>(buf.data()),
                                 buf.size()),
         std::move(cb));
}

void
SpdkDriver::doIo(Tid tid, ssd::Op op, DevAddr addr,
                 std::span<std::uint8_t> buf, kern::IoCb cb)
{
    sim::panicIf(!initialized_, "SPDK I/O before init()");
    sim::panicIf(draining_, "SPDK I/O submitted during shutdown drain");
    // QoS gate: charge the owner tenant before the submit-cost model
    // runs. Parked I/Os count as pending so a shutdown drain waits for
    // them; the alive guard covers a driver destroyed while parked.
    if (qos_ && !qos_->tryAcquire(owner_, 1, buf.size())) {
        pendingIos_++;
        qos_->park(owner_, 1, buf.size(),
                   [this, alive = alive_, tid, op, addr, buf,
                    cb = std::move(cb)]() mutable {
                       if (!*alive)
                           return;
                       pendingIos_--;
                       doIoNow(tid, op, addr, buf, std::move(cb));
                   });
        return;
    }
    doIoNow(tid, op, addr, buf, std::move(cb));
}

void
SpdkDriver::doIoNow(Tid tid, ssd::Op op, DevAddr addr,
                    std::span<std::uint8_t> buf, kern::IoCb cb)
{
    pendingIos_++;
    const Time start = eq_.now();

    obs::TraceId trace = 0;
    if (obs::Tracer *t = dev_.tracer()) {
        trace = t->newTrace(owner_);
        const std::uint16_t track
            = t->track("spdk.t" + std::to_string(tid));
        const char *name
            = op == ssd::Op::Write ? "spdk.write" : "spdk.read";
        cb = [this, t, track, name, trace, start,
              cb = std::move(cb)](long long res, kern::IoTrace tr) {
            obs::RequestBreakdown b;
            b.userNs = tr.userNs;
            b.kernelNs = tr.kernelNs;
            b.translateNs = tr.translateNs;
            b.deviceNs = tr.deviceNs;
            b.bytes = res > 0 ? static_cast<std::uint64_t>(res) : 0;
            t->request(track, name, trace, start, eq_.now(), b);
            cb(res, tr);
        };
    }

    const Time submitCost = cpu_.scaled(costs_.submitNs);
    eq_.after(submitCost, [this, tid, op, addr, buf, start, trace,
                           cb = std::move(cb)]() {
        ThreadCtx &tc = ctx(tid);
        ssd::Command cmd;
        cmd.op = op;
        cmd.addr = addr;
        cmd.addrIsVba = false;
        cmd.len = static_cast<std::uint32_t>(buf.size());
        cmd.hostBuf = buf; // zero-copy: DMA straight into the caller
        cmd.trace = trace;
        const Time tSubmit = eq_.now();
        const bool ok = tc.disp->submit(
            cmd, [this, buf, start, tSubmit,
                  cb = std::move(cb)](const ssd::Completion &comp) {
                const Time reap = cpu_.scaled(costs_.reapNs);
                eq_.after(reap, [this, buf, start, tSubmit, comp,
                                 cb = std::move(cb)]() {
                    kern::IoTrace tr;
                    const Time total = eq_.now() - start;
                    tr.deviceNs = comp.completeTime - tSubmit;
                    tr.userNs = total - tr.deviceNs;
                    pendingIos_--;
                    cb(comp.status == ssd::Status::Success
                           ? static_cast<long long>(buf.size())
                           : kern::devErr(comp.status),
                       tr);
                });
            });
        sim::panicIf(!ok, "SPDK queue overflow");
    });
}

} // namespace bpd::spdk
