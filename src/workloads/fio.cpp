#include "workloads/fio.hpp"

#include <functional>
#include <map>

#include "sim/logging.hpp"

namespace bpd::wl {

const char *
toString(Engine e)
{
    switch (e) {
      case Engine::Sync: return "sync";
      case Engine::Libaio: return "libaio";
      case Engine::IoUring: return "io_uring";
      case Engine::Spdk: return "spdk";
      case Engine::Bypassd: return "bypassd";
    }
    return "?";
}

namespace {

struct JobCtx
{
    unsigned idx = 0;
    kern::Process *proc = nullptr;
    bypassd::UserLib *lib = nullptr;
    std::unique_ptr<kern::IoUring> ring;
    int fd = -1;
    DevAddr rawBase = 0; // SPDK raw region
    std::uint32_t fileId = obs::ReplayRec::kNoFile;
    sim::Rng rng{1};
    std::uint64_t cursor = 0;
    std::vector<std::uint8_t> buf;

    sim::Histogram lat;
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    sim::MeanAccumulator user, kern, dev, xlat;
    std::uint32_t inflight = 0;
    bool stopped = false;
};

} // namespace

FioResult
FioRunner::run(const FioJob &job)
{
    sim::panicIf(job.numJobs == 0, "fio: numJobs must be > 0");
    sim::panicIf(job.bs == 0 || job.bs % kSectorBytes != 0,
                 "fio: bs must be a sector multiple");

    auto ctxs = std::vector<std::unique_ptr<JobCtx>>();
    std::unique_ptr<spdk::SpdkDriver> spdkDrv;

    // Replay-stream recording (obs/trace.hpp): every workload-level op
    // the runner issues is recorded with its lane (job index) so
    // tools/trace_replay can re-drive the exact request stream.
    obs::Tracer *t = s_.tracer();
    const auto eng = static_cast<std::uint8_t>(job.engine);
    auto mark = [&](obs::ReplayRec::Op op, JobCtx &ctx,
                    std::uint64_t offset = 0, std::uint64_t aux = 0,
                    std::int64_t result = 0) {
        if (!t)
            return;
        obs::ReplayRec r;
        r.op = op;
        r.engine = eng;
        r.proc = ctx.proc->pasid();
        r.tid = ctx.idx;
        r.file = ctx.fileId;
        r.offset = offset;
        r.aux = aux;
        t->replayMark(r, result);
    };

    kern::Process *shared = nullptr;
    const bool write
        = job.rw == RwMode::RandWrite || job.rw == RwMode::SeqWrite;
    const bool random
        = job.rw == RwMode::RandRead || job.rw == RwMode::RandWrite;

    // ---- setup (simulated time passes, excluded from measurement) ----
    for (unsigned i = 0; i < job.numJobs; i++) {
        auto ctx = std::make_unique<JobCtx>();
        ctx->idx = i;
        ctx->rng = sim::Rng(job.seed * 7919 + i);
        ctx->buf.assign(job.bs, 0);
        for (auto &b : ctx->buf)
            b = static_cast<std::uint8_t>(ctx->rng.next());

        if (job.perProcess || i == 0) {
            ctx->proc = &s_.newProcess(1000 + i, 1000);
            if (!job.perProcess)
                shared = ctx->proc;
        } else {
            ctx->proc = shared;
        }

        const std::string path
            = job.filePrefix + std::to_string(i) + ".dat";
        switch (job.engine) {
          case Engine::Spdk:
            // Raw regions in the upper half of the device.
            ctx->rawBase = s_.cfg.deviceBytes / 2
                           + static_cast<DevAddr>(i) * job.fileBytes;
            sim::panicIf(ctx->rawBase + job.fileBytes
                             > s_.cfg.deviceBytes,
                         "fio: spdk regions exceed device");
            break;
          case Engine::Bypassd: {
            if (t)
                ctx->fileId = t->replayFile(path);
            const int cfd = s_.kernel.setupCreateFile(*ctx->proc, path,
                                                      job.fileBytes, 0);
            sim::panicIf(cfd < 0, "fio: file setup failed");
            mark(obs::ReplayRec::Create, *ctx, job.fileBytes, 0, cfd);
            int rc = -1;
            std::uint32_t ri = 0;
            if (t) {
                obs::ReplayRec r;
                r.op = obs::ReplayRec::Close;
                r.engine = eng;
                r.proc = ctx->proc->pasid();
                r.tid = ctx->idx;
                r.file = ctx->fileId;
                ri = t->replayBegin(r);
            }
            s_.kernel.sysClose(*ctx->proc, cfd, [&rc, t, ri](int r) {
                rc = r;
                if (t)
                    t->replayEnd(ri, r);
            });
            s_.run();
            ctx->lib = &s_.userLib(*ctx->proc);
            int fd = -1;
            const std::uint32_t oflags
                = fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect;
            if (t) {
                obs::ReplayRec r;
                r.op = obs::ReplayRec::Open;
                r.engine = eng;
                r.proc = ctx->proc->pasid();
                r.tid = ctx->idx;
                r.file = ctx->fileId;
                r.aux = oflags;
                ri = t->replayBegin(r);
            }
            ctx->lib->open(path, oflags, 0644, [&fd, t, ri](int f) {
                fd = f;
                if (t)
                    t->replayEnd(ri, f);
            });
            s_.run();
            sim::panicIf(fd < 0, "fio: bypassd open failed");
            sim::panicIf(!ctx->lib->isDirect(fd),
                         "fio: bypassd fd not direct");
            ctx->fd = fd;
            ctx->lib->prepareThread(i);
            mark(obs::ReplayRec::PrepThread, *ctx);
            break;
          }
          default: {
            if (t)
                ctx->fileId = t->replayFile(path);
            const int fd = s_.kernel.setupCreateFile(*ctx->proc, path,
                                                     job.fileBytes, 0);
            sim::panicIf(fd < 0, "fio: file setup failed");
            mark(obs::ReplayRec::Create, *ctx, job.fileBytes, 0, fd);
            ctx->fd = fd;
            if (job.engine == Engine::IoUring) {
                ctx->ring = std::make_unique<kern::IoUring>(s_.kernel,
                                                            *ctx->proc);
                mark(obs::ReplayRec::Open, *ctx);
            }
            break;
          }
        }
        ctxs.push_back(std::move(ctx));
    }

    if (job.engine == Engine::Spdk) {
        spdkDrv = std::make_unique<spdk::SpdkDriver>(
            s_.eq, s_.dev, s_.kernel.cpu(),
            ctxs[0]->proc->pasid());
        sim::panicIf(!spdkDrv->init(), "fio: spdk claim failed");
        mark(obs::ReplayRec::Open, *ctxs[0]);
    }

    // Application threads occupy CPUs while the job runs.
    s_.kernel.cpu().acquire(job.numJobs);
    mark(obs::ReplayRec::CpuAcquire, *ctxs[0], job.numJobs);

    const Time measureStart = s_.now() + job.warmup;
    const Time tEnd = measureStart + job.runtime;
    const std::uint64_t blocks = job.fileBytes / job.bs;
    sim::panicIf(blocks == 0, "fio: file smaller than block size");

    unsigned running = job.numJobs * job.iodepth;

    // Closed-loop issue function per in-flight slot.
    std::function<void(JobCtx &)> issue = [&](JobCtx &ctx) {
        if (s_.now() >= tEnd) {
            running--;
            return;
        }
        std::uint64_t blkIdx;
        if (random) {
            blkIdx = ctx.rng.nextUint(blocks);
        } else {
            blkIdx = ctx.cursor++ % blocks;
        }
        const std::uint64_t off
            = blkIdx * static_cast<std::uint64_t>(job.bs);
        const Time start = s_.now();
        std::uint32_t ri = 0;
        if (t) {
            obs::ReplayRec r;
            r.op = write ? obs::ReplayRec::Write : obs::ReplayRec::Read;
            r.engine = eng;
            r.lane = static_cast<std::uint16_t>(ctx.idx);
            r.proc = ctx.proc->pasid();
            r.tid = ctx.idx;
            r.file = ctx.fileId;
            r.offset = job.engine == Engine::Spdk ? ctx.rawBase + off
                                                  : off;
            r.len = job.bs;
            ri = t->replayBegin(r);
        }
        auto done = [&, start, ri](long long n, kern::IoTrace tr) {
            if (t)
                t->replayEnd(ri, n);
            sim::panicIf(n < 0, "fio: I/O failed");
            const Time now = s_.now();
            if (start >= measureStart && now <= tEnd) {
                ctx.lat.record(now - start);
                ctx.ops++;
                ctx.bytes += static_cast<std::uint64_t>(n);
                ctx.user.add(static_cast<double>(tr.userNs));
                ctx.kern.add(static_cast<double>(tr.kernelNs));
                ctx.dev.add(static_cast<double>(tr.deviceNs));
                ctx.xlat.add(static_cast<double>(tr.translateNs));
            }
            issue(ctx);
        };

        switch (job.engine) {
          case Engine::Sync:
            if (write) {
                s_.kernel.sysPwrite(*ctx.proc, ctx.fd, ctx.buf, off,
                                    done);
            } else {
                s_.kernel.sysPread(*ctx.proc, ctx.fd, ctx.buf, off,
                                   done);
            }
            break;
          case Engine::Libaio:
            if (write)
                s_.aio.pwrite(*ctx.proc, ctx.fd, ctx.buf, off, done);
            else
                s_.aio.pread(*ctx.proc, ctx.fd, ctx.buf, off, done);
            break;
          case Engine::IoUring:
            if (write)
                ctx.ring->pwrite(ctx.fd, ctx.buf, off, done);
            else
                ctx.ring->pread(ctx.fd, ctx.buf, off, done);
            break;
          case Engine::Spdk:
            if (write) {
                spdkDrv->write(ctx.idx, ctx.rawBase + off, ctx.buf,
                               done);
            } else {
                spdkDrv->read(ctx.idx, ctx.rawBase + off, ctx.buf,
                              done);
            }
            break;
          case Engine::Bypassd:
            if (write) {
                ctx.lib->pwrite(ctx.idx, ctx.fd, ctx.buf, off, done);
            } else {
                ctx.lib->pread(ctx.idx, ctx.fd, ctx.buf, off, done);
            }
            break;
        }
    };

    for (auto &ctx : ctxs) {
        for (std::uint32_t d = 0; d < job.iodepth; d++)
            issue(*ctx);
    }
    s_.run();
    sim::panicIf(running != 0, "fio: jobs still running after drain");

    s_.kernel.cpu().release(job.numJobs);
    mark(obs::ReplayRec::CpuRelease, *ctxs[0], job.numJobs);
    if (spdkDrv) {
        mark(obs::ReplayRec::Close, *ctxs[0]);
        spdkDrv->shutdown();
    }

    // ---- aggregate ----
    FioResult res;
    res.elapsed = job.runtime;
    sim::MeanAccumulator u, k, d, x;
    for (auto &ctx : ctxs) {
        res.latency.merge(ctx->lat);
        res.ops += ctx->ops;
        res.bytes += ctx->bytes;
        if (ctx->ops) {
            u.add(ctx->user.mean());
            k.add(ctx->kern.mean());
            d.add(ctx->dev.mean());
            x.add(ctx->xlat.mean());
        }
    }
    res.avgUserNs = u.mean();
    res.avgKernelNs = k.mean();
    res.avgDeviceNs = d.mean();
    res.avgTranslateNs = x.mean();

    std::map<TenantId, FioTenantSlice> slices;
    for (auto &ctx : ctxs) {
        FioTenantSlice &ts = slices[ctx->proc->pasid()];
        ts.tenant = ctx->proc->pasid();
        ts.ops += ctx->ops;
        ts.bytes += ctx->bytes;
    }
    for (auto &[id, ts] : slices) {
        if (const obs::TenantCounters *tc
            = s_.tenantAccounting().find(id)) {
            ts.fmaps = tc->bypassdColdFmaps + tc->bypassdWarmFmaps;
            ts.revocations = tc->bypassdRevokedVictims;
        }
        res.tenants.push_back(ts);
    }
    return res;
}

} // namespace bpd::wl
