#include "workloads/fio.hpp"

#include <functional>
#include <map>

#include "fabric/initiator.hpp"
#include "fabric/target.hpp"
#include "sim/logging.hpp"

namespace bpd::wl {

const char *
toString(Engine e)
{
    switch (e) {
      case Engine::Sync: return "sync";
      case Engine::Libaio: return "libaio";
      case Engine::IoUring: return "io_uring";
      case Engine::Spdk: return "spdk";
      case Engine::Bypassd: return "bypassd";
      case Engine::Fabric: return "fabric";
    }
    return "?";
}

namespace detail {

struct JobCtx
{
    unsigned idx = 0;
    kern::Process *proc = nullptr;
    bypassd::UserLib *lib = nullptr;
    std::unique_ptr<kern::IoUring> ring;
    int fd = -1;
    DevAddr rawBase = 0; // SPDK raw region
    DevId devId = 0;     // serving device (0 = unattributed)
    std::uint32_t fileId = obs::ReplayRec::kNoFile;
    sim::Rng rng{1};
    std::uint64_t cursor = 0;
    std::vector<std::uint8_t> buf;

    sim::Histogram lat;
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    sim::MeanAccumulator user, kern, dev, xlat;
    std::uint32_t inflight = 0;
    bool stopped = false;
};

/**
 * Heap-allocated state of one armed job, so in-flight I/O completions
 * (which capture `this` plus a JobCtx pointer — inside the inline
 * callback budget) stay valid while the caller drives the simulation
 * between arm() and collect().
 */
struct FioRunState
{
    sys::System &s;
    const FioJob job;
    obs::Tracer *t;
    std::uint8_t eng;
    bool write, random;

    std::vector<std::unique_ptr<JobCtx>> ctxs;
    std::unique_ptr<spdk::SpdkDriver> spdkDrv;
    Time measureStart = 0;
    Time tEnd = 0;
    std::uint64_t blocks = 0;
    unsigned running = 0;

    FioRunState(sys::System &sys, const FioJob &j)
        : s(sys), job(j), t(sys.tracer()),
          eng(static_cast<std::uint8_t>(j.engine)),
          write(j.rw == RwMode::RandWrite || j.rw == RwMode::SeqWrite),
          random(j.rw == RwMode::RandRead || j.rw == RwMode::RandWrite)
    {
    }

    // Replay-stream recording (obs/trace.hpp): every workload-level op
    // the runner issues is recorded with its lane (job index) so
    // tools/trace_replay can re-drive the exact request stream.
    void
    mark(obs::ReplayRec::Op op, JobCtx &ctx, std::uint64_t offset = 0,
         std::uint64_t aux = 0, std::int64_t result = 0)
    {
        if (!t)
            return;
        obs::ReplayRec r;
        r.op = op;
        r.engine = eng;
        r.proc = ctx.proc->pasid();
        r.tid = ctx.idx;
        r.dev = ctx.devId;
        r.file = ctx.fileId;
        r.offset = offset;
        r.aux = aux;
        t->replayMark(r, result);
    }

    void arm();
    void issue(JobCtx &ctx);
    FioResult collect();
};

void
FioRunState::arm()
{
    sim::panicIf(job.numJobs == 0, "fio: numJobs must be > 0");
    sim::panicIf(job.bs == 0 || job.bs % kSectorBytes != 0,
                 "fio: bs must be a sector multiple");

    kern::Process *shared = nullptr;

    // ---- setup (simulated time passes, excluded from measurement) ----
    for (unsigned i = 0; i < job.numJobs; i++) {
        auto ctx = std::make_unique<JobCtx>();
        ctx->idx = i;
        ctx->rng = sim::Rng(job.seed * 7919 + i);
        ctx->buf.assign(job.bs, 0);
        for (auto &b : ctx->buf)
            b = static_cast<std::uint8_t>(ctx->rng.next());

        if (job.perProcess || i == 0) {
            ctx->proc = &s.newProcess(1000 + i, 1000);
            if (!job.perProcess)
                shared = ctx->proc;
        } else {
            ctx->proc = shared;
        }

        const std::string path
            = job.filePrefix + std::to_string(i) + ".dat";
        switch (job.engine) {
          case Engine::Spdk:
            // Raw regions in the upper half of the device.
            ctx->rawBase = s.cfg.deviceBytes / 2
                           + static_cast<DevAddr>(i) * job.fileBytes;
            sim::panicIf(ctx->rawBase + job.fileBytes
                             > s.cfg.deviceBytes,
                         "fio: spdk regions exceed device");
            break;
          case Engine::Fabric: {
            sim::panicIf(job.fabric == nullptr,
                         "fio: fabric engine without an initiator");
            // Raw regions of the REMOTE device, carved by the caller.
            ctx->rawBase = job.fabricBase
                           + static_cast<DevAddr>(i) * job.fileBytes;
            const std::uint64_t remoteBytes
                = job.fabric->target().system().cfg.deviceBytes;
            sim::panicIf(ctx->rawBase + job.fileBytes > remoteBytes,
                         "fio: fabric regions exceed remote device");
            if (t)
                t->replayUnsupported(
                    "fabric remote I/O (no replay engine)");
            break;
          }
          case Engine::Bypassd: {
            if (t)
                ctx->fileId = t->replayFile(path);
            const int cfd = s.kernel.setupCreateFile(*ctx->proc, path,
                                                     job.fileBytes, 0);
            sim::panicIf(cfd < 0, "fio: file setup failed");
            mark(obs::ReplayRec::Create, *ctx, job.fileBytes, 0, cfd);
            int rc = -1;
            std::uint32_t ri = 0;
            if (t) {
                obs::ReplayRec r;
                r.op = obs::ReplayRec::Close;
                r.engine = eng;
                r.proc = ctx->proc->pasid();
                r.tid = ctx->idx;
                r.file = ctx->fileId;
                ri = t->replayBegin(r);
            }
            obs::Tracer *tr = t;
            s.kernel.sysClose(*ctx->proc, cfd, [&rc, tr, ri](int r) {
                rc = r;
                if (tr)
                    tr->replayEnd(ri, r);
            });
            s.eq.run();
            ctx->lib = &s.userLib(*ctx->proc);
            int fd = -1;
            const std::uint32_t oflags
                = fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect;
            if (t) {
                obs::ReplayRec r;
                r.op = obs::ReplayRec::Open;
                r.engine = eng;
                r.proc = ctx->proc->pasid();
                r.tid = ctx->idx;
                r.file = ctx->fileId;
                r.aux = oflags;
                ri = t->replayBegin(r);
            }
            ctx->lib->open(path, oflags, 0644, [&fd, tr, ri](int f) {
                fd = f;
                if (tr)
                    tr->replayEnd(ri, f);
            });
            s.eq.run();
            sim::panicIf(fd < 0, "fio: bypassd open failed");
            sim::panicIf(!ctx->lib->isDirect(fd),
                         "fio: bypassd fd not direct");
            ctx->fd = fd;
            ctx->devId = s.deviceOfFile(path);
            ctx->lib->prepareThread(i);
            mark(obs::ReplayRec::PrepThread, *ctx);
            break;
          }
          default: {
            if (t)
                ctx->fileId = t->replayFile(path);
            const int fd = s.kernel.setupCreateFile(*ctx->proc, path,
                                                    job.fileBytes, 0);
            sim::panicIf(fd < 0, "fio: file setup failed");
            mark(obs::ReplayRec::Create, *ctx, job.fileBytes, 0, fd);
            ctx->fd = fd;
            ctx->devId = s.deviceOfFile(path);
            if (job.engine == Engine::IoUring) {
                ctx->ring = std::make_unique<kern::IoUring>(s.kernel,
                                                            *ctx->proc);
                mark(obs::ReplayRec::Open, *ctx);
            }
            break;
          }
        }
        ctxs.push_back(std::move(ctx));
    }

    if (job.engine == Engine::Spdk) {
        spdkDrv = std::make_unique<spdk::SpdkDriver>(
            s.eq, s.dev, s.kernel.cpu(),
            ctxs[0]->proc->pasid());
        spdkDrv->setQos(s.qos());
        sim::panicIf(!spdkDrv->init(), "fio: spdk claim failed");
        mark(obs::ReplayRec::Open, *ctxs[0]);
    }

    if (job.engine == Engine::Fabric
        && job.fabric->state() == fab::ConnState::Idle) {
        // Async connect: the closed loops below may start issuing
        // while the capsule is in flight; the initiator queues them
        // and flushes in order on the ack.
        job.fabric->connect(ctxs[0]->proc->pasid());
    }

    // Application threads occupy CPUs while the job runs.
    s.kernel.cpu().acquire(job.numJobs);
    mark(obs::ReplayRec::CpuAcquire, *ctxs[0], job.numJobs);

    measureStart = s.now() + job.warmup;
    tEnd = measureStart + job.runtime;
    blocks = job.fileBytes / job.bs;
    sim::panicIf(blocks == 0, "fio: file smaller than block size");

    running = job.numJobs * job.iodepth;

    for (auto &ctx : ctxs) {
        for (std::uint32_t d = 0; d < job.iodepth; d++)
            issue(*ctx);
    }
}

/** Closed-loop issue function per in-flight slot. */
void
FioRunState::issue(JobCtx &ctx)
{
    if (s.now() >= tEnd) {
        running--;
        return;
    }
    std::uint64_t blkIdx;
    if (random) {
        blkIdx = ctx.rng.nextUint(blocks);
    } else {
        blkIdx = ctx.cursor++ % blocks;
    }
    const std::uint64_t off
        = blkIdx * static_cast<std::uint64_t>(job.bs);
    const Time start = s.now();
    std::uint32_t ri = 0;
    if (t) {
        obs::ReplayRec r;
        r.op = write ? obs::ReplayRec::Write : obs::ReplayRec::Read;
        r.engine = eng;
        r.lane = static_cast<std::uint16_t>(ctx.idx);
        r.proc = ctx.proc->pasid();
        r.tid = ctx.idx;
        r.dev = ctx.devId;
        r.file = ctx.fileId;
        r.offset = job.engine == Engine::Spdk
                           || job.engine == Engine::Fabric
                       ? ctx.rawBase + off
                       : off;
        r.len = job.bs;
        ri = t->replayBegin(r);
    }
    // `this` is heap-pinned until collect(); &ctx likewise. The whole
    // capture is 28 bytes — comfortably inside the inline budget.
    auto done = [this, &ctx, start, ri](long long n, kern::IoTrace tr) {
        if (t)
            t->replayEnd(ri, n);
        sim::panicIf(n < 0, "fio: I/O failed");
        const Time now = s.now();
        if (start >= measureStart && now <= tEnd) {
            ctx.lat.record(now - start);
            ctx.ops++;
            ctx.bytes += static_cast<std::uint64_t>(n);
            ctx.user.add(static_cast<double>(tr.userNs));
            ctx.kern.add(static_cast<double>(tr.kernelNs));
            ctx.dev.add(static_cast<double>(tr.deviceNs));
            ctx.xlat.add(static_cast<double>(tr.translateNs));
        }
        issue(ctx);
    };

    switch (job.engine) {
      case Engine::Sync:
        if (write) {
            s.kernel.sysPwrite(*ctx.proc, ctx.fd, ctx.buf, off,
                               done);
        } else {
            s.kernel.sysPread(*ctx.proc, ctx.fd, ctx.buf, off,
                              done);
        }
        break;
      case Engine::Libaio:
        if (write)
            s.aio.pwrite(*ctx.proc, ctx.fd, ctx.buf, off, done);
        else
            s.aio.pread(*ctx.proc, ctx.fd, ctx.buf, off, done);
        break;
      case Engine::IoUring:
        if (write)
            ctx.ring->pwrite(ctx.fd, ctx.buf, off, done);
        else
            ctx.ring->pread(ctx.fd, ctx.buf, off, done);
        break;
      case Engine::Spdk:
        if (write) {
            spdkDrv->write(ctx.idx, ctx.rawBase + off, ctx.buf,
                           done);
        } else {
            spdkDrv->read(ctx.idx, ctx.rawBase + off, ctx.buf,
                          done);
        }
        break;
      case Engine::Bypassd:
        if (write) {
            ctx.lib->pwrite(ctx.idx, ctx.fd, ctx.buf, off, done);
        } else {
            ctx.lib->pread(ctx.idx, ctx.fd, ctx.buf, off, done);
        }
        break;
      case Engine::Fabric:
        if (write) {
            job.fabric->write(ctx.idx, ctx.rawBase + off, ctx.buf,
                              done);
        } else {
            job.fabric->read(ctx.idx, ctx.rawBase + off, ctx.buf,
                             done);
        }
        break;
    }
}

FioResult
FioRunState::collect()
{
    sim::panicIf(running != 0, "fio: jobs still running after drain");

    s.kernel.cpu().release(job.numJobs);
    mark(obs::ReplayRec::CpuRelease, *ctxs[0], job.numJobs);
    if (spdkDrv) {
        mark(obs::ReplayRec::Close, *ctxs[0]);
        spdkDrv->shutdown();
    }

    // ---- aggregate ----
    FioResult res;
    res.elapsed = job.runtime;
    sim::MeanAccumulator u, k, d, x;
    for (auto &ctx : ctxs) {
        res.latency.merge(ctx->lat);
        res.ops += ctx->ops;
        res.bytes += ctx->bytes;
        if (ctx->ops) {
            u.add(ctx->user.mean());
            k.add(ctx->kern.mean());
            d.add(ctx->dev.mean());
            x.add(ctx->xlat.mean());
        }
    }
    res.avgUserNs = u.mean();
    res.avgKernelNs = k.mean();
    res.avgDeviceNs = d.mean();
    res.avgTranslateNs = x.mean();

    std::map<TenantId, FioTenantSlice> slices;
    for (auto &ctx : ctxs) {
        FioTenantSlice &ts = slices[ctx->proc->pasid()];
        ts.tenant = ctx->proc->pasid();
        ts.ops += ctx->ops;
        ts.bytes += ctx->bytes;
    }
    for (auto &[id, ts] : slices) {
        if (const obs::TenantCounters *tc
            = s.tenantAccounting().find(id)) {
            ts.fmaps = tc->bypassdColdFmaps + tc->bypassdWarmFmaps;
            ts.revocations = tc->bypassdRevokedVictims;
        }
        res.tenants.push_back(ts);
    }
    return res;
}

} // namespace detail

FioPending::FioPending() = default;
FioPending::~FioPending() = default;
FioPending::FioPending(FioPending &&) noexcept = default;
FioPending &FioPending::operator=(FioPending &&) noexcept = default;

FioPending
FioRunner::arm(const FioJob &job)
{
    FioPending p;
    p.st_ = std::make_unique<detail::FioRunState>(s_, job);
    p.st_->arm();
    return p;
}

FioResult
FioRunner::collect(FioPending p)
{
    sim::panicIf(!p.st_, "fio: collect on an empty pending job");
    return p.st_->collect();
}

FioResult
FioRunner::run(const FioJob &job)
{
    FioPending p = arm(job);
    s_.run();
    return collect(std::move(p));
}

} // namespace bpd::wl
