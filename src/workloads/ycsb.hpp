/**
 * @file
 * YCSB core-workload generators (A-F), used by the WiredTiger, BPF-KV
 * and KVell evaluation models (Sections 6.4, 6.5).
 *
 *   A: 50% read / 50% update, zipfian
 *   B: 95% read /  5% update, zipfian
 *   C: 100% read, zipfian
 *   D: 95% read (latest) / 5% insert
 *   E: 95% scan / 5% insert, zipfian start keys
 *   F: 50% read / 50% read-modify-write, zipfian
 */

#ifndef BPD_WORKLOADS_YCSB_HPP
#define BPD_WORKLOADS_YCSB_HPP

#include <cstdint>

#include "sim/random.hpp"

namespace bpd::wl {

enum class Ycsb { A, B, C, D, E, F };

const char *toString(Ycsb w);

struct YcsbOp
{
    enum class Kind : std::uint8_t { Read, Update, Insert, Scan, Rmw };
    Kind kind;
    std::uint64_t key;
    unsigned scanLen = 0;
};

class YcsbGenerator
{
  public:
    YcsbGenerator(Ycsb workload, std::uint64_t records,
                  std::uint64_t seed);

    YcsbOp next();

    std::uint64_t records() const { return records_; }
    Ycsb workload() const { return workload_; }

    static constexpr unsigned kMaxScanLen = 100;

  private:
    Ycsb workload_;
    std::uint64_t records_;
    sim::Rng rng_;
    sim::ScrambledZipfianGenerator zipf_;
    sim::LatestGenerator latest_;
};

} // namespace bpd::wl

#endif // BPD_WORKLOADS_YCSB_HPP
