/**
 * @file
 * fio-like closed-loop workload engine (the paper's microbenchmark tool,
 * Section 6.3). Spawns N simulated jobs, each issuing direct I/O at queue
 * depth 1 (configurable) against its own file (or raw region for SPDK),
 * through one of five engines: sync, libaio, io_uring, SPDK, BypassD.
 */

#ifndef BPD_WORKLOADS_FIO_HPP
#define BPD_WORKLOADS_FIO_HPP

#include <memory>
#include <string>
#include <vector>

#include "kern/io_uring.hpp"
#include "sim/stats.hpp"
#include "spdk/spdk.hpp"
#include "system/system.hpp"

namespace bpd::fab {
class FabricInitiator;
}

namespace bpd::wl {

enum class Engine { Sync, Libaio, IoUring, Spdk, Bypassd, Fabric };

const char *toString(Engine e);

enum class RwMode { RandRead, RandWrite, SeqRead, SeqWrite };

struct FioJob
{
    Engine engine = Engine::Sync;
    RwMode rw = RwMode::RandRead;
    std::uint32_t bs = 4096;
    unsigned numJobs = 1;
    std::uint32_t iodepth = 1;
    std::uint64_t fileBytes = 1ull << 30;
    Time runtime = 30 * kMs;      //!< measurement window
    Time warmup = 2 * kMs;        //!< excluded from stats
    std::uint64_t seed = 1;
    /**
     * Run each job in its own process (Fig. 10 sharing experiments);
     * default: jobs are threads of one process.
     */
    bool perProcess = false;
    /** Prefix for per-job files. */
    std::string filePrefix = "/fio";

    /** @name Engine::Fabric (remote target over an NVMe-oF initiator)
     * The runner's host System is the client machine; I/O goes through
     * @p fabric (bound and owned by the caller) against raw regions of
     * the REMOTE device starting at @p fabricBase. The runner connects
     * the initiator during arm() if it is still idle; disconnect stays
     * with the caller, so several jobs can share a connection.
     */
    ///@{
    fab::FabricInitiator *fabric = nullptr;
    DevAddr fabricBase = 0;
    ///@}
};

/**
 * One tenant's slice of a fio run: measured-window ops/bytes from the
 * jobs that issued as this tenant, plus the fmap/revocation counts
 * from the system's tenant accounting (zero when accounting is off).
 * Jobs sharing a process aggregate into one slice.
 */
struct FioTenantSlice
{
    TenantId tenant = 0;
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t fmaps = 0;       //!< cold + warm fmaps
    std::uint64_t revocations = 0; //!< FTE victims revoked
};

struct FioResult
{
    sim::Histogram latency;
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    Time elapsed = 0;
    std::vector<FioTenantSlice> tenants; //!< sorted by tenant id

    double avgUserNs = 0;
    double avgKernelNs = 0;
    double avgDeviceNs = 0;
    double avgTranslateNs = 0;

    double
    iops() const
    {
        return elapsed ? static_cast<double>(ops)
                             / (static_cast<double>(elapsed) / 1e9)
                       : 0.0;
    }

    double
    bwBytesPerSec() const
    {
        return elapsed ? static_cast<double>(bytes)
                             / (static_cast<double>(elapsed) / 1e9)
                       : 0.0;
    }
};

namespace detail {
struct FioRunState;
}

/**
 * An armed fio job: files created, engines opened, closed loops
 * primed, CPUs acquired — everything up to (but excluding) draining
 * the event queue. Drive the simulation (System::run, or a sharded
 * executor run covering this system's domain) and then pass the
 * pending job to FioRunner::collect().
 */
class FioPending
{
  public:
    ~FioPending();
    FioPending(FioPending &&) noexcept;
    FioPending &operator=(FioPending &&) noexcept;

  private:
    friend class FioRunner;
    FioPending();
    std::unique_ptr<detail::FioRunState> st_;
};

/**
 * Runs one FioJob on a System. The system is expected to be fresh (the
 * runner creates processes/files); several jobs can be run sequentially
 * on the same system when files do not collide.
 *
 * run() is arm() + System::run() + collect(); the split form exists so
 * several systems' jobs can be armed first and then driven together by
 * one parallel executor run.
 */
class FioRunner
{
  public:
    explicit FioRunner(sys::System &s) : s_(s) {}

    FioResult run(const FioJob &job);

    /** Set up and prime the job without draining the event queue. */
    FioPending arm(const FioJob &job);

    /** Check the drain, release resources, aggregate the stats. */
    FioResult collect(FioPending p);

  private:
    sys::System &s_;
};

} // namespace bpd::wl

#endif // BPD_WORKLOADS_FIO_HPP
