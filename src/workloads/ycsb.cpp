#include "workloads/ycsb.hpp"

namespace bpd::wl {

const char *
toString(Ycsb w)
{
    switch (w) {
      case Ycsb::A: return "YCSB-A";
      case Ycsb::B: return "YCSB-B";
      case Ycsb::C: return "YCSB-C";
      case Ycsb::D: return "YCSB-D";
      case Ycsb::E: return "YCSB-E";
      case Ycsb::F: return "YCSB-F";
    }
    return "?";
}

YcsbGenerator::YcsbGenerator(Ycsb workload, std::uint64_t records,
                             std::uint64_t seed)
    : workload_(workload), records_(records), rng_(seed),
      zipf_(records), latest_(records)
{
}

YcsbOp
YcsbGenerator::next()
{
    YcsbOp op;
    const double p = rng_.nextDouble();
    switch (workload_) {
      case Ycsb::A:
        op.kind = p < 0.5 ? YcsbOp::Kind::Read : YcsbOp::Kind::Update;
        op.key = zipf_.next(rng_);
        break;
      case Ycsb::B:
        op.kind = p < 0.95 ? YcsbOp::Kind::Read : YcsbOp::Kind::Update;
        op.key = zipf_.next(rng_);
        break;
      case Ycsb::C:
        op.kind = YcsbOp::Kind::Read;
        op.key = zipf_.next(rng_);
        break;
      case Ycsb::D:
        if (p < 0.95) {
            op.kind = YcsbOp::Kind::Read;
            op.key = latest_.next(rng_);
        } else {
            op.kind = YcsbOp::Kind::Insert;
            op.key = records_;
            records_++;
            latest_.insert();
            zipf_.grow(records_);
        }
        break;
      case Ycsb::E:
        if (p < 0.95) {
            op.kind = YcsbOp::Kind::Scan;
            op.key = zipf_.next(rng_);
            op.scanLen = 1 + static_cast<unsigned>(
                             rng_.nextUint(kMaxScanLen));
        } else {
            op.kind = YcsbOp::Kind::Insert;
            op.key = records_;
            records_++;
            zipf_.grow(records_);
        }
        break;
      case Ycsb::F:
        op.kind = p < 0.5 ? YcsbOp::Kind::Read : YcsbOp::Kind::Rmw;
        op.key = zipf_.next(rng_);
        break;
    }
    return op;
}

} // namespace bpd::wl
