/**
 * @file
 * Fundamental types shared by every BypassD subsystem.
 */

#ifndef BPD_COMMON_TYPES_HPP
#define BPD_COMMON_TYPES_HPP

#include <cstddef>
#include <cstdint>

namespace bpd {

/** Simulated time in nanoseconds. */
using Time = std::uint64_t;

/** Convenience literals for simulated durations. */
constexpr Time kNs = 1;
constexpr Time kUs = 1000 * kNs;
constexpr Time kMs = 1000 * kUs;
constexpr Time kSec = 1000 * kMs;

/** A 4 KiB device block index; what a File Table Entry stores (Fig. 3). */
using BlockNo = std::uint64_t;

/** Byte address on the device (BlockNo * kBlockBytes + offset). */
using DevAddr = std::uint64_t;

/** Virtual (block) address inside a process address space. */
using Vaddr = std::uint64_t;

/** Process Address Space ID used by the IOMMU to pick a page table. */
using Pasid = std::uint32_t;

/**
 * Tenant identity for per-process attribution. A tenant is a process
 * address space: the id equals the owning process's PASID, and tenant 0
 * (== kNoPasid) is the system/kernel catch-all for work that cannot be
 * pinned on a process (format-time metadata, kernel-queue housekeeping).
 */
using TenantId = std::uint32_t;

/** System/kernel catch-all tenant. */
constexpr TenantId kSystemTenant = 0;

/** Device identifier stored in FTEs and checked against the requester. */
using DevId = std::uint16_t;

/** Inode number. */
using InodeNum = std::uint64_t;

/** Process identifier. */
using Pid = std::uint32_t;

/** Simulated application thread identifier (within a process). */
using Tid = std::uint32_t;

/** Size of a device/file-system block mapped by one FTE. */
constexpr std::size_t kBlockBytes = 4096;

/** Device logical sector: the smallest addressable I/O unit. */
constexpr std::size_t kSectorBytes = 512;

/** Entries per page-table frame. */
constexpr std::size_t kPte
    = kBlockBytes / sizeof(std::uint64_t);

/** Invalid PASID sentinel. */
constexpr Pasid kNoPasid = 0;

} // namespace bpd

#endif // BPD_COMMON_TYPES_HPP
