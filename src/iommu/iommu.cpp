#include "iommu/iommu.hpp"

#include <unordered_set>

#include "obs/trace.hpp"
#include "sim/logging.hpp"

namespace bpd::iommu {

Iommu::Iommu(sim::EventQueue &eq, IommuProfile profile)
    : eq_(eq), profile_(profile),
      iotlb_(profile.iotlbEntries, profile.iotlbWays),
      walkCache_(profile.walkCacheEntries, profile.walkCacheWays)
{
}

std::uint64_t
Iommu::wcKey(Pasid pasid, Vaddr va)
{
    // One walk-cache entry per 2 MiB region per PASID (caches the upper
    // three levels of the walk; the leaf line is never cached, Sec. 4.3).
    return (static_cast<std::uint64_t>(pasid) << 44) ^ (va >> 21);
}

std::uint64_t
Iommu::dmaKey(Pasid pasid, std::uint64_t iova)
{
    return (static_cast<std::uint64_t>(pasid) << 44) ^ (iova >> 12);
}

void
Iommu::bindPasid(Pasid pasid, const mem::PageTable *pt)
{
    sim::panicIf(pasid == kNoPasid, "cannot bind the null PASID");
    pasidTable_[pasid] = pt;
}

void
Iommu::unbindPasid(Pasid pasid)
{
    pasidTable_.erase(pasid);
    invalidateAll(pasid);
}

bool
Iommu::pasidBound(Pasid pasid) const
{
    return pasidTable_.count(pasid) != 0;
}

TransResult
Iommu::translateVbaSync(Pasid pasid, Vaddr vba, std::uint32_t len,
                        bool isWrite, DevId requester)
{
    TransResult res;
    vbaTranslations_++;
    if (acct_) {
        acct_->of(pasid).iommuVbaTranslations++;
        acct_->dev(requester, pasid).iommuVbaTranslations++;
    }

    Time latency = profile_.pcieRoundTripNs + profile_.lookupNs;
    bool anyWalkCacheMiss = false;
    std::unordered_set<std::uint64_t> leafLines;

    auto finish = [&](Fault f) {
        res.fault = f;
        res.ok = (f == Fault::None);
        if (!res.ok) {
            res.segs.clear();
            vbaFaults_++;
            if (acct_) {
                acct_->of(pasid).iommuVbaFaults++;
                acct_->dev(requester, pasid).iommuVbaFaults++;
            }
        }
        if (profile_.fixedVbaLatencyNs >= 0) {
            res.latency = static_cast<Time>(profile_.fixedVbaLatencyNs);
        } else {
            latency += profile_.leafFetchNs;
            if (leafLines.size() > 1)
                latency += (leafLines.size() - 1) * profile_.extraLineNs;
            if (anyWalkCacheMiss)
                latency += 3 * profile_.upperLevelFetchNs;
            res.latency = latency;
        }
        return res;
    };

    if (len == 0)
        return finish(Fault::NotPresent);

    auto it = pasidTable_.find(pasid);
    if (it == pasidTable_.end() || it->second == nullptr)
        return finish(Fault::NoPasid);
    const mem::PageTable &pt = *it->second;

    const Vaddr end = vba + len;
    Vaddr cur = vba;
    while (cur < end) {
        const Vaddr pageVa = cur & ~static_cast<Vaddr>(kBlockBytes - 1);
        // Each leaf cacheline holds 8 FTEs (64 B); track distinct lines
        // for the timing model (Fig. 5).
        leafLines.insert(pageVa >> 15);

        std::uint64_t dummy;
        if (!walkCache_.lookup(wcKey(pasid, pageVa), dummy)) {
            anyWalkCacheMiss = true;
            walkCache_.insert(wcKey(pasid, pageVa), 1);
        }

        const mem::PageTable::Walk w = pt.walk(pageVa);
        framesRead_ += w.framesRead;
        if (acct_) {
            acct_->of(pasid).iommuPageWalkFrames += w.framesRead;
            acct_->dev(requester, pasid).iommuPageWalkFrames
                += w.framesRead;
        }
        res.framesRead += w.framesRead;
        if (!w.present)
            return finish(Fault::NotPresent);
        if (!mem::isFte(w.leaf))
            return finish(Fault::NotFte);
        if (isWrite && !w.writable)
            return finish(Fault::Permission);
        if (mem::fteDevId(w.leaf) != requester)
            return finish(Fault::DevIdMismatch);

        const BlockNo block = mem::fteBlock(w.leaf);
        const std::uint64_t inPage = cur - pageVa;
        const std::uint32_t segLen = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(end - cur, kBlockBytes - inPage));
        const DevAddr addr = block * kBlockBytes + inPage;

        if (!res.segs.empty()
            && res.segs.back().addr + res.segs.back().len == addr) {
            res.segs.back().len += segLen;
        } else {
            res.segs.push_back(TransSeg{addr, segLen});
        }
        res.pages++;
        cur += segLen;
    }

    return finish(Fault::None);
}

void
Iommu::translateVba(Pasid pasid, Vaddr vba, std::uint32_t len, bool isWrite,
                    DevId requester, std::function<void(TransResult)> done)
{
    TransResult res = translateVbaSync(pasid, vba, len, isWrite, requester);
    eq_.after(res.latency, [res = std::move(res),
                            done = std::move(done)]() mutable {
        done(std::move(res));
    });
}

void
Iommu::setTracer(obs::Tracer *t)
{
    trace_ = t;
    obsTrack_ = t ? t->track("iommu") : 0;
}

void
Iommu::invalidateRange(Pasid pasid, Vaddr start, std::uint64_t len)
{
    if (trace_ && trace_->wants(obs::Level::Device)) {
        trace_->instant(obsTrack_, "iommu.invalidate_range", 0,
                        {{"pasid", static_cast<std::int64_t>(pasid)},
                         {"len", static_cast<std::int64_t>(len)}});
    }
    const Vaddr first = start >> 21;
    const Vaddr last = (start + (len ? len - 1 : 0)) >> 21;
    walkCache_.invalidateIf([=](std::uint64_t key) {
        for (Vaddr chunk = first; chunk <= last; chunk++) {
            if (key == wcKey(pasid, chunk << 21))
                return true;
        }
        return false;
    });
}

void
Iommu::invalidateAll(Pasid pasid)
{
    if (trace_ && trace_->wants(obs::Level::Device)) {
        trace_->instant(obsTrack_, "iommu.invalidate_all", 0,
                        {{"pasid", static_cast<std::int64_t>(pasid)}});
    }
    // Conservative: the key mixes PASID non-invertibly, so flush both
    // caches for correctness on PASID teardown.
    (void)pasid;
    walkCache_.clear();
    iotlb_.clear();
}

void
Iommu::mapDma(Pasid pasid, std::uint64_t iova, std::span<std::uint8_t> mem,
              bool writable)
{
    dmaMap_[pasid][iova] = DmaMapping{mem, writable};
}

void
Iommu::unmapDma(Pasid pasid, std::uint64_t iova)
{
    auto it = dmaMap_.find(pasid);
    if (it != dmaMap_.end())
        it->second.erase(iova);
    iotlb_.invalidate(dmaKey(pasid, iova));
}

std::optional<std::span<std::uint8_t>>
Iommu::resolveDma(Pasid pasid, std::uint64_t iova, std::uint32_t len,
                  bool deviceWrites)
{
    auto pit = dmaMap_.find(pasid);
    if (pit == dmaMap_.end() || pit->second.empty())
        return std::nullopt;
    // Find the registration with the largest base <= iova.
    auto it = pit->second.upper_bound(iova);
    if (it == pit->second.begin())
        return std::nullopt;
    --it;
    const std::uint64_t base = it->first;
    const DmaMapping &m = it->second;
    const std::uint64_t offset = iova - base;
    if (offset + len > m.mem.size())
        return std::nullopt;
    if (deviceWrites && !m.writable)
        return std::nullopt;
    return m.mem.subspan(offset, len);
}

Time
Iommu::dmaTranslateLatency(Pasid pasid, std::uint64_t iova)
{
    std::uint64_t dummy;
    if (iotlb_.lookup(dmaKey(pasid, iova), dummy))
        return profile_.lookupNs;
    iotlb_.insert(dmaKey(pasid, iova), 1);
    return profile_.lookupNs + profile_.leafFetchNs;
}

} // namespace bpd::iommu
