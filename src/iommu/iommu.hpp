/**
 * @file
 * The enhanced IOMMU of BypassD (Section 3.5, 4.3).
 *
 * Beyond classic IOVA-to-physical translation for DMA buffers, this IOMMU
 * services PCIe ATS translation requests that carry Virtual Block
 * Addresses. Using the PASID linked to the submitting NVMe queue it walks
 * the owning process' page table (SVA-style), interprets leaf entries with
 * the FT bit set as File Table Entries, verifies the R/W permission and
 * that the FTE's DevID matches the requester, and returns coalesced
 * (device-byte-address, length) segments.
 *
 * Timing is calibrated from the paper's measurements (Section 6.2): 345 ns
 * PCIe round trip, ~183 ns for the leaf cacheline fetch on a walk, small
 * extra for additional cachelines; FTEs are not inserted into the IOTLB.
 */

#ifndef BPD_IOMMU_IOMMU_HPP
#define BPD_IOMMU_IOMMU_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "iommu/iotlb.hpp"
#include "mem/page_table.hpp"
#include "obs/tenant.hpp"
#include "sim/event_queue.hpp"

namespace bpd::obs {
class Tracer;
}

namespace bpd::iommu {

/** Timing and geometry knobs. */
struct IommuProfile
{
    Time pcieRoundTripNs = 345;   //!< ATS request + response transit
    Time lookupNs = 15;           //!< IOTLB / walk-cache lookup
    Time leafFetchNs = 183;       //!< first page-table cacheline fetch
    Time extraLineNs = 12;        //!< each additional leaf cacheline
    Time upperLevelFetchNs = 120; //!< per level on walk-cache miss
    unsigned iotlbEntries = 256;
    unsigned iotlbWays = 4;
    unsigned walkCacheEntries = 2048;
    unsigned walkCacheWays = 4;
    /**
     * Override for the whole VBA translation latency; when >= 0 the
     * modeled components above are replaced by this constant (used by the
     * Fig. 8 sensitivity sweep). -1 means "use the component model".
     */
    std::int64_t fixedVbaLatencyNs = -1;
};

/** Why a translation failed. */
enum class Fault : std::uint8_t
{
    None,
    NoPasid,      //!< PASID not bound to any page table
    NotPresent,   //!< no present leaf for some page of the range
    Permission,   //!< write requested through a read-only path
    NotFte,       //!< present leaf is not a File Table Entry
    DevIdMismatch //!< FTE belongs to a different device
};

/** One translated extent on the device. */
struct TransSeg
{
    DevAddr addr; //!< device byte address
    std::uint32_t len;
};

/** Outcome of an ATS VBA translation. */
struct TransResult
{
    bool ok = false;
    Fault fault = Fault::None;
    std::vector<TransSeg> segs;
    Time latency = 0;        //!< modeled translation latency
    unsigned framesRead = 0; //!< page-table frames touched
    unsigned pages = 0;      //!< 4 KiB translations performed
};

/**
 * The system IOMMU. One instance serves all devices.
 */
class Iommu
{
  public:
    Iommu(sim::EventQueue &eq, IommuProfile profile = {});

    IommuProfile &profile() { return profile_; }

    /** @name PASID table (SVA binding) */
    ///@{
    void bindPasid(Pasid pasid, const mem::PageTable *pt);
    void unbindPasid(Pasid pasid);
    bool pasidBound(Pasid pasid) const;
    ///@}

    /**
     * Service an ATS translation request for a VBA range, asynchronously:
     * @p done fires after the modeled translation latency.
     */
    void translateVba(Pasid pasid, Vaddr vba, std::uint32_t len,
                      bool isWrite, DevId requester,
                      std::function<void(TransResult)> done);

    /** Synchronous variant (functional result + latency estimate). */
    TransResult translateVbaSync(Pasid pasid, Vaddr vba, std::uint32_t len,
                                 bool isWrite, DevId requester);

    /**
     * Invalidate cached translation state for a VBA range (issued by the
     * kernel when FTEs are detached, Section 3.6).
     */
    void invalidateRange(Pasid pasid, Vaddr start, std::uint64_t len);

    /** Invalidate everything for a PASID. */
    void invalidateAll(Pasid pasid);

    /** @name DMA buffer registry (classic IOVA mappings)
     * Pinned DMA buffers are registered with the IOMMU; devices resolve
     * (pasid, iova) to host memory through it. A rogue device or a bad
     * IOVA resolves to nothing and the DMA is rejected.
     */
    ///@{
    void mapDma(Pasid pasid, std::uint64_t iova, std::span<std::uint8_t> mem,
                bool writable);
    void unmapDma(Pasid pasid, std::uint64_t iova);

    /**
     * Resolve a DMA target.
     * @param deviceWrites True when the device writes to host memory.
     * @return Host span, or nullopt on any violation.
     */
    std::optional<std::span<std::uint8_t>>
    resolveDma(Pasid pasid, std::uint64_t iova, std::uint32_t len,
               bool deviceWrites);

    /** Modeled latency for one DMA IOVA translation (Table 4 model). */
    Time dmaTranslateLatency(Pasid pasid, std::uint64_t iova);
    ///@}

    /** @name Statistics */
    ///@{
    std::uint64_t vbaTranslations() const { return vbaTranslations_; }
    std::uint64_t vbaFaults() const { return vbaFaults_; }
    std::uint64_t framesRead() const { return framesRead_; }
    const TranslationCache &iotlb() const { return iotlb_; }
    const TranslationCache &walkCache() const { return walkCache_; }
    TranslationCache &walkCacheMut() { return walkCache_; }
    ///@}

    /**
     * Attach a span tracer (null = disabled). Emits instant events on
     * translation-cache invalidations; read-only, timing-neutral.
     */
    void setTracer(obs::Tracer *t);

    /**
     * Attach the per-tenant counter table (null = disabled). The
     * translating PASID is the tenant. IOTLB/walk-cache hit counters
     * stay system-only on purpose: the caches are shared, so a hit
     * caused by one tenant's fill serving another has no honest owner.
     */
    void setTenantAccounting(obs::TenantAccounting *a) { acct_ = a; }

  private:
    static std::uint64_t wcKey(Pasid pasid, Vaddr va);
    static std::uint64_t dmaKey(Pasid pasid, std::uint64_t iova);

    sim::EventQueue &eq_;
    IommuProfile profile_;
    std::unordered_map<Pasid, const mem::PageTable *> pasidTable_;

    struct DmaMapping
    {
        std::span<std::uint8_t> mem;
        bool writable;
    };
    /** Per-PASID registered DMA regions, keyed by base IOVA. */
    std::unordered_map<Pasid, std::map<std::uint64_t, DmaMapping>> dmaMap_;

    TranslationCache iotlb_;
    TranslationCache walkCache_;

    obs::Tracer *trace_ = nullptr;
    std::uint16_t obsTrack_ = 0;
    obs::TenantAccounting *acct_ = nullptr;

    std::uint64_t vbaTranslations_ = 0;
    std::uint64_t vbaFaults_ = 0;
    std::uint64_t framesRead_ = 0;
};

} // namespace bpd::iommu

#endif // BPD_IOMMU_IOMMU_HPP
