#include "iommu/iotlb.hpp"

#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace bpd::iommu {

TranslationCache::TranslationCache(unsigned entries, unsigned ways)
    : ways_(ways)
{
    sim::panicIf(ways == 0 || entries == 0, "bad cache geometry");
    sets_ = entries / ways;
    if (sets_ == 0)
        sets_ = 1;
    // Round sets to a power of two for cheap indexing.
    unsigned p2 = 1;
    while (p2 < sets_)
        p2 <<= 1;
    sets_ = p2;
    entries_.resize(static_cast<std::size_t>(sets_) * ways_);
    hints_.resize(sets_);
}

unsigned
TranslationCache::setOf(std::uint64_t key) const
{
    return static_cast<unsigned>(sim::hash64(key) & (sets_ - 1));
}

bool
TranslationCache::hitEntry(Entry &e, std::uint64_t &value)
{
    e.lastUse = ++tick_;
    value = e.value;
    hits_++;
    return true;
}

bool
TranslationCache::lookup(std::uint64_t key, std::uint64_t &value)
{
    const unsigned set = setOf(key);
    WayHint &hint = hints_[set];
    Entry *entries = &entries_[static_cast<std::size_t>(set) * ways_];
    if (hint.valid && hint.key == key) {
        Entry &e = entries[hint.way];
        // The hint may be stale (entry evicted or invalidated); the tag
        // check keeps the fast path exact.
        if (e.valid && e.key == key)
            return hitEntry(e, value);
    }
    for (unsigned w = 0; w < ways_; w++) {
        if (entries[w].valid && entries[w].key == key) {
            hint = WayHint{key, static_cast<std::uint16_t>(w), true};
            return hitEntry(entries[w], value);
        }
    }
    misses_++;
    return false;
}

void
TranslationCache::insert(std::uint64_t key, std::uint64_t value)
{
    const unsigned setIdx = setOf(key);
    Entry *set = &entries_[static_cast<std::size_t>(setIdx) * ways_];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].key == key) {
            set[w].value = value;
            set[w].lastUse = ++tick_;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    victim->key = key;
    victim->value = value;
    victim->lastUse = ++tick_;
    victim->valid = true;
    hints_[setIdx] = WayHint{
        key, static_cast<std::uint16_t>(victim - set), true};
}

bool
TranslationCache::invalidate(std::uint64_t key)
{
    const unsigned setIdx = setOf(key);
    Entry *set = &entries_[static_cast<std::size_t>(setIdx) * ways_];
    if (hints_[setIdx].valid && hints_[setIdx].key == key)
        hints_[setIdx].valid = false;
    for (unsigned w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].key == key) {
            set[w].valid = false;
            return true;
        }
    }
    return false;
}

void
TranslationCache::invalidateIf(
    const std::function<bool(std::uint64_t)> &pred)
{
    for (auto &e : entries_) {
        if (e.valid && pred(e.key))
            e.valid = false;
    }
    for (auto &h : hints_)
        h.valid = false;
}

void
TranslationCache::clear()
{
    for (auto &e : entries_)
        e.valid = false;
    for (auto &h : hints_)
        h.valid = false;
}

} // namespace bpd::iommu
