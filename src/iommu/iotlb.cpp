#include "iommu/iotlb.hpp"

#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace bpd::iommu {

TranslationCache::TranslationCache(unsigned entries, unsigned ways)
    : ways_(ways)
{
    sim::panicIf(ways == 0 || entries == 0, "bad cache geometry");
    sets_ = entries / ways;
    if (sets_ == 0)
        sets_ = 1;
    // Round sets to a power of two for cheap indexing.
    unsigned p2 = 1;
    while (p2 < sets_)
        p2 <<= 1;
    sets_ = p2;
    entries_.resize(static_cast<std::size_t>(sets_) * ways_);
}

unsigned
TranslationCache::setOf(std::uint64_t key) const
{
    return static_cast<unsigned>(sim::hash64(key) & (sets_ - 1));
}

bool
TranslationCache::lookup(std::uint64_t key, std::uint64_t &value)
{
    Entry *set = &entries_[static_cast<std::size_t>(setOf(key)) * ways_];
    for (unsigned w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].key == key) {
            set[w].lastUse = ++tick_;
            value = set[w].value;
            hits_++;
            return true;
        }
    }
    misses_++;
    return false;
}

void
TranslationCache::insert(std::uint64_t key, std::uint64_t value)
{
    Entry *set = &entries_[static_cast<std::size_t>(setOf(key)) * ways_];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].key == key) {
            set[w].value = value;
            set[w].lastUse = ++tick_;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    victim->key = key;
    victim->value = value;
    victim->lastUse = ++tick_;
    victim->valid = true;
}

bool
TranslationCache::invalidate(std::uint64_t key)
{
    Entry *set = &entries_[static_cast<std::size_t>(setOf(key)) * ways_];
    for (unsigned w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].key == key) {
            set[w].valid = false;
            return true;
        }
    }
    return false;
}

void
TranslationCache::invalidateIf(
    const std::function<bool(std::uint64_t)> &pred)
{
    for (auto &e : entries_) {
        if (e.valid && pred(e.key))
            e.valid = false;
    }
}

void
TranslationCache::clear()
{
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace bpd::iommu
