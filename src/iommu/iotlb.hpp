/**
 * @file
 * Generic set-associative LRU translation cache used both as the IOTLB
 * (IOVA data-buffer translations) and as the IOMMU page-walk cache (upper
 * page-table levels). Per Section 4.3 FTEs themselves are NOT cached in the
 * IOTLB; only intermediate levels benefit from caching.
 */

#ifndef BPD_IOMMU_IOTLB_HPP
#define BPD_IOMMU_IOTLB_HPP

#include <cstdint>
#include <functional>
#include <vector>

namespace bpd::iommu {

/**
 * Set-associative LRU cache mapping a 64-bit key to a 64-bit value.
 *
 * A direct-mapped first-level "way predictor" sits in front of the
 * associative array: it remembers, per set, the way the last-hit key
 * lives in, so the Fig. 8/9 sweeps (which hammer sequential VBAs and
 * re-touch the same 2 MiB walk-cache keys) skip the way scan. It is a
 * pure host-side accelerator: hit/miss counters and LRU state advance
 * exactly as the scanning path would, keeping simulated timing
 * bit-identical.
 */
class TranslationCache
{
  public:
    /**
     * @param entries Total entry count (rounded to sets*ways).
     * @param ways Associativity.
     */
    TranslationCache(unsigned entries, unsigned ways);

    /** Look up @p key; on hit fill @p value. */
    bool lookup(std::uint64_t key, std::uint64_t &value);

    /** Insert or update a mapping (LRU replacement). */
    void insert(std::uint64_t key, std::uint64_t value);

    /** Invalidate one key. @retval true if it was present. */
    bool invalidate(std::uint64_t key);

    /** Invalidate all keys matching a predicate. */
    void invalidateIf(const std::function<bool(std::uint64_t)> &pred);

    /** Drop everything. */
    void clear();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        std::uint64_t value = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /** Direct-mapped L1 front: predicts the way holding a set's key. */
    struct WayHint
    {
        std::uint64_t key = 0;
        std::uint16_t way = 0;
        bool valid = false;
    };

    unsigned setOf(std::uint64_t key) const;
    bool hitEntry(Entry &e, std::uint64_t &value);

    unsigned sets_;
    unsigned ways_;
    std::vector<Entry> entries_;
    std::vector<WayHint> hints_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace bpd::iommu

#endif // BPD_IOMMU_IOTLB_HPP
