/**
 * @file
 * BPF-KV model: the key-value store used to evaluate XRP (Section 6.5).
 * A B+-tree index over fixed 512 B nodes (fanout 31) locates 64 B values
 * in an unsorted log; index and log live in one large file. No caching:
 * each lookup costs depth dependent 512 B index reads plus one data read
 * (7 I/Os for the paper's 920 M-object store with its 6-level index).
 *
 * The node layout is computed arithmetically (dense key space, complete
 * tree), which lets the simulated store hold hundreds of millions of
 * objects without materializing petabytes; a `materialize` mode writes
 * real node contents for small stores so tests can validate the layout.
 */

#ifndef BPD_APPS_BPFKV_HPP
#define BPD_APPS_BPFKV_HPP

#include <functional>
#include <memory>

#include "sim/stats.hpp"
#include "spdk/spdk.hpp"
#include "system/system.hpp"
#include "xrp/xrp.hpp"

namespace bpd::apps {

enum class KvEngine { Sync, Xrp, Spdk, Bypassd };

const char *toString(KvEngine e);

struct BpfKvConfig
{
    std::uint64_t records = 920'000'000;
    std::uint32_t nodeBytes = 512;
    std::uint32_t keyBytes = 8;
    std::uint32_t valueBytes = 64;
    /** 512 B node / (8 B key + 8 B child) = 32; 6 levels cover 920 M. */
    unsigned fanout = 32;
    KvEngine engine = KvEngine::Sync;
    std::uint64_t seed = 1;
    std::string path = "/bpfkv.db";
    /** Write real node contents (small stores only; tests). */
    bool materialize = false;
};

class BpfKv
{
  public:
    BpfKv(sys::System &s, BpfKvConfig cfg);

    void setup();

    /** Index depth (paper: 6 levels for 920 M records). */
    unsigned depth() const { return depth_; }

    /** I/Os per lookup (= depth + 1 data read). */
    unsigned iosPerLookup() const { return depth_ + 1; }

    std::uint64_t fileBytes() const { return fileBytes_; }

    /** Byte offset of index node (level, idx). */
    std::uint64_t nodeOffset(unsigned level, std::uint64_t idx) const;

    /** Byte offset of @p key's value in the log. */
    std::uint64_t valueOffset(std::uint64_t key) const;

    /** Index-node index on @p key's path at @p level. */
    std::uint64_t nodeIndexFor(std::uint64_t key, unsigned level) const;

    /** Asynchronous point lookup from thread @p tid. */
    void lookup(Tid tid, std::uint64_t key,
                std::function<void(Time)> done);

    struct Result
    {
        sim::Histogram latency;
        std::uint64_t ops = 0;
        Time elapsed = 0;

        double
        kops() const
        {
            return elapsed ? static_cast<double>(ops)
                                 / (static_cast<double>(elapsed) / 1e9)
                                 / 1e3
                           : 0.0;
        }
    };

    /** Closed-loop uniform-random lookups. */
    Result run(unsigned threads, std::uint64_t opsPerThread);

  private:
    void chainReads(Tid tid,
                    std::shared_ptr<std::vector<std::uint64_t>> offs,
                    std::size_t i, Time start,
                    std::function<void(Time)> done);

    sys::System &s_;
    BpfKvConfig cfg_;

    unsigned depth_ = 0;
    std::vector<std::uint64_t> levelNodes_;
    std::vector<std::uint64_t> levelStart_;
    std::uint64_t indexNodes_ = 0;
    std::uint64_t logStart_ = 0;
    std::uint64_t fileBytes_ = 0;

    kern::Process *proc_ = nullptr;
    bypassd::UserLib *lib_ = nullptr;
    std::unique_ptr<xrp::XrpEngine> xrp_;
    std::unique_ptr<spdk::SpdkDriver> spdk_;
    DevAddr rawBase_ = 0;
    int fd_ = -1;

    std::vector<std::uint8_t> scratch_;
};

} // namespace bpd::apps

#endif // BPD_APPS_BPFKV_HPP
