/**
 * @file
 * KVell model (Section 6.5): a share-nothing-ish persistent KV store
 * that keeps an in-memory index and does random-access I/O to item slabs
 * on disk, batching requests for throughput (queue depth 1 vs 64).
 *
 * Items live in a small set of slab files shared by the workers; kernel
 * engines therefore contend on the per-inode ext4 write lock under
 * write-heavy loads (YCSB A) — the bottleneck BypassD's direct
 * userspace overwrites avoid entirely.
 */

#ifndef BPD_APPS_KVELL_HPP
#define BPD_APPS_KVELL_HPP

#include <functional>
#include <memory>
#include <vector>

#include "sim/stats.hpp"
#include "system/system.hpp"
#include "workloads/ycsb.hpp"

namespace bpd::apps {

enum class KvellEngine { Libaio, Bypassd };

const char *toString(KvellEngine e);

struct KvellConfig
{
    std::uint64_t records = 5'000'000;
    std::uint32_t keyBytes = 16;
    std::uint32_t valueBytes = 1024;
    /**
     * Few shared slab files => kernel-path writes contend on the
     * per-inode ext4 lock (the YCSB-A bottleneck, Section 6.5).
     */
    unsigned slabFiles = 2;
    std::uint32_t queueDepth = 1; //!< per-worker outstanding I/Os
    KvellEngine engine = KvellEngine::Libaio;
    std::uint64_t seed = 1;
    Time indexLookupNs = 250; //!< in-memory B-tree probe
    std::string pathPrefix = "/kvell_slab";
};

class KvellModel
{
  public:
    KvellModel(sys::System &s, KvellConfig cfg);

    void setup();

    struct Result
    {
        sim::Histogram latency;
        std::uint64_t ops = 0;
        Time elapsed = 0;

        double
        kops() const
        {
            return elapsed ? static_cast<double>(ops)
                                 / (static_cast<double>(elapsed) / 1e9)
                                 / 1e3
                           : 0.0;
        }
    };

    /** Run @p opsPerThread YCSB ops on each of @p threads workers. */
    Result run(wl::Ycsb workload, unsigned threads,
               std::uint64_t opsPerThread);

    /** Slab file + offset of an item. */
    std::pair<unsigned, std::uint64_t> place(std::uint64_t key) const;

  private:
    void itemIo(Tid tid, std::uint64_t key, bool write,
                std::function<void(Time)> done);

    sys::System &s_;
    KvellConfig cfg_;

    kern::Process *proc_ = nullptr;
    bypassd::UserLib *lib_ = nullptr;
    std::vector<int> fds_;
    std::uint64_t itemsPerSlab_ = 0;
    std::vector<std::uint8_t> scratch_;
};

} // namespace bpd::apps

#endif // BPD_APPS_KVELL_HPP
