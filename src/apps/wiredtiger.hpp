/**
 * @file
 * WiredTiger-style storage-engine model (Section 6.4).
 *
 * A B-tree with 512 B pages (matching the Optane sector size, as the
 * paper configures) stored in a single file; an application-level page
 * cache holds hot pages (upper levels stay resident, leaves thrash when
 * the cache is smaller than the data). Lookups traverse root->leaf,
 * issuing a 512 B read per uncached level; updates rewrite the leaf.
 *
 * Engines: kernel sync, XRP (chained traversal offload — only helps when
 * two or more consecutive levels miss), and BypassD (accelerates every
 * I/O). Cache accesses serialize on a lock, which becomes the bottleneck
 * at high thread counts and hides I/O gains — the effect the paper
 * reports in Fig. 13.
 */

#ifndef BPD_APPS_WIREDTIGER_HPP
#define BPD_APPS_WIREDTIGER_HPP

#include <list>
#include <unordered_map>
#include <vector>

#include "sim/stats.hpp"
#include "system/system.hpp"
#include "workloads/ycsb.hpp"
#include "xrp/xrp.hpp"

namespace bpd::apps {

enum class WtEngine { Sync, Xrp, Bypassd };

const char *toString(WtEngine e);

struct WiredTigerConfig
{
    std::uint64_t records = 8'000'000;
    std::uint32_t keyBytes = 16;
    std::uint32_t valueBytes = 16;
    std::uint32_t pageBytes = 512;
    std::uint64_t cacheBytes = 48ull << 20;
    WtEngine engine = WtEngine::Sync;
    std::uint64_t seed = 1;
    Time cacheHitNs = 900;   //!< B-tree search/locking per page visit
    Time cacheLockNs = 140;  //!< serialized cache bookkeeping per access
    std::string path = "/wiredtiger.wt";
};

class WiredTigerModel
{
  public:
    WiredTigerModel(sys::System &s, WiredTigerConfig cfg);

    /** Create the on-disk tree and open it through the chosen engine. */
    void setup();

    struct Result
    {
        double kops = 0;
        sim::Histogram latency;
        std::uint64_t ops = 0;
        std::uint64_t deviceIos = 0;
        Time elapsed = 0;
    };

    /** Run @p opsPerThread YCSB ops on each of @p threads threads. */
    Result run(wl::Ycsb workload, unsigned threads,
               std::uint64_t opsPerThread);

    /** @name Tree geometry (exposed for tests) */
    ///@{
    unsigned depth() const { return depth_; }
    std::uint64_t pagesAtLevel(unsigned level) const;
    std::uint64_t fileBytes() const { return fileBytes_; }
    std::uint64_t recordsPerLeaf() const { return recsPerLeaf_; }
    /** Page index (within its level) on the path to @p key. */
    std::uint64_t pageIndexFor(std::uint64_t key, unsigned level) const;
    /** File byte offset of (level, idx). */
    std::uint64_t pageOffset(unsigned level, std::uint64_t idx) const;
    ///@}

    std::uint64_t cachePages() const { return cacheCapacity_; }

  private:
    struct CacheEntry
    {
        std::uint64_t id;
    };

    bool cacheContains(std::uint64_t id);
    void cacheInsert(std::uint64_t id);
    Time cacheAccessDelay(unsigned accesses);

    void opLookup(Tid tid, std::uint64_t key, bool update,
                  std::function<void(Time)> done);
    void readPage(Tid tid, std::uint64_t off, std::uint32_t len,
                  std::function<void()> done);
    void writePage(Tid tid, std::uint64_t off,
                   std::function<void()> done);

    sys::System &s_;
    WiredTigerConfig cfg_;

    unsigned depth_ = 0;
    std::uint64_t recsPerLeaf_ = 0;
    unsigned fanout_ = 0;
    std::vector<std::uint64_t> levelPages_;
    std::vector<std::uint64_t> levelStart_; // page index of level start
    std::uint64_t fileBytes_ = 0;

    kern::Process *proc_ = nullptr;
    bypassd::UserLib *lib_ = nullptr;
    std::unique_ptr<xrp::XrpEngine> xrp_;
    int fd_ = -1;
    std::uint32_t fileId_ = obs::ReplayRec::kNoFile;
    std::uint8_t replayEngine_ = obs::ReplayRec::kEngineNone;

    // App-level LRU page cache.
    std::uint64_t cacheCapacity_ = 0;
    std::list<CacheEntry> lru_;
    std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator>
        cached_;
    Time cacheLockFreeAt_ = 0;

    std::uint64_t deviceIos_ = 0;
    std::vector<std::uint8_t> scratch_;
};

} // namespace bpd::apps

#endif // BPD_APPS_WIREDTIGER_HPP
