#include "apps/bpfkv.hpp"

#include <algorithm>
#include <cstring>

#include "sim/logging.hpp"

namespace bpd::apps {

const char *
toString(KvEngine e)
{
    switch (e) {
      case KvEngine::Sync: return "sync";
      case KvEngine::Xrp: return "xrp";
      case KvEngine::Spdk: return "spdk";
      case KvEngine::Bypassd: return "bypassd";
    }
    return "?";
}

BpfKv::BpfKv(sys::System &s, BpfKvConfig cfg)
    : s_(s), cfg_(cfg)
{
}

std::uint64_t
BpfKv::nodeIndexFor(std::uint64_t key, unsigned level) const
{
    std::uint64_t leafIdx = key / cfg_.fanout;
    const std::uint64_t leaves = levelNodes_[depth_ - 1];
    if (leafIdx >= leaves)
        leafIdx = leaves - 1;
    std::uint64_t idx = leafIdx;
    for (unsigned l = depth_ - 1; l > level; l--)
        idx /= cfg_.fanout;
    return idx;
}

std::uint64_t
BpfKv::nodeOffset(unsigned level, std::uint64_t idx) const
{
    return (levelStart_[level] + idx) * cfg_.nodeBytes;
}

std::uint64_t
BpfKv::valueOffset(std::uint64_t key) const
{
    return logStart_ + key * cfg_.valueBytes;
}

void
BpfKv::setup()
{
    std::uint64_t leaves
        = (cfg_.records + cfg_.fanout - 1) / cfg_.fanout;
    std::vector<std::uint64_t> up{leaves};
    while (up.back() > 1)
        up.push_back((up.back() + cfg_.fanout - 1) / cfg_.fanout);
    depth_ = static_cast<unsigned>(up.size());
    levelNodes_.assign(depth_, 0);
    for (unsigned l = 0; l < depth_; l++)
        levelNodes_[l] = up[depth_ - 1 - l];
    levelStart_.assign(depth_, 0);
    std::uint64_t acc = 0;
    for (unsigned l = 0; l < depth_; l++) {
        levelStart_[l] = acc;
        acc += levelNodes_[l];
    }
    indexNodes_ = acc;
    logStart_ = acc * cfg_.nodeBytes;
    // Round the log start to a block boundary.
    logStart_ = (logStart_ + kBlockBytes - 1) & ~(kBlockBytes - 1);
    fileBytes_ = logStart_ + cfg_.records * cfg_.valueBytes;

    scratch_.assign(8 << 10, 0);
    proc_ = &s_.newProcess();

    if (cfg_.engine == KvEngine::Spdk) {
        rawBase_ = 1 << 20;
        sim::panicIf(rawBase_ + fileBytes_ > s_.cfg.deviceBytes,
                     "bpfkv: store exceeds device");
        spdk_ = std::make_unique<spdk::SpdkDriver>(
            s_.eq, s_.dev, s_.kernel.cpu(), proc_->pasid());
        sim::panicIf(!spdk_->init(), "bpfkv: spdk claim failed");
        return;
    }

    const int cfd = s_.kernel.setupCreateFile(*proc_, cfg_.path,
                                              fileBytes_, 0);
    sim::panicIf(cfd < 0, "bpfkv: file setup failed");

    if (cfg_.materialize) {
        // Write real index-node contents (small stores / tests).
        std::vector<std::uint8_t> node(cfg_.nodeBytes, 0);
        for (unsigned l = 0; l < depth_; l++) {
            for (std::uint64_t i = 0; i < levelNodes_[l]; i++) {
                std::uint64_t hdr[3] = {0xB9F0CAFEull, l, i};
                std::memcpy(node.data(), hdr, sizeof(hdr));
                s_.kernel.setupWrite(
                    *proc_, cfd,
                    std::span<const std::uint8_t>(node.data(),
                                                  node.size()),
                    nodeOffset(l, i));
            }
        }
        // Values: key stamped at the value offset.
        for (std::uint64_t k = 0; k < cfg_.records; k++) {
            std::uint64_t v[2] = {k, ~k};
            s_.kernel.setupWrite(
                *proc_, cfd,
                std::span<const std::uint8_t>(
                    reinterpret_cast<std::uint8_t *>(v), sizeof(v)),
                valueOffset(k));
        }
    }

    switch (cfg_.engine) {
      case KvEngine::Sync:
        fd_ = cfd;
        break;
      case KvEngine::Xrp:
        fd_ = cfd;
        xrp_ = std::make_unique<xrp::XrpEngine>(s_.kernel);
        break;
      case KvEngine::Bypassd: {
        int rc = -1;
        s_.kernel.sysClose(*proc_, cfd, [&rc](int r) { rc = r; });
        s_.run();
        lib_ = &s_.userLib(*proc_);
        int fd = -1;
        lib_->open(cfg_.path,
                   fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect,
                   0644, [&fd](int f) { fd = f; });
        s_.run();
        sim::panicIf(fd < 0 || !lib_->isDirect(fd),
                     "bpfkv: bypassd open failed");
        fd_ = fd;
        break;
      }
      case KvEngine::Spdk:
        break;
    }
}

void
BpfKv::chainReads(Tid tid,
                  std::shared_ptr<std::vector<std::uint64_t>> offs,
                  std::size_t i, Time start,
                  std::function<void(Time)> done)
{
    if (i >= offs->size()) {
        done(s_.now() - start);
        return;
    }
    const std::uint64_t off = (*offs)[i] & ~(kSectorBytes - 1ull);
    auto span = std::span<std::uint8_t>(scratch_.data(), cfg_.nodeBytes);
    auto cb = [this, tid, offs, i, start,
               done = std::move(done)](long long n,
                                       kern::IoTrace) mutable {
        sim::panicIf(n < 0, "bpfkv: read failed");
        chainReads(tid, offs, i + 1, start, std::move(done));
    };
    switch (cfg_.engine) {
      case KvEngine::Sync:
        s_.kernel.sysPread(*proc_, fd_, span, off, std::move(cb));
        break;
      case KvEngine::Bypassd:
        lib_->pread(tid, fd_, span, off, std::move(cb));
        break;
      case KvEngine::Spdk:
        spdk_->read(tid, rawBase_ + off, span, std::move(cb));
        break;
      case KvEngine::Xrp:
        sim::panic("chainReads not used for XRP");
    }
}

void
BpfKv::lookup(Tid tid, std::uint64_t key, std::function<void(Time)> done)
{
    const Time start = s_.now();
    auto offs = std::make_shared<std::vector<std::uint64_t>>();
    for (unsigned l = 0; l < depth_; l++)
        offs->push_back(nodeOffset(l, nodeIndexFor(key, l)));
    offs->push_back(valueOffset(key));

    if (cfg_.engine == KvEngine::Xrp) {
        // XRP: one kernel crossing; the BPF program resubmits each hop
        // from the driver.
        xrp_->lookup(
            *proc_, fd_,
            xrp::Hop{(*offs)[0] & ~(kSectorBytes - 1ull), cfg_.nodeBytes},
            [offs, this](std::span<const std::uint8_t>, unsigned hopIdx)
                -> std::optional<xrp::Hop> {
                if (hopIdx + 1 >= offs->size())
                    return std::nullopt;
                return xrp::Hop{(*offs)[hopIdx + 1]
                                    & ~(kSectorBytes - 1ull),
                                cfg_.nodeBytes};
            },
            [start, this, done = std::move(done)](long long n,
                                                  kern::IoTrace) {
                sim::panicIf(n < 0, "bpfkv: xrp lookup failed");
                done(s_.now() - start);
            });
        return;
    }
    chainReads(tid, offs, 0, start, std::move(done));
}

BpfKv::Result
BpfKv::run(unsigned threads, std::uint64_t opsPerThread)
{
    Result res;
    const Time start = s_.now();
    s_.kernel.cpu().acquire(threads);
    auto remaining = std::make_shared<unsigned>(threads);

    for (unsigned t = 0; t < threads; t++) {
        auto rng = std::make_shared<sim::Rng>(cfg_.seed * 131 + t);
        auto loop = std::make_shared<std::function<void(std::uint64_t)>>();
        *loop = [this, t, rng, opsPerThread, loop, remaining,
                 &res](std::uint64_t i) {
            if (i >= opsPerThread) {
                (*remaining)--;
                s_.eq.after(0, [loop]() { *loop = nullptr; });
                return;
            }
            const std::uint64_t key = rng->nextUint(cfg_.records);
            lookup(t, key, [&res, loop, i](Time lat) {
                res.latency.record(lat);
                res.ops++;
                (*loop)(i + 1);
            });
        };
        (*loop)(0);
    }
    s_.run();
    s_.kernel.cpu().release(threads);
    res.elapsed = s_.now() - start;
    return res;
}

} // namespace bpd::apps
