#include "apps/kvell.hpp"

#include "sim/logging.hpp"

namespace bpd::apps {

const char *
toString(KvellEngine e)
{
    switch (e) {
      case KvellEngine::Libaio: return "kvell(libaio)";
      case KvellEngine::Bypassd: return "kvell(bypassd)";
    }
    return "?";
}

KvellModel::KvellModel(sys::System &s, KvellConfig cfg)
    : s_(s), cfg_(cfg)
{
}

std::pair<unsigned, std::uint64_t>
KvellModel::place(std::uint64_t key) const
{
    const unsigned slab = static_cast<unsigned>(key % cfg_.slabFiles);
    const std::uint64_t idx = key / cfg_.slabFiles;
    return {slab, idx * cfg_.valueBytes};
}

void
KvellModel::setup()
{
    itemsPerSlab_
        = (cfg_.records + cfg_.slabFiles - 1) / cfg_.slabFiles;
    const std::uint64_t slabBytes = itemsPerSlab_ * cfg_.valueBytes;
    scratch_.assign(cfg_.valueBytes * 2, 0);
    proc_ = &s_.newProcess();

    for (unsigned i = 0; i < cfg_.slabFiles; i++) {
        const std::string path
            = cfg_.pathPrefix + std::to_string(i) + ".slab";
        const int cfd
            = s_.kernel.setupCreateFile(*proc_, path, slabBytes, 0);
        sim::panicIf(cfd < 0, "kvell: slab setup failed");
        if (cfg_.engine == KvellEngine::Bypassd) {
            int rc = -1;
            s_.kernel.sysClose(*proc_, cfd, [&rc](int r) { rc = r; });
            s_.run();
            if (!lib_)
                lib_ = &s_.userLib(*proc_);
            int fd = -1;
            lib_->open(path,
                       fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect,
                       0644, [&fd](int f) { fd = f; });
            s_.run();
            sim::panicIf(fd < 0 || !lib_->isDirect(fd),
                         "kvell: bypassd open failed");
            fds_.push_back(fd);
        } else {
            fds_.push_back(cfd);
        }
    }
}

void
KvellModel::itemIo(Tid tid, std::uint64_t key, bool write,
                   std::function<void(Time)> done)
{
    const Time start = s_.now();
    auto [slab, off] = place(key);
    const int fd = fds_[slab];
    auto cb = [this, start, done = std::move(done)](long long n,
                                                    kern::IoTrace) {
        sim::panicIf(n < 0, "kvell: I/O failed");
        done(s_.now() - start);
    };
    // In-memory index probe first.
    s_.eq.after(cfg_.indexLookupNs, [this, tid, fd, off, write,
                                     cb = std::move(cb)]() {
        auto span = std::span<std::uint8_t>(scratch_.data(),
                                            cfg_.valueBytes);
        if (cfg_.engine == KvellEngine::Bypassd) {
            if (write) {
                lib_->pwrite(tid, fd,
                             std::span<const std::uint8_t>(span), off,
                             cb);
            } else {
                lib_->pread(tid, fd, span, off, cb);
            }
        } else {
            if (write)
                s_.aio.pwrite(*proc_, fd, span, off, cb);
            else
                s_.aio.pread(*proc_, fd, span, off, cb);
        }
    });
}

KvellModel::Result
KvellModel::run(wl::Ycsb workload, unsigned threads,
                std::uint64_t opsPerThread)
{
    sim::panicIf(fds_.empty(), "kvell: run before setup");
    auto gen = std::make_shared<wl::YcsbGenerator>(workload, cfg_.records,
                                                   cfg_.seed);
    Result res;
    const Time start = s_.now();
    s_.kernel.cpu().acquire(threads);
    auto remaining
        = std::make_shared<unsigned>(threads * cfg_.queueDepth);

    for (unsigned t = 0; t < threads; t++) {
        // Each worker keeps queueDepth requests in flight (KVell batches
        // I/O aggressively; the paper runs QD 1 and QD 64).
        auto issued = std::make_shared<std::uint64_t>(0);
        auto slots = std::make_shared<std::uint32_t>(cfg_.queueDepth);
        auto loop = std::make_shared<std::function<void()>>();
        *loop = [this, t, gen, opsPerThread, issued, slots, loop,
                 remaining, &res]() {
            if (*issued >= opsPerThread) {
                (*remaining)--;
                // All queue-depth slots share this loop; break the
                // self-reference only when the last one retires.
                if (--*slots == 0)
                    s_.eq.after(0, [loop]() { *loop = nullptr; });
                return;
            }
            (*issued)++;
            wl::YcsbOp op = gen->next();
            bool write = op.kind == wl::YcsbOp::Kind::Update
                         || op.kind == wl::YcsbOp::Kind::Insert
                         || op.kind == wl::YcsbOp::Kind::Rmw;
            // Clamp inserts into the pre-sized slabs.
            const std::uint64_t key = op.key % cfg_.records;
            itemIo(t, key, write, [&res, loop](Time lat) {
                res.latency.record(lat);
                res.ops++;
                (*loop)();
            });
        };
        for (std::uint32_t d = 0; d < cfg_.queueDepth; d++)
            (*loop)();
    }
    s_.run();
    s_.kernel.cpu().release(threads);
    res.elapsed = s_.now() - start;
    return res;
}

} // namespace bpd::apps
