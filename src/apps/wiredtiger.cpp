#include "apps/wiredtiger.hpp"

#include <algorithm>

#include "sim/logging.hpp"
#include "workloads/fio.hpp"

namespace bpd::apps {

const char *
toString(WtEngine e)
{
    switch (e) {
      case WtEngine::Sync: return "sync";
      case WtEngine::Xrp: return "xrp";
      case WtEngine::Bypassd: return "bypassd";
    }
    return "?";
}

WiredTigerModel::WiredTigerModel(sys::System &s, WiredTigerConfig cfg)
    : s_(s), cfg_(cfg)
{
}

std::uint64_t
WiredTigerModel::pagesAtLevel(unsigned level) const
{
    return levelPages_[level];
}

std::uint64_t
WiredTigerModel::pageIndexFor(std::uint64_t key, unsigned level) const
{
    std::uint64_t leafIdx = key / recsPerLeaf_;
    const std::uint64_t leaves = levelPages_[depth_ - 1];
    if (leafIdx >= leaves)
        leafIdx = leaves - 1;
    std::uint64_t idx = leafIdx;
    for (unsigned l = depth_ - 1; l > level; l--)
        idx /= fanout_;
    return idx;
}

std::uint64_t
WiredTigerModel::pageOffset(unsigned level, std::uint64_t idx) const
{
    return (levelStart_[level] + idx) * cfg_.pageBytes;
}

void
WiredTigerModel::setup()
{
    // Geometry: leaf holds key+value records; internal nodes hold
    // key+child pairs.
    recsPerLeaf_ = cfg_.pageBytes / (cfg_.keyBytes + cfg_.valueBytes + 8);
    fanout_ = static_cast<unsigned>(cfg_.pageBytes / (cfg_.keyBytes + 8));
    sim::panicIf(recsPerLeaf_ == 0 || fanout_ < 2, "bad WT geometry");

    std::uint64_t leaves
        = (cfg_.records + recsPerLeaf_ - 1) / recsPerLeaf_;
    std::vector<std::uint64_t> up; // leaves-first
    up.push_back(leaves);
    while (up.back() > 1)
        up.push_back((up.back() + fanout_ - 1) / fanout_);
    depth_ = static_cast<unsigned>(up.size());
    levelPages_.assign(depth_, 0);
    for (unsigned l = 0; l < depth_; l++)
        levelPages_[l] = up[depth_ - 1 - l]; // root-first

    levelStart_.assign(depth_, 0);
    std::uint64_t acc = 0;
    for (unsigned l = 0; l < depth_; l++) {
        levelStart_[l] = acc;
        acc += levelPages_[l];
    }
    fileBytes_ = acc * cfg_.pageBytes;

    cacheCapacity_ = std::max<std::uint64_t>(
        1, cfg_.cacheBytes / cfg_.pageBytes);

    scratch_.assign(64 << 10, 0);

    proc_ = &s_.newProcess();
    // The tree's reads and writes replay either through the BypassD
    // shim or the sync syscall path; XRP chains are flagged as
    // unsupported at their issue site (opLookup).
    replayEngine_ = cfg_.engine == WtEngine::Bypassd
                        ? static_cast<std::uint8_t>(wl::Engine::Bypassd)
                        : static_cast<std::uint8_t>(wl::Engine::Sync);
    obs::Tracer *t = s_.tracer();
    if (t)
        fileId_ = t->replayFile(cfg_.path);
    const int cfd = s_.kernel.setupCreateFile(*proc_, cfg_.path,
                                              fileBytes_, 0);
    sim::panicIf(cfd < 0, "wiredtiger: file setup failed");
    if (t) {
        obs::ReplayRec r;
        r.op = obs::ReplayRec::Create;
        r.engine = replayEngine_;
        r.proc = proc_->pasid();
        r.file = fileId_;
        r.offset = fileBytes_;
        t->replayMark(r, cfd);
    }

    switch (cfg_.engine) {
      case WtEngine::Sync:
      case WtEngine::Xrp:
        fd_ = cfd; // direct kernel fd from setup
        if (cfg_.engine == WtEngine::Xrp)
            xrp_ = std::make_unique<xrp::XrpEngine>(s_.kernel);
        break;
      case WtEngine::Bypassd: {
        int rc = -1;
        std::uint32_t ri = 0;
        if (t) {
            obs::ReplayRec r;
            r.op = obs::ReplayRec::Close;
            r.engine = replayEngine_;
            r.proc = proc_->pasid();
            r.file = fileId_;
            ri = t->replayBegin(r);
        }
        s_.kernel.sysClose(*proc_, cfd, [&rc, t, ri](int r) {
            rc = r;
            if (t)
                t->replayEnd(ri, r);
        });
        s_.run();
        lib_ = &s_.userLib(*proc_);
        int fd = -1;
        const std::uint32_t oflags
            = fs::kOpenRead | fs::kOpenWrite | fs::kOpenDirect;
        if (t) {
            obs::ReplayRec r;
            r.op = obs::ReplayRec::Open;
            r.engine = replayEngine_;
            r.proc = proc_->pasid();
            r.file = fileId_;
            r.aux = oflags;
            ri = t->replayBegin(r);
        }
        lib_->open(cfg_.path, oflags, 0644, [&fd, t, ri](int f) {
            fd = f;
            if (t)
                t->replayEnd(ri, f);
        });
        s_.run();
        sim::panicIf(fd < 0 || !lib_->isDirect(fd),
                     "wiredtiger: bypassd open failed");
        fd_ = fd;
        break;
      }
    }
}

bool
WiredTigerModel::cacheContains(std::uint64_t id)
{
    auto it = cached_.find(id);
    if (it == cached_.end())
        return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

void
WiredTigerModel::cacheInsert(std::uint64_t id)
{
    if (cached_.count(id))
        return;
    if (lru_.size() >= cacheCapacity_) {
        cached_.erase(lru_.back().id);
        lru_.pop_back();
    }
    lru_.push_front(CacheEntry{id});
    cached_[id] = lru_.begin();
}

Time
WiredTigerModel::cacheAccessDelay(unsigned accesses)
{
    // Serialized cache bookkeeping: the global cache lock is the scaling
    // bottleneck the paper observes at high thread counts (Fig. 13).
    const Time work = static_cast<Time>(accesses) * cfg_.cacheLockNs;
    const Time lockAt = std::max(s_.now(), cacheLockFreeAt_);
    cacheLockFreeAt_ = lockAt + work;
    return (lockAt - s_.now()) + work
           + static_cast<Time>(accesses) * cfg_.cacheHitNs;
}

void
WiredTigerModel::readPage(Tid tid, std::uint64_t off, std::uint32_t len,
                          std::function<void()> done)
{
    deviceIos_++;
    obs::Tracer *t = s_.tracer();
    std::uint32_t ri = 0;
    if (t) {
        obs::ReplayRec r;
        r.op = obs::ReplayRec::Read;
        r.engine = replayEngine_;
        r.lane = static_cast<std::uint16_t>(tid);
        r.proc = proc_->pasid();
        r.tid = tid;
        r.file = fileId_;
        r.offset = off;
        r.len = len;
        ri = t->replayBegin(r);
    }
    auto span = std::span<std::uint8_t>(scratch_.data(), len);
    auto cb = [done = std::move(done), t, ri](long long n,
                                              kern::IoTrace) {
        if (t)
            t->replayEnd(ri, n);
        sim::panicIf(n < 0, "wiredtiger: read failed");
        done();
    };
    if (cfg_.engine == WtEngine::Bypassd)
        lib_->pread(tid, fd_, span, off, std::move(cb));
    else
        s_.kernel.sysPread(*proc_, fd_, span, off, std::move(cb));
}

void
WiredTigerModel::writePage(Tid tid, std::uint64_t off,
                           std::function<void()> done)
{
    deviceIos_++;
    obs::Tracer *t = s_.tracer();
    std::uint32_t ri = 0;
    if (t) {
        obs::ReplayRec r;
        r.op = obs::ReplayRec::Write;
        r.engine = replayEngine_;
        r.lane = static_cast<std::uint16_t>(tid);
        r.proc = proc_->pasid();
        r.tid = tid;
        r.file = fileId_;
        r.offset = off;
        r.len = cfg_.pageBytes;
        ri = t->replayBegin(r);
    }
    auto span = std::span<const std::uint8_t>(scratch_.data(),
                                              cfg_.pageBytes);
    auto cb = [done = std::move(done), t, ri](long long n,
                                              kern::IoTrace) {
        if (t)
            t->replayEnd(ri, n);
        sim::panicIf(n < 0, "wiredtiger: write failed");
        done();
    };
    if (cfg_.engine == WtEngine::Bypassd)
        lib_->pwrite(tid, fd_, span, off, std::move(cb));
    else
        s_.kernel.sysPwrite(*proc_, fd_, span, off, std::move(cb));
}

void
WiredTigerModel::opLookup(Tid tid, std::uint64_t key, bool update,
                          std::function<void(Time)> done)
{
    const Time start = s_.now();

    // Classify the path levels into cached / missing.
    struct Step
    {
        std::uint64_t id;
        std::uint64_t off;
        bool hit;
    };
    auto steps = std::make_shared<std::vector<Step>>();
    unsigned firstMiss = depth_;
    for (unsigned l = 0; l < depth_; l++) {
        const std::uint64_t idx = pageIndexFor(key, l);
        const std::uint64_t id
            = (static_cast<std::uint64_t>(l) << 48) | idx;
        const bool hit = cacheContains(id);
        if (!hit && firstMiss == depth_)
            firstMiss = l;
        steps->push_back(Step{id, pageOffset(l, idx), hit});
    }

    const Time cacheDelay
        = cacheAccessDelay(static_cast<unsigned>(depth_));

    auto finishRead = [this, tid, steps, update, start,
                       done = std::move(done)]() {
        for (const Step &st : *steps) {
            if (!st.hit)
                cacheInsert(st.id);
        }
        if (!update) {
            done(s_.now() - start);
            return;
        }
        // Update: rewrite the leaf page.
        const std::uint64_t leafOff = steps->back().off;
        writePage(tid, leafOff, [this, start, done]() {
            done(s_.now() - start);
        });
    };

    // Collect the missing page reads after the cache work.
    s_.eq.after(cacheDelay, [this, tid, steps, firstMiss,
                             finishRead = std::move(finishRead)]() {
        if (firstMiss == depth_) {
            finishRead();
            return;
        }
        const unsigned chainLen = depth_ - firstMiss;
        if (cfg_.engine == WtEngine::Xrp && chainLen >= 2) {
            // Chained resubmission happens inside the driver; there is
            // no workload-level record for it, so the trace is marked
            // partial and trace_replay refuses it.
            if (obs::Tracer *tr = s_.tracer())
                tr->replayUnsupported("xrp.chain");
            // XRP: the dependent miss-chain resubmits from the driver.
            auto offs = std::make_shared<std::vector<std::uint64_t>>();
            for (unsigned l = firstMiss; l < depth_; l++)
                offs->push_back((*steps)[l].off);
            deviceIos_ += chainLen;
            xrp_->lookup(
                *proc_, fd_, xrp::Hop{(*offs)[0], cfg_.pageBytes},
                [offs, this](std::span<const std::uint8_t>,
                             unsigned hopIdx)
                    -> std::optional<xrp::Hop> {
                    if (hopIdx + 1 >= offs->size())
                        return std::nullopt;
                    return xrp::Hop{(*offs)[hopIdx + 1],
                                    cfg_.pageBytes};
                },
                [finishRead = std::move(finishRead)](long long n,
                                                     kern::IoTrace) {
                    sim::panicIf(n < 0, "xrp lookup failed");
                    finishRead();
                });
            return;
        }
        // Sequential dependent reads for the missing levels.
        auto next = std::make_shared<std::function<void(unsigned)>>();
        *next = [this, tid, steps, next,
                 finishRead = std::move(finishRead)](unsigned l) {
            if (l >= depth_) {
                finishRead();
                // Break the self-reference cycle once the chain ends.
                s_.eq.after(0, [next]() { *next = nullptr; });
                return;
            }
            if ((*steps)[l].hit) {
                (*next)(l + 1);
                return;
            }
            readPage(tid, (*steps)[l].off, cfg_.pageBytes,
                     [next, l]() { (*next)(l + 1); });
        };
        (*next)(firstMiss);
    });
}

WiredTigerModel::Result
WiredTigerModel::run(wl::Ycsb workload, unsigned threads,
                     std::uint64_t opsPerThread)
{
    sim::panicIf(fd_ < 0, "wiredtiger: run before setup");
    auto gen = std::make_shared<wl::YcsbGenerator>(workload, cfg_.records,
                                                   cfg_.seed);
    Result res;
    const Time start = s_.now();
    const std::uint64_t startIos = deviceIos_;

    s_.kernel.cpu().acquire(threads);
    obs::Tracer *tracer = s_.tracer();
    if (tracer) {
        obs::ReplayRec r;
        r.op = obs::ReplayRec::CpuAcquire;
        r.engine = replayEngine_;
        r.proc = proc_->pasid();
        r.offset = threads;
        tracer->replayMark(r);
    }
    auto remaining = std::make_shared<unsigned>(threads);

    for (unsigned t = 0; t < threads; t++) {
        auto loop = std::make_shared<std::function<void(std::uint64_t)>>();
        *loop = [this, t, gen, opsPerThread, loop, remaining,
                 &res](std::uint64_t i) {
            if (i >= opsPerThread) {
                (*remaining)--;
                s_.eq.after(0, [loop]() { *loop = nullptr; });
                return;
            }
            const wl::YcsbOp op = gen->next();
            auto record = [this, &res, loop, i](Time lat) {
                res.latency.record(lat);
                res.ops++;
                (*loop)(i + 1);
            };
            switch (op.kind) {
              case wl::YcsbOp::Kind::Read:
                opLookup(t, op.key, false, record);
                break;
              case wl::YcsbOp::Kind::Update:
              case wl::YcsbOp::Kind::Rmw:
              case wl::YcsbOp::Kind::Insert:
                opLookup(t, op.key, true, record);
                break;
              case wl::YcsbOp::Kind::Scan: {
                // One larger read covering the scanned leaves; no
                // dependent chain, so XRP cannot help (Section 6.4).
                const Time s0 = s_.now();
                const std::uint64_t leaves
                    = (op.scanLen + recsPerLeaf_ - 1) / recsPerLeaf_;
                const std::uint64_t idx
                    = pageIndexFor(op.key, depth_ - 1);
                const std::uint64_t maxLeaf
                    = levelPages_[depth_ - 1];
                const std::uint64_t n
                    = std::min<std::uint64_t>(leaves,
                                              maxLeaf - std::min(idx,
                                                                 maxLeaf));
                const Time cd = cacheAccessDelay(
                    static_cast<unsigned>(depth_));
                s_.eq.after(cd, [this, t, idx, n, s0, record]() {
                    readPage(t, pageOffset(depth_ - 1, idx),
                             static_cast<std::uint32_t>(
                                 std::max<std::uint64_t>(1, n)
                                 * cfg_.pageBytes),
                             [this, s0, record]() {
                                 record(s_.now() - s0);
                             });
                });
                break;
              }
            }
        };
        (*loop)(0);
    }
    s_.run();
    sim::panicIf(*remaining != 0, "wiredtiger: threads still running");
    s_.kernel.cpu().release(threads);
    if (tracer) {
        obs::ReplayRec r;
        r.op = obs::ReplayRec::CpuRelease;
        r.engine = replayEngine_;
        r.proc = proc_->pasid();
        r.offset = threads;
        tracer->replayMark(r);
    }

    res.elapsed = s_.now() - start;
    res.deviceIos = deviceIos_ - startIos;
    res.kops = res.elapsed
                   ? static_cast<double>(res.ops)
                         / (static_cast<double>(res.elapsed) / 1e9)
                         / 1e3
                   : 0.0;
    return res;
}

} // namespace bpd::apps
