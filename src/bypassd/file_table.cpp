#include "bypassd/file_table.hpp"

#include "sim/logging.hpp"

namespace bpd::bypassd {

FileTableCache::FileTableCache(mem::FrameAllocator &fa, DevId dev,
                               BlockNo pblkBias)
    : fa_(fa), dev_(dev), bias_(pblkBias)
{
}

FileTableCache::~FileTableCache()
{
    for (mem::Frame f : leaves_)
        fa_.free(f);
}

void
FileTableCache::ensureLeaves(std::uint64_t blocks, BuildStats *stats)
{
    const std::uint64_t need = leavesFor(blocks);
    while (leaves_.size() < need) {
        leaves_.push_back(fa_.alloc());
        if (stats)
            stats->leavesAllocated++;
    }
}

void
FileTableCache::setFte(std::uint64_t blockIdx, BlockNo pblk,
                       BuildStats *stats)
{
    const std::uint64_t leaf = blockIdx / kBlocksPerLeaf;
    const std::uint64_t slot = blockIdx % kBlocksPerLeaf;
    sim::panicIf(pblk < bias_, "extent pblk below home-slot base");
    // Shared FTEs carry maximum rights; the per-open permission lives in
    // the private attaching entries (Section 4.1). The stored block
    // address is slot-local (volume pblk minus the home slot's base).
    fa_.table(leaves_[leaf])[slot]
        = mem::makeFte(pblk - bias_, dev_, /*writable=*/true);
    if (stats)
        stats->ftesWritten++;
}

FileTableCache::BuildStats
FileTableCache::buildFrom(const fs::ExtentTree &extents)
{
    BuildStats stats;
    ensureLeaves(extents.logicalEnd(), &stats);
    for (const fs::Extent &e : extents.extents()) {
        stats.extentsWalked++;
        for (std::uint64_t i = 0; i < e.count; i++)
            setFte(e.lblk + i, e.pblk + i, &stats);
    }
    mappedBlocks_ = extents.logicalEnd();
    return stats;
}

FileTableCache::BuildStats
FileTableCache::extend(const std::vector<fs::Extent> &added)
{
    BuildStats stats;
    for (const fs::Extent &e : added) {
        stats.extentsWalked++;
        ensureLeaves(e.lblk + e.count, &stats);
        for (std::uint64_t i = 0; i < e.count; i++)
            setFte(e.lblk + i, e.pblk + i, &stats);
        mappedBlocks_ = std::max(mappedBlocks_, e.lblk + e.count);
    }
    return stats;
}

void
FileTableCache::shrinkTo(std::uint64_t blocks)
{
    if (blocks >= mappedBlocks_)
        return;
    // Clear FTEs in the straddling leaf...
    const std::uint64_t firstLeafToFree = leavesFor(blocks);
    if (blocks % kBlocksPerLeaf != 0 || blocks == 0) {
        const std::uint64_t leaf = blocks / kBlocksPerLeaf;
        if (leaf < leaves_.size()) {
            std::uint64_t *tbl = fa_.table(leaves_[leaf]);
            for (std::uint64_t slot = blocks % kBlocksPerLeaf;
                 slot < kBlocksPerLeaf; slot++) {
                tbl[slot] = 0;
            }
        }
    }
    // ...and free whole leaves beyond.
    while (leaves_.size() > firstLeafToFree) {
        fa_.free(leaves_.back());
        leaves_.pop_back();
    }
    mappedBlocks_ = blocks;
}

} // namespace bpd::bypassd
