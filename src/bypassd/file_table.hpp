/**
 * @file
 * Pre-populated, shared file tables (Section 4.1, Fig. 4).
 *
 * A FileTableCache holds the leaf page-table frames whose entries are
 * FTEs mapping a file's blocks. One leaf frame covers 2 MiB of file (512
 * FTEs). The cache hangs off the file's VFS inode and is *shared* between
 * every process that fmap()s the file: a warm fmap() just links these
 * frames into the process page table at PMD level with per-open R/W.
 */

#ifndef BPD_BYPASSD_FILE_TABLE_HPP
#define BPD_BYPASSD_FILE_TABLE_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "fs/extent_tree.hpp"
#include "mem/frame_allocator.hpp"
#include "mem/pte.hpp"

namespace bpd::bypassd {

/** Blocks mapped by one shared leaf frame. */
constexpr std::uint64_t kBlocksPerLeaf = kPte; // 512 -> 2 MiB

class FileTableCache
{
  public:
    /** Work counters feeding the fmap() cost model (Table 5). */
    struct BuildStats
    {
        std::uint64_t ftesWritten = 0;
        std::uint64_t extentsWalked = 0;
        std::uint64_t leavesAllocated = 0;
    };

    /**
     * @param dev The home device's DevID, stamped into every FTE; the
     *     IOMMU rejects translations from any other device.
     * @param pblkBias Block number of the home device slot's base within
     *     the volume. FTEs store slot-local block addresses (the device
     *     only knows its own address space), so volume-absolute extent
     *     pblks are rebased by subtracting this. 0 on single-device
     *     volumes.
     */
    FileTableCache(mem::FrameAllocator &fa, DevId dev,
                   BlockNo pblkBias = 0);
    ~FileTableCache();
    FileTableCache(const FileTableCache &) = delete;
    FileTableCache &operator=(const FileTableCache &) = delete;

    /** Populate FTEs for every mapped block of @p extents (cold fmap). */
    BuildStats buildFrom(const fs::ExtentTree &extents);

    /** Add FTEs for newly allocated extents (append/fallocate path). */
    BuildStats extend(const std::vector<fs::Extent> &added);

    /** Drop FTEs at or above @p blocks (truncate path). */
    void shrinkTo(std::uint64_t blocks);

    DevId devId() const { return dev_; }
    BlockNo pblkBias() const { return bias_; }
    std::uint64_t mappedBlocks() const { return mappedBlocks_; }

    /** Shared leaf frames in file order. */
    const std::vector<mem::Frame> &leafFrames() const { return leaves_; }

    /** Number of leaves needed to map @p blocks blocks. */
    static std::uint64_t
    leavesFor(std::uint64_t blocks)
    {
        return (blocks + kBlocksPerLeaf - 1) / kBlocksPerLeaf;
    }

    /**
     * Per-process attachment registry (which VBA each PID mapped this
     * file at, and with what permission); maintained by BypassdModule and
     * consulted during revocation and extension.
     */
    struct Attachment
    {
        Vaddr vba;
        std::uint64_t regionBytes;
        bool writable;
        std::uint64_t attachedLeaves;
    };
    std::map<Pid, Attachment> attachments;

  private:
    void ensureLeaves(std::uint64_t blocks, BuildStats *stats);
    void setFte(std::uint64_t blockIdx, BlockNo pblk, BuildStats *stats);

    mem::FrameAllocator &fa_;
    DevId dev_;
    BlockNo bias_;
    std::vector<mem::Frame> leaves_;
    std::uint64_t mappedBlocks_ = 0;
};

} // namespace bpd::bypassd

#endif // BPD_BYPASSD_FILE_TABLE_HPP
