/**
 * @file
 * The BypassD kernel module (Sections 3.2-3.6): fmap()/funmap() syscalls,
 * user queue-pair and DMA-buffer setup with PASID linkage, FTE lifetime
 * management on appends/truncates, and the revocation engine.
 */

#ifndef BPD_BYPASSD_MODULE_HPP
#define BPD_BYPASSD_MODULE_HPP

#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "bypassd/file_table.hpp"
#include "kern/kernel.hpp"

namespace bpd::bypassd {

/** Result of an fmap() call. */
struct FmapResult
{
    Vaddr vba = 0;        //!< 0 => not eligible; use the kernel interface
    std::uint64_t mappedBytes = 0;
    Time cost = 0;        //!< modeled syscall latency (Table 5)
    bool cold = false;    //!< file tables had to be built
    std::size_t slot = 0; //!< home device slot; route I/O to its queues
    DevId dev = 0;        //!< home device's DevID (0 when vba == 0)
};

/** A user-mapped queue pair plus its pinned DMA buffer. */
struct UserQueues
{
    ssd::QueuePair *qp = nullptr;
    std::unique_ptr<ssd::CommandDispatcher> dispatcher;
    std::vector<std::uint8_t> dmaBuf;
    std::uint64_t dmaIova = 0;
    Time setupCost = 0;
    std::size_t slot = 0; //!< device slot the queue pair lives on
};

class BypassdModule : public kern::BypassdHooks
{
  public:
    explicit BypassdModule(kern::Kernel &kernel);
    ~BypassdModule() override;

    /**
     * fmap(): map @p ino's blocks into @p p's address space as FTEs.
     * Returns VBA 0 when the file is ineligible (already open through the
     * kernel interface, revoked, or not a regular file) — the caller must
     * then use the kernel interface (Sections 3.6, 4.5.2).
     */
    FmapResult fmap(kern::Process &p, InodeNum ino, bool writable);

    /** Detach @p p's file tables for @p ino (close path). */
    void funmap(kern::Process &p, InodeNum ino);

    /**
     * Revoke everyone's direct access to @p ino: detach FTEs and
     * invalidate IOMMU state; subsequent userspace I/O faults and falls
     * back (Section 3.6).
     */
    void revoke(fs::Inode &ino);

    /**
     * Device eviction (multi-device fleet): revoke every file-table
     * cache homed on device slot @p slot, in deterministic inode-number
     * order. Victims fault on their next direct I/O, re-fmap(), get
     * VBA 0 (the home device is evicted) and fall back to the kernel
     * interface, where I/O to the dead device fails with ENODEV.
     * @return Number of inodes whose caches were revoked.
     */
    std::size_t revokeSlot(std::size_t slot);

    /**
     * Multi-device placement hook: returns the home device slot for an
     * inode. Must agree with the file system's block placement (System
     * wires both from the same DeviceMap). Null (default) derives the
     * slot from the first extent's physical block — correct for
     * single-device volumes (always 0).
     */
    using HomeSlotFn = std::function<std::size_t(const fs::Inode &)>;
    void setHomeSlot(HomeSlotFn fn) { homeSlot_ = std::move(fn); }

    /** Home device slot of @p ino (see setHomeSlot). */
    std::size_t homeSlotOf(const fs::Inode &ino) const;

    /**
     * Create a VBA-capable queue pair + pinned DMA buffer for @p p on
     * device slot @p slot.
     */
    std::unique_ptr<UserQueues>
    createUserQueues(kern::Process &p, std::uint32_t depth,
                     std::uint64_t dmaBytes, std::size_t slot = 0);

    void destroyUserQueues(kern::Process &p, UserQueues &uq);

    /** @name Kernel hooks (Section 4.5.2 policy) */
    ///@{
    void onKernelOpen(fs::Inode &ino) override;
    void onMetadataChange(fs::Inode &ino, Pid pid) override;
    void onExtentsAdded(fs::Inode &ino,
                        const std::vector<fs::Extent> &added) override;
    void onTruncated(fs::Inode &ino) override;
    ///@}

    /** Is direct access currently revoked for this inode? */
    bool isRevoked(InodeNum ino) const { return revoked_.count(ino) != 0; }

    /** Attach the observability tracer (nullptr disables). */
    void setTracer(obs::Tracer *t);

    /**
     * Attach the per-tenant counter table (null = disabled). fmap and
     * revocation bookkeeping is attributed to the calling/victim
     * process's PASID. `revocations` stays system-only: one revocation
     * can detach many victims, so its per-tenant counterpart is
     * `revoked_victims` (one per detached process).
     */
    void setTenantAccounting(obs::TenantAccounting *a) { acct_ = a; }

    /** @name Statistics */
    ///@{
    std::uint64_t coldFmaps() const { return coldFmaps_; }
    std::uint64_t warmFmaps() const { return warmFmaps_; }
    std::uint64_t revocations() const { return revocations_; }
    std::uint64_t rejectedFmaps() const { return rejectedFmaps_; }
    /** Processes detached by revocations (>= revocations()). */
    std::uint64_t revokedVictims() const { return revokedVictims_; }
    ///@}

    /** VA headroom reserved beyond the file size for in-place growth. */
    static constexpr std::uint64_t kRegionHeadroom = 32ull << 20;

  private:
    FileTableCache *cacheOf(fs::Inode &ino);
    FileTableCache *ensureCache(fs::Inode &ino, FmapResult *res);
    /** IOMMU context of the slot @p ino's cache was built on (0 if none). */
    iommu::Iommu &homeIommu(InodeNum ino);
    /**
     * Detach @p p's attachment. With @p quarantineVa the VBA region is
     * NOT returned to the VA allocator yet: a revoked process still
     * holds the stale VBA, and releasing the region immediately would
     * let a subsequent fmap() (even of another file in the same
     * process) reuse it — the stale VBA would then translate through
     * the new mapping instead of faulting. The region is released when
     * the owner re-fmaps or funmaps (analogous to Section 3.6's
     * deferred block reuse).
     */
    void detachOne(kern::Process &p, fs::Inode &ino,
                   FileTableCache &cache, bool quarantineVa);
    void releaseQuarantine(kern::Process &p, InodeNum ino);
    /** Emit the fmap cold/warm span when tracing is enabled. */
    void emitFmap(const FmapResult &res, InodeNum ino);

    kern::Kernel &kernel_;

    obs::Tracer *trace_ = nullptr;
    std::uint16_t obsTrack_ = 0;

    std::uint64_t coldFmaps_ = 0;
    std::uint64_t warmFmaps_ = 0;
    std::uint64_t revocations_ = 0;
    std::uint64_t rejectedFmaps_ = 0;
    std::uint64_t revokedVictims_ = 0;

    obs::TenantAccounting *acct_ = nullptr;

    std::set<InodeNum> revoked_;

    HomeSlotFn homeSlot_;
    /**
     * Inodes with a built file-table cache, keyed to their home slot at
     * build time. std::map keeps revokeSlot()'s walk in deterministic
     * inode order. Entries persist for the cache's lifetime (caches die
     * with the inode); revoke() tolerates empty-attachment caches.
     */
    std::map<InodeNum, std::size_t> cacheHome_;

    struct QuarantinedRegion
    {
        Vaddr vba;
        std::uint64_t bytes;
    };
    /** Revoked-but-unreleased VBA regions, keyed by (pid, inode). */
    std::map<std::pair<Pid, InodeNum>, QuarantinedRegion> quarantined_;
};

} // namespace bpd::bypassd

#endif // BPD_BYPASSD_MODULE_HPP
