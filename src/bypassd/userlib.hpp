/**
 * @file
 * UserLib: the BypassD userspace shim library (Sections 3.2, 4.2, 4.5).
 *
 * Intercepts POSIX file calls. Metadata operations forward to the kernel;
 * reads and overwrites are issued directly to the device on per-thread
 * VBA-mode queue pairs with pinned DMA buffers. Appends are detected from
 * the locally tracked file size and routed through the kernel (optionally
 * accelerated by fallocate() pre-allocation, Section 5.1). Partial writes
 * to overlapping sectors are serialized (Section 4.5.1). IOMMU faults
 * trigger re-fmap(); a zero VBA means access was revoked and the file
 * falls back to the kernel interface for good (Section 3.6).
 */

#ifndef BPD_BYPASSD_USERLIB_HPP
#define BPD_BYPASSD_USERLIB_HPP

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "bypassd/module.hpp"
#include "kern/kernel.hpp"

namespace bpd::bypassd {

struct UserLibConfig
{
    std::uint32_t queueDepth = 256;
    std::uint64_t dmaBufBytes = 2ull << 20;
    /** Section 5.1: accelerate appends via fallocate() pre-allocation. */
    bool optimizedAppend = false;
    std::uint64_t appendPreallocBytes = 4ull << 20;
    /**
     * Section 5.1: non-blocking writes. Aligned overwrites complete to
     * the caller after the buffer copy; the device write proceeds in the
     * background. Reads consult the pending-write ranges (CrossFS-style
     * per-inode range tracking) so they always observe the latest data;
     * fsync() drains all pending writes first.
     */
    bool nonBlockingWrites = false;
};

class UserLib
{
  public:
    UserLib(kern::Kernel &kernel, BypassdModule &module, kern::Process &p,
            UserLibConfig cfg = {});
    ~UserLib();
    UserLib(const UserLib &) = delete;
    UserLib &operator=(const UserLib &) = delete;

    /** @name Intercepted POSIX calls (Table 3) */
    ///@{
    void open(const std::string &path, std::uint32_t flags,
              std::uint16_t mode, kern::IntCb cb);
    void close(int fd, kern::IntCb cb);
    void pread(Tid tid, int fd, std::span<std::uint8_t> buf,
               std::uint64_t off, kern::IoCb cb);
    void pwrite(Tid tid, int fd, std::span<const std::uint8_t> buf,
                std::uint64_t off, kern::IoCb cb);
    void read(Tid tid, int fd, std::span<std::uint8_t> buf, kern::IoCb cb);
    void write(Tid tid, int fd, std::span<const std::uint8_t> buf,
               kern::IoCb cb);
    void fsync(Tid tid, int fd, kern::IntCb cb);
    void fallocate(int fd, std::uint64_t off, std::uint64_t len,
                   kern::IntCb cb);
    void ftruncate(int fd, std::uint64_t size, kern::IntCb cb);
    ///@}

    /**
     * Pre-create the queue pair + DMA buffer for a thread on device
     * slot @p slot (init-time; untimed, like SPDK's hugepage setup).
     * Queues for other slots a thread touches are created lazily.
     */
    void prepareThread(Tid tid, std::size_t slot = 0);

    /** Locally tracked size of an open file. */
    std::uint64_t fileSize(int fd) const;

    /** Is the fd currently served through the BypassD interface? */
    bool isDirect(int fd) const;

    kern::Process &process() { return proc_; }

    /** @name Statistics */
    ///@{
    std::uint64_t directReads() const { return directReads_; }
    std::uint64_t directWrites() const { return directWrites_; }
    std::uint64_t kernelFallbackOps() const { return fallbackOps_; }
    std::uint64_t appendsRouted() const { return appendsRouted_; }
    std::uint64_t partialSerialized() const { return partialSerialized_; }
    std::uint64_t iommuFaults() const { return iommuFaults_; }
    std::uint64_t nonBlockingWrites() const { return nbWrites_; }
    std::uint64_t pendingReadHits() const { return pendingReadHits_; }
    ///@}

  private:
    struct FileInfo
    {
        InodeNum ino = 0;
        std::uint32_t flags = 0;
        std::uint64_t size = 0;   //!< tracked locally (Section 3.2)
        std::uint64_t offset = 0; //!< file position for read()/write()
        Vaddr vba = 0;            //!< starting VBA; 0 => kernel interface
        std::size_t slot = 0;     //!< home device slot (queue routing)
        bool direct = false;
        std::uint64_t preallocEnd = 0;

        /** Sectors with an in-flight partial write (Section 4.5.1). */
        std::set<std::uint64_t> inflightSectors;
        struct PendingPartial
        {
            Tid tid;
            int fd;
            std::vector<std::uint8_t> data;
            std::uint64_t off;
            kern::IoCb cb;
            obs::TraceId trace = 0;
        };
        std::deque<PendingPartial> pendingPartials;

        /**
         * Non-blocking writes in flight (Section 5.1): buffered data
         * keyed by offset. Reads overlapping a pending range are served
         * from (or synchronized with) these buffers.
         */
        struct PendingWrite
        {
            std::uint64_t off;
            std::vector<std::uint8_t> data;
            bool devDone = false;
            std::vector<std::function<void()>> waiters;
        };
        std::map<std::uint64_t, std::shared_ptr<PendingWrite>>
            pendingWrites;
        std::vector<std::function<void()>> drainWaiters;
    };

    struct ThreadCtx
    {
        /** Queue pair + DMA buffer per device slot the thread touches. */
        std::map<std::size_t, std::unique_ptr<UserQueues>> uq;
    };

    /** The (thread, device-slot) queue pair, created lazily. */
    UserQueues &uq(Tid tid, std::size_t slot);
    FileInfo *info(int fd);
    const FileInfo *info(int fd) const;

    /**
     * Dispatch stages of pread/pwrite after the request envelope has
     * been opened: re-dispatched requests (pending-write waiters,
     * serialized partials) re-enter here so one logical request keeps
     * one trace id and one envelope.
     */
    void preadResume(Tid tid, int fd, std::span<std::uint8_t> buf,
                     std::uint64_t off, kern::IoCb cb, obs::TraceId trace);
    void pwriteResume(Tid tid, int fd, std::span<const std::uint8_t> buf,
                      std::uint64_t off, kern::IoCb cb,
                      obs::TraceId trace);

    void directRead(Tid tid, int fd, std::span<std::uint8_t> buf,
                    std::uint64_t off, kern::IoCb cb, obs::TraceId trace);
    void directOverwrite(Tid tid, int fd,
                         std::span<const std::uint8_t> buf,
                         std::uint64_t off, kern::IoCb cb,
                         obs::TraceId trace);
    /** Section 5.1 non-blocking write path. */
    void nonBlockingWrite(Tid tid, int fd,
                          std::span<const std::uint8_t> buf,
                          std::uint64_t off, kern::IoCb cb,
                          obs::TraceId trace);
    /**
     * Read-side pending-write handling: serve fully-buffered reads from
     * the pending buffers; make partially-overlapping reads wait.
     * @retval true when the read was fully handled here.
     */
    bool consultPendingWrites(Tid tid, int fd,
                              std::span<std::uint8_t> buf,
                              std::uint64_t off, const kern::IoCb &cb,
                              obs::TraceId trace);
    void drainPendingWrites(int fd, std::function<void()> done);
    void partialWrite(Tid tid, int fd, std::span<const std::uint8_t> buf,
                      std::uint64_t off, kern::IoCb cb, obs::TraceId trace);
    void drainPendingPartials(int fd);
    void appendWrite(Tid tid, int fd, std::span<const std::uint8_t> buf,
                     std::uint64_t off, kern::IoCb cb, obs::TraceId trace);

    /**
     * IOMMU fault recovery (Section 3.6): re-fmap; retry on success,
     * permanently fall back to the kernel interface on VBA 0.
     */
    void handleFault(int fd, std::function<void()> retryDirect,
                     std::function<void()> fallbackKernel,
                     obs::TraceId trace = 0);

    /** Emit a "bypassd.*" request envelope at completion (tracing on). */
    kern::IoCb wrapRequest(const char *name, obs::TraceId trace,
                           kern::IoCb cb);
    /** Lazily interned "bypassd.p<pid>" track (tracer must be set). */
    std::uint16_t obsTrack();

    void submitWithRetry(Tid tid, std::size_t slot, ssd::Command cmd,
                         ssd::CommandDispatcher::CompletionFn fn);
    void submitNow(Tid tid, std::size_t slot, ssd::Command cmd,
                   ssd::CommandDispatcher::CompletionFn fn);

    kern::Kernel &kernel_;
    BypassdModule &module_;
    kern::Process &proc_;
    UserLibConfig cfg_;

    std::map<int, FileInfo> files_;
    std::map<Tid, ThreadCtx> threads_;

    std::uint64_t directReads_ = 0;
    std::uint64_t directWrites_ = 0;
    std::uint64_t fallbackOps_ = 0;
    std::uint64_t appendsRouted_ = 0;
    std::uint64_t partialSerialized_ = 0;
    std::uint64_t iommuFaults_ = 0;
    std::uint64_t nbWrites_ = 0;
    std::uint64_t pendingReadHits_ = 0;

    std::uint16_t obsTrack_ = 0;
    bool obsTrackInit_ = false;
};

} // namespace bpd::bypassd

#endif // BPD_BYPASSD_USERLIB_HPP
