#include "bypassd/userlib.hpp"

#include <algorithm>
#include <cstring>

#include "qos/qos.hpp"
#include "sim/logging.hpp"

namespace bpd::bypassd {

namespace {

std::uint64_t
alignDown(std::uint64_t x, std::uint64_t a)
{
    return x & ~(a - 1);
}

std::uint64_t
alignUp(std::uint64_t x, std::uint64_t a)
{
    return (x + a - 1) & ~(a - 1);
}

/** Map a device completion status to the errno handed to callers. */
int
devErrno(ssd::Status st)
{
    return kern::errOf(st == ssd::Status::DeviceEvicted
                           ? fs::FsStatus::NoDev
                           : fs::FsStatus::Inval);
}

} // namespace

UserLib::UserLib(kern::Kernel &kernel, BypassdModule &module,
                 kern::Process &p, UserLibConfig cfg)
    : kernel_(kernel), module_(module), proc_(p), cfg_(cfg)
{
    proc_.userLib = this;
}

UserLib::~UserLib()
{
    for (auto &[tid, tc] : threads_) {
        for (auto &[slot, q] : tc.uq) {
            if (q)
                module_.destroyUserQueues(proc_, *q);
        }
    }
    proc_.userLib = nullptr;
}

UserQueues &
UserLib::uq(Tid tid, std::size_t slot)
{
    ThreadCtx &tc = threads_[tid];
    std::unique_ptr<UserQueues> &q = tc.uq[slot];
    if (!q) {
        q = module_.createUserQueues(proc_, cfg_.queueDepth,
                                     cfg_.dmaBufBytes, slot);
        sim::panicIf(q == nullptr,
                     "user queue creation failed (device claimed?)");
    }
    return *q;
}

void
UserLib::prepareThread(Tid tid, std::size_t slot)
{
    uq(tid, slot);
}

UserLib::FileInfo *
UserLib::info(int fd)
{
    auto it = files_.find(fd);
    return it == files_.end() ? nullptr : &it->second;
}

const UserLib::FileInfo *
UserLib::info(int fd) const
{
    auto it = files_.find(fd);
    return it == files_.end() ? nullptr : &it->second;
}

std::uint64_t
UserLib::fileSize(int fd) const
{
    const FileInfo *fi = info(fd);
    return fi ? fi->size : 0;
}

bool
UserLib::isDirect(int fd) const
{
    const FileInfo *fi = info(fd);
    return fi && fi->direct;
}

void
UserLib::open(const std::string &path, std::uint32_t flags,
              std::uint16_t mode, kern::IntCb cb)
{
    // Forward to the kernel, then fmap() to set up direct access
    // (Table 3). The intent flag keeps this open from counting as a
    // kernel-interface open in the sharing policy.
    kernel_.sysOpen(
        proc_, path, flags | kern::kOpenBypassdIntent, mode,
        [this, flags, cb = std::move(cb)](int fd) {
            if (fd < 0) {
                cb(fd);
                return;
            }
            kern::OpenFile *of = proc_.file(fd);
            FmapResult res = module_.fmap(proc_, of->ino,
                                          (flags & fs::kOpenWrite) != 0);
            kernel_.eq().after(res.cost, [this, fd, flags, of, res,
                                          cb = std::move(cb)]() {
                FileInfo fi;
                fi.ino = of->ino;
                fi.flags = flags;
                const fs::Inode *node
                    = kernel_.vfs().fs().inode(of->ino);
                fi.size = node ? node->size : 0;
                fi.vba = res.vba;
                fi.slot = res.slot;
                fi.direct = res.vba != 0;
                fi.preallocEnd = fi.size;
                files_[fd] = std::move(fi);
                cb(fd);
            });
        });
}

void
UserLib::close(int fd, kern::IntCb cb)
{
    FileInfo *fi = info(fd);
    if (fi) {
        module_.funmap(proc_, fi->ino);
        files_.erase(fd);
    }
    kernel_.sysClose(proc_, fd, std::move(cb));
}

void
UserLib::read(Tid tid, int fd, std::span<std::uint8_t> buf, kern::IoCb cb)
{
    FileInfo *fi = info(fd);
    const std::uint64_t off = fi ? fi->offset : 0;
    pread(tid, fd, buf, off,
          [this, fd, cb = std::move(cb)](long long n, kern::IoTrace tr) {
              if (n > 0) {
                  if (FileInfo *f = info(fd))
                      f->offset += static_cast<std::uint64_t>(n);
              }
              cb(n, tr);
          });
}

void
UserLib::write(Tid tid, int fd, std::span<const std::uint8_t> buf,
               kern::IoCb cb)
{
    FileInfo *fi = info(fd);
    const std::uint64_t off = fi ? fi->offset : 0;
    pwrite(tid, fd, buf, off,
           [this, fd, cb = std::move(cb)](long long n, kern::IoTrace tr) {
               if (n > 0) {
                   if (FileInfo *f = info(fd))
                       f->offset += static_cast<std::uint64_t>(n);
               }
               cb(n, tr);
           });
}

std::uint16_t
UserLib::obsTrack()
{
    if (!obsTrackInit_) {
        obsTrack_ = kernel_.tracer()->track(
            "bypassd.p" + std::to_string(proc_.pid()));
        obsTrackInit_ = true;
    }
    return obsTrack_;
}

kern::IoCb
UserLib::wrapRequest(const char *name, obs::TraceId trace, kern::IoCb cb)
{
    obs::Tracer *t = kernel_.tracer();
    const Time start = kernel_.eq().now();
    const std::uint16_t track = obsTrack();
    return [this, t, name, track, trace, start,
            cb = std::move(cb)](long long n, kern::IoTrace tr) {
        obs::RequestBreakdown b;
        b.userNs = tr.userNs;
        b.kernelNs = tr.kernelNs;
        b.translateNs = tr.translateNs;
        b.deviceNs = tr.deviceNs;
        b.bytes = n > 0 ? static_cast<std::uint64_t>(n) : 0;
        t->request(track, name, trace, start, kernel_.eq().now(), b);
        cb(n, tr);
    };
}

void
UserLib::pread(Tid tid, int fd, std::span<std::uint8_t> buf,
               std::uint64_t off, kern::IoCb cb)
{
    FileInfo *fi = info(fd);
    if (!fi || !(fi->flags & fs::kOpenRead)) {
        kernel_.eq().after(kernel_.costs().userlibSubmitNs,
                           [cb = std::move(cb)]() {
                               cb(kern::errOf(fs::FsStatus::Inval),
                                  kern::IoTrace{});
                           });
        return;
    }
    obs::TraceId trace = 0;
    if (obs::Tracer *t = kernel_.tracer()) {
        trace = t->newTrace(proc_.pasid());
        cb = wrapRequest("bypassd.pread", trace, std::move(cb));
    }
    preadResume(tid, fd, buf, off, std::move(cb), trace);
}

void
UserLib::preadResume(Tid tid, int fd, std::span<std::uint8_t> buf,
                     std::uint64_t off, kern::IoCb cb, obs::TraceId trace)
{
    FileInfo *fi = info(fd);
    if (!fi) {
        kernel_.eq().after(kernel_.costs().userlibSubmitNs,
                           [cb = std::move(cb)]() {
                               cb(kern::errOf(fs::FsStatus::Inval),
                                  kern::IoTrace{});
                           });
        return;
    }
    if (!fi->direct) {
        fallbackOps_++;
        kernel_.sysPread(proc_, fd, buf, off, std::move(cb), trace);
        return;
    }
    // Non-blocking-write mode: reads must observe buffered writes.
    if (cfg_.nonBlockingWrites
        && consultPendingWrites(tid, fd, buf, off, cb, trace)) {
        return;
    }
    directRead(tid, fd, buf, off, std::move(cb), trace);
}

void
UserLib::pwrite(Tid tid, int fd, std::span<const std::uint8_t> buf,
                std::uint64_t off, kern::IoCb cb)
{
    FileInfo *fi = info(fd);
    if (!fi || !(fi->flags & fs::kOpenWrite)) {
        kernel_.eq().after(kernel_.costs().userlibSubmitNs,
                           [cb = std::move(cb)]() {
                               cb(kern::errOf(fs::FsStatus::Inval),
                                  kern::IoTrace{});
                           });
        return;
    }
    obs::TraceId trace = 0;
    if (obs::Tracer *t = kernel_.tracer()) {
        trace = t->newTrace(proc_.pasid());
        cb = wrapRequest("bypassd.pwrite", trace, std::move(cb));
    }
    pwriteResume(tid, fd, buf, off, std::move(cb), trace);
}

void
UserLib::pwriteResume(Tid tid, int fd, std::span<const std::uint8_t> buf,
                      std::uint64_t off, kern::IoCb cb, obs::TraceId trace)
{
    FileInfo *fi = info(fd);
    if (!fi) {
        kernel_.eq().after(kernel_.costs().userlibSubmitNs,
                           [cb = std::move(cb)]() {
                               cb(kern::errOf(fs::FsStatus::Inval),
                                  kern::IoTrace{});
                           });
        return;
    }
    if (!fi->direct) {
        fallbackOps_++;
        kernel_.sysPwrite(proc_, fd, buf, off, std::move(cb), trace);
        return;
    }
    if (off + buf.size() > fi->size) {
        appendWrite(tid, fd, buf, off, std::move(cb), trace);
        return;
    }
    const bool partial = (off % kSectorBytes) != 0
                         || (buf.size() % kSectorBytes) != 0;
    if (partial)
        partialWrite(tid, fd, buf, off, std::move(cb), trace);
    else if (cfg_.nonBlockingWrites)
        nonBlockingWrite(tid, fd, buf, off, std::move(cb), trace);
    else
        directOverwrite(tid, fd, buf, off, std::move(cb), trace);
}

void
UserLib::nonBlockingWrite(Tid tid, int fd,
                          std::span<const std::uint8_t> buf,
                          std::uint64_t off, kern::IoCb cb,
                          obs::TraceId trace)
{
    FileInfo *fi = info(fd);
    const std::uint64_t end = off + buf.size();

    // Overlapping an in-flight non-blocking write: serialize behind it
    // (per-inode range tracking, Section 5.1 / CrossFS).
    for (auto &[poff, pw] : fi->pendingWrites) {
        const std::uint64_t pend = poff + pw->data.size();
        if (off < pend && poff < end) {
            auto data = std::make_shared<std::vector<std::uint8_t>>(
                buf.begin(), buf.end());
            pw->waiters.push_back([this, tid, fd, data, off, trace,
                                   cb = std::move(cb)]() {
                nonBlockingWrite(
                    tid, fd,
                    std::span<const std::uint8_t>(data->data(),
                                                  data->size()),
                    off, cb, trace);
            });
            return;
        }
    }

    nbWrites_++;
    directWrites_++;
    auto pw = std::make_shared<FileInfo::PendingWrite>();
    pw->off = off;
    pw->data.assign(buf.begin(), buf.end());
    fi->pendingWrites[off] = pw;

    // The caller sees completion right after the buffer copy.
    const kern::CostModel &c = kernel_.costs();
    const Time ackCost = kernel_.cpu().scaled(c.userlibSubmitNs
                                              + c.copyCost(buf.size()));
    const Time start = kernel_.eq().now();
    kernel_.eq().after(ackCost, [start, n = buf.size(), this,
                                 cb = std::move(cb)]() {
        kern::IoTrace tr;
        tr.userNs = kernel_.eq().now() - start;
        cb(static_cast<long long>(n), tr);
    });

    // Background device write from the pending buffer (its own pinned
    // staging area, so per-thread DMA buffers stay free for reads).
    auto issue = std::make_shared<std::function<void()>>();
    auto complete = [this, fd, pw, issue]() {
        pw->devDone = true;
        FileInfo *fi2 = info(fd);
        if (fi2) {
            fi2->pendingWrites.erase(pw->off);
            for (auto &w : pw->waiters)
                w();
            if (fi2->pendingWrites.empty()) {
                auto drains = std::move(fi2->drainWaiters);
                fi2->drainWaiters.clear();
                for (auto &d : drains)
                    d();
            }
        } else {
            for (auto &w : pw->waiters)
                w();
        }
        // Break the issue-closure reference cycle now that the write is
        // done (it captures this shared function object for retries).
        *issue = nullptr;
    };

    *issue = [this, tid, fd, pw, off, trace, issue, complete]() {
        FileInfo *fi2 = info(fd);
        if (!fi2 || !fi2->direct) {
            // Revoked or closed: write back through the kernel.
            kernel_.sysPwrite(proc_, fd,
                              std::span<const std::uint8_t>(
                                  pw->data.data(), pw->data.size()),
                              off,
                              [complete](long long, kern::IoTrace) {
                                  complete();
                              },
                              trace);
            return;
        }
        ssd::Command cmd;
        cmd.op = ssd::Op::Write;
        cmd.addr = fi2->vba + off;
        cmd.addrIsVba = true;
        cmd.len = static_cast<std::uint32_t>(pw->data.size());
        cmd.hostBuf = std::span<std::uint8_t>(pw->data.data(),
                                              pw->data.size());
        cmd.trace = trace;
        submitWithRetry(tid, fi2->slot, cmd,
                        [this, fd, trace, issue, complete](
                            const ssd::Completion &comp) {
            if (comp.status != ssd::Status::Success) {
                handleFault(fd, [issue]() { (*issue)(); },
                            [issue]() { (*issue)(); }, trace);
                return;
            }
            complete();
        });
    };
    (*issue)();
}

bool
UserLib::consultPendingWrites(Tid tid, int fd,
                              std::span<std::uint8_t> buf,
                              std::uint64_t off, const kern::IoCb &cb,
                              obs::TraceId trace)
{
    FileInfo *fi = info(fd);
    if (!fi || fi->pendingWrites.empty())
        return false;
    const std::uint64_t n
        = off >= fi->size
              ? 0
              : std::min<std::uint64_t>(buf.size(), fi->size - off);
    if (n == 0)
        return false;
    const std::uint64_t end = off + n;

    std::vector<std::shared_ptr<FileInfo::PendingWrite>> overlaps;
    for (auto &[poff, pw] : fi->pendingWrites) {
        if (off < poff + pw->data.size() && poff < end)
            overlaps.push_back(pw);
    }
    if (overlaps.empty())
        return false;

    // Fully covered by one buffered write: serve from memory.
    if (overlaps.size() == 1) {
        auto &pw = overlaps[0];
        if (pw->off <= off && off + n <= pw->off + pw->data.size()) {
            pendingReadHits_++;
            const kern::CostModel &c = kernel_.costs();
            const Time cost = kernel_.cpu().scaled(c.userlibSubmitNs
                                                   + c.copyCost(n));
            const Time start = kernel_.eq().now();
            std::memcpy(buf.data(), pw->data.data() + (off - pw->off),
                        n);
            kernel_.eq().after(cost, [start, n, this, cb]() {
                kern::IoTrace tr;
                tr.userNs = kernel_.eq().now() - start;
                cb(static_cast<long long>(n), tr);
            });
            return true;
        }
    }

    // Partial overlap: wait for the overlapping writes to reach the
    // device, then read normally (the device is the point of coherence).
    auto remaining = std::make_shared<std::size_t>(overlaps.size());
    for (auto &pw : overlaps) {
        pw->waiters.push_back([this, tid, fd, buf, off, cb, trace,
                               remaining]() {
            if (--*remaining == 0)
                preadResume(tid, fd, buf, off, cb, trace);
        });
    }
    return true;
}

void
UserLib::drainPendingWrites(int fd, std::function<void()> done)
{
    FileInfo *fi = info(fd);
    if (!fi || fi->pendingWrites.empty()) {
        done();
        return;
    }
    fi->drainWaiters.push_back(std::move(done));
}

void
UserLib::submitWithRetry(Tid tid, std::size_t slot, ssd::Command cmd,
                         ssd::CommandDispatcher::CompletionFn fn)
{
    // QoS gate on the direct path: data commands charge the process's
    // token buckets exactly once (the SQ-full retry loop below does not
    // re-charge). Flushes are exempt — caps cover data IOPS/bytes only.
    qos::Registry *qos = kernel_.qos();
    if (qos && (cmd.op == ssd::Op::Read || cmd.op == ssd::Op::Write)) {
        const TenantId tenant = proc_.pasid();
        if (!qos->tryAcquire(tenant, 1, cmd.len)) {
            qos->park(tenant, 1, cmd.len,
                      [this, tid, slot, cmd, fn = std::move(fn)]() mutable {
                          submitNow(tid, slot, cmd, std::move(fn));
                      });
            return;
        }
    }
    submitNow(tid, slot, cmd, std::move(fn));
}

void
UserLib::submitNow(Tid tid, std::size_t slot, ssd::Command cmd,
                   ssd::CommandDispatcher::CompletionFn fn)
{
    UserQueues &q = uq(tid, slot);
    if (q.dispatcher->submit(cmd, fn))
        return;
    // SQ full: poll and retry shortly.
    kernel_.eq().after(500, [this, tid, slot, cmd, fn = std::move(fn)]() {
        submitNow(tid, slot, cmd, fn);
    });
}

void
UserLib::handleFault(int fd, std::function<void()> retryDirect,
                     std::function<void()> fallbackKernel,
                     obs::TraceId trace)
{
    iommuFaults_++;
    if (obs::Tracer *t = kernel_.tracer())
        t->instant(obsTrack(), "bypassd.iommu_fault", trace);
    FileInfo *fi = info(fd);
    if (!fi) {
        fallbackKernel();
        return;
    }
    // Section 3.6 steps 3-5: re-fmap(); VBA 0 means the kernel refuses
    // direct access, so use the kernel interface from now on.
    FmapResult res = module_.fmap(proc_, fi->ino,
                                  (fi->flags & fs::kOpenWrite) != 0);
    kernel_.eq().after(res.cost, [this, fd, res,
                                  retryDirect = std::move(retryDirect),
                                  fallbackKernel
                                  = std::move(fallbackKernel)]() {
        FileInfo *fi = info(fd);
        if (!fi) {
            fallbackKernel();
            return;
        }
        if (res.vba != 0) {
            fi->vba = res.vba;
            fi->slot = res.slot;
            fi->direct = true;
            retryDirect();
        } else {
            fi->direct = false;
            fi->vba = 0;
            fallbackOps_++;
            fallbackKernel();
        }
    });
}

void
UserLib::directRead(Tid tid, int fd, std::span<std::uint8_t> buf,
                    std::uint64_t off, kern::IoCb cb, obs::TraceId trace)
{
    FileInfo *fi = info(fd);
    const Time start = kernel_.eq().now();
    const kern::CostModel &c = kernel_.costs();

    // The locally tracked size can go stale when another process
    // appends (Section 4.5.2 allows shared reads/overwrites). When a
    // read would clip at the cached EOF, revalidate with an fstat-style
    // kernel query before deciding.
    if (off + buf.size() > fi->size) {
        const fs::Inode *node = kernel_.vfs().fs().inode(fi->ino);
        if (node && node->size > fi->size) {
            fi->size = node->size;
            fi->preallocEnd = std::max(fi->preallocEnd, fi->size);
            const Time statCost = kernel_.cpu().scaled(
                c.userToKernelNs + 500 + c.kernelToUserNs);
            kernel_.eq().after(statCost,
                               [this, tid, fd, buf, off, trace,
                                cb = std::move(cb)]() {
                                   directRead(tid, fd, buf, off, cb,
                                              trace);
                               });
            return;
        }
    }

    const std::uint64_t n
        = off >= fi->size
              ? 0
              : std::min<std::uint64_t>(buf.size(), fi->size - off);
    if (n == 0) {
        kernel_.eq().after(kernel_.cpu().scaled(c.userlibSubmitNs),
                           [cb = std::move(cb)]() {
                               cb(0, kern::IoTrace{});
                           });
        return;
    }

    const std::uint64_t aStart = alignDown(off, kSectorBytes);
    const std::uint64_t aEnd = alignUp(off + n, kSectorBytes);
    const std::uint32_t len = static_cast<std::uint32_t>(aEnd - aStart);
    const std::size_t slot = fi->slot;
    sim::panicIf(len > uq(tid, slot).dmaBuf.size(),
                 "request exceeds DMA buffer");

    directReads_++;
    const Time submitCost = kernel_.cpu().scaled(c.userlibSubmitNs);
    kernel_.eq().after(submitCost, [this, tid, fd, buf, off, n, aStart,
                                    len, slot, start, trace,
                                    cb = std::move(cb)]() {
        FileInfo *fi = info(fd);
        if (!fi) {
            cb(kern::errOf(fs::FsStatus::Inval), kern::IoTrace{});
            return;
        }
        ssd::Command cmd;
        cmd.op = ssd::Op::Read;
        cmd.addr = fi->vba + aStart;
        cmd.addrIsVba = true;
        cmd.len = len;
        cmd.dmaIova = uq(tid, slot).dmaIova;
        cmd.useIova = true;
        cmd.trace = trace;
        const Time tSubmit = kernel_.eq().now();
        submitWithRetry(tid, slot, cmd,
                        [this, tid, fd, buf, off, n, aStart, slot,
                         start, tSubmit, trace, cb = std::move(cb)](
                            const ssd::Completion &comp) {
            if (comp.status != ssd::Status::Success) {
                handleFault(
                    fd,
                    [this, tid, fd, buf, off, trace, cb]() {
                        directRead(tid, fd, buf, off, cb, trace);
                    },
                    [this, fd, buf, off, trace, cb]() {
                        kernel_.sysPread(proc_, fd, buf, off, cb, trace);
                    },
                    trace);
                return;
            }
            // Copy from the DMA buffer into the user buffer (the main
            // user-side cost, Fig. 7).
            const kern::CostModel &c = kernel_.costs();
            const Time post = kernel_.cpu().scaled(c.userlibCompleteNs
                                                   + c.copyCost(n));
            std::memcpy(buf.data(),
                        uq(tid, slot).dmaBuf.data() + (off - aStart), n);
            kernel_.eq().after(post, [this, fd, n, start, tSubmit, comp,
                                      cb = std::move(cb)]() {
                FileInfo *fi2 = info(fd);
                if (fi2) {
                    // touch() is deferred to close/fsync (Section 4.4);
                    // nothing to do per-op.
                }
                kern::IoTrace tr;
                const Time total = kernel_.eq().now() - start;
                tr.translateNs = comp.translateNs;
                tr.deviceNs = comp.completeTime - tSubmit
                              - comp.translateNs;
                tr.userNs = total - tr.deviceNs - tr.translateNs;
                cb(static_cast<long long>(n), tr);
            });
        });
    });
}

void
UserLib::directOverwrite(Tid tid, int fd,
                         std::span<const std::uint8_t> buf,
                         std::uint64_t off, kern::IoCb cb,
                         obs::TraceId trace)
{
    FileInfo *fi = info(fd);
    const Time start = kernel_.eq().now();
    const std::uint64_t n = buf.size();
    const kern::CostModel &c = kernel_.costs();
    const std::size_t slot = fi->slot;
    UserQueues &q = uq(tid, slot);
    sim::panicIf(n > q.dmaBuf.size(), "request exceeds DMA buffer");

    directWrites_++;
    // Copy user data into the pinned DMA buffer, then submit.
    const Time submitCost
        = kernel_.cpu().scaled(c.userlibSubmitNs + c.copyCost(n));
    std::memcpy(q.dmaBuf.data(), buf.data(), n);
    kernel_.eq().after(submitCost, [this, tid, fd, buf, off, n, slot,
                                    start, trace, cb = std::move(cb)]() {
        FileInfo *fi = info(fd);
        if (!fi) {
            cb(kern::errOf(fs::FsStatus::Inval), kern::IoTrace{});
            return;
        }
        ssd::Command cmd;
        cmd.op = ssd::Op::Write;
        cmd.addr = fi->vba + off;
        cmd.addrIsVba = true;
        cmd.len = static_cast<std::uint32_t>(n);
        cmd.dmaIova = uq(tid, slot).dmaIova;
        cmd.useIova = true;
        cmd.trace = trace;
        const Time tSubmit = kernel_.eq().now();
        submitWithRetry(tid, slot, cmd,
                        [this, tid, fd, buf, off, n, start, tSubmit,
                         trace, cb = std::move(cb)](
                            const ssd::Completion &comp) {
            if (comp.status != ssd::Status::Success) {
                handleFault(
                    fd,
                    [this, tid, fd, buf, off, trace, cb]() {
                        directOverwrite(tid, fd, buf, off, cb, trace);
                    },
                    [this, fd, buf, off, trace, cb]() {
                        kernel_.sysPwrite(proc_, fd, buf, off, cb, trace);
                    },
                    trace);
                return;
            }
            const Time post
                = kernel_.cpu().scaled(kernel_.costs().userlibCompleteNs);
            kernel_.eq().after(post, [this, n, start, tSubmit, comp,
                                      cb = std::move(cb)]() {
                kern::IoTrace tr;
                const Time total = kernel_.eq().now() - start;
                // Writes overlap translation with data-in (Section 4.3).
                tr.translateNs = 0;
                tr.deviceNs = comp.completeTime - tSubmit;
                tr.userNs = total - tr.deviceNs;
                cb(static_cast<long long>(n), tr);
            });
        });
    });
}

void
UserLib::partialWrite(Tid tid, int fd, std::span<const std::uint8_t> buf,
                      std::uint64_t off, kern::IoCb cb, obs::TraceId trace)
{
    FileInfo *fi = info(fd);
    const std::uint64_t firstSec = off / kSectorBytes;
    const std::uint64_t lastSec = (off + buf.size() - 1) / kSectorBytes;

    // Serialize overlapping partial writes (Section 4.5.1).
    for (std::uint64_t s = firstSec; s <= lastSec; s++) {
        if (fi->inflightSectors.count(s)) {
            partialSerialized_++;
            FileInfo::PendingPartial pw;
            pw.tid = tid;
            pw.fd = fd;
            pw.data.assign(buf.begin(), buf.end());
            pw.off = off;
            pw.cb = std::move(cb);
            pw.trace = trace;
            fi->pendingPartials.push_back(std::move(pw));
            return;
        }
    }
    for (std::uint64_t s = firstSec; s <= lastSec; s++)
        fi->inflightSectors.insert(s);

    // Read-modify-write of the aligned sector range.
    const std::uint64_t aStart = firstSec * kSectorBytes;
    const std::uint64_t aEnd = (lastSec + 1) * kSectorBytes;
    const std::uint32_t len = static_cast<std::uint32_t>(aEnd - aStart);
    const std::size_t slot = fi->slot;
    sim::panicIf(len > uq(tid, slot).dmaBuf.size(),
                 "RMW exceeds DMA buffer");

    auto data = std::make_shared<std::vector<std::uint8_t>>(buf.begin(),
                                                            buf.end());
    // finish keeps `data` alive: the kernel-fallback paths hand
    // sysPwrite a span into it that is used asynchronously.
    auto finish = [this, fd, firstSec, lastSec, data,
                   cb](long long result, kern::IoTrace tr) {
        FileInfo *fi2 = info(fd);
        if (fi2) {
            for (std::uint64_t s = firstSec; s <= lastSec; s++)
                fi2->inflightSectors.erase(s);
        }
        cb(result, tr);
        drainPendingPartials(fd);
    };

    const Time start = kernel_.eq().now();
    const Time submitCost
        = kernel_.cpu().scaled(kernel_.costs().userlibSubmitNs);
    directWrites_++;
    kernel_.eq().after(submitCost, [this, tid, fd, data, off, aStart, len,
                                    slot, start, trace, finish]() {
        FileInfo *fi2 = info(fd);
        if (!fi2 || !fi2->direct) {
            // Revoked meanwhile: fall back through the kernel.
            kernel_.sysPwrite(
                proc_, fd,
                std::span<const std::uint8_t>(data->data(), data->size()),
                off, finish, trace);
            return;
        }
        ssd::Command rd;
        rd.op = ssd::Op::Read;
        rd.addr = fi2->vba + aStart;
        rd.addrIsVba = true;
        rd.len = len;
        rd.dmaIova = uq(tid, slot).dmaIova;
        rd.useIova = true;
        rd.trace = trace;
        submitWithRetry(tid, slot, rd,
                        [this, tid, fd, data, off, aStart, len, slot,
                         start, trace,
                         finish](const ssd::Completion &comp) {
            if (comp.status != ssd::Status::Success) {
                handleFault(
                    fd,
                    [this, fd, data, off, start, trace, finish]() {
                        // Retry whole RMW from scratch via the kernel
                        // path so serialization state stays sound.
                        (void)start;
                        kernel_.sysPwrite(
                            proc_, fd,
                            std::span<const std::uint8_t>(data->data(),
                                                          data->size()),
                            off, finish, trace);
                    },
                    [this, fd, data, off, trace, finish]() {
                        kernel_.sysPwrite(
                            proc_, fd,
                            std::span<const std::uint8_t>(data->data(),
                                                          data->size()),
                            off, finish, trace);
                    },
                    trace);
                return;
            }
            FileInfo *fi3 = info(fd);
            if (!fi3) {
                finish(kern::errOf(fs::FsStatus::Inval), kern::IoTrace{});
                return;
            }
            // Modify the staged sectors with the user bytes.
            std::memcpy(uq(tid, slot).dmaBuf.data() + (off - aStart),
                        data->data(), data->size());
            const Time modCost = kernel_.cpu().scaled(
                kernel_.costs().copyCost(data->size()));
            kernel_.eq().after(modCost, [this, tid, fd, data, off, aStart,
                                         len, slot, start, trace,
                                         finish]() {
                FileInfo *fi4 = info(fd);
                if (!fi4) {
                    finish(kern::errOf(fs::FsStatus::Inval),
                           kern::IoTrace{});
                    return;
                }
                ssd::Command wr;
                wr.op = ssd::Op::Write;
                wr.addr = fi4->vba + aStart;
                wr.addrIsVba = true;
                wr.len = len;
                wr.dmaIova = uq(tid, slot).dmaIova;
                wr.useIova = true;
                wr.trace = trace;
                submitWithRetry(tid, slot, wr,
                                [this, data, start, finish](
                                    const ssd::Completion &c2) {
                    kern::IoTrace tr;
                    tr.userNs = kernel_.costs().userlibCompleteNs;
                    tr.deviceNs = kernel_.eq().now() - start;
                    finish(c2.status == ssd::Status::Success
                               ? static_cast<long long>(data->size())
                               : devErrno(c2.status),
                           tr);
                });
            });
        });
    });
}

void
UserLib::drainPendingPartials(int fd)
{
    FileInfo *fi = info(fd);
    if (!fi || fi->pendingPartials.empty())
        return;
    // Re-dispatch the first pending write whose sectors are now free.
    for (auto it = fi->pendingPartials.begin();
         it != fi->pendingPartials.end(); ++it) {
        const std::uint64_t firstSec = it->off / kSectorBytes;
        const std::uint64_t lastSec
            = (it->off + it->data.size() - 1) / kSectorBytes;
        bool blocked = false;
        for (std::uint64_t s = firstSec; s <= lastSec; s++) {
            if (fi->inflightSectors.count(s)) {
                blocked = true;
                break;
            }
        }
        if (blocked)
            continue;
        FileInfo::PendingPartial pw = std::move(*it);
        fi->pendingPartials.erase(it);
        auto data = std::make_shared<std::vector<std::uint8_t>>(
            std::move(pw.data));
        pwriteResume(
            pw.tid, pw.fd,
            std::span<const std::uint8_t>(data->data(), data->size()),
            pw.off,
            [data, cb = std::move(pw.cb)](long long n, kern::IoTrace tr) {
                cb(n, tr);
            },
            pw.trace);
        return;
    }
}

void
UserLib::appendWrite(Tid tid, int fd, std::span<const std::uint8_t> buf,
                     std::uint64_t off, kern::IoCb cb, obs::TraceId trace)
{
    FileInfo *fi = info(fd);
    appendsRouted_++;

    if (cfg_.optimizedAppend) {
        // Section 5.1: pre-allocate with fallocate(), then issue the
        // append as a direct overwrite into the pre-allocated blocks.
        if (off + buf.size() <= fi->preallocEnd) {
            fi->size = std::max(fi->size, off + buf.size());
            if ((off % kSectorBytes) != 0
                || (buf.size() % kSectorBytes) != 0)
                partialWrite(tid, fd, buf, off, std::move(cb), trace);
            else
                directOverwrite(tid, fd, buf, off, std::move(cb), trace);
            return;
        }
        const std::uint64_t chunk = std::max<std::uint64_t>(
            cfg_.appendPreallocBytes, buf.size());
        kernel_.sysFallocate(
            proc_, fd, fi->preallocEnd, chunk,
            [this, tid, fd, buf, off, chunk, trace,
             cb = std::move(cb)](int rc) {
                FileInfo *fi2 = info(fd);
                if (rc < 0 || !fi2) {
                    cb(rc, kern::IoTrace{});
                    return;
                }
                fi2->preallocEnd += chunk;
                // fallocate extended the inode size; keep padding
                // invisible by tracking the logical size locally.
                appendWrite(tid, fd, buf, off, cb, trace);
            });
        return;
    }

    // Default: route the append through the kernel (Table 3); the kernel
    // allocates blocks, attaches new FTEs and writes unbuffered.
    fs::Inode *node = kernel_.vfs().fs().inode(fi->ino);
    sim::panicIf(node == nullptr, "append on dead inode");
    kernel_.appendPath(
        proc_, *node, buf, off,
        [this, fd, cb = std::move(cb)](long long n, kern::IoTrace tr) {
            FileInfo *fi2 = info(fd);
            if (fi2 && n > 0) {
                const fs::Inode *node2
                    = kernel_.vfs().fs().inode(fi2->ino);
                if (node2)
                    fi2->size = node2->size;
                fi2->preallocEnd = std::max(fi2->preallocEnd, fi2->size);
            }
            cb(n, tr);
        },
        trace);
}

void
UserLib::fsync(Tid tid, int fd, kern::IntCb cb)
{
    FileInfo *fi = info(fd);
    if (!fi) {
        kernel_.eq().after(kernel_.costs().userlibSubmitNs,
                           [cb = std::move(cb)]() {
                               cb(kern::errOf(fs::FsStatus::Inval));
                           });
        return;
    }
    if (!fi->direct) {
        kernel_.sysFsync(proc_, fd, std::move(cb));
        return;
    }
    // Drain non-blocking writes, flush this thread's queue (NVMe
    // flush), then forward to the kernel for the metadata flush
    // (Table 3 / Section 5.1).
    const std::size_t slot = fi->slot;
    drainPendingWrites(fd, [this, tid, fd, slot, cb = std::move(cb)]() {
        ssd::Command cmd;
        cmd.op = ssd::Op::Flush;
        cmd.addrIsVba = false;
        submitWithRetry(tid, slot, cmd,
                        [this, fd, cb](const ssd::Completion &) {
            kernel_.sysFsync(proc_, fd, cb);
        });
    });
}

void
UserLib::fallocate(int fd, std::uint64_t off, std::uint64_t len,
                   kern::IntCb cb)
{
    kernel_.sysFallocate(proc_, fd, off, len,
                         [this, fd, cb = std::move(cb)](int rc) {
                             FileInfo *fi = info(fd);
                             if (fi && rc == 0) {
                                 const fs::Inode *node
                                     = kernel_.vfs().fs().inode(fi->ino);
                                 if (node) {
                                     fi->size = node->size;
                                     fi->preallocEnd = std::max(
                                         fi->preallocEnd, fi->size);
                                 }
                             }
                             cb(rc);
                         });
}

void
UserLib::ftruncate(int fd, std::uint64_t size, kern::IntCb cb)
{
    kernel_.sysFtruncate(proc_, fd, size,
                         [this, fd, size, cb = std::move(cb)](int rc) {
                             FileInfo *fi = info(fd);
                             if (fi && rc == 0) {
                                 fi->size = size;
                                 fi->preallocEnd = std::min(
                                     fi->preallocEnd, size);
                             }
                             cb(rc);
                         });
}

} // namespace bpd::bypassd
