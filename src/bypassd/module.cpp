#include "bypassd/module.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace bpd::bypassd {

namespace {

std::uint64_t
roundUpPmd(std::uint64_t bytes)
{
    return (bytes + mem::kPmdSpan - 1) & ~(mem::kPmdSpan - 1);
}

} // namespace

BypassdModule::BypassdModule(kern::Kernel &kernel)
    : kernel_(kernel)
{
    kernel_.setBypassdHooks(this);
}

BypassdModule::~BypassdModule()
{
    kernel_.setBypassdHooks(nullptr);
}

void
BypassdModule::setTracer(obs::Tracer *t)
{
    trace_ = t;
    if (trace_)
        obsTrack_ = trace_->track("bypassd");
}

FileTableCache *
BypassdModule::cacheOf(fs::Inode &ino)
{
    return static_cast<FileTableCache *>(ino.fileTable.get());
}

iommu::Iommu &
BypassdModule::homeIommu(InodeNum ino)
{
    auto it = cacheHome_.find(ino);
    return kernel_.slotIommu(it == cacheHome_.end() ? 0 : it->second);
}

std::size_t
BypassdModule::homeSlotOf(const fs::Inode &ino) const
{
    if (homeSlot_)
        return homeSlot_(ino);
    // Default: derive from the first extent's physical block. Placement
    // guarantees every extent of an inode lives on one slot, so the
    // first is representative; extentless files go to slot 0.
    const auto &exts = ino.extents.extents();
    if (exts.empty())
        return 0;
    return kernel_.slotOf(exts.front().pblk * kBlockBytes);
}

FileTableCache *
BypassdModule::ensureCache(fs::Inode &ino, FmapResult *res)
{
    if (!ino.fileTable) {
        // Cold fmap: build the shared file tables from the extent tree
        // (Section 4.1). Cost: per-FTE writes plus extent walks. FTEs
        // carry the home device's DevID and slot-local block addresses.
        const std::size_t slot = homeSlotOf(ino);
        auto cache = std::make_shared<FileTableCache>(
            kernel_.frames(), kernel_.slotDevice(slot).devId(),
            kernel_.slotBase(slot) / kBlockBytes);
        FileTableCache::BuildStats stats
            = cache->buildFrom(ino.extents);
        cacheHome_[ino.ino] = slot;
        const kern::CostModel &c = kernel_.costs();
        res->cost += stats.ftesWritten * c.fmapBuildPerFteNs
                     + stats.extentsWalked * c.fmapExtentLookupNs;
        res->cold = true;
        coldFmaps_++;
        ino.fileTable = std::move(cache);
    } else {
        warmFmaps_++;
    }
    return cacheOf(ino);
}

FmapResult
BypassdModule::fmap(kern::Process &p, InodeNum inoNum, bool writable)
{
    FmapResult res;
    res.cost = kernel_.costs().fmapSyscallNs;

    fs::Inode *ino = kernel_.vfs().fs().inode(inoNum);
    if (!ino || ino->isDir()) {
        rejectedFmaps_++;
        if (acct_)
            acct_->of(p.pasid()).bypassdRejectedFmaps++;
        if (trace_ && trace_->wants(obs::Level::Layers))
            trace_->instant(obsTrack_, "bypassd.fmap_rejected", 0,
                            {{"ino", static_cast<std::int64_t>(inoNum)}});
        return res;
    }

    // A valid VBA must imply kernel-approved access (Section 5.3): the
    // caller needs an open descriptor for this inode, and write mappings
    // require a write-mode open.
    bool hasOpen = false;
    bool mayWrite = false;
    for (const auto &[fd, of] : p.fds()) {
        if (of.ino == inoNum) {
            hasOpen = true;
            if (of.flags & fs::kOpenWrite)
                mayWrite = true;
        }
    }
    if (!hasOpen) {
        rejectedFmaps_++;
        if (acct_)
            acct_->of(p.pasid()).bypassdRejectedFmaps++;
        if (trace_ && trace_->wants(obs::Level::Layers))
            trace_->instant(obsTrack_, "bypassd.fmap_rejected", 0,
                            {{"ino", static_cast<std::int64_t>(inoNum)}});
        return res;
    }
    writable = writable && mayWrite;

    // Stale revocation state clears once every opener is gone.
    if (revoked_.count(inoNum) && ino->bypassdOpeners.empty()
        && ino->kernelOpens == 0) {
        revoked_.erase(inoNum);
        ino->metadataMultiWriter = false;
        ino->lastMetadataWriter = 0;
    }

    // Eligibility (Sections 3.6, 4.5.2): reject when the file is open
    // through the kernel interface, when access was revoked, or when
    // multiple processes have been changing its metadata.
    if (ino->kernelOpens > 0 || revoked_.count(inoNum)
        || ino->metadataMultiWriter) {
        rejectedFmaps_++;
        if (acct_)
            acct_->of(p.pasid()).bypassdRejectedFmaps++;
        if (trace_ && trace_->wants(obs::Level::Layers))
            trace_->instant(obsTrack_, "bypassd.fmap_rejected", 0,
                            {{"ino", static_cast<std::int64_t>(inoNum)}});
        return res;
    }

    // Multi-device fleet: a file homed on an unattached or evicted
    // device gets no VBA — the caller falls back to the kernel
    // interface, where I/O to the dead device fails with ENODEV.
    const std::size_t home = homeSlotOf(*ino);
    if (home >= kernel_.slotCount()
        || kernel_.slotDevice(home).evicted()) {
        rejectedFmaps_++;
        if (acct_)
            acct_->of(p.pasid()).bypassdRejectedFmaps++;
        if (trace_ && trace_->wants(obs::Level::Layers))
            trace_->instant(obsTrack_, "bypassd.fmap_rejected", 0,
                            {{"ino", static_cast<std::int64_t>(inoNum)},
                             {"slot", static_cast<std::int64_t>(home)}});
        return res;
    }

    FileTableCache *cache = ensureCache(*ino, &res);
    res.slot = home;
    res.dev = cache->devId();
    // ensureCache bumped exactly one of coldFmaps_/warmFmaps_; it has
    // no Process, so the per-tenant twin lands here.
    if (acct_) {
        obs::TenantCounters &tc = acct_->of(p.pasid());
        if (res.cold)
            tc.bypassdColdFmaps++;
        else
            tc.bypassdWarmFmaps++;
    }

    // A re-fmap retires any quarantined region from a prior revocation:
    // the caller is about to replace its stale VBA.
    releaseQuarantine(p, inoNum);

    // Idempotent re-fmap by the same process.
    auto it = cache->attachments.find(p.pid());
    if (it != cache->attachments.end()) {
        res.vba = it->second.vba;
        res.mappedBytes = cache->mappedBlocks() * kBlockBytes;
        emitFmap(res, inoNum);
        return res;
    }

    // Reserve a PMD-aligned VBA region with growth headroom so appends
    // can extend the mapping in place (Section 4.1).
    const std::uint64_t regionBytes
        = roundUpPmd(std::max<std::uint64_t>(ino->size, 1))
          + kRegionHeadroom;
    const Vaddr vba = p.aspace().reserve(regionBytes, mem::kPmdSpan);
    if (vba == 0) {
        rejectedFmaps_++;
        if (acct_)
            acct_->of(p.pasid()).bypassdRejectedFmaps++;
        if (trace_ && trace_->wants(obs::Level::Layers))
            trace_->instant(obsTrack_, "bypassd.fmap_rejected", 0,
                            {{"ino", static_cast<std::int64_t>(inoNum)}});
        return res;
    }

    // Warm attach: link the shared leaf frames at PMD entries; the
    // per-open permission is set on the private path (Fig. 4).
    unsigned writes = 0;
    const auto &leaves = cache->leafFrames();
    for (std::size_t i = 0; i < leaves.size(); i++) {
        writes += p.aspace().pageTable().attachTable(
            vba + i * mem::kPmdSpan, 1, leaves[i], writable);
    }
    res.cost += static_cast<Time>(writes)
                * kernel_.costs().fmapAttachPerPmdNs;

    cache->attachments[p.pid()] = FileTableCache::Attachment{
        vba, regionBytes, writable, leaves.size()};
    ino->bypassdOpeners.insert(p.pid());

    res.vba = vba;
    res.mappedBytes = cache->mappedBlocks() * kBlockBytes;
    emitFmap(res, inoNum);
    return res;
}

void
BypassdModule::emitFmap(const FmapResult &res, InodeNum ino)
{
    if (!trace_ || !trace_->wants(obs::Level::Layers))
        return;
    // The caller charges res.cost after we return; model the fmap as a
    // span covering that upcoming work.
    const Time now = kernel_.eq().now();
    trace_->span(obsTrack_,
                 res.cold ? "bypassd.fmap_cold" : "bypassd.fmap_warm", 0,
                 now, now + res.cost,
                 {{"ino", static_cast<std::int64_t>(ino)},
                  {"bytes", static_cast<std::int64_t>(res.mappedBytes)}});
}

void
BypassdModule::detachOne(kern::Process &p, fs::Inode &ino,
                         FileTableCache &cache, bool quarantineVa)
{
    auto it = cache.attachments.find(p.pid());
    if (it == cache.attachments.end())
        return;
    const FileTableCache::Attachment &att = it->second;
    for (std::uint64_t i = 0; i < att.attachedLeaves; i++)
        p.aspace().pageTable().detachTable(att.vba + i * mem::kPmdSpan, 1);
    homeIommu(ino.ino).invalidateRange(p.pasid(), att.vba,
                                       att.regionBytes);
    if (quarantineVa) {
        quarantined_[{p.pid(), ino.ino}]
            = QuarantinedRegion{att.vba, att.regionBytes};
    } else {
        p.aspace().release(att.vba, att.regionBytes);
    }
    cache.attachments.erase(it);
    ino.bypassdOpeners.erase(p.pid());
}

void
BypassdModule::releaseQuarantine(kern::Process &p, InodeNum ino)
{
    auto it = quarantined_.find({p.pid(), ino});
    if (it == quarantined_.end())
        return;
    p.aspace().release(it->second.vba, it->second.bytes);
    quarantined_.erase(it);
}

void
BypassdModule::funmap(kern::Process &p, InodeNum inoNum)
{
    fs::Inode *ino = kernel_.vfs().fs().inode(inoNum);
    if (!ino)
        return;
    FileTableCache *cache = cacheOf(*ino);
    if (cache)
        detachOne(p, *ino, *cache, /*quarantineVa=*/false);
    releaseQuarantine(p, inoNum);
    if (revoked_.count(inoNum) && ino->bypassdOpeners.empty()
        && ino->kernelOpens == 0) {
        revoked_.erase(inoNum);
        ino->metadataMultiWriter = false;
        ino->lastMetadataWriter = 0;
    }
}

void
BypassdModule::revoke(fs::Inode &ino)
{
    FileTableCache *cache = cacheOf(ino);
    if (!cache || cache->attachments.empty()) {
        revoked_.insert(ino.ino);
        return;
    }
    revocations_++;
    if (trace_ && trace_->wants(obs::Level::Requests))
        trace_->instant(obsTrack_, "bypassd.revocation", 0,
                        {{"ino", static_cast<std::int64_t>(ino.ino)}});
    // Detach every process; their next direct I/O faults in the IOMMU,
    // UserLib re-fmap()s, gets VBA 0 and falls back (Section 3.6).
    std::vector<Pid> pids;
    for (const auto &[pid, att] : cache->attachments)
        pids.push_back(pid);
    for (Pid pid : pids) {
        kern::Process *p = kernel_.process(pid);
        if (p) {
            detachOne(*p, ino, *cache, /*quarantineVa=*/true);
            revokedVictims_++;
            if (acct_)
                acct_->of(p->pasid()).bypassdRevokedVictims++;
        } else {
            cache->attachments.erase(pid);
        }
    }
    revoked_.insert(ino.ino);
}

std::size_t
BypassdModule::revokeSlot(std::size_t slot)
{
    std::size_t n = 0;
    // std::map order => deterministic revocation sequence for digests.
    for (const auto &[inoNum, home] : cacheHome_) {
        if (home != slot)
            continue;
        fs::Inode *ino = kernel_.vfs().fs().inode(inoNum);
        if (!ino || !ino->fileTable)
            continue;
        revoke(*ino);
        n++;
    }
    if (trace_ && trace_->wants(obs::Level::Requests))
        trace_->instant(obsTrack_, "bypassd.slot_revoked", 0,
                        {{"slot", static_cast<std::int64_t>(slot)},
                         {"inodes", static_cast<std::int64_t>(n)}});
    return n;
}

void
BypassdModule::onKernelOpen(fs::Inode &ino)
{
    // A file mapped for userspace access got opened through the kernel
    // interface: concurrent access through both is not supported, so
    // revoke direct access (Section 4.5.2).
    if (!ino.bypassdOpeners.empty())
        revoke(ino);
}

void
BypassdModule::onMetadataChange(fs::Inode &ino, Pid pid)
{
    if (ino.lastMetadataWriter != 0 && ino.lastMetadataWriter != pid)
        ino.metadataMultiWriter = true;
    ino.lastMetadataWriter = pid;
    if (ino.metadataMultiWriter && !ino.bypassdOpeners.empty())
        revoke(ino);
}

void
BypassdModule::onExtentsAdded(fs::Inode &ino,
                              const std::vector<fs::Extent> &added)
{
    FileTableCache *cache = cacheOf(ino);
    if (!cache)
        return;
    const std::size_t oldLeaves = cache->leafFrames().size();
    cache->extend(added);
    const auto &leaves = cache->leafFrames();
    if (leaves.size() == oldLeaves)
        return; // growth stayed within existing shared leaves

    // New leaf frames must be linked into every attached process, inside
    // its reserved region; processes whose region is exhausted lose
    // direct access (fallback, Section 3.6).
    std::vector<Pid> toRevoke;
    for (auto &[pid, att] : cache->attachments) {
        if (leaves.size() * mem::kPmdSpan > att.regionBytes) {
            toRevoke.push_back(pid);
            continue;
        }
        kern::Process *p = kernel_.process(pid);
        if (!p)
            continue;
        for (std::size_t i = att.attachedLeaves; i < leaves.size(); i++) {
            p->aspace().pageTable().attachTable(
                att.vba + i * mem::kPmdSpan, 1, leaves[i], att.writable);
        }
        att.attachedLeaves = leaves.size();
    }
    if (!toRevoke.empty())
        revoke(ino);
}

void
BypassdModule::onTruncated(fs::Inode &ino)
{
    FileTableCache *cache = cacheOf(ino);
    if (!cache)
        return;
    const std::uint64_t newBlocks = ino.extents.logicalEnd();
    const std::uint64_t keepLeaves = FileTableCache::leavesFor(newBlocks);
    for (auto &[pid, att] : cache->attachments) {
        kern::Process *p = kernel_.process(pid);
        if (!p)
            continue;
        for (std::uint64_t i = keepLeaves; i < att.attachedLeaves; i++) {
            p->aspace().pageTable().detachTable(
                att.vba + i * mem::kPmdSpan, 1);
        }
        att.attachedLeaves = std::min(att.attachedLeaves, keepLeaves);
        homeIommu(ino.ino).invalidateRange(p->pasid(), att.vba,
                                           att.regionBytes);
    }
    cache->shrinkTo(newBlocks);
}

std::unique_ptr<UserQueues>
BypassdModule::createUserQueues(kern::Process &p, std::uint32_t depth,
                                std::uint64_t dmaBytes, std::size_t slot)
{
    auto uq = std::make_unique<UserQueues>();
    uq->slot = slot;
    uq->qp = kernel_.slotDevice(slot).createQueuePair(p.pasid(), depth,
                                                      /*vbaMode=*/true);
    if (!uq->qp)
        return nullptr;
    uq->dispatcher = std::make_unique<ssd::CommandDispatcher>(*uq->qp);
    uq->dmaBuf.assign(dmaBytes, 0);
    uq->dmaIova = p.aspace().reserve(dmaBytes, kBlockBytes);
    // The DMA buffer is registered with the home device's IOMMU context;
    // that device resolves (pasid, iova) through it.
    kernel_.slotIommu(slot).mapDma(
        p.pasid(), uq->dmaIova,
        std::span<std::uint8_t>(uq->dmaBuf.data(), uq->dmaBuf.size()),
        /*writable=*/true);
    // One-time setup: queue registration + buffer pinning. Charged once
    // at initialization, like SPDK's hugepage setup (Section 3.3).
    uq->setupCost = 20 * kUs;
    return uq;
}

void
BypassdModule::destroyUserQueues(kern::Process &p, UserQueues &uq)
{
    if (!uq.qp)
        return;
    kernel_.slotIommu(uq.slot).unmapDma(p.pasid(), uq.dmaIova);
    p.aspace().release(uq.dmaIova, uq.dmaBuf.size());
    kernel_.slotDevice(uq.slot).destroyQueuePair(uq.qp->qid());
    uq.qp = nullptr;
}

} // namespace bpd::bypassd
