/**
 * @file
 * Per-tenant QoS: token-bucket rate caps enforced at every submission
 * site, plus the weight table the SSD model's weighted-fair SQ
 * arbitration reads (SPDK bdev-QoS shape: enforce at submission,
 * arbitrate at dispatch).
 *
 * A tenant may carry an IOPS cap, a bytes/sec cap, both, or neither
 * (weight-only entries shape dispatch without rate limiting). Buckets
 * refill in VIRTUAL time with exact integer arithmetic — a fractional
 * remainder carries the sub-token credit, so refill is bit-exact and
 * independent of how often the bucket is inspected. Over-limit
 * submissions are never dropped: callers park them on the tenant's
 * FIFO and the registry drains in order as tokens accrue, scheduling
 * one deterministic drain event at the computed ready time.
 *
 * Wiring follows the obs:: null-pointer discipline: every enforcement
 * site guards on a raw `qos::Registry *` (null = disabled, one branch,
 * zero allocations — asserted by test_obs_alloc). A registry with no
 * entry for a tenant admits it unconditionally without touching any
 * state, so enabling QoS with no limits is digest-neutral.
 *
 * Ordering invariant: once a tenant has a parked backlog, every new
 * submission parks behind it (tryAcquire refuses even when tokens are
 * available), so per-tenant submission order is preserved end to end.
 */

#ifndef BPD_QOS_QOS_HPP
#define BPD_QOS_QOS_HPP

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/types.hpp"
#include "obs/tenant.hpp"
#include "sim/event_queue.hpp"

namespace bpd::qos {

/** Per-tenant policy. Zero rate = unlimited on that axis. */
struct TenantLimit
{
    std::uint64_t iopsLimit = 0;   //!< ops per second (0 = unlimited)
    std::uint64_t bytesPerSec = 0; //!< payload bytes/sec (0 = unlimited)
    /** Bucket depth in ops; 0 picks 1 ms worth (min 1). */
    std::uint64_t burstOps = 0;
    /** Bucket depth in bytes; 0 picks 1 ms worth (min 4096). */
    std::uint64_t burstBytes = 0;
    /** Weighted-fair SQ arbitration weight (commands per RR turn). */
    std::uint32_t weight = 1;
};

class Registry
{
  public:
    explicit Registry(sim::EventQueue &eq) : eq_(eq) {}
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Attribute throttle counters per tenant (null = totals only). */
    void setAccounting(obs::TenantAccounting *acct) { acct_ = acct; }

    /** Install or replace @p t's policy. Buckets start full. */
    void
    setLimit(TenantId t, const TenantLimit &lim)
    {
        State &s = states_[t];
        s.limit = lim;
        initBucket(s.ops, lim.iopsLimit,
                   lim.burstOps ? lim.burstOps
                                : std::max<std::uint64_t>(
                                      1, lim.iopsLimit / 1000));
        initBucket(s.bytes, lim.bytesPerSec,
                   lim.burstBytes ? lim.burstBytes
                                  : std::max<std::uint64_t>(
                                        4096, lim.bytesPerSec / 1000));
        s.lastRefill = eq_.now();
    }

    const TenantLimit *
    limit(TenantId t) const
    {
        const auto it = states_.find(t);
        return it == states_.end() ? nullptr : &it->second.limit;
    }

    /** Dispatch weight; unregistered tenants (and weight 0) count 1. */
    std::uint32_t
    weightOf(TenantId t) const
    {
        const auto it = states_.find(t);
        if (it == states_.end())
            return 1;
        return std::max<std::uint32_t>(1, it->second.limit.weight);
    }

    /**
     * Charge @p ops / @p bytes against @p t's buckets at the current
     * virtual time. True = admitted (tokens charged, submit now).
     * False = over limit or behind a parked backlog: the caller must
     * park() the submission instead of issuing it. Unlimited tenants
     * are admitted without touching any state.
     */
    bool
    tryAcquire(TenantId t, std::uint64_t ops, std::uint64_t bytes)
    {
        const auto it = states_.find(t);
        if (it == states_.end())
            return true;
        State &s = it->second;
        if (!s.limit.iopsLimit && !s.limit.bytesPerSec)
            return true; // weight-only entry
        if (!s.parked.empty())
            return false; // FIFO: never overtake the backlog
        refill(s);
        if (!afford(s.ops, ops) || !afford(s.bytes, bytes))
            return false;
        charge(s.ops, ops);
        charge(s.bytes, bytes);
        s.admits++;
        admits_++;
        return true;
    }

    /**
     * Park an over-limit submission on @p t's FIFO. @p resume runs —
     * with the tokens already charged — when the bucket can afford it;
     * parked I/O is delayed, never dropped. One drain event per tenant
     * is armed at the deterministic ready time of the queue head.
     */
    void
    park(TenantId t, std::uint64_t ops, std::uint64_t bytes,
         std::function<void()> resume)
    {
        State &s = states_[t];
        s.parked.push_back(Parked{ops, bytes, std::move(resume)});
        s.throttles++;
        s.throttledBytes += bytes;
        throttles_++;
        throttledBytes_ += bytes;
        if (acct_) {
            obs::TenantCounters &c = acct_->of(t);
            c.qosThrottles++;
            c.qosThrottledBytes += bytes;
        }
        scheduleDrain(t, s);
    }

    /** @name Registry-wide totals (verifyTenantSums counterparts) */
    ///@{
    std::uint64_t throttles() const { return throttles_; }
    std::uint64_t throttledBytes() const { return throttledBytes_; }
    std::uint64_t admits() const { return admits_; }
    ///@}

    /** @name Per-tenant introspection (tests, benches) */
    ///@{
    std::uint64_t
    throttlesOf(TenantId t) const
    {
        const auto it = states_.find(t);
        return it == states_.end() ? 0 : it->second.throttles;
    }

    std::uint64_t
    parkedOf(TenantId t) const
    {
        const auto it = states_.find(t);
        return it == states_.end() ? 0 : it->second.parked.size();
    }
    ///@}

  private:
    /** One rate dimension. tokens is signed: an oversize request (need
     *  > burst) is admitted at full bucket and borrows, so it throttles
     *  instead of stalling forever. */
    struct Bucket
    {
        std::uint64_t rate = 0;  //!< units per second
        std::uint64_t burst = 0; //!< bucket depth
        std::int64_t tokens = 0;
        std::uint64_t frac = 0; //!< refill remainder, < 1e9 (ns scale)
    };

    struct Parked
    {
        std::uint64_t ops = 0;
        std::uint64_t bytes = 0;
        std::function<void()> fn;
    };

    struct State
    {
        TenantLimit limit;
        Bucket ops;
        Bucket bytes;
        Time lastRefill = 0;
        std::deque<Parked> parked;
        bool drainArmed = false;
        std::uint64_t throttles = 0;
        std::uint64_t throttledBytes = 0;
        std::uint64_t admits = 0;
    };

    static void
    initBucket(Bucket &b, std::uint64_t rate, std::uint64_t burst)
    {
        b.rate = rate;
        b.burst = burst;
        b.tokens = static_cast<std::int64_t>(burst); // start full
        b.frac = 0;
    }

    static constexpr std::uint64_t kNsPerSec = 1'000'000'000ull;

    /** Exact virtual-time refill: credit = rate * dt ns / 1e9, with the
     *  sub-token remainder carried in frac so no credit is ever lost to
     *  rounding (until the bucket clamps full, where excess is spilled —
     *  remainder included, or an idle tenant would bank a phantom
     *  token). */
    void
    refill(State &s)
    {
        const Time now = eq_.now();
        const Time dt = now - s.lastRefill;
        s.lastRefill = now;
        if (dt == 0)
            return;
        refillBucket(s.ops, dt);
        refillBucket(s.bytes, dt);
    }

    static void
    refillBucket(Bucket &b, Time dt)
    {
        if (!b.rate)
            return;
        const unsigned __int128 num
            = static_cast<unsigned __int128>(b.rate) * dt + b.frac;
        const unsigned __int128 add = num / kNsPerSec;
        b.frac = static_cast<std::uint64_t>(num % kNsPerSec);
        unsigned __int128 t
            = static_cast<unsigned __int128>(
                  static_cast<std::int64_t>(b.burst) - b.tokens);
        if (add >= t) { // clamps full: spill excess and remainder
            b.tokens = static_cast<std::int64_t>(b.burst);
            b.frac = 0;
        } else {
            b.tokens += static_cast<std::int64_t>(add);
        }
    }

    static bool
    afford(const Bucket &b, std::uint64_t need)
    {
        if (!b.rate || need == 0)
            return true;
        const std::uint64_t capped = std::min(need, b.burst);
        return b.tokens >= static_cast<std::int64_t>(capped);
    }

    static void
    charge(Bucket &b, std::uint64_t need)
    {
        if (b.rate)
            b.tokens -= static_cast<std::int64_t>(need);
    }

    /** Ns until afford(b, need) holds, assuming no other charge. */
    static Time
    readyDelay(const Bucket &b, std::uint64_t need)
    {
        if (!b.rate || need == 0)
            return 0;
        const auto capped = static_cast<std::int64_t>(
            std::min(need, b.burst));
        if (b.tokens >= capped)
            return 0;
        const unsigned __int128 deficitNum
            = static_cast<unsigned __int128>(capped - b.tokens)
                  * kNsPerSec
              - b.frac;
        return static_cast<Time>((deficitNum + b.rate - 1) / b.rate);
    }

    void
    scheduleDrain(TenantId t, State &s)
    {
        if (s.drainArmed || s.parked.empty())
            return;
        refill(s);
        const Parked &head = s.parked.front();
        const Time delay = std::max(readyDelay(s.ops, head.ops),
                                    readyDelay(s.bytes, head.bytes));
        s.drainArmed = true;
        eq_.after(std::max<Time>(delay, 1), [this, t] { drain(t); });
    }

    void
    drain(TenantId t)
    {
        const auto it = states_.find(t);
        if (it == states_.end())
            return;
        State &s = it->second;
        s.drainArmed = false;
        refill(s);
        while (!s.parked.empty() && afford(s.ops, s.parked.front().ops)
               && afford(s.bytes, s.parked.front().bytes)) {
            Parked p = std::move(s.parked.front());
            s.parked.pop_front();
            charge(s.ops, p.ops);
            charge(s.bytes, p.bytes);
            s.admits++;
            admits_++;
            drains_++;
            // May re-enter park()/tryAcquire for this tenant; the
            // backlog check in tryAcquire keeps FIFO order and the
            // drainArmed flag keeps at most one event outstanding.
            p.fn();
        }
        scheduleDrain(t, s);
    }

    sim::EventQueue &eq_;
    obs::TenantAccounting *acct_ = nullptr;
    std::map<TenantId, State> states_;
    std::uint64_t throttles_ = 0;
    std::uint64_t throttledBytes_ = 0;
    std::uint64_t admits_ = 0;
    std::uint64_t drains_ = 0;
};

} // namespace bpd::qos

#endif // BPD_QOS_QOS_HPP
