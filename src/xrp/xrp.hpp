/**
 * @file
 * XRP-like baseline [Zhong et al., OSDI'22]: user-defined storage
 * functions (BPF programs) run from a hook in the kernel NVMe driver.
 * A chained lookup (e.g. a B-tree traversal) enters the kernel once;
 * subsequent dependent I/Os are resubmitted directly from the driver,
 * skipping the VFS/file-system/block layers. XRP only helps when I/Os
 * chain back-to-back and the on-disk layout is fixed (Section 7).
 */

#ifndef BPD_XRP_XRP_HPP
#define BPD_XRP_XRP_HPP

#include <functional>
#include <optional>
#include <span>

#include "kern/kernel.hpp"

namespace bpd::xrp {

struct XrpCosts
{
    Time bpfExecNs = 300;     //!< verify + run the BPF program per hop
    Time resubmitNs = 220;    //!< driver-level resubmission (no stack)
};

/** One step of a chained lookup. */
struct Hop
{
    std::uint64_t off;
    std::uint32_t len;
};

/**
 * The BPF program: inspects a fetched block and either returns the next
 * hop or ends the chain. @p hopIdx counts from 0.
 */
using ChainFn = std::function<std::optional<Hop>(
    std::span<const std::uint8_t> block, unsigned hopIdx)>;

class XrpEngine
{
  public:
    explicit XrpEngine(kern::Kernel &k, XrpCosts costs = {})
        : k_(k), costs_(costs)
    {
    }

    /**
     * Run a chained lookup on @p fd starting at @p first.
     * @param cb Fires at completion with the hop count (or negative
     *           status) and the time attribution.
     */
    void lookup(kern::Process &p, int fd, Hop first, ChainFn chain,
                kern::IoCb cb);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hops() const { return hops_; }

  private:
    void doHop(fs::Inode &ino, Hop hop, unsigned hopIdx, ChainFn chain,
               Time start, kern::IoCb cb);

    kern::Kernel &k_;
    XrpCosts costs_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hops_ = 0;
};

} // namespace bpd::xrp

#endif // BPD_XRP_XRP_HPP
