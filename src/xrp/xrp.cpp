#include "xrp/xrp.hpp"

#include <memory>
#include <vector>

#include "sim/logging.hpp"

namespace bpd::xrp {

void
XrpEngine::lookup(kern::Process &p, int fd, Hop first, ChainFn chain,
                  kern::IoCb cb)
{
    kern::OpenFile *of = p.file(fd);
    if (!of || !(of->flags & fs::kOpenRead)
        || !(of->flags & fs::kOpenDirect)) {
        // XRP requires O_DIRECT (fixed on-disk layout, no page cache).
        k_.eq().after(k_.costs().userToKernelNs, [cb = std::move(cb)]() {
            cb(kern::errOf(fs::FsStatus::Inval), kern::IoTrace{});
        });
        return;
    }
    fs::Inode *ino = k_.vfs().fs().inode(of->ino);
    sim::panicIf(ino == nullptr, "XRP on dead inode");
    lookups_++;

    // One full kernel entry for the first I/O (switch + thin setup +
    // block layer + driver); later hops resubmit from the driver.
    const Time start = k_.eq().now();
    const kern::CostModel &c = k_.costs();
    const Time entry = k_.cpu().scaled(
        c.userToKernelNs + c.vfsCost(first.len) + c.blockLayerNs
        + c.nvmeDriverNs);
    k_.eq().after(entry, [this, ino, first, chain = std::move(chain),
                          start, cb = std::move(cb)]() mutable {
        doHop(*ino, first, 0, std::move(chain), start, std::move(cb));
    });
}

void
XrpEngine::doHop(fs::Inode &ino, Hop hop, unsigned hopIdx, ChainFn chain,
                 Time start, kern::IoCb cb)
{
    hops_++;
    // Clip at EOF.
    if (hop.off >= ino.size) {
        const Time exit = k_.cpu().scaled(k_.costs().kernelToUserNs);
        k_.eq().after(exit, [this, hopIdx, start, cb = std::move(cb)]() {
            kern::IoTrace tr;
            tr.kernelNs = k_.eq().now() - start;
            cb(static_cast<long long>(hopIdx), tr);
        });
        return;
    }
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(hop.len, ino.size - hop.off));

    std::vector<fs::Seg> segs;
    fs::FsStatus st = k_.vfs().fs().mapRange(ino, hop.off, len, &segs);
    if (st != fs::FsStatus::Ok) {
        const Time exit = k_.cpu().scaled(k_.costs().kernelToUserNs);
        k_.eq().after(exit, [st, cb = std::move(cb)]() {
            cb(kern::errOf(st), kern::IoTrace{});
        });
        return;
    }

    auto block = std::make_shared<std::vector<std::uint8_t>>(len, 0);
    k_.deviceIo(
        ssd::Op::Read, segs,
        std::span<std::uint8_t>(block->data(), block->size()),
        [this, &ino, block, hopIdx, chain = std::move(chain), start,
         cb = std::move(cb)](ssd::Status dst, Time devNs) mutable {
            (void)devNs;
            if (dst != ssd::Status::Success) {
                cb(kern::errOf(fs::FsStatus::Inval), kern::IoTrace{});
                return;
            }
            // Run the BPF program in the driver context.
            const Time bpf = k_.cpu().scaled(costs_.bpfExecNs);
            k_.eq().after(bpf, [this, &ino, block, hopIdx,
                                chain = std::move(chain), start,
                                cb = std::move(cb)]() mutable {
                std::optional<Hop> next = chain(
                    std::span<const std::uint8_t>(block->data(),
                                                  block->size()),
                    hopIdx);
                if (!next) {
                    const Time exit
                        = k_.cpu().scaled(k_.costs().kernelToUserNs);
                    k_.eq().after(exit, [this, hopIdx, start,
                                         cb = std::move(cb)]() {
                        kern::IoTrace tr;
                        tr.kernelNs = k_.eq().now() - start;
                        cb(static_cast<long long>(hopIdx) + 1, tr);
                    });
                    return;
                }
                // Driver-level resubmission: no VFS/block-layer costs.
                const Time resubmit
                    = k_.cpu().scaled(costs_.resubmitNs);
                k_.eq().after(resubmit, [this, &ino, next, hopIdx,
                                         chain = std::move(chain), start,
                                         cb = std::move(cb)]() mutable {
                    doHop(ino, *next, hopIdx + 1, std::move(chain),
                          start, std::move(cb));
                });
            });
        });
}

} // namespace bpd::xrp
