#include "mem/address_space.hpp"

#include "sim/logging.hpp"

namespace bpd::mem {

namespace {
// Userspace mapping area: 4 GiB .. 126 TiB.
constexpr Vaddr kVaBase = 0x1'0000'0000ull;
constexpr std::uint64_t kVaSize = 0x7e00'0000'0000ull;
} // namespace

VaAllocator::VaAllocator(Vaddr base, std::uint64_t size)
{
    // Address 0 is the failure sentinel of reserve(); never hand it out.
    sim::panicIf(base == 0, "VaAllocator base must be non-zero");
    free_[base] = size;
}

Vaddr
VaAllocator::reserve(std::uint64_t len, std::uint64_t align)
{
    sim::panicIf(len == 0, "reserve of zero bytes");
    sim::panicIf(align == 0 || (align & (align - 1)) != 0,
                 "alignment must be a power of two");
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        const Vaddr start = it->first;
        const std::uint64_t flen = it->second;
        const Vaddr aligned = (start + align - 1) & ~(align - 1);
        const std::uint64_t pad = aligned - start;
        if (flen < pad || flen - pad < len)
            continue;
        // Carve [aligned, aligned+len) out of [start, start+flen).
        free_.erase(it);
        if (pad > 0)
            free_[start] = pad;
        const std::uint64_t tail = flen - pad - len;
        if (tail > 0)
            free_[aligned + len] = tail;
        return aligned;
    }
    return 0;
}

void
VaAllocator::release(Vaddr va, std::uint64_t len)
{
    if (len == 0)
        return;
    auto [it, inserted] = free_.emplace(va, len);
    sim::panicIf(!inserted, "double release of VA range");
    // Coalesce with successor.
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
        it->second += next->second;
        free_.erase(next);
    }
    // Coalesce with predecessor.
    if (it != free_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_.erase(it);
        }
    }
}

std::uint64_t
VaAllocator::freeBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[va, len] : free_)
        total += len;
    return total;
}

AddressSpace::AddressSpace(FrameAllocator &fa, Pasid pasid)
    : pt_(fa), pasid_(pasid), va_(kVaBase, kVaSize)
{
}

Vaddr
AddressSpace::reserve(std::uint64_t len, std::uint64_t align)
{
    return va_.reserve(len, align);
}

void
AddressSpace::release(Vaddr va, std::uint64_t len)
{
    va_.release(va, len);
}

} // namespace bpd::mem
