/**
 * @file
 * Per-process address space: page table, PASID, and a virtual-address
 * region allocator used by fmap() to reserve PMD-aligned VBA regions and by
 * UserLib to place DMA buffers.
 */

#ifndef BPD_MEM_ADDRESS_SPACE_HPP
#define BPD_MEM_ADDRESS_SPACE_HPP

#include <cstdint>
#include <map>

#include "common/types.hpp"
#include "mem/page_table.hpp"

namespace bpd::mem {

/**
 * First-fit virtual-address range allocator with coalescing free list.
 */
class VaAllocator
{
  public:
    VaAllocator(Vaddr base, std::uint64_t size);

    /**
     * Reserve @p len bytes aligned to @p align.
     * @return Start address, or 0 on exhaustion.
     */
    Vaddr reserve(std::uint64_t len, std::uint64_t align);

    /** Return a previously reserved range. */
    void release(Vaddr va, std::uint64_t len);

    /** Bytes currently free. */
    std::uint64_t freeBytes() const;

    /** Number of free-list fragments (coalescing check). */
    std::size_t fragments() const { return free_.size(); }

  private:
    std::map<Vaddr, std::uint64_t> free_; // start -> len
};

/**
 * A simulated process address space.
 */
class AddressSpace
{
  public:
    AddressSpace(FrameAllocator &fa, Pasid pasid);

    PageTable &pageTable() { return pt_; }
    const PageTable &pageTable() const { return pt_; }
    Pasid pasid() const { return pasid_; }

    /** Reserve a VA region (fmap regions, DMA buffer IOVAs). */
    Vaddr reserve(std::uint64_t len, std::uint64_t align);

    /** Release a VA region. */
    void release(Vaddr va, std::uint64_t len);

  private:
    PageTable pt_;
    Pasid pasid_;
    VaAllocator va_;
};

} // namespace bpd::mem

#endif // BPD_MEM_ADDRESS_SPACE_HPP
