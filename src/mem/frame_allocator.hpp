/**
 * @file
 * Simulated physical frames backing page tables. Page-table walkers (host
 * MMU software walks and the IOMMU) read frames through this allocator,
 * so sharing a frame between two address spaces is a real pointer share,
 * exactly like sharing a physical page-table page.
 */

#ifndef BPD_MEM_FRAME_ALLOCATOR_HPP
#define BPD_MEM_FRAME_ALLOCATOR_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace bpd::mem {

/** Frame number; 0 is the null frame. */
using Frame = std::uint32_t;

constexpr Frame kNullFrame = 0;

/**
 * Allocator of 4 KiB page-table frames (512 x 64-bit entries each).
 */
class FrameAllocator
{
  public:
    FrameAllocator();
    FrameAllocator(const FrameAllocator &) = delete;
    FrameAllocator &operator=(const FrameAllocator &) = delete;

    /** Allocate a zeroed frame. */
    Frame alloc();

    /** Free a frame. Double frees panic. */
    void free(Frame f);

    /** Mutable view of a frame's 512 entries. */
    std::uint64_t *table(Frame f);

    /** Read-only view of a frame's 512 entries. */
    const std::uint64_t *table(Frame f) const;

    /** Number of live (allocated, unfreed) frames. */
    std::size_t live() const { return live_; }

    /** Total allocations ever performed. */
    std::uint64_t totalAllocs() const { return totalAllocs_; }

  private:
    using Table = std::array<std::uint64_t, kPte>;

    void checkLive(Frame f) const;

    std::vector<std::unique_ptr<Table>> frames_;
    std::vector<Frame> freeList_;
    std::vector<bool> liveMap_;
    std::size_t live_ = 0;
    std::uint64_t totalAllocs_ = 0;
};

} // namespace bpd::mem

#endif // BPD_MEM_FRAME_ALLOCATOR_HPP
