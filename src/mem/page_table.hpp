/**
 * @file
 * Four-level x86-64-style radix page table over simulated frames.
 *
 * Levels are numbered 3 (root / PGD) down to 0 (leaf page table). BypassD
 * attaches *shared* file-table leaf frames at level-1 entries (PMD
 * granularity: one pointer per 2 MiB of file), with the per-open R/W
 * permission encoded in the private attaching entry (Section 4.1, Fig. 4).
 */

#ifndef BPD_MEM_PAGE_TABLE_HPP
#define BPD_MEM_PAGE_TABLE_HPP

#include <cstdint>
#include <unordered_set>

#include "common/types.hpp"
#include "mem/frame_allocator.hpp"
#include "mem/pte.hpp"

namespace bpd::mem {

/** Bytes spanned by one entry at a given level. */
constexpr std::uint64_t
levelSpan(unsigned level)
{
    return 1ull << (12 + 9 * level);
}

constexpr std::uint64_t kPmdSpan = levelSpan(1); // 2 MiB
constexpr std::uint64_t kPudSpan = levelSpan(2); // 1 GiB

/** Radix index of @p va at @p level (0..3). */
constexpr unsigned
ptIndex(Vaddr va, unsigned level)
{
    return static_cast<unsigned>((va >> (12 + 9 * level)) & 0x1ff);
}

/**
 * A process (or IOMMU-visible) page table. Owns the frames it allocates;
 * frames attached via attachTable() are shared and never freed here.
 */
class PageTable
{
  public:
    explicit PageTable(FrameAllocator &fa);
    ~PageTable();
    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    Frame root() const { return root_; }

    /** Install a leaf entry for @p va, building intermediate levels. */
    void set(Vaddr va, Pte pte);

    /** Leaf entry for @p va, or 0 when any level is non-present. */
    Pte get(Vaddr va) const;

    /** Clear the leaf entry for @p va (no-op when absent). */
    void clear(Vaddr va);

    /**
     * Attach a shared table frame at the given level's entry for @p va.
     * @param va Virtual address; must be aligned to levelSpan(level).
     * @param level Entry level holding the pointer (1 = PMD entry).
     * @param table Shared frame (owned elsewhere).
     * @param writable Per-open R/W permission for this attachment.
     * @return Count of private intermediate entries written (for timing).
     */
    unsigned attachTable(Vaddr va, unsigned level, Frame table,
                         bool writable);

    /**
     * Detach a previously attached shared frame.
     * @retval true when an entry was present and cleared.
     */
    bool detachTable(Vaddr va, unsigned level);

    /** Entry at an arbitrary level for @p va (0 when path non-present). */
    Pte entryAt(Vaddr va, unsigned level) const;

    /** Result of a software walk mirroring what hardware would do. */
    struct Walk
    {
        bool present = false;     //!< leaf reachable and present
        bool writable = false;    //!< AND of R/W along the path
        Pte leaf = 0;             //!< leaf entry value
        unsigned framesRead = 0;  //!< frames touched (timing input)
    };

    /** Walk the tree for @p va. */
    Walk walk(Vaddr va) const;

    /** Frames privately owned by this table (root included). */
    std::size_t ownedFrames() const { return owned_.size(); }

  private:
    Frame childOf(Frame parent, unsigned idx) const;
    Frame ensureChild(Frame parent, unsigned idx, bool writable);

    /** Invalidate the walker's cached upper path after any mutation. */
    void invalidateWalkCache() { mutGen_++; }

    FrameAllocator &fa_;
    Frame root_;
    std::unordered_set<Frame> owned_;

    /**
     * One-entry walker cache of the last resolved upper path (PGD->PMD):
     * for the cached 2 MiB region, walk() jumps straight to the leaf
     * table. Sequential VBA sweeps (Figs. 8/9) hit it almost always.
     * Leaf entries are read fresh each walk, so shared file-table frames
     * updated behind our back stay coherent; structural mutations bump
     * mutGen_ which invalidates the cache. framesRead still reports the
     * full 4-level cost, keeping the simulated timing identical.
     */
    std::uint64_t mutGen_ = 1;
    mutable std::uint64_t cachedGen_ = 0;
    mutable Vaddr cachedRegion_ = 0;   //!< va >> 21
    mutable Frame cachedLeafTable_ = kNullFrame;
    mutable bool cachedUpperWritable_ = false;
};

} // namespace bpd::mem

#endif // BPD_MEM_PAGE_TABLE_HPP
