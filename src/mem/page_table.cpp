#include "mem/page_table.hpp"

#include "sim/logging.hpp"

namespace bpd::mem {

PageTable::PageTable(FrameAllocator &fa)
    : fa_(fa), root_(fa.alloc())
{
    owned_.insert(root_);
}

PageTable::~PageTable()
{
    for (Frame f : owned_)
        fa_.free(f);
}

Frame
PageTable::childOf(Frame parent, unsigned idx) const
{
    const Pte e = fa_.table(parent)[idx];
    if (!isPresent(e) || isFte(e))
        return kNullFrame;
    return frameOf(e);
}

Frame
PageTable::ensureChild(Frame parent, unsigned idx, bool writable)
{
    std::uint64_t *tbl = fa_.table(parent);
    Pte e = tbl[idx];
    if (isPresent(e)) {
        sim::panicIf(isFte(e), "table entry collides with an FTE");
        if (writable && !isWritable(e))
            tbl[idx] = e | kPteWritable;
        return frameOf(e);
    }
    const Frame child = fa_.alloc();
    owned_.insert(child);
    tbl[idx] = makeTableEntry(child, writable);
    return child;
}

void
PageTable::set(Vaddr va, Pte pte)
{
    invalidateWalkCache();
    Frame cur = root_;
    for (unsigned level = 3; level >= 1; level--)
        cur = ensureChild(cur, ptIndex(va, level), true);
    fa_.table(cur)[ptIndex(va, 0)] = pte;
}

Pte
PageTable::get(Vaddr va) const
{
    Frame cur = root_;
    for (unsigned level = 3; level >= 1; level--) {
        cur = childOf(cur, ptIndex(va, level));
        if (cur == kNullFrame)
            return 0;
    }
    return fa_.table(cur)[ptIndex(va, 0)];
}

void
PageTable::clear(Vaddr va)
{
    invalidateWalkCache();
    Frame cur = root_;
    for (unsigned level = 3; level >= 1; level--) {
        cur = childOf(cur, ptIndex(va, level));
        if (cur == kNullFrame)
            return;
    }
    fa_.table(cur)[ptIndex(va, 0)] = 0;
}

unsigned
PageTable::attachTable(Vaddr va, unsigned level, Frame table, bool writable)
{
    sim::panicIf(level < 1 || level > 2, "attach level must be 1 or 2");
    sim::panicIf(va % levelSpan(level) != 0,
                 "attach va not aligned to level span");
    invalidateWalkCache();
    unsigned writes = 0;
    Frame cur = root_;
    for (unsigned l = 3; l > level; l--) {
        // Intermediate entries are private to this process; the per-open
        // R/W bit is applied on the whole private path so a read-only
        // open cannot write through any route.
        std::uint64_t *tbl = fa_.table(cur);
        const unsigned idx = ptIndex(va, l);
        Pte e = tbl[idx];
        if (!isPresent(e)) {
            const Frame child = fa_.alloc();
            owned_.insert(child);
            tbl[idx] = makeTableEntry(child, writable);
            writes++;
            cur = child;
        } else {
            if (writable && !isWritable(e)) {
                tbl[idx] = e | kPteWritable;
                writes++;
            }
            cur = frameOf(e);
        }
    }
    std::uint64_t *tbl = fa_.table(cur);
    const unsigned idx = ptIndex(va, level);
    sim::panicIf(isPresent(tbl[idx]),
                 "attach target entry already present");
    tbl[idx] = makeTableEntry(table, writable);
    writes++;
    return writes;
}

bool
PageTable::detachTable(Vaddr va, unsigned level)
{
    sim::panicIf(level < 1 || level > 2, "detach level must be 1 or 2");
    invalidateWalkCache();
    Frame cur = root_;
    for (unsigned l = 3; l > level; l--) {
        cur = childOf(cur, ptIndex(va, l));
        if (cur == kNullFrame)
            return false;
    }
    std::uint64_t *tbl = fa_.table(cur);
    const unsigned idx = ptIndex(va, level);
    if (!isPresent(tbl[idx]))
        return false;
    tbl[idx] = 0;
    return true;
}

Pte
PageTable::entryAt(Vaddr va, unsigned level) const
{
    sim::panicIf(level > 3, "bad level");
    Frame cur = root_;
    for (unsigned l = 3; l > level; l--) {
        cur = childOf(cur, ptIndex(va, l));
        if (cur == kNullFrame)
            return 0;
    }
    return fa_.table(cur)[ptIndex(va, level)];
}

PageTable::Walk
PageTable::walk(Vaddr va) const
{
    Walk w;
    const Vaddr region = va >> 21;
    if (cachedGen_ == mutGen_ && cachedRegion_ == region) {
        // Fast path: upper three levels unchanged since last resolved;
        // only the leaf entry needs reading. framesRead reports the full
        // walk so modeled timing matches the uncached path exactly.
        w.framesRead = 4;
        const Pte e = fa_.table(cachedLeafTable_)[ptIndex(va, 0)];
        if (!isPresent(e)) {
            w.present = false;
            w.writable = false;
            return w;
        }
        w.present = true;
        w.writable = cachedUpperWritable_ && isWritable(e);
        w.leaf = e;
        return w;
    }
    w.writable = true;
    Frame cur = root_;
    for (unsigned level = 3;; level--) {
        w.framesRead++;
        const Pte e = fa_.table(cur)[ptIndex(va, level)];
        if (!isPresent(e)) {
            w.present = false;
            w.writable = false;
            return w;
        }
        w.writable = w.writable && isWritable(e);
        if (level == 0 || isFte(e)) {
            // FTEs can only legally appear at level 0, but a hardware
            // walker must treat a malformed deeper FT bit as a fault.
            if (isFte(e) && level != 0) {
                w.present = false;
                w.writable = false;
                return w;
            }
            w.present = true;
            w.leaf = e;
            return w;
        }
        if (level == 1) {
            cachedGen_ = mutGen_;
            cachedRegion_ = region;
            cachedLeafTable_ = frameOf(e);
            cachedUpperWritable_ = w.writable;
        }
        cur = frameOf(e);
    }
}

} // namespace bpd::mem
