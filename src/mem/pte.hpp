/**
 * @file
 * Page-table entry encodings, including the BypassD File Table Entry (FTE)
 * format of Fig. 3: an FTE stores a device Logical Block Address where a
 * regular PTE stores a Page Frame Number, plus the owning device id and an
 * FT marker bit (carved out of the architecturally-ignored bits).
 *
 * Layout (64-bit entry):
 *   bit  0        PRESENT
 *   bit  1        WRITABLE  (R/W)
 *   bit  2        USER
 *   bit  9        FT        (file-table entry marker)
 *   bits 12..51   PFN / table frame / LBA block number
 *   bits 52..61   DevID     (meaningful only when FT is set)
 */

#ifndef BPD_MEM_PTE_HPP
#define BPD_MEM_PTE_HPP

#include <cstdint>

#include "common/types.hpp"
#include "mem/frame_allocator.hpp"

namespace bpd::mem {

using Pte = std::uint64_t;

constexpr Pte kPtePresent = 1ull << 0;
constexpr Pte kPteWritable = 1ull << 1;
constexpr Pte kPteUser = 1ull << 2;
constexpr Pte kPteFt = 1ull << 9;

constexpr unsigned kPfnShift = 12;
constexpr std::uint64_t kPfnMask = ((1ull << 40) - 1) << kPfnShift;

constexpr unsigned kDevIdShift = 52;
constexpr std::uint64_t kDevIdMask = ((1ull << 10) - 1) << kDevIdShift;

/** Entry for a next-level page-table frame. */
constexpr Pte
makeTableEntry(Frame frame, bool writable = true)
{
    return kPtePresent | kPteUser | (writable ? kPteWritable : 0)
           | (static_cast<Pte>(frame) << kPfnShift);
}

/** Regular 4 KiB leaf mapping a physical frame number. */
constexpr Pte
makeLeafEntry(std::uint64_t pfn, bool writable)
{
    return kPtePresent | kPteUser | (writable ? kPteWritable : 0)
           | ((pfn << kPfnShift) & kPfnMask);
}

/**
 * BypassD File Table Entry: maps one 4 KiB file block onto a device block.
 * Shared FTEs carry maximum rights (R/W set); the per-open permission lives
 * in the private intermediate entry (see Section 4.1).
 */
constexpr Pte
makeFte(BlockNo block, DevId dev, bool writable = true)
{
    return kPtePresent | kPteUser | kPteFt
           | (writable ? kPteWritable : 0)
           | ((static_cast<Pte>(block) << kPfnShift) & kPfnMask)
           | ((static_cast<Pte>(dev) << kDevIdShift) & kDevIdMask);
}

constexpr bool
isPresent(Pte e)
{
    return (e & kPtePresent) != 0;
}

constexpr bool
isWritable(Pte e)
{
    return (e & kPteWritable) != 0;
}

constexpr bool
isFte(Pte e)
{
    return (e & kPteFt) != 0;
}

constexpr std::uint64_t
pfnOf(Pte e)
{
    return (e & kPfnMask) >> kPfnShift;
}

constexpr Frame
frameOf(Pte e)
{
    return static_cast<Frame>(pfnOf(e));
}

constexpr BlockNo
fteBlock(Pte e)
{
    return pfnOf(e);
}

constexpr DevId
fteDevId(Pte e)
{
    return static_cast<DevId>((e & kDevIdMask) >> kDevIdShift);
}

} // namespace bpd::mem

#endif // BPD_MEM_PTE_HPP
