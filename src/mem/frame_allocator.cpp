#include "mem/frame_allocator.hpp"

#include "sim/logging.hpp"

namespace bpd::mem {

FrameAllocator::FrameAllocator()
{
    frames_.push_back(nullptr); // frame 0 reserved as null
    liveMap_.push_back(false);
}

Frame
FrameAllocator::alloc()
{
    Frame f;
    if (!freeList_.empty()) {
        f = freeList_.back();
        freeList_.pop_back();
        frames_[f] = std::make_unique<Table>();
    } else {
        f = static_cast<Frame>(frames_.size());
        frames_.push_back(std::make_unique<Table>());
        liveMap_.push_back(false);
    }
    frames_[f]->fill(0);
    liveMap_[f] = true;
    live_++;
    totalAllocs_++;
    return f;
}

void
FrameAllocator::checkLive(Frame f) const
{
    // Branch before formatting: this guard runs on every frame access,
    // and building the message eagerly would dominate the walk hot path.
    if (f == kNullFrame || f >= frames_.size() || !liveMap_[f])
        [[unlikely]]
        sim::panic(sim::strf("access to dead frame %u", f));
}

void
FrameAllocator::free(Frame f)
{
    checkLive(f);
    frames_[f].reset();
    liveMap_[f] = false;
    freeList_.push_back(f);
    live_--;
}

std::uint64_t *
FrameAllocator::table(Frame f)
{
    checkLive(f);
    return frames_[f]->data();
}

const std::uint64_t *
FrameAllocator::table(Frame f) const
{
    checkLive(f);
    return frames_[f]->data();
}

} // namespace bpd::mem
