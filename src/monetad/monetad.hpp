/**
 * @file
 * Moneta-D-style baseline [Caulfield et al., ASPLOS'12]: userspace
 * access with permission checks enforced *on the device* instead of the
 * host IOMMU. The kernel installs per-(process, extent) permission
 * records into a limited-capacity table in device memory; data commands
 * carry raw LBAs and the device validates them against the table.
 *
 * This model reproduces the drawbacks the paper attributes to
 * device-side protection (Section 2):
 *  1. permission updates stall request service;
 *  2. a bounded table thrashes when many files/extents are live;
 *  3. a miss triggers an expensive userspace+kernel recovery path
 *     (~8x the I/O latency in the Moneta-D paper).
 *
 * BypassD avoids all three by checking permissions in the host IOMMU
 * with page tables that live in ordinary host memory.
 */

#ifndef BPD_MONETAD_MONETAD_HPP
#define BPD_MONETAD_MONETAD_HPP

#include <list>
#include <memory>
#include <unordered_map>

#include "kern/kernel.hpp"
#include "ssd/dispatcher.hpp"

namespace bpd::monetad {

struct MonetadConfig
{
    /** Device permission-table capacity (records). */
    unsigned tableEntries = 1024;
    /** Table lookup on the device per I/O. */
    Time checkNs = 150;
    /**
     * Miss recovery: device interrupts the library, which asks the
     * kernel to re-install the record (Moneta-D reports up to 8x I/O
     * latency).
     */
    Time missPenaltyNs = 30 * kUs;
    /** Device pauses request service while the table is updated. */
    Time updateStallNs = 40 * kUs;
    /** Userspace submission/completion costs (SPDK-like). */
    Time submitNs = 110;
    Time reapNs = 80;
};

class MonetadEngine
{
  public:
    explicit MonetadEngine(kern::Kernel &k, MonetadConfig cfg = {});
    ~MonetadEngine();

    /**
     * Kernel-side: copy @p ino's extent permissions for @p p into the
     * device table (called at open). Service stalls while updating.
     * @return Number of records installed.
     */
    unsigned installPermissions(kern::Process &p, fs::Inode &ino,
                                bool writable);

    /** Kernel-side: drop the records (close/revoke). Stalls service. */
    void revokePermissions(kern::Process &p, fs::Inode &ino);

    /** Userspace read of @p ino through the device-side checks. */
    void read(Tid tid, kern::Process &p, fs::Inode &ino,
              std::span<std::uint8_t> buf, std::uint64_t off,
              kern::IoCb cb);

    /** Userspace overwrite. */
    void write(Tid tid, kern::Process &p, fs::Inode &ino,
               std::span<const std::uint8_t> buf, std::uint64_t off,
               kern::IoCb cb);

    /** @name Statistics */
    ///@{
    std::uint64_t tableHits() const { return hits_; }
    std::uint64_t tableMisses() const { return misses_; }
    std::uint64_t updateStalls() const { return updates_; }
    ///@}

  private:
    struct Entry
    {
        std::uint64_t key;
        bool writable;
    };

    static std::uint64_t key(Pasid pasid, BlockNo extStart);

    /** LRU permission-table access; true on hit. */
    bool tableLookup(std::uint64_t k, bool needWrite);
    void tableInsert(std::uint64_t k, bool writable);
    void stallService();
    void doIo(Tid tid, kern::Process &p, fs::Inode &ino, ssd::Op op,
              std::span<std::uint8_t> buf, std::uint64_t off,
              bool afterMiss, kern::IoCb cb);

    struct ThreadCtx
    {
        ssd::QueuePair *qp = nullptr;
        std::unique_ptr<ssd::CommandDispatcher> disp;
    };
    ThreadCtx &ctx(Tid tid, kern::Process &p);

    kern::Kernel &k_;
    MonetadConfig cfg_;

    // Device-resident permission table (LRU).
    std::list<Entry> lru_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> table_;

    Time serviceStalledUntil_ = 0;

    std::map<Tid, ThreadCtx> threads_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t updates_ = 0;
};

} // namespace bpd::monetad

#endif // BPD_MONETAD_MONETAD_HPP
