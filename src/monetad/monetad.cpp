#include "monetad/monetad.hpp"

#include "sim/logging.hpp"

namespace bpd::monetad {

MonetadEngine::MonetadEngine(kern::Kernel &k, MonetadConfig cfg)
    : k_(k), cfg_(cfg)
{
}

MonetadEngine::~MonetadEngine()
{
    for (auto &[tid, tc] : threads_) {
        if (tc.qp)
            k_.device().destroyQueuePair(tc.qp->qid());
    }
}

std::uint64_t
MonetadEngine::key(Pasid pasid, BlockNo extStart)
{
    return (static_cast<std::uint64_t>(pasid) << 40) ^ extStart;
}

MonetadEngine::ThreadCtx &
MonetadEngine::ctx(Tid tid, kern::Process &p)
{
    ThreadCtx &tc = threads_[tid];
    if (!tc.qp) {
        // Moneta-D hardware accepts raw block addresses from userspace
        // and checks them itself: a non-VBA queue models its channel.
        tc.qp = k_.device().createQueuePair(p.pasid(), 256,
                                            /*vbaMode=*/false);
        sim::panicIf(tc.qp == nullptr, "monetad channel failed");
        tc.disp = std::make_unique<ssd::CommandDispatcher>(*tc.qp);
    }
    return tc;
}

void
MonetadEngine::stallService()
{
    // The device stops serving requests while permission state changes
    // (Section 2: "it has to stop serving requests or temporarily
    // suspend permission checking").
    updates_++;
    serviceStalledUntil_ = std::max(serviceStalledUntil_, k_.eq().now())
                           + cfg_.updateStallNs;
}

bool
MonetadEngine::tableLookup(std::uint64_t k, bool needWrite)
{
    auto it = table_.find(k);
    if (it == table_.end()) {
        misses_++;
        return false;
    }
    if (needWrite && !it->second->writable) {
        misses_++;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_++;
    return true;
}

void
MonetadEngine::tableInsert(std::uint64_t k, bool writable)
{
    auto it = table_.find(k);
    if (it != table_.end()) {
        it->second->writable = it->second->writable || writable;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (table_.size() >= cfg_.tableEntries) {
        table_.erase(lru_.back().key);
        lru_.pop_back();
    }
    lru_.push_front(Entry{k, writable});
    table_[k] = lru_.begin();
}

unsigned
MonetadEngine::installPermissions(kern::Process &p, fs::Inode &ino,
                                  bool writable)
{
    unsigned installed = 0;
    for (const fs::Extent &e : ino.extents.extents()) {
        tableInsert(key(p.pasid(), e.pblk), writable);
        installed++;
    }
    stallService();
    return installed;
}

void
MonetadEngine::revokePermissions(kern::Process &p, fs::Inode &ino)
{
    for (const fs::Extent &e : ino.extents.extents()) {
        auto it = table_.find(key(p.pasid(), e.pblk));
        if (it != table_.end()) {
            lru_.erase(it->second);
            table_.erase(it);
        }
    }
    stallService();
}

void
MonetadEngine::doIo(Tid tid, kern::Process &p, fs::Inode &ino, ssd::Op op,
                    std::span<std::uint8_t> buf, std::uint64_t off,
                    bool afterMiss, kern::IoCb cb)
{
    const Time start = k_.eq().now();
    const std::uint64_t n = buf.size();

    // Locate the extent (the library keeps the file map, like Moneta-D's
    // userspace library does).
    auto ext = ino.extents.lookup(off / kBlockBytes);
    if (!ext || (off + n + kBlockBytes - 1) / kBlockBytes
                    > ext->lblk + ext->count) {
        // Spanning extents: handled one extent at a time in Moneta-D;
        // for the model, require single-extent I/O.
        std::vector<fs::Seg> segs;
        if (k_.vfs().fs().mapRange(ino, off, n, &segs)
            != fs::FsStatus::Ok) {
            k_.eq().after(cfg_.submitNs, [cb = std::move(cb)]() {
                cb(kern::errOf(fs::FsStatus::Inval), kern::IoTrace{});
            });
            return;
        }
    }

    const std::uint64_t pkey = key(p.pasid(), ext->pblk);
    const bool needWrite = (op == ssd::Op::Write);

    // Wait out any in-progress permission update, then check the table.
    const Time stallWait
        = serviceStalledUntil_ > k_.eq().now()
              ? serviceStalledUntil_ - k_.eq().now()
              : 0;
    const Time preCost = k_.cpu().scaled(cfg_.submitNs) + stallWait
                         + cfg_.checkNs;

    if (!tableLookup(pkey, needWrite)) {
        if (afterMiss) {
            // Recovery failed to install usable permissions: no access.
            k_.eq().after(preCost, [cb = std::move(cb)]() {
                cb(kern::errOf(fs::FsStatus::Access), kern::IoTrace{});
            });
            return;
        }
        // Expensive miss handling: device interrupts the library, the
        // kernel validates and re-installs the record (Section 2).
        const bool allowed = fs::Ext4Fs::mayAccess(
            ino, p.creds(), op == ssd::Op::Read, needWrite);
        k_.eq().after(preCost + cfg_.missPenaltyNs,
                      [this, tid, &p, &ino, op, buf, off, allowed, pkey,
                       needWrite, cb = std::move(cb)]() mutable {
                          if (!allowed) {
                              cb(kern::errOf(fs::FsStatus::Access),
                                 kern::IoTrace{});
                              return;
                          }
                          tableInsert(pkey, needWrite);
                          doIo(tid, p, ino, op, buf, off,
                               /*afterMiss=*/true, std::move(cb));
                      });
        return;
    }

    // Hit: raw LBA command straight to the device.
    std::vector<fs::Seg> segs;
    fs::FsStatus st = k_.vfs().fs().mapRange(ino, off, n, &segs);
    if (st != fs::FsStatus::Ok) {
        k_.eq().after(preCost, [st, cb = std::move(cb)]() {
            cb(kern::errOf(st), kern::IoTrace{});
        });
        return;
    }
    k_.eq().after(preCost, [this, tid, &p, segs, buf, n, start,
                            op, cb = std::move(cb)]() {
        ThreadCtx &tc = ctx(tid, p);
        auto remaining = std::make_shared<std::size_t>(segs.size());
        auto worst = std::make_shared<ssd::Status>(ssd::Status::Success);
        std::uint64_t soff = 0;
        for (const auto &seg : segs) {
            ssd::Command cmd;
            cmd.op = op;
            cmd.addr = seg.addr;
            cmd.addrIsVba = false;
            cmd.len = static_cast<std::uint32_t>(seg.len);
            cmd.hostBuf = buf.subspan(soff, seg.len);
            soff += seg.len;
            const bool ok = tc.disp->submit(
                cmd, [this, remaining, worst, n, start,
                      cb](const ssd::Completion &comp) {
                    if (comp.status != ssd::Status::Success)
                        *worst = comp.status;
                    if (--*remaining > 0)
                        return;
                    const Time reap = k_.cpu().scaled(cfg_.reapNs);
                    k_.eq().after(reap, [this, worst, n, start, cb]() {
                        kern::IoTrace tr;
                        tr.userNs = k_.eq().now() - start;
                        cb(*worst == ssd::Status::Success
                               ? static_cast<long long>(n)
                               : kern::errOf(fs::FsStatus::Inval),
                           tr);
                    });
                });
            sim::panicIf(!ok, "monetad queue overflow");
        }
    });
}

void
MonetadEngine::read(Tid tid, kern::Process &p, fs::Inode &ino,
                    std::span<std::uint8_t> buf, std::uint64_t off,
                    kern::IoCb cb)
{
    doIo(tid, p, ino, ssd::Op::Read, buf, off, false, std::move(cb));
}

void
MonetadEngine::write(Tid tid, kern::Process &p, fs::Inode &ino,
                     std::span<const std::uint8_t> buf, std::uint64_t off,
                     kern::IoCb cb)
{
    doIo(tid, p, ino, ssd::Op::Write,
         std::span<std::uint8_t>(const_cast<std::uint8_t *>(buf.data()),
                                 buf.size()),
         off, false, std::move(cb));
}

} // namespace bpd::monetad
