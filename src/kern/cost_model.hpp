/**
 * @file
 * Software-stack cost model calibrated from the paper's Table 1 latency
 * breakdown of a 4 KiB read() on an Optane P5800X (Linux 5.4):
 *
 *   user->kernel switch   160 ns
 *   VFS + ext4          2 810 ns
 *   block I/O layer       540 ns
 *   NVMe driver           220 ns
 *   device              4 020 ns   (modeled by ssd::NvmeDevice)
 *   kernel->user switch   100 ns
 *
 * plus auxiliary constants for the buffered path, io_uring, appends and
 * the BypassD userspace library.
 */

#ifndef BPD_KERN_COST_MODEL_HPP
#define BPD_KERN_COST_MODEL_HPP

#include "common/types.hpp"

namespace bpd::kern {

struct CostModel
{
    /** @name Table 1 constants */
    ///@{
    Time userToKernelNs = 160;
    Time kernelToUserNs = 100;
    Time vfsExt4Ns = 2810;
    Time blockLayerNs = 540;
    Time nvmeDriverNs = 220;
    ///@}

    /**
     * Extra VFS cost per additional 4 KiB block in a request (bio
     * assembly + get_user_pages pinning for O_DIRECT).
     */
    Time vfsPerBlockNs = 100;

    /** Buffered (page-cache) path per-page lookup cost. */
    Time pageCacheLookupNs = 350;
    /** Buffered path base VFS cost (cheaper than O_DIRECT setup). */
    Time vfsBufferedNs = 900;

    /** memcpy bandwidth for user<->kernel / user<->DMA copies (B/ns). */
    double copyBwBytesPerNs = 32.0;

    /** Block allocation cost per extent allocated (append path). */
    Time allocPerExtentNs = 900;

    /** libaio: extra io_getevents syscall + bookkeeping per op. */
    Time aioExtraNs = 450;

    /** @name io_uring (SQPOLL mode, fixed buffers) */
    ///@{
    Time uringUserSubmitNs = 60;   //!< write SQE + doorbell-free publish
    Time uringPollIntervalNs = 150; //!< sqpoll thread pickup delay
    double uringVfsFactor = 0.8;   //!< fixed-buffer fast path discount
    Time uringUserReapNs = 90;     //!< user CQ poll + harvest
    ///@}

    /** @name BypassD UserLib (Section 4.2) */
    ///@{
    Time userlibSubmitNs = 120;  //!< intercept, build NVMe cmd, doorbell
    Time userlibCompleteNs = 80; //!< CQ poll + fd state update
    ///@}

    /** fmap() costs (Table 5 model; Section 4.1). */
    Time fmapSyscallNs = 600;       //!< base syscall + VA reservation
    Time fmapAttachPerPmdNs = 31;   //!< pointer update per 2 MiB attached
    Time fmapBuildPerFteNs = 5;     //!< cold: write one FTE
    Time fmapExtentLookupNs = 45;   //!< cold: extent-tree walk per extent
    Time fmapMetaIoNs = 4020;       //!< cold: read uncached mapping block
    /** open() path-resolution and fd setup cost. */
    Time openBaseNs = 1280;

    /** fsync: journal commit + flush issue cost (device adds flushNs). */
    Time fsyncMetaNs = 1800;

    /** Interrupt-driven completion delivery (sync/libaio). */
    Time interruptNs = 0; // folded into Table 1 numbers

    /** Scale a software cost with request size in bytes. */
    Time
    vfsCost(std::uint64_t bytes) const
    {
        const std::uint64_t blocks
            = (bytes + kBlockBytes - 1) / kBlockBytes;
        return vfsExt4Ns + (blocks > 1 ? (blocks - 1) * vfsPerBlockNs : 0);
    }

    /** memcpy time for @p bytes. */
    Time
    copyCost(std::uint64_t bytes) const
    {
        return static_cast<Time>(static_cast<double>(bytes)
                                 / copyBwBytesPerNs);
    }
};

} // namespace bpd::kern

#endif // BPD_KERN_COST_MODEL_HPP
