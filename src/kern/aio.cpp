#include "kern/aio.hpp"

#include "sim/logging.hpp"

namespace bpd::kern {

IoCb
Aio::wrapRequest(const char *name, Pid pid, obs::TraceId trace, IoCb cb)
{
    obs::Tracer *t = k_.tracer();
    const Time start = k_.eq().now();
    const std::uint16_t track
        = t->track("libaio.p" + std::to_string(pid));
    return [this, t, name, track, trace, start,
            cb = std::move(cb)](long long n, IoTrace tr) {
        obs::RequestBreakdown b;
        b.userNs = tr.userNs;
        b.kernelNs = tr.kernelNs;
        b.translateNs = tr.translateNs;
        b.deviceNs = tr.deviceNs;
        b.bytes = n > 0 ? static_cast<std::uint64_t>(n) : 0;
        t->request(track, name, trace, start, k_.eq().now(), b);
        cb(n, tr);
    };
}

void
Aio::pread(Process &p, int fd, std::span<std::uint8_t> buf,
           std::uint64_t off, IoCb cb)
{
    // QD1 libaio = sync path + extra io_getevents round trip.
    obs::TraceId trace = 0;
    if (obs::Tracer *t = k_.tracer()) {
        trace = t->newTrace(p.pasid());
        cb = wrapRequest("libaio.pread", p.pid(), trace, std::move(cb));
    }
    const Time extra = k_.cpu().scaled(k_.costs().aioExtraNs);
    k_.sysPread(p, fd, buf, off,
                [this, extra, cb = std::move(cb)](long long n,
                                                  IoTrace tr) {
                    k_.eq().after(extra, [n, tr, extra,
                                          cb = std::move(cb)]() mutable {
                        tr.kernelNs += extra;
                        cb(n, tr);
                    });
                },
                trace);
}

void
Aio::pwrite(Process &p, int fd, std::span<const std::uint8_t> buf,
            std::uint64_t off, IoCb cb)
{
    obs::TraceId trace = 0;
    if (obs::Tracer *t = k_.tracer()) {
        trace = t->newTrace(p.pasid());
        cb = wrapRequest("libaio.pwrite", p.pid(), trace, std::move(cb));
    }
    const Time extra = k_.cpu().scaled(k_.costs().aioExtraNs);
    k_.sysPwrite(p, fd, buf, off,
                 [this, extra, cb = std::move(cb)](long long n,
                                                   IoTrace tr) {
                     k_.eq().after(extra, [n, tr, extra,
                                           cb = std::move(cb)]() mutable {
                         tr.kernelNs += extra;
                         cb(n, tr);
                     });
                 },
                 trace);
}

void
Aio::submitBatch(Process &p, std::vector<Op> ops, BatchCb cb)
{
    // Submissions pipeline through one io_submit call: fixed per-request
    // spacing instead of a full syscall each.
    const Time spacing = k_.cpu().scaled(800);
    auto shared = std::make_shared<BatchCb>(std::move(cb));
    for (std::size_t i = 0; i < ops.size(); i++) {
        const Op op = ops[i];
        k_.eq().after(i * spacing, [this, &p, op, i, shared]() {
            IoCb done = [shared, i](long long n, IoTrace tr) {
                (*shared)(i, n, tr);
            };
            obs::TraceId trace = 0;
            if (obs::Tracer *t = k_.tracer()) {
                trace = t->newTrace(p.pasid());
                done = wrapRequest(op.write ? "libaio.pwrite"
                                            : "libaio.pread",
                                   p.pid(), trace, std::move(done));
            }
            if (op.write) {
                k_.sysPwrite(p, op.fd,
                             std::span<const std::uint8_t>(op.buf.data(),
                                                           op.buf.size()),
                             op.off, std::move(done), trace);
            } else {
                k_.sysPread(p, op.fd, op.buf, op.off, std::move(done),
                            trace);
            }
        });
    }
}

} // namespace bpd::kern
