#include "kern/aio.hpp"

#include "sim/logging.hpp"

namespace bpd::kern {

void
Aio::pread(Process &p, int fd, std::span<std::uint8_t> buf,
           std::uint64_t off, IoCb cb)
{
    // QD1 libaio = sync path + extra io_getevents round trip.
    const Time extra = k_.cpu().scaled(k_.costs().aioExtraNs);
    k_.sysPread(p, fd, buf, off,
                [this, extra, cb = std::move(cb)](long long n,
                                                  IoTrace tr) {
                    k_.eq().after(extra, [n, tr, extra,
                                          cb = std::move(cb)]() mutable {
                        tr.kernelNs += extra;
                        cb(n, tr);
                    });
                });
}

void
Aio::pwrite(Process &p, int fd, std::span<const std::uint8_t> buf,
            std::uint64_t off, IoCb cb)
{
    const Time extra = k_.cpu().scaled(k_.costs().aioExtraNs);
    k_.sysPwrite(p, fd, buf, off,
                 [this, extra, cb = std::move(cb)](long long n,
                                                   IoTrace tr) {
                     k_.eq().after(extra, [n, tr, extra,
                                           cb = std::move(cb)]() mutable {
                         tr.kernelNs += extra;
                         cb(n, tr);
                     });
                 });
}

void
Aio::submitBatch(Process &p, std::vector<Op> ops, BatchCb cb)
{
    // Submissions pipeline through one io_submit call: fixed per-request
    // spacing instead of a full syscall each.
    const Time spacing = k_.cpu().scaled(800);
    auto shared = std::make_shared<BatchCb>(std::move(cb));
    for (std::size_t i = 0; i < ops.size(); i++) {
        const Op op = ops[i];
        k_.eq().after(i * spacing, [this, &p, op, i, shared]() {
            auto done = [shared, i](long long n, IoTrace tr) {
                (*shared)(i, n, tr);
            };
            if (op.write) {
                k_.sysPwrite(p, op.fd,
                             std::span<const std::uint8_t>(op.buf.data(),
                                                           op.buf.size()),
                             op.off, done);
            } else {
                k_.sysPread(p, op.fd, op.buf, op.off, done);
            }
        });
    }
}

} // namespace bpd::kern
