/**
 * @file
 * Coarse CPU occupancy model. The evaluation machine has 24 hardware
 * threads (12 cores, HT). Simulated threads that are runnable or busy-
 * polling occupy a hardware thread; when occupants exceed the budget,
 * software costs dilate and schedulable entities pay a reschedule penalty.
 * This is what makes io_uring (which needs an extra SQPOLL thread per
 * ring) collapse past 12 application threads in Fig. 9, as in the paper.
 */

#ifndef BPD_KERN_CPU_MODEL_HPP
#define BPD_KERN_CPU_MODEL_HPP

#include "common/types.hpp"
#include "sim/logging.hpp"

namespace bpd::kern {

class CpuModel
{
  public:
    explicit CpuModel(unsigned hwThreads = 24) : hwThreads_(hwThreads) {}

    /** A simulated thread (or kernel poller) becomes a CPU occupant. */
    void acquire(unsigned n = 1) { occupants_ += n; }

    /** Occupant exits. */
    void
    release(unsigned n = 1)
    {
        sim::panicIf(occupants_ < n, "CPU release underflow");
        occupants_ -= n;
    }

    unsigned occupants() const { return occupants_; }
    unsigned hwThreads() const { return hwThreads_; }

    /** Occupants beyond the hardware budget. */
    unsigned
    surplus() const
    {
        return occupants_ > hwThreads_ ? occupants_ - hwThreads_ : 0;
    }

    /** Software-time dilation factor under oversubscription. */
    double
    dilation() const
    {
        if (occupants_ <= hwThreads_)
            return 1.0;
        return static_cast<double>(occupants_)
               / static_cast<double>(hwThreads_);
    }

    /** Scale a software segment by the dilation factor. */
    Time
    scaled(Time t) const
    {
        return static_cast<Time>(static_cast<double>(t) * dilation());
    }

    /**
     * Extra wait for an entity that must be re-scheduled onto a CPU
     * (e.g. an io_uring submitter handing off to a poller and back).
     */
    Time
    reschedulePenalty() const
    {
        return static_cast<Time>(surplus()) * quantumNs_;
    }

    void setQuantum(Time q) { quantumNs_ = q; }

  private:
    unsigned hwThreads_;
    unsigned occupants_ = 0;
    Time quantumNs_ = 1500;
};

} // namespace bpd::kern

#endif // BPD_KERN_CPU_MODEL_HPP
