#include "kern/io_uring.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace bpd::kern {

IoUring::IoUring(Kernel &k, Process &p)
    : k_(k), p_(p)
{
    // SQPOLL kernel thread occupies one hardware thread for the ring's
    // lifetime.
    k_.cpu().acquire(1);
}

IoUring::~IoUring()
{
    k_.cpu().release(1);
}

void
IoUring::pread(int fd, std::span<std::uint8_t> buf, std::uint64_t off,
               IoCb cb)
{
    doIo(false, fd, buf, off, std::move(cb));
}

void
IoUring::pwrite(int fd, std::span<const std::uint8_t> buf,
                std::uint64_t off, IoCb cb)
{
    doIo(true, fd,
         std::span<std::uint8_t>(const_cast<std::uint8_t *>(buf.data()),
                                 buf.size()),
         off, std::move(cb));
}

void
IoUring::doIo(bool write, int fd, std::span<std::uint8_t> buf,
              std::uint64_t off, IoCb cb)
{
    OpenFile *of = p_.file(fd);
    if (!of) {
        k_.eq().after(k_.costs().uringUserSubmitNs,
                      [cb = std::move(cb)]() {
                          cb(errOf(fs::FsStatus::Inval), IoTrace{});
                      });
        return;
    }
    fs::Inode *node = k_.vfs().fs().inode(of->ino);
    sim::panicIf(node == nullptr, "io_uring on dead inode");

    const Time start = k_.eq().now();
    CpuModel &cpu = k_.cpu();
    const CostModel &c = k_.costs();

    obs::TraceId trace = 0;
    if (obs::Tracer *t = k_.tracer()) {
        trace = t->newTrace(p_.pasid());
        const std::uint16_t track
            = t->track("uring.p" + std::to_string(p_.pid()));
        const char *name = write ? "uring.pwrite" : "uring.pread";
        cb = [this, t, track, name, trace, start,
              cb = std::move(cb)](long long res, IoTrace tr) {
            obs::RequestBreakdown b;
            b.userNs = tr.userNs;
            b.kernelNs = tr.kernelNs;
            b.translateNs = tr.translateNs;
            b.deviceNs = tr.deviceNs;
            b.bytes = res > 0 ? static_cast<std::uint64_t>(res) : 0;
            t->request(track, name, trace, start, k_.eq().now(), b);
            cb(res, tr);
        };
    }

    const std::uint64_t n
        = write ? buf.size()
                : (off >= node->size
                       ? 0
                       : std::min<std::uint64_t>(buf.size(),
                                                 node->size - off));
    if (n == 0) {
        k_.eq().after(cpu.scaled(c.uringUserSubmitNs + c.uringUserReapNs),
                      [cb = std::move(cb)]() { cb(0, IoTrace{}); });
        return;
    }

    // Extension writes fall back to the full allocation path.
    if (write && off + n > node->size) {
        TenantScope ts(k_, p_.pasid());
        std::vector<fs::Extent> added;
        fs::FsStatus st = k_.vfs().fs().extendTo(*node, off + n, &added);
        if (st != fs::FsStatus::Ok) {
            k_.eq().after(c.uringUserSubmitNs, [cb = std::move(cb), st]() {
                cb(errOf(st), IoTrace{});
            });
            return;
        }
        if (k_.bypassdHooks() && !added.empty())
            k_.bypassdHooks()->onExtentsAdded(*node, added);
        if (k_.bypassdHooks())
            k_.bypassdHooks()->onMetadataChange(*node, p_.pid());
    }

    // Submit side: user publishes the SQE, the SQPOLL thread picks it up
    // and runs the (fixed-buffer discounted) kernel stack. Handing work
    // between two schedulable entities pays the reschedule penalty when
    // cores are oversubscribed.
    const Time kernelWork = static_cast<Time>(
        static_cast<double>(c.vfsCost(n)) * c.uringVfsFactor)
        + c.blockLayerNs + c.nvmeDriverNs;
    Time submitDelay = cpu.scaled(c.uringUserSubmitNs
                                  + c.uringPollIntervalNs + kernelWork)
                       + cpu.reschedulePenalty();

    // Same-inode write serialization applies on the poller as well.
    if (write) {
        const Time lockAt = std::max(k_.eq().now() + submitDelay,
                                     node->writeLockFreeAt);
        node->writeLockFreeAt = lockAt + cpu.scaled(kernelWork) / 2;
        submitDelay = lockAt - k_.eq().now();
    }

    const TenantId tenant = p_.pasid();
    k_.eq().after(submitDelay, [this, node, buf, off, n, start, write,
                                trace, tenant,
                                cb = std::move(cb)]() mutable {
        std::vector<fs::Seg> segs;
        fs::FsStatus st = k_.vfs().fs().mapRange(*node, off, n, &segs);
        if (st != fs::FsStatus::Ok) {
            cb(errOf(st), IoTrace{});
            return;
        }
        k_.deviceIo(write ? ssd::Op::Write : ssd::Op::Read, segs,
                    buf.subspan(0, n),
                    [this, node, n, start, write, tenant,
                     cb = std::move(cb)](ssd::Status dst, Time devNs) {
                        TenantScope ts(k_, tenant);
                        k_.vfs().fs().touch(*node, write);
                        const Time reap
                            = k_.cpu().scaled(k_.costs().uringUserReapNs)
                              + k_.cpu().reschedulePenalty();
                        k_.eq().after(reap, [this, n, start, devNs, dst,
                                             cb = std::move(cb)]() {
                            IoTrace tr;
                            const Time total = k_.eq().now() - start;
                            tr.deviceNs = devNs;
                            tr.kernelNs = total - devNs;
                            cb(dst == ssd::Status::Success
                                   ? static_cast<long long>(n)
                                   : devErr(dst),
                               tr);
                        });
                    },
                    trace, tenant);
    });
}

} // namespace bpd::kern
