#include "kern/kernel.hpp"

#include <algorithm>
#include <cstring>

#include "qos/qos.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace bpd::kern {

using fs::kOpenAppend;
using fs::kOpenCreate;
using fs::kOpenDirect;
using fs::kOpenRead;
using fs::kOpenTrunc;
using fs::kOpenWrite;

namespace {

/** Non-const view for device DMA sources (the device only reads them). */
std::span<std::uint8_t>
unconst(std::span<const std::uint8_t> s)
{
    return {const_cast<std::uint8_t *>(s.data()), s.size()};
}

} // namespace

int
devErr(ssd::Status st)
{
    return errOf(st == ssd::Status::DeviceEvicted ? fs::FsStatus::NoDev
                                                  : fs::FsStatus::Inval);
}

Kernel::Kernel(sim::EventQueue &eq, mem::FrameAllocator &fa,
               iommu::Iommu &iommu, fs::Vfs &vfs, ssd::NvmeDevice &dev,
               CostModel costs, KernelConfig cfg)
    : eq_(eq), fa_(fa), iommu_(iommu), vfs_(vfs), dev_(dev), costs_(costs),
      cpu_(cfg.hwThreads), pageCache_(cfg.pageCacheBytes)
{
    kernelQp_ = dev_.createQueuePair(kNoPasid, cfg.kernelQueueDepth,
                                     /*vbaMode=*/false);
    sim::panicIf(kernelQp_ == nullptr, "kernel queue creation failed");
    kq_ = std::make_unique<ssd::CommandDispatcher>(*kernelQp_);
    kernelQueueDepth_ = cfg.kernelQueueDepth;
    slots_.push_back(Slot{&dev_, &iommu_, 0, kq_.get()});
}

void
Kernel::attachSlot(ssd::NvmeDevice &dev, iommu::Iommu &iommu,
                   std::uint64_t base)
{
    if (slotBytes_ == 0) {
        sim::panicIf(base == 0, "slot 1 must have a nonzero base");
        slotBytes_ = base;
    }
    sim::panicIf(base != slots_.size() * slotBytes_,
                 "attachSlot: non-uniform slot base");
    ssd::QueuePair *qp
        = dev.createQueuePair(kNoPasid, kernelQueueDepth_,
                              /*vbaMode=*/false);
    sim::panicIf(qp == nullptr, "kernel slot queue creation failed");
    slotQueues_.push_back(std::make_unique<ssd::CommandDispatcher>(*qp));
    slots_.push_back(Slot{&dev, &iommu, base, slotQueues_.back().get()});
    // Bind every live process into the new slot's IOMMU in pid order —
    // hot-plug rebuilds mappings deterministically.
    std::vector<Pid> pids;
    pids.reserve(procs_.size());
    for (const auto &[pid, proc] : procs_)
        pids.push_back(pid);
    std::sort(pids.begin(), pids.end());
    for (Pid pid : pids) {
        Process &p = *procs_[pid];
        iommu.bindPasid(p.pasid(), &p.aspace().pageTable());
    }
}

Process &
Kernel::createProcess(fs::Credentials creds)
{
    const Pid pid = nextPid_++;
    auto proc = std::make_unique<Process>(pid, creds, fa_);
    Process &ref = *proc;
    procs_[pid] = std::move(proc);
    for (Slot &s : slots_)
        s.iommu->bindPasid(ref.pasid(), &ref.aspace().pageTable());
    return ref;
}

void
Kernel::destroyProcess(Pid pid)
{
    auto it = procs_.find(pid);
    if (it == procs_.end())
        return;
    for (Slot &s : slots_)
        s.iommu->unbindPasid(it->second->pasid());
    procs_.erase(it);
}

Process *
Kernel::process(Pid pid)
{
    auto it = procs_.find(pid);
    return it == procs_.end() ? nullptr : it->second.get();
}

void
Kernel::forEachProcess(const std::function<void(Process &)> &fn)
{
    for (auto &[pid, proc] : procs_)
        fn(*proc);
}

std::uint16_t
Kernel::ktrack(Pid pid)
{
    auto it = obsTracks_.find(pid);
    if (it != obsTracks_.end())
        return it->second;
    const std::uint16_t t
        = trace_->track("kern.p" + std::to_string(pid));
    obsTracks_[pid] = t;
    return t;
}

IoCb
Kernel::wrapRequest(const char *name, Pid pid, obs::TraceId trace,
                    IoCb cb)
{
    const Time start = eq_.now();
    const std::uint16_t track = ktrack(pid);
    return [this, name, track, trace, start,
            cb = std::move(cb)](long long n, IoTrace tr) {
        obs::RequestBreakdown b;
        b.userNs = tr.userNs;
        b.kernelNs = tr.kernelNs;
        b.translateNs = tr.translateNs;
        b.deviceNs = tr.deviceNs;
        b.bytes = n > 0 ? static_cast<std::uint64_t>(n) : 0;
        trace_->request(track, name, trace, start, eq_.now(), b);
        cb(n, tr);
    };
}

fs::FsStatus
Kernel::setNamespaceRoot(Process &p, const std::string &root)
{
    InodeNum ino;
    fs::FsStatus st = vfs_.fs().resolve(root, &ino);
    if (st == fs::FsStatus::NoEnt)
        st = vfs_.fs().mkdir(root, 0777, fs::Credentials{0, 0}, &ino);
    if (st != fs::FsStatus::Ok)
        return st;
    if (!vfs_.fs().inode(ino)->isDir())
        return fs::FsStatus::NotDir;
    p.nsRoot = root;
    return fs::FsStatus::Ok;
}

std::string
Kernel::nsPath(const Process &p, const std::string &path) const
{
    if (p.nsRoot.empty())
        return path;
    return p.nsRoot + path;
}

void
Kernel::deviceIo(ssd::Op op, const std::vector<fs::Seg> &segs,
                 std::span<std::uint8_t> buf,
                 std::function<void(ssd::Status, Time)> cb,
                 obs::TraceId trace, TenantId tenant)
{
    // QoS gate: charge the tenant's token buckets before touching any
    // device queue. An over-limit submission parks whole on the
    // tenant's FIFO (never dropped, never reordered) and issues when
    // the buckets refill. Flushes do not pass through deviceIo, so
    // every call here is data-path ops/bytes.
    if (qos_ && !segs.empty()) {
        std::uint64_t bytes = 0;
        for (const auto &seg : segs)
            bytes += seg.len;
        if (!qos_->tryAcquire(tenant, segs.size(), bytes)) {
            qos_->park(tenant, segs.size(), bytes,
                       [this, op, segs, buf, cb = std::move(cb), trace,
                        tenant]() mutable {
                           deviceIoNow(op, segs, buf, std::move(cb),
                                       trace, tenant);
                       });
            return;
        }
    }
    deviceIoNow(op, segs, buf, std::move(cb), trace, tenant);
}

void
Kernel::deviceIoNow(ssd::Op op, const std::vector<fs::Seg> &segs,
                    std::span<std::uint8_t> buf,
                    std::function<void(ssd::Status, Time)> cb,
                    obs::TraceId trace, TenantId tenant)
{
    struct Agg
    {
        std::size_t remaining;
        ssd::Status worst = ssd::Status::Success;
        Time start;
        std::function<void(ssd::Status, Time)> cb;
    };
    auto agg = std::make_shared<Agg>();
    agg->remaining = segs.size();
    agg->start = eq_.now();
    agg->cb = std::move(cb);
    if (segs.empty()) {
        eq_.after(0, [agg]() { agg->cb(ssd::Status::Success, 0); });
        return;
    }
    std::uint64_t off = 0;
    for (const auto &seg : segs) {
        // Route by volume address: the placement layer guarantees an
        // extent never straddles a slot, so one seg is one device.
        Slot &slot = slots_[slotOf(seg.addr)];
        sim::panicIf(slotOf(seg.addr) != slotOf(seg.addr + seg.len - 1),
                     "deviceIo seg straddles a device slot");
        ssd::Command cmd;
        cmd.op = op;
        cmd.addr = seg.addr - slot.base;
        cmd.addrIsVba = false;
        cmd.len = static_cast<std::uint32_t>(seg.len);
        cmd.hostBuf = buf.subspan(off, seg.len);
        cmd.trace = trace;
        cmd.tenant = tenant;
        off += seg.len;
        const bool ok = slot.kq->submit(cmd, [this, agg](
                                             const ssd::Completion &c) {
            if (c.status != ssd::Status::Success)
                agg->worst = c.status;
            if (--agg->remaining == 0)
                agg->cb(agg->worst, eq_.now() - agg->start);
        });
        sim::panicIf(!ok, "kernel queue overflow");
    }
}

void
Kernel::sysOpen(Process &p, const std::string &path, std::uint32_t flags,
                std::uint16_t mode, IntCb cb)
{
    noteSyscall(p);
    const Time cost = cpu_.scaled(costs_.userToKernelNs + costs_.openBaseNs
                                  + costs_.kernelToUserNs);
    eq_.after(cost, [this, &p, path = nsPath(p, path), flags, mode,
                     cb = std::move(cb)]() {
        TenantScope ts(*this, p.pasid());
        InodeNum ino;
        fs::FsStatus st = vfs_.open(path, flags, mode, p.creds(), &ino);
        if (st != fs::FsStatus::Ok) {
            cb(errOf(st));
            return;
        }
        fs::Inode *node = vfs_.fs().inode(ino);
        if (!(flags & kOpenBypassdIntent)) {
            node->kernelOpens++;
            if (hooks_)
                hooks_->onKernelOpen(*node);
        }
        if ((flags & kOpenTrunc) && (flags & kOpenWrite)) {
            if (hooks_) {
                hooks_->onTruncated(*node);
                hooks_->onMetadataChange(*node, p.pid());
            }
        }
        OpenFile of;
        of.ino = ino;
        of.flags = flags;
        of.path = path;
        cb(p.installFd(std::move(of)));
    });
}

void
Kernel::sysClose(Process &p, int fd, IntCb cb)
{
    noteSyscall(p);
    const Time cost = cpu_.scaled(costs_.userToKernelNs + 300
                                  + costs_.kernelToUserNs);
    eq_.after(cost, [this, &p, fd, cb = std::move(cb)]() {
        TenantScope ts(*this, p.pasid());
        OpenFile *of = p.file(fd);
        if (!of) {
            cb(errOf(fs::FsStatus::Inval));
            return;
        }
        fs::Inode *node = vfs_.fs().inode(of->ino);
        if (node) {
            // Deferred timestamp update lands at close (Section 4.4).
            vfs_.fs().fsyncMeta(*node);
            if (!(of->flags & kOpenBypassdIntent) && node->kernelOpens > 0)
                node->kernelOpens--;
        }
        p.removeFd(fd);
        cb(0);
    });
}

void
Kernel::sysPread(Process &p, int fd, std::span<std::uint8_t> buf,
                 std::uint64_t off, IoCb cb, obs::TraceId trace)
{
    noteSyscall(p);
    if (trace_ && trace == 0) {
        trace = trace_->newTrace(p.pasid());
        cb = wrapRequest("sync.pread", p.pid(), trace, std::move(cb));
    }
    OpenFile *of = p.file(fd);
    if (!of || !(of->flags & kOpenRead)) {
        eq_.after(costs_.userToKernelNs, [cb = std::move(cb)]() {
            cb(errOf(fs::FsStatus::Inval), IoTrace{});
        });
        return;
    }
    fs::Inode *node = vfs_.fs().inode(of->ino);
    sim::panicIf(node == nullptr, "open fd with dead inode");
    if (of->flags & kOpenDirect)
        directRead(p, *node, buf, off, std::move(cb), trace);
    else
        bufferedRead(p, *node, buf, off, std::move(cb), trace);
}

void
Kernel::sysPwrite(Process &p, int fd, std::span<const std::uint8_t> buf,
                  std::uint64_t off, IoCb cb, obs::TraceId trace)
{
    noteSyscall(p);
    if (trace_ && trace == 0) {
        trace = trace_->newTrace(p.pasid());
        cb = wrapRequest("sync.pwrite", p.pid(), trace, std::move(cb));
    }
    OpenFile *of = p.file(fd);
    if (!of || !(of->flags & kOpenWrite)) {
        eq_.after(costs_.userToKernelNs, [cb = std::move(cb)]() {
            cb(errOf(fs::FsStatus::Inval), IoTrace{});
        });
        return;
    }
    fs::Inode *node = vfs_.fs().inode(of->ino);
    sim::panicIf(node == nullptr, "open fd with dead inode");
    if (of->flags & kOpenDirect)
        directWrite(p, *node, buf, off, std::move(cb), trace);
    else
        bufferedWrite(p, *node, buf, off, std::move(cb), trace);
}

void
Kernel::sysRead(Process &p, int fd, std::span<std::uint8_t> buf, IoCb cb)
{
    OpenFile *of = p.file(fd);
    const std::uint64_t off = of ? of->offset : 0;
    sysPread(p, fd, buf, off,
             [&p, fd, cb = std::move(cb)](long long n, IoTrace tr) {
                 if (n > 0) {
                     if (OpenFile *f = p.file(fd))
                         f->offset += static_cast<std::uint64_t>(n);
                 }
                 cb(n, tr);
             });
}

void
Kernel::sysWrite(Process &p, int fd, std::span<const std::uint8_t> buf,
                 IoCb cb)
{
    OpenFile *of = p.file(fd);
    const std::uint64_t off = of ? of->offset : 0;
    sysPwrite(p, fd, buf, off,
              [&p, fd, cb = std::move(cb)](long long n, IoTrace tr) {
                  if (n > 0) {
                      if (OpenFile *f = p.file(fd))
                          f->offset += static_cast<std::uint64_t>(n);
                  }
                  cb(n, tr);
              });
}

void
Kernel::directRead(Process &p, fs::Inode &ino, std::span<std::uint8_t> buf,
                   std::uint64_t off, IoCb cb, obs::TraceId trace)
{
    const Pid pid = p.pid();
    const TenantId tenant = p.pasid();
    const Time start = eq_.now();
    const std::uint64_t n
        = off >= ino.size
              ? 0
              : std::min<std::uint64_t>(buf.size(), ino.size - off);
    if (n == 0) {
        const Time cost = cpu_.scaled(costs_.userToKernelNs
                                      + costs_.vfsBufferedNs
                                      + costs_.kernelToUserNs);
        eq_.after(cost, [cb = std::move(cb), cost]() {
            IoTrace tr;
            tr.kernelNs = cost;
            cb(0, tr);
        });
        return;
    }

    const Time submitCost
        = cpu_.scaled(costs_.userToKernelNs + costs_.vfsCost(n)
                      + costs_.blockLayerNs + costs_.nvmeDriverNs);
    eq_.after(submitCost, [this, &ino, buf, off, n, start, pid, tenant,
                           trace, cb = std::move(cb)]() mutable {
        TenantScope ts(*this, tenant);
        if (trace_ && trace_->wants(obs::Level::Layers)) {
            // Syscall entry through driver submit (Table 1 rows 1-4).
            trace_->span(ktrack(pid), "kern.vfs_submit", trace, start,
                         eq_.now());
        }
        // Device I/O happens on the sector-aligned envelope; unaligned
        // requests bounce through a kernel buffer.
        const std::uint64_t aStart = off & ~(kSectorBytes - 1);
        const std::uint64_t aEnd
            = (off + n + kSectorBytes - 1) & ~(kSectorBytes - 1);
        const bool aligned = (aStart == off) && (aEnd == off + n);
        std::vector<fs::Seg> segs;
        fs::FsStatus st = vfs_.fs().mapRange(ino, aStart, aEnd - aStart,
                                             &segs);
        if (st != fs::FsStatus::Ok) {
            cb(errOf(st), IoTrace{});
            return;
        }
        std::shared_ptr<std::vector<std::uint8_t>> bounce;
        std::span<std::uint8_t> target = buf.subspan(0, n);
        if (!aligned) {
            bounce = std::make_shared<std::vector<std::uint8_t>>(
                aEnd - aStart);
            target = std::span<std::uint8_t>(*bounce);
        }
        deviceIo(
            ssd::Op::Read, segs, target,
            [this, buf, off, n, aStart, bounce, start, pid, tenant, trace,
             &ino, cb = std::move(cb)](ssd::Status dst, Time devNs) {
                if (bounce) {
                    std::memcpy(buf.data(),
                                bounce->data() + (off - aStart), n);
                }
                TenantScope ts(*this, tenant);
                vfs_.fs().touch(ino, false);
                const Time exitCost
                    = cpu_.scaled(costs_.kernelToUserNs);
                const Time exitStart = eq_.now();
                eq_.after(exitCost, [n, start, exitStart, pid, trace,
                                     devNs, dst, this,
                                     cb = std::move(cb)]() {
                    if (trace_ && trace_->wants(obs::Level::Layers)) {
                        trace_->span(ktrack(pid), "kern.exit", trace,
                                     exitStart, eq_.now());
                    }
                    IoTrace tr;
                    const Time total = eq_.now() - start;
                    tr.deviceNs = devNs;
                    tr.kernelNs = total - devNs;
                    cb(dst == ssd::Status::Success
                           ? static_cast<long long>(n)
                           : devErr(dst),
                       tr);
                });
            },
            trace, tenant);
    });
}

void
Kernel::directWrite(Process &p, fs::Inode &ino,
                    std::span<const std::uint8_t> buf, std::uint64_t off,
                    IoCb cb, obs::TraceId trace)
{
    const Pid pid = p.pid();
    const TenantId tenant = p.pasid();
    TenantScope ts(*this, tenant); // covers the synchronous extendTo
    const Time start = eq_.now();
    const std::uint64_t n = buf.size();
    if (n == 0) {
        eq_.after(costs_.userToKernelNs, [cb = std::move(cb)]() {
            cb(0, IoTrace{});
        });
        return;
    }

    // Extension (append): allocate + zero new blocks first (Table 3).
    const bool extends = off + n > ino.size;
    Time allocCost = 0;
    if (extends) {
        std::vector<fs::Extent> added;
        fs::FsStatus st = vfs_.fs().extendTo(ino, off + n, &added);
        if (st != fs::FsStatus::Ok) {
            eq_.after(costs_.userToKernelNs,
                      [cb = std::move(cb), st]() {
                          cb(errOf(st), IoTrace{});
                      });
            return;
        }
        allocCost = added.size() * costs_.allocPerExtentNs;
        if (hooks_) {
            if (!added.empty())
                hooks_->onExtentsAdded(ino, added);
            hooks_->onMetadataChange(ino, p.pid());
        }
    }

    // ext4 per-inode exclusive write lock: kernel-interface writes to the
    // same file serialize through the VFS/ext4 section (Section 6.5).
    const Time entry = eq_.now() + cpu_.scaled(costs_.userToKernelNs);
    const Time lockAt = std::max(entry, ino.writeLockFreeAt);
    const Time vfsDone
        = lockAt + cpu_.scaled(costs_.vfsCost(n) + allocCost);
    ino.writeLockFreeAt = vfsDone;
    const Time submitAt
        = vfsDone
          + cpu_.scaled(costs_.blockLayerNs + costs_.nvmeDriverNs);

    eq_.schedule(submitAt, [this, &ino, buf, off, n, start, pid, tenant,
                            trace, cb = std::move(cb)]() mutable {
        TenantScope ts(*this, tenant);
        if (trace_ && trace_->wants(obs::Level::Layers)) {
            // Includes any wait on the per-inode ext4 write lock.
            trace_->span(ktrack(pid), "kern.vfs_submit", trace, start,
                         eq_.now());
        }
        const std::uint64_t aStart = off & ~(kSectorBytes - 1);
        const std::uint64_t aEnd
            = (off + n + kSectorBytes - 1) & ~(kSectorBytes - 1);
        const bool aligned = (aStart == off) && (aEnd == off + n);
        std::vector<fs::Seg> segs;
        fs::FsStatus st = vfs_.fs().mapRange(ino, aStart, aEnd - aStart,
                                             &segs);
        if (st != fs::FsStatus::Ok) {
            cb(errOf(st), IoTrace{});
            return;
        }

        auto finish = [this, n, start, pid, tenant, trace, &ino,
                       cb = std::move(cb)](ssd::Status dst, Time devNs) {
            TenantScope ts(*this, tenant);
            vfs_.fs().touch(ino, true);
            const Time exitCost = cpu_.scaled(costs_.kernelToUserNs);
            const Time exitStart = eq_.now();
            eq_.after(exitCost, [this, n, start, exitStart, pid, trace,
                                 devNs, dst, cb = std::move(cb)]() {
                if (trace_ && trace_->wants(obs::Level::Layers)) {
                    trace_->span(ktrack(pid), "kern.exit", trace,
                                 exitStart, eq_.now());
                }
                IoTrace tr;
                const Time total = eq_.now() - start;
                tr.deviceNs = devNs;
                tr.kernelNs = total - devNs;
                cb(dst == ssd::Status::Success
                       ? static_cast<long long>(n)
                       : devErr(dst),
                   tr);
            });
        };

        if (aligned) {
            deviceIo(ssd::Op::Write, segs, unconst(buf),
                     std::move(finish), trace, tenant);
            return;
        }
        // Unaligned: read-modify-write of the sector envelope through a
        // kernel bounce buffer.
        auto bounce = std::make_shared<std::vector<std::uint8_t>>(
            aEnd - aStart);
        deviceIo(
            ssd::Op::Read, segs, std::span<std::uint8_t>(*bounce),
            [this, segs, bounce, buf, off, n, aStart, trace, tenant,
             finish = std::move(finish)](ssd::Status rst,
                                         Time rdevNs) mutable {
                if (rst != ssd::Status::Success) {
                    finish(rst, rdevNs);
                    return;
                }
                std::memcpy(bounce->data() + (off - aStart),
                            buf.data(), n);
                deviceIo(ssd::Op::Write, segs,
                         std::span<std::uint8_t>(*bounce),
                         [bounce, rdevNs, finish = std::move(finish)](
                             ssd::Status wst, Time wdevNs) {
                             finish(wst, rdevNs + wdevNs);
                         },
                         trace, tenant);
            },
            trace, tenant);
    });
}

void
Kernel::bufferedRead(Process &p, fs::Inode &ino,
                     std::span<std::uint8_t> buf, std::uint64_t off,
                     IoCb cb, obs::TraceId trace)
{
    const TenantId tenant = p.pasid();
    TenantScope ts(*this, tenant); // covers the miss-detection lookups
    const Time start = eq_.now();
    const std::uint64_t n
        = off >= ino.size
              ? 0
              : std::min<std::uint64_t>(buf.size(), ino.size - off);

    const std::uint64_t firstPage = off / kBlockBytes;
    const std::uint64_t lastPage
        = n ? (off + n - 1) / kBlockBytes : firstPage;
    const std::uint64_t pages = n ? lastPage - firstPage + 1 : 0;

    Time cost = costs_.userToKernelNs + costs_.vfsBufferedNs
                + pages * costs_.pageCacheLookupNs + costs_.copyCost(n);

    // Identify misses and fetch them from the device.
    struct MissFetch
    {
        std::uint64_t pageIdx;
        std::vector<fs::Seg> segs;
    };
    std::vector<std::uint64_t> misses;
    for (std::uint64_t pg = firstPage; pg < firstPage + pages; pg++) {
        if (!pageCache_.find(ino.ino, pg))
            misses.push_back(pg);
    }

    auto finish = [this, &ino, buf, off, n, start, tenant,
                   cb = std::move(cb)]() {
        TenantScope ts(*this, tenant);
        // Functional copy from cache pages into the user buffer.
        std::uint64_t done = 0;
        while (done < n) {
            const std::uint64_t cur = off + done;
            const std::uint64_t pg = cur / kBlockBytes;
            const std::size_t pgOff = cur % kBlockBytes;
            const std::size_t chunk = std::min<std::uint64_t>(
                n - done, kBlockBytes - pgOff);
            fs::PageCache::Page *page = pageCache_.find(ino.ino, pg);
            sim::panicIf(page == nullptr, "buffered read lost page");
            std::memcpy(buf.data() + done, page->data.data() + pgOff,
                        chunk);
            done += chunk;
        }
        vfs_.fs().touch(ino, false);
        IoTrace tr;
        tr.kernelNs = eq_.now() - start + cpu_.scaled(costs_.kernelToUserNs);
        eq_.after(cpu_.scaled(costs_.kernelToUserNs),
                  [n, tr, cb = std::move(cb)]() mutable {
                      cb(static_cast<long long>(n), tr);
                  });
    };

    if (misses.empty()) {
        eq_.after(cpu_.scaled(cost), finish);
        return;
    }

    // Fetch all missing pages, then complete.
    eq_.after(cpu_.scaled(cost), [this, &ino, misses, trace, tenant,
                                  finish = std::move(finish)]() mutable {
        auto remaining = std::make_shared<std::size_t>(misses.size());
        for (std::uint64_t pg : misses) {
            auto scratch = std::make_shared<
                std::vector<std::uint8_t>>(kBlockBytes, 0);
            auto installPage = [this, &ino, pg, scratch, remaining,
                                tenant, finish]() {
                TenantScope ts(*this, tenant);
                std::unique_ptr<fs::PageCache::Page> evicted;
                fs::PageCache::Page *page
                    = pageCache_.insert(ino.ino, pg, &evicted);
                std::memcpy(page->data.data(), scratch->data(),
                            kBlockBytes);
                if (evicted) {
                    // Write back a dirty victim asynchronously, billed
                    // to the tenant that last touched the page.
                    const TenantId vt = evicted->tenant;
                    std::vector<fs::Seg> vsegs;
                    if (vfs_.fs().mapRange(ino, evicted->index
                                                    * kBlockBytes,
                                           kBlockBytes, &vsegs)
                        == fs::FsStatus::Ok) {
                        auto keep = std::make_shared<
                            std::unique_ptr<fs::PageCache::Page>>(
                            std::move(evicted));
                        deviceIo(ssd::Op::Write, vsegs,
                                 std::span<std::uint8_t>(
                                     (*keep)->data.data(), kBlockBytes),
                                 [keep](ssd::Status, Time) {}, 0, vt);
                    }
                }
                if (--*remaining == 0)
                    finish();
            };
            // Files are always fully mapped up to logicalEnd; a page past
            // that is beyond EOF and reads as zeros.
            if (pg >= ino.extents.logicalEnd()) {
                eq_.after(0, installPage);
                continue;
            }
            std::vector<fs::Seg> segs;
            fs::FsStatus st = vfs_.fs().mapRange(ino, pg * kBlockBytes,
                                                 kBlockBytes, &segs);
            sim::panicIf(st != fs::FsStatus::Ok,
                         "mapped page failed mapRange");
            deviceIo(ssd::Op::Read, segs,
                     std::span<std::uint8_t>(scratch->data(), kBlockBytes),
                     [installPage](ssd::Status, Time) { installPage(); },
                     trace, tenant);
        }
    });
}

void
Kernel::bufferedWrite(Process &p, fs::Inode &ino,
                      std::span<const std::uint8_t> buf, std::uint64_t off,
                      IoCb cb, obs::TraceId trace)
{
    (void)trace; // buffered writes complete in the page cache
    const TenantId tenant = p.pasid();
    TenantScope ts(*this, tenant); // covers the synchronous extendTo
    const Time start = eq_.now();
    const std::uint64_t n = buf.size();

    // Allocate backing blocks up front (simplified delayed allocation).
    if (off + n > ino.size) {
        std::vector<fs::Extent> added;
        fs::FsStatus st = vfs_.fs().extendTo(ino, off + n, &added);
        if (st != fs::FsStatus::Ok) {
            eq_.after(costs_.userToKernelNs, [cb = std::move(cb), st]() {
                cb(errOf(st), IoTrace{});
            });
            return;
        }
        if (hooks_) {
            if (!added.empty())
                hooks_->onExtentsAdded(ino, added);
            hooks_->onMetadataChange(ino, p.pid());
        }
    }

    const std::uint64_t firstPage = off / kBlockBytes;
    const std::uint64_t lastPage = n ? (off + n - 1) / kBlockBytes : firstPage;
    const std::uint64_t pages = n ? lastPage - firstPage + 1 : 0;
    const Time cost = costs_.userToKernelNs + costs_.vfsBufferedNs
                      + pages * costs_.pageCacheLookupNs
                      + costs_.copyCost(n) + costs_.kernelToUserNs;

    eq_.after(cpu_.scaled(cost), [this, &ino, buf, off, n, start, tenant,
                                  cb = std::move(cb)]() {
        TenantScope ts(*this, tenant);
        std::uint64_t done = 0;
        while (done < n) {
            const std::uint64_t cur = off + done;
            const std::uint64_t pg = cur / kBlockBytes;
            const std::size_t pgOff = cur % kBlockBytes;
            const std::size_t chunk = std::min<std::uint64_t>(
                n - done, kBlockBytes - pgOff);
            std::unique_ptr<fs::PageCache::Page> evicted;
            fs::PageCache::Page *page
                = pageCache_.insert(ino.ino, pg, &evicted);
            if (evicted) {
                const TenantId vt = evicted->tenant;
                std::vector<fs::Seg> vsegs;
                if (vfs_.fs().mapRange(ino,
                                       evicted->index * kBlockBytes,
                                       kBlockBytes, &vsegs)
                    == fs::FsStatus::Ok) {
                    auto keep = std::make_shared<
                        std::unique_ptr<fs::PageCache::Page>>(
                        std::move(evicted));
                    deviceIo(ssd::Op::Write, vsegs,
                             std::span<std::uint8_t>((*keep)->data.data(),
                                                     kBlockBytes),
                             [keep](ssd::Status, Time) {}, 0, vt);
                }
            }
            std::memcpy(page->data.data() + pgOff, buf.data() + done,
                        chunk);
            page->dirty = true;
            done += chunk;
        }
        vfs_.fs().touch(ino, true);
        IoTrace tr;
        tr.kernelNs = eq_.now() - start;
        cb(static_cast<long long>(n), tr);
    });
}

void
Kernel::writebackDirty(fs::Inode &ino, std::function<void(Time)> done)
{
    auto dirty = pageCache_.collectDirty(ino.ino);
    if (dirty.empty()) {
        done(0);
        return;
    }
    const Time start = eq_.now();
    auto remaining = std::make_shared<std::size_t>(dirty.size());
    for (fs::PageCache::Page *page : dirty) {
        std::vector<fs::Seg> segs;
        fs::FsStatus st = vfs_.fs().mapRange(
            ino, page->index * kBlockBytes, kBlockBytes, &segs);
        if (st != fs::FsStatus::Ok) {
            if (--*remaining == 0)
                done(eq_.now() - start);
            continue;
        }
        // Each page is billed to the tenant that last touched it.
        deviceIo(ssd::Op::Write, segs,
                 std::span<std::uint8_t>(page->data.data(), kBlockBytes),
                 [this, remaining, start, done](ssd::Status, Time) {
                     if (--*remaining == 0)
                         done(eq_.now() - start);
                 },
                 0, page->tenant);
    }
}

void
Kernel::sysFsync(Process &p, int fd, IntCb cb)
{
    noteSyscall(p);
    OpenFile *of = p.file(fd);
    if (!of) {
        eq_.after(costs_.userToKernelNs, [cb = std::move(cb)]() {
            cb(errOf(fs::FsStatus::Inval));
        });
        return;
    }
    const TenantId tenant = p.pasid();
    fs::Inode *node = vfs_.fs().inode(of->ino);
    const Time cost
        = cpu_.scaled(costs_.userToKernelNs + costs_.fsyncMetaNs);
    eq_.after(cost, [this, node, tenant, cb = std::move(cb)]() mutable {
        writebackDirty(*node, [this, node, tenant,
                               cb = std::move(cb)](Time) {
            // NVMe flush, then metadata commit.
            ssd::Command cmd;
            cmd.op = ssd::Op::Flush;
            cmd.tenant = tenant;
            const bool ok = kq_->submit(
                cmd, [this, node, tenant, cb = std::move(cb)](
                         const ssd::Completion &) {
                    TenantScope ts(*this, tenant);
                    vfs_.fs().fsyncMeta(*node);
                    eq_.after(cpu_.scaled(costs_.kernelToUserNs),
                              [cb = std::move(cb)]() { cb(0); });
                });
            sim::panicIf(!ok, "kernel queue overflow on flush");
        });
    });
}

void
Kernel::sysFallocate(Process &p, int fd, std::uint64_t off,
                     std::uint64_t len, IntCb cb)
{
    noteSyscall(p);
    OpenFile *of = p.file(fd);
    if (!of || !(of->flags & kOpenWrite)) {
        eq_.after(costs_.userToKernelNs, [cb = std::move(cb)]() {
            cb(errOf(fs::FsStatus::Inval));
        });
        return;
    }
    TenantScope ts(*this, p.pasid()); // covers the synchronous extendTo
    fs::Inode *node = vfs_.fs().inode(of->ino);
    const std::uint64_t oldEnd = node->extents.logicalEnd();
    std::vector<fs::Extent> added;
    fs::FsStatus st = vfs_.fs().extendTo(
        *node, std::max(node->size, off + len), &added);
    // Zeroing happens at device write bandwidth.
    std::uint64_t newBlocks = 0;
    for (const auto &e : added)
        newBlocks += e.count;
    (void)oldEnd;
    const Time zeroCost = static_cast<Time>(
        static_cast<double>(newBlocks * kBlockBytes)
        / dev_.profile().writeBwBytesPerNs);
    const Time cost = cpu_.scaled(
        costs_.userToKernelNs + costs_.vfsExt4Ns
        + added.size() * costs_.allocPerExtentNs + costs_.kernelToUserNs)
        + zeroCost;
    eq_.after(cost, [this, &p, node, st, added, cb = std::move(cb)]() {
        if (st == fs::FsStatus::Ok && hooks_) {
            if (!added.empty())
                hooks_->onExtentsAdded(*node, added);
            hooks_->onMetadataChange(*node, p.pid());
        }
        cb(st == fs::FsStatus::Ok ? 0 : errOf(st));
    });
}

void
Kernel::sysFtruncate(Process &p, int fd, std::uint64_t size, IntCb cb)
{
    noteSyscall(p);
    OpenFile *of = p.file(fd);
    if (!of || !(of->flags & kOpenWrite)) {
        eq_.after(costs_.userToKernelNs, [cb = std::move(cb)]() {
            cb(errOf(fs::FsStatus::Inval));
        });
        return;
    }
    TenantScope ts(*this, p.pasid()); // synchronous truncate/extendTo
    fs::Inode *node = vfs_.fs().inode(of->ino);
    const bool shrinks = size < node->size;
    std::vector<fs::Extent> added;
    fs::FsStatus st;
    if (shrinks)
        st = vfs_.fs().truncate(*node, size);
    else
        st = vfs_.fs().extendTo(*node, size, &added);
    const Time cost
        = cpu_.scaled(costs_.userToKernelNs + costs_.vfsExt4Ns
                      + costs_.kernelToUserNs);
    eq_.after(cost, [this, &p, node, st, shrinks, added,
                     cb = std::move(cb)]() {
        if (st == fs::FsStatus::Ok && hooks_) {
            if (shrinks)
                hooks_->onTruncated(*node);
            else if (!added.empty())
                hooks_->onExtentsAdded(*node, added);
            hooks_->onMetadataChange(*node, p.pid());
        }
        cb(st == fs::FsStatus::Ok ? 0 : errOf(st));
    });
}

void
Kernel::sysUnlink(Process &p, const std::string &path, IntCb cb)
{
    noteSyscall(p);
    const Time cost = cpu_.scaled(costs_.userToKernelNs + costs_.openBaseNs
                                  + costs_.kernelToUserNs);
    eq_.after(cost, [this, &p, path = nsPath(p, path),
                     cb = std::move(cb)]() {
        TenantScope ts(*this, p.pasid());
        cb(errOf(vfs_.fs().unlink(path, p.creds())));
    });
}

void
Kernel::sysRename(Process &p, const std::string &from,
                  const std::string &to, IntCb cb)
{
    noteSyscall(p);
    const Time cost = cpu_.scaled(costs_.userToKernelNs
                                  + 2 * costs_.openBaseNs
                                  + costs_.kernelToUserNs);
    eq_.after(cost, [this, &p, from = nsPath(p, from),
                     to = nsPath(p, to), cb = std::move(cb)]() {
        TenantScope ts(*this, p.pasid());
        cb(errOf(vfs_.fs().rename(from, to, p.creds())));
    });
}

void
Kernel::sysStat(Process &p, const std::string &path, Stat *out, IntCb cb)
{
    noteSyscall(p);
    const Time cost = cpu_.scaled(costs_.userToKernelNs + 500
                                  + costs_.kernelToUserNs);
    eq_.after(cost, [this, path = nsPath(p, path), out,
                     cb = std::move(cb)]() {
        InodeNum ino;
        fs::FsStatus st = vfs_.fs().resolve(path, &ino);
        if (st != fs::FsStatus::Ok) {
            cb(errOf(st));
            return;
        }
        const fs::Inode *node = vfs_.fs().inode(ino);
        out->ino = node->ino;
        out->size = node->size;
        out->mode = node->mode;
        out->uid = node->uid;
        out->gid = node->gid;
        out->mtime = node->mtime;
        cb(0);
    });
}

void
Kernel::appendPath(Process &p, fs::Inode &ino,
                   std::span<const std::uint8_t> buf, std::uint64_t off,
                   IoCb cb, obs::TraceId trace)
{
    noteSyscall(p);
    if (trace_ && trace == 0) {
        trace = trace_->newTrace(p.pasid());
        cb = wrapRequest("sync.append", p.pid(), trace, std::move(cb));
    }
    // Appends route through the kernel: allocate, update metadata, attach
    // new FTEs, then write directly to the device without buffering
    // (Table 3).
    directWrite(p, ino, buf, off, std::move(cb), trace);
}

int
Kernel::setupOpen(Process &p, const std::string &path, std::uint32_t flags,
                  std::uint16_t mode)
{
    InodeNum ino;
    fs::FsStatus st
        = vfs_.open(nsPath(p, path), flags, mode, p.creds(), &ino);
    if (st != fs::FsStatus::Ok)
        return errOf(st);
    fs::Inode *node = vfs_.fs().inode(ino);
    if (!(flags & kOpenBypassdIntent))
        node->kernelOpens++;
    OpenFile of;
    of.ino = ino;
    of.flags = flags;
    of.path = path;
    return p.installFd(std::move(of));
}

long long
Kernel::setupWrite(Process &p, int fd, std::span<const std::uint8_t> buf,
                   std::uint64_t off)
{
    OpenFile *of = p.file(fd);
    if (!of)
        return errOf(fs::FsStatus::Inval);
    fs::Inode *node = vfs_.fs().inode(of->ino);
    if (off + buf.size() > node->size) {
        std::vector<fs::Extent> added;
        fs::FsStatus st = vfs_.fs().extendTo(*node, off + buf.size(),
                                             &added);
        if (st != fs::FsStatus::Ok)
            return errOf(st);
        if (hooks_ && !added.empty())
            hooks_->onExtentsAdded(*node, added);
    }
    std::vector<fs::Seg> segs;
    fs::FsStatus st = vfs_.fs().mapRange(*node, off, buf.size(), &segs);
    if (st != fs::FsStatus::Ok)
        return errOf(st);
    std::uint64_t done = 0;
    for (const auto &seg : segs) {
        vfs_.fs().media().write(seg.addr, buf.subspan(done, seg.len));
        done += seg.len;
    }
    return static_cast<long long>(buf.size());
}

long long
Kernel::setupRead(Process &p, int fd, std::span<std::uint8_t> buf,
                  std::uint64_t off)
{
    OpenFile *of = p.file(fd);
    if (!of)
        return errOf(fs::FsStatus::Inval);
    fs::Inode *node = vfs_.fs().inode(of->ino);
    const std::uint64_t n
        = off >= node->size
              ? 0
              : std::min<std::uint64_t>(buf.size(), node->size - off);
    std::vector<fs::Seg> segs;
    fs::FsStatus st = vfs_.fs().mapRange(*node, off, n, &segs);
    if (st != fs::FsStatus::Ok)
        return errOf(st);
    std::uint64_t done = 0;
    for (const auto &seg : segs) {
        vfs_.fs().media().read(seg.addr, buf.subspan(done, seg.len));
        done += seg.len;
    }
    return static_cast<long long>(n);
}

int
Kernel::setupCreateFile(Process &p, const std::string &path,
                        std::uint64_t size, std::uint64_t seed)
{
    const int fd = setupOpen(p, path,
                             kOpenRead | kOpenWrite | kOpenCreate
                                 | kOpenDirect);
    if (fd < 0)
        return fd;
    OpenFile *of = p.file(fd);
    fs::Inode *node = vfs_.fs().inode(of->ino);
    std::vector<fs::Extent> added;
    fs::FsStatus st = vfs_.fs().extendTo(*node, size, &added);
    if (st != fs::FsStatus::Ok)
        return errOf(st);
    if (hooks_ && !added.empty())
        hooks_->onExtentsAdded(*node, added);
    if (seed != 0) {
        // Fill with a deterministic pattern, block by block, bounded to
        // keep setup cheap for very large files (first 64 MiB only).
        sim::Rng rng(seed);
        std::vector<std::uint8_t> block(kBlockBytes);
        const std::uint64_t fill
            = std::min<std::uint64_t>(size, 64ull << 20);
        for (std::uint64_t off = 0; off < fill; off += kBlockBytes) {
            for (auto &b : block)
                b = static_cast<std::uint8_t>(rng.next());
            const std::size_t n = static_cast<std::size_t>(
                std::min<std::uint64_t>(kBlockBytes, size - off));
            setupWrite(p, fd, std::span<const std::uint8_t>(block.data(),
                                                            n),
                       off);
        }
    }
    return fd;
}

} // namespace bpd::kern
