/**
 * @file
 * Simulated process: credentials, address space (with PASID), file
 * descriptor table. UserLib (the BypassD shim) attaches per process.
 */

#ifndef BPD_KERN_PROCESS_HPP
#define BPD_KERN_PROCESS_HPP

#include <memory>
#include <string>
#include <unordered_map>

#include "common/types.hpp"
#include "fs/types.hpp"
#include "mem/address_space.hpp"

namespace bpd::bypassd {
class UserLib;
}

namespace bpd::kern {

/** An open file description. */
struct OpenFile
{
    InodeNum ino = 0;
    std::uint32_t flags = 0;
    std::uint64_t offset = 0;
    std::string path;
};

class Process
{
  public:
    Process(Pid pid, fs::Credentials creds, mem::FrameAllocator &fa)
        : pid_(pid), creds_(creds),
          aspace_(fa, static_cast<Pasid>(pid) + 100)
    {
    }

    Pid pid() const { return pid_; }
    const fs::Credentials &creds() const { return creds_; }
    mem::AddressSpace &aspace() { return aspace_; }
    Pasid pasid() const { return aspace_.pasid(); }

    /** @name File descriptor table */
    ///@{
    int
    installFd(OpenFile of)
    {
        const int fd = nextFd_++;
        fds_[fd] = std::move(of);
        return fd;
    }

    OpenFile *
    file(int fd)
    {
        auto it = fds_.find(fd);
        return it == fds_.end() ? nullptr : &it->second;
    }

    void removeFd(int fd) { fds_.erase(fd); }

    const std::unordered_map<int, OpenFile> &fds() const { return fds_; }
    ///@}

    /** The BypassD shim library loaded into this process (may be null). */
    bypassd::UserLib *userLib = nullptr;

    /**
     * Mount-namespace root (Section 5.2): every path this process opens
     * is resolved under this prefix, giving containers an isolated view
     * of the file system. Empty = host namespace.
     */
    std::string nsRoot;

  private:
    Pid pid_;
    fs::Credentials creds_;
    mem::AddressSpace aspace_;
    std::unordered_map<int, OpenFile> fds_;
    int nextFd_ = 3;

  public:
    /**
     * Owns the UserLib (type-erased to keep kern independent of the
     * bypassd module). Declared last so it is destroyed FIRST when the
     * process dies: the shim must release its queues and detach from
     * the address space while both still exist.
     */
    std::shared_ptr<void> userLibOwner;
};

} // namespace bpd::kern

#endif // BPD_KERN_PROCESS_HPP
