/**
 * @file
 * io_uring model in its highest-performance configuration (the paper's
 * setup): SQPOLL kernel thread, fixed buffers, user-side CQ polling. No
 * mode switches, but every ring pins an extra kernel polling thread to a
 * hardware thread — the reason io_uring collapses past 12 application
 * threads on a 24-HW-thread machine (Fig. 9).
 */

#ifndef BPD_KERN_IO_URING_HPP
#define BPD_KERN_IO_URING_HPP

#include <span>

#include "kern/kernel.hpp"

namespace bpd::kern {

class IoUring
{
  public:
    /**
     * Create a ring for @p p; pins a SQPOLL kernel thread (one CPU
     * occupant) for the ring's lifetime.
     */
    IoUring(Kernel &k, Process &p);
    ~IoUring();

    IoUring(const IoUring &) = delete;
    IoUring &operator=(const IoUring &) = delete;

    void pread(int fd, std::span<std::uint8_t> buf, std::uint64_t off,
               IoCb cb);
    void pwrite(int fd, std::span<const std::uint8_t> buf,
                std::uint64_t off, IoCb cb);

  private:
    void doIo(bool write, int fd, std::span<std::uint8_t> buf,
              std::uint64_t off, IoCb cb);

    Kernel &k_;
    Process &p_;
};

} // namespace bpd::kern

#endif // BPD_KERN_IO_URING_HPP
