/**
 * @file
 * Linux-native AIO (libaio) model: io_submit batches requests into the
 * same kernel direct-I/O path as sync, io_getevents harvests completions.
 * At QD1 it behaves like sync plus the extra harvest syscall; at high
 * queue depth submissions pipeline and device queueing dominates (KVell's
 * configuration, Section 6.5).
 */

#ifndef BPD_KERN_AIO_HPP
#define BPD_KERN_AIO_HPP

#include <span>
#include <vector>

#include "kern/kernel.hpp"

namespace bpd::kern {

class Aio
{
  public:
    explicit Aio(Kernel &k) : k_(k) {}

    struct Op
    {
        int fd;
        bool write;
        std::span<std::uint8_t> buf;
        std::uint64_t off;
    };

    /** Per-op completion: (index in batch, result, trace). */
    using BatchCb
        = std::function<void(std::size_t, long long, IoTrace)>;

    /**
     * io_submit() a batch. The mode-switch cost is paid once; per-request
     * kernel work pipelines at a fixed spacing; each completion pays the
     * io_getevents harvest overhead.
     */
    void submitBatch(Process &p, std::vector<Op> ops, BatchCb cb);

    /** QD1 convenience wrappers. */
    void pread(Process &p, int fd, std::span<std::uint8_t> buf,
               std::uint64_t off, IoCb cb);
    void pwrite(Process &p, int fd, std::span<const std::uint8_t> buf,
                std::uint64_t off, IoCb cb);

  private:
    /** Emit a "libaio.*" request envelope at completion (tracing on). */
    IoCb wrapRequest(const char *name, Pid pid, obs::TraceId trace,
                     IoCb cb);

    Kernel &k_;
};

} // namespace bpd::kern

#endif // BPD_KERN_AIO_HPP
