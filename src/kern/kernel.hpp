/**
 * @file
 * The simulated OS kernel: timed POSIX-style syscalls over the VFS/ext4
 * stack and the kernel NVMe driver. This is the paper's baseline "sync"
 * path (Table 1) and also the metadata path that BypassD keeps in the
 * kernel (Table 3). Costs come from kern::CostModel; CPU contention from
 * kern::CpuModel; device time from ssd::NvmeDevice.
 *
 * Modeled behaviours relevant to the evaluation:
 *  - O_DIRECT data path: user->kernel switch, VFS+ext4, block layer,
 *    driver, device, kernel->user switch;
 *  - buffered path through a page cache with write-back;
 *  - per-inode exclusive write lock in the kernel write path (the ext4
 *    same-file write bottleneck BypassD avoids, Section 6.5);
 *  - appends allocate + zero blocks and are issued unbuffered
 *    (Section 4.2 / Table 3).
 */

#ifndef BPD_KERN_KERNEL_HPP
#define BPD_KERN_KERNEL_HPP

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "fs/page_cache.hpp"
#include "fs/vfs.hpp"
#include "iommu/iommu.hpp"
#include "kern/cost_model.hpp"
#include "kern/cpu_model.hpp"
#include "kern/process.hpp"
#include "mem/frame_allocator.hpp"
#include "obs/tenant.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "ssd/dispatcher.hpp"
#include "ssd/nvme.hpp"

namespace bpd::qos {
class Registry;
}

namespace bpd::kern {

/** Per-request time attribution (Fig. 7 breakdown). */
struct IoTrace
{
    Time userNs = 0;
    Time kernelNs = 0;
    Time deviceNs = 0;
    Time translateNs = 0;

    Time
    total() const
    {
        return userNs + kernelNs + deviceNs + translateNs;
    }
};

/** Data-op completion: byte count (or negative FsStatus) + attribution. */
using IoCb = std::function<void(long long, IoTrace)>;
/** Metadata-op completion: 0/fd or negative FsStatus. */
using IntCb = std::function<void(int)>;

/** Map FsStatus to a negative syscall return code. */
inline int
errOf(fs::FsStatus st)
{
    return -static_cast<int>(st);
}

/** Device completion status → errno: evicted devices fail distinctly
 *  (ENODEV) so callers can fail over; everything else is EINVAL. */
int devErr(ssd::Status st);

/** Extra open flag used by UserLib: open intends BypassD data access. */
constexpr std::uint32_t kOpenBypassdIntent = 1u << 7;

/**
 * Hooks the BypassD kernel module installs to participate in open/
 * metadata events (revocation policy, Sections 3.6 and 4.5.2).
 */
class BypassdHooks
{
  public:
    virtual ~BypassdHooks() = default;
    /** A kernel-interface open happened on @p ino. */
    virtual void onKernelOpen(fs::Inode &ino) = 0;
    /** Process @p pid changed @p ino's metadata via the kernel. */
    virtual void onMetadataChange(fs::Inode &ino, Pid pid) = 0;
    /** File blocks grew; FTEs must be extended (appends, Table 3). */
    virtual void onExtentsAdded(fs::Inode &ino,
                                const std::vector<fs::Extent> &added) = 0;
    /** Blocks were truncated away; FTEs must be detached. */
    virtual void onTruncated(fs::Inode &ino) = 0;
};

struct KernelConfig
{
    std::uint64_t pageCacheBytes = 8ull << 30;
    std::uint32_t kernelQueueDepth = 1024;
    unsigned hwThreads = 24; //!< evaluation machine: 12 cores x HT
};

struct Stat
{
    InodeNum ino;
    std::uint64_t size;
    std::uint16_t mode;
    std::uint32_t uid, gid;
    Time mtime;
};

class Kernel
{
  public:
    Kernel(sim::EventQueue &eq, mem::FrameAllocator &fa,
           iommu::Iommu &iommu, fs::Vfs &vfs, ssd::NvmeDevice &dev,
           CostModel costs = {}, KernelConfig cfg = {});

    /** @name Process management */
    ///@{
    Process &createProcess(fs::Credentials creds);
    void destroyProcess(Pid pid);
    Process *process(Pid pid);
    ///@}

    /**
     * Confine @p p to a mount namespace rooted at @p root (Section 5.2:
     * containers share the SSD through BypassD without extra support,
     * because access control stays in the kernel). Creates the root
     * directory if needed.
     */
    fs::FsStatus setNamespaceRoot(Process &p, const std::string &root);

    /** Resolve a path in @p p's mount namespace. */
    std::string nsPath(const Process &p, const std::string &path) const;

    /** @name Timed syscalls (callback fires at completion sim-time)
     * Buffer spans are used asynchronously: the caller must keep the
     * memory alive until the completion callback fires.
     */
    ///@{
    void sysOpen(Process &p, const std::string &path, std::uint32_t flags,
                 std::uint16_t mode, IntCb cb);
    void sysClose(Process &p, int fd, IntCb cb);
    /**
     * Data syscalls carry an optional request trace id. 0 (the
     * default) means this syscall is the outermost layer: when tracing
     * is enabled the kernel allocates an id and emits the request
     * envelope span itself. A non-zero id means an engine above
     * (libaio, UserLib fallback) owns the envelope and the kernel only
     * propagates the id down to the device.
     */
    void sysPread(Process &p, int fd, std::span<std::uint8_t> buf,
                  std::uint64_t off, IoCb cb, obs::TraceId trace = 0);
    void sysPwrite(Process &p, int fd, std::span<const std::uint8_t> buf,
                   std::uint64_t off, IoCb cb, obs::TraceId trace = 0);
    void sysRead(Process &p, int fd, std::span<std::uint8_t> buf, IoCb cb);
    void sysWrite(Process &p, int fd, std::span<const std::uint8_t> buf,
                  IoCb cb);
    void sysFsync(Process &p, int fd, IntCb cb);
    void sysFallocate(Process &p, int fd, std::uint64_t off,
                      std::uint64_t len, IntCb cb);
    void sysFtruncate(Process &p, int fd, std::uint64_t size, IntCb cb);
    void sysUnlink(Process &p, const std::string &path, IntCb cb);
    void sysRename(Process &p, const std::string &from,
                   const std::string &to, IntCb cb);
    void sysStat(Process &p, const std::string &path, Stat *out, IntCb cb);
    ///@}

    /** @name Untimed setup helpers (test/bench prepopulation) */
    ///@{
    int setupOpen(Process &p, const std::string &path, std::uint32_t flags,
                  std::uint16_t mode = 0644);
    long long setupWrite(Process &p, int fd,
                         std::span<const std::uint8_t> buf,
                         std::uint64_t off);
    long long setupRead(Process &p, int fd, std::span<std::uint8_t> buf,
                        std::uint64_t off);
    /** Create a file of @p size bytes filled with a seeded pattern. */
    int setupCreateFile(Process &p, const std::string &path,
                        std::uint64_t size, std::uint64_t seed = 0);
    ///@}

    /** @name Component access (BypassD module, XRP, baselines) */
    ///@{
    sim::EventQueue &eq() { return eq_; }
    mem::FrameAllocator &frames() { return fa_; }
    iommu::Iommu &iommu() { return iommu_; }
    fs::Vfs &vfs() { return vfs_; }
    ssd::NvmeDevice &device() { return dev_; }
    ssd::CommandDispatcher &dispatcher() { return *kq_; }
    CostModel &costs() { return costs_; }
    CpuModel &cpu() { return cpu_; }
    fs::PageCache &pageCache() { return pageCache_; }
    void setBypassdHooks(BypassdHooks *hooks) { hooks_ = hooks; }
    BypassdHooks *bypassdHooks() { return hooks_; }
    ///@}

    /** @name Device slots (multi-device volume)
     * The constructor's device is slot 0 at volume base 0. Each
     * attachSlot() call adds the next slot: a kernel queue pair +
     * dispatcher on that device, PASID bindings in its IOMMU for every
     * live process (bound in pid order — deterministic), and a volume
     * base that deviceIo() routes by. Slot bases must be uniform
     * multiples of the first attached base (the slot size). With one
     * slot everything reduces exactly to the classic single-device
     * kernel.
     */
    ///@{
    void attachSlot(ssd::NvmeDevice &dev, iommu::Iommu &iommu,
                    std::uint64_t base);
    std::size_t slotCount() const { return slots_.size(); }
    ssd::NvmeDevice &slotDevice(std::size_t i) { return *slots_[i].dev; }
    iommu::Iommu &slotIommu(std::size_t i) { return *slots_[i].iommu; }
    std::uint64_t slotBase(std::size_t i) const { return slots_[i].base; }
    std::uint64_t slotBytes() const { return slotBytes_; }
    /** Slot index backing volume address @p addr. */
    std::size_t slotOf(DevAddr addr) const
    {
        return slotBytes_ == 0 ? 0 : addr / slotBytes_;
    }
    ///@}

    /**
     * Submit a multi-segment device I/O on the kernel queue.
     * @param cb Fires when all segments completed; passes worst status
     *           and the span of device time.
     */
    void deviceIo(ssd::Op op, const std::vector<fs::Seg> &segs,
                  std::span<std::uint8_t> buf,
                  std::function<void(ssd::Status, Time)> cb,
                  obs::TraceId trace = 0,
                  TenantId tenant = kSystemTenant);

    /**
     * Attach the QoS registry (null = disabled, the default). deviceIo
     * then charges each data I/O against the tenant's token buckets and
     * parks over-limit submissions on the registry's per-tenant FIFO;
     * they issue in order as the buckets refill. Flush (sysFsync) is
     * exempt — QoS caps data-path IOPS/bytes, not durability barriers.
     */
    void setQos(qos::Registry *q) { qos_ = q; }
    qos::Registry *qos() const { return qos_; }

    /** The kernel-interface path for appends (used by UserLib, Table 3). */
    void appendPath(Process &p, fs::Inode &ino,
                    std::span<const std::uint8_t> buf, std::uint64_t off,
                    IoCb cb, obs::TraceId trace = 0);

    std::uint64_t syscallCount() const { return syscalls_; }

    /**
     * Attach a span tracer (null = disabled, the default). Every
     * instrumentation site is one branch on this pointer; when null the
     * syscall paths are untouched (no allocation, no time read).
     */
    void setTracer(obs::Tracer *t) { trace_ = t; }
    obs::Tracer *tracer() const { return trace_; }

    /**
     * Attach the per-tenant counter table (null = disabled, the
     * default). Syscall counts are attributed to the calling process's
     * PASID; filesystem-side attribution flows through the active-tenant
     * slot below.
     */
    void setTenantAccounting(obs::TenantAccounting *a) { acct_ = a; }

    /**
     * @name Active-tenant slot for filesystem attribution
     * The VFS/page-cache/journal layers have no Process argument, so
     * the kernel names the tenant on whose behalf it is currently
     * executing filesystem code in this slot (via kern::TenantScope).
     * Components hold a pointer to it (see
     * fs::Ext4Fs::setTenantAccounting); kSystemTenant (the reset value)
     * catches setup helpers and any unattributed work.
     */
    ///@{
    TenantId activeTenant() const { return activeTenant_; }
    void setActiveTenant(TenantId t) { activeTenant_ = t; }
    const TenantId *activeTenantPtr() const { return &activeTenant_; }
    ///@}

    /** Visit every live process (used by System::enableTracing). */
    void forEachProcess(const std::function<void(Process &)> &fn);

  private:
    void directRead(Process &p, fs::Inode &ino,
                    std::span<std::uint8_t> buf, std::uint64_t off,
                    IoCb cb, obs::TraceId trace);
    void directWrite(Process &p, fs::Inode &ino,
                     std::span<const std::uint8_t> buf, std::uint64_t off,
                     IoCb cb, obs::TraceId trace);
    void bufferedRead(Process &p, fs::Inode &ino,
                      std::span<std::uint8_t> buf, std::uint64_t off,
                      IoCb cb, obs::TraceId trace);
    void bufferedWrite(Process &p, fs::Inode &ino,
                       std::span<const std::uint8_t> buf,
                       std::uint64_t off, IoCb cb, obs::TraceId trace);
    void writebackDirty(fs::Inode &ino, std::function<void(Time)> done);

    /** The ungated deviceIo body (QoS already charged or disabled). */
    void deviceIoNow(ssd::Op op, const std::vector<fs::Seg> &segs,
                     std::span<std::uint8_t> buf,
                     std::function<void(ssd::Status, Time)> cb,
                     obs::TraceId trace, TenantId tenant);

    /** syscalls_++ plus per-tenant attribution (same site). */
    void noteSyscall(const Process &p)
    {
        syscalls_++;
        if (acct_)
            acct_->of(p.pasid()).kernSyscalls++;
    }

    /** Interned "kern.p<pid>" track (tracer enabled only). */
    std::uint16_t ktrack(Pid pid);
    /** Wrap @p cb to emit the request envelope span at completion. */
    IoCb wrapRequest(const char *name, Pid pid, obs::TraceId trace,
                     IoCb cb);

    sim::EventQueue &eq_;
    mem::FrameAllocator &fa_;
    iommu::Iommu &iommu_;
    fs::Vfs &vfs_;
    ssd::NvmeDevice &dev_;
    CostModel costs_;
    CpuModel cpu_;
    fs::PageCache pageCache_;
    BypassdHooks *hooks_ = nullptr;

    ssd::QueuePair *kernelQp_ = nullptr;
    std::unique_ptr<ssd::CommandDispatcher> kq_;

    /** One kernel-side view per device slot; slots_[0] aliases kq_. */
    struct Slot
    {
        ssd::NvmeDevice *dev;
        iommu::Iommu *iommu;
        std::uint64_t base;
        ssd::CommandDispatcher *kq;
    };
    std::vector<Slot> slots_;
    std::vector<std::unique_ptr<ssd::CommandDispatcher>> slotQueues_;
    std::uint64_t slotBytes_ = 0; //!< 0 until a second slot attaches
    std::uint32_t kernelQueueDepth_;

    std::unordered_map<Pid, std::unique_ptr<Process>> procs_;
    Pid nextPid_ = 1;
    std::uint64_t syscalls_ = 0;

    obs::Tracer *trace_ = nullptr;
    std::unordered_map<Pid, std::uint16_t> obsTracks_;

    obs::TenantAccounting *acct_ = nullptr;
    TenantId activeTenant_ = kSystemTenant;

    qos::Registry *qos_ = nullptr;
};

/**
 * RAII scope naming the tenant on whose behalf the kernel is executing
 * filesystem code. Event-queue callbacks interleave across processes,
 * so a scope is opened at the top of each callback (or synchronous
 * syscall body) that enters the VFS/page-cache/journal — never held
 * across a deferred continuation. Nesting restores the outer value.
 * When tenant accounting is disabled this is a pair of plain stores:
 * no allocation, no time read, digest-neutral.
 */
class TenantScope
{
  public:
    TenantScope(Kernel &k, TenantId t) : k_(k), prev_(k.activeTenant())
    {
        k_.setActiveTenant(t);
    }
    ~TenantScope() { k_.setActiveTenant(prev_); }
    TenantScope(const TenantScope &) = delete;
    TenantScope &operator=(const TenantScope &) = delete;

  private:
    Kernel &k_;
    TenantId prev_;
};

} // namespace bpd::kern

#endif // BPD_KERN_KERNEL_HPP
