#include "system/device_map.hpp"

#include "sim/logging.hpp"

namespace bpd::sys {

DeviceMap::DeviceMap(sim::EventQueue &eq, const DeviceMapConfig &cfg)
    : cfg_(cfg)
{
    sim::panicIf(cfg_.maxDevices == 0, "DeviceMap needs >= 1 device");
    sim::panicIf(cfg_.onlineDevices == 0
                     || cfg_.onlineDevices > cfg_.maxDevices,
                 "onlineDevices out of [1, maxDevices]");
    slots_.reserve(cfg_.maxDevices);
    for (std::size_t i = 0; i < cfg_.maxDevices; i++) {
        auto prof = cfg_.slotSsd.count(i) ? cfg_.slotSsd.at(i) : cfg_.ssd;
        slots_.push_back(std::make_unique<ssd::DeviceSlot>(
            eq, cfg_.slotBytes, cfg_.iommu, prof,
            static_cast<DevId>(cfg_.devIdBase + i), cfg_.seedBase + i));
        present_.push_back(i < cfg_.onlineDevices);
    }
    std::vector<ssd::BlockStore *> stores;
    stores.reserve(slots_.size());
    for (auto &s : slots_)
        stores.push_back(&s->store);
    volume_ = std::make_unique<ssd::VolumeStore>(std::move(stores),
                                                 cfg_.slotBytes);
}

void
DeviceMap::setPresent(std::size_t i, bool p)
{
    sim::panicIf(i == 0 && !p, "slot 0 is always present");
    present_.at(i) = p;
}

std::size_t
DeviceMap::presentCount() const
{
    std::size_t n = 0;
    for (bool p : present_)
        n += p ? 1 : 0;
    return n;
}

std::size_t
DeviceMap::homeSlotOf(InodeNum ino)
{
    auto it = home_.find(ino);
    if (it != home_.end())
        return it->second;
    // Round-robin over eligible slots, starting after the last pick.
    // Slot 0 is always eligible, so the scan terminates.
    const std::size_t n = slots_.size();
    for (std::size_t k = 0; k < n; k++) {
        const std::size_t cand = (rrNext_ + k) % n;
        if (present_[cand] && !evicted(cand)) {
            rrNext_ = (cand + 1) % n;
            home_[ino] = cand;
            return cand;
        }
    }
    sim::panic("no eligible device slot for placement");
    return 0;
}

std::pair<BlockNo, BlockNo>
DeviceMap::blockRange(std::size_t i) const
{
    sim::panicIf(i >= slots_.size(), "blockRange: slot out of range");
    return {slotBase(i) / kBlockBytes, slotBase(i + 1) / kBlockBytes};
}

} // namespace bpd::sys
