#include "system/fleet.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace bpd::sys {

namespace {

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; i++) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

sim::SimExecutor::Config
execConfig(const FleetConfig &cfg)
{
    sim::SimExecutor::Config ec;
    // More shards than machines would only add idle barrier
    // participants; the machine is the placement unit.
    ec.shards = std::max(1u, std::min(cfg.shards, cfg.systems));
    ec.pinThreads = cfg.pinThreads;
    return ec;
}

} // namespace

Fleet::Fleet(FleetConfig cfg) : cfg_(cfg), exec_(execConfig(cfg))
{
    sim::panicIf(cfg_.systems == 0, "fleet: needs at least one system");
    const bool fabric
        = cfg_.topology == FleetTopology::FabricClientsTarget;
    sim::panicIf(fabric && cfg_.systems < 2,
                 "fabric fleet: needs a target and at least one client");
    place_.shards = exec_.shardCount();
    for (unsigned i = 0; i < cfg_.systems; i++) {
        SystemConfig sc = cfg_.base;
        sc.deviceBytes = cfg_.deviceBytes;
        sc.seed = cfg_.seed + i;
        sc.devId = static_cast<DevId>(i + 1);
        systems_.push_back(std::make_unique<System>(sc));
        const unsigned shard = fabric ? place_.fabricShard(i)
                                      : place_.systemShard(i);
        domainOf_.push_back(exec_.addDomain(systems_.back()->eq, shard,
                                            sim::strf("sys%u", i)));
    }
    ctrlDomain_ = exec_.addDomain(ctrlEq_, place_.controllerShard(),
                                  "controller");
    for (unsigned i = 0; i < cfg_.systems; i++) {
        exec_.connect(domainOf_[i], ctrlDomain_, cfg_.fabricLatencyNs);
        exec_.connect(ctrlDomain_, domainOf_[i], cfg_.fabricLatencyNs);
    }
    if (fabric) {
        // I/O-plane channels: every client machine to/from the target.
        for (unsigned i = 1; i < cfg_.systems; i++) {
            exec_.connect(domainOf_[i], domainOf_[0],
                          cfg_.fabricIoLatencyNs);
            exec_.connect(domainOf_[0], domainOf_[i],
                          cfg_.fabricIoLatencyNs);
        }
    }
}

void
Fleet::start(Time tEnd)
{
    for (unsigned i = 0; i < cfg_.systems; i++) {
        System &s = *systems_[i];
        s.bindExecutor(&exec_, domainOf_[i]);
        s.eq.schedule(s.eq.now() + cfg_.beaconPeriodNs,
                      [this, i, tEnd]() { beacon(i, tEnd); });
    }
}

/**
 * One beacon round trip, executing on three domains in turn: the
 * machine samples its counters, the controller folds them into the
 * fleet digest and acks, and the ack schedules the machine's next
 * beacon. Every capture stays within the inline callback buffer.
 */
void
Fleet::beacon(unsigned i, Time tEnd)
{
    System &s = *systems_[i];
    if (s.eq.now() >= tEnd)
        return;
    const std::uint64_t ops = s.dev.totalOps();
    const std::uint64_t ev = s.eq.executed();
    exec_.post(
        domainOf_[i], ctrlDomain_, s.eq.now() + cfg_.fabricLatencyNs,
        [this, i, tEnd, ops, ev]() {
            beacons_++;
            ctrlHash_ = fnv(ctrlHash_, i);
            ctrlHash_ = fnv(ctrlHash_, ops);
            ctrlHash_ = fnv(ctrlHash_, ev);
            ctrlHash_ = fnv(ctrlHash_, ctrlEq_.now());
            exec_.post(ctrlDomain_, domainOf_[i],
                       ctrlEq_.now() + cfg_.fabricLatencyNs,
                       [this, i, tEnd]() {
                           System &sys = *systems_[i];
                           if (sys.eq.now() >= tEnd)
                               return;
                           sys.eq.schedule(
                               sys.eq.now() + cfg_.beaconPeriodNs,
                               [this, i, tEnd]() { beacon(i, tEnd); });
                       });
        });
}

void
Fleet::settle()
{
    Time tMax = ctrlEq_.now();
    for (const auto &s : systems_)
        tMax = std::max(tMax, s->eq.now());
    for (const auto &s : systems_)
        s->eq.schedule(tMax, [] {});
    ctrlEq_.schedule(tMax, [] {});
    exec_.run();
}

std::uint64_t
Fleet::totalEvents() const
{
    std::uint64_t n = ctrlEq_.executed();
    for (const auto &s : systems_)
        n += s->eq.executed();
    return n;
}

} // namespace bpd::sys
