#include "system/system.hpp"

#include "sim/logging.hpp"

namespace bpd::sys {

System::System(SystemConfig config)
    : cfg(config),
      iommu(eq, cfg.iommu),
      store(cfg.deviceBytes),
      dev(eq, store, iommu, cfg.devId, cfg.ssd, cfg.seed),
      ext4(store, cfg.fs, &eq),
      vfs(ext4),
      kernel(eq, frames, iommu, vfs, dev, cfg.costs, cfg.kernel),
      aio(kernel),
      module(kernel)
{
}

System::~System()
{
    // Members destroy in reverse declaration order, so `module` is
    // gone by the time `kernel` drops its processes — and with them
    // any UserLib whose destructor unwinds user queues through the
    // module. Detach the shims here while every layer is still alive.
    kernel.forEachProcess(
        [](kern::Process &p) { p.userLibOwner.reset(); });
}

kern::Process &
System::newProcess(std::uint32_t uid, std::uint32_t gid)
{
    kern::Process &p = kernel.createProcess(fs::Credentials{uid, gid});
    if (tracer_) {
        obs::ReplayRec r;
        r.op = obs::ReplayRec::NewProcess;
        r.proc = p.pasid();
        r.aux = (static_cast<std::uint64_t>(uid) << 32) | gid;
        tracer_->replayMark(r, p.pasid());
    }
    return p;
}

obs::Tracer &
System::enableTracing(obs::Level level)
{
    if (tracer_)
        return *tracer_;
    tracer_ = std::make_unique<obs::Tracer>(eq, level, &metrics);
    obs::Tracer *t = tracer_.get();
    kernel.setTracer(t);
    dev.setTracer(t);
    iommu.setTracer(t);
    module.setTracer(t);
    // Journal commits show up as instants on their own "fs" track.
    const std::uint16_t fsTrack = t->track("fs");
    ext4.journal().setCommitObserver([t, fsTrack](std::size_t records) {
        if (t->wants(obs::Level::Layers))
            t->instant(fsTrack, "journal.commit", 0,
                       {{"records",
                         static_cast<std::int64_t>(records)}});
    });
    return *tracer_;
}

obs::TenantAccounting &
System::enableTenantAccounting()
{
    if (acctEnabled_)
        return acct_;
    acctEnabled_ = true;
    kernel.setTenantAccounting(&acct_);
    dev.setTenantAccounting(&acct_);
    iommu.setTenantAccounting(&acct_);
    module.setTenantAccounting(&acct_);
    // The kernel names the tenant it is executing filesystem code for;
    // ext4/journal/page-cache read that slot at their attribution sites.
    const TenantId *active = kernel.activeTenantPtr();
    ext4.setTenantAccounting(&acct_, active);
    kernel.pageCache().setTenantAccounting(&acct_, active);
    return acct_;
}

std::string
System::verifyTenantSums()
{
    if (!acctEnabled_)
        return {};
    obs::TenantCounters sum;
    acct_.forEach([&](TenantId, const obs::TenantCounters &tc) {
        sum.kernSyscalls += tc.kernSyscalls;
        sum.ssdOps += tc.ssdOps;
        sum.ssdReadBytes += tc.ssdReadBytes;
        sum.ssdWriteBytes += tc.ssdWriteBytes;
        sum.ssdTranslationFaults += tc.ssdTranslationFaults;
        sum.iommuVbaTranslations += tc.iommuVbaTranslations;
        sum.iommuVbaFaults += tc.iommuVbaFaults;
        sum.iommuPageWalkFrames += tc.iommuPageWalkFrames;
        sum.fsJournalRecords += tc.fsJournalRecords;
        sum.fsMetadataOps += tc.fsMetadataOps;
        sum.fsPageCacheHits += tc.fsPageCacheHits;
        sum.fsPageCacheMisses += tc.fsPageCacheMisses;
        sum.bypassdColdFmaps += tc.bypassdColdFmaps;
        sum.bypassdWarmFmaps += tc.bypassdWarmFmaps;
        sum.bypassdRejectedFmaps += tc.bypassdRejectedFmaps;
        sum.bypassdRevokedVictims += tc.bypassdRevokedVictims;
    });
    const std::pair<const char *, std::pair<std::uint64_t,
                                            std::uint64_t>>
        checks[] = {
            {"kern.syscalls", {sum.kernSyscalls, kernel.syscallCount()}},
            {"ssd.ops", {sum.ssdOps, dev.totalOps()}},
            {"ssd.read_bytes", {sum.ssdReadBytes, dev.readBytes()}},
            {"ssd.write_bytes", {sum.ssdWriteBytes, dev.writeBytes()}},
            {"ssd.translation_faults",
             {sum.ssdTranslationFaults, dev.translationFaults()}},
            {"iommu.vba_translations",
             {sum.iommuVbaTranslations, iommu.vbaTranslations()}},
            {"iommu.vba_faults", {sum.iommuVbaFaults, iommu.vbaFaults()}},
            {"iommu.page_walk_frames",
             {sum.iommuPageWalkFrames, iommu.framesRead()}},
            {"fs.journal_records",
             {sum.fsJournalRecords, ext4.journal().records()}},
            {"fs.metadata_ops", {sum.fsMetadataOps, ext4.metadataOps()}},
            {"fs.page_cache_hits",
             {sum.fsPageCacheHits, kernel.pageCache().hits()}},
            {"fs.page_cache_misses",
             {sum.fsPageCacheMisses, kernel.pageCache().misses()}},
            {"bypassd.cold_fmaps",
             {sum.bypassdColdFmaps, module.coldFmaps()}},
            {"bypassd.warm_fmaps",
             {sum.bypassdWarmFmaps, module.warmFmaps()}},
            {"bypassd.rejected_fmaps",
             {sum.bypassdRejectedFmaps, module.rejectedFmaps()}},
            {"bypassd.revoked_victims",
             {sum.bypassdRevokedVictims, module.revokedVictims()}},
        };
    for (const auto &[name, v] : checks)
        if (v.first != v.second)
            return sim::strf("%s: tenant sum %llu != system total %llu",
                             name,
                             static_cast<unsigned long long>(v.first),
                             static_cast<unsigned long long>(v.second));
    return {};
}

void
System::collectMetrics()
{
    metrics.counter("sim", "events_executed").set(eq.executed());
    metrics.counter("kern", "syscalls").set(kernel.syscallCount());
    metrics.counter("iommu", "vba_translations")
        .set(iommu.vbaTranslations());
    metrics.counter("iommu", "vba_faults").set(iommu.vbaFaults());
    metrics.counter("iommu", "page_walk_frames").set(iommu.framesRead());
    metrics.counter("iommu", "iotlb_hits").set(iommu.iotlb().hits());
    metrics.counter("iommu", "iotlb_misses").set(iommu.iotlb().misses());
    metrics.counter("iommu", "walk_cache_hits")
        .set(iommu.walkCache().hits());
    metrics.counter("iommu", "walk_cache_misses")
        .set(iommu.walkCache().misses());
    metrics.counter("ssd", "ops").set(dev.totalOps());
    metrics.counter("ssd", "read_bytes").set(dev.readBytes());
    metrics.counter("ssd", "write_bytes").set(dev.writeBytes());
    metrics.counter("ssd", "translation_faults")
        .set(dev.translationFaults());
    metrics.counter("fs", "journal_commits")
        .set(ext4.journal().committedTxns());
    metrics.counter("fs", "journal_records")
        .set(ext4.journal().records());
    metrics.counter("fs", "metadata_ops").set(ext4.metadataOps());
    metrics.counter("fs", "page_cache_hits")
        .set(kernel.pageCache().hits());
    metrics.counter("fs", "page_cache_misses")
        .set(kernel.pageCache().misses());
    metrics.counter("bypassd", "cold_fmaps").set(module.coldFmaps());
    metrics.counter("bypassd", "warm_fmaps").set(module.warmFmaps());
    metrics.counter("bypassd", "revocations").set(module.revocations());
    metrics.counter("bypassd", "revoked_victims")
        .set(module.revokedVictims());
    metrics.counter("bypassd", "rejected_fmaps")
        .set(module.rejectedFmaps());
    std::uint64_t directReads = 0, directWrites = 0, fallbacks = 0,
                  iommuFaults = 0;
    kernel.forEachProcess([&](kern::Process &p) {
        if (!p.userLib)
            return;
        directReads += p.userLib->directReads();
        directWrites += p.userLib->directWrites();
        fallbacks += p.userLib->kernelFallbackOps();
        iommuFaults += p.userLib->iommuFaults();
    });
    metrics.counter("bypassd", "direct_reads").set(directReads);
    metrics.counter("bypassd", "direct_writes").set(directWrites);
    metrics.counter("bypassd", "kernel_fallback_ops").set(fallbacks);
    metrics.counter("bypassd", "iommu_faults").set(iommuFaults);
    metrics.gauge("ssd", "resident_bytes")
        .set(static_cast<double>(store.residentBytes()));
    metrics.gauge("sim", "now_ns").set(static_cast<double>(eq.now()));

    if (!acctEnabled_)
        return;
    // Per-tenant sub-registries. Each key mirrors a system total above
    // and the attribution sites are co-located with the aggregate
    // increments, so sum-over-tenants equals the total bit-exactly.
    acct_.forEach([&](TenantId id, const obs::TenantCounters &tc) {
        obs::MetricsRegistry &m = metrics.tenant(id);
        m.counter("kern", "syscalls").set(tc.kernSyscalls);
        m.counter("ssd", "ops").set(tc.ssdOps);
        m.counter("ssd", "read_bytes").set(tc.ssdReadBytes);
        m.counter("ssd", "write_bytes").set(tc.ssdWriteBytes);
        m.counter("ssd", "translation_faults")
            .set(tc.ssdTranslationFaults);
        m.counter("iommu", "vba_translations")
            .set(tc.iommuVbaTranslations);
        m.counter("iommu", "vba_faults").set(tc.iommuVbaFaults);
        m.counter("iommu", "page_walk_frames")
            .set(tc.iommuPageWalkFrames);
        m.counter("fs", "journal_records").set(tc.fsJournalRecords);
        m.counter("fs", "metadata_ops").set(tc.fsMetadataOps);
        m.counter("fs", "page_cache_hits").set(tc.fsPageCacheHits);
        m.counter("fs", "page_cache_misses").set(tc.fsPageCacheMisses);
        m.counter("bypassd", "cold_fmaps").set(tc.bypassdColdFmaps);
        m.counter("bypassd", "warm_fmaps").set(tc.bypassdWarmFmaps);
        m.counter("bypassd", "rejected_fmaps")
            .set(tc.bypassdRejectedFmaps);
        m.counter("bypassd", "revoked_victims")
            .set(tc.bypassdRevokedVictims);
    });
    // UserLib stats are already tracked per process; a process is a
    // tenant, so publish them straight into its sub-registry.
    kernel.forEachProcess([&](kern::Process &p) {
        if (!p.userLib)
            return;
        obs::MetricsRegistry &m = metrics.tenant(p.pasid());
        m.counter("bypassd", "direct_reads")
            .set(p.userLib->directReads());
        m.counter("bypassd", "direct_writes")
            .set(p.userLib->directWrites());
        m.counter("bypassd", "kernel_fallback_ops")
            .set(p.userLib->kernelFallbackOps());
        m.counter("bypassd", "iommu_faults")
            .set(p.userLib->iommuFaults());
    });
}

bypassd::UserLib &
System::userLib(kern::Process &p)
{
    if (p.userLib)
        return *p.userLib;
    // The process owns its shim: teardown happens with the process,
    // before its address space (see Process::userLibOwner).
    auto lib = std::make_shared<bypassd::UserLib>(kernel, module, p,
                                                  cfg.userlib);
    bypassd::UserLib *raw = lib.get();
    p.userLibOwner = std::move(lib);
    return *raw;
}

} // namespace bpd::sys
