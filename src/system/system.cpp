#include "system/system.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace bpd::sys {

DeviceMapConfig
System::mapCfgOf(const SystemConfig &c)
{
    DeviceMapConfig m;
    m.slotBytes = c.deviceBytes;
    m.maxDevices = std::max<std::size_t>(c.maxDevices, 1);
    m.onlineDevices = c.onlineDevices == 0
                          ? m.maxDevices
                          : std::min(c.onlineDevices, m.maxDevices);
    m.devIdBase = c.devId;
    m.seedBase = c.seed;
    m.ssd = c.ssd;
    m.iommu = c.iommu;
    m.slotSsd = c.slotSsd;
    return m;
}

System::System(SystemConfig config)
    : cfg(config),
      devices(eq, mapCfgOf(cfg)),
      iommu(devices.slot(0).iommu),
      store(devices.volume()),
      dev(devices.slot(0).dev),
      ext4(store, cfg.fs, &eq),
      vfs(ext4),
      kernel(eq, frames, iommu, vfs, dev, cfg.costs, cfg.kernel),
      aio(kernel),
      module(kernel)
{
    evictPending_.assign(devices.size(), false);
    // Slot 0 is the constructor-wired classic device; attach the other
    // boot-online slots to the kernel's routing table.
    const std::size_t online = cfg.onlineDevices == 0
                                   ? devices.size()
                                   : std::min<std::size_t>(
                                         cfg.onlineDevices,
                                         devices.size());
    for (std::size_t i = 1; i < online; i++)
        kernel.attachSlot(devices.slot(i).dev, devices.slot(i).iommu,
                          devices.slotBase(i));
    if (devices.size() > 1) {
        // Per-inode home-device placement: the file system allocates an
        // inode's blocks inside its home slot's block range, and the
        // BypassD module homes FTEs by the same map — one source of
        // truth, so extents never straddle devices. Single-device
        // systems keep the classic allocator bit-identically (null
        // placement).
        ext4.setPlacement([this](const fs::Inode &ino) {
            return devices.blockRange(devices.homeSlotOf(ino.ino));
        });
        module.setHomeSlot([this](const fs::Inode &ino) {
            return devices.homeSlotOf(ino.ino);
        });
    }
    if (cfg.healthMonitor) {
        // The hook fires at media-error completion time; eviction is
        // deferred one event so revocation never runs inside the
        // device's completion path. Slot 0 is never monitored: it
        // holds the file-system metadata and cannot be evicted.
        for (std::size_t i = 1; i < devices.size(); i++) {
            devices.slot(i).dev.setHealthHook(
                [this, i](std::uint64_t errors) {
                    if (errors < cfg.evictAfterMediaErrors
                        || evictPending_[i])
                        return;
                    evictPending_[i] = true;
                    eq.after(0, [this, i]() { evictDevice(i); });
                });
        }
    }
}

void
System::evictDevice(std::size_t slot)
{
    sim::panicIf(slot == 0, "slot 0 (metadata home) cannot be evicted");
    sim::panicIf(slot >= devices.size(),
                 "evictDevice: slot out of range");
    if (devices.evicted(slot))
        return;
    devices.slot(slot).dev.setEvicted(true);
    module.revokeSlot(slot);
}

std::size_t
System::plugDevice()
{
    const std::size_t next = kernel.slotCount();
    sim::panicIf(next >= devices.size(),
                 "plugDevice: no unattached slot left");
    kernel.attachSlot(devices.slot(next).dev, devices.slot(next).iommu,
                      devices.slotBase(next));
    devices.setPresent(next, true);
    return next;
}

DevId
System::deviceOfFile(const std::string &path) const
{
    InodeNum ino = 0;
    if (ext4.resolve(path, &ino) != fs::FsStatus::Ok)
        return 0;
    auto it = devices.homes().find(ino);
    if (it == devices.homes().end())
        return 0;
    return devices.slot(it->second).dev.devId();
}

System::~System()
{
    // Members destroy in reverse declaration order, so `module` is
    // gone by the time `kernel` drops its processes — and with them
    // any UserLib whose destructor unwinds user queues through the
    // module. Detach the shims here while every layer is still alive.
    kernel.forEachProcess(
        [](kern::Process &p) { p.userLibOwner.reset(); });
}

kern::Process &
System::newProcess(std::uint32_t uid, std::uint32_t gid)
{
    kern::Process &p = kernel.createProcess(fs::Credentials{uid, gid});
    if (tracer_) {
        obs::ReplayRec r;
        r.op = obs::ReplayRec::NewProcess;
        r.proc = p.pasid();
        r.aux = (static_cast<std::uint64_t>(uid) << 32) | gid;
        tracer_->replayMark(r, p.pasid());
    }
    return p;
}

obs::Tracer &
System::enableTracing(obs::Level level)
{
    if (tracer_)
        return *tracer_;
    tracer_ = std::make_unique<obs::Tracer>(eq, level, &metrics);
    obs::Tracer *t = tracer_.get();
    kernel.setTracer(t);
    // Wire every fleet slot (including not-yet-plugged ones, so
    // hot-plug needs no re-wiring).
    for (std::size_t i = 0; i < devices.size(); i++) {
        devices.slot(i).dev.setTracer(t);
        devices.slot(i).iommu.setTracer(t);
    }
    module.setTracer(t);
    // Journal commits show up as instants on their own "fs" track.
    const std::uint16_t fsTrack = t->track("fs");
    ext4.journal().setCommitObserver([t, fsTrack](std::size_t records) {
        if (t->wants(obs::Level::Layers))
            t->instant(fsTrack, "journal.commit", 0,
                       {{"records",
                         static_cast<std::int64_t>(records)}});
    });
    return *tracer_;
}

obs::TenantAccounting &
System::enableTenantAccounting()
{
    if (acctEnabled_)
        return acct_;
    acctEnabled_ = true;
    kernel.setTenantAccounting(&acct_);
    for (std::size_t i = 0; i < devices.size(); i++) {
        devices.slot(i).dev.setTenantAccounting(&acct_);
        devices.slot(i).iommu.setTenantAccounting(&acct_);
    }
    module.setTenantAccounting(&acct_);
    // The kernel names the tenant it is executing filesystem code for;
    // ext4/journal/page-cache read that slot at their attribution sites.
    const TenantId *active = kernel.activeTenantPtr();
    ext4.setTenantAccounting(&acct_, active);
    kernel.pageCache().setTenantAccounting(&acct_, active);
    // Either enable order works: a QoS registry enabled earlier starts
    // attributing throttles now.
    if (qos_)
        qos_->setAccounting(&acct_);
    return acct_;
}

qos::Registry &
System::enableQos()
{
    if (qos_)
        return *qos_;
    qos_ = std::make_unique<qos::Registry>(eq);
    kernel.setQos(qos_.get());
    // Wire every fleet slot (including not-yet-plugged ones, so
    // hot-plug needs no re-wiring).
    for (std::size_t i = 0; i < devices.size(); i++)
        devices.slot(i).dev.setQos(qos_.get());
    if (acctEnabled_)
        qos_->setAccounting(&acct_);
    return *qos_;
}

std::string
System::verifyTenantSums()
{
    if (!acctEnabled_)
        return {};
    obs::TenantCounters sum;
    acct_.forEach([&](TenantId, const obs::TenantCounters &tc) {
        sum.kernSyscalls += tc.kernSyscalls;
        sum.ssdOps += tc.ssdOps;
        sum.ssdReadBytes += tc.ssdReadBytes;
        sum.ssdWriteBytes += tc.ssdWriteBytes;
        sum.ssdTranslationFaults += tc.ssdTranslationFaults;
        sum.iommuVbaTranslations += tc.iommuVbaTranslations;
        sum.iommuVbaFaults += tc.iommuVbaFaults;
        sum.iommuPageWalkFrames += tc.iommuPageWalkFrames;
        sum.fsJournalRecords += tc.fsJournalRecords;
        sum.fsMetadataOps += tc.fsMetadataOps;
        sum.fsPageCacheHits += tc.fsPageCacheHits;
        sum.fsPageCacheMisses += tc.fsPageCacheMisses;
        sum.bypassdColdFmaps += tc.bypassdColdFmaps;
        sum.bypassdWarmFmaps += tc.bypassdWarmFmaps;
        sum.bypassdRejectedFmaps += tc.bypassdRejectedFmaps;
        sum.bypassdRevokedVictims += tc.bypassdRevokedVictims;
        sum.qosThrottles += tc.qosThrottles;
        sum.qosThrottledBytes += tc.qosThrottledBytes;
    });
    // Fleet totals: the hardware-side counters fold across every slot.
    std::uint64_t devOps = 0, devRead = 0, devWrite = 0, devTf = 0;
    std::uint64_t ioTrans = 0, ioFaults = 0, ioFrames = 0;
    for (std::size_t i = 0; i < devices.size(); i++) {
        const ssd::NvmeDevice &d = devices.slot(i).dev;
        const iommu::Iommu &mmu = devices.slot(i).iommu;
        devOps += d.totalOps();
        devRead += d.readBytes();
        devWrite += d.writeBytes();
        devTf += d.translationFaults();
        ioTrans += mmu.vbaTranslations();
        ioFaults += mmu.vbaFaults();
        ioFrames += mmu.framesRead();
    }
    const std::pair<const char *, std::pair<std::uint64_t,
                                            std::uint64_t>>
        checks[] = {
            {"kern.syscalls", {sum.kernSyscalls, kernel.syscallCount()}},
            {"ssd.ops", {sum.ssdOps, devOps}},
            {"ssd.read_bytes", {sum.ssdReadBytes, devRead}},
            {"ssd.write_bytes", {sum.ssdWriteBytes, devWrite}},
            {"ssd.translation_faults", {sum.ssdTranslationFaults, devTf}},
            {"iommu.vba_translations",
             {sum.iommuVbaTranslations, ioTrans}},
            {"iommu.vba_faults", {sum.iommuVbaFaults, ioFaults}},
            {"iommu.page_walk_frames",
             {sum.iommuPageWalkFrames, ioFrames}},
            {"fs.journal_records",
             {sum.fsJournalRecords, ext4.journal().records()}},
            {"fs.metadata_ops", {sum.fsMetadataOps, ext4.metadataOps()}},
            {"fs.page_cache_hits",
             {sum.fsPageCacheHits, kernel.pageCache().hits()}},
            {"fs.page_cache_misses",
             {sum.fsPageCacheMisses, kernel.pageCache().misses()}},
            {"bypassd.cold_fmaps",
             {sum.bypassdColdFmaps, module.coldFmaps()}},
            {"bypassd.warm_fmaps",
             {sum.bypassdWarmFmaps, module.warmFmaps()}},
            {"bypassd.rejected_fmaps",
             {sum.bypassdRejectedFmaps, module.rejectedFmaps()}},
            {"bypassd.revoked_victims",
             {sum.bypassdRevokedVictims, module.revokedVictims()}},
            // QoS off: both sides are zero, the rows hold trivially.
            {"qos.throttles",
             {sum.qosThrottles, qos_ ? qos_->throttles() : 0}},
            {"qos.throttled_bytes",
             {sum.qosThrottledBytes,
              qos_ ? qos_->throttledBytes() : 0}},
        };
    for (const auto &[name, v] : checks)
        if (v.first != v.second)
            return sim::strf("%s: tenant sum %llu != system total %llu",
                             name,
                             static_cast<unsigned long long>(v.first),
                             static_cast<unsigned long long>(v.second));

    // Directions 2 and 3: the per-device x per-tenant table must fold
    // bit-exactly into (a) each tenant's device-attributable counters
    // and (b) each device's hardware counters.
    std::map<TenantId, obs::DeviceTenantCounters> byTenant;
    std::map<DevId, obs::DeviceTenantCounters> byDev;
    acct_.forEachDevice([&](DevId d, TenantId t,
                            const obs::DeviceTenantCounters &dc) {
        for (obs::DeviceTenantCounters *out : {&byTenant[t], &byDev[d]}) {
            out->ssdOps += dc.ssdOps;
            out->ssdReadBytes += dc.ssdReadBytes;
            out->ssdWriteBytes += dc.ssdWriteBytes;
            out->ssdTranslationFaults += dc.ssdTranslationFaults;
            out->iommuVbaTranslations += dc.iommuVbaTranslations;
            out->iommuVbaFaults += dc.iommuVbaFaults;
            out->iommuPageWalkFrames += dc.iommuPageWalkFrames;
        }
    });
    std::string err;
    auto check7 = [&err](const char *scope, std::uint64_t id,
                         const obs::DeviceTenantCounters &got,
                         std::uint64_t ops, std::uint64_t rd,
                         std::uint64_t wr, std::uint64_t tf,
                         std::uint64_t vt, std::uint64_t vf,
                         std::uint64_t pw) {
        if (!err.empty())
            return;
        const std::pair<const char *, std::pair<std::uint64_t,
                                                std::uint64_t>>
            rows[] = {
                {"ssd.ops", {got.ssdOps, ops}},
                {"ssd.read_bytes", {got.ssdReadBytes, rd}},
                {"ssd.write_bytes", {got.ssdWriteBytes, wr}},
                {"ssd.translation_faults",
                 {got.ssdTranslationFaults, tf}},
                {"iommu.vba_translations",
                 {got.iommuVbaTranslations, vt}},
                {"iommu.vba_faults", {got.iommuVbaFaults, vf}},
                {"iommu.page_walk_frames",
                 {got.iommuPageWalkFrames, pw}},
            };
        for (const auto &[name, v] : rows)
            if (v.first != v.second) {
                err = sim::strf(
                    "%s %llu %s: device-fold %llu != reference %llu",
                    scope, static_cast<unsigned long long>(id), name,
                    static_cast<unsigned long long>(v.first),
                    static_cast<unsigned long long>(v.second));
                return;
            }
    };
    acct_.forEach([&](TenantId t, const obs::TenantCounters &tc) {
        auto it = byTenant.find(t);
        const obs::DeviceTenantCounters zero;
        check7("tenant", t, it == byTenant.end() ? zero : it->second,
               tc.ssdOps, tc.ssdReadBytes, tc.ssdWriteBytes,
               tc.ssdTranslationFaults, tc.iommuVbaTranslations,
               tc.iommuVbaFaults, tc.iommuPageWalkFrames);
    });
    for (std::size_t i = 0; i < devices.size(); i++) {
        const ssd::NvmeDevice &d = devices.slot(i).dev;
        const iommu::Iommu &mmu = devices.slot(i).iommu;
        auto it = byDev.find(d.devId());
        const obs::DeviceTenantCounters zero;
        check7("device", d.devId(),
               it == byDev.end() ? zero : it->second, d.totalOps(),
               d.readBytes(), d.writeBytes(), d.translationFaults(),
               mmu.vbaTranslations(), mmu.vbaFaults(), mmu.framesRead());
    }
    return err;
}

void
System::collectMetrics()
{
    metrics.counter("sim", "events_executed").set(eq.executed());
    metrics.counter("kern", "syscalls").set(kernel.syscallCount());
    // iommu.* and ssd.* totals fold across every fleet slot (identical
    // to the classic single-device values when maxDevices == 1).
    std::uint64_t ioTrans = 0, ioFaults = 0, ioFrames = 0, tlbHit = 0,
                  tlbMiss = 0, wcHit = 0, wcMiss = 0;
    std::uint64_t devOps = 0, devRead = 0, devWrite = 0, devTf = 0,
                  devMediaErrs = 0;
    for (std::size_t i = 0; i < devices.size(); i++) {
        const ssd::NvmeDevice &d = devices.slot(i).dev;
        const iommu::Iommu &mmu = devices.slot(i).iommu;
        ioTrans += mmu.vbaTranslations();
        ioFaults += mmu.vbaFaults();
        ioFrames += mmu.framesRead();
        tlbHit += mmu.iotlb().hits();
        tlbMiss += mmu.iotlb().misses();
        wcHit += mmu.walkCache().hits();
        wcMiss += mmu.walkCache().misses();
        devOps += d.totalOps();
        devRead += d.readBytes();
        devWrite += d.writeBytes();
        devTf += d.translationFaults();
        devMediaErrs += d.mediaErrors();
    }
    metrics.counter("iommu", "vba_translations").set(ioTrans);
    metrics.counter("iommu", "vba_faults").set(ioFaults);
    metrics.counter("iommu", "page_walk_frames").set(ioFrames);
    metrics.counter("iommu", "iotlb_hits").set(tlbHit);
    metrics.counter("iommu", "iotlb_misses").set(tlbMiss);
    metrics.counter("iommu", "walk_cache_hits").set(wcHit);
    metrics.counter("iommu", "walk_cache_misses").set(wcMiss);
    metrics.counter("ssd", "ops").set(devOps);
    metrics.counter("ssd", "read_bytes").set(devRead);
    metrics.counter("ssd", "write_bytes").set(devWrite);
    metrics.counter("ssd", "translation_faults").set(devTf);
    if (devices.size() > 1) {
        metrics.counter("ssd", "media_errors").set(devMediaErrs);
        // Per-device breakdown groups (multi-device fleets only, so
        // classic single-device metric output is unchanged).
        for (std::size_t i = 0; i < devices.size(); i++) {
            const ssd::NvmeDevice &d = devices.slot(i).dev;
            const iommu::Iommu &mmu = devices.slot(i).iommu;
            const std::string g
                = sim::strf("ssd.dev%u", unsigned(d.devId()));
            metrics.counter(g, "ops").set(d.totalOps());
            metrics.counter(g, "read_bytes").set(d.readBytes());
            metrics.counter(g, "write_bytes").set(d.writeBytes());
            metrics.counter(g, "translation_faults")
                .set(d.translationFaults());
            metrics.counter(g, "media_errors").set(d.mediaErrors());
            metrics.counter(g, "evicted").set(d.evicted() ? 1 : 0);
            const std::string gi
                = sim::strf("iommu.dev%u", unsigned(d.devId()));
            metrics.counter(gi, "vba_translations")
                .set(mmu.vbaTranslations());
            metrics.counter(gi, "vba_faults").set(mmu.vbaFaults());
            metrics.counter(gi, "page_walk_frames")
                .set(mmu.framesRead());
        }
    }
    metrics.counter("fs", "journal_commits")
        .set(ext4.journal().committedTxns());
    metrics.counter("fs", "journal_records")
        .set(ext4.journal().records());
    metrics.counter("fs", "metadata_ops").set(ext4.metadataOps());
    metrics.counter("fs", "page_cache_hits")
        .set(kernel.pageCache().hits());
    metrics.counter("fs", "page_cache_misses")
        .set(kernel.pageCache().misses());
    metrics.counter("bypassd", "cold_fmaps").set(module.coldFmaps());
    metrics.counter("bypassd", "warm_fmaps").set(module.warmFmaps());
    metrics.counter("bypassd", "revocations").set(module.revocations());
    metrics.counter("bypassd", "revoked_victims")
        .set(module.revokedVictims());
    metrics.counter("bypassd", "rejected_fmaps")
        .set(module.rejectedFmaps());
    std::uint64_t directReads = 0, directWrites = 0, fallbacks = 0,
                  iommuFaults = 0;
    kernel.forEachProcess([&](kern::Process &p) {
        if (!p.userLib)
            return;
        directReads += p.userLib->directReads();
        directWrites += p.userLib->directWrites();
        fallbacks += p.userLib->kernelFallbackOps();
        iommuFaults += p.userLib->iommuFaults();
    });
    metrics.counter("bypassd", "direct_reads").set(directReads);
    metrics.counter("bypassd", "direct_writes").set(directWrites);
    metrics.counter("bypassd", "kernel_fallback_ops").set(fallbacks);
    metrics.counter("bypassd", "iommu_faults").set(iommuFaults);
    metrics.gauge("ssd", "resident_bytes")
        .set(static_cast<double>(store.residentBytes()));
    metrics.gauge("sim", "now_ns").set(static_cast<double>(eq.now()));
    // qos.* appears only when QoS is on, so non-QoS configs keep their
    // exact metric key set.
    if (qos_) {
        metrics.counter("qos", "admits").set(qos_->admits());
        metrics.counter("qos", "throttles").set(qos_->throttles());
        metrics.counter("qos", "throttled_bytes")
            .set(qos_->throttledBytes());
    }

    if (!acctEnabled_)
        return;
    // Per-tenant sub-registries. Each key mirrors a system total above
    // and the attribution sites are co-located with the aggregate
    // increments, so sum-over-tenants equals the total bit-exactly.
    acct_.forEach([&](TenantId id, const obs::TenantCounters &tc) {
        obs::MetricsRegistry &m = metrics.tenant(id);
        m.counter("kern", "syscalls").set(tc.kernSyscalls);
        m.counter("ssd", "ops").set(tc.ssdOps);
        m.counter("ssd", "read_bytes").set(tc.ssdReadBytes);
        m.counter("ssd", "write_bytes").set(tc.ssdWriteBytes);
        m.counter("ssd", "translation_faults")
            .set(tc.ssdTranslationFaults);
        m.counter("iommu", "vba_translations")
            .set(tc.iommuVbaTranslations);
        m.counter("iommu", "vba_faults").set(tc.iommuVbaFaults);
        m.counter("iommu", "page_walk_frames")
            .set(tc.iommuPageWalkFrames);
        m.counter("fs", "journal_records").set(tc.fsJournalRecords);
        m.counter("fs", "metadata_ops").set(tc.fsMetadataOps);
        m.counter("fs", "page_cache_hits").set(tc.fsPageCacheHits);
        m.counter("fs", "page_cache_misses").set(tc.fsPageCacheMisses);
        m.counter("bypassd", "cold_fmaps").set(tc.bypassdColdFmaps);
        m.counter("bypassd", "warm_fmaps").set(tc.bypassdWarmFmaps);
        m.counter("bypassd", "rejected_fmaps")
            .set(tc.bypassdRejectedFmaps);
        m.counter("bypassd", "revoked_victims")
            .set(tc.bypassdRevokedVictims);
        if (qos_) {
            m.counter("qos", "throttles").set(tc.qosThrottles);
            m.counter("qos", "throttled_bytes")
                .set(tc.qosThrottledBytes);
        }
    });
    // Per-device x per-tenant breakdown. Published for fleets only so
    // classic single-device tenant output keeps its exact key set.
    if (devices.size() > 1)
        acct_.forEachDevice([&](DevId d, TenantId id,
                                const obs::DeviceTenantCounters &dc) {
        obs::MetricsRegistry &m = metrics.tenant(id);
        const std::string g = sim::strf("ssd.dev%u", unsigned(d));
        m.counter(g, "ops").set(dc.ssdOps);
        m.counter(g, "read_bytes").set(dc.ssdReadBytes);
        m.counter(g, "write_bytes").set(dc.ssdWriteBytes);
        m.counter(g, "translation_faults").set(dc.ssdTranslationFaults);
        const std::string gi = sim::strf("iommu.dev%u", unsigned(d));
        m.counter(gi, "vba_translations").set(dc.iommuVbaTranslations);
        m.counter(gi, "vba_faults").set(dc.iommuVbaFaults);
        m.counter(gi, "page_walk_frames").set(dc.iommuPageWalkFrames);
    });
    // UserLib stats are already tracked per process; a process is a
    // tenant, so publish them straight into its sub-registry.
    kernel.forEachProcess([&](kern::Process &p) {
        if (!p.userLib)
            return;
        obs::MetricsRegistry &m = metrics.tenant(p.pasid());
        m.counter("bypassd", "direct_reads")
            .set(p.userLib->directReads());
        m.counter("bypassd", "direct_writes")
            .set(p.userLib->directWrites());
        m.counter("bypassd", "kernel_fallback_ops")
            .set(p.userLib->kernelFallbackOps());
        m.counter("bypassd", "iommu_faults")
            .set(p.userLib->iommuFaults());
    });
}

bypassd::UserLib &
System::userLib(kern::Process &p)
{
    if (p.userLib)
        return *p.userLib;
    // The process owns its shim: teardown happens with the process,
    // before its address space (see Process::userLibOwner).
    auto lib = std::make_shared<bypassd::UserLib>(kernel, module, p,
                                                  cfg.userlib);
    bypassd::UserLib *raw = lib.get();
    p.userLibOwner = std::move(lib);
    return *raw;
}

} // namespace bpd::sys
