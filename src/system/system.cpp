#include "system/system.hpp"

namespace bpd::sys {

System::System(SystemConfig config)
    : cfg(config),
      iommu(eq, cfg.iommu),
      store(cfg.deviceBytes),
      dev(eq, store, iommu, cfg.devId, cfg.ssd, cfg.seed),
      ext4(store, cfg.fs, &eq),
      vfs(ext4),
      kernel(eq, frames, iommu, vfs, dev, cfg.costs, cfg.kernel),
      aio(kernel),
      module(kernel)
{
}

kern::Process &
System::newProcess(std::uint32_t uid, std::uint32_t gid)
{
    kern::Process &p = kernel.createProcess(fs::Credentials{uid, gid});
    if (tracer_) {
        obs::ReplayRec r;
        r.op = obs::ReplayRec::NewProcess;
        r.proc = p.pasid();
        r.aux = (static_cast<std::uint64_t>(uid) << 32) | gid;
        tracer_->replayMark(r, p.pasid());
    }
    return p;
}

obs::Tracer &
System::enableTracing(obs::Level level)
{
    if (tracer_)
        return *tracer_;
    tracer_ = std::make_unique<obs::Tracer>(eq, level, &metrics);
    obs::Tracer *t = tracer_.get();
    kernel.setTracer(t);
    dev.setTracer(t);
    iommu.setTracer(t);
    module.setTracer(t);
    // Journal commits show up as instants on their own "fs" track.
    const std::uint16_t fsTrack = t->track("fs");
    ext4.journal().setCommitObserver([t, fsTrack](std::size_t records) {
        if (t->wants(obs::Level::Layers))
            t->instant(fsTrack, "journal.commit", 0,
                       {{"records",
                         static_cast<std::int64_t>(records)}});
    });
    return *tracer_;
}

void
System::collectMetrics()
{
    metrics.counter("sim", "events_executed").set(eq.executed());
    metrics.counter("kern", "syscalls").set(kernel.syscallCount());
    metrics.counter("iommu", "vba_translations")
        .set(iommu.vbaTranslations());
    metrics.counter("iommu", "vba_faults").set(iommu.vbaFaults());
    metrics.counter("iommu", "page_walk_frames").set(iommu.framesRead());
    metrics.counter("iommu", "iotlb_hits").set(iommu.iotlb().hits());
    metrics.counter("iommu", "iotlb_misses").set(iommu.iotlb().misses());
    metrics.counter("iommu", "walk_cache_hits")
        .set(iommu.walkCache().hits());
    metrics.counter("iommu", "walk_cache_misses")
        .set(iommu.walkCache().misses());
    metrics.counter("ssd", "ops").set(dev.totalOps());
    metrics.counter("ssd", "read_bytes").set(dev.readBytes());
    metrics.counter("ssd", "write_bytes").set(dev.writeBytes());
    metrics.counter("ssd", "translation_faults")
        .set(dev.translationFaults());
    metrics.counter("fs", "journal_commits")
        .set(ext4.journal().committedTxns());
    metrics.counter("fs", "journal_records")
        .set(ext4.journal().records());
    metrics.counter("fs", "metadata_ops").set(ext4.metadataOps());
    metrics.counter("bypassd", "cold_fmaps").set(module.coldFmaps());
    metrics.counter("bypassd", "warm_fmaps").set(module.warmFmaps());
    metrics.counter("bypassd", "revocations").set(module.revocations());
    metrics.counter("bypassd", "rejected_fmaps")
        .set(module.rejectedFmaps());
    std::uint64_t directReads = 0, directWrites = 0, fallbacks = 0,
                  iommuFaults = 0;
    kernel.forEachProcess([&](kern::Process &p) {
        if (!p.userLib)
            return;
        directReads += p.userLib->directReads();
        directWrites += p.userLib->directWrites();
        fallbacks += p.userLib->kernelFallbackOps();
        iommuFaults += p.userLib->iommuFaults();
    });
    metrics.counter("bypassd", "direct_reads").set(directReads);
    metrics.counter("bypassd", "direct_writes").set(directWrites);
    metrics.counter("bypassd", "kernel_fallback_ops").set(fallbacks);
    metrics.counter("bypassd", "iommu_faults").set(iommuFaults);
    metrics.gauge("ssd", "resident_bytes")
        .set(static_cast<double>(store.residentBytes()));
    metrics.gauge("sim", "now_ns").set(static_cast<double>(eq.now()));
}

bypassd::UserLib &
System::userLib(kern::Process &p)
{
    if (p.userLib)
        return *p.userLib;
    // The process owns its shim: teardown happens with the process,
    // before its address space (see Process::userLibOwner).
    auto lib = std::make_shared<bypassd::UserLib>(kernel, module, p,
                                                  cfg.userlib);
    bypassd::UserLib *raw = lib.get();
    p.userLibOwner = std::move(lib);
    return *raw;
}

} // namespace bpd::sys
