#include "system/system.hpp"

namespace bpd::sys {

System::System(SystemConfig config)
    : cfg(config),
      iommu(eq, cfg.iommu),
      store(cfg.deviceBytes),
      dev(eq, store, iommu, cfg.devId, cfg.ssd, cfg.seed),
      ext4(store, cfg.fs, &eq),
      vfs(ext4),
      kernel(eq, frames, iommu, vfs, dev, cfg.costs, cfg.kernel),
      aio(kernel),
      module(kernel)
{
}

kern::Process &
System::newProcess(std::uint32_t uid, std::uint32_t gid)
{
    return kernel.createProcess(fs::Credentials{uid, gid});
}

bypassd::UserLib &
System::userLib(kern::Process &p)
{
    if (p.userLib)
        return *p.userLib;
    // The process owns its shim: teardown happens with the process,
    // before its address space (see Process::userLibOwner).
    auto lib = std::make_shared<bypassd::UserLib>(kernel, module, p,
                                                  cfg.userlib);
    bypassd::UserLib *raw = lib.get();
    p.userLibOwner = std::move(lib);
    return *raw;
}

} // namespace bpd::sys
