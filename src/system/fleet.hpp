/**
 * @file
 * A fleet of simulated machines coupled through a fabric-latency
 * control plane, executed in parallel by the sharded executor.
 *
 * Each System is one executor domain (see placement.hpp for why the
 * machine is the placement unit); a lightweight fleet controller is
 * one more domain. Every machine sends the controller a periodic
 * health beacon carrying its device-op and event counters; the
 * controller folds each receipt — in delivered order — into a running
 * digest and acks, and the ack schedules the machine's next beacon.
 * The beacon round-trips make the fleet digest depend on the executor
 * merge order, so the 1-vs-N-shard digest gates exercise real
 * cross-shard traffic rather than N independent runs.
 *
 * Workloads are armed by the caller on each system (e.g.
 * FioRunner::arm) before run(); the fleet only owns the machines, the
 * controller and the clock coupling.
 */

#ifndef BPD_SYSTEM_FLEET_HPP
#define BPD_SYSTEM_FLEET_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "system/placement.hpp"
#include "system/system.hpp"

namespace bpd::sys {

/** How the member machines are wired together. */
enum class FleetTopology : std::uint8_t {
    /** Beacon-coupled peers: every machine talks to the controller
     *  only (the PR-6 fleet_fio shape). */
    ControlPlane,
    /** NVMe-oF shape: system 0 is the storage target and systems 1..N-1
     *  are client machines, each wired to the target both ways at
     *  fabricIoLatencyNs (the I/O-plane channels the fabric initiator/
     *  target pair posts capsules over). The control plane above stays
     *  wired too, so the fleet digest still sees beacon traffic. */
    FabricClientsTarget,
};

struct FleetConfig
{
    unsigned systems = 4;
    unsigned shards = 1;
    bool pinThreads = false;
    std::uint64_t deviceBytes = 8ull << 30;
    std::uint64_t seed = 42; //!< system i runs with seed + i
    /** One-way control-plane message latency = executor lookahead. */
    Time fabricLatencyNs = 25 * kUs;
    /** Beacon cadence per machine (ack-clocked, so the effective
     *  period is this plus one round trip). */
    Time beaconPeriodNs = 250 * kUs;
    FleetTopology topology = FleetTopology::ControlPlane;
    /**
     * One-way I/O-plane latency for FabricClientsTarget channels. Must
     * not exceed the FabricProfile::oneWayNs used by the initiators:
     * the channel floor is what the executor checks posts against, and
     * capsules travel at wireNs() >= oneWayNs.
     */
    Time fabricIoLatencyNs = 5 * kUs;
    SystemConfig base; //!< template for every member system
};

class Fleet
{
  public:
    explicit Fleet(FleetConfig cfg);

    unsigned size() const { return static_cast<unsigned>(systems_.size()); }
    System &system(unsigned i) { return *systems_.at(i); }
    sim::SimExecutor &executor() { return exec_; }

    /** Executor domain id of system @p i (for fabric bind()s). */
    std::uint32_t domainOf(unsigned i) const { return domainOf_.at(i); }

    /** The storage target machine under FabricClientsTarget. */
    System &target() { return *systems_.at(0); }

    /**
     * Bind every system to the executor and start each machine's
     * beacon loop, which self-reschedules until the machine's clock
     * passes @p tEnd. Call after workloads are armed: arming drives
     * run() internally, which must still mean "this machine only".
     */
    void start(Time tEnd);

    /** Run the whole fleet to quiescence (parallel across shards). */
    void run() { exec_.run(); }

    /**
     * Align every machine clock (controller included) to the fleet-wide
     * maximum by scheduling a no-op there and running to quiescence.
     * Lets one fleet host several bench cells back to back: after
     * settle() all domains share a start time, so the next cell's
     * schedule is a pure function of the cell sequence, not of which
     * machine happened to finish the previous cell last. Digests stay
     * bit-identical at any shard count across the whole sequence.
     */
    void settle();

    /** Controller receipts (beacons heard across all machines). */
    std::uint64_t beacons() const { return beacons_; }

    /**
     * Order-sensitive FNV fold of every beacon receipt; bit-identical
     * across shard counts by the executor's merge-order guarantee.
     */
    std::uint64_t controllerDigest() const { return ctrlHash_; }

    /** Events executed fleet-wide, controller included. */
    std::uint64_t totalEvents() const;

  private:
    void beacon(unsigned i, Time tEnd);

    FleetConfig cfg_;
    ShardPlacement place_;
    std::vector<std::unique_ptr<System>> systems_;
    std::vector<std::uint32_t> domainOf_;
    sim::EventQueue ctrlEq_;
    std::uint32_t ctrlDomain_ = 0;
    std::uint64_t ctrlHash_ = 0xcbf29ce484222325ull;
    std::uint64_t beacons_ = 0;
    sim::SimExecutor exec_;
};

} // namespace bpd::sys

#endif // BPD_SYSTEM_FLEET_HPP
