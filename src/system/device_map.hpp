/**
 * @file
 * The device map of a multi-device fleet (the tentpole of the
 * multi-device refactor).
 *
 * A DeviceMap owns N uniform DeviceSlots plus the VolumeStore that
 * concatenates their block stores into one flat volume the file system
 * is formatted over. Slot i covers volume bytes [i*slotBytes,
 * (i+1)*slotBytes); per-inode placement (homeSlotOf) pins every file's
 * data to exactly one slot, so extents never straddle devices and the
 * kernel can route each I/O segment by address.
 *
 * Slots are constructed up front and never destroyed; availability is a
 * pair of flags. "Present" tracks hot-plug (a slot the kernel has not
 * attached yet takes no placements); "evicted" is the health-driven
 * terminal state (the device fails new commands, its FTEs are revoked,
 * and placement skips it). Slot 0 is special: it holds the file-system
 * metadata region and is always present and never evictable.
 */

#ifndef BPD_SYS_DEVICE_MAP_HPP
#define BPD_SYS_DEVICE_MAP_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "iommu/iommu.hpp"
#include "sim/event_queue.hpp"
#include "ssd/device_slot.hpp"
#include "ssd/volume_store.hpp"

namespace bpd::sys {

struct DeviceMapConfig
{
    std::uint64_t slotBytes = 64ull << 30; //!< uniform per-slot capacity
    std::size_t maxDevices = 1;            //!< slots constructed
    std::size_t onlineDevices = 1;         //!< present at boot
    DevId devIdBase = 1;                   //!< slot i gets devIdBase + i
    std::uint64_t seedBase = 42;           //!< slot i gets seedBase + i
    ssd::SsdProfile ssd;                   //!< base device profile
    iommu::IommuProfile iommu;
    /** Per-slot profile overrides (health-model injection). */
    std::map<std::size_t, ssd::SsdProfile> slotSsd;
};

class DeviceMap
{
  public:
    DeviceMap(sim::EventQueue &eq, const DeviceMapConfig &cfg);
    DeviceMap(const DeviceMap &) = delete;
    DeviceMap &operator=(const DeviceMap &) = delete;

    std::size_t size() const { return slots_.size(); }
    ssd::DeviceSlot &slot(std::size_t i) { return *slots_.at(i); }
    const ssd::DeviceSlot &slot(std::size_t i) const
    {
        return *slots_.at(i);
    }

    /** The flat volume concatenating every slot's store. */
    ssd::VolumeStore &volume() { return *volume_; }

    std::uint64_t slotBytes() const { return cfg_.slotBytes; }
    std::uint64_t slotBase(std::size_t i) const
    {
        return i * cfg_.slotBytes;
    }

    /** @name Availability */
    ///@{
    bool present(std::size_t i) const { return present_.at(i); }
    void setPresent(std::size_t i, bool p);
    std::size_t presentCount() const;
    bool evicted(std::size_t i) const { return slots_.at(i)->dev.evicted(); }
    ///@}

    /**
     * Home slot of an inode, pinned at first query: new inodes take the
     * next eligible (present, non-evicted) slot round-robin, and keep
     * it for life — eviction never migrates data, it only fails it.
     * Deterministic because queries happen in simulation order.
     */
    std::size_t homeSlotOf(InodeNum ino);

    /** The [lo, hi) volume-block range slot @p i's data may occupy. */
    std::pair<BlockNo, BlockNo> blockRange(std::size_t i) const;

    /** Slots that currently hold at least one pinned home (for tools). */
    const std::map<InodeNum, std::size_t> &homes() const { return home_; }

  private:
    DeviceMapConfig cfg_;
    std::vector<std::unique_ptr<ssd::DeviceSlot>> slots_;
    std::unique_ptr<ssd::VolumeStore> volume_;
    std::vector<bool> present_;
    std::map<InodeNum, std::size_t> home_;
    std::size_t rrNext_ = 0;
};

} // namespace bpd::sys

#endif // BPD_SYS_DEVICE_MAP_HPP
