/**
 * @file
 * Full simulated machine: event queue, frames, IOMMU, Optane-class SSD,
 * ext4, kernel, and the BypassD module wired together. Benches, tests and
 * examples construct one System and drive workloads on it.
 */

#ifndef BPD_SYSTEM_SYSTEM_HPP
#define BPD_SYSTEM_SYSTEM_HPP

#include <memory>
#include <string>
#include <vector>

#include "bypassd/module.hpp"
#include "bypassd/userlib.hpp"
#include "fs/vfs.hpp"
#include "iommu/iommu.hpp"
#include "kern/aio.hpp"
#include "kern/kernel.hpp"
#include "mem/frame_allocator.hpp"
#include "obs/metrics.hpp"
#include "obs/tenant.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/logging.hpp"
#include "sim/sim_executor.hpp"
#include "ssd/block_store.hpp"
#include "ssd/nvme.hpp"

namespace bpd::sys {

struct SystemConfig
{
    std::uint64_t deviceBytes = 64ull << 30;
    DevId devId = 1;
    std::uint64_t seed = 42;
    ssd::SsdProfile ssd = ssd::SsdProfile::optaneP5800X();
    iommu::IommuProfile iommu;
    kern::CostModel costs;
    kern::KernelConfig kernel;
    fs::FsConfig fs;
    bypassd::UserLibConfig userlib;
};

class System
{
  public:
    explicit System(SystemConfig cfg = {});
    ~System();
    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Create a process; its PASID is bound in the IOMMU. */
    kern::Process &newProcess(std::uint32_t uid = 1000,
                              std::uint32_t gid = 1000);

    /** Attach (or fetch) the BypassD shim for a process. */
    bypassd::UserLib &userLib(kern::Process &p);

    /**
     * Run the simulation to quiescence. When the system is bound to a
     * sharded executor the whole executor runs — this system's queue
     * plus every peer domain — so closed-loop drivers written against
     * run() work unchanged under an executor.
     */
    void
    run()
    {
        if (exec_)
            exec_->run();
        else
            eq.run();
    }

    /** Run until virtual time @p t. */
    void
    runUntil(Time t)
    {
        sim::panicIf(exec_ != nullptr,
                     "runUntil on an executor-bound system");
        eq.runUntil(t);
    }

    /**
     * Route run() through @p exec, which must own this system's queue
     * as domain @p domainId. Bind only after setup: arming workloads
     * calls run() internally, and an executor run drives every domain.
     */
    void
    bindExecutor(sim::SimExecutor *exec, std::uint32_t domainId)
    {
        exec_ = exec;
        execDomain_ = domainId;
    }

    /** Domain id under the bound executor (meaningful when bound). */
    std::uint32_t executorDomain() const { return execDomain_; }

    Time now() const { return eq.now(); }

    /**
     * Turn on request-scoped tracing at the given verbosity and wire
     * the tracer into every layer (kernel, device, IOMMU, BypassD
     * module, journal). Idempotent; the level is fixed by the first
     * call. Tracing only observes the simulation — same-seed digests
     * are bit-identical with tracing on or off.
     */
    obs::Tracer &enableTracing(obs::Level level = obs::Level::Device);

    /** The active tracer, or nullptr when tracing is off. */
    obs::Tracer *tracer() { return tracer_.get(); }

    /**
     * Turn on per-tenant attribution and wire the counter table into
     * every layer (kernel, device, IOMMU, BypassD module, ext4 +
     * journal, page cache). Idempotent. Accounting only observes the
     * simulation — same-seed digests are bit-identical with it on or
     * off — and collectMetrics() then publishes one sub-registry per
     * tenant whose counters sum exactly to the system totals.
     */
    obs::TenantAccounting &enableTenantAccounting();

    /** Is per-tenant attribution on? */
    bool tenantAccountingEnabled() const { return acctEnabled_; }

    /** The per-tenant counter table (rows appear once enabled). */
    const obs::TenantAccounting &tenantAccounting() const { return acct_; }

    /**
     * Pull current counters out of every component's stat accessors
     * into the metrics registry (cheap; call before snapshotting).
     */
    void collectMetrics();

    /**
     * Check the attribution invariant: for every accounted counter,
     * the sum over all tenants equals the matching system total
     * bit-exactly (attribution sites are co-located with the aggregate
     * increments, so any divergence is a bug). Returns an empty string
     * when the invariant holds — or when accounting is off — and a
     * description of the first violated counter otherwise.
     */
    std::string verifyTenantSums();

    /**
     * Declared first so they outlive every component that holds a
     * tracer pointer or emits from a teardown path.
     */
    obs::MetricsRegistry metrics;

  private:
    /** Lives next to metrics so it outlives every attributing layer. */
    obs::TenantAccounting acct_;
    bool acctEnabled_ = false;

    std::unique_ptr<obs::Tracer> tracer_;

    sim::SimExecutor *exec_ = nullptr; //!< not owned; see bindExecutor
    std::uint32_t execDomain_ = 0;

  public:
    SystemConfig cfg;
    sim::EventQueue eq;
    mem::FrameAllocator frames;
    iommu::Iommu iommu;
    ssd::BlockStore store;
    ssd::NvmeDevice dev;
    fs::Ext4Fs ext4;
    fs::Vfs vfs;
    kern::Kernel kernel;
    kern::Aio aio;
    bypassd::BypassdModule module;
};

} // namespace bpd::sys

#endif // BPD_SYSTEM_SYSTEM_HPP
