/**
 * @file
 * Full simulated machine: event queue, frames, IOMMU, Optane-class SSD,
 * ext4, kernel, and the BypassD module wired together. Benches, tests and
 * examples construct one System and drive workloads on it.
 */

#ifndef BPD_SYSTEM_SYSTEM_HPP
#define BPD_SYSTEM_SYSTEM_HPP

#include <memory>
#include <vector>

#include "bypassd/module.hpp"
#include "bypassd/userlib.hpp"
#include "fs/vfs.hpp"
#include "iommu/iommu.hpp"
#include "kern/aio.hpp"
#include "kern/kernel.hpp"
#include "mem/frame_allocator.hpp"
#include "sim/event_queue.hpp"
#include "ssd/block_store.hpp"
#include "ssd/nvme.hpp"

namespace bpd::sys {

struct SystemConfig
{
    std::uint64_t deviceBytes = 64ull << 30;
    DevId devId = 1;
    std::uint64_t seed = 42;
    ssd::SsdProfile ssd = ssd::SsdProfile::optaneP5800X();
    iommu::IommuProfile iommu;
    kern::CostModel costs;
    kern::KernelConfig kernel;
    fs::FsConfig fs;
    bypassd::UserLibConfig userlib;
};

class System
{
  public:
    explicit System(SystemConfig cfg = {});
    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Create a process; its PASID is bound in the IOMMU. */
    kern::Process &newProcess(std::uint32_t uid = 1000,
                              std::uint32_t gid = 1000);

    /** Attach (or fetch) the BypassD shim for a process. */
    bypassd::UserLib &userLib(kern::Process &p);

    /** Run the simulation to quiescence. */
    void run() { eq.run(); }

    /** Run until virtual time @p t. */
    void runUntil(Time t) { eq.runUntil(t); }

    Time now() const { return eq.now(); }

    SystemConfig cfg;
    sim::EventQueue eq;
    mem::FrameAllocator frames;
    iommu::Iommu iommu;
    ssd::BlockStore store;
    ssd::NvmeDevice dev;
    fs::Ext4Fs ext4;
    fs::Vfs vfs;
    kern::Kernel kernel;
    kern::Aio aio;
    bypassd::BypassdModule module;
};

} // namespace bpd::sys

#endif // BPD_SYSTEM_SYSTEM_HPP
