/**
 * @file
 * Full simulated machine: event queue, frames, IOMMU, Optane-class SSD,
 * ext4, kernel, and the BypassD module wired together. Benches, tests and
 * examples construct one System and drive workloads on it.
 */

#ifndef BPD_SYSTEM_SYSTEM_HPP
#define BPD_SYSTEM_SYSTEM_HPP

#include <memory>
#include <vector>

#include "bypassd/module.hpp"
#include "bypassd/userlib.hpp"
#include "fs/vfs.hpp"
#include "iommu/iommu.hpp"
#include "kern/aio.hpp"
#include "kern/kernel.hpp"
#include "mem/frame_allocator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "ssd/block_store.hpp"
#include "ssd/nvme.hpp"

namespace bpd::sys {

struct SystemConfig
{
    std::uint64_t deviceBytes = 64ull << 30;
    DevId devId = 1;
    std::uint64_t seed = 42;
    ssd::SsdProfile ssd = ssd::SsdProfile::optaneP5800X();
    iommu::IommuProfile iommu;
    kern::CostModel costs;
    kern::KernelConfig kernel;
    fs::FsConfig fs;
    bypassd::UserLibConfig userlib;
};

class System
{
  public:
    explicit System(SystemConfig cfg = {});
    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Create a process; its PASID is bound in the IOMMU. */
    kern::Process &newProcess(std::uint32_t uid = 1000,
                              std::uint32_t gid = 1000);

    /** Attach (or fetch) the BypassD shim for a process. */
    bypassd::UserLib &userLib(kern::Process &p);

    /** Run the simulation to quiescence. */
    void run() { eq.run(); }

    /** Run until virtual time @p t. */
    void runUntil(Time t) { eq.runUntil(t); }

    Time now() const { return eq.now(); }

    /**
     * Turn on request-scoped tracing at the given verbosity and wire
     * the tracer into every layer (kernel, device, IOMMU, BypassD
     * module, journal). Idempotent; the level is fixed by the first
     * call. Tracing only observes the simulation — same-seed digests
     * are bit-identical with tracing on or off.
     */
    obs::Tracer &enableTracing(obs::Level level = obs::Level::Device);

    /** The active tracer, or nullptr when tracing is off. */
    obs::Tracer *tracer() { return tracer_.get(); }

    /**
     * Pull current counters out of every component's stat accessors
     * into the metrics registry (cheap; call before snapshotting).
     */
    void collectMetrics();

    /**
     * Declared first so they outlive every component that holds a
     * tracer pointer or emits from a teardown path.
     */
    obs::MetricsRegistry metrics;

  private:
    std::unique_ptr<obs::Tracer> tracer_;

  public:
    SystemConfig cfg;
    sim::EventQueue eq;
    mem::FrameAllocator frames;
    iommu::Iommu iommu;
    ssd::BlockStore store;
    ssd::NvmeDevice dev;
    fs::Ext4Fs ext4;
    fs::Vfs vfs;
    kern::Kernel kernel;
    kern::Aio aio;
    bypassd::BypassdModule module;
};

} // namespace bpd::sys

#endif // BPD_SYSTEM_SYSTEM_HPP
