/**
 * @file
 * Full simulated machine: event queue, frames, IOMMU, Optane-class SSD,
 * ext4, kernel, and the BypassD module wired together. Benches, tests and
 * examples construct one System and drive workloads on it.
 */

#ifndef BPD_SYSTEM_SYSTEM_HPP
#define BPD_SYSTEM_SYSTEM_HPP

#include <memory>
#include <string>
#include <vector>

#include "bypassd/module.hpp"
#include "bypassd/userlib.hpp"
#include "fs/vfs.hpp"
#include "iommu/iommu.hpp"
#include "kern/aio.hpp"
#include "kern/kernel.hpp"
#include "mem/frame_allocator.hpp"
#include "obs/metrics.hpp"
#include "obs/tenant.hpp"
#include "obs/trace.hpp"
#include "qos/qos.hpp"
#include "sim/event_queue.hpp"
#include "sim/logging.hpp"
#include "sim/sim_executor.hpp"
#include "ssd/block_store.hpp"
#include "ssd/device_slot.hpp"
#include "ssd/nvme.hpp"
#include "system/device_map.hpp"

namespace bpd::sys {

struct SystemConfig
{
    /** Per-device-slot capacity; the volume is deviceBytes*maxDevices. */
    std::uint64_t deviceBytes = 64ull << 30;
    DevId devId = 1;         //!< slot i gets devId + i
    std::uint64_t seed = 42; //!< slot i gets seed + i
    /** Device slots in the fleet (1 = classic single-device machine). */
    std::size_t maxDevices = 1;
    /** Slots attached at boot; 0 means all. The rest hot-plug later. */
    std::size_t onlineDevices = 0;
    ssd::SsdProfile ssd = ssd::SsdProfile::optaneP5800X();
    /** Per-slot SSD profile overrides (inject health models). */
    std::map<std::size_t, ssd::SsdProfile> slotSsd;
    /**
     * Health monitor: when on, a device (never slot 0) whose injected
     * media-error count reaches evictAfterMediaErrors is evicted — new
     * commands fail with DeviceEvicted, its FTEs are revoked, tenants
     * fail over. Off by default; healthy-fleet digests are unchanged.
     */
    bool healthMonitor = false;
    std::uint64_t evictAfterMediaErrors = 4;
    iommu::IommuProfile iommu;
    kern::CostModel costs;
    kern::KernelConfig kernel;
    fs::FsConfig fs;
    bypassd::UserLibConfig userlib;
};

class System
{
  public:
    explicit System(SystemConfig cfg = {});
    ~System();
    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Create a process; its PASID is bound in the IOMMU. */
    kern::Process &newProcess(std::uint32_t uid = 1000,
                              std::uint32_t gid = 1000);

    /** Attach (or fetch) the BypassD shim for a process. */
    bypassd::UserLib &userLib(kern::Process &p);

    /**
     * Run the simulation to quiescence. When the system is bound to a
     * sharded executor the whole executor runs — this system's queue
     * plus every peer domain — so closed-loop drivers written against
     * run() work unchanged under an executor.
     */
    void
    run()
    {
        if (exec_)
            exec_->run();
        else
            eq.run();
    }

    /** Run until virtual time @p t. */
    void
    runUntil(Time t)
    {
        sim::panicIf(exec_ != nullptr,
                     "runUntil on an executor-bound system");
        eq.runUntil(t);
    }

    /**
     * Route run() through @p exec, which must own this system's queue
     * as domain @p domainId. Bind only after setup: arming workloads
     * calls run() internally, and an executor run drives every domain.
     */
    void
    bindExecutor(sim::SimExecutor *exec, std::uint32_t domainId)
    {
        exec_ = exec;
        execDomain_ = domainId;
    }

    /** Domain id under the bound executor (meaningful when bound). */
    std::uint32_t executorDomain() const { return execDomain_; }

    Time now() const { return eq.now(); }

    /**
     * Turn on request-scoped tracing at the given verbosity and wire
     * the tracer into every layer (kernel, device, IOMMU, BypassD
     * module, journal). Idempotent; the level is fixed by the first
     * call. Tracing only observes the simulation — same-seed digests
     * are bit-identical with tracing on or off.
     */
    obs::Tracer &enableTracing(obs::Level level = obs::Level::Device);

    /** The active tracer, or nullptr when tracing is off. */
    obs::Tracer *tracer() { return tracer_.get(); }

    /**
     * Turn on per-tenant attribution and wire the counter table into
     * every layer (kernel, device, IOMMU, BypassD module, ext4 +
     * journal, page cache). Idempotent. Accounting only observes the
     * simulation — same-seed digests are bit-identical with it on or
     * off — and collectMetrics() then publishes one sub-registry per
     * tenant whose counters sum exactly to the system totals.
     */
    obs::TenantAccounting &enableTenantAccounting();

    /** Is per-tenant attribution on? */
    bool tenantAccountingEnabled() const { return acctEnabled_; }

    /** The per-tenant counter table (rows appear once enabled). */
    const obs::TenantAccounting &tenantAccounting() const { return acct_; }

    /**
     * Turn on per-tenant QoS and wire the registry into every
     * submission site (kernel deviceIo, UserLib direct path, every
     * fleet device's SQ arbitration; SPDK and fabric initiators wire
     * themselves via qos()). Idempotent. A registry with no limits set
     * admits everything without touching state, so enabling QoS alone
     * is digest-neutral; setLimit()/weights then make it bite.
     */
    qos::Registry &enableQos();

    /** The QoS registry, or nullptr when QoS is off. */
    qos::Registry *qos() { return qos_.get(); }
    const qos::Registry *qos() const { return qos_.get(); }

    /**
     * Pull current counters out of every component's stat accessors
     * into the metrics registry (cheap; call before snapshotting).
     */
    void collectMetrics();

    /**
     * Check the attribution invariant: for every accounted counter,
     * the sum over all tenants equals the matching system total
     * bit-exactly (attribution sites are co-located with the aggregate
     * increments, so any divergence is a bug). Device-attributable
     * counters are checked in three directions: tenant sums vs system
     * totals, per-device x per-tenant sums folded over devices vs each
     * tenant's row, and folded over tenants vs each device's hardware
     * counters. Returns an empty string when the invariant holds — or
     * when accounting is off — and a description of the first violated
     * counter otherwise.
     */
    std::string verifyTenantSums();

    /** @name Multi-device fleet */
    ///@{
    /**
     * Evict device slot @p slot (never 0): the device fails new
     * commands with DeviceEvicted (in-flight I/O drains normally), and
     * every file-table cache homed on it is revoked so direct-path
     * tenants fault, re-fmap, get VBA 0 and fall back to the kernel,
     * where I/O to the dead device fails with ENODEV. Idempotent.
     */
    void evictDevice(std::size_t slot);

    bool deviceEvicted(std::size_t slot) const
    {
        return devices.evicted(slot);
    }

    /**
     * Hot-plug the next unattached slot: create its kernel queue, bind
     * every live process' PASID into its IOMMU context (sorted-pid
     * order — deterministic), and open it for placement.
     * @return The attached slot's index.
     */
    std::size_t plugDevice();

    /**
     * DevId of the device a file's data is homed on, or 0 when the
     * file does not resolve or has no pinned placement yet (including
     * every file of a classic single-device system, which never pins).
     * Pure lookup — never pins a home, never perturbs placement.
     */
    DevId deviceOfFile(const std::string &path) const;
    ///@}

    /**
     * Declared first so they outlive every component that holds a
     * tracer pointer or emits from a teardown path.
     */
    obs::MetricsRegistry metrics;

  private:
    /** Lives next to metrics so it outlives every attributing layer. */
    obs::TenantAccounting acct_;
    bool acctEnabled_ = false;

    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<qos::Registry> qos_;

    sim::SimExecutor *exec_ = nullptr; //!< not owned; see bindExecutor
    std::uint32_t execDomain_ = 0;

    /** One pending-eviction latch per slot (health monitor). */
    std::vector<bool> evictPending_;

    static DeviceMapConfig mapCfgOf(const SystemConfig &c);

  public:
    SystemConfig cfg;
    sim::EventQueue eq;
    mem::FrameAllocator frames;
    /** The device fleet (slot 0 is the classic single device). */
    DeviceMap devices;
    /** Slot 0's IOMMU context (legacy single-device accessor). */
    iommu::Iommu &iommu;
    /** The flat volume spanning every slot's store. */
    ssd::BlockStore &store;
    /** Slot 0's device (legacy single-device accessor). */
    ssd::NvmeDevice &dev;
    fs::Ext4Fs ext4;
    fs::Vfs vfs;
    kern::Kernel kernel;
    kern::Aio aio;
    bypassd::BypassdModule module;
};

} // namespace bpd::sys

#endif // BPD_SYSTEM_SYSTEM_HPP
