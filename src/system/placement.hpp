/**
 * @file
 * Component-to-shard placement for fleet simulations. A whole System
 * (host + IOMMU + device + fs + kernel) is the placement unit: inside
 * one machine the completion path is zero-latency (the poller sees the
 * CQ doorbell instantly), so any finer split would drive the executor
 * lookahead to zero and degenerate the conservative window — see
 * DESIGN.md §12. Across machines the fabric latency is the honest
 * lookahead.
 */

#ifndef BPD_SYSTEM_PLACEMENT_HPP
#define BPD_SYSTEM_PLACEMENT_HPP

#include <cstdint>

namespace bpd::sys {

/**
 * Deterministic round-robin placement of fleet domains onto shards.
 * The controller rides on shard 0 with the first system: it executes a
 * handful of events per beacon, so dedicating a shard to it would only
 * waste a barrier participant.
 */
struct ShardPlacement
{
    unsigned shards = 1;

    unsigned
    systemShard(unsigned systemIdx) const
    {
        return systemIdx % shards;
    }

    /**
     * Placement for the fabric clients-around-a-target topology: the
     * target (system 0) executes every remote I/O's device work, so it
     * gets shard 0 to itself when shards permit and the client machines
     * round-robin over the remaining shards.
     */
    unsigned
    fabricShard(unsigned systemIdx) const
    {
        if (shards <= 1 || systemIdx == 0)
            return 0;
        return 1 + (systemIdx - 1) % (shards - 1);
    }

    unsigned controllerShard() const { return 0; }
};

} // namespace bpd::sys

#endif // BPD_SYSTEM_PLACEMENT_HPP
