/**
 * @file
 * Component-to-shard placement for fleet simulations. A whole System
 * (host + IOMMU + device + fs + kernel) is the placement unit: inside
 * one machine the completion path is zero-latency (the poller sees the
 * CQ doorbell instantly), so any finer split would drive the executor
 * lookahead to zero and degenerate the conservative window — see
 * DESIGN.md §12. Across machines the fabric latency is the honest
 * lookahead.
 */

#ifndef BPD_SYSTEM_PLACEMENT_HPP
#define BPD_SYSTEM_PLACEMENT_HPP

#include <cstdint>

namespace bpd::sys {

/**
 * Deterministic round-robin placement of fleet domains onto shards.
 * The controller rides on shard 0 with the first system: it executes a
 * handful of events per beacon, so dedicating a shard to it would only
 * waste a barrier participant.
 */
struct ShardPlacement
{
    unsigned shards = 1;

    unsigned
    systemShard(unsigned systemIdx) const
    {
        return systemIdx % shards;
    }

    /**
     * Placement for the fabric clients-around-a-target topology: the
     * target (system 0) executes every remote I/O's device work, so it
     * gets shard 0 to itself when shards permit and the client machines
     * round-robin over the remaining shards.
     */
    unsigned
    fabricShard(unsigned systemIdx) const
    {
        if (shards <= 1 || systemIdx == 0)
            return 0;
        return 1 + (systemIdx - 1) % (shards - 1);
    }

    unsigned controllerShard() const { return 0; }
};

/**
 * Deterministic conn→reactor mapping for the fabric target's sharded
 * data path. Connection ids are granted in one serial order by the
 * single admin queue (1, 2, 3, ... in accept order), so round-robin
 * over that id gives every reactor count the same assignment on every
 * run — no load feedback, no hash seed, nothing that could differ
 * across executor shard counts. Reactors are virtual-time lanes inside
 * the target's one domain (DESIGN.md §13), so this mapping is a pure
 * function of the admission order, never of wall-clock arrival.
 */
constexpr unsigned
connReactor(std::uint32_t connId, std::uint32_t reactors)
{
    if (reactors <= 1 || connId == 0)
        return 0;
    return (connId - 1) % reactors;
}

} // namespace bpd::sys

#endif // BPD_SYSTEM_PLACEMENT_HPP
