#include "fabric/target.hpp"

#include <algorithm>

#include "fabric/initiator.hpp"
#include "sim/logging.hpp"

namespace bpd::fab {

const char *
toString(ConnState s)
{
    switch (s) {
    case ConnState::Idle:
        return "idle";
    case ConnState::Connecting:
        return "connecting";
    case ConnState::Connected:
        return "connected";
    case ConnState::Draining:
        return "draining";
    }
    return "?";
}

const char *
toString(ConnectStatus s)
{
    switch (s) {
    case ConnectStatus::Ok:
        return "ok";
    case ConnectStatus::Refused:
        return "refused";
    case ConnectStatus::NoDevice:
        return "no-device";
    case ConnectStatus::DeviceEvicted:
        return "device-evicted";
    }
    return "?";
}

FabricTarget::FabricTarget(sys::System &target, FabricProfile profile,
                           spdk::SpdkCosts costs)
    : sys_(target), prof_(profile), costs_(costs)
{
    ioFreeAt_.assign(reactorCount(), 0);
    reactorStats_.assign(reactorCount(), ReactorStats{});
}

FabricTarget::~FabricTarget()
{
    *alive_ = false; // queued polls/reactor events must not fire
    if (!serving_)
        return;
    sim::panicIf(pendingIos_ > 0,
                 "fabric target destroyed with I/O in flight");
    for (auto &[id, c] : conns_) {
        if (c->qp)
            c->dev->destroyQueuePair(c->qp->qid());
    }
    conns_.clear();
    for (std::size_t slot : claimedSlots_)
        sys_.kernel.slotDevice(slot).releaseExclusive(kFabricOwnerPasid);
    claimedSlots_.clear();
    sys_.kernel.cpu().release(reactorCount());
    serving_ = false;
}

void
FabricTarget::bind(sim::SimExecutor &exec, std::uint32_t domain)
{
    exec_ = &exec;
    domain_ = domain;
}

bool
FabricTarget::serve()
{
    if (serving_)
        return true;
    if (admitSlot(prof_.serveSlot) != ConnectStatus::Ok)
        return false;
    sys_.kernel.cpu().acquire(reactorCount()); // one core per reactor
    serving_ = true;
    // The target's own trace stream carries device spans for I/O whose
    // issuing loops live on remote machines, so it cannot be replayed
    // as a standalone workload.
    if (obs::Tracer *t = sys_.tracer())
        t->replayUnsupported("fabric target serves remote initiators");
    return true;
}

FabricTarget::Conn *
FabricTarget::conn(std::uint32_t connId, std::uint32_t gen)
{
    auto it = conns_.find(connId);
    if (it == conns_.end() || !it->second->open || it->second->gen != gen)
        return nullptr;
    return it->second.get();
}

void
FabricTarget::rpcConnect(FabricInitiator *ini, std::uint32_t gen,
                         Pasid clientPasid, std::uint32_t clientDomain,
                         std::size_t slot)
{
    sim::panicIf(!serving_, "fabric connect to a target not serving");
    const Time capsuleAt = sys_.eq.now();
    const Time startT = std::max(capsuleAt, adminFreeAt_);
    adminFreeAt_ = startT + sys_.kernel.cpu().scaled(prof_.adminProcessNs);
    sys_.eq.schedule(adminFreeAt_, [this, ini, gen, clientPasid,
                                    clientDomain, slot, capsuleAt,
                                    alive = alive_] {
        if (!*alive)
            return;
        finishConnect(ini, gen, clientPasid, clientDomain, slot,
                      capsuleAt);
    });
}

ConnectStatus
FabricTarget::admitSlot(std::size_t slot)
{
    if (slot >= sys_.kernel.slotCount())
        return ConnectStatus::NoDevice;
    if (sys_.devices.evicted(slot))
        return ConnectStatus::DeviceEvicted;
    if (std::find(claimedSlots_.begin(), claimedSlots_.end(), slot)
        != claimedSlots_.end())
        return ConnectStatus::Ok;
    if (!sys_.kernel.slotDevice(slot).claimExclusive(kFabricOwnerPasid))
        return ConnectStatus::Refused;
    claimedSlots_.push_back(slot);
    return ConnectStatus::Ok;
}

void
FabricTarget::finishConnect(FabricInitiator *ini, std::uint32_t gen,
                            Pasid clientPasid, std::uint32_t clientDomain,
                            std::size_t slot, Time capsuleAt)
{
    const std::uint32_t id = nextConnId_++;
    ConnectStatus st = admitSlot(slot);
    auto c = std::make_unique<Conn>();
    c->id = id;
    c->gen = gen;
    c->ini = ini;
    c->clientDomain = clientDomain;
    c->reactor = sys::connReactor(id, reactorCount());
    c->slot = slot;
    if (st == ConnectStatus::Ok) {
        c->dev = &sys_.kernel.slotDevice(slot);
        c->qp = c->dev->createQueuePair(kFabricOwnerPasid,
                                        prof_.queueDepth,
                                        /*vbaMode=*/false);
        if (!c->qp)
            st = ConnectStatus::Refused;
    }
    const TenantId tenant = kConnTenantBase + id;
    if (st == ConnectStatus::Ok) {
        // Weighted-fair SQ arbitration keys on the connection tenant,
        // not the shared kFabricOwnerPasid, so per-lane weights work.
        c->qp->setQosTenant(tenant);
        c->disp = std::make_unique<ssd::CommandDispatcher>(*c->qp);
        c->open = true;
        accepts_++;
        ConnInfo info;
        info.remotePasid = clientPasid;
        info.tenant = tenant;
        info.reactor = c->reactor;
        info.slot = slot;
        info.dev = c->dev->devId();
        info.connectedAt = sys_.eq.now();
        info.open = true;
        info_[id] = info;
        conns_[id] = std::move(c);
    }
    if (obs::Tracer *t = sys_.tracer())
        t->span(t->track("fabric.target"), "fabric.connect", 0, capsuleAt,
                sys_.eq.now(),
                {{"conn", static_cast<std::int64_t>(id)},
                 {"pasid", static_cast<std::int64_t>(clientPasid)},
                 {"slot", static_cast<std::int64_t>(slot)},
                 {"ok", st == ConnectStatus::Ok ? 1 : 0}});
    exec_->post(domain_, clientDomain,
                sys_.eq.now() + prof_.wireNs(0),
                [ini, gen, st, id, tenant] {
                    ini->onConnectAck(gen, st, id, tenant);
                });
}

void
FabricTarget::rpcDisconnect(std::uint32_t connId, std::uint32_t gen)
{
    Conn *c = conn(connId, gen);
    if (!c) {
        staleCapsules_++;
        return;
    }
    disconnects_++;
    const Time startT = std::max(sys_.eq.now(), adminFreeAt_);
    adminFreeAt_ = startT + sys_.kernel.cpu().scaled(prof_.adminProcessNs);
    // Admin-queue work is deliberately conn-less: the span covers the
    // shared admin processor, not any one connection's lane.
    // trace_view folds these into its explicit "admin" row.
    if (obs::Tracer *t = sys_.tracer())
        t->span(t->track("fabric.target"), "fabric.admin", 0, startT,
                adminFreeAt_, {{"op", std::int64_t{0} /* disconnect */}});
    sys_.eq.schedule(adminFreeAt_, [this, connId, alive = alive_] {
        if (*alive)
            beginTeardown(connId);
    });
}

void
FabricTarget::rpcAbort(std::uint32_t connId, std::uint32_t gen)
{
    Conn *c = conn(connId, gen);
    if (!c) {
        staleCapsules_++;
        return;
    }
    aborts_++;
    // The client already failed every in-flight I/O; parked RDMA pulls
    // will never see their data capsule, so drop them now or the drain
    // below would wait forever. Overflow-parked commands likewise die
    // here — nothing will reap to retry them once in-flight I/O drains.
    c->xfers.clear();
    for (std::size_t i = 0; i < c->parked.size(); ++i) {
        c->inflight--;
        pendingIos_--;
    }
    c->parked.clear();
    const Time startT = std::max(sys_.eq.now(), adminFreeAt_);
    adminFreeAt_ = startT + sys_.kernel.cpu().scaled(prof_.adminProcessNs);
    if (obs::Tracer *t = sys_.tracer())
        t->span(t->track("fabric.target"), "fabric.admin", 0, startT,
                adminFreeAt_, {{"op", std::int64_t{1} /* abort */}});
    sys_.eq.schedule(adminFreeAt_, [this, connId, alive = alive_] {
        if (*alive)
            beginTeardown(connId);
    });
}

void
FabricTarget::rpcIo(std::uint32_t connId, std::uint32_t gen,
                    std::uint64_t cid, ssd::Op op, DevAddr addr,
                    std::uint32_t len,
                    std::shared_ptr<std::vector<std::uint8_t>> payload)
{
    capsules_++;
    Conn *c = conn(connId, gen);
    if (!c) {
        staleCapsules_++;
        return;
    }
    const Time capsuleAt = sys_.eq.now();
    // Each reactor is its own busy clock: capsules from connections on
    // different lanes overlap, capsules on one lane serialize.
    const std::uint32_t lane = c->reactor;
    ReactorStats &rs = reactorStats_[lane];
    rs.capsules++;
    const Time startT = std::max(capsuleAt, ioFreeAt_[lane]);
    if (op == ssd::Op::Write && !prof_.inCapsule(len)) {
        // Two-phase transfer: the reactor parses the header-only
        // capsule, builds an RDMA-read work request and pulls the
        // payload from the client; the I/O resumes in rpcRdmaData.
        info_[connId].rdmaWrites++;
        rs.rdmaSetups++;
        ioFreeAt_[lane] = startT
                          + sys_.kernel.cpu().scaled(prof_.targetProcessNs
                                                     + prof_.rdmaSetupNs);
        rs.busyNs += ioFreeAt_[lane] - startT;
        c->xfers[cid] = PendingXfer{addr, len, capsuleAt};
        FabricInitiator *ini = c->ini;
        const std::uint32_t clientDom = c->clientDomain;
        sys_.eq.schedule(ioFreeAt_[lane], [this, ini, clientDom, gen, cid,
                                           alive = alive_] {
            if (!*alive)
                return;
            exec_->post(domain_, clientDom,
                        sys_.eq.now() + prof_.wireNs(0),
                        [ini, gen, cid] { ini->onRdmaRead(gen, cid); });
        });
        return;
    }
    if (op == ssd::Op::Write)
        info_[connId].inCapsuleWrites++;
    ioFreeAt_[lane]
        = startT + sys_.kernel.cpu().scaled(prof_.targetProcessNs);
    rs.busyNs += ioFreeAt_[lane] - startT;
    sys_.eq.schedule(ioFreeAt_[lane], [this, connId, cid, op, addr, len,
                                       payload, capsuleAt,
                                       alive = alive_] {
        if (*alive)
            execIo(connId, cid, op, addr, len, payload, capsuleAt);
    });
}

void
FabricTarget::rpcRdmaData(std::uint32_t connId, std::uint32_t gen,
                          std::uint64_t cid,
                          std::shared_ptr<std::vector<std::uint8_t>> payload)
{
    Conn *c = conn(connId, gen);
    if (!c) {
        staleCapsules_++;
        return;
    }
    auto it = c->xfers.find(cid);
    if (it == c->xfers.end())
        return;
    const PendingXfer x = it->second;
    c->xfers.erase(it);
    rdmaTransfers_++;
    if (obs::Tracer *t = sys_.tracer())
        t->span(t->track("fabric.target"), "fabric.rdma", 0, x.capsuleAt,
                sys_.eq.now(),
                {{"conn", static_cast<std::int64_t>(connId)},
                 {"bytes", static_cast<std::int64_t>(x.len)}});
    // The reactor cost for this command was paid when the capsule was
    // parsed (rpcIo); the pulled payload goes straight to submission.
    execIo(connId, cid, ssd::Op::Write, x.addr, x.len, std::move(payload),
           x.capsuleAt);
}

void
FabricTarget::execIo(std::uint32_t connId, std::uint64_t cid, ssd::Op op,
                     DevAddr addr, std::uint32_t len,
                     std::shared_ptr<std::vector<std::uint8_t>> payload,
                     Time capsuleAt)
{
    auto it = conns_.find(connId);
    if (it == conns_.end() || !it->second->open) {
        staleCapsules_++; // raced an abort between capsule and reactor
        return;
    }
    Conn *cp = it->second.get();
    const TenantId tenant = info_[connId].tenant;
    obs::TraceId trace = 0;
    if (obs::Tracer *t = sys_.tracer())
        trace = t->newTrace(tenant);
    // inflight > 0 pins the Conn in conns_ (teardown drains first), so
    // the submit/reap closures below may hold the raw pointer. Parked
    // overflow keeps its increment until it reaps or an abort drops it.
    cp->inflight++;
    pendingIos_++;
    const Time submitCost = sys_.kernel.cpu().scaled(costs_.submitNs);
    sys_.eq.after(submitCost, [this, cp, cid, op, addr, len, payload,
                               capsuleAt, trace,
                               alive = alive_]() mutable {
        if (!*alive)
            return;
        std::shared_ptr<std::vector<std::uint8_t>> buf
            = std::move(payload);
        if (op == ssd::Op::Read)
            buf = std::make_shared<std::vector<std::uint8_t>>(len);
        sim::panicIf(!buf || buf->size() < len,
                     "fabric write capsule without payload");
        ParkedIo io;
        io.cid = cid;
        io.op = op;
        io.addr = addr;
        io.len = len;
        io.buf = std::move(buf);
        io.capsuleAt = capsuleAt;
        io.trace = trace;
        // FIFO behind earlier parked commands: device order per
        // connection must stay admission order even while the SQ is
        // full, or the disabled-admission path would reorder.
        if (!cp->parked.empty() || !submitIo(cp, io)) {
            overflowParks_++;
            cp->parked.push_back(std::move(io));
        }
    });
}

bool
FabricTarget::submitIo(Conn *cp, ParkedIo io)
{
    ssd::Command cmd;
    cmd.op = io.op;
    cmd.addr = io.addr;
    cmd.addrIsVba = false;
    cmd.len = io.len;
    cmd.hostBuf = std::span<std::uint8_t>(io.buf->data(), io.len);
    cmd.trace = io.trace;
    // Remote attribution, not the owner PASID.
    cmd.tenant = info_[cp->id].tenant;
    const Time tSubmit = sys_.eq.now();
    const std::uint64_t cid = io.cid;
    const ssd::Op op = io.op;
    const std::uint32_t len = io.len;
    const Time capsuleAt = io.capsuleAt;
    const obs::TraceId trace = io.trace;
    auto buf = io.buf;
    const bool submitted = cp->disp->submit(
        cmd, [this, cp, cid, op, len, buf, capsuleAt, trace, tSubmit,
              alive = alive_](const ssd::Completion &comp) {
            const Time reap = sys_.kernel.cpu().scaled(costs_.reapNs);
            sys_.eq.after(reap, [this, cp, cid, op, len, buf,
                                 capsuleAt, trace, tSubmit, comp,
                                 alive]() {
                if (!*alive)
                    return;
                const Time now = sys_.eq.now();
                const Time deviceNs = comp.completeTime - tSubmit;
                cp->inflight--;
                cp->devInflight--;
                pendingIos_--;
                ConnInfo &info = info_[cp->id];
                info.ops++;
                if (op == ssd::Op::Read)
                    info.readBytes += len;
                else
                    info.writeBytes += len;
                if (obs::Tracer *t = sys_.tracer())
                    t->span(
                        t->track("fabric.target"), "fabric.sq",
                        trace, capsuleAt, now,
                        {{"conn",
                          static_cast<std::int64_t>(cp->id)},
                         {"reactor",
                          static_cast<std::int64_t>(cp->reactor)},
                         {"slot",
                          static_cast<std::int64_t>(cp->slot)},
                         {"bytes", static_cast<std::int64_t>(len)},
                         {"device_ns",
                          static_cast<std::int64_t>(deviceNs)}});
                const ssd::Status st = comp.status;
                std::shared_ptr<std::vector<std::uint8_t>> data;
                if (st == ssd::Status::Success
                    && op == ssd::Op::Read)
                    data = buf;
                FabricInitiator *ini = cp->ini;
                const std::uint32_t gen = cp->gen;
                exec_->post(
                    domain_, cp->clientDomain,
                    now
                        + prof_.wireNs(op == ssd::Op::Read ? len
                                                           : 0),
                    [ini, gen, cid, st, deviceNs, data] {
                        ini->onResponse(gen, cid, st, deviceNs,
                                        data);
                    });
                // The reap freed one SQ slot; the front parked
                // command (if any) takes it immediately.
                retryParked(cp);
            });
        });
    if (submitted) {
        cp->devInflight++;
        ConnInfo &info = info_[cp->id];
        info.peakInflight
            = std::max(info.peakInflight, cp->devInflight);
    }
    return submitted;
}

void
FabricTarget::retryParked(Conn *cp)
{
    while (!cp->parked.empty()) {
        ParkedIo io = std::move(cp->parked.front());
        cp->parked.pop_front();
        if (!submitIo(cp, io)) {
            cp->parked.push_front(std::move(io));
            return;
        }
        // Re-arming a parked command is reactor work just like parsing
        // a fresh capsule — without this charge an over-depth flood
        // rides the SQ for free after its arrival burst, and admission
        // would look *worse* than parking in the victim-tail study.
        const std::uint32_t lane = cp->reactor;
        const Time start = std::max(sys_.eq.now(), ioFreeAt_[lane]);
        ioFreeAt_[lane]
            = start + sys_.kernel.cpu().scaled(prof_.targetProcessNs);
        reactorStats_[lane].busyNs += ioFreeAt_[lane] - start;
    }
}

void
FabricTarget::beginTeardown(std::uint32_t connId)
{
    auto it = conns_.find(connId);
    if (it == conns_.end() || !it->second->open)
        return;
    it->second->open = false;
    info_[connId].open = false;
    teardownPoll(connId);
}

void
FabricTarget::teardownPoll(std::uint32_t connId)
{
    auto it = conns_.find(connId);
    if (it == conns_.end())
        return;
    Conn &c = *it->second;
    if (c.inflight > 0 || !c.xfers.empty()
        || (c.disp && c.disp->outstanding() > 0)) {
        // Queue pairs and dispatchers must outlive their completions;
        // poll until the last one reaps (mirrors SpdkDriver teardown).
        sys_.eq.after(kUs, [this, connId, alive = alive_] {
            if (*alive)
                teardownPoll(connId);
        });
        return;
    }
    if (c.qp)
        c.dev->destroyQueuePair(c.qp->qid());
    conns_.erase(it);
}

} // namespace bpd::fab
