#include "fabric/initiator.hpp"

#include <algorithm>
#include <string>

#include "fabric/target.hpp"
#include "qos/qos.hpp"
#include "sim/logging.hpp"

namespace bpd::fab {

FabricInitiator::FabricInitiator(sys::System &host, FabricTarget &target)
    : host_(host), target_(target), prof_(target.profile())
{
}

FabricInitiator::~FabricInitiator()
{
    *alive_ = false; // queued submit/drain events must not fire
}

void
FabricInitiator::bind(sim::SimExecutor &exec, std::uint32_t domain)
{
    exec_ = &exec;
    domain_ = domain;
}

void
FabricInitiator::connect(Pasid clientPasid, ConnectCb cb,
                         std::size_t deviceSlot)
{
    sim::panicIf(exec_ == nullptr, "fabric initiator not bound");
    sim::panicIf(state_ != ConnState::Idle,
                 "fabric connect from non-idle state");
    state_ = ConnState::Connecting;
    pasid_ = clientPasid;
    slot_ = deviceSlot == kProfileSlot ? prof_.serveSlot : deviceSlot;
    connectCb_ = std::move(cb);
    connectSentAt_ = host_.eq.now();
    FabricTarget *tgt = &target_;
    FabricInitiator *self = this;
    const std::uint32_t gen = gen_;
    const std::uint32_t dom = domain_;
    const std::size_t slot = slot_;
    exec_->post(domain_, target_.domain(),
                host_.eq.now() + prof_.wireNs(0),
                [tgt, self, gen, clientPasid, dom, slot] {
                    tgt->rpcConnect(self, gen, clientPasid, dom, slot);
                });
}

void
FabricInitiator::disconnect(std::function<void()> cb)
{
    sim::panicIf(state_ != ConnState::Connected,
                 "fabric disconnect from non-connected state");
    state_ = ConnState::Draining;
    disconnectCb_ = std::move(cb);
    scheduleDrainPoll();
}

void
FabricInitiator::scheduleDrainPoll()
{
    host_.eq.after(kUs, [this, gen = gen_, alive = alive_] {
        if (!*alive || gen != gen_ || state_ != ConnState::Draining)
            return; // a reset raced the drain and already tore down
        if (!pending_.empty()) {
            scheduleDrainPoll();
            return;
        }
        FabricTarget *tgt = &target_;
        const std::uint32_t connId = connId_;
        exec_->post(domain_, target_.domain(),
                    host_.eq.now() + prof_.wireNs(0),
                    [tgt, connId, gen] { tgt->rpcDisconnect(connId, gen); });
        state_ = ConnState::Idle;
        connId_ = 0;
        tenant_ = kSystemTenant;
        if (disconnectCb_) {
            auto cb = std::move(disconnectCb_);
            disconnectCb_ = {};
            cb();
        }
    });
}

void
FabricInitiator::reset()
{
    const bool hadConn = state_ == ConnState::Connected
                         || state_ == ConnState::Draining;
    const std::uint32_t oldGen = gen_;
    const std::uint32_t oldConn = connId_;
    if (state_ == ConnState::Idle && pending_.empty())
        return;
    stats_.resets++;
    gen_++; // fences every capsule and response still on the wire
    state_ = ConnState::Idle;
    connId_ = 0;
    tenant_ = kSystemTenant;
    preConnectQueue_.clear();
    depthQueue_.clear(); // queued-over-depth I/O fails with the rest
    // Detach the connection callbacks BEFORE failing anything: failure
    // callbacks are free to call connect() again, and the fresh
    // connectCb_ they install must not be stomped by this reset's
    // Refused notification (the pre-reset callback, captured here, is
    // the one that gets it).
    ConnectCb connCb = std::move(connectCb_);
    connectCb_ = {};
    disconnectCb_ = {};
    std::vector<std::uint64_t> cids;
    cids.reserve(pending_.size());
    for (const auto &[cid, p] : pending_)
        cids.push_back(cid);
    // Every pending I/O — admitted and in flight, parked on the depth
    // queue, or parked on the QoS FIFO — fails through the same path
    // with the same error surface; failIo defers the callbacks so none
    // of them reenters this initiator mid-teardown.
    for (std::uint64_t cid : cids)
        failIo(cid, host_.eq.now());
    sim::panicIf(inflight_ != 0, "fabric reset leaked a depth slot");
    if (connCb)
        connCb(ConnectStatus::Refused);
    if (hadConn) {
        FabricTarget *tgt = &target_;
        exec_->post(domain_, target_.domain(),
                    host_.eq.now() + prof_.wireNs(0),
                    [tgt, oldConn, oldGen] {
                        tgt->rpcAbort(oldConn, oldGen);
                    });
    }
    // While Connecting the connect capsule is still in flight: the ack
    // will arrive carrying the old generation and onConnectAck posts
    // the abort for whatever connection the target granted.
}

void
FabricInitiator::read(Tid tid, DevAddr addr, std::span<std::uint8_t> buf,
                      kern::IoCb cb)
{
    doIo(tid, ssd::Op::Read, addr, buf, std::move(cb));
}

void
FabricInitiator::write(Tid tid, DevAddr addr,
                       std::span<const std::uint8_t> buf, kern::IoCb cb)
{
    doIo(tid, ssd::Op::Write, addr,
         std::span<std::uint8_t>(const_cast<std::uint8_t *>(buf.data()),
                                 buf.size()),
         std::move(cb));
}

void
FabricInitiator::doIo(Tid tid, ssd::Op op, DevAddr addr,
                      std::span<std::uint8_t> buf, kern::IoCb cb)
{
    if (state_ == ConnState::Idle || state_ == ConnState::Draining) {
        stats_.rejected++;
        host_.eq.after(0, [cb = std::move(cb)] {
            cb(kern::errOf(fs::FsStatus::Inval), kern::IoTrace{});
        });
        return;
    }
    const std::uint64_t cid = nextCid_++;
    PendingIo &p = pending_[cid];
    p.op = op;
    p.addr = addr;
    p.buf = buf;
    p.cb = std::move(cb);
    p.start = host_.eq.now();
    p.tid = tid;
    p.inCapsule = op != ssd::Op::Write
                  || prof_.inCapsule(static_cast<std::uint32_t>(buf.size()));
    if (obs::Tracer *t = host_.tracer())
        p.trace = t->newTrace(pasid_);
    if (state_ == ConnState::Connecting) {
        stats_.queuedBeforeConnect++;
        preConnectQueue_.push_back(cid);
        return;
    }
    gateAndAdmit(cid);
}

void
FabricInitiator::gateAndAdmit(std::uint64_t cid)
{
    // The rate cap is enforced here on the CLIENT host's registry (the
    // submission site), keyed by the connection tenant the target
    // granted. The target-side registry only supplies dispatch weights;
    // touching it from the client domain would race under sharding.
    qos::Registry *qos = host_.qos();
    if (qos) {
        auto it = pending_.find(cid);
        if (it == pending_.end())
            return;
        const std::uint64_t bytes = it->second.buf.size();
        if (!qos->tryAcquire(tenant_, 1, bytes)) {
            qos->park(tenant_, 1, bytes,
                      [this, cid, gen = gen_, alive = alive_] {
                          if (!*alive || gen != gen_)
                              return; // reset already failed this cid
                          if (!pending_.count(cid))
                              return;
                          admit(cid);
                      });
            return;
        }
    }
    admit(cid);
}

void
FabricInitiator::admit(std::uint64_t cid)
{
    if (prof_.enforceDepth && inflight_ >= prof_.queueDepth) {
        stats_.queuedOnDepth++;
        depthQueue_.push_back(cid);
        return;
    }
    auto it = pending_.find(cid);
    if (it == pending_.end())
        return;
    it->second.admitted = true;
    inflight_++;
    stats_.maxInflight = std::max(stats_.maxInflight, inflight_);
    sendCapsule(cid);
}

void
FabricInitiator::drainDepthQueue()
{
    // Admission frees one slot per completion, so at most one queued
    // cid can start here — but tolerate stale entries whose PendingIo
    // was already failed away.
    while (!depthQueue_.empty()
           && (!prof_.enforceDepth || inflight_ < prof_.queueDepth)) {
        const std::uint64_t cid = depthQueue_.front();
        depthQueue_.pop_front();
        if (!pending_.count(cid))
            continue;
        admit(cid);
    }
}

void
FabricInitiator::sendCapsule(std::uint64_t cid)
{
    const Time submitCost
        = host_.kernel.cpu().scaled(prof_.initiatorSubmitNs);
    host_.eq.after(submitCost, [this, cid, gen = gen_, alive = alive_] {
        if (!*alive || gen != gen_)
            return; // reset raced the submit cost; I/O already failed
        auto it = pending_.find(cid);
        if (it == pending_.end())
            return;
        PendingIo &p = it->second;
        std::shared_ptr<std::vector<std::uint8_t>> payload;
        std::uint64_t wireBytes = 0;
        if (p.op == ssd::Op::Write && p.inCapsule) {
            payload = std::make_shared<std::vector<std::uint8_t>>(
                p.buf.begin(), p.buf.end());
            wireBytes = p.buf.size();
        }
        FabricTarget *tgt = &target_;
        const std::uint32_t connId = connId_;
        const ssd::Op op = p.op;
        const DevAddr addr = p.addr;
        const auto len = static_cast<std::uint32_t>(p.buf.size());
        exec_->post(domain_, target_.domain(),
                    host_.eq.now() + prof_.wireNs(wireBytes),
                    [tgt, connId, gen, cid, op, addr, len,
                     payload = std::move(payload)] {
                        tgt->rpcIo(connId, gen, cid, op, addr, len,
                                   payload);
                    });
    });
}

void
FabricInitiator::onConnectAck(std::uint32_t gen, ConnectStatus st,
                              std::uint32_t connId, TenantId tenant)
{
    if (gen != gen_) {
        // This ack answers a connect that was reset away. The target
        // granted (or refused) a connection nobody will use; abort it.
        if (st == ConnectStatus::Ok) {
            FabricTarget *tgt = &target_;
            exec_->post(domain_, target_.domain(),
                        host_.eq.now() + prof_.wireNs(0),
                        [tgt, connId, gen] { tgt->rpcAbort(connId, gen); });
        }
        return;
    }
    sim::panicIf(state_ != ConnState::Connecting,
                 "fabric connect ack in unexpected state");
    if (st != ConnectStatus::Ok) {
        state_ = ConnState::Idle;
        auto q = std::move(preConnectQueue_);
        preConnectQueue_.clear();
        for (std::uint64_t cid : q)
            failIo(cid, host_.eq.now());
        if (connectCb_) {
            auto cb = std::move(connectCb_);
            connectCb_ = {};
            cb(st);
        }
        return;
    }
    state_ = ConnState::Connected;
    connId_ = connId;
    tenant_ = tenant;
    stats_.connectLatencyNs = host_.eq.now() - connectSentAt_;
    if (connectCb_) {
        auto cb = std::move(connectCb_);
        connectCb_ = {};
        cb(ConnectStatus::Ok);
    }
    auto q = std::move(preConnectQueue_);
    preConnectQueue_.clear();
    for (std::uint64_t cid : q)
        if (pending_.count(cid))
            gateAndAdmit(cid); // QoS + depth apply to the flushed queue
}

void
FabricInitiator::onRdmaRead(std::uint32_t gen, std::uint64_t cid)
{
    if (gen != gen_) {
        stats_.staleDrops++;
        return; // target's parked transfer dies with the abort
    }
    auto it = pending_.find(cid);
    if (it == pending_.end())
        return;
    PendingIo &p = it->second;
    auto payload = std::make_shared<std::vector<std::uint8_t>>(
        p.buf.begin(), p.buf.end());
    FabricTarget *tgt = &target_;
    const std::uint32_t connId = connId_;
    // The NIC serves the RDMA read without client CPU involvement: no
    // cpu cost, just wire time for the raw data.
    exec_->post(domain_, target_.domain(),
                host_.eq.now() + prof_.rdmaDataNs(p.buf.size()),
                [tgt, connId, gen, cid, payload = std::move(payload)] {
                    tgt->rpcRdmaData(connId, gen, cid, payload);
                });
}

void
FabricInitiator::onResponse(std::uint32_t gen, std::uint64_t cid,
                            ssd::Status st, Time deviceNs,
                            std::shared_ptr<std::vector<std::uint8_t>> data)
{
    if (gen != gen_) {
        stats_.staleDrops++;
        return;
    }
    const Time completeCost
        = host_.kernel.cpu().scaled(prof_.initiatorCompleteNs);
    host_.eq.after(completeCost, [this, gen, cid, st, deviceNs,
                                  data = std::move(data),
                                  alive = alive_] {
        if (!*alive || gen != gen_)
            return;
        finishIo(cid, st, deviceNs, data);
    });
}

void
FabricInitiator::finishIo(
    std::uint64_t cid, ssd::Status st, Time deviceNs,
    const std::shared_ptr<std::vector<std::uint8_t>> &data)
{
    const bool ok = st == ssd::Status::Success;
    auto it = pending_.find(cid);
    if (it == pending_.end())
        return;
    PendingIo p = std::move(it->second);
    pending_.erase(it);
    if (p.admitted) {
        inflight_--;
        // Draining still drains the depth queue: disconnect() promises
        // every accepted I/O completes, including queued-over-depth
        // ones that have never touched the wire yet.
        if (state_ == ConnState::Connected
            || state_ == ConnState::Draining)
            drainDepthQueue();
    }
    const Time now = host_.eq.now();
    const Time total = now - p.start;
    if (ok && p.op == ssd::Op::Read && data) {
        const std::size_t n = std::min(p.buf.size(), data->size());
        std::copy_n(data->begin(), n, p.buf.begin());
    }
    if (p.op == ssd::Op::Read) {
        stats_.reads++;
        stats_.readBytes += p.buf.size();
    } else {
        stats_.writes++;
        stats_.writeBytes += p.buf.size();
        if (p.inCapsule)
            stats_.inCapsuleWrites++;
        else
            stats_.rdmaWrites++;
    }
    stats_.latency.record(total);
    if (obs::Tracer *t = host_.tracer()) {
        const std::uint16_t track
            = t->track("fabric.c" + std::to_string(connId_));
        t->span(track, "fabric.capsule", p.trace, p.start, now,
                {{"conn", static_cast<std::int64_t>(connId_)},
                 {"in_capsule", p.inCapsule ? 1 : 0},
                 {"bytes", static_cast<std::int64_t>(p.buf.size())}});
        obs::RequestBreakdown b;
        b.deviceNs = deviceNs;
        b.userNs = total - deviceNs;
        b.bytes = ok ? p.buf.size() : 0;
        const char *name
            = p.op == ssd::Op::Write ? "fabric.write" : "fabric.read";
        t->request(track, name, p.trace, p.start, now, b);
    }
    kern::IoTrace tr;
    tr.deviceNs = deviceNs;
    tr.userNs = total - deviceNs;
    // An evicted remote device fails distinctly so fabric clients can
    // fail over, mirroring the local kernel path's ENODEV.
    p.cb(ok ? static_cast<long long>(p.buf.size())
            : kern::errOf(st == ssd::Status::DeviceEvicted
                              ? fs::FsStatus::NoDev
                              : fs::FsStatus::Inval),
         tr);
}

void
FabricInitiator::failIo(std::uint64_t cid, Time)
{
    auto it = pending_.find(cid);
    if (it == pending_.end())
        return;
    PendingIo p = std::move(it->second);
    pending_.erase(it);
    if (p.admitted)
        inflight_--;
    // Non-admitted cids may still sit in depthQueue_; drainDepthQueue
    // skips them once their PendingIo is gone, and reset() clears the
    // queue wholesale before failing, so no eager erase is needed.
    //
    // The caller's callback is deferred to the next event-queue round:
    // failIo runs inside reset()/onConnectAck teardown loops, and a
    // callback that resubmits or reconnects must observe the initiator
    // fully torn down (state Idle, depth slots released), not a
    // half-cleared one.
    host_.eq.after(0, [cb = std::move(p.cb)] {
        cb(kern::errOf(fs::FsStatus::Inval), kern::IoTrace{});
    });
}

} // namespace bpd::fab
