/**
 * @file
 * Simulated NVMe-oF target: claims a System's devices over the
 * SpdkDriver-style exclusive path and serves them to remote initiators
 * over executor channels. Each connect capsule names a device slot
 * (FabricProfile::serveSlot when the initiator passes kProfileSlot) —
 * the namespace-selection analogue — and the connection's queue pair
 * lives on that slot's device. Devices are claimed lazily on first
 * use, so a hot-plugged slot becomes servable without restarting the
 * target.
 *
 * Each accepted connection gets its own I/O queue pair and command
 * dispatcher, created under the target's owner PASID (the exclusive
 * claim refuses any other owner); every command the target submits on
 * a connection's behalf carries Command::tenant = the connection's
 * bound tenant, so the device's attribution sites — co-located with
 * the aggregate counters — fold remote traffic into TenantAccounting
 * bit-exactly (System::verifyTenantSums holds on the target with
 * remote-only traffic).
 *
 * A single admin queue serializes connect/disconnect processing
 * (connection storms queue behind adminProcessNs each); the data path
 * runs FabricProfile::reactors polling reactors, each a virtual-time
 * busy-clock lane inside this one executor domain, mirroring SPDK's
 * reactor-per-core target. Connections map onto reactors by
 * sys::connReactor(connId, reactors) — deterministic because the
 * single admin queue grants connection ids in one serial order.
 * Device submit/reap costs reuse SpdkCosts so a remote I/O is
 * structurally "local SPDK plus fabric". When a connection's device
 * queue fills (possible only with admission disabled), the overflow
 * parks per connection and retries as reaps free slots — never a
 * panic, never a drop.
 *
 * Threading discipline: every method below other than the accessors
 * runs on the target's executor domain — initiators reach them only
 * via exec.post() lambdas — and the target touches initiator state
 * only by posting back. Shared-nothing, so shard placement cannot
 * change behavior.
 */

#ifndef BPD_FABRIC_TARGET_HPP
#define BPD_FABRIC_TARGET_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "fabric/protocol.hpp"
#include "spdk/spdk.hpp"
#include "ssd/dispatcher.hpp"
#include "system/placement.hpp"
#include "system/system.hpp"

namespace bpd::fab {

class FabricInitiator;

class FabricTarget
{
  public:
    explicit FabricTarget(sys::System &target, FabricProfile profile = {},
                          spdk::SpdkCosts costs = {});
    ~FabricTarget();
    FabricTarget(const FabricTarget &) = delete;
    FabricTarget &operator=(const FabricTarget &) = delete;

    /** Register the executor domain this target's System runs on. */
    void bind(sim::SimExecutor &exec, std::uint32_t domain);

    /**
     * Claim the profile's serveSlot device and start the polling
     * reactors (occupies reactorCount() CPUs on the target machine).
     * Other slots' devices are claimed lazily when a connect first
     * names them.
     * @retval false when another owner already claimed the device.
     */
    bool serve();

    bool serving() const { return serving_; }
    std::uint32_t domain() const { return domain_; }
    sys::System &system() { return sys_; }
    const FabricProfile &profile() const { return prof_; }

    /** Target-side view of one connection (live or torn down). */
    struct ConnInfo
    {
        Pasid remotePasid = 0;  //!< client-local PASID from connect
        TenantId tenant = 0;    //!< kConnTenantBase + connection id
        std::uint32_t reactor = 0; //!< sys::connReactor(id, reactors)
        std::size_t slot = 0;      //!< device slot the connect named
        DevId dev = 0;             //!< that slot's DevId
        Time connectedAt = 0;
        bool open = false;
        std::uint64_t ops = 0;
        std::uint64_t readBytes = 0;
        std::uint64_t writeBytes = 0;
        std::uint64_t inCapsuleWrites = 0;
        std::uint64_t rdmaWrites = 0;
        std::uint32_t peakInflight = 0; //!< max device I/Os at once
    };

    /** Per-reactor data-path accounting (virtual-time lanes). */
    struct ReactorStats
    {
        std::uint64_t capsules = 0;   //!< I/O capsules parsed here
        std::uint64_t rdmaSetups = 0; //!< RDMA-read WRs built here
        Time busyNs = 0;              //!< lane busy time accumulated
    };

    /** Connections by id, in accept order (stats survive teardown). */
    const std::map<std::uint32_t, ConnInfo> &connections() const
    {
        return info_;
    }

    /** @name Aggregate target statistics */
    ///@{
    std::uint64_t accepts() const { return accepts_; }
    std::uint64_t disconnects() const { return disconnects_; }
    std::uint64_t aborts() const { return aborts_; }
    std::uint64_t capsules() const { return capsules_; }
    std::uint64_t rdmaTransfers() const { return rdmaTransfers_; }
    std::uint64_t staleCapsules() const { return staleCapsules_; }
    std::uint64_t pendingIos() const { return pendingIos_; }
    /** Device-queue overflows parked (nonzero only with admission
     *  disabled — the bench self-check exercises this path). */
    std::uint64_t overflowParks() const { return overflowParks_; }
    ///@}

    /** Data-path reactor count (profile, with 0 treated as 1). */
    std::uint32_t reactorCount() const
    {
        return prof_.reactors ? prof_.reactors : 1;
    }

    /** Per-reactor accounting, indexed by reactor id. */
    const std::vector<ReactorStats> &reactorStats() const
    {
        return reactorStats_;
    }

    /** @name Fabric RPCs (target-domain entry points)
     * Invoked by initiator-posted lambdas; never call directly from
     * another domain's event. @p gen is the initiator's generation at
     * send time — a mismatch against the connection's bound generation
     * means the capsule raced a reset and is dropped.
     */
    ///@{
    void rpcConnect(FabricInitiator *ini, std::uint32_t gen,
                    Pasid clientPasid, std::uint32_t clientDomain,
                    std::size_t slot);
    void rpcDisconnect(std::uint32_t connId, std::uint32_t gen);
    void rpcAbort(std::uint32_t connId, std::uint32_t gen);
    void rpcIo(std::uint32_t connId, std::uint32_t gen,
               std::uint64_t cid, ssd::Op op, DevAddr addr,
               std::uint32_t len,
               std::shared_ptr<std::vector<std::uint8_t>> payload);
    void rpcRdmaData(std::uint32_t connId, std::uint32_t gen,
                     std::uint64_t cid,
                     std::shared_ptr<std::vector<std::uint8_t>> payload);
    ///@}

  private:
    /** A write parked at the target while its RDMA read is in flight. */
    struct PendingXfer
    {
        DevAddr addr = 0;
        std::uint32_t len = 0;
        Time capsuleAt = 0; //!< capsule arrival (span start)
    };

    /** A ready-to-submit command parked on device-queue overflow. */
    struct ParkedIo
    {
        std::uint64_t cid = 0;
        ssd::Op op = ssd::Op::Read;
        DevAddr addr = 0;
        std::uint32_t len = 0;
        std::shared_ptr<std::vector<std::uint8_t>> buf;
        Time capsuleAt = 0;
        obs::TraceId trace = 0;
    };

    struct Conn
    {
        std::uint32_t id = 0;
        std::uint32_t gen = 0; //!< initiator generation at connect
        FabricInitiator *ini = nullptr;
        std::uint32_t clientDomain = 0;
        std::uint32_t reactor = 0; //!< data-path lane, fixed at accept
        std::size_t slot = 0;      //!< device slot this conn serves
        ssd::NvmeDevice *dev = nullptr; //!< that slot's device
        bool open = false;
        ssd::QueuePair *qp = nullptr;
        std::unique_ptr<ssd::CommandDispatcher> disp;
        std::map<std::uint64_t, PendingXfer> xfers;
        std::uint32_t inflight = 0; //!< pending at target (incl. parked)
        std::uint32_t devInflight = 0; //!< on the device, not yet reaped
        /** Overflow FIFO; each reap retries the front (see execIo). */
        std::deque<ParkedIo> parked;
    };

    Conn *conn(std::uint32_t connId, std::uint32_t gen);
    /** NoDevice/DeviceEvicted/Refused check + lazy exclusive claim. */
    ConnectStatus admitSlot(std::size_t slot);
    void finishConnect(FabricInitiator *ini, std::uint32_t gen,
                       Pasid clientPasid, std::uint32_t clientDomain,
                       std::size_t slot, Time capsuleAt);
    void execIo(std::uint32_t connId, std::uint64_t cid, ssd::Op op,
                DevAddr addr, std::uint32_t len,
                std::shared_ptr<std::vector<std::uint8_t>> payload,
                Time capsuleAt);
    bool submitIo(Conn *cp, ParkedIo io);
    void retryParked(Conn *cp);
    void beginTeardown(std::uint32_t connId);
    void teardownPoll(std::uint32_t connId);

    sys::System &sys_;
    FabricProfile prof_;
    spdk::SpdkCosts costs_;
    sim::SimExecutor *exec_ = nullptr;
    std::uint32_t domain_ = 0;
    bool serving_ = false;
    Time adminFreeAt_ = 0; //!< admin queue busy until
    /** Per-reactor busy-until clocks, indexed by reactor id. */
    std::vector<Time> ioFreeAt_;
    std::vector<ReactorStats> reactorStats_;
    std::uint32_t nextConnId_ = 1;
    /** Slots whose device this target claimed (released at teardown). */
    std::vector<std::size_t> claimedSlots_;
    std::map<std::uint32_t, std::unique_ptr<Conn>> conns_;
    std::map<std::uint32_t, ConnInfo> info_;

    std::uint64_t accepts_ = 0;
    std::uint64_t disconnects_ = 0;
    std::uint64_t aborts_ = 0;
    std::uint64_t capsules_ = 0;
    std::uint64_t rdmaTransfers_ = 0;
    std::uint64_t staleCapsules_ = 0;
    std::uint64_t pendingIos_ = 0;
    std::uint64_t overflowParks_ = 0;

    /** Cancels queued teardown polls if the target dies first. */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

} // namespace bpd::fab

#endif // BPD_FABRIC_TARGET_HPP
