/**
 * @file
 * Simulated NVMe-oF initiator: the client-machine half of the fabric
 * pair. Lives on a remote System's executor domain, exposes the same
 * read/write(Tid, DevAddr, buf, cb) surface as SpdkDriver so FioRunner
 * can drive a remote device with an unchanged closed loop, and turns
 * each I/O into capsules posted across the declared fabric channel.
 *
 * Connection life cycle (ConnState in protocol.hpp): connect() sends a
 * connect capsule and queues I/O locally until the ack grants a queue
 * pair; disconnect() drains in-flight I/O then releases the remote
 * queue pair; reset() models a hard transport loss — every in-flight
 * I/O fails immediately at the client, a generation counter fences the
 * stale capsules still crossing the wire (both directions), and the
 * target aborts the old connection when the abort capsule lands.
 *
 * Queue-depth admission (FabricProfile::enforceDepth): at most
 * queueDepth I/Os per connection are on the wire or at the target at
 * once. Excess submissions park in a FIFO here and are admitted as
 * completions free slots — never silently dropped, and never reordered
 * against each other. Draining still admits queued I/O (disconnect
 * completes everything); reset fails queued and in-flight I/O alike.
 *
 * Threading discipline mirrors FabricTarget: all methods run on the
 * client's domain; the target reaches back only via exec.post() onto
 * onConnectAck/onRdmaRead/onResponse.
 */

#ifndef BPD_FABRIC_INITIATOR_HPP
#define BPD_FABRIC_INITIATOR_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "fabric/protocol.hpp"
#include "kern/kernel.hpp"
#include "sim/stats.hpp"
#include "system/system.hpp"

namespace bpd::fab {

class FabricTarget;

class FabricInitiator
{
  public:
    /**
     * Connect-completion callback. Anything but ConnectStatus::Ok
     * means no connection was established (a reset that races a
     * pending connect reports Refused).
     */
    using ConnectCb = std::function<void(ConnectStatus)>;

    FabricInitiator(sys::System &host, FabricTarget &target);
    ~FabricInitiator();
    FabricInitiator(const FabricInitiator &) = delete;
    FabricInitiator &operator=(const FabricInitiator &) = delete;

    /** Register the executor domain this initiator's System runs on. */
    void bind(sim::SimExecutor &exec, std::uint32_t domain);

    /**
     * Send the connect capsule. @p clientPasid is the client-local
     * process identity reported to the target (recorded per connection;
     * the remote tenant id itself is kConnTenantBase + connection id).
     * @p deviceSlot selects the target-side device slot the connection
     * binds to — kProfileSlot means the target profile's serveSlot.
     * Naming an unattached slot is answered NoDevice, an evicted one
     * DeviceEvicted. Panics unless Idle; I/O submitted while
     * Connecting queues locally and flushes in order on the ack.
     */
    void connect(Pasid clientPasid, ConnectCb cb = {},
                 std::size_t deviceSlot = kProfileSlot);

    /**
     * Graceful teardown: stop accepting new I/O, wait for in-flight
     * completions, then release the remote queue pair. @p cb fires once
     * the state is back to Idle (reconnecting is then legal).
     */
    void disconnect(std::function<void()> cb = {});

    /**
     * Hard transport reset. All in-flight and queued I/O fails with
     * -Inval at the current virtual time; responses still on the wire
     * are dropped by the generation fence; the target learns via an
     * abort capsule and tears the old connection down. State returns to
     * Idle immediately — a new connect() may race the abort safely.
     */
    void reset();

    /** @name SpdkDriver-shaped data path (FioRunner engine surface) */
    ///@{
    void read(Tid tid, DevAddr addr, std::span<std::uint8_t> buf,
              kern::IoCb cb);
    void write(Tid tid, DevAddr addr, std::span<const std::uint8_t> buf,
               kern::IoCb cb);
    ///@}

    ConnState state() const { return state_; }
    bool connected() const { return state_ == ConnState::Connected; }
    FabricTarget &target() { return target_; }
    std::uint32_t domain() const { return domain_; }
    /** Connection id granted by the target (0 before first ack). */
    std::uint32_t connId() const { return connId_; }
    /** Device slot the last connect() named (after kProfileSlot
     *  resolution against the target profile). */
    std::size_t deviceSlot() const { return slot_; }
    /** Remote tenant this connection's I/O is attributed to. */
    TenantId remoteTenant() const { return tenant_; }
    /** I/Os submitted but not yet completed or failed. */
    std::uint64_t pendingIos() const { return pending_.size(); }
    /** Admitted I/Os currently holding depth slots (≤ queueDepth). */
    std::uint32_t inflight() const { return inflight_; }
    /** Submissions waiting initiator-side for a depth slot. */
    std::uint64_t depthQueued() const { return depthQueue_.size(); }
    const FabricProfile &profile() const { return prof_; }

    /** Client-side connection statistics. */
    struct Stats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t inCapsuleWrites = 0;
        std::uint64_t rdmaWrites = 0;
        std::uint64_t readBytes = 0;
        std::uint64_t writeBytes = 0;
        std::uint64_t queuedBeforeConnect = 0;
        std::uint64_t queuedOnDepth = 0; //!< held back by admission
        std::uint32_t maxInflight = 0;   //!< peak admitted, ≤ queueDepth
        std::uint64_t rejected = 0;   //!< I/O refused while Idle/Draining
        std::uint64_t resets = 0;
        std::uint64_t staleDrops = 0; //!< responses fenced by a reset
        Time connectLatencyNs = 0;    //!< last connect round trip
        sim::Histogram latency;       //!< per-I/O client-observed ns
    };

    const Stats &stats() const { return stats_; }

    /** @name Target-posted entry points (client-domain only) */
    ///@{
    void onConnectAck(std::uint32_t gen, ConnectStatus st,
                      std::uint32_t connId, TenantId tenant);
    /** Target pulls the payload of command @p cid (two-phase write). */
    void onRdmaRead(std::uint32_t gen, std::uint64_t cid);
    /** @p st is the device completion status; DeviceEvicted surfaces
     *  at the caller as -ENODEV, any other failure as -EINVAL. */
    void onResponse(std::uint32_t gen, std::uint64_t cid, ssd::Status st,
                    Time deviceNs,
                    std::shared_ptr<std::vector<std::uint8_t>> data);
    ///@}

  private:
    struct PendingIo
    {
        ssd::Op op = ssd::Op::Read;
        DevAddr addr = 0;
        std::span<std::uint8_t> buf;
        kern::IoCb cb;
        Time start = 0;
        Tid tid = 0;
        obs::TraceId trace = 0;
        bool inCapsule = false;
        bool admitted = false; //!< holds one of the queueDepth slots
    };

    void doIo(Tid tid, ssd::Op op, DevAddr addr,
              std::span<std::uint8_t> buf, kern::IoCb cb);
    /**
     * QoS gate in front of admit(): charges the connection tenant's
     * token buckets on the client host's registry, parking over-limit
     * cids until refill. Called only where an I/O first becomes
     * eligible (doIo while Connected, the post-ack flush) — depth-queue
     * readmissions go straight to admit() so an I/O is never charged
     * twice. Park resumes are generation-fenced: a reset fails the
     * pending I/O and the late resume is a no-op.
     */
    void gateAndAdmit(std::uint64_t cid);
    void admit(std::uint64_t cid);
    void drainDepthQueue();
    void sendCapsule(std::uint64_t cid);
    void failIo(std::uint64_t cid, Time when);
    void finishIo(std::uint64_t cid, ssd::Status st, Time deviceNs,
                  const std::shared_ptr<std::vector<std::uint8_t>> &data);
    void scheduleDrainPoll();

    sys::System &host_;
    FabricTarget &target_;
    FabricProfile prof_; //!< copied from the target at construction
    sim::SimExecutor *exec_ = nullptr;
    std::uint32_t domain_ = 0;
    ConnState state_ = ConnState::Idle;
    /** Bumped by every reset; fences stale wire traffic both ways. */
    std::uint32_t gen_ = 0;
    std::uint32_t connId_ = 0;
    std::size_t slot_ = 0; //!< resolved device slot of the last connect
    TenantId tenant_ = kSystemTenant;
    Pasid pasid_ = kNoPasid;
    Time connectSentAt_ = 0;
    ConnectCb connectCb_;
    std::function<void()> disconnectCb_;
    std::uint64_t nextCid_ = 1;
    std::map<std::uint64_t, PendingIo> pending_;
    std::vector<std::uint64_t> preConnectQueue_; //!< cids, issue order
    /** Submissions over queueDepth, FIFO; admitted as slots free up. */
    std::deque<std::uint64_t> depthQueue_;
    std::uint32_t inflight_ = 0; //!< admitted I/Os holding depth slots
    Stats stats_;

    /** Cancels queued drain polls if the initiator dies first. */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

} // namespace bpd::fab

#endif // BPD_FABRIC_INITIATOR_HPP
