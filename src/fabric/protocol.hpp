/**
 * @file
 * NVMe-oF-style fabric protocol model: capsules, transfer phases and
 * the latency profile shared by FabricTarget and FabricInitiator.
 *
 * The simulated transport mirrors the split real SPDK targets make
 * between in-capsule data and RDMA-read transfers: a write whose
 * payload fits the in-capsule threshold rides inside the command
 * capsule (one fabric traversal carries command + data); a larger
 * write sends a header-only capsule and the target pulls the payload
 * with an RDMA read (an extra round trip plus work-request setup).
 * Reads always return their data in the response capsule, modeling the
 * target-side RDMA write that real transports overlap with the
 * completion.
 *
 * Every fabric message is an executor post() across a declared
 * channel whose minimum latency is oneWayNs — which is exactly why
 * remote clients parallelize under the conservative-window executor:
 * unlike the zero-latency intra-machine completion hook, the fabric
 * hop gives the executor an honest lookahead (DESIGN.md §13).
 */

#ifndef BPD_FABRIC_PROTOCOL_HPP
#define BPD_FABRIC_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace bpd::fab {

/**
 * PASID under which the target claims the device exclusively. All
 * per-connection queue pairs are created with this owner; attribution
 * flows through Command::tenant instead (see FabricTarget).
 */
constexpr Pasid kFabricOwnerPasid = 0xfab0;

/**
 * Remote tenants are numbered kConnTenantBase + connection id, keeping
 * them disjoint from local process PASIDs (small integers) so two
 * clients that happen to share a local PASID stay distinct rows in the
 * target's TenantAccounting. The (connection, remote PASID) binding is
 * recorded per connection and reported by the benches.
 */
constexpr TenantId kConnTenantBase = 0x10000;

/**
 * Device-selector sentinel for FabricInitiator::connect: "use the
 * target profile's serveSlot" (the classic one-device target).
 */
constexpr std::size_t kProfileSlot = ~static_cast<std::size_t>(0);

/** Fabric transport latency/geometry profile. */
struct FabricProfile
{
    /** One-way propagation+switching latency; also the declared
     *  channel minimum (= executor lookahead for fabric scenarios). */
    Time oneWayNs = 5 * kUs;
    /** Link bandwidth (~100 Gb/s RDMA NIC). */
    double bwBytesPerNs = 12.5;
    /** Command/response capsule header bytes (ICD header + SQE). */
    std::uint32_t capsuleBytes = 64;
    /** Writes up to this many bytes ride in the command capsule;
     *  larger ones take the two-phase RDMA-read path (SPDK's default
     *  in-capsule data size). */
    std::uint32_t inCapsuleBytes = 8192;
    /** Admin processing per connect/disconnect capsule; one admin
     *  queue serializes these, so connection storms queue here. */
    Time adminProcessNs = 2 * kUs;
    /** Reactor cost to parse and route one I/O capsule; serialized
     *  across connections (one polling reactor per target). */
    Time targetProcessNs = 300;
    /** Cost to build and post the RDMA-read work request. */
    Time rdmaSetupNs = 600;
    /** Initiator-side submit cost (build capsule, post send). */
    Time initiatorSubmitNs = 150;
    /** Initiator-side completion cost (poll CQ, copy out). */
    Time initiatorCompleteNs = 100;
    /** Per-connection I/O queue depth granted at connect. */
    std::uint32_t queueDepth = 256;
    /**
     * Enforce @ref queueDepth per connection at capsule admission:
     * submissions beyond the depth queue initiator-side (FIFO) and
     * drain as completions free slots — never silently dropped. Off
     * only for the bench self-check (fabric_incast --no-admission),
     * which demonstrates the victim-tail collapse admission prevents;
     * the target then parks device-queue overflow instead of failing.
     */
    bool enforceDepth = true;
    /**
     * Data-path reactors on the target (SPDK runs one reactor per
     * core). Connections map onto reactors deterministically
     * (sys::connReactor in placement.hpp); the admin queue stays
     * single so connection ids — and therefore tenant ids and the
     * conn→reactor mapping — are granted in one serial order
     * regardless of reactor count. 0 is treated as 1.
     */
    std::uint32_t reactors = 1;
    /**
     * Device slot a connection binds to when its connect capsule does
     * not name one (FabricInitiator::connect passes kProfileSlot).
     * The target claims each served slot's device exclusively on first
     * use; connects naming a slot the kernel never attached are
     * answered NoDevice, evicted slots DeviceEvicted (ConnectStatus).
     */
    std::size_t serveSlot = 0;

    /** Fabric traversal time for a capsule carrying @p payloadBytes. */
    Time
    wireNs(std::uint64_t payloadBytes) const
    {
        return oneWayNs
               + static_cast<Time>(
                   static_cast<double>(capsuleBytes + payloadBytes)
                   / bwBytesPerNs);
    }

    /** Raw RDMA data return (no capsule header on the wire). */
    Time
    rdmaDataNs(std::uint64_t bytes) const
    {
        return oneWayNs
               + static_cast<Time>(static_cast<double>(bytes)
                                   / bwBytesPerNs);
    }

    /** Does a write of @p len bytes ride in the command capsule? */
    bool
    inCapsule(std::uint32_t len) const
    {
        return len <= inCapsuleBytes;
    }

    /**
     * Modeled latency a qd-1 remote I/O adds over the same I/O on a
     * local exclusive userspace driver (SpdkDriver with the same
     * SpdkCosts), assuming an idle target reactor and undilated CPUs.
     *
     * Stated bound: measured remote mean latency must equal the local
     * SPDK mean plus this overhead to within max(1 us, 5%) — the
     * residual is per-device media-jitter seeding, since everything
     * else in the path is deterministic. bench/fabric_fio enforces
     * this in its fabric_vs_local scenario.
     */
    Time
    modeledOverheadNs(std::uint32_t len, bool isWrite) const
    {
        const Time ends = initiatorSubmitNs + initiatorCompleteNs
                          + targetProcessNs;
        if (!isWrite)
            return ends + wireNs(0) + wireNs(len);
        if (inCapsule(len))
            return ends + wireNs(len) + wireNs(0);
        return ends + wireNs(0) + rdmaSetupNs + wireNs(0)
               + rdmaDataNs(len) + wireNs(0);
    }
};

/** Connection life cycle at the initiator. */
enum class ConnState : std::uint8_t {
    Idle,       //!< no connection (never connected, or torn down)
    Connecting, //!< connect capsule sent, I/O queues locally
    Connected,  //!< queue pair granted; I/O flows
    Draining,   //!< disconnect requested; in-flight I/O completing
};

const char *toString(ConnState s);

/**
 * Outcome of a connect capsule, carried in the ack. Anything but Ok
 * leaves the initiator Idle with pre-connect-queued I/O failed.
 */
enum class ConnectStatus : std::uint8_t {
    Ok,            //!< queue pair granted; I/O flows
    Refused,       //!< device claim or queue-pair grant failed
    NoDevice,      //!< selector names a slot the kernel never attached
    DeviceEvicted, //!< selector names a health-evicted device
};

const char *toString(ConnectStatus s);

} // namespace bpd::fab

#endif // BPD_FABRIC_PROTOCOL_HPP
