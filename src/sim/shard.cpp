#include "sim/shard.hpp"
#ifdef BPD_DEBUG_PAST_SCHEDULE
#include <cstdio>
#endif

namespace bpd::sim {

Time
Shard::deliverAndMin(MailboxMatrix &mb)
{
    Time min = kNever;
    for (SimDomain *d : domains) {
        std::vector<Envelope> batch = mb.drainFor(d->id);
        for (Envelope &e : batch) {
#ifdef BPD_DEBUG_PAST_SCHEDULE
            if (e.when < d->eq->now())
                std::fprintf(stderr,
                             "late delivery: dst=%s when=%llu now=%llu\n",
                             d->label.c_str(),
                             (unsigned long long)e.when,
                             (unsigned long long)d->eq->now());
#endif
            d->eq->schedule(e.when, std::move(e.fn));
        }
        delivered += batch.size();
        const Time t = d->eq->nextEventTime();
        if (t < min)
            min = t;
    }
    return min;
}

std::size_t
Shard::runWindow(Time endExclusive)
{
    std::size_t n = 0;
    for (SimDomain *d : domains)
        n += d->eq->runWindow(endExclusive);
    return n;
}

} // namespace bpd::sim
