#include "sim/shard.hpp"

namespace bpd::sim {

Time
Shard::deliverAndMin(MailboxMatrix &mb)
{
    Time min = kNever;
    for (SimDomain *d : domains) {
        std::vector<Envelope> batch = mb.drainFor(d->id);
        for (Envelope &e : batch)
            d->eq->schedule(e.when, std::move(e.fn));
        delivered += batch.size();
        const Time t = d->eq->nextEventTime();
        if (t < min)
            min = t;
    }
    return min;
}

std::size_t
Shard::runWindow(Time endExclusive)
{
    std::size_t n = 0;
    for (SimDomain *d : domains)
        n += d->eq->runWindow(endExclusive);
    return n;
}

} // namespace bpd::sim
