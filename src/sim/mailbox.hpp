/**
 * @file
 * Cross-domain message staging for the sharded executor.
 *
 * Every simulation domain (one EventQueue) owns a row of staging lanes,
 * one per destination domain. During a window a domain appends envelopes
 * only to its own row; at the next barrier each domain drains its own
 * column. Rows and columns are therefore single-writer/single-reader,
 * and the two accesses are separated by a barrier, so no lane is ever
 * touched concurrently.
 *
 * Delivery order is the determinism linchpin: drainFor() sorts the
 * merged column by (when, source domain, source sequence). That key is
 * a pure function of the virtual-time communication pattern — it does
 * not depend on which shard ran which domain, or on how wall-clock
 * time interleaved the windows — so the schedule() order seen by the
 * destination queue is identical for every shard count.
 */

#ifndef BPD_SIM_MAILBOX_HPP
#define BPD_SIM_MAILBOX_HPP

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace bpd::sim {

/** One cross-domain message: run @p fn on the destination at @p when. */
struct Envelope
{
    Time when = 0;
    std::uint32_t src = 0; //!< sending domain id
    std::uint64_t seq = 0; //!< per-source send order (FIFO tie-break)
    EventQueue::Callback fn;
};

/**
 * n x n matrix of (source, destination) staging lanes. post() is called
 * only by the shard that owns the source domain; drainFor() only by the
 * shard that owns the destination, in the barrier-separated delivery
 * phase.
 */
class MailboxMatrix
{
  public:
    /** Size the matrix for @p domains domains; drops any staged mail. */
    void
    resize(std::size_t domains)
    {
        n_ = domains;
        lanes_.clear();
        lanes_.resize(n_ * n_);
    }

    /** Stage one envelope on the (src, dst) lane. */
    void
    post(std::uint32_t src, std::uint32_t dst, Time when,
         std::uint64_t seq, EventQueue::Callback fn)
    {
        lanes_[src * n_ + dst].push_back(
            Envelope{when, src, seq, std::move(fn)});
    }

    /**
     * Move out every envelope addressed to @p dst, sorted by
     * (when, src, seq).
     */
    std::vector<Envelope>
    drainFor(std::uint32_t dst)
    {
        std::vector<Envelope> out;
        for (std::uint32_t src = 0; src < n_; src++) {
            std::vector<Envelope> &lane = lanes_[src * n_ + dst];
            out.insert(out.end(),
                       std::make_move_iterator(lane.begin()),
                       std::make_move_iterator(lane.end()));
            lane.clear();
        }
        std::sort(out.begin(), out.end(),
                  [](const Envelope &a, const Envelope &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
        return out;
    }

    std::size_t domains() const { return n_; }

  private:
    std::size_t n_ = 0;
    std::vector<std::vector<Envelope>> lanes_; //!< row-major [src][dst]
};

} // namespace bpd::sim

#endif // BPD_SIM_MAILBOX_HPP
