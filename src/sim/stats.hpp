/**
 * @file
 * Statistics primitives: log-linear latency histograms with percentile
 * queries (HdrHistogram-style), mean accumulators, and bucketed time series
 * for throughput-over-time plots (Fig. 12).
 */

#ifndef BPD_SIM_STATS_HPP
#define BPD_SIM_STATS_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bpd::sim {

/**
 * Log-linear histogram for latency values in nanoseconds.
 *
 * Values are bucketed with ~1.5% relative resolution: 64 linear buckets per
 * power-of-two decade. Percentile queries interpolate inside a bucket.
 */
class Histogram
{
  public:
    Histogram();

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Record @p count identical samples. */
    void recordMany(std::uint64_t value, std::uint64_t count);

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Reset all state. */
    void clear();

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Value at percentile @p p (0 < p <= 100).
     * @return 0 when the histogram is empty.
     */
    std::uint64_t percentile(double p) const;

    /** Shorthand: median. */
    std::uint64_t p50() const { return percentile(50.0); }
    std::uint64_t p99() const { return percentile(99.0); }
    std::uint64_t p999() const { return percentile(99.9); }

    /** Human-readable one-line summary. */
    std::string summary() const;

  private:
    static constexpr unsigned kSubBucketBits = 6; // 64 per decade
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    static constexpr unsigned kDecades = 40;

    static unsigned bucketIndex(std::uint64_t value);
    static std::uint64_t bucketLow(unsigned index);
    static std::uint64_t bucketHigh(unsigned index);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

/** Incremental mean/variance accumulator (Welford). */
class MeanAccumulator
{
  public:
    void add(double x);
    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Fixed-width time-bucketed series: record(time, amount); query per-bucket
 * rates. Used for throughput-over-time plots.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(Time bucketWidth);

    void record(Time when, double amount);

    Time bucketWidth() const { return width_; }
    std::size_t buckets() const { return sums_.size(); }

    /** Sum recorded into bucket @p i. */
    double bucketSum(std::size_t i) const;

    /** Per-second rate for bucket @p i. */
    double bucketRate(std::size_t i) const;

    /** Start time of bucket @p i. */
    Time bucketStart(std::size_t i) const { return i * width_; }

  private:
    Time width_;
    std::vector<double> sums_;
};

/** Format nanoseconds as a human-readable duration. */
std::string fmtNs(double ns);

/** Format a byte rate as a human-readable bandwidth. */
std::string fmtBw(double bytesPerSec);

} // namespace bpd::sim

#endif // BPD_SIM_STATS_HPP
