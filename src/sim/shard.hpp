/**
 * @file
 * One shard of the parallel simulation: a set of domains (each a whole
 * EventQueue) executed by one thread, plus that thread's delivery and
 * stall accounting. Shards never touch each other's domains — the only
 * coupling is the MailboxMatrix, accessed in barrier-separated phases.
 */

#ifndef BPD_SIM_SHARD_HPP
#define BPD_SIM_SHARD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/mailbox.hpp"

namespace bpd::sim {

/**
 * A simulation domain: one EventQueue with a private sequence space,
 * placed on exactly one shard. Cross-domain sends are numbered per
 * source (postSeq) so the destination can order same-time messages
 * FIFO per sender, independent of shard placement.
 */
struct SimDomain
{
    EventQueue *eq = nullptr;
    std::uint32_t id = 0;
    std::uint32_t shard = 0;
    std::string label;
    std::uint64_t postSeq = 0; //!< send-order stamp for this source
};

/** Per-thread shard state and stats. */
class Shard
{
  public:
    /**
     * Delivery phase: drain each owned domain's mailbox column into its
     * queue, then report the shard-local minimum next-event time
     * (kNever when every owned domain is idle).
     */
    Time deliverAndMin(MailboxMatrix &mb);

    /** Run every owned domain up to (excluding) @p endExclusive. */
    std::size_t runWindow(Time endExclusive);

    std::vector<SimDomain *> domains;

    std::uint64_t events = 0;    //!< events executed in windows
    std::uint64_t windows = 0;   //!< windows this shard participated in
    std::uint64_t delivered = 0; //!< cross-domain envelopes received
    double stallSec = 0;         //!< wall time blocked on barriers
};

} // namespace bpd::sim

#endif // BPD_SIM_SHARD_HPP
