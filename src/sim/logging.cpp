#include "sim/logging.hpp"

#include <cstdlib>
#include <vector>

namespace bpd::sim {

namespace {
bool verboseOutput = true;
} // namespace

std::string
strf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    if (verboseOutput)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (verboseOutput)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseOutput = verbose;
}

} // namespace bpd::sim
