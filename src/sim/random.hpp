/**
 * @file
 * Deterministic random number generation for workloads: xoshiro256**,
 * uniform helpers, and the YCSB-style Zipfian / scrambled-Zipfian / latest
 * key distributions used by the paper's evaluation workloads.
 */

#ifndef BPD_SIM_RANDOM_HPP
#define BPD_SIM_RANDOM_HPP

#include <cmath>
#include <cstdint>

namespace bpd::sim {

/**
 * xoshiro256** PRNG; fast, high quality, fully deterministic per seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextUint(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p);

    /**
     * Lognormal multiplicative jitter with median 1.0.
     * @param sigma Shape; 0 disables jitter (returns 1.0).
     */
    double lognormalJitter(double sigma);

    /** Standard normal via Box-Muller. */
    double nextGaussian();

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * YCSB Zipfian generator over [0, items); theta defaults to 0.99.
 *
 * Uses the Gray et al. rejection-free construction with an incrementally
 * maintained zeta, matching the YCSB core generator.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t items, double theta = 0.99);

    /** Draw the next key index (most popular = 0). */
    std::uint64_t next(Rng &rng);

    /** Grow the item count (used by insert workloads). */
    void grow(std::uint64_t items);

    std::uint64_t items() const { return items_; }

  private:
    static double zetaStatic(std::uint64_t n, double theta);
    void recompute();

    std::uint64_t items_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
    double zeta2Theta_;
};

/**
 * Scrambled Zipfian: Zipfian popularity spread uniformly over the keyspace
 * via a hash, as in YCSB workloads A-C/F.
 */
class ScrambledZipfianGenerator
{
  public:
    explicit ScrambledZipfianGenerator(std::uint64_t items,
                                       double theta = 0.99);

    std::uint64_t next(Rng &rng);

    void grow(std::uint64_t items);

    std::uint64_t items() const { return items_; }

  private:
    std::uint64_t items_;
    ZipfianGenerator zipf_;
};

/**
 * "Latest" distribution (YCSB D): popularity skewed towards the most
 * recently inserted keys.
 */
class LatestGenerator
{
  public:
    explicit LatestGenerator(std::uint64_t items);

    std::uint64_t next(Rng &rng);

    /** Record an insert; the new maximum key becomes the most popular. */
    void insert() { zipf_.grow(++items_); }

    std::uint64_t items() const { return items_; }

  private:
    std::uint64_t items_;
    ZipfianGenerator zipf_;
};

/** 64-bit finalizer hash (splitmix64 mix); used for key scrambling. */
std::uint64_t hash64(std::uint64_t x);

} // namespace bpd::sim

#endif // BPD_SIM_RANDOM_HPP
